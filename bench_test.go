// Benchmarks that regenerate the paper's tables and figures, one bench
// per experiment, plus micro-benchmarks of the hot pipeline stages.
// Numbers of interest are attached as custom metrics (bps, BER, TPR...)
// so `go test -bench` output doubles as an experiment report.
//
// The per-iteration work is a complete experiment; run with
// -benchtime=1x (or the default, which will settle at a few iterations)
// to reproduce EXPERIMENTS.md.
package pmuleak

import (
	"fmt"
	"runtime"
	"testing"

	"pmuleak/internal/core"
	"pmuleak/internal/covert"
	"pmuleak/internal/dsp"
	"pmuleak/internal/emchannel"
	"pmuleak/internal/experiments"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sdr"
	"pmuleak/internal/sim"
	"pmuleak/internal/sweep"
	"pmuleak/internal/xrand"
)

var benchScale = experiments.Quick

// ---------------------------------------------------------------------
// One benchmark per table/figure.

func BenchmarkFig2Spectrogram(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2(int64(i + 1))
		ratio = res.SpikeOnOffRatio
	}
	b.ReportMetric(ratio, "on/off-ratio")
}

func BenchmarkSec3StateAblation(b *testing.B) {
	var disabledRatio float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Sec3Ablation(int64(i + 1)) {
			if !r.PStates && !r.CStates {
				disabledRatio = r.SpikeOnOffRatio
			}
		}
	}
	b.ReportMetric(disabledRatio, "disabled-on/off-ratio")
}

func BenchmarkFig4Acquisition(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		res := experiments.Pipeline(int64(i+1), benchScale)
		n = res.AcquisitionLen
	}
	b.ReportMetric(float64(n), "trace-samples")
}

func BenchmarkFig5EdgeDetection(b *testing.B) {
	var starts, tx int
	for i := 0; i < b.N; i++ {
		res := experiments.Pipeline(int64(i+1), benchScale)
		starts, tx = res.DetectedStarts, res.TxBits
	}
	b.ReportMetric(float64(starts), "starts")
	b.ReportMetric(float64(tx), "tx-bits")
}

func BenchmarkFig6PulseWidth(b *testing.B) {
	var sigma, skew float64
	for i := 0; i < b.N; i++ {
		res := experiments.Pipeline(int64(i+1), benchScale)
		sigma, skew = res.RayleighSigma, res.PulseWidthSkew
	}
	b.ReportMetric(sigma*1e6, "rayleigh-sigma-us")
	b.ReportMetric(skew, "skew")
}

func BenchmarkFig7PowerThreshold(b *testing.B) {
	var thr float64
	for i := 0; i < b.N; i++ {
		res := experiments.Pipeline(int64(i+1), benchScale)
		thr = res.Threshold
	}
	b.ReportMetric(thr, "threshold")
}

func BenchmarkFig8DeletionInsertion(b *testing.B) {
	var dp, ip float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(int64(i+1), benchScale)
		dp = res.Loaded.DeletionProb()
		ip = res.Loaded.InsertionProb()
	}
	b.ReportMetric(dp, "loaded-DP")
	b.ReportMetric(ip, "loaded-IP")
}

func BenchmarkTable2NearField(b *testing.B) {
	var bestTR, worstBER float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.TableII(int64(i+1), benchScale) {
			if r.TR > bestTR {
				bestTR = r.TR
			}
			if r.BER > worstBER {
				worstBER = r.BER
			}
		}
	}
	b.ReportMetric(bestTR, "best-bps")
	b.ReportMetric(worstBER, "worst-BER")
}

func BenchmarkSec4BackgroundLoad(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		quiet, loaded := experiments.BackgroundLoadTRDrop(int64(i+1), benchScale)
		if quiet > 0 {
			drop = (quiet - loaded) / quiet
		}
	}
	b.ReportMetric(100*drop, "TR-drop-%")
}

func BenchmarkFig9Comparison(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = experiments.Fig9(int64(i+1), benchScale).Speedup()
	}
	b.ReportMetric(speedup, "speedup-x")
}

func BenchmarkTable3Distance(b *testing.B) {
	var far float64
	for i := 0; i < b.N; i++ {
		rows := experiments.TableIII(int64(i+1), benchScale)
		far = rows[len(rows)-1].TR
	}
	b.ReportMetric(far, "2.5m-bps")
}

func BenchmarkSec4NLoS(b *testing.B) {
	var tr float64
	for i := 0; i < b.N; i++ {
		tr = experiments.NLoS(int64(i+1), benchScale).TR
	}
	b.ReportMetric(tr, "through-wall-bps")
}

func BenchmarkFig11KeystrokeSpectrogram(b *testing.B) {
	var bursts int
	for i := 0; i < b.N; i++ {
		bursts = experiments.Fig11(int64(i + 1)).DistinctBursts
	}
	b.ReportMetric(float64(bursts), "bursts")
}

func BenchmarkTable4Keylogging(b *testing.B) {
	var tpr, prec float64
	for i := 0; i < b.N; i++ {
		rows := experiments.TableIV(int64(i+1), benchScale)
		tpr, prec = rows[0].TPR, rows[0].Precision
	}
	b.ReportMetric(100*tpr, "near-TPR-%")
	b.ReportMetric(100*prec, "near-precision-%")
}

func BenchmarkSec6Countermeasures(b *testing.B) {
	var disabledTPR float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Countermeasures(int64(i+1), benchScale)
		disabledTPR = rows[1].KeylogTPR // DisablePowerStates row
	}
	b.ReportMetric(100*disabledTPR, "disabled-keylog-TPR-%")
}

func BenchmarkFingerprinting(b *testing.B) {
	var near, far float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fingerprint(int64(i+1), benchScale)
		near, far = res.NearAccuracy, res.FarAccuracy
	}
	b.ReportMetric(100*near, "near-accuracy-%")
	b.ReportMetric(100*far, "2m-accuracy-%")
}

func BenchmarkMultiCoreIsolation(b *testing.B) {
	var cross float64
	for i := 0; i < b.N; i++ {
		cross = experiments.MultiCoreIsolation(int64(i+1), benchScale).CrossCoreErr
	}
	b.ReportMetric(cross, "cross-core-err")
}

func BenchmarkUtilizationLeak(b *testing.B) {
	var quarter float64
	for i := 0; i < b.N; i++ {
		quarter = experiments.UtilizationLeak(int64(i + 1)).Amplitude[0]
	}
	b.ReportMetric(quarter, "quarter-load-amplitude")
}

func BenchmarkDictionaryAttack(b *testing.B) {
	var top1 float64
	for i := 0; i < b.N; i++ {
		top1 = experiments.Dictionary(int64(i+1), benchScale).Top1Rate()
	}
	b.ReportMetric(100*top1, "top1-%")
}

func BenchmarkWaterfall(b *testing.B) {
	var clean, mid float64
	for i := 0; i < b.N; i++ {
		pts := experiments.Waterfall(int64(i+1), benchScale)
		clean, mid = pts[0].Rate, pts[2].Rate
	}
	b.ReportMetric(clean, "clean-bps")
	b.ReportMetric(mid, "mid-noise-bps")
}

func BenchmarkSleepFloor(b *testing.B) {
	var floorErr float64
	for i := 0; i < b.N; i++ {
		pts := experiments.SleepFloor(int64(i+1), benchScale)
		floorErr = pts[len(pts)-1].ErrorRate
	}
	b.ReportMetric(floorErr, "sub-10us-err")
}

// ---------------------------------------------------------------------
// Design-choice ablations (DESIGN.md §6).

func BenchmarkAblationHarmonics(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		res := experiments.ReceiverAblations(int64(i+1), benchScale)
		with, without = res[0].With, res[0].Without
	}
	b.ReportMetric(with, "S2-err")
	b.ReportMetric(without, "S1-err")
}

// BenchmarkAblationMatchedFilter contrasts the paper's batch-processing
// receiver with the naive matched-filter receiver the paper reports
// failing (§IV-B2): slicing the acquisition trace at a fixed synchronous
// bit clock instead of detecting per-bit start points.
func BenchmarkAblationMatchedFilter(b *testing.B) {
	var batchErr, matchedErr float64
	for i := 0; i < b.N; i++ {
		tb := core.NewTestbed(core.WithSeed(int64(i + 1)))
		res := tb.RunCovert(core.CovertConfig{PayloadBits: benchScale.PayloadBits})
		batchErr = res.ErrorRate()
		matchedErr = matchedFilterErrorRate(res)
	}
	b.ReportMetric(batchErr, "batch-err")
	b.ReportMetric(matchedErr, "matched-filter-err")
}

// matchedFilterErrorRate decodes the run's acquisition trace with a
// fixed-rate slicer (no edge detection, no gap filling) and aligns the
// result against the transmitted bits.
func matchedFilterErrorRate(res *core.CovertResult) float64 {
	d := res.Demod
	if len(d.Y) == 0 || d.SignalingTime <= 0 {
		return 1
	}
	period := int(d.SignalingTime / d.DT)
	if period < 1 {
		return 1
	}
	start := 0
	if len(d.Starts) > 0 {
		start = d.Starts[0]
	}
	var powers []float64
	for a := start; a+period <= len(d.Y); a += period {
		powers = append(powers, dsp.MeanPower(d.Y[a:a+period/2]))
	}
	if len(powers) == 0 {
		return 1
	}
	thr := dsp.BimodalThreshold(powers, 48)
	bits := make([]byte, len(powers))
	for i, p := range powers {
		if p > thr {
			bits[i] = 1
		}
	}
	if len(bits) > len(res.Run.Bits)+16 {
		bits = bits[:len(res.Run.Bits)+16]
	}
	m := covert.Measure(res.Run, &covert.Demod{Bits: bits}, res.TXCfg, nil)
	return m.ErrorRate()
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the hot pipeline stages.

func BenchmarkStageKernelSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := laptop.NewSystem(laptop.Reference(), int64(i+1))
		covert.SpawnTransmitter(sys.Kernel(),
			xrand.New(1).Bits(200), covert.DefaultTXConfig(100*sim.Microsecond))
		sys.Run(100 * sim.Millisecond)
		sys.Close()
	}
}

func BenchmarkStageEmanationRender(b *testing.B) {
	sys := laptop.NewSystem(laptop.Reference(), 1)
	defer sys.Close()
	covert.SpawnTransmitter(sys.Kernel(),
		xrand.New(1).Bits(200), covert.DefaultTXConfig(100*sim.Microsecond))
	horizon := 60 * sim.Millisecond
	sys.Run(horizon)
	plan := sys.DefaultPlan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iq := sys.Emanations(horizon, plan)
		_ = iq
	}
}

func BenchmarkStageDemodulate(b *testing.B) {
	tb := core.NewTestbed(core.WithSeed(1))
	res := tb.RunCovert(core.CovertConfig{PayloadBits: 256})
	_ = res
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-run the full chain: Demodulate alone needs the capture,
		// which RunCovert owns; end-to-end is the realistic unit.
		tb.RunCovert(core.CovertConfig{PayloadBits: 256})
	}
}

func BenchmarkStageFFT1024(b *testing.B) {
	rng := xrand.New(1)
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
	}
	buf := make([]complex128, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		dsp.FFT(buf)
	}
}

func BenchmarkStageResonatorBank(b *testing.B) {
	rng := xrand.New(2)
	x := make([]complex128, 1<<17)
	for i := range x {
		x[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
	}
	b.SetBytes(int64(len(x) * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.ResonatorBank(x, []float64{-0.2, 0.2}, 0.999)
	}
}

func BenchmarkStageSlidingDFT(b *testing.B) {
	rng := xrand.New(3)
	x := make([]complex128, 1<<15)
	for i := range x {
		x[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
	}
	b.SetBytes(int64(len(x) * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.SlidingDFT(x, 1024, []int{207, 817})
	}
}

// BenchmarkSTFTParallel measures the engine's spectrogram throughput at
// several worker counts over a half-megasample capture (the Fig. 2
// shape: 1024-point FFT, 4x overlap). The parallel path also commits to
// zero steady-state allocations beyond the output spectrogram itself —
// ReportAllocs makes regressions visible.
func BenchmarkSTFTParallel(b *testing.B) {
	rng := xrand.New(5)
	x := make([]complex128, 1<<19)
	for i := range x {
		x[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
	}
	window := dsp.Hann(1024)
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			eng := dsp.NewEngine(p)
			b.ReportAllocs()
			b.SetBytes(int64(len(x) * 16))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.STFT(x, 1024, 256, window, 2.4e6)
			}
		})
	}
}

// BenchmarkDemodulateParallel times the receiver alone — the capture is
// built once outside the loop — serial versus parallel, on a 256-bit
// frame. The decoded bits are bit-identical between the sub-benchmarks
// by the engine's equivalence guarantee; only wall-clock may differ.
func BenchmarkDemodulateParallel(b *testing.B) {
	prof := laptop.Reference()
	sys := laptop.NewSystem(prof, 9)
	defer sys.Close()
	txCfg := covert.DefaultTXConfig(prof.DefaultSleepPeriod)
	frame := covert.EncodeFrame(xrand.New(9).Bits(256), txCfg)
	covert.SpawnTransmitter(sys.Kernel(), frame, txCfg)
	horizon := covert.AirtimeEstimate(frame, txCfg, prof.Kernel)
	sys.Run(horizon)
	plan := sys.DefaultPlan()
	field := sys.Emanations(horizon, plan)
	rng := xrand.New(10)
	field = emchannel.Apply(field, plan.SampleRate, emchannel.DefaultConfig(), rng)
	cap := sdr.Acquire(field, plan.CenterFreqHz, sdr.DefaultConfig(), rng.Fork())

	cfg := covert.DefaultRXConfig()
	cfg.ExpectedF0 = prof.VRM.SwitchingFreqHz
	cfg.MinBitPeriod = txCfg.BitPeriod() / 2
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			c := cfg
			c.Parallelism = p
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				covert.Demodulate(cap, c)
			}
		})
	}
}

func BenchmarkStageAlignment(b *testing.B) {
	rng := xrand.New(4)
	tx := rng.Bits(2000)
	rx := rng.Bits(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = covert.Measure(&covert.TxRun{Bits: tx, End: sim.Second},
			&covert.Demod{Bits: rx}, covert.DefaultTXConfig(100*sim.Microsecond), nil)
	}
}

// ---------------------------------------------------------------------
// Experiment orchestrator (internal/sweep) benches.

// BenchmarkTable3Orchestrated runs the Table III distance sweep through
// the cell orchestrator at several worker counts, with the
// transmitter-trace cache on and off. The rows are bit-identical across
// every sub-benchmark (the sweep contract); allocation reporting makes
// the pooled-buffer savings visible. Note the Table III cells use
// distinct seeds, so the cache helps only via RateSearch re-attempts
// within a cell, not across cells.
func BenchmarkTable3Orchestrated(b *testing.B) {
	for _, jobs := range []int{1, runtime.NumCPU()} {
		for _, cache := range []bool{false, true} {
			b.Run(fmt.Sprintf("jobs=%d/cache=%v", jobs, cache), func(b *testing.B) {
				sweep.SetDefaultJobs(jobs)
				core.SetTraceCacheEnabled(cache)
				b.Cleanup(func() {
					sweep.SetDefaultJobs(0)
					core.SetTraceCacheEnabled(true)
					core.ResetTraceCache()
				})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					core.ResetTraceCache()
					experiments.TableIII(7, benchScale)
				}
			})
		}
	}
}

// BenchmarkAblationsTraceCache isolates the memoization win: the
// receiver-ablation sweep runs the same transmitter configurations
// twice (|S|=2 and |S|=1 groups share seeds), so with the cache on the
// second group replays instead of re-simulating.
func BenchmarkAblationsTraceCache(b *testing.B) {
	for _, cache := range []bool{false, true} {
		b.Run(fmt.Sprintf("cache=%v", cache), func(b *testing.B) {
			sweep.SetDefaultJobs(1)
			core.SetTraceCacheEnabled(cache)
			b.Cleanup(func() {
				sweep.SetDefaultJobs(0)
				core.SetTraceCacheEnabled(true)
				core.ResetTraceCache()
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.ResetTraceCache()
				experiments.ReceiverAblations(18, benchScale)
			}
		})
	}
}

// BenchmarkSweepOverhead measures the orchestrator's own cost on
// trivial cells — the fan-out must be cheap enough to be free next to
// any real simulation cell.
func BenchmarkSweepOverhead(b *testing.B) {
	for _, jobs := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sweep.MapJobs(jobs, 64, func(c int) int { return c * c })
			}
		})
	}
}
