// Command benchguard gates paired speedup benchmarks in CI. It parses
// `go test -bench` output on stdin (or a file), pairs each benchmark's
// new-path result with its reference result (sub-benchmark suffixes,
// "path=reference"/"path=fused" by default, per-pair overridable — the
// campaign engine gates "path=slices" vs "path=streamed"), and enforces
// the speedup ratio against a checked-in baseline:
//
//	speedup >= max(min_speedup, baseline_speedup * (1 - tolerance))
//
// Ratios, not nanoseconds: both paths run in the same process on the
// same machine, so their quotient survives runner-speed differences
// that would make any absolute ns/op threshold flake. min_speedup is
// the hard product floor (the ">= 2x on STFT and Welch" acceptance
// line); baseline_speedup*(1-tolerance) is the benchstat-style
// regression gate that catches a kernel slowdown long before it eats
// the whole 2x margin.
//
// Usage:
//
//	go test -bench 'STFT|Welch|FFT' -benchtime 2x ./internal/dsp/ | \
//	    benchguard -baseline internal/dsp/testdata/bench_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Baseline is the checked-in expectation set.
type Baseline struct {
	// Tolerance is the allowed relative drop below BaselineSpeedup
	// (0.10 = fail on a >10% regression).
	Tolerance float64 `json:"tolerance"`
	Pairs     []Pair  `json:"pairs"`
}

// Pair is one benchmark family with a slow (reference) and a fast
// (new-path) variant, distinguished by sub-benchmark suffix.
type Pair struct {
	// Name is the benchmark function name, e.g. "BenchmarkSTFT".
	Name string `json:"name"`
	// RefSuffix and NewSuffix name the two sub-benchmarks whose ratio
	// is gated. They default to the DSP kernels' original
	// "path=reference" and "path=fused", so existing baselines need no
	// edit; other packages (the campaign engine gates
	// "path=slices" vs "path=streamed") set them explicitly.
	RefSuffix string `json:"ref_suffix,omitempty"`
	NewSuffix string `json:"new_suffix,omitempty"`
	// MinSpeedup is the hard floor on ref/new (acceptance criteria),
	// independent of the recorded baseline.
	MinSpeedup float64 `json:"min_speedup"`
	// BaselineSpeedup is the recorded ref/new ratio; the gate is
	// BaselineSpeedup*(1-Tolerance).
	BaselineSpeedup float64 `json:"baseline_speedup"`
}

// suffixes resolves the pair's sub-benchmark names with the historical
// defaults.
func (p Pair) suffixes() (ref, new string) {
	ref, new = p.RefSuffix, p.NewSuffix
	if ref == "" {
		ref = "path=reference"
	}
	if new == "" {
		new = "path=fused"
	}
	return ref, new
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "", "baseline JSON (required)")
	input := fs.String("in", "", "bench output file; default stdin")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baselinePath == "" {
		fmt.Fprintln(stderr, "benchguard: -baseline is required")
		return 2
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchguard: %v\n", err)
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(stderr, "benchguard: parsing %s: %v\n", *baselinePath, err)
		return 2
	}
	in := stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(stderr, "benchguard: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	text, err := io.ReadAll(in)
	if err != nil {
		fmt.Fprintf(stderr, "benchguard: reading bench output: %v\n", err)
		return 2
	}
	results, err := parseBench(string(text))
	if err != nil {
		fmt.Fprintf(stderr, "benchguard: %v\n", err)
		return 2
	}
	return check(base, results, stdout, stderr)
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkSTFT/path=fused-8   386   5910965 ns/op   4198560 B/op ...
//
// The trailing -N GOMAXPROCS suffix is optional (absent when
// GOMAXPROCS is 1).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts name -> ns/op. Sub-benchmark names keep their
// /path=... suffix; the -N CPU suffix is stripped.
func parseBench(out string) (map[string]float64, error) {
	results := map[string]float64{}
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil || ns <= 0 {
			return nil, fmt.Errorf("bad ns/op on line %q", line)
		}
		results[m[1]] = ns
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return results, nil
}

func check(base Baseline, results map[string]float64, stdout, stderr io.Writer) int {
	failures := 0
	for _, p := range base.Pairs {
		refSuffix, newSuffix := p.suffixes()
		ref, okRef := results[p.Name+"/"+refSuffix]
		fast, okNew := results[p.Name+"/"+newSuffix]
		if !okRef || !okNew {
			fmt.Fprintf(stderr, "benchguard: %s: missing %s or %s result\n",
				p.Name, refSuffix, newSuffix)
			failures++
			continue
		}
		speedup := ref / fast
		gate := p.BaselineSpeedup * (1 - base.Tolerance)
		if p.MinSpeedup > gate {
			gate = p.MinSpeedup
		}
		status := "ok"
		if speedup < gate {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(stdout,
			"%-24s %s %12.0f ns/op  %s %12.0f ns/op  speedup %5.2fx  gate %.2fx  %s\n",
			p.Name, refSuffix, ref, newSuffix, fast, speedup, gate, status)
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "benchguard: %d benchmark gate(s) failed\n", failures)
		return 1
	}
	return 0
}
