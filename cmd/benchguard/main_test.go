package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: pmuleak/internal/dsp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSTFT/path=reference-8         	     176	  13716296 ns/op	 6315432 B/op	     524 allocs/op
BenchmarkSTFT/path=fused-8             	     385	   5910965 ns/op	 4198560 B/op	       5 allocs/op
BenchmarkWelch/path=reference          	     406	   5639701 ns/op	   32776 B/op	       4 allocs/op
BenchmarkWelch/path=fused              	    1374	   1935357 ns/op	   32856 B/op	       5 allocs/op
PASS
ok  	pmuleak/internal/dsp	12.425s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(sampleBench)
	if err != nil {
		t.Fatal(err)
	}
	// The -8 CPU suffix must be stripped, and its absence tolerated.
	want := map[string]float64{
		"BenchmarkSTFT/path=reference":  13716296,
		"BenchmarkSTFT/path=fused":      5910965,
		"BenchmarkWelch/path=reference": 5639701,
		"BenchmarkWelch/path=fused":     1935357,
	}
	for name, ns := range want {
		if results[name] != ns {
			t.Errorf("%s = %v, want %v", name, results[name], ns)
		}
	}
	if _, err := parseBench("no benchmarks here\n"); err == nil {
		t.Error("empty input did not error")
	}
}

func baselineFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runGuard(t *testing.T, baseline, bench string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errs bytes.Buffer
	code = run([]string{"-baseline", baselineFile(t, baseline)},
		strings.NewReader(bench), &out, &errs)
	return code, out.String(), errs.String()
}

func TestGatePasses(t *testing.T) {
	code, stdout, stderr := runGuard(t, `{
		"tolerance": 0.10,
		"pairs": [
			{"name": "BenchmarkSTFT", "min_speedup": 2.0, "baseline_speedup": 2.2},
			{"name": "BenchmarkWelch", "min_speedup": 2.0, "baseline_speedup": 2.5}
		]
	}`, sampleBench)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "BenchmarkSTFT") || !strings.Contains(stdout, "ok") {
		t.Fatalf("report missing expected lines:\n%s", stdout)
	}
}

// TestGateHardFloor: the sample's STFT speedup is 2.32x, so a 2.5x
// hard floor must fail even though the recorded baseline would pass.
func TestGateHardFloor(t *testing.T) {
	code, stdout, _ := runGuard(t, `{
		"tolerance": 0.10,
		"pairs": [{"name": "BenchmarkSTFT", "min_speedup": 2.5, "baseline_speedup": 2.0}]
	}`, sampleBench)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "FAIL") {
		t.Fatalf("no FAIL in report:\n%s", stdout)
	}
}

// TestGateRegression: with no hard floor, a baseline far above the
// measured ratio fails via the tolerance gate — the >10% regression
// rule.
func TestGateRegression(t *testing.T) {
	code, _, stderr := runGuard(t, `{
		"tolerance": 0.10,
		"pairs": [{"name": "BenchmarkWelch", "min_speedup": 1.0, "baseline_speedup": 4.0}]
	}`, sampleBench)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
	}
}

// TestGateMissingPair: a baseline entry with no matching benchmark
// lines is a failure, not a silent skip — otherwise renaming a
// benchmark would disable its gate.
func TestGateMissingPair(t *testing.T) {
	code, _, stderr := runGuard(t, `{
		"tolerance": 0.10,
		"pairs": [{"name": "BenchmarkNoSuch", "min_speedup": 1.0, "baseline_speedup": 1.0}]
	}`, sampleBench)
	if code != 1 || !strings.Contains(stderr, "missing") {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
}

// TestGateCustomSuffixes: a pair may name its own sub-benchmark
// variants; the campaign baseline gates path=slices vs path=streamed.
func TestGateCustomSuffixes(t *testing.T) {
	bench := `goos: linux
BenchmarkCampaignCells/path=slices-8     	       2	 200000000 ns/op
BenchmarkCampaignCells/path=streamed-8   	      22	  20000000 ns/op
PASS
`
	code, stdout, stderr := runGuard(t, `{
		"tolerance": 0.10,
		"pairs": [{"name": "BenchmarkCampaignCells",
			"ref_suffix": "path=slices", "new_suffix": "path=streamed",
			"min_speedup": 3.0, "baseline_speedup": 8.0}]
	}`, bench)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "path=slices") || !strings.Contains(stdout, "10.00x") {
		t.Fatalf("report missing custom-suffix columns:\n%s", stdout)
	}
	// Wrong suffixes against the same input must fail as missing, not
	// silently pass.
	code, _, stderr = runGuard(t, `{
		"tolerance": 0.10,
		"pairs": [{"name": "BenchmarkCampaignCells", "min_speedup": 1.0, "baseline_speedup": 1.0}]
	}`, bench)
	if code != 1 || !strings.Contains(stderr, "missing") {
		t.Fatalf("default suffixes matched the campaign bench: exit %d, stderr: %s", code, stderr)
	}
}

// TestRepoCampaignBaselineParses guards the checked-in campaign
// baseline: it must parse and gate the sample above successfully.
func TestRepoCampaignBaselineParses(t *testing.T) {
	raw, err := os.ReadFile("../../internal/campaign/testdata/bench_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("campaign baseline does not parse: %v", err)
	}
	if len(base.Pairs) == 0 {
		t.Fatal("campaign baseline has no pairs")
	}
	for _, p := range base.Pairs {
		ref, new := p.suffixes()
		if ref == "path=reference" || new == "path=fused" {
			t.Fatalf("campaign pair %s fell back to the DSP default suffixes", p.Name)
		}
	}
}

// TestRepoBaselineParses guards the checked-in baseline file itself.
func TestRepoBaselineParses(t *testing.T) {
	raw, err := os.ReadFile("../../internal/dsp/testdata/bench_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	code := run([]string{"-baseline", baselineFile(t, string(raw))},
		strings.NewReader(sampleBench), &bytes.Buffer{}, &bytes.Buffer{})
	// The sample lacks STFTComplex/FFT pairs, so the repo baseline must
	// report them missing (exit 1) — but it must parse.
	if code != 1 {
		t.Fatalf("exit %d, want 1 (missing pairs)", code)
	}
}
