// Command covert runs one covert-channel transfer through the full
// simulated chain — transmitter process, PMU, VRM, EM propagation,
// SDR capture, batch demodulation — and reports the Table II/III
// metrics.
//
// Examples:
//
//	covert                                  # near-field, Dell Inspiron
//	covert -distance 2.5 -antenna loop      # Table III far point
//	covert -wall 15 -distance 1.5 -antenna loop -interference
//	covert -message "attack at dawn"        # exfiltrate actual bytes
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pmuleak/internal/core"
	"pmuleak/internal/ecc"
	"pmuleak/internal/emchannel"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sdr"
	"pmuleak/internal/sim"
)

func main() {
	var (
		model        = flag.String("laptop", laptop.Reference().Model, "target laptop model")
		distance     = flag.Float64("distance", 0.10, "antenna distance in meters")
		wall         = flag.Float64("wall", 0, "wall penetration loss in dB (0 = line of sight)")
		antenna      = flag.String("antenna", "probe", "probe | loop")
		bits         = flag.Int("bits", 256, "random payload bits (ignored with -message)")
		message      = flag.String("message", "", "exfiltrate this string instead of random bits")
		sleep        = flag.Duration("sleep", 0, "SLEEP_PERIOD override (0 = per-OS default)")
		background   = flag.Bool("background", false, "run resource-intensive background activity")
		interleave   = flag.Int("interleave", 0, "block-interleave depth (>1 spreads burst errors)")
		interference = flag.Bool("interference", false, "add office interferers (printer, fridge)")
		seed         = flag.Int64("seed", 1, "experiment seed")
	)
	flag.Parse()

	prof, err := laptop.Lookup(*model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covert: %v\n", err)
		os.Exit(2)
	}
	ant := sdr.CoilProbe
	if *antenna == "loop" {
		ant = sdr.LoopLA390
	}
	opts := []core.Option{
		core.WithLaptop(prof),
		core.WithDistance(*distance),
		core.WithWall(*wall),
		core.WithAntenna(ant),
		core.WithSeed(*seed),
	}
	if *interference {
		opts = append(opts, core.WithInterference(
			emchannel.OfficePrinter(0.002),
			emchannel.Refrigerator(0.0015),
		))
	}
	tb := core.NewTestbed(opts...)
	if err := tb.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "covert: %v\n", err)
		os.Exit(2)
	}

	cfg := core.CovertConfig{
		PayloadBits: *bits,
		SleepPeriod: sim.Time(sleep.Nanoseconds()),
		Background:  *background,
		Interleave:  *interleave,
	}
	if *message != "" {
		cfg.Payload = ecc.BytesToBits([]byte(*message))
	}

	fmt.Printf("target   : %s\n", prof)
	fmt.Printf("path     : %.2f m, wall %.0f dB, %s\n", *distance, *wall, ant.Name)
	start := time.Now()
	res := tb.RunCovert(cfg)
	elapsed := time.Since(start)

	fmt.Printf("airtime  : %v of simulated time (%d on-air bits)\n",
		res.Run.Airtime(), len(res.Run.Bits))
	fmt.Printf("rate     : %.0f bps\n", res.TransmitRate)
	fmt.Printf("channel  : BER=%.2e  IP=%.2e  DP=%.2e  (err rate %.2e)\n",
		res.BER(), res.InsertionProb(), res.DeletionProb(), res.ErrorRate())
	if res.PayloadOK {
		fmt.Printf("payload  : synchronized, %d Hamming corrections, residual BER %.2e\n",
			res.Corrections, res.PayloadBER)
	} else {
		fmt.Printf("payload  : FAILED to synchronize\n")
	}
	if *message != "" && res.PayloadOK {
		got, _, _ := res.Demod.RecoverPayloadN(res.TXCfg, len(cfg.Payload))
		if len(got) > len(cfg.Payload) {
			got = got[:len(cfg.Payload)]
		}
		fmt.Printf("received : %q\n", string(ecc.BitsToBytes(got)))
	}
	fmt.Printf("signaling: %.1f µs per bit (receiver estimate)\n", res.SignalingTime*1e6)
	fmt.Printf("wallclock: %v\n", elapsed.Round(time.Millisecond))
}
