// Command emreport turns persisted paperbench run directories
// (internal/artifacts) into a regression report: grouped per-experiment
// wall-time mean±std tables, aggregate covert BER and keylog recall
// from the runs' telemetry snapshots, and — with -baseline — ratio
// gates in cmd/benchguard's baseline×(1±tolerance) discipline. The
// wall-seconds history in BENCH_experiments.json (-history) is printed
// alongside for trajectory context.
//
// Usage:
//
//	emreport runs/                       # report only
//	emreport -baseline base.json runs/   # gate: exit 1 on regression
//	emreport -history BENCH_experiments.json runA/ runB/
//
// Each positional argument is a run directory (holding manifest.json)
// or a root whose immediate children are run directories. Exit codes:
// 0 clean, 1 a gate tripped, 2 usage or unreadable input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"pmuleak/internal/artifacts"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args and renders the report. Split from main so tests can
// drive the binary's exact code path in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		basePath = fs.String("baseline", "", "baseline JSON (artifacts.Baseline); enables the regression gates")
		histPath = fs.String("history", "", "BENCH_experiments.json to print the recorded wall-seconds trajectory from")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "emreport: no run directories given\nusage: emreport [-baseline base.json] [-history BENCH_experiments.json] RUNS...")
		return 2
	}

	var runs []*artifacts.Run
	for _, arg := range fs.Args() {
		dirs, err := artifacts.DiscoverRuns(arg)
		if err != nil {
			fmt.Fprintf(stderr, "emreport: %v\n", err)
			return 2
		}
		for _, d := range dirs {
			r, err := artifacts.LoadRun(d)
			if err != nil {
				fmt.Fprintf(stderr, "emreport: %v\n", err)
				return 2
			}
			runs = append(runs, r)
		}
	}

	var base *artifacts.Baseline
	if *basePath != "" {
		b, err := artifacts.LoadBaseline(*basePath)
		if err != nil {
			fmt.Fprintf(stderr, "emreport: -baseline: %v\n", err)
			return 2
		}
		base = b
	}

	a := artifacts.Analyze(runs, base)
	renderAnalysis(stdout, runs, a, base)

	if *histPath != "" {
		if err := renderHistory(stdout, *histPath); err != nil {
			fmt.Fprintf(stderr, "emreport: -history: %v\n", err)
			return 2
		}
	}

	if len(a.Failures) > 0 {
		fmt.Fprintf(stderr, "emreport: %d regression gate(s) tripped:\n", len(a.Failures))
		for _, f := range a.Failures {
			fmt.Fprintf(stderr, "  FAIL %s\n", f)
		}
		return 1
	}
	if base != nil {
		fmt.Fprintln(stdout, "gates: all passed")
	}
	return 0
}

// renderAnalysis prints the grouped tables. Layout is deterministic:
// experiments come back from Analyze sorted by name, runs in the order
// they were discovered.
func renderAnalysis(w io.Writer, runs []*artifacts.Run, a artifacts.Analysis, base *artifacts.Baseline) {
	fmt.Fprintf(w, "runs analyzed: %d\n", a.Runs)
	for _, r := range runs {
		env := fmt.Sprintf("%s %s/%s cpus=%d", r.Manifest.GoVersion, r.Manifest.GOOS, r.Manifest.GOARCH, r.Manifest.NumCPU)
		if r.Manifest.GitRevision != "" {
			rev := r.Manifest.GitRevision
			if len(rev) > 12 {
				rev = rev[:12]
			}
			env += " rev=" + rev
			if r.Manifest.GitModified {
				env += "+dirty"
			}
		}
		fmt.Fprintf(w, "  %s  %s  seed=%s wall=%.2fs\n",
			r.Manifest.CreatedUTC, env, r.Manifest.Flags["seed"], r.Manifest.WallSeconds)
	}

	fmt.Fprintf(w, "\n%-16s %3s %12s %10s %12s %10s  %s\n",
		"experiment", "n", "mean ms", "std ms", "cache hits", "misses", "gate")
	for _, st := range a.PerExperiment {
		gate := st.Status
		if st.BaselineWallMS > 0 {
			gate = fmt.Sprintf("%s (baseline %.1f ms)", st.Status, st.BaselineWallMS)
		}
		fmt.Fprintf(w, "%-16s %3d %12.1f %10.1f %12d %10d  %s\n",
			st.Name, st.Wall.N, st.Wall.Mean, st.Wall.Std,
			st.CacheHits, st.CacheMisses, gate)
	}

	fmt.Fprintf(w, "\ntotal wall      mean %.1f ms ± %.1f over %d run(s)\n",
		a.TotalWall.Mean, a.TotalWall.Std, a.TotalWall.N)
	if a.CovertBits > 0 {
		fmt.Fprintf(w, "covert BER      %.3e over %d tx bits\n", a.CovertBER, a.CovertBits)
	}
	if a.KeylogKeys > 0 {
		fmt.Fprintf(w, "keylog recall   %.3f over %d truth keys\n", a.KeylogRecall, a.KeylogKeys)
	}
	if base != nil {
		fmt.Fprintf(w, "baseline        tolerance %.0f%%, total wall %.1f ms, covert BER %.3e (+%.1e slack), keylog recall %.3f\n",
			base.Tolerance*100, base.TotalWallMS, base.CovertBER, base.BERSlack, base.KeylogRecall)
	}
}

// benchHistory is the slice of BENCH_experiments.json emreport cares
// about: the labeled wall-seconds trajectory.
type benchHistory struct {
	Machine     string             `json:"machine"`
	Date        string             `json:"date"`
	Workload    string             `json:"workload"`
	WallSeconds map[string]float64 `json:"wall_seconds"`
}

// renderHistory prints the recorded wall-seconds series, sorted by
// label for a stable layout.
func renderHistory(w io.Writer, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var h benchHistory
	if err := json.Unmarshal(raw, &h); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	fmt.Fprintf(w, "\nhistory (%s, %s):\n", path, h.Date)
	if h.Workload != "" {
		fmt.Fprintf(w, "  workload: %s\n", h.Workload)
	}
	labels := make([]string, 0, len(h.WallSeconds))
	for l := range h.WallSeconds {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(w, "  %-32s %8.3f s\n", l, h.WallSeconds[l])
	}
	return nil
}
