package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pmuleak/internal/artifacts"
	"pmuleak/internal/telemetry"
)

// writeRun persists one synthetic run directory with known wall times
// and scoring counters.
func writeRun(t *testing.T, root string, now time.Time, wallTable2, wallFleet float64) string {
	t.Helper()
	r := telemetry.NewRegistry()
	r.Counter("core.covert.tx_bits").Add(1000)
	r.Counter("core.covert.bit_errors").Add(2)
	r.Counter("core.keylog.truth_keys").Add(100)
	r.Counter("core.keylog.matched_keys").Add(95)
	m := artifacts.NewManifest(now)
	m.Flags["seed"] = "2020"
	m.WallSeconds = (wallTable2 + wallFleet) / 1000
	rows := []artifacts.Row{
		{Experiment: "table2", WallMS: wallTable2, CacheHits: 4, CacheMisses: 1},
		{Experiment: "fleet", WallMS: wallFleet},
	}
	dir, err := artifacts.WriteRun(root, now, m, rows, r.Snapshot(), []byte("report\n"))
	if err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	return dir
}

func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReportOnly: no baseline, well-formed runs, exit 0 with the
// grouped table and aggregates on stdout.
func TestReportOnly(t *testing.T) {
	root := t.TempDir()
	writeRun(t, root, time.Date(2026, 8, 9, 10, 0, 0, 0, time.UTC), 1000, 200)
	writeRun(t, root, time.Date(2026, 8, 9, 11, 0, 0, 0, time.UTC), 1200, 240)

	var out, errs bytes.Buffer
	if code := run([]string{root}, &out, &errs); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errs.String())
	}
	s := out.String()
	for _, want := range []string{
		"runs analyzed: 2",
		"table2",        // grouped row
		"1100.0",        // table2 mean
		"covert BER",    // aggregate
		"keylog recall", // aggregate
		"0.950",         // 190/200 recall
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "gates:") {
		t.Fatalf("report-only run printed a gate verdict:\n%s", s)
	}
}

// TestGatePassAndFail: a generous baseline exits 0 and prints the
// verdict; an impossible one exits 1 and lists the tripped gates on
// stderr.
func TestGatePassAndFail(t *testing.T) {
	root := t.TempDir()
	writeRun(t, root, time.Date(2026, 8, 9, 10, 0, 0, 0, time.UTC), 1000, 200)

	pass := writeBaseline(t, `{"tolerance":0.5,"total_wall_ms":1100,
		"experiments":[{"name":"table2","wall_ms":900}],
		"covert_ber":0.002,"ber_slack":1e-4,"keylog_recall":0.95}`)
	var out, errs bytes.Buffer
	if code := run([]string{"-baseline", pass, root}, &out, &errs); code != 0 {
		t.Fatalf("passing baseline exited %d, stderr: %s", code, errs.String())
	}
	if !strings.Contains(out.String(), "gates: all passed") {
		t.Fatalf("pass verdict missing:\n%s", out.String())
	}

	fail := writeBaseline(t, `{"tolerance":0,"total_wall_ms":0.001}`)
	out.Reset()
	errs.Reset()
	if code := run([]string{"-baseline", fail, root}, &out, &errs); code != 1 {
		t.Fatalf("impossible baseline exited %d, want 1", code)
	}
	if !strings.Contains(errs.String(), "FAIL total wall") {
		t.Fatalf("tripped gate not reported on stderr: %q", errs.String())
	}
}

// TestHistory renders the BENCH_experiments.json trajectory.
func TestHistory(t *testing.T) {
	root := t.TempDir()
	writeRun(t, root, time.Now().UTC(), 100, 50)
	hist := filepath.Join(t.TempDir(), "hist.json")
	if err := os.WriteFile(hist, []byte(`{"date":"2026-08-06","workload":"quick",
		"wall_seconds":{"after_defaults":20.407,"before_pr2_serial":23.235}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errs bytes.Buffer
	if code := run([]string{"-history", hist, root}, &out, &errs); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errs.String())
	}
	s := out.String()
	if !strings.Contains(s, "after_defaults") || !strings.Contains(s, "23.235") {
		t.Fatalf("history missing:\n%s", s)
	}
	// Sorted labels: after_defaults before before_pr2_serial.
	if strings.Index(s, "after_defaults") > strings.Index(s, "before_pr2_serial") {
		t.Fatalf("history labels not sorted:\n%s", s)
	}
}

// TestUsageAndIOErrors: bad invocations exit 2, never 1 (so CI can
// tell "regression" from "broken invocation").
func TestUsageAndIOErrors(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run(nil, &out, &errs); code != 2 {
		t.Fatalf("no args exited %d, want 2", code)
	}
	if code := run([]string{t.TempDir()}, &out, &errs); code != 2 {
		t.Fatalf("empty dir exited %d, want 2", code)
	}
	root := t.TempDir()
	writeRun(t, root, time.Now().UTC(), 100, 50)
	if code := run([]string{"-baseline", "/nonexistent.json", root}, &out, &errs); code != 2 {
		t.Fatalf("missing baseline exited %d, want 2", code)
	}
	if code := run([]string{"-history", "/nonexistent.json", root}, &out, &errs); code != 2 {
		t.Fatalf("missing history exited %d, want 2", code)
	}
}

// TestCheckedInBaselines: the CI baselines parse, the regression one is
// impossible to pass (total wall gate at a microsecond), and the quick
// one carries sane gates.
func TestCheckedInBaselines(t *testing.T) {
	quick, err := artifacts.LoadBaseline(filepath.Join("testdata", "baseline_quick.json"))
	if err != nil {
		t.Fatalf("baseline_quick.json: %v", err)
	}
	if quick.Tolerance <= 0 || quick.TotalWallMS <= 0 || quick.BERSlack <= 0 {
		t.Fatalf("quick baseline fields not sane: %+v", quick)
	}
	reg, err := artifacts.LoadBaseline(filepath.Join("testdata", "baseline_regression.json"))
	if err != nil {
		t.Fatalf("baseline_regression.json: %v", err)
	}
	if reg.TotalWallMS <= 0 || reg.TotalWallMS > 0.01 {
		t.Fatalf("regression baseline must gate total wall at an impossible value: %+v", reg)
	}
}
