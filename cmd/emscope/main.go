// Command emscope renders ASCII spectrograms of the simulated VRM
// emanations — the terminal equivalent of the paper's Fig. 2 (the
// active/idle micro-benchmark) and Fig. 11 (a typed sentence).
//
// Examples:
//
//	emscope                             # Fig. 2 micro-benchmark view
//	emscope -mode keys -text "hello hpca"
//	emscope -laptop "Sony Ultrabook" -active 5ms -idle 5ms
//	emscope -mode serve -streams 8 -workers 4 -verify   # emscoped daemon
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pmuleak/internal/core"
	"pmuleak/internal/dsp"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sim"
	"pmuleak/internal/workload"
)

func main() {
	var (
		mode     = flag.String("mode", "microbench", "microbench | keys | serve")
		model    = flag.String("laptop", laptop.Reference().Model, "target laptop model (see -list)")
		list     = flag.Bool("list", false, "list available laptop models and exit")
		active   = flag.Duration("active", 2*time.Millisecond, "micro-benchmark active period (t1)")
		idle     = flag.Duration("idle", 2*time.Millisecond, "micro-benchmark idle period (t2)")
		cycles   = flag.Int("cycles", 40, "micro-benchmark active/idle cycles")
		text     = flag.String("text", "can you hear me", "text for -mode keys")
		rows     = flag.Int("rows", 24, "display rows")
		cols     = flag.Int("cols", 100, "display columns")
		seed     = flag.Int64("seed", 1, "experiment seed")
		distance = flag.Float64("distance", 0.10, "antenna distance in meters")
		hifi     = flag.Bool("hifi", false, "use the pulse-train emission model (spectrum emerges from pulse timing)")
		csvPath  = flag.String("csv", "", "also write the spectrogram as CSV to this file")

		// -mode serve (emscoped): concurrent capture streams over the
		// stream.Daemon worker pool.
		streams = flag.Int("streams", 8, "serve: number of concurrent capture streams")
		workers = flag.Int("workers", 4, "serve: worker pool size")
		chunk   = flag.Int("chunk", 65536, "serve: samples per pushed chunk")
		queue   = flag.Int("queue", 8, "serve: per-stream queue depth in chunks (backpressure bound)")
		kind    = flag.String("kind", "mixed", "serve: stream mix — covert | keys | mixed")
		verify  = flag.Bool("verify", false, "serve: recompute each stream through the batch pipeline and require byte-identical output")
		adminA  = flag.String("admin", "", "serve: expose the live introspection plane (/metrics, /streams, /healthz, /debug/pprof) on this address, e.g. :9110 or 127.0.0.1:0")
		linger  = flag.Duration("linger", 0, "serve: keep the process (and -admin listener) alive this long after the final report")

		// Supervision: checkpoint/restore across process death, and the
		// deterministic chaos harness.
		checkpoint = flag.String("checkpoint", "", "serve: checkpoint directory — persist per-stream processor state and restore from it at startup (kill-and-resume)")
		ckptEvery  = flag.Int("ckpt-every", 8, "serve: write a checkpoint every N processed chunks per stream")
		chaosCls   = flag.String("chaos", "off", "serve: inject a deterministic chaos class — off | stall | slow | kill | corrupt")
		chaosSeed  = flag.Int64("chaos-seed", 1, "serve: seed for the chaos fault schedules (replayable)")
	)
	flag.Parse()

	if *list {
		for _, p := range laptop.Profiles() {
			fmt.Printf("%-24s %s, %s, VRM %.0f kHz\n",
				p.Model, p.OS(), p.Arch, p.VRM.SwitchingFreqHz/1e3)
		}
		return
	}
	prof, err := laptop.Lookup(*model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emscope: %v (try -list)\n", err)
		os.Exit(2)
	}
	tb := core.NewTestbed(
		core.WithLaptop(prof),
		core.WithSeed(*seed),
		core.WithDistance(*distance),
	)
	if err := tb.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "emscope: %v\n", err)
		os.Exit(2)
	}

	switch *mode {
	case "microbench":
		fmt.Printf("%s — VRM at %.0f kHz, tuned to %.0f kHz, t1=%v t2=%v\n",
			prof, prof.VRM.SwitchingFreqHz/1e3, 1.5*prof.VRM.SwitchingFreqHz/1e3,
			*active, *idle)
		var s *dsp.Spectrogram
		if *hifi {
			s = hifiSpectrogram(prof, sim.Time(active.Nanoseconds()),
				sim.Time(idle.Nanoseconds()), *cycles, *seed)
		} else {
			s = tb.MicrobenchSpectrogram(sim.Time(active.Nanoseconds()),
				sim.Time(idle.Nanoseconds()), *cycles)
		}
		core.RenderSpectrogram(os.Stdout, s, *rows, *cols)
		writeCSV(*csvPath, s)
		fmt.Println("\nThe horizontal stripes are the VRM switching fundamental and its")
		fmt.Println("first harmonic; they appear during active phases and vanish while idle.")
	case "keys":
		fmt.Printf("%s — typing %q\n", prof, *text)
		s, events := tb.KeylogSpectrogram(*text)
		core.RenderSpectrogram(os.Stdout, s, *rows, *cols)
		writeCSV(*csvPath, s)
		fmt.Printf("\n%d keystrokes injected; each vertical burst is one key press.\n", len(events))
	case "serve":
		os.Exit(runServe(prof, *seed, *distance, serveOptions{
			streams: *streams,
			workers: *workers,
			chunk:   *chunk,
			queue:   *queue,
			kind:    *kind,
			verify:  *verify,
			admin:   *adminA,
			linger:  *linger,

			checkpoint: *checkpoint,
			ckptEvery:  *ckptEvery,
			chaos:      *chaosCls,
			chaosSeed:  *chaosSeed,
		}))
	default:
		fmt.Fprintf(os.Stderr, "emscope: unknown mode %q\n", *mode)
		os.Exit(1)
	}
}

// writeCSV dumps the spectrogram to path when one was requested.
func writeCSV(path string, s *dsp.Spectrogram) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emscope: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := s.WriteCSV(f); err != nil {
		fmt.Fprintf(os.Stderr, "emscope: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("(spectrogram written to %s)\n", path)
}

// hifiSpectrogram runs the micro-benchmark and renders it with the
// pulse-train emission model, where the VRM comb emerges from the
// switching pulse timing itself.
func hifiSpectrogram(prof laptop.Profile, active, idle sim.Time, cycles int, seed int64) *dsp.Spectrogram {
	sys := laptop.NewSystem(prof, seed)
	defer sys.Close()
	workload.Microbench(sys.Kernel(), active, idle, cycles)
	horizon := sim.Time(float64(active+idle)*float64(cycles)*1.3) + 2*sim.Millisecond
	sys.Run(horizon)
	plan := sys.DefaultPlan()
	iq := sys.EmanationsPulseTrain(horizon, plan)
	return dsp.STFT(iq, 1024, 512, dsp.Hann(1024), plan.SampleRate)
}
