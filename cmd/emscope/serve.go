package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"reflect"
	"sync"
	"time"

	"pmuleak/internal/admin"
	"pmuleak/internal/core"
	"pmuleak/internal/covert"
	"pmuleak/internal/faults"
	"pmuleak/internal/keylog"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sdr"
	"pmuleak/internal/stream"
	"pmuleak/internal/telemetry"
)

// serveOptions is the `-mode serve` (emscoped) configuration.
type serveOptions struct {
	streams int
	workers int
	chunk   int
	queue   int
	kind    string // covert | keys | mixed
	verify  bool
	// admin is the introspection listener address ("" = off). The
	// listener serves /metrics, /streams, /healthz, and /debug/pprof
	// (internal/admin) for the life of the process; its actual address is
	// printed on stderr so ":0" works in scripts.
	admin string
	// linger keeps the process (and the admin listener) alive for this
	// long after the final report, so external probes can scrape a
	// finished daemon.
	linger time.Duration

	// checkpoint enables kill-and-resume: per-stream processor state is
	// persisted to this directory every ckptEvery chunks, restored at
	// startup, and removed when the stream finishes cleanly.
	checkpoint string
	ckptEvery  int
	// chaos selects a deterministic fault class (off | stall | slow |
	// kill | corrupt) keyed by chaosSeed — the same seed injects the
	// same faults at the same chunks on every run.
	chaos     string
	chaosSeed int64
}

// serveStream is one attached capture stream: its prepared ground
// truth, its incremental processor, and its daemon handle. The rx/kd
// field always points at the CURRENT processor — recovery after a
// quarantine swaps in a fresh one, and the report finalizes whatever is
// current.
type serveStream struct {
	name string
	// exactly one of the covert/keylog pairs is set
	pc *core.PreparedCovert
	rx *stream.CovertReceiver
	pk *core.PreparedKeylog
	kd *stream.KeylogDetector
	ds *stream.DaemonStream
}

// newProc (re)constructs the stream's processor from its prepared
// config — the initial build, and the recovery path's clean slate (a
// quarantined processor's state is mid-chunk garbage and must never be
// restored into or finalized).
func (s *serveStream) newProc() error {
	if s.pc != nil {
		rx, err := stream.NewCovertReceiver(s.pc.RXCfg, s.pc.Cap.SampleRate, s.pc.Cap.CenterFreqHz)
		if err != nil {
			return err
		}
		s.rx = rx
		return nil
	}
	kd, err := stream.NewKeylogDetector(s.pk.DetCfg, s.pk.Cap.SampleRate, s.pk.Cap.CenterFreqHz)
	if err != nil {
		return err
	}
	s.kd = kd
	return nil
}

func (s *serveStream) proc() stream.Processor {
	if s.rx != nil {
		return s.rx
	}
	return s.kd
}

func (s *serveStream) ckpt() stream.Checkpointer {
	if s.rx != nil {
		return s.rx
	}
	return s.kd
}

func (s *serveStream) capture() *sdr.Capture {
	if s.pc != nil {
		return s.pc.Cap
	}
	return s.pk.Cap
}

// chaosPlan maps a -chaos class name to its fault intensities and the
// supervisor stall deadline that makes the class bite: the stall class
// blocks well past the deadline (forcing retry → restart), the slow
// class stays well under it (forcing pure backpressure).
func chaosPlan(class string) (faults.ChaosConfig, time.Duration, error) {
	const deadline = 2 * time.Second
	switch class {
	case "", "off":
		return faults.ChaosConfig{}, deadline, nil
	case "stall":
		return faults.ChaosConfig{StallProb: 0.08, StallFor: 150 * time.Millisecond}, 25 * time.Millisecond, nil
	case "slow":
		return faults.ChaosConfig{SlowProb: 0.25, SlowFor: 2 * time.Millisecond}, deadline, nil
	case "kill":
		return faults.ChaosConfig{Kill: true, KillFrac: 0.6}, deadline, nil
	case "corrupt":
		return faults.ChaosConfig{CorruptCheckpoints: true}, deadline, nil
	default:
		return faults.ChaosConfig{}, 0, fmt.Errorf("unknown -chaos class %q (off | stall | slow | kill | corrupt)", class)
	}
}

// runServe is the emscoped entry point: it prepares one capture per
// stream (distinct seeds, so each stream carries different payloads and
// keystrokes), multiplexes all of them over a stream.Daemon worker
// pool in -chunk-sample chunks through bounded -queue rings, drains
// gracefully, and scores every stream's finalized output against its
// ground truth. With -verify it additionally recomputes each stream
// through the batch pipeline and requires the streamed result to match
// byte for byte — the CI daemon smoke gate.
//
// With -checkpoint the daemon persists processor state and restores it
// at startup, so a killed process resumes where it left off; with
// -chaos it injects one deterministic fault class and must STILL verify
// byte-identical — the chaos smoke gate. Returns the process exit code.
func runServe(prof laptop.Profile, seed int64, distance float64, o serveOptions) int {
	if o.streams < 1 || o.workers < 1 || o.chunk < 1 || o.queue < 1 {
		fmt.Fprintln(os.Stderr, "emscope: -streams, -workers, -chunk, and -queue must all be >= 1")
		return 2
	}
	chaosCfg, stallDeadline, err := chaosPlan(o.chaos)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emscope: %v\n", err)
		return 2
	}
	var chaos *faults.Chaos
	if chaosCfg.Enabled() {
		if chaos, err = faults.NewChaos(chaosCfg, o.chaosSeed); err != nil {
			fmt.Fprintf(os.Stderr, "emscope: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "emscoped: chaos class %q, seed %d\n", o.chaos, o.chaosSeed)
	}
	if o.checkpoint != "" {
		if err := os.MkdirAll(o.checkpoint, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "emscope: -checkpoint: %v\n", err)
			return 2
		}
	}
	fmt.Printf("%s — emscoped: %d streams (%s) over %d workers, chunk %d samples, queue %d chunks\n",
		prof, o.streams, o.kind, o.workers, o.chunk, o.queue)

	// The admin plane comes up before any stream is attached, so a
	// scraper watching /streams sees the daemon's whole life. Everything
	// it prints goes to stderr: stdout carries only the report.
	if o.admin != "" {
		l, err := net.Listen("tcp", o.admin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "emscope: -admin: %v\n", err)
			return 2
		}
		srv := admin.New()
		fmt.Fprintf(os.Stderr, "emscoped: admin plane listening on http://%s\n", l.Addr())
		go srv.Serve(l)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
	}

	streams := make([]*serveStream, o.streams)
	for i := range streams {
		tb := core.NewTestbed(
			core.WithLaptop(prof),
			core.WithSeed(seed+int64(i)),
			core.WithDistance(distance),
		)
		covertStream := o.kind == "covert" || (o.kind == "mixed" && i%2 == 0)
		s := &serveStream{}
		if covertStream {
			s.name = fmt.Sprintf("cov%d", i)
			s.pc = tb.PrepareCovert(core.CovertConfig{PayloadBits: 48})
		} else {
			s.name = fmt.Sprintf("key%d", i)
			s.pk = tb.PrepareKeylog(core.KeylogConfig{Words: 3})
		}
		if err := s.newProc(); err != nil {
			fmt.Fprintf(os.Stderr, "emscope: stream %s: %v\n", s.name, err)
			return 2
		}
		streams[i] = s
	}

	dopts := []stream.DaemonOption{}
	if o.checkpoint != "" {
		dopts = append(dopts, stream.WithCheckpoints(o.checkpoint, o.ckptEvery))
	}
	d := stream.NewDaemon(o.workers, dopts...)
	scfg := stream.SuperviseConfig{StallDeadline: stallDeadline, Seed: o.chaosSeed}

	feedErrs := make([]error, len(streams))
	var wg sync.WaitGroup
	for i, s := range streams {
		wg.Add(1)
		go func(i int, s *serveStream) {
			defer wg.Done()
			feedErrs[i] = feedStream(d, s, o, chaos, uint64(i), scfg)
		}(i, s)
	}
	wg.Wait()
	d.Drain()

	// Graceful-drain snapshot: the full final telemetry state as
	// deterministic JSON on stderr — the batch-vs-streamed identity
	// checks compare stdout, so the dump must not land there.
	fmt.Fprintln(os.Stderr, "emscoped: final telemetry snapshot after drain:")
	if err := telemetry.Capture().WriteJSON(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "emscope: telemetry dump: %v\n", err)
	}

	exit := 0
	for i, s := range streams {
		if feedErrs[i] != nil {
			fmt.Fprintf(os.Stderr, "emscope: stream %s: %v\n", s.name, feedErrs[i])
			exit = 1
			continue
		}
		raw := 16 * len(s.capture().IQ)
		if s.rx != nil {
			state := s.rx.StateBytes()
			demod := s.rx.Finalize()
			res := s.pc.Finish(demod)
			fmt.Printf("stream %-6s covert: %s payload_ok=%v  state %s of %s raw (%dx)\n",
				s.name, res.Measurement, res.Measurement.PayloadOK,
				fmtBytes(state), fmtBytes(raw), raw/state)
			if o.verify {
				batch := covert.Demodulate(s.pc.Cap, s.pc.RXCfg)
				exit = verdict(s.name, reflect.DeepEqual(demod, batch), exit)
			}
		} else {
			state := s.kd.StateBytes()
			det := s.kd.Finalize()
			res := s.pk.Finish(det)
			fmt.Printf("stream %-6s keylog: %d/%d keystrokes, TPR %.2f FPR %.2f  state %s of %s raw (%dx)\n",
				s.name, res.Char.Matched, res.Char.Truth, res.Char.TPR, res.Char.FPR,
				fmtBytes(state), fmtBytes(raw), raw/state)
			if o.verify {
				batch := keylog.Detect(s.pk.Cap, s.pk.DetCfg)
				exit = verdict(s.name, reflect.DeepEqual(det, batch), exit)
			}
		}
		// A finished stream's checkpoint is stale state — a later run
		// must start this stream fresh, not resume past its own end.
		if o.checkpoint != "" {
			os.Remove(stream.CheckpointPath(o.checkpoint, s.name))
		}
		s.capture().Recycle()
	}

	fmt.Println("\ntelemetry stream.daemon.*:")
	snap := telemetry.Capture().FilterPrefix("stream.daemon.")
	for _, name := range snap.CounterNames() {
		fmt.Printf("  %-40s %d\n", name, snap.Counters[name])
	}
	if o.verify {
		if exit == 0 {
			fmt.Printf("verify: all %d streams byte-identical to the batch pipelines\n", o.streams)
		} else {
			fmt.Println("verify: FAILED")
		}
	}
	if o.linger > 0 {
		fmt.Fprintf(os.Stderr, "emscoped: lingering %v (admin plane stays up)\n", o.linger)
		time.Sleep(o.linger)
	}
	return exit
}

// feedStream drives one stream to completion: restore from checkpoint
// if one exists, feed the remaining samples through a supervised
// source, and — when the stream is quarantined (a chaos kill, or a
// source the supervisor gave up on) — rebuild the processor, restore
// the last checkpoint, and replay from there, up to maxRecoveries
// times. Chunk-size invariance is what makes this byte-exact: a
// restored processor replaying iq[Consumed():] at any chunking finishes
// identical to the uninterrupted run.
func feedStream(d *stream.Daemon, s *serveStream, o serveOptions, chaos *faults.Chaos, key uint64, scfg stream.SuperviseConfig) error {
	iq := s.capture().IQ
	totalChunks := (len(iq) + o.chunk - 1) / o.chunk

	restore := func() {
		if o.checkpoint == "" {
			return
		}
		path := stream.CheckpointPath(o.checkpoint, s.name)
		if _, err := os.Stat(path); err != nil {
			return // no checkpoint: start fresh from sample 0
		}
		if chaos != nil {
			// The corrupt class rots the checkpoint before restore; the
			// digest check must turn that into a clean fresh start.
			if err := chaos.CorruptFile(key, path); err != nil {
				fmt.Fprintf(os.Stderr, "emscoped: %s: corrupt checkpoint: %v\n", s.name, err)
			}
		}
		if err := stream.RestoreCheckpoint(o.checkpoint, s.name, s.ckpt()); err != nil {
			fmt.Fprintf(os.Stderr, "emscoped: %s: checkpoint restore failed (%v), starting fresh\n", s.name, err)
			if nerr := s.newProc(); nerr != nil {
				// Construction succeeded once with the same config; a
				// failure here is unrecoverable.
				panic(nerr)
			}
			return
		}
		fmt.Fprintf(os.Stderr, "emscoped: %s: restored from checkpoint at sample %d/%d\n",
			s.name, s.ckpt().Consumed(), len(iq))
	}
	restore()

	const maxRecoveries = 3
	for attempt := 0; ; attempt++ {
		consumed := s.ckpt().Consumed()
		var src stream.Source = stream.NewSliceSource(iq[consumed:], o.chunk)
		proc := s.proc()
		if chaos != nil && attempt == 0 && consumed == 0 {
			// Chaos applies to the first, from-scratch attempt only: the
			// recovery and resume paths run clean, so every class
			// converges to the uninterrupted result.
			src = chaos.Source(key, src)
			proc = chaos.Processor(key, totalChunks, proc)
		}
		sv, err := d.Supervise(s.name, proc, o.queue, src, scfg)
		if err != nil {
			return err
		}
		s.ds = sv.DaemonStream
		sv.Wait()
		if !sv.Quarantined() {
			return nil
		}
		if attempt+1 >= maxRecoveries {
			return fmt.Errorf("gave up after %d recoveries: %v", attempt+1, sv.Err())
		}
		fmt.Fprintf(os.Stderr, "emscoped: %s: quarantined (%v) — recovering (attempt %d/%d)\n",
			s.name, sv.Err(), attempt+1, maxRecoveries-1)
		if err := s.newProc(); err != nil {
			return err
		}
		restore()
	}
}

// verdict prints one stream's verification outcome and folds it into
// the exit code.
func verdict(name string, ok bool, exit int) int {
	if ok {
		fmt.Printf("  verify %s: streamed output matches batch byte-for-byte\n", name)
		return exit
	}
	fmt.Fprintf(os.Stderr, "emscope: verify %s: streamed output DIVERGED from batch\n", name)
	return 1
}

// fmtBytes renders a byte count in the nearest binary unit.
func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
