package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"reflect"
	"sync"
	"time"

	"pmuleak/internal/admin"
	"pmuleak/internal/core"
	"pmuleak/internal/covert"
	"pmuleak/internal/keylog"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sdr"
	"pmuleak/internal/stream"
	"pmuleak/internal/telemetry"
)

// serveOptions is the `-mode serve` (emscoped) configuration.
type serveOptions struct {
	streams int
	workers int
	chunk   int
	queue   int
	kind    string // covert | keys | mixed
	verify  bool
	// admin is the introspection listener address ("" = off). The
	// listener serves /metrics, /streams, /healthz, and /debug/pprof
	// (internal/admin) for the life of the process; its actual address is
	// printed on stderr so ":0" works in scripts.
	admin string
	// linger keeps the process (and the admin listener) alive for this
	// long after the final report, so external probes can scrape a
	// finished daemon.
	linger time.Duration
}

// serveStream is one attached capture stream: its prepared ground
// truth, its incremental processor, and its daemon handle.
type serveStream struct {
	name string
	// exactly one of the covert/keylog pairs is set
	pc *core.PreparedCovert
	rx *stream.CovertReceiver
	pk *core.PreparedKeylog
	kd *stream.KeylogDetector
	ds *stream.DaemonStream
}

// runServe is the emscoped entry point: it prepares one capture per
// stream (distinct seeds, so each stream carries different payloads and
// keystrokes), multiplexes all of them over a stream.Daemon worker
// pool in -chunk-sample chunks through bounded -queue rings, drains
// gracefully, and scores every stream's finalized output against its
// ground truth. With -verify it additionally recomputes each stream
// through the batch pipeline and requires the streamed result to match
// byte for byte — the CI daemon smoke gate. Returns the process exit
// code.
func runServe(prof laptop.Profile, seed int64, distance float64, o serveOptions) int {
	if o.streams < 1 || o.workers < 1 || o.chunk < 1 || o.queue < 1 {
		fmt.Fprintln(os.Stderr, "emscope: -streams, -workers, -chunk, and -queue must all be >= 1")
		return 2
	}
	fmt.Printf("%s — emscoped: %d streams (%s) over %d workers, chunk %d samples, queue %d chunks\n",
		prof, o.streams, o.kind, o.workers, o.chunk, o.queue)

	// The admin plane comes up before any stream is attached, so a
	// scraper watching /streams sees the daemon's whole life. Everything
	// it prints goes to stderr: stdout carries only the report.
	if o.admin != "" {
		l, err := net.Listen("tcp", o.admin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "emscope: -admin: %v\n", err)
			return 2
		}
		srv := admin.New()
		fmt.Fprintf(os.Stderr, "emscoped: admin plane listening on http://%s\n", l.Addr())
		go srv.Serve(l)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
	}

	streams := make([]*serveStream, o.streams)
	for i := range streams {
		tb := core.NewTestbed(
			core.WithLaptop(prof),
			core.WithSeed(seed+int64(i)),
			core.WithDistance(distance),
		)
		covertStream := o.kind == "covert" || (o.kind == "mixed" && i%2 == 0)
		s := &serveStream{}
		if covertStream {
			s.name = fmt.Sprintf("cov%d", i)
			s.pc = tb.PrepareCovert(core.CovertConfig{PayloadBits: 48})
			rx, err := stream.NewCovertReceiver(s.pc.RXCfg, s.pc.Cap.SampleRate, s.pc.Cap.CenterFreqHz)
			if err != nil {
				fmt.Fprintf(os.Stderr, "emscope: stream %s: %v\n", s.name, err)
				return 2
			}
			s.rx = rx
		} else {
			s.name = fmt.Sprintf("key%d", i)
			s.pk = tb.PrepareKeylog(core.KeylogConfig{Words: 3})
			kd, err := stream.NewKeylogDetector(s.pk.DetCfg, s.pk.Cap.SampleRate, s.pk.Cap.CenterFreqHz)
			if err != nil {
				fmt.Fprintf(os.Stderr, "emscope: stream %s: %v\n", s.name, err)
				return 2
			}
			s.kd = kd
		}
		streams[i] = s
	}

	d := stream.NewDaemon(o.workers)
	var wg sync.WaitGroup
	for _, s := range streams {
		iq := s.capture().IQ
		proc := stream.Processor(s.rx)
		if s.kd != nil {
			proc = s.kd
		}
		s.ds = d.Attach(s.name, proc, o.queue)
		wg.Add(1)
		go func(s *serveStream, iq []complex128) {
			defer wg.Done()
			for _, chunk := range stream.Chunks(iq, o.chunk) {
				s.ds.Push(chunk)
			}
			s.ds.Close()
		}(s, iq)
	}
	wg.Wait()
	d.Drain()

	// Graceful-drain snapshot: the full final telemetry state as
	// deterministic JSON on stderr — the batch-vs-streamed identity
	// checks compare stdout, so the dump must not land there.
	fmt.Fprintln(os.Stderr, "emscoped: final telemetry snapshot after drain:")
	if err := telemetry.Capture().WriteJSON(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "emscope: telemetry dump: %v\n", err)
	}

	exit := 0
	for _, s := range streams {
		raw := 16 * len(s.capture().IQ)
		if s.rx != nil {
			state := s.rx.StateBytes()
			demod := s.rx.Finalize()
			res := s.pc.Finish(demod)
			fmt.Printf("stream %-6s covert: %s payload_ok=%v  state %s of %s raw (%dx)\n",
				s.name, res.Measurement, res.Measurement.PayloadOK,
				fmtBytes(state), fmtBytes(raw), raw/state)
			if o.verify {
				batch := covert.Demodulate(s.pc.Cap, s.pc.RXCfg)
				exit = verdict(s.name, reflect.DeepEqual(demod, batch), exit)
			}
		} else {
			state := s.kd.StateBytes()
			det := s.kd.Finalize()
			res := s.pk.Finish(det)
			fmt.Printf("stream %-6s keylog: %d/%d keystrokes, TPR %.2f FPR %.2f  state %s of %s raw (%dx)\n",
				s.name, res.Char.Matched, res.Char.Truth, res.Char.TPR, res.Char.FPR,
				fmtBytes(state), fmtBytes(raw), raw/state)
			if o.verify {
				batch := keylog.Detect(s.pk.Cap, s.pk.DetCfg)
				exit = verdict(s.name, reflect.DeepEqual(det, batch), exit)
			}
		}
		s.capture().Recycle()
	}

	fmt.Println("\ntelemetry stream.daemon.*:")
	snap := telemetry.Capture().FilterPrefix("stream.daemon.")
	for _, name := range snap.CounterNames() {
		fmt.Printf("  %-40s %d\n", name, snap.Counters[name])
	}
	if o.verify {
		if exit == 0 {
			fmt.Printf("verify: all %d streams byte-identical to the batch pipelines\n", o.streams)
		} else {
			fmt.Println("verify: FAILED")
		}
	}
	if o.linger > 0 {
		fmt.Fprintf(os.Stderr, "emscoped: lingering %v (admin plane stays up)\n", o.linger)
		time.Sleep(o.linger)
	}
	return exit
}

func (s *serveStream) capture() *sdr.Capture {
	if s.pc != nil {
		return s.pc.Cap
	}
	return s.pk.Cap
}

// verdict prints one stream's verification outcome and folds it into
// the exit code.
func verdict(name string, ok bool, exit int) int {
	if ok {
		fmt.Printf("  verify %s: streamed output matches batch byte-for-byte\n", name)
		return exit
	}
	fmt.Fprintf(os.Stderr, "emscope: verify %s: streamed output DIVERGED from batch\n", name)
	return 1
}

// fmtBytes renders a byte count in the nearest binary unit.
func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
