// Command keylog runs the §V keystroke-logging attack against a
// simulated typing session and reports the Table IV accuracy metrics.
//
// Examples:
//
//	keylog -words 50
//	keylog -text "hunter2 correct horse battery staple"
//	keylog -distance 2 -antenna loop
//	keylog -distance 1.5 -wall 15 -antenna loop   # through the wall
package main

import (
	"flag"
	"fmt"
	"os"

	"pmuleak/internal/core"
	"pmuleak/internal/keylog"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sdr"
)

func main() {
	var (
		model    = flag.String("laptop", "Dell Precision 7290", "target laptop model")
		distance = flag.Float64("distance", 0.10, "antenna distance in meters")
		wall     = flag.Float64("wall", 0, "wall penetration loss in dB")
		antenna  = flag.String("antenna", "probe", "probe | loop")
		words    = flag.Int("words", 30, "random words to type (ignored with -text)")
		text     = flag.String("text", "", "type this text instead of random words")
		seed     = flag.Int64("seed", 1, "experiment seed")
		verbose  = flag.Bool("v", false, "print per-word reconstruction")
	)
	flag.Parse()

	prof, err := laptop.Lookup(*model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "keylog: %v\n", err)
		os.Exit(2)
	}
	ant := sdr.CoilProbe
	if *antenna == "loop" {
		ant = sdr.LoopLA390
	}
	tb := core.NewTestbed(
		core.WithLaptop(prof),
		core.WithDistance(*distance),
		core.WithWall(*wall),
		core.WithAntenna(ant),
		core.WithSeed(*seed),
	)

	if err := tb.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "keylog: %v\n", err)
		os.Exit(2)
	}

	res := tb.RunKeylog(core.KeylogConfig{Text: *text, Words: *words})

	fmt.Printf("target    : %s\n", prof)
	fmt.Printf("path      : %.2f m, wall %.0f dB, %s\n", *distance, *wall, ant.Name)
	fmt.Printf("typed     : %d keystrokes, %d words\n", res.Char.Truth, res.Word.Truth)
	fmt.Printf("detected  : %d keystrokes, %d words\n", res.Char.Detected, res.Word.Retrieved)
	fmt.Printf("chars     : TPR %.1f%%  FPR %.1f%%\n", 100*res.Char.TPR, 100*res.Char.FPR)
	fmt.Printf("words     : precision %.1f%%  recall %.1f%%\n",
		100*res.Word.Precision, 100*res.Word.Recall)
	hints := keylog.AnalyzeTiming(res.Detection.Keystrokes)
	bits, informative := keylog.SearchSpaceReduction(hints, keylog.DefaultTypistConfig())
	fmt.Printf("timing    : %d informative intervals, ~%.0f bits toward key identification\n",
		informative, bits)
	if *verbose {
		fmt.Printf("text      : %q\n", res.Text)
	}
}
