package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"strconv"
	"time"

	"pmuleak/internal/artifacts"
	"pmuleak/internal/experiments"
	"pmuleak/internal/telemetry"
)

// artifactRun accumulates everything -artifacts persists while the
// harness runs: the stdout bytes (teed, so real stdout is untouched),
// their digest, and the per-experiment rows.
type artifactRun struct {
	hash   hash.Hash
	report bytes.Buffer
	rows   []artifacts.Row
	start  time.Time
}

func newArtifactRun() *artifactRun {
	return &artifactRun{hash: sha256.New(), start: time.Now()}
}

// tee returns the writer the experiment renderers should use: the real
// stdout plus the digest and the report copy.
func (a *artifactRun) tee(stdout io.Writer) io.Writer {
	return io.MultiWriter(stdout, a.hash, &a.report)
}

func (a *artifactRun) addRow(name string, wall time.Duration, hits, misses uint64) {
	a.rows = append(a.rows, artifacts.Row{
		Experiment:  name,
		WallMS:      float64(wall) / float64(time.Millisecond),
		CacheHits:   hits,
		CacheMisses: misses,
	})
}

// write persists the run directory and returns its path.
func (a *artifactRun) write(cfg benchConfig, snap telemetry.Snapshot) (string, error) {
	now := time.Now()
	m := artifacts.NewManifest(now)
	m.Flags = manifestFlags(cfg)
	m.WallSeconds = now.Sub(a.start).Seconds()
	m.StdoutSHA256 = hex.EncodeToString(a.hash.Sum(nil))
	return artifacts.WriteRun(cfg.Artifacts, now, m, a.rows, snap, a.report.Bytes())
}

// manifestFlags flattens the run configuration into the manifest's
// stringly-typed flag map. Every knob that exists is recorded — the
// report-identity ones (scale, only, seed, spectrograms, cells) because
// -validate replays them, the execution-only ones (jobs, caches,
// shards, nofused) because a regression hunt needs to know how the
// timed run was shaped.
func manifestFlags(cfg benchConfig) map[string]string {
	return map[string]string{
		"scale.payload_bits": strconv.Itoa(cfg.Scale.PayloadBits),
		"scale.runs":         strconv.Itoa(cfg.Scale.Runs),
		"scale.words":        strconv.Itoa(cfg.Scale.Words),
		"scale.cells":        strconv.FormatInt(cfg.Scale.Cells, 10),
		"only":               cfg.Only,
		"seed":               strconv.FormatInt(cfg.Seed, 10),
		"spectrograms":       strconv.FormatBool(cfg.Show),
		"parallel":           strconv.Itoa(cfg.Parallel),
		"jobs":               strconv.Itoa(cfg.Jobs),
		"tracecache":         strconv.FormatBool(cfg.TraceCache),
		"tracecache_cap":     strconv.Itoa(cfg.TraceCacheCap),
		"cells":              strconv.FormatInt(cfg.Cells, 10),
		"shards":             strconv.Itoa(cfg.Shards),
		"nofused":            strconv.FormatBool(cfg.NoFused),
	}
}

// configFromManifest reconstructs a replayable benchConfig from
// recorded flags. Observational outputs (stats, metrics, profiles,
// artifacts) stay off: the replay's only product is the stdout digest.
func configFromManifest(m artifacts.Manifest) (benchConfig, error) {
	get := func(key string) (string, error) {
		v, ok := m.Flags[key]
		if !ok {
			return "", fmt.Errorf("manifest flags missing %q", key)
		}
		return v, nil
	}
	atoi := func(key string) (int, error) {
		v, err := get(key)
		if err != nil {
			return 0, err
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("manifest flag %s=%q: %w", key, v, err)
		}
		return n, nil
	}
	atob := func(key string) (bool, error) {
		v, err := get(key)
		if err != nil {
			return false, err
		}
		b, err := strconv.ParseBool(v)
		if err != nil {
			return false, fmt.Errorf("manifest flag %s=%q: %w", key, v, err)
		}
		return b, nil
	}
	var cfg benchConfig
	var err error
	var scale experiments.Scale
	if scale.PayloadBits, err = atoi("scale.payload_bits"); err != nil {
		return cfg, err
	}
	if scale.Runs, err = atoi("scale.runs"); err != nil {
		return cfg, err
	}
	if scale.Words, err = atoi("scale.words"); err != nil {
		return cfg, err
	}
	cellsStr, err := get("scale.cells")
	if err != nil {
		return cfg, err
	}
	if scale.Cells, err = strconv.ParseInt(cellsStr, 10, 64); err != nil {
		return cfg, fmt.Errorf("manifest flag scale.cells=%q: %w", cellsStr, err)
	}
	cfg.Scale = scale
	if cfg.Only, err = get("only"); err != nil {
		return cfg, err
	}
	seedStr, err := get("seed")
	if err != nil {
		return cfg, err
	}
	if cfg.Seed, err = strconv.ParseInt(seedStr, 10, 64); err != nil {
		return cfg, fmt.Errorf("manifest flag seed=%q: %w", seedStr, err)
	}
	if cfg.Show, err = atob("spectrograms"); err != nil {
		return cfg, err
	}
	if cfg.Parallel, err = atoi("parallel"); err != nil {
		return cfg, err
	}
	if cfg.Jobs, err = atoi("jobs"); err != nil {
		return cfg, err
	}
	if cfg.TraceCache, err = atob("tracecache"); err != nil {
		return cfg, err
	}
	if cfg.TraceCacheCap, err = atoi("tracecache_cap"); err != nil {
		return cfg, err
	}
	runCellsStr, err := get("cells")
	if err != nil {
		return cfg, err
	}
	if cfg.Cells, err = strconv.ParseInt(runCellsStr, 10, 64); err != nil {
		return cfg, fmt.Errorf("manifest flag cells=%q: %w", runCellsStr, err)
	}
	if cfg.Shards, err = atoi("shards"); err != nil {
		return cfg, err
	}
	if cfg.NoFused, err = atob("nofused"); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// runValidate is the validate-only mode: replay the manifest's recorded
// flags with stdout routed into a digest and compare against the
// recorded one. The report itself is not printed — the digest carries
// the byte-identity claim; the verdict goes to stdout.
func runValidate(path string, stdout, stderr io.Writer) int {
	m, err := artifacts.ReadManifest(path)
	if err != nil {
		fmt.Fprintf(stderr, "paperbench: -validate: %v\n", err)
		return 2
	}
	if m.StdoutSHA256 == "" {
		fmt.Fprintf(stderr, "paperbench: -validate: manifest %s records no stdout digest\n", path)
		return 2
	}
	cfg, err := configFromManifest(m)
	if err != nil {
		fmt.Fprintf(stderr, "paperbench: -validate: %v\n", err)
		return 2
	}
	fmt.Fprintf(stderr, "# validate: replaying %s (seed %s, scale %s/%s/%s/%s bits/runs/words/cells)\n",
		path, m.Flags["seed"], m.Flags["scale.payload_bits"], m.Flags["scale.runs"],
		m.Flags["scale.words"], m.Flags["scale.cells"])
	h := sha256.New()
	if code := execute(cfg, h, stderr); code != 0 {
		fmt.Fprintf(stderr, "paperbench: -validate: replay exited %d\n", code)
		return code
	}
	got := hex.EncodeToString(h.Sum(nil))
	if got != m.StdoutSHA256 {
		fmt.Fprintf(stderr, "paperbench: -validate: stdout digest DIVERGED\nrecorded %s\nreplayed %s\n",
			m.StdoutSHA256, got)
		return 1
	}
	fmt.Fprintf(stdout, "validate: OK — replay reproduced stdout digest %s\n", got)
	return 0
}
