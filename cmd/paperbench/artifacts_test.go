// The artifacts and validate tests cost four extra full renders on top
// of the package's golden baseline; under the race detector's ~10x
// slowdown that blows the CI race job's timeout, and the paths they
// pin (stdout teeing, run-dir writing, manifest replay) are sequential
// I/O with no concurrency of their own — the race build keeps the
// orchestrator-equivalence coverage and skips these.
//go:build !race

package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmuleak/internal/artifacts"
	"pmuleak/internal/core"
	"pmuleak/internal/sweep"
)

// resetOrchestrator restores the production defaults execute() mutates.
func resetOrchestrator(t *testing.T) {
	t.Cleanup(func() {
		sweep.SetDefaultJobs(0)
		core.SetTraceCacheEnabled(true)
		core.ResetTraceCache()
	})
}

// executeArtifacts runs the harness with -artifacts under the golden
// settings (serial, uncached, seed 2020) and returns stdout plus the
// run directory.
func executeArtifacts(t *testing.T, root string) ([]byte, string) {
	t.Helper()
	core.ResetTraceCache()
	var out, errs bytes.Buffer
	cfg := benchConfig{Scale: goldenScale, Seed: 2020, Jobs: 1, Artifacts: root}
	if code := execute(cfg, &out, &errs); code != 0 {
		t.Fatalf("execute with -artifacts exited %d\nstderr:\n%s", code, errs.String())
	}
	dirs, err := artifacts.DiscoverRuns(root)
	if err != nil || len(dirs) != 1 {
		t.Fatalf("DiscoverRuns after one run = %v, %v", dirs, err)
	}
	return out.Bytes(), dirs[0]
}

// TestArtifactsGoldenStdout pins the -artifacts contract: stdout is
// byte-identical with artifacts on or off, and the persisted report is
// byte-identical to stdout.
func TestArtifactsGoldenStdout(t *testing.T) {
	resetOrchestrator(t)
	baseline := goldenBaseline(t) // artifacts off

	out, dir := executeArtifacts(t, t.TempDir())
	if !bytes.Equal(out, baseline) {
		t.Fatalf("stdout with -artifacts differs from baseline\nfirst divergence: %s",
			firstDiff(baseline, out))
	}

	report, err := os.ReadFile(filepath.Join(dir, artifacts.ReportFile))
	if err != nil {
		t.Fatalf("reading %s: %v", artifacts.ReportFile, err)
	}
	if !bytes.Equal(report, baseline) {
		t.Fatalf("persisted report differs from stdout\nfirst divergence: %s",
			firstDiff(baseline, report))
	}

	run, err := artifacts.LoadRun(dir)
	if err != nil {
		t.Fatalf("LoadRun: %v", err)
	}
	if len(run.Rows) != len(registry()) {
		t.Fatalf("experiments.csv has %d rows, want one per experiment (%d)",
			len(run.Rows), len(registry()))
	}
	for i, s := range registry() {
		if run.Rows[i].Experiment != s.Name {
			t.Fatalf("row %d is %q, want %q (registry order)", i, run.Rows[i].Experiment, s.Name)
		}
	}
	sum := sha256.Sum256(baseline)
	if run.Manifest.StdoutSHA256 != hex.EncodeToString(sum[:]) {
		t.Fatalf("manifest digest %s does not match stdout", run.Manifest.StdoutSHA256)
	}
	if run.Manifest.Flags["seed"] != "2020" || run.Manifest.Flags["jobs"] != "1" {
		t.Fatalf("manifest flags incomplete: %v", run.Manifest.Flags)
	}
	if run.Snapshot.Counters["core.covert.tx_bits"] == 0 {
		t.Fatalf("persisted snapshot missing scoring counters: %v", run.Snapshot.Counters)
	}
}

// TestValidateReplay drives -validate through its three outcomes:
// a faithful manifest replays to exit 0, a tampered seed diverges to
// exit 1, and a manifest without a digest is unusable (exit 2).
func TestValidateReplay(t *testing.T) {
	resetOrchestrator(t)
	_, dir := executeArtifacts(t, t.TempDir())
	manifestPath := filepath.Join(dir, artifacts.ManifestFile)

	var out, errs bytes.Buffer
	if code := runValidate(manifestPath, &out, &errs); code != 0 {
		t.Fatalf("validate of a faithful manifest exited %d\nstderr:\n%s", code, errs.String())
	}
	if !strings.Contains(out.String(), "validate: OK") {
		t.Fatalf("validate verdict missing from stdout: %q", out.String())
	}

	// Tamper with the recorded seed: the replay must produce a different
	// report and the digest check must catch it.
	m, err := artifacts.ReadManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	m.Flags["seed"] = "2021"
	tampered, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifestPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errs.Reset()
	if code := runValidate(manifestPath, &out, &errs); code != 1 {
		t.Fatalf("validate of a tampered manifest exited %d, want 1\nstderr:\n%s",
			code, errs.String())
	}
	if !strings.Contains(errs.String(), "DIVERGED") {
		t.Fatalf("divergence not reported: %q", errs.String())
	}

	// A manifest without a recorded digest cannot be validated.
	m.StdoutSHA256 = ""
	broken, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifestPath, broken, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runValidate(manifestPath, &out, &errs); code != 2 {
		t.Fatalf("validate without a digest exited %d, want 2", code)
	}
}

// TestManifestFlagsRoundTrip pins that every recorded flag reconstructs
// the configuration it came from, including a custom scale.
func TestManifestFlagsRoundTrip(t *testing.T) {
	cfg := benchConfig{
		Scale:         goldenScale,
		Only:          "table2",
		Seed:          7,
		Show:          true,
		Parallel:      2,
		Jobs:          3,
		TraceCache:    true,
		TraceCacheCap: 9,
		Cells:         1 << 10,
		Shards:        4,
		NoFused:       true,
	}
	m := artifacts.Manifest{Flags: manifestFlags(cfg)}
	got, err := configFromManifest(m)
	if err != nil {
		t.Fatalf("configFromManifest: %v", err)
	}
	if got != cfg {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cfg)
	}

	delete(m.Flags, "seed")
	if _, err := configFromManifest(m); err == nil {
		t.Fatal("missing seed flag not rejected")
	}
}
