package main

import (
	"bytes"
	"fmt"
	"testing"

	"pmuleak/internal/core"
	"pmuleak/internal/sweep"
	"pmuleak/internal/telemetry"
)

// renderFleet runs only the fleet experiment through the binary's
// execute path under the given campaign knobs.
func renderFleet(t *testing.T, shards, jobs, cacheCap int, cells int64) []byte {
	t.Helper()
	core.ResetTraceCache()
	cfg := benchConfig{
		Scale:         goldenScale,
		Only:          "fleet",
		Seed:          2020,
		Jobs:          jobs,
		Shards:        shards,
		Cells:         cells,
		TraceCache:    true,
		TraceCacheCap: cacheCap,
	}
	var out, errs bytes.Buffer
	if code := execute(cfg, &out, &errs); code != 0 {
		t.Fatalf("shards=%d jobs=%d: execute returned %d, stderr:\n%s",
			shards, jobs, code, errs.String())
	}
	return out.Bytes()
}

// TestFleetShardGolden is the campaign layer's end-to-end acceptance
// criterion: the fleet report on stdout must be byte-identical at every
// shard count × worker count, and at every trace-cache capacity. Only
// -cells may change the report — it selects a different population.
func TestFleetShardGolden(t *testing.T) {
	t.Cleanup(func() {
		sweep.SetDefaultJobs(0)
		core.SetTraceCacheEnabled(true)
		core.SetTraceCacheCapacity(0)
		core.ResetTraceCache()
		telemetry.Reset()
	})

	baseline := renderFleet(t, 1, 1, 0, 0)
	if len(baseline) == 0 {
		t.Fatal("fleet render is empty")
	}
	for _, grid := range fleetGoldenGrid {
		t.Run(fmt.Sprintf("shards=%d,jobs=%d", grid.shards, grid.jobs), func(t *testing.T) {
			got := renderFleet(t, grid.shards, grid.jobs, 0, 0)
			if !bytes.Equal(got, baseline) {
				t.Fatalf("fleet report differs from shards=1/jobs=1 baseline\nfirst divergence: %s",
					firstDiff(baseline, got))
			}
		})
	}

	// A tiny trace-cache capacity forces the anchor sweep through
	// eviction and re-simulation; the report must not move a byte.
	t.Run("tracecache-cap=2", func(t *testing.T) {
		got := renderFleet(t, 4, 4, 2, 0)
		if !bytes.Equal(got, baseline) {
			t.Fatalf("fleet report depends on trace-cache capacity\nfirst divergence: %s",
				firstDiff(baseline, got))
		}
	})

	// -cells IS part of the report's identity: a different population
	// must produce a different (but valid) report. Guards against the
	// flag being silently dropped on the way to the campaign.
	t.Run("cells-override", func(t *testing.T) {
		got := renderFleet(t, 4, 4, 0, goldenScale.Cells/2)
		if bytes.Equal(got, baseline) {
			t.Fatal("-cells override did not change the fleet report")
		}
		if !bytes.Contains(got, []byte(fmt.Sprintf("population: %d cells", goldenScale.Cells/2))) {
			t.Fatalf("fleet report does not state the overridden population:\n%s", got)
		}
	})
}
