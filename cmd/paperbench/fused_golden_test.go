package main

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"pmuleak/internal/core"
	"pmuleak/internal/dsp"
	"pmuleak/internal/sweep"
	"pmuleak/internal/telemetry"
)

// TestGoldenFusedKernels is the acceptance gate for the fused/real-input
// DSP kernels: the harness stdout for every registered experiment must
// be byte-identical with the kernels enabled and disabled (-nofused), at
// every -jobs setting in the build-tagged grid. It runs through
// execute(), so the comparison covers the actual flag wiring, not just
// the DSP layer. The -metrics snapshot doubles as proof that each mode
// really took its intended path: the radix4/fused-gather counters must
// be hot with the kernels on, and every kernel counter exactly zero
// with them off. (dsp.fft.rfft is only asserted zero-when-off: the
// harness feeds complex IQ everywhere, so the real-input kernel's
// pipeline reach is OverlapSave, which the receiver keeps off its
// decision paths by design — the dsp suite and benchmarks exercise it
// directly.)
func TestGoldenFusedKernels(t *testing.T) {
	t.Cleanup(func() {
		sweep.SetDefaultJobs(0)
		core.SetTraceCacheEnabled(true)
		core.ResetTraceCache()
		dsp.SetDefaultParallelism(0)
		dsp.SetFusedKernels(true)
		telemetry.Reset()
	})

	baseline := goldenBaseline(t)
	offCounters := []string{"dsp.fft.rfft", "dsp.fft.radix4.pairs", "dsp.fft.fusedgather"}
	hotCounters := []string{"dsp.fft.radix4.pairs", "dsp.fft.fusedgather"}
	for _, nofused := range fusedGoldenModes {
		for _, jobs := range telemetryGoldenJobs {
			t.Run(fmt.Sprintf("nofused=%v,jobs=%d", nofused, jobs), func(t *testing.T) {
				core.ResetTraceCache()
				telemetry.Reset()
				mpath := filepath.Join(t.TempDir(), "metrics.json")
				cfg := benchConfig{
					Scale:      goldenScale,
					Seed:       2020,
					Jobs:       jobs,
					TraceCache: true,
					NoFused:    nofused,
					Metrics:    mpath,
				}
				var out, errs bytes.Buffer
				if code := execute(cfg, &out, &errs); code != 0 {
					t.Fatalf("execute returned %d, stderr:\n%s", code, errs.String())
				}
				if !bytes.Equal(out.Bytes(), baseline) {
					t.Fatalf("stdout differs from baseline\n"+
						"baseline %d bytes, got %d bytes\nfirst divergence: %s",
						len(baseline), len(out.Bytes()), firstDiff(baseline, out.Bytes()))
				}
				snap := readSnapshot(t, mpath)
				if nofused {
					for _, name := range offCounters {
						if got := snap.Counters[name]; got != 0 {
							t.Errorf("counter %s = %d with kernels disabled, want 0", name, got)
						}
					}
				} else {
					for _, name := range hotCounters {
						if snap.Counters[name] == 0 {
							t.Errorf("counter %s is zero with kernels enabled", name)
						}
					}
				}
			})
		}
	}
}
