// Command paperbench regenerates every table and figure of the paper's
// evaluation section and prints each measured result next to the value
// the paper reports. Absolute numbers come from a simulation, not the
// authors' testbed; what should match is the shape — who wins, by what
// factor, and where the knees fall.
//
// Usage:
//
//	paperbench              # everything, at full scale
//	paperbench -quick       # CI-sized runs
//	paperbench -only table2 # one experiment; an unknown name exits
//	                        # non-zero and lists the valid names (the
//	                        # list lives in the experiment registry,
//	                        # cmd/paperbench/registry.go)
//	paperbench -jobs 4      # experiment-cell worker count
//	paperbench -metrics m.json -pprof-cpu cpu.pb.gz
//
// Experiments run on the internal/sweep orchestrator: independent
// (laptop × run × sweep-point) cells fan out across -jobs workers, and
// sweeps that differ only receiver-side replay memoized transmitter
// traces (-tracecache). Reports are byte-identical for every -jobs /
// -tracecache / telemetry setting: stdout carries only the experiment
// report, while timing, cache statistics, and the telemetry summary go
// to stderr, the -metrics JSON snapshot to its own file, and profiles
// to theirs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pmuleak/internal/core"
	"pmuleak/internal/dsp"
	"pmuleak/internal/experiments"
	"pmuleak/internal/sweep"
	"pmuleak/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchConfig is the parsed command line. The golden tests build it
// directly (bypassing flag parsing) to drive the harness in-process.
type benchConfig struct {
	Scale      experiments.Scale
	Only       string
	Seed       int64
	Show       bool
	Parallel   int
	Jobs       int
	TraceCache bool
	// TraceCacheCap resizes the transmitter-trace LRU (0 = default
	// capacity); Cells and Shards drive the fleet campaign's population
	// and execution batching. None of the three changes a report byte
	// (Cells changes which report is produced, not its stability).
	TraceCacheCap int
	Cells         int64
	Shards        int
	// NoFused disables the fused/real-input DSP kernels, forcing the
	// reference serial transforms. Named negatively so the zero value —
	// which every test that builds benchConfig directly gets — keeps the
	// production default (fused on).
	NoFused   bool
	Stats     bool
	Metrics   string // write a telemetry JSON snapshot here at exit
	PprofCPU  string // write a runtime/pprof CPU profile here
	PprofHeap string // write a runtime/pprof heap profile here
	// Artifacts names a root directory to persist this run under: a
	// timestamped subdirectory holding the per-experiment CSV, the
	// telemetry snapshot, the stdout report, and an environment
	// manifest (internal/artifacts). Stdout stays byte-identical with
	// artifacts on or off.
	Artifacts string
	// Validate names a manifest.json (or run directory) to replay: the
	// recorded flags are re-executed and the fresh stdout digest must
	// match the manifest's. Nonzero exit on divergence.
	Validate string
}

// run parses args and executes the harness. Split from main so tests
// can run the binary's exact code path against in-memory streams.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick      = fs.Bool("quick", false, "CI-sized experiment scale")
		only       = fs.String("only", "", "run a single experiment: "+strings.Join(registryNames(), ", "))
		seed       = fs.Int64("seed", 2020, "experiment seed")
		show       = fs.Bool("spectrograms", false, "render ASCII spectrograms for the figures")
		parallel   = fs.Int("parallel", 0, "DSP worker count: 0 = all CPUs, 1 = serial, n = n workers (results are bit-identical either way)")
		jobs       = fs.Int("jobs", 0, "experiment-cell worker count: 0 = all CPUs, 1 = exact legacy serial (results are bit-identical either way)")
		tracecache = fs.Bool("tracecache", true, "memoize transmitter traces across receiver-side sweeps (results are bit-identical either way)")
		tccap      = fs.Int("tracecache-cap", 0, "transmitter-trace cache capacity in entries: 0 = default; size to the anchor working set for fleet-scale runs (results are bit-identical at every capacity)")
		cells      = fs.Int64("cells", 0, "fleet campaign population size: 0 = the scale's default")
		shards     = fs.Int("shards", 0, "fleet campaign execution shards: 0 = default (reports are byte-identical at every value)")
		nofused    = fs.Bool("nofused", false, "disable the fused/real-input DSP kernels and use the reference transforms (results are bit-identical either way)")
		stats      = fs.Bool("stats", true, "report per-experiment wall time and the telemetry summary on stderr")
		metrics    = fs.String("metrics", "", "write a telemetry JSON snapshot to this file at exit")
		pprofCPU   = fs.String("pprof-cpu", "", "write a CPU profile (runtime/pprof) to this file")
		pprofHeap  = fs.String("pprof-heap", "", "write a heap profile (runtime/pprof) to this file")
		arts       = fs.String("artifacts", "", "persist this run as a timestamped directory (CSV + telemetry snapshot + manifest + report) under this root; stdout is byte-identical either way")
		validate   = fs.String("validate", "", "replay the flags recorded in this manifest.json (or run dir) and verify the stdout digest reproduces; all other flags are ignored")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := benchConfig{
		Scale:         experiments.Full,
		Only:          *only,
		Seed:          *seed,
		Show:          *show,
		Parallel:      *parallel,
		Jobs:          *jobs,
		TraceCache:    *tracecache,
		TraceCacheCap: *tccap,
		Cells:         *cells,
		Shards:        *shards,
		NoFused:       *nofused,
		Stats:         *stats,
		Metrics:       *metrics,
		PprofCPU:      *pprofCPU,
		PprofHeap:     *pprofHeap,
		Artifacts:     *arts,
		Validate:      *validate,
	}
	if *quick {
		cfg.Scale = experiments.Quick
	}
	return execute(cfg, stdout, stderr)
}

// execute runs the selected experiments under cfg. Only the experiment
// report is written to stdout; everything observational goes to stderr
// or to the files named by cfg, so stdout stays byte-stable across
// -jobs, -tracecache, -stats, -metrics, and -pprof-* settings.
func execute(cfg benchConfig, stdout, stderr io.Writer) int {
	if cfg.Validate != "" {
		return runValidate(cfg.Validate, stdout, stderr)
	}

	dsp.SetDefaultParallelism(cfg.Parallel)
	dsp.SetFusedKernels(!cfg.NoFused)
	sweep.SetDefaultJobs(cfg.Jobs)
	core.SetTraceCacheEnabled(cfg.TraceCache)
	core.SetTraceCacheCapacity(cfg.TraceCacheCap)

	specs := registry()
	if cfg.Only != "" {
		known := false
		for _, s := range specs {
			if strings.EqualFold(cfg.Only, s.Name) {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(stderr, "paperbench: unknown experiment %q\nvalid names: %s\n",
				cfg.Only, strings.Join(registryNames(), ", "))
			return 2
		}
	}

	if cfg.PprofCPU != "" {
		f, err := os.Create(cfg.PprofCPU)
		if err != nil {
			fmt.Fprintf(stderr, "paperbench: -pprof-cpu: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "paperbench: -pprof-cpu: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// With -artifacts, the report is teed through a digest and a copy on
	// the way to stdout — the bytes the user sees are the bytes persisted,
	// so stdout stays identical with artifacts on or off.
	out := stdout
	var collect *artifactRun
	if cfg.Artifacts != "" {
		collect = newArtifactRun()
		out = collect.tee(stdout)
	}

	rc := runContext{Seed: cfg.Seed, Scale: cfg.Scale, Show: cfg.Show,
		Cells: cfg.Cells, Shards: cfg.Shards}
	start := time.Now()
	for _, s := range specs {
		if cfg.Only != "" && !strings.EqualFold(cfg.Only, s.Name) {
			continue
		}
		expStart := time.Now()
		hits0, misses0 := core.TraceCacheStats()
		s.Run(out, rc)
		wall := time.Since(expStart)
		hits, misses := core.TraceCacheStats()
		if collect != nil {
			collect.addRow(s.Name, wall, hits-hits0, misses-misses0)
		}
		if cfg.Stats {
			fmt.Fprintf(stderr, "# %-15s %8v  trace-cache +%d hits +%d misses\n",
				s.Name, wall.Round(time.Millisecond),
				hits-hits0, misses-misses0)
		}
	}

	// The wall-clock line is observational, so it lives on stderr with
	// the rest of the stats: stdout is byte-stable by contract and must
	// not carry timing.
	snap := telemetry.Capture()
	if cfg.Stats {
		fmt.Fprintf(stderr, "# completed in %v\n", time.Since(start).Round(time.Millisecond))
		renderStats(stderr, snap)
	}
	if cfg.Metrics != "" {
		if err := writeMetrics(cfg.Metrics, snap); err != nil {
			fmt.Fprintf(stderr, "paperbench: -metrics: %v\n", err)
			return 1
		}
	}
	if collect != nil {
		dir, err := collect.write(cfg, snap)
		if err != nil {
			fmt.Fprintf(stderr, "paperbench: -artifacts: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "# run artifacts written to %s\n", dir)
	}
	if cfg.PprofHeap != "" {
		if err := writeHeapProfile(cfg.PprofHeap); err != nil {
			fmt.Fprintf(stderr, "paperbench: -pprof-heap: %v\n", err)
			return 1
		}
	}
	return 0
}

// renderStats prints the telemetry snapshot on w: counters and gauges
// as sorted name/value pairs, histograms as count/mean/total. The
// iteration order comes from the snapshot's sorted accessors, so the
// report layout is stable across runs.
func renderStats(w io.Writer, snap telemetry.Snapshot) {
	fmt.Fprintf(w, "# telemetry\n")
	for _, name := range snap.CounterNames() {
		fmt.Fprintf(w, "#   %-34s %12d\n", name, snap.Counters[name])
	}
	for _, name := range snap.GaugeNames() {
		fmt.Fprintf(w, "#   %-34s %12d\n", name, snap.Gauges[name])
	}
	for _, name := range snap.HistogramNames() {
		h := snap.Histograms[name]
		fmt.Fprintf(w, "#   %-34s %12d x %10v = %v\n",
			name, h.Count, h.Mean().Round(time.Microsecond),
			time.Duration(h.SumNs).Round(time.Millisecond))
	}
}

// writeMetrics serializes the snapshot as deterministic (sorted-key)
// JSON to path.
func writeMetrics(path string, snap telemetry.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeHeapProfile records an end-of-run heap profile. The GC run
// beforehand makes the profile reflect live memory, not garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
