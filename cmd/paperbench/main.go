// Command paperbench regenerates every table and figure of the paper's
// evaluation section and prints each measured result next to the value
// the paper reports. Absolute numbers come from a simulation, not the
// authors' testbed; what should match is the shape — who wins, by what
// factor, and where the knees fall.
//
// Usage:
//
//	paperbench              # everything, at full scale
//	paperbench -quick       # CI-sized runs
//	paperbench -only table2 # one experiment; an unknown name exits
//	                        # non-zero and lists the valid names (the
//	                        # list lives in the experiment registry,
//	                        # cmd/paperbench/registry.go)
//	paperbench -jobs 4      # experiment-cell worker count
//
// Experiments run on the internal/sweep orchestrator: independent
// (laptop × run × sweep-point) cells fan out across -jobs workers, and
// sweeps that differ only receiver-side replay memoized transmitter
// traces (-tracecache). Reports are byte-identical for every -jobs /
// -tracecache setting; timing and cache statistics go to stderr so
// stdout stays comparable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pmuleak/internal/core"
	"pmuleak/internal/dsp"
	"pmuleak/internal/experiments"
	"pmuleak/internal/sweep"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "CI-sized experiment scale")
		only       = flag.String("only", "", "run a single experiment: "+strings.Join(registryNames(), ", "))
		seed       = flag.Int64("seed", 2020, "experiment seed")
		show       = flag.Bool("spectrograms", false, "render ASCII spectrograms for the figures")
		parallel   = flag.Int("parallel", 0, "DSP worker count: 0 = all CPUs, 1 = serial, n = n workers (results are bit-identical either way)")
		jobs       = flag.Int("jobs", 0, "experiment-cell worker count: 0 = all CPUs, 1 = exact legacy serial (results are bit-identical either way)")
		tracecache = flag.Bool("tracecache", true, "memoize transmitter traces across receiver-side sweeps (results are bit-identical either way)")
		stats      = flag.Bool("stats", true, "report per-experiment wall time and trace-cache hits/misses on stderr")
	)
	flag.Parse()
	dsp.SetDefaultParallelism(*parallel)
	sweep.SetDefaultJobs(*jobs)
	core.SetTraceCacheEnabled(*tracecache)

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}

	specs := registry()
	if *only != "" {
		known := false
		for _, s := range specs {
			if strings.EqualFold(*only, s.Name) {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q\nvalid names: %s\n",
				*only, strings.Join(registryNames(), ", "))
			os.Exit(2)
		}
	}

	rc := runContext{Seed: *seed, Scale: scale, Show: *show}
	start := time.Now()
	for _, s := range specs {
		if *only != "" && !strings.EqualFold(*only, s.Name) {
			continue
		}
		expStart := time.Now()
		hits0, misses0 := core.TraceCacheStats()
		s.Run(os.Stdout, rc)
		if *stats {
			hits, misses := core.TraceCacheStats()
			fmt.Fprintf(os.Stderr, "# %-15s %8v  trace-cache +%d hits +%d misses\n",
				s.Name, time.Since(expStart).Round(time.Millisecond),
				hits-hits0, misses-misses0)
		}
	}

	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}
