// Command paperbench regenerates every table and figure of the paper's
// evaluation section and prints each measured result next to the value
// the paper reports. Absolute numbers come from a simulation, not the
// authors' testbed; what should match is the shape — who wins, by what
// factor, and where the knees fall.
//
// Usage:
//
//	paperbench              # everything, at full scale
//	paperbench -quick       # CI-sized runs
//	paperbench -only table2 # one experiment: fig2, sec3, pipeline,
//	                        # fig8, table2, background, fig9, table3,
//	                        # nlos, fig11, table4, countermeasures,
//	                        # fingerprint, multicore, utilization,
//	                        # dictionary, waterfall, sleepfloor,
//	                        # ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pmuleak/internal/core"
	"pmuleak/internal/dsp"
	"pmuleak/internal/experiments"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "CI-sized experiment scale")
		only     = flag.String("only", "", "run a single experiment")
		seed     = flag.Int64("seed", 2020, "experiment seed")
		show     = flag.Bool("spectrograms", false, "render ASCII spectrograms for the figures")
		parallel = flag.Int("parallel", 0, "DSP worker count: 0 = all CPUs, 1 = serial, n = n workers (results are bit-identical either way)")
	)
	flag.Parse()
	dsp.SetDefaultParallelism(*parallel)

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}
	want := func(name string) bool {
		return *only == "" || strings.EqualFold(*only, name)
	}
	start := time.Now()

	if want("fig2") {
		fmt.Print(experiments.Banner("Fig. 2 — micro-benchmark spectrogram"))
		res := experiments.Fig2(*seed)
		fmt.Printf("paper   : strong/weak spike alternation at ~970 kHz; harmonics present\n")
		fmt.Printf("measured: fundamental %.0f kHz, active/idle spike ratio %.1fx, "+
			"fundamental %.1fx the first harmonic\n",
			res.FundamentalKHz, res.SpikeOnOffRatio, res.HarmonicRatio)
		if *show {
			core.RenderSpectrogram(os.Stdout, res.Spectrogram, 20, 100)
		}
	}

	if want("sec3") {
		fmt.Print(experiments.Banner("§III — P-/C-state ablation"))
		fmt.Printf("paper   : signal persists with either mechanism; disappears (constant strong\n")
		fmt.Printf("          carrier) only when both are disabled\n")
		for _, r := range experiments.Sec3Ablation(*seed) {
			fmt.Printf("measured: %-14s on/off ratio %6.1fx, idle spike strength %.3g\n",
				r.Name, r.SpikeOnOffRatio, r.MeanSpikeStrength)
		}
	}

	if want("pipeline") {
		fmt.Print(experiments.Banner("Figs. 4-7 — receiver pipeline internals"))
		res := experiments.Pipeline(*seed, scale)
		fmt.Printf("Fig. 4  : acquisition trace of %d samples, sharp rise at each bit\n",
			res.AcquisitionLen)
		fmt.Printf("Fig. 5  : %d bit starts detected for %d transmitted bits\n",
			res.DetectedStarts, res.TxBits)
		fmt.Printf("Fig. 6  : median signaling time %.1f µs, Rayleigh sigma %.1f µs, "+
			"skew %+.2f (paper: positively skewed, Rayleigh-like)\n",
			1e6*res.MedianPulseWidth, 1e6*res.RayleighSigma, res.PulseWidthSkew)
		fmt.Printf("Fig. 7  : power modes %.3g / %.3g, threshold %.3g in the valley\n",
			res.PowerModeLow, res.PowerModeHigh, res.Threshold)
	}

	if want("fig8") {
		fmt.Print(experiments.Banner("Fig. 8 — bit deletion/insertion"))
		res := experiments.Fig8(*seed, scale)
		fmt.Printf("paper   : deletion probability < 0.2%% (quiet), corrected by parity\n")
		fmt.Printf("measured: quiet  IP=%.1e DP=%.1e\n",
			res.Quiet.InsertionProb(), res.Quiet.DeletionProb())
		fmt.Printf("measured: loaded IP=%.1e DP=%.1e\n",
			res.Loaded.InsertionProb(), res.Loaded.DeletionProb())
	}

	if want("table2") {
		fmt.Print(experiments.Banner("Table II — near-field, six laptops"))
		paper := map[string]string{
			"Dell Precision 7290":   "BER=2e-3  TR= 982",
			"MacBookPro-2015":       "BER=3e-2  TR=3700",
			"Dell Inspiron 15-3537": "BER=8e-3  TR=3162",
			"MacBookPro-2018":       "BER=2.8e-2 TR=3640",
			"Lenovo Thinkpad":       "BER=5e-3  TR=3020",
			"Sony Ultrabook":        "BER=4e-3  TR= 974",
		}
		for _, r := range experiments.TableII(*seed, scale) {
			fmt.Printf("measured: %v   (paper: %s)\n", r, paper[r.Model])
		}
	}

	if want("background") {
		fmt.Print(experiments.Banner("§IV-C2 — background activity"))
		quiet, loaded := experiments.BackgroundLoadTRDrop(*seed, scale)
		drop := 0.0
		if quiet > 0 {
			drop = 100 * (quiet - loaded) / quiet
		}
		fmt.Printf("paper   : TR reduced ~15%% (worst 21%%) to hold BER under load\n")
		fmt.Printf("measured: %.0f bps quiet -> %.0f bps loaded (%.0f%% reduction)\n",
			quiet, loaded, drop)
	}

	if want("fig9") {
		fmt.Print(experiments.Banner("Fig. 9 — rate comparison with prior work"))
		res := experiments.Fig9(*seed, scale)
		for _, b := range res.Baselines {
			fmt.Printf("measured: %v\n", b)
		}
		fmt.Printf("measured: %-10s %8.0f bps (this work)\n", "Proposed", res.Proposed)
		fmt.Printf("paper   : proposed >3x the fastest prior channel (GSMem); measured %.1fx\n",
			res.Speedup())
	}

	if want("table3") {
		fmt.Print(experiments.Banner("Table III — distance sweep (loop antenna)"))
		paper := map[float64]string{1.0: "TR 1872/1645", 1.5: "TR 1454", 2.5: "TR 1110"}
		for _, r := range experiments.TableIII(*seed, scale) {
			fmt.Printf("measured: %v   (paper: %s)\n", r, paper[r.DistanceM])
		}
	}

	if want("nlos") {
		fmt.Print(experiments.Banner("§IV-C3 — through the wall (Fig. 10 office)"))
		r := experiments.NLoS(*seed, scale)
		fmt.Printf("paper   : 821 bps at BER 6e-3 through a 35 cm wall with interferers\n")
		fmt.Printf("measured: %v (ok=%v)\n", r, r.OK)
	}

	if want("fig11") {
		fmt.Print(experiments.Banner("Fig. 11 — keystroke spectrogram"))
		res := experiments.Fig11(*seed)
		fmt.Printf("paper   : every character of %q visible as a distinct burst\n", res.Text)
		fmt.Printf("measured: %d bursts for %d keystrokes\n", res.DistinctBursts, res.Keystrokes)
		if *show {
			core.RenderSpectrogram(os.Stdout, res.Spectrogram, 16, 100)
		}
	}

	if want("table4") {
		fmt.Print(experiments.Banner("Table IV — keylogging accuracy"))
		paper := map[string]string{
			"10cm":      "TPR 100%  FPR 3.0%  Prec 71%  Recall 100%",
			"2m":        "TPR  99%  FPR 1.8%  Prec 70%  Recall 100%",
			"1.5m+wall": "TPR  97%  FPR 0.7%  Prec 70%  Recall  98%",
		}
		for _, r := range experiments.TableIV(*seed, scale) {
			fmt.Printf("measured: %v\n          (paper: %s)\n", r, paper[r.Placement])
		}
	}

	if want("countermeasures") {
		fmt.Print(experiments.Banner("§VI — countermeasures (measured extension)"))
		fmt.Printf("paper   : proposes disabling P/C-states, PMU randomness, EMI shielding\n")
		for _, o := range experiments.Countermeasures(*seed, scale) {
			fmt.Printf("measured: %v\n", o)
		}
	}

	if want("fingerprint") {
		fmt.Print(experiments.Banner("§III (ii-b) — task fingerprinting (measured extension)"))
		res := experiments.Fingerprint(*seed, scale)
		fmt.Printf("paper   : activity duration can identify which website was loaded\n")
		fmt.Printf("measured: %d-class page-load identification: %.0f%% near-field, %.0f%% at 2 m\n",
			res.Classes, 100*res.NearAccuracy, 100*res.FarAccuracy)
	}

	if want("multicore") {
		fmt.Print(experiments.Banner("Multi-core isolation (measured extension)"))
		res := experiments.MultiCoreIsolation(*seed, scale)
		fmt.Printf("claim   : pinning other work to another core does NOT hide it from the VRM\n")
		fmt.Printf("measured: err quiet=%.1e  hog-same-core=%.1e  hog-other-core=%.1e\n",
			res.QuietErr, res.SameCoreErr, res.CrossCoreErr)
	}

	if want("utilization") {
		fmt.Print(experiments.Banner("Utilization inference (measured extension)"))
		res := experiments.UtilizationLeak(*seed)
		fmt.Printf("claim   : with Speed-Shift-style DVFS, emission amplitude tracks utilization\n")
		fmt.Printf("measured: duty ")
		for _, d := range res.Duty {
			fmt.Printf("%4.0f%% ", 100*d)
		}
		fmt.Printf("-> amplitude ")
		for _, a := range res.Amplitude {
			fmt.Printf("%.2f ", a)
		}
		fmt.Printf("(monotone=%v)\n", res.Monotone())
	}

	if want("dictionary") {
		fmt.Print(experiments.Banner("SV-B dictionary attack (measured extension)"))
		res := experiments.Dictionary(*seed, scale)
		fmt.Printf("claim   : word length + inter-key timing identify dictionary words\n")
		fmt.Printf("measured: %d words, top-1 %.0f%%, top-3 %.0f%%, mean %.0f same-length candidates\n",
			res.Words, 100*res.Top1Rate(), 100*res.Top3Rate(), res.MeanCands)
	}

	if want("waterfall") {
		fmt.Print(experiments.Banner("Noise waterfall (validation)"))
		fmt.Printf("claim   : achievable rate falls gracefully as the noise floor rises\n")
		for _, pt := range experiments.Waterfall(*seed, scale) {
			if pt.OK {
				fmt.Printf("measured: noise sigma %.3f -> %4.0f bps (err %.1e)\n",
					pt.NoiseSigma, pt.Rate, pt.ErrorRate)
			} else {
				fmt.Printf("measured: noise sigma %.3f -> link dead\n", pt.NoiseSigma)
			}
		}
	}

	if want("sleepfloor") {
		fmt.Print(experiments.Banner("SIV-A - the SLEEP_PERIOD floor"))
		fmt.Printf("paper   : ~10us is the limit below which usleep becomes highly variable\n")
		for _, pt := range experiments.SleepFloor(*seed, scale) {
			fmt.Printf("measured: sleep %6v -> jitter CV %.2f, %5.0f bps at err %.2e\n",
				pt.SleepPeriod, pt.JitterCV, pt.Rate, pt.ErrorRate)
		}
	}

	if want("ablations") {
		fmt.Print(experiments.Banner("Receiver design ablations"))
		for _, a := range experiments.ReceiverAblations(*seed, scale) {
			fmt.Printf("measured: %-40s with=%.3g without=%.3g (%s)\n",
				a.Name, a.With, a.Without, a.Comment)
		}
	}

	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}
