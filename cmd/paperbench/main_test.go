package main

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"pmuleak/internal/core"
	"pmuleak/internal/sweep"
)

// goldenCombo is one (jobs, trace-cache) setting compared against the
// serial/uncached baseline. The list lives in the build-tagged scale
// files: the race build runs a reduced grid.
type goldenCombo struct {
	jobs  int
	cache bool
}

// renderAll runs every registered experiment into one buffer under the
// given orchestrator settings.
func renderAll(t *testing.T, jobs int, cache bool) []byte {
	t.Helper()
	sweep.SetDefaultJobs(jobs)
	core.SetTraceCacheEnabled(cache)
	core.ResetTraceCache()
	var buf bytes.Buffer
	rc := runContext{Seed: 2020, Scale: goldenScale}
	for _, s := range registry() {
		s.Run(&buf, rc)
	}
	return buf.Bytes()
}

// goldenBaseline renders the serial/uncached reference output once and
// caches it for every golden test in the package: a full render is the
// expensive part of these tests (minutes under -race), and the baseline
// is identical for all of them — jobs=1, trace cache off, seed 2020,
// goldenScale.
var golden struct {
	once     sync.Once
	baseline []byte
}

func goldenBaseline(t *testing.T) []byte {
	t.Helper()
	golden.once.Do(func() { golden.baseline = renderAll(t, 1, false) })
	if len(golden.baseline) == 0 {
		t.Fatal("baseline render is empty")
	}
	return golden.baseline
}

// TestGoldenEquivalence is the orchestrator's contract test: every
// experiment renderer must produce byte-identical output whether cells
// run serially or fanned out, and whether transmitter traces are
// simulated fresh or replayed from the cache. It runs in the -race
// tier-1 set (at a trimmed scale there — see scale_race_test.go).
func TestGoldenEquivalence(t *testing.T) {
	t.Cleanup(func() {
		sweep.SetDefaultJobs(0)
		core.SetTraceCacheEnabled(true)
		core.ResetTraceCache()
	})

	baseline := goldenBaseline(t) // exact legacy serial, no memoization
	for _, tc := range goldenCombos {
		t.Run(fmt.Sprintf("jobs=%d,cache=%v", tc.jobs, tc.cache), func(t *testing.T) {
			got := renderAll(t, tc.jobs, tc.cache)
			if !bytes.Equal(got, baseline) {
				t.Fatalf("output differs from serial/uncached baseline\n"+
					"baseline %d bytes, got %d bytes\nfirst divergence: %s",
					len(baseline), len(got), firstDiff(baseline, got))
			}
		})
	}
}

// firstDiff locates the first differing byte and quotes context around
// it, for a readable failure.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("byte %d: %q vs %q", i, a[lo:i+1], b[lo:i+1])
		}
	}
	return fmt.Sprintf("one output is a prefix of the other (lengths %d vs %d)", len(a), len(b))
}

// TestRegistryNamesUnique guards the -only contract: names are the
// lookup keys, so duplicates would silently shadow experiments.
func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range registryNames() {
		if seen[n] {
			t.Errorf("duplicate registry name %q", n)
		}
		seen[n] = true
	}
	if len(seen) != 21 {
		t.Errorf("registry has %d experiments, want 21", len(seen))
	}
}
