package main

import (
	"fmt"
	"io"

	"pmuleak/internal/core"
	"pmuleak/internal/experiments"
)

// runContext carries the knobs every experiment runner receives.
type runContext struct {
	Seed  int64
	Scale experiments.Scale
	Show  bool // render ASCII spectrograms for the figures
	// Cells overrides the scale's fleet-campaign population when > 0;
	// Shards is the campaign's execution batching (0 = default). Both
	// knobs never change a report byte: Cells is part of the report's
	// identity (a different population IS a different report), Shards is
	// execution-only by the campaign contract.
	Cells  int64
	Shards int
}

// experimentSpec is one entry of the experiment registry: the -only
// name and the renderer. The registry is the single source of truth for
// which experiments exist — the -only flag's usage string, the unknown
// -name error message, and the golden equivalence test all derive from
// it, so none of them can drift.
type experimentSpec struct {
	Name string
	Run  func(w io.Writer, rc runContext)
}

// registry returns every experiment in presentation order.
func registry() []experimentSpec {
	return []experimentSpec{
		{"fig2", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("Fig. 2 — micro-benchmark spectrogram"))
			res := experiments.Fig2(rc.Seed)
			fmt.Fprintf(w, "paper   : strong/weak spike alternation at ~970 kHz; harmonics present\n")
			fmt.Fprintf(w, "measured: fundamental %.0f kHz, active/idle spike ratio %.1fx, "+
				"fundamental %.1fx the first harmonic\n",
				res.FundamentalKHz, res.SpikeOnOffRatio, res.HarmonicRatio)
			if rc.Show {
				core.RenderSpectrogram(w, res.Spectrogram, 20, 100)
			}
		}},

		{"sec3", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("§III — P-/C-state ablation"))
			fmt.Fprintf(w, "paper   : signal persists with either mechanism; disappears (constant strong\n")
			fmt.Fprintf(w, "          carrier) only when both are disabled\n")
			for _, r := range experiments.Sec3Ablation(rc.Seed) {
				fmt.Fprintf(w, "measured: %-14s on/off ratio %6.1fx, idle spike strength %.3g\n",
					r.Name, r.SpikeOnOffRatio, r.MeanSpikeStrength)
			}
		}},

		{"pipeline", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("Figs. 4-7 — receiver pipeline internals"))
			res := experiments.Pipeline(rc.Seed, rc.Scale)
			fmt.Fprintf(w, "Fig. 4  : acquisition trace of %d samples, sharp rise at each bit\n",
				res.AcquisitionLen)
			fmt.Fprintf(w, "Fig. 5  : %d bit starts detected for %d transmitted bits\n",
				res.DetectedStarts, res.TxBits)
			fmt.Fprintf(w, "Fig. 6  : median signaling time %.1f µs, Rayleigh sigma %.1f µs, "+
				"skew %+.2f (paper: positively skewed, Rayleigh-like)\n",
				1e6*res.MedianPulseWidth, 1e6*res.RayleighSigma, res.PulseWidthSkew)
			fmt.Fprintf(w, "Fig. 7  : power modes %.3g / %.3g, threshold %.3g in the valley\n",
				res.PowerModeLow, res.PowerModeHigh, res.Threshold)
		}},

		{"fig8", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("Fig. 8 — bit deletion/insertion"))
			res := experiments.Fig8(rc.Seed, rc.Scale)
			fmt.Fprintf(w, "paper   : deletion probability < 0.2%% (quiet), corrected by parity\n")
			fmt.Fprintf(w, "measured: quiet  IP=%.1e DP=%.1e\n",
				res.Quiet.InsertionProb(), res.Quiet.DeletionProb())
			fmt.Fprintf(w, "measured: loaded IP=%.1e DP=%.1e\n",
				res.Loaded.InsertionProb(), res.Loaded.DeletionProb())
		}},

		{"table2", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("Table II — near-field, six laptops"))
			paper := map[string]string{
				"Dell Precision 7290":   "BER=2e-3  TR= 982",
				"MacBookPro-2015":       "BER=3e-2  TR=3700",
				"Dell Inspiron 15-3537": "BER=8e-3  TR=3162",
				"MacBookPro-2018":       "BER=2.8e-2 TR=3640",
				"Lenovo Thinkpad":       "BER=5e-3  TR=3020",
				"Sony Ultrabook":        "BER=4e-3  TR= 974",
			}
			for _, r := range experiments.TableII(rc.Seed, rc.Scale) {
				fmt.Fprintf(w, "measured: %v   (paper: %s)\n", r, paper[r.Model])
			}
		}},

		{"background", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("§IV-C2 — background activity"))
			quiet, loaded := experiments.BackgroundLoadTRDrop(rc.Seed, rc.Scale)
			drop := 0.0
			if quiet > 0 {
				drop = 100 * (quiet - loaded) / quiet
			}
			fmt.Fprintf(w, "paper   : TR reduced ~15%% (worst 21%%) to hold BER under load\n")
			fmt.Fprintf(w, "measured: %.0f bps quiet -> %.0f bps loaded (%.0f%% reduction)\n",
				quiet, loaded, drop)
		}},

		{"fig9", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("Fig. 9 — rate comparison with prior work"))
			res := experiments.Fig9(rc.Seed, rc.Scale)
			for _, b := range res.Baselines {
				fmt.Fprintf(w, "measured: %v\n", b)
			}
			fmt.Fprintf(w, "measured: %-10s %8.0f bps (this work)\n", "Proposed", res.Proposed)
			fmt.Fprintf(w, "paper   : proposed >3x the fastest prior channel (GSMem); measured %.1fx\n",
				res.Speedup())
		}},

		{"table3", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("Table III — distance sweep (loop antenna)"))
			paper := map[float64]string{1.0: "TR 1872/1645", 1.5: "TR 1454", 2.5: "TR 1110"}
			for _, r := range experiments.TableIII(rc.Seed, rc.Scale) {
				fmt.Fprintf(w, "measured: %v   (paper: %s)\n", r, paper[r.DistanceM])
			}
		}},

		{"nlos", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("§IV-C3 — through the wall (Fig. 10 office)"))
			r := experiments.NLoS(rc.Seed, rc.Scale)
			fmt.Fprintf(w, "paper   : 821 bps at BER 6e-3 through a 35 cm wall with interferers\n")
			fmt.Fprintf(w, "measured: %v (ok=%v)\n", r, r.OK)
		}},

		{"fig11", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("Fig. 11 — keystroke spectrogram"))
			res := experiments.Fig11(rc.Seed)
			fmt.Fprintf(w, "paper   : every character of %q visible as a distinct burst\n", res.Text)
			fmt.Fprintf(w, "measured: %d bursts for %d keystrokes\n", res.DistinctBursts, res.Keystrokes)
			if rc.Show {
				core.RenderSpectrogram(w, res.Spectrogram, 16, 100)
			}
		}},

		{"table4", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("Table IV — keylogging accuracy"))
			paper := map[string]string{
				"10cm":      "TPR 100%  FPR 3.0%  Prec 71%  Recall 100%",
				"2m":        "TPR  99%  FPR 1.8%  Prec 70%  Recall 100%",
				"1.5m+wall": "TPR  97%  FPR 0.7%  Prec 70%  Recall  98%",
			}
			for _, r := range experiments.TableIV(rc.Seed, rc.Scale) {
				fmt.Fprintf(w, "measured: %v\n          (paper: %s)\n", r, paper[r.Placement])
			}
		}},

		{"countermeasures", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("§VI — countermeasures (measured extension)"))
			fmt.Fprintf(w, "paper   : proposes disabling P/C-states, PMU randomness, EMI shielding\n")
			for _, o := range experiments.Countermeasures(rc.Seed, rc.Scale) {
				fmt.Fprintf(w, "measured: %v\n", o)
			}
		}},

		{"fingerprint", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("§III (ii-b) — task fingerprinting (measured extension)"))
			res := experiments.Fingerprint(rc.Seed, rc.Scale)
			fmt.Fprintf(w, "paper   : activity duration can identify which website was loaded\n")
			fmt.Fprintf(w, "measured: %d-class page-load identification: %.0f%% near-field, %.0f%% at 2 m\n",
				res.Classes, 100*res.NearAccuracy, 100*res.FarAccuracy)
		}},

		{"multicore", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("Multi-core isolation (measured extension)"))
			res := experiments.MultiCoreIsolation(rc.Seed, rc.Scale)
			fmt.Fprintf(w, "claim   : pinning other work to another core does NOT hide it from the VRM\n")
			fmt.Fprintf(w, "measured: err quiet=%.1e  hog-same-core=%.1e  hog-other-core=%.1e\n",
				res.QuietErr, res.SameCoreErr, res.CrossCoreErr)
		}},

		{"utilization", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("Utilization inference (measured extension)"))
			res := experiments.UtilizationLeak(rc.Seed)
			fmt.Fprintf(w, "claim   : with Speed-Shift-style DVFS, emission amplitude tracks utilization\n")
			fmt.Fprintf(w, "measured: duty ")
			for _, d := range res.Duty {
				fmt.Fprintf(w, "%4.0f%% ", 100*d)
			}
			fmt.Fprintf(w, "-> amplitude ")
			for _, a := range res.Amplitude {
				fmt.Fprintf(w, "%.2f ", a)
			}
			fmt.Fprintf(w, "(monotone=%v)\n", res.Monotone())
		}},

		{"dictionary", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("SV-B dictionary attack (measured extension)"))
			res := experiments.Dictionary(rc.Seed, rc.Scale)
			fmt.Fprintf(w, "claim   : word length + inter-key timing identify dictionary words\n")
			fmt.Fprintf(w, "measured: %d words, top-1 %.0f%%, top-3 %.0f%%, mean %.0f same-length candidates\n",
				res.Words, 100*res.Top1Rate(), 100*res.Top3Rate(), res.MeanCands)
		}},

		{"waterfall", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("Noise waterfall (validation)"))
			fmt.Fprintf(w, "claim   : achievable rate falls gracefully as the noise floor rises\n")
			for _, pt := range experiments.Waterfall(rc.Seed, rc.Scale) {
				if pt.OK {
					fmt.Fprintf(w, "measured: noise sigma %.3f -> %4.0f bps (err %.1e)\n",
						pt.NoiseSigma, pt.Rate, pt.ErrorRate)
				} else {
					fmt.Fprintf(w, "measured: noise sigma %.3f -> link dead\n", pt.NoiseSigma)
				}
			}
		}},

		{"sleepfloor", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("SIV-A - the SLEEP_PERIOD floor"))
			fmt.Fprintf(w, "paper   : ~10us is the limit below which usleep becomes highly variable\n")
			for _, pt := range experiments.SleepFloor(rc.Seed, rc.Scale) {
				fmt.Fprintf(w, "measured: sleep %6v -> jitter CV %.2f, %5.0f bps at err %.2e\n",
					pt.SleepPeriod, pt.JitterCV, pt.Rate, pt.ErrorRate)
			}
		}},

		{"ablations", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("Receiver design ablations"))
			for _, a := range experiments.ReceiverAblations(rc.Seed, rc.Scale) {
				fmt.Fprintf(w, "measured: %-40s with=%.3g without=%.3g (%s)\n",
					a.Name, a.With, a.Without, a.Comment)
			}
		}},

		{"robustness", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("Acquisition-fault robustness (measured extension)"))
			res := experiments.Robustness(rc.Seed, rc.Scale)
			fmt.Fprintf(w, "claim   : the batch receiver degrades gracefully under acquisition faults\n")
			for i, drift := range res.DriftPPMs {
				for j, gain := range res.GainDBs {
					fmt.Fprintf(w, "measured: drift %3.0fppm gain %2.0fdB : BER", drift, gain)
					for _, pt := range res.Row(i, j) {
						fmt.Fprintf(w, " %.1e", pt.ResyncBER)
					}
					fmt.Fprintf(w, "  (drops/s")
					for _, r := range res.DropRates {
						fmt.Fprintf(w, " %.0f", r)
					}
					fmt.Fprintf(w, "; monotone in drops=%v)\n", monotoneRow(res.Row(i, j)))
				}
			}
			if res.KneeDropRate >= 0 {
				fmt.Fprintf(w, "measured: ECC knee — Hamming(7,4)+interleave stops saving the payload at %.0f drops/s\n",
					res.KneeDropRate)
			} else {
				fmt.Fprintf(w, "measured: ECC knee — payload survived the whole drop sweep\n")
			}
			for _, kp := range res.Keylog {
				fmt.Fprintf(w, "measured: keystroke F1 at %2.0fdB gain steps (%2d events): plain %.2f, gap-aware %.2f\n",
					kp.GainStepDB, kp.GainSteps, kp.PlainF1, kp.GapAwareF1)
			}
		}},

		{"fleet", func(w io.Writer, rc runContext) {
			fmt.Fprint(w, experiments.Banner("Fleet campaign — population-scale attack surface (extension)"))
			res := experiments.Fleet(rc.Seed, rc.Scale, rc.Cells, rc.Shards)
			fmt.Fprintf(w, "claim   : anchored surrogate scales the six-laptop bench to a heterogeneous fleet\n")
			fmt.Fprintf(w, "population: %d cells over %d reduction blocks (Zipf model/load/typist/severity mixes)\n",
				res.Plan.Cells, res.Plan.Blocks)
			for _, a := range res.Anchors {
				fmt.Fprintf(w, "anchor  : %-22s BER=%.1e TR=%4.0f -> SNR %5.1f\n", a.Model, a.BER, a.TR, a.SNR)
			}
			fmt.Fprintf(w, "anchor  : keystroke F1 %.2f near-field; fault severity SNR divisors", res.KeyF1)
			for _, s := range res.Severities {
				fmt.Fprintf(w, " %s=%.2f", s.Name, s.SNRFactor)
			}
			fmt.Fprintf(w, "\n")
			fmt.Fprintf(w, "measured: population BER mean=%.2e std=%.2e  q50=%.1e q90=%.1e q99=%.1e q99.9=%.1e\n",
				res.Pop.Mean, res.Pop.Std(),
				res.BER.Quantile(0.5), res.BER.Quantile(0.9),
				res.BER.Quantile(0.99), res.BER.Quantile(0.999))
			fmt.Fprintf(w, "measured: keystroke F1 q10=%.2f q50=%.2f q90=%.2f\n",
				res.F1.Quantile(0.1), res.F1.Quantile(0.5), res.F1.Quantile(0.9))
			for _, g := range res.PerModel {
				fmt.Fprintf(w, "measured: model %-22s share %4.1f%%  mean BER %.2e\n",
					g.Name, 100*float64(g.BER.Count)/float64(res.Plan.Cells), g.BER.Mean)
			}
			for _, g := range res.PerSev {
				fmt.Fprintf(w, "measured: severity %-9s share %4.1f%%  mean BER %.2e  mean F1 %.2f\n",
					g.Name, 100*float64(g.BER.Count)/float64(res.Plan.Cells), g.BER.Mean, g.F1.Mean)
			}
			for _, it := range res.Worst {
				fmt.Fprintf(w, "measured: worst cell %8d  BER %.3e\n", it.Cell, it.Value)
			}
			fmt.Fprintf(w, "reducers: %d bytes of streamed state across %d blocks (flat in cell count)\n",
				res.StateBytes, res.Plan.Blocks)
		}},
	}
}

// monotoneRow reports whether BER is non-decreasing along a drop-rate
// row of the robustness grid.
func monotoneRow(row []experiments.RobustnessPoint) bool {
	for i := 1; i < len(row); i++ {
		if row[i].ResyncBER < row[i-1].ResyncBER {
			return false
		}
	}
	return true
}

// registryNames returns the -only names in presentation order.
func registryNames() []string {
	specs := registry()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}
