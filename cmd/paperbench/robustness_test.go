package main

import (
	"bytes"
	"strings"
	"testing"

	"pmuleak/internal/telemetry"
)

// TestRobustnessSpecEmitsFaultTelemetry renders the robustness
// experiment through its registry entry and asserts the fault
// injector's counters actually moved — the -metrics snapshot a user
// asks for with `paperbench -only robustness -metrics out.json` must
// carry the faults.* series.
func TestRobustnessSpecEmitsFaultTelemetry(t *testing.T) {
	var spec experimentSpec
	for _, s := range registry() {
		if s.Name == "robustness" {
			spec = s
			break
		}
	}
	if spec.Run == nil {
		t.Fatal("robustness experiment not registered")
	}

	before := telemetry.Capture()
	var buf bytes.Buffer
	spec.Run(&buf, runContext{Seed: 2020, Scale: goldenScale})
	after := telemetry.Capture()

	for _, name := range []string{
		"faults.applies", "faults.drops", "faults.dropped_samples",
		"faults.drift_ppm", "faults.gain_steps",
	} {
		if after.Counters[name] <= before.Counters[name] {
			t.Errorf("counter %s did not advance (%d -> %d)",
				name, before.Counters[name], after.Counters[name])
		}
	}

	out := buf.String()
	for _, want := range []string{"ECC knee", "keystroke F1", "monotone in drops"} {
		if !strings.Contains(out, want) {
			t.Errorf("robustness report missing %q:\n%s", want, out)
		}
	}
}
