//go:build !race

package main

import "pmuleak/internal/experiments"

// goldenScale is the scale the golden equivalence test runs at. Without
// the race detector the full Quick scale is tractable.
var goldenScale = experiments.Quick

// goldenCombos is the (jobs, trace-cache) grid compared against the
// serial/uncached baseline.
var goldenCombos = []goldenCombo{
	{jobs: 1, cache: true},
	{jobs: 4, cache: false},
	{jobs: 4, cache: true},
}

// telemetryGoldenJobs is the -jobs grid for the telemetry golden test;
// two settings so the deterministic counter series can be compared
// across serial and fanned-out runs.
var telemetryGoldenJobs = []int{1, 4}

// fusedGoldenModes is the -nofused grid for the fused-kernel golden
// test: both kernel sets are rendered and compared byte-for-byte.
var fusedGoldenModes = []bool{false, true}

// fleetGoldenGrid is the shard×worker grid the fleet campaign's
// byte-identity is proven over (the acceptance grid).
var fleetGoldenGrid = []struct{ shards, jobs int }{
	{1, 4}, {4, 1}, {4, 4}, {16, 1}, {16, 4},
}
