//go:build !race

package main

import "pmuleak/internal/experiments"

// goldenScale is the scale the golden equivalence test runs at. Without
// the race detector the full Quick scale is tractable.
var goldenScale = experiments.Quick

// goldenCombos is the (jobs, trace-cache) grid compared against the
// serial/uncached baseline.
var goldenCombos = []goldenCombo{
	{jobs: 1, cache: true},
	{jobs: 4, cache: false},
	{jobs: 4, cache: true},
}
