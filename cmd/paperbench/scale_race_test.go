//go:build race

package main

import "pmuleak/internal/experiments"

// goldenScale is the scale the golden equivalence test runs at. Under
// the race detector every simulation step costs ~10x and CI may have a
// single vCPU, so the grid is trimmed hard: the point of the -race pass
// is catching unsynchronized access in the orchestrator, not
// statistical fidelity (the !race run covers the full Quick scale).
// Cells is trimmed the same way: the fleet campaign's surrogate loop is
// pure math, but under race every atomic claim and rng step is traced.
var goldenScale = experiments.Scale{PayloadBits: 32, Runs: 1, Words: 6, Cells: 1 << 16}

// goldenCombos under race: one comparison render, on the configuration
// that exercises both the worker pool and the concurrent trace cache.
var goldenCombos = []goldenCombo{
	{jobs: 4, cache: true},
}

// telemetryGoldenJobs under race: one telemetry-enabled render is
// enough to race-check the instrumented fan-out path; the cross-jobs
// counter-equality assertion runs in the !race tier (it needs two).
var telemetryGoldenJobs = []int{4}

// fusedGoldenModes under race: only the -nofused render. The fused
// kernels already run under race in every other golden/telemetry
// render (they are the default), so the reference-kernel render is the
// only new coverage here; rendering both would blow the per-package
// test timeout on a small runner. The byte-equivalence of both modes
// is proven at full Quick scale in the !race tier.
var fusedGoldenModes = []bool{true}

// fleetGoldenGrid under race: one sharded/fanned-out render against the
// serial baseline — enough to race the campaign's chunk claiming. The
// full shards {1,4,16} × jobs {1,4} acceptance grid runs in the !race
// tier.
var fleetGoldenGrid = []struct{ shards, jobs int }{
	{16, 4},
}
