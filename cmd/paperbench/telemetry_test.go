package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pmuleak/internal/core"
	"pmuleak/internal/dsp"
	"pmuleak/internal/sweep"
	"pmuleak/internal/telemetry"
)

// deterministicCounters are the telemetry series whose values depend
// only on the experiment configuration, never on scheduling: call
// counts of pipeline stages. Deliberately absent: pool
// allocations/discards (sync.Pool is GC-coupled), the dsp.fftplan
// hit/miss split (the plan cache outlives renders), and the
// core.tracecache hit/miss split (the LRU eviction victim depends on
// concurrent access order once the working set exceeds the cache
// capacity) — for the last two, the hit+miss totals ARE deterministic
// and are asserted separately below.
var deterministicCounters = []string{
	"campaign.blocks",
	"campaign.cells",
	"campaign.runs",
	"campaign.shards",
	"core.covert.bit_errors",
	"core.covert.runs",
	"core.covert.tx_bits",
	"core.keylog.matched_keys",
	"core.keylog.runs",
	"core.keylog.truth_keys",
	"dsp.engine.stft.frames",
	"dsp.engine.welch.segments",
	"dsp.iqpool.gets",
	"dsp.iqpool.puts",
	"emchannel.applies",
	"emchannel.samples",
	"sdr.captures",
	"sdr.samples",
	"sdr.samples_clipped",
	"sweep.cells",
	"sweep.grids",
}

// TestTelemetryGolden is satellite coverage for the observability
// contract: running the full harness with telemetry fully enabled
// (-stats and -metrics) must produce stdout byte-identical to the
// telemetry-silent serial baseline, at every -jobs setting in the
// build-tagged grid. It also validates the -metrics snapshot itself:
// the JSON parses, carries the trace-cache / FFT-plan-cache / IQ-pool /
// stage-span series, and its deterministic counters agree across -jobs.
func TestTelemetryGolden(t *testing.T) {
	t.Cleanup(func() {
		sweep.SetDefaultJobs(0)
		core.SetTraceCacheEnabled(true)
		core.ResetTraceCache()
		dsp.SetDefaultParallelism(0)
		telemetry.Reset()
	})

	baseline := goldenBaseline(t)
	snaps := map[int]telemetry.Snapshot{}
	for _, jobs := range telemetryGoldenJobs {
		// Reset the accumulated state so each render's snapshot reflects
		// exactly one harness pass and the cross-jobs comparison is fair.
		core.ResetTraceCache()
		telemetry.Reset()

		mpath := filepath.Join(t.TempDir(), "metrics.json")
		cfg := benchConfig{
			Scale:      goldenScale,
			Seed:       2020,
			Jobs:       jobs,
			TraceCache: true,
			Stats:      true,
			Metrics:    mpath,
		}
		var out, errs bytes.Buffer
		if code := execute(cfg, &out, &errs); code != 0 {
			t.Fatalf("jobs=%d: execute returned %d, stderr:\n%s", jobs, code, errs.String())
		}
		if !bytes.Equal(out.Bytes(), baseline) {
			t.Fatalf("jobs=%d: stdout differs from telemetry-silent baseline\n"+
				"baseline %d bytes, got %d bytes\nfirst divergence: %s",
				jobs, len(baseline), len(out.Bytes()), firstDiff(baseline, out.Bytes()))
		}
		if errs.Len() == 0 {
			t.Fatalf("jobs=%d: -stats produced no stderr output", jobs)
		}
		snaps[jobs] = readSnapshot(t, mpath)
	}

	for jobs, snap := range snaps {
		checkSnapshotSeries(t, jobs, snap)
	}

	// Simulation-derived counters must not depend on the worker count.
	if len(telemetryGoldenJobs) >= 2 {
		ref := telemetryGoldenJobs[0]
		for _, jobs := range telemetryGoldenJobs[1:] {
			for _, name := range deterministicCounters {
				if got, want := snaps[jobs].Counters[name], snaps[ref].Counters[name]; got != want {
					t.Errorf("counter %s: jobs=%d got %d, jobs=%d got %d — should be scheduling-independent",
						name, jobs, got, ref, want)
				}
			}
			// The fftplan and tracecache hit/miss splits are
			// scheduling- or history-dependent, but each cache's total
			// lookup count is not.
			for _, prefix := range []string{"dsp.fftplan", "core.tracecache"} {
				refCalls := snaps[ref].Counters[prefix+".hits"] + snaps[ref].Counters[prefix+".misses"]
				calls := snaps[jobs].Counters[prefix+".hits"] + snaps[jobs].Counters[prefix+".misses"]
				if calls != refCalls {
					t.Errorf("%s hits+misses: jobs=%d got %d, jobs=%d got %d",
						prefix, jobs, calls, ref, refCalls)
				}
			}
		}
	}
}

// readSnapshot re-parses the -metrics file the way a consumer would.
func readSnapshot(t *testing.T, path string) telemetry.Snapshot {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading -metrics file: %v", err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("-metrics file is not valid JSON: %v", err)
	}
	return snap
}

// checkSnapshotSeries asserts the snapshot carries the series the
// acceptance criteria name: trace cache, FFT-plan cache, IQ pool, and
// the per-stage spans — all with non-trivial values after a full
// harness pass.
func checkSnapshotSeries(t *testing.T, jobs int, snap telemetry.Snapshot) {
	t.Helper()
	positiveCounters := []string{
		"campaign.cells",
		"core.covert.runs",
		"core.covert.tx_bits",
		"core.keylog.runs",
		"core.keylog.truth_keys",
		"core.tracecache.hits",
		"core.tracecache.misses",
		"dsp.fftplan.hits",
		"dsp.iqpool.gets",
		"dsp.iqpool.puts",
		"dsp.engine.stft.frames",
		"emchannel.samples",
		"sdr.captures",
		"sdr.samples",
		"sweep.cells",
		"sweep.grids",
	}
	for _, name := range positiveCounters {
		if snap.Counters[name] == 0 {
			t.Errorf("jobs=%d: counter %s is zero after a full render", jobs, name)
		}
	}
	positiveHistograms := []string{
		"campaign.block",
		"stage.simulate",
		"stage.emit",
		"stage.emchannel",
		"stage.sdr",
		"stage.demod",
		"stage.detect",
		"sweep.cell",
		"dsp.engine.stft",
		"experiment.table2",
	}
	for _, name := range positiveHistograms {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Errorf("jobs=%d: histogram %s missing or empty after a full render", jobs, name)
			continue
		}
		var bucketSum uint64
		for _, b := range h.Buckets {
			bucketSum += b.Count
		}
		if bucketSum != h.Count {
			t.Errorf("jobs=%d: histogram %s bucket counts sum to %d, want %d",
				jobs, name, bucketSum, h.Count)
		}
	}
	if _, ok := snap.Gauges["core.tracecache.entries"]; !ok {
		t.Errorf("jobs=%d: gauge core.tracecache.entries missing from snapshot", jobs)
	}
}
