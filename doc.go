// Package pmuleak reproduces "A New Side-Channel Vulnerability on
// Modern Computers by Exploiting Electromagnetic Emanations from the
// Power Management Unit" (HPCA 2020) as a fully simulated Go system.
//
// The physical testbed of the paper — commodity laptops, an RTL-SDR v3,
// magnetic probes and loop antennas, an office wall — is replaced by
// physics-grounded models: a discrete-event OS, an Intel-style PMU with
// P-/C-states, a buck-converter VRM with phase shedding, an EM synthesis
// and propagation chain, and an 8-bit SDR front end. On top of those
// substrates sit the paper's two attacks: the §IV covert channel and the
// §V keystroke logger.
//
// Entry points:
//
//   - internal/core: the Testbed API used by every example and tool
//   - cmd/paperbench: regenerates every table and figure of the paper
//   - cmd/covert, cmd/keylog, cmd/emscope: interactive attack tools
//   - bench_test.go: testing.B benchmarks, one per table and figure
//
// See DESIGN.md for the substitution table and the per-experiment index,
// and EXPERIMENTS.md for paper-versus-measured results.
package pmuleak
