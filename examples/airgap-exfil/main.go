// Air-gap exfiltration: the paper's headline scenario. A user-level
// process on an isolated laptop encodes a secret into power-state
// transitions; an attacker one room away — 1.5 m and a 35 cm structural
// wall, with a printer and a refrigerator polluting the band — receives
// the VRM emanations with a loop antenna and recovers the secret.
//
// Byte framing cannot survive bit insertions or deletions, so the
// transmitter appends a CRC-8 and simply retransmits the frame until
// the receiver sees a checksum match — the simplest reliable protocol
// an attacker could hand-write on the target (§IV-A argues transmitter
// simplicity matters).
package main

import (
	"fmt"
	"log"

	"pmuleak/internal/core"
	"pmuleak/internal/ecc"
)

func main() {
	secret := "the launch code is 7291"
	framed := append([]byte(secret), ecc.CRC8([]byte(secret)))

	const maxAttempts = 6
	for attempt := 0; attempt < maxAttempts; attempt++ {
		// Each attempt is a fresh transmission (new seed = new noise,
		// new interrupt timing) over the Fig. 10 office path.
		tb := core.NLoSOffice(int64(7 + attempt))
		res, ok := tb.RateSearch(1.5e-2, core.CovertConfig{
			Payload: ecc.BytesToBits(framed),
		})
		if attempt == 0 {
			fmt.Printf("path      : %.1f m through a %.0f dB wall, %s\n",
				tb.Channel.DistanceM, tb.Channel.WallLossDB, tb.Radio.Antenna.Name)
			fmt.Printf("rate      : %.0f bps (paper: 821 bps in the same scenario)\n",
				res.TransmitRate)
		}
		if !ok || !res.PayloadOK {
			fmt.Printf("attempt %d : no sync, retransmitting\n", attempt+1)
			continue
		}
		bits, _, _ := res.Demod.RecoverPayloadN(res.TXCfg, len(framed)*8)
		if want := len(framed) * 8; len(bits) >= want {
			bits = bits[:want]
		}
		frame := ecc.BitsToBytes(bits)
		if len(frame) < len(framed) {
			fmt.Printf("attempt %d : short frame, retransmitting\n", attempt+1)
			continue
		}
		body, crc := frame[:len(frame)-1], frame[len(frame)-1]
		if ecc.CRC8(body) != crc {
			fmt.Printf("attempt %d : CRC mismatch (channel %v), retransmitting\n",
				attempt+1, res.Measurement)
			continue
		}
		fmt.Printf("attempt %d : CRC ok\n", attempt+1)
		fmt.Printf("sent      : %q\n", secret)
		fmt.Printf("received  : %q\n", string(body))
		if string(body) == secret {
			fmt.Println("secret exfiltrated bit-exactly through the wall")
		}
		return
	}
	log.Fatalf("no clean frame in %d attempts", maxAttempts)
}
