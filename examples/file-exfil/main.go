// File exfiltration with the packet protocol: a multi-packet document
// leaves an air-gapped machine through the wall. Each packet is an
// independently synchronizable frame (preamble + sequence number +
// CRC-8), so a timing slip costs one packet, not the whole transfer, and
// the receiver requests only the missing sequence numbers again — the
// protocol a real exfiltration implant would use on this channel.
package main

import (
	"fmt"
	"log"

	"pmuleak/internal/core"
	"pmuleak/internal/covert"
	"pmuleak/internal/ecc"
)

func main() {
	document := []byte(
		"TOP SECRET: quarterly numbers q3=41.2M q4=47.9M; " +
			"merger target acquired; announce 03-15.")
	packets := covert.Packetize(document)
	fmt.Printf("document  : %d bytes -> %d packets\n", len(document), len(packets))

	// The Fig. 10 office: 1.5 m, a 35 cm wall, printer and fridge in
	// the band.
	reasm := covert.NewReassembler()
	attempt := 0
	sendPacket := func(p covert.Packet) bool {
		attempt++
		tb := core.NLoSOffice(int64(40 + attempt))
		// Slow, reliable signaling for the through-wall path.
		res := tb.RunCovert(core.CovertConfig{
			SleepPeriod: 9 * tb.Profile.DefaultSleepPeriod,
			Payload:     ecc.BytesToBits(covert.PacketBody(p)),
		})
		if !res.PayloadOK {
			return false
		}
		bits, _, _ := res.Demod.RecoverPayloadN(res.TXCfg, len(covert.PacketBody(p))*8)
		got, ok := covert.ParsePacket(bits)
		if !ok || got.Seq != p.Seq {
			return false
		}
		reasm.Add(got)
		return true
	}

	fmt.Println("first pass:")
	for _, p := range packets {
		ok := sendPacket(p)
		status := "ok"
		if !ok {
			status = "LOST"
		}
		fmt.Printf("  packet %2d (%2d bytes): %s\n", p.Seq, len(p.Payload), status)
	}

	// Selective retransmission: the sender repeats exactly the
	// sequence numbers the receiver has not acknowledged.
	for round := 0; round < 6 && !reasm.Complete(); round++ {
		var missing []int
		for _, p := range packets {
			if !reasm.Has(p.Seq) {
				missing = append(missing, p.Seq)
			}
		}
		if len(missing) == 0 {
			break
		}
		fmt.Printf("retransmit round %d: missing %v\n", round+1, missing)
		for _, seq := range missing {
			sendPacket(packets[seq])
		}
	}
	if !reasm.Complete() {
		log.Fatalf("transfer incomplete after retransmissions: missing %v", reasm.Missing())
	}
	got := reasm.Bytes()
	fmt.Printf("\nrecovered : %q\n", string(got))
	if string(got) == string(document) {
		fmt.Printf("document exfiltrated bit-exactly in %d transmissions\n", attempt)
	}
}
