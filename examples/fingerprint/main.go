// Fingerprint: attack model (ii-b) from §III. The processor's activity
// duration while handling a task leaks through the VRM side channel, so
// an attacker who profiles how long each website takes to render can
// tell which one the victim just opened — without any network access.
//
// This example drives the internal/fingerprint package: a profiling
// phase on the attacker's reference machine, then classification of
// victim page loads from the EM side channel alone.
package main

import (
	"fmt"
	"log"

	"pmuleak/internal/core"
	"pmuleak/internal/fingerprint"
)

func main() {
	mkTB := func(seed int64) *core.Testbed {
		return core.NewTestbed(core.WithSeed(seed))
	}
	catalog := fingerprint.DefaultCatalog()

	fmt.Println("profiling phase (attacker's reference machine):")
	clf, err := fingerprint.Train(mkTB, catalog, 3, 100)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range clf.Profiles {
		fmt.Printf("  %-16s %.0f ms of activity (±%.1f ms over %d trials)\n",
			p.Name, p.MeanS*1e3, p.StdS*1e3, p.Trials)
	}
	fmt.Printf("  class separability: %.1f sigma\n", clf.Separability())

	fmt.Println("\nattack phase (victim's machine, EM side channel only):")
	res := fingerprint.Evaluate(clf, mkTB, catalog, 3, 500)
	for truth, row := range res.Confusion {
		for guess, n := range row {
			mark := ""
			if guess == truth {
				mark = "  <- correct"
			}
			fmt.Printf("  %-16s -> %-16s x%d%s\n", truth, guess, n, mark)
		}
	}
	fmt.Printf("\nidentified %d/%d page loads (%.0f%% accuracy) from EM emanations alone\n",
		res.Correct, res.Trials, 100*res.Accuracy())
}
