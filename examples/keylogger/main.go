// Keylogger: the §V attack. A user types a passphrase into a browser on
// an otherwise-idle laptop; an attacker two meters away watches the VRM
// spectral spike and recovers each keystroke's timing, then groups the
// keystrokes into words — the first stage of the Berger-style
// dictionary attack the paper builds on.
package main

import (
	"fmt"
	"os"
	"strings"

	"pmuleak/internal/core"
	"pmuleak/internal/keylog"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sdr"
)

func main() {
	prof, _ := laptop.ByModel("Dell Precision 7290")
	tb := core.NewTestbed(
		core.WithLaptop(prof),
		core.WithDistance(2.0),
		core.WithAntenna(sdr.LoopLA390),
		core.WithSeed(3),
	)

	passphrase := "correct horse battery staple"
	res := tb.RunKeylog(core.KeylogConfig{Text: passphrase})

	fmt.Printf("victim types: %q on %s\n", passphrase, prof)
	fmt.Printf("attacker    : loop antenna at 2 m\n\n")
	fmt.Printf("keystrokes  : %d typed, %d detected (TPR %.0f%%, FPR %.1f%%)\n",
		res.Char.Truth, res.Char.Detected, 100*res.Char.TPR, 100*res.Char.FPR)

	groups := keylog.GroupWords(res.Detection.Keystrokes, 0)
	lengths := keylog.PredictedWordLengths(groups)
	var parts []string
	for _, n := range lengths {
		parts = append(parts, strings.Repeat("?", n))
	}
	fmt.Printf("inferred    : %s\n", strings.Join(parts, " "))
	fmt.Printf("truth       : %s\n", passphrase)
	fmt.Printf("word lengths: precision %.0f%%, recall %.0f%%\n",
		100*res.Word.Precision, 100*res.Word.Recall)
	// Dictionary attack (§V-B, Berger-style): rank same-length words by
	// how well their Salthouse-predicted timing matches the observation.
	fmt.Println("\ndictionary attack on each recovered word:")
	truth := strings.Fields(passphrase)
	for i, g := range groups {
		cands := keylog.RankWord(g, keylog.CommonWords(), keylog.DefaultTypistConfig())
		show := cands
		if len(show) > 3 {
			show = show[:3]
		}
		var names []string
		for _, c := range show {
			names = append(names, c.Word)
		}
		line := fmt.Sprintf("  word %d (%d letters): top guesses %v", i+1, len(g), names)
		if i < len(truth) {
			if r := keylog.Rank(cands, truth[i]); r > 0 {
				line += fmt.Sprintf("   [truth %q ranked #%d of %d]", truth[i], r, len(cands))
			}
		}
		fmt.Println(line)
	}

	hints := keylog.AnalyzeTiming(res.Detection.Keystrokes)
	bits, informative := keylog.SearchSpaceReduction(hints, keylog.DefaultTypistConfig())
	fmt.Printf("timing      : %d informative digraph intervals, ~%.0f bits of key-identity information\n",
		informative, bits)
	fmt.Println("\nWith word lengths and inter-key timing in hand, a dictionary")
	fmt.Println("attack shrinks the passphrase search space dramatically (§V-B).")
	if res.Char.TPR < 0.9 {
		os.Exit(1)
	}
}
