// Quickstart: run one covert-channel transfer on the default testbed
// (Dell Inspiron target, coil probe at 10 cm) and print the channel
// metrics. This is the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"pmuleak/internal/core"
)

func main() {
	// A Testbed bundles the target laptop, the EM propagation path,
	// and the attacker's SDR. Defaults reproduce the paper's
	// near-field setup; options change laptop, distance, walls,
	// antenna, interference, and seed.
	tb := core.NewTestbed(core.WithSeed(42))

	// Transmit 256 random payload bits with the paper's Fig. 3
	// transmitter (return-to-zero coding, Hamming(7,4), preamble).
	res := tb.RunCovert(core.CovertConfig{PayloadBits: 256})

	fmt.Printf("transmitted %d on-air bits in %v of simulated time\n",
		len(res.Run.Bits), res.Run.Airtime())
	fmt.Printf("rate      : %.0f bps\n", res.TransmitRate)
	fmt.Printf("channel   : BER=%.1e IP=%.1e DP=%.1e\n",
		res.BER(), res.InsertionProb(), res.DeletionProb())
	if !res.PayloadOK {
		log.Fatal("payload failed to synchronize")
	}
	fmt.Printf("payload   : recovered with %d corrections, residual BER %.1e\n",
		res.Corrections, res.PayloadBER)
	fmt.Printf("signaling : %.1f µs per bit (receiver estimate)\n",
		res.SignalingTime*1e6)
}
