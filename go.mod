module pmuleak

go 1.22
