// Package admin is the daemon's live introspection plane: an opt-in
// HTTP listener (`emscope -mode serve -admin :port`) that answers the
// questions process-exit stderr cannot — what is this daemon doing
// right now, and what has changed since I last looked.
//
// Endpoints:
//
//   - /metrics — the full telemetry snapshot, byte-identical to what
//     Snapshot.WriteJSON produces for the same values (the same
//     serializer paperbench -metrics uses, so every offline consumer
//     of -metrics files reads scrapes unchanged). With ?delta=1 the
//     response is the change since the previous delta scrape
//     (Snapshot.Delta): counters and histogram counts subtract, gauges
//     stay instantaneous levels.
//
//   - /healthz — liveness AND readiness as JSON: live is "is the
//     process serving" (always true when you got an answer), ready is
//     "is every stream healthy" — quarantined streams, shed chunks,
//     retry giveups, and checkpoint write errors flip status from
//     "ok" to "degraded" with the evidence in the body, so a probe
//     distinguishes a healthy daemon from one silently losing work.
//
//   - /streams — the per-stream view of the capture daemon, assembled
//     from the stream.daemon.<name>.* series: chunks, samples, stalls,
//     live queue depth, and chunk-latency count/mean/p50/p99 from the
//     dispatch-loop histograms.
//
//   - /debug/pprof/ — the standard runtime profiles.
//
// The plane is read-only and holds no lock any recording path takes:
// handlers see the same atomically-read snapshots every other renderer
// sees, so scraping cannot perturb the measurement (the package
// telemetry doc's "recording must be cheap enough to leave on" applies
// to observation too).
package admin

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"pmuleak/internal/telemetry"
)

// Server is one admin plane instance. The zero value is not usable;
// call New.
type Server struct {
	source func() telemetry.Snapshot
	mux    *http.ServeMux
	http   *http.Server
	start  time.Time

	mu      sync.Mutex
	last    telemetry.Snapshot // previous ?delta=1 scrape
	hasLast bool
}

// Option customizes a Server.
type Option func(*Server)

// WithSource overrides where snapshots come from (default
// telemetry.Capture). Tests pin a fixed registry this way.
func WithSource(f func() telemetry.Snapshot) Option {
	return func(s *Server) { s.source = f }
}

// New assembles an admin server. It does not listen; call Serve with a
// listener (or use Handler under a test server).
func New(opts ...Option) *Server {
	s := &Server{
		source: telemetry.Capture,
		mux:    http.NewServeMux(),
		start:  time.Now(),
	}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/streams", s.handleStreams)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.http = &http.Server{Handler: s.mux}
	return s
}

// Handler exposes the route table for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve answers requests on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, matching net/http.
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// Shutdown gracefully stops the server.
func (s *Server) Shutdown(ctx context.Context) error { return s.http.Shutdown(ctx) }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	view := BuildHealthView(s.source())
	view.UptimeMS = time.Since(s.start).Milliseconds()
	w.Header().Set("Content-Type", "application/json")
	b, err := json.MarshalIndent(view, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(append(b, '\n'))
}

// HealthView is the /healthz response body. Live is plain liveness;
// Ready means no stream is quarantined. Status summarizes: "ok" when
// ready and nothing has been shed or given up, "degraded" otherwise —
// a daemon that is up but has lost work says so rather than "ok".
type HealthView struct {
	Status           string   `json:"status"`
	Live             bool     `json:"live"`
	Ready            bool     `json:"ready"`
	UptimeMS         int64    `json:"uptime_ms"`
	Quarantined      []string `json:"quarantined"`
	ShedChunks       uint64   `json:"shed_chunks"`
	AttachRejected   uint64   `json:"attach_rejected"`
	RetryGiveups     uint64   `json:"retry_giveups"`
	CheckpointErrors uint64   `json:"checkpoint_errors"`
}

// BuildHealthView derives the degraded-state summary from a telemetry
// snapshot: the per-stream stream.daemon.<name>.quarantined gauges name
// the quarantined streams, and the stream.shed.* / stream.retry.* /
// stream.checkpoint.* totals quantify what was lost. Pure function of
// the snapshot (UptimeMS is the caller's).
func BuildHealthView(snap telemetry.Snapshot) HealthView {
	view := HealthView{
		Live:             true,
		Quarantined:      []string{},
		ShedChunks:       snap.Counters["stream.shed.chunks"],
		AttachRejected:   snap.Counters["stream.shed.attach_rejected"],
		RetryGiveups:     snap.Counters["stream.retry.giveups"],
		CheckpointErrors: snap.Counters["stream.checkpoint.errors"],
	}
	const prefix = "stream.daemon."
	const suffix = ".quarantined"
	for series, v := range snap.Gauges {
		if v != 0 && strings.HasPrefix(series, prefix) && strings.HasSuffix(series, suffix) {
			view.Quarantined = append(view.Quarantined, series[len(prefix):len(series)-len(suffix)])
		}
	}
	sort.Strings(view.Quarantined)
	view.Ready = len(view.Quarantined) == 0
	if view.Ready && view.ShedChunks == 0 && view.RetryGiveups == 0 && view.CheckpointErrors == 0 {
		view.Status = "ok"
	} else {
		view.Status = "degraded"
	}
	return view
}

// handleMetrics serves the snapshot through the exact WriteJSON
// serializer, so a scrape is byte-identical to a -metrics file of the
// same values. ?delta=1 serves the change since the previous delta
// scrape; the first delta scrape returns the full snapshot (delta from
// empty).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.source()
	if r.URL.Query().Get("delta") != "" {
		s.mu.Lock()
		out := snap
		if s.hasLast {
			out = snap.Delta(s.last)
		}
		s.last = snap
		s.hasLast = true
		s.mu.Unlock()
		snap = out
	}
	w.Header().Set("Content-Type", "application/json")
	if err := snap.WriteJSON(w); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

// StreamInfo is one capture stream's row of the /streams view.
type StreamInfo struct {
	Name        string `json:"name"`
	Chunks      uint64 `json:"chunks"`
	Samples     uint64 `json:"samples"`
	Stalls      uint64 `json:"stalls"`
	Shed        uint64 `json:"shed"`
	Retries     uint64 `json:"retries"`
	Quarantined bool   `json:"quarantined"`
	QueueDepth  int64  `json:"queue_depth"`
	// Chunk-latency digest from the dispatch-loop histogram. The
	// quantile bounds carry the histogram's 2x bucket resolution.
	ChunkCount  uint64 `json:"chunk_count"`
	ChunkMeanNs int64  `json:"chunk_mean_ns"`
	ChunkP50Ns  int64  `json:"chunk_p50_ns"`
	ChunkP99Ns  int64  `json:"chunk_p99_ns"`
}

// StreamsView is the /streams response body.
type StreamsView struct {
	ActiveStreams int64        `json:"active_streams"`
	Dispatches    uint64       `json:"dispatches"`
	Streams       []StreamInfo `json:"streams"`
}

func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	view := BuildStreamsView(s.source())
	w.Header().Set("Content-Type", "application/json")
	b, err := json.MarshalIndent(view, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(append(b, '\n'))
}

// BuildStreamsView assembles the per-stream daemon view from the
// stream.daemon.* series of a snapshot. Streams come out sorted by
// name, so the view is deterministic for equal snapshots.
func BuildStreamsView(snap telemetry.Snapshot) StreamsView {
	const prefix = "stream.daemon."
	view := StreamsView{
		ActiveStreams: snap.Gauges[prefix+"active_streams"],
		Dispatches:    snap.Counters[prefix+"dispatches"],
		Streams:       []StreamInfo{},
	}
	scoped := snap.FilterPrefix(prefix)
	byName := map[string]*StreamInfo{}
	get := func(series string) (*StreamInfo, string) {
		// series is "<name>.<field>"; global series without a dot (or
		// the two daemon-level ones above) have no stream row.
		i := strings.LastIndex(series, ".")
		if i <= 0 {
			return nil, ""
		}
		name, field := series[:i], series[i+1:]
		info := byName[name]
		if info == nil {
			info = &StreamInfo{Name: name}
			byName[name] = info
		}
		return info, field
	}
	for series, v := range scoped.Counters {
		info, field := get(strings.TrimPrefix(series, prefix))
		if info == nil {
			continue
		}
		switch field {
		case "chunks":
			info.Chunks = v
		case "samples":
			info.Samples = v
		case "stalls":
			info.Stalls = v
		case "shed":
			info.Shed = v
		case "retries":
			info.Retries = v
		}
	}
	for series, v := range scoped.Gauges {
		info, field := get(strings.TrimPrefix(series, prefix))
		if info == nil {
			continue
		}
		switch field {
		case "queue_depth":
			info.QueueDepth = v
		case "quarantined":
			info.Quarantined = v != 0
		}
	}
	for series, h := range scoped.Histograms {
		if info, field := get(strings.TrimPrefix(series, prefix)); info != nil && field == "chunk" {
			info.ChunkCount = h.Count
			info.ChunkMeanNs = int64(h.Mean())
			info.ChunkP50Ns = int64(h.Quantile(0.50))
			info.ChunkP99Ns = int64(h.Quantile(0.99))
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		view.Streams = append(view.Streams, *byName[name])
	}
	return view
}
