package admin

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pmuleak/internal/telemetry"
)

// fixedRegistry builds a registry with a known shape: two daemon
// streams plus unrelated series, the mix the handlers must slice up.
func fixedRegistry() *telemetry.Registry {
	r := telemetry.NewRegistry()
	r.Counter("stream.daemon.dispatches").Add(11)
	r.Gauge("stream.daemon.active_streams").Set(2)
	for _, s := range []struct {
		name            string
		chunks, samples uint64
		stalls          uint64
		depth           int64
	}{
		{"cov0", 7, 7 * 4096, 1, 3},
		{"key1", 5, 5 * 4096, 0, 0},
	} {
		r.Counter("stream.daemon." + s.name + ".chunks").Add(s.chunks)
		r.Counter("stream.daemon." + s.name + ".samples").Add(s.samples)
		r.Counter("stream.daemon." + s.name + ".stalls").Add(s.stalls)
		r.Gauge("stream.daemon." + s.name + ".queue_depth").Set(s.depth)
		h := r.Histogram("stream.daemon." + s.name + ".chunk")
		for i := uint64(0); i < s.chunks; i++ {
			h.Observe(700 * time.Microsecond)
		}
	}
	r.Counter("sdr.samples").Add(123456)
	return r
}

func testServer(t *testing.T, r *telemetry.Registry) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(WithSource(r.Snapshot)).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return body
}

// TestMetricsByteIdenticalToWriteJSON is the acceptance criterion: a
// /metrics scrape must serve the exact bytes Snapshot.WriteJSON
// produces for the same values — the admin plane and the -metrics file
// are one format, not two.
func TestMetricsByteIdenticalToWriteJSON(t *testing.T) {
	r := fixedRegistry()
	srv := testServer(t, r)

	var want bytes.Buffer
	if err := r.Snapshot().WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	got := get(t, srv.URL+"/metrics")
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("/metrics diverged from Snapshot.WriteJSON\nwant %d bytes:\n%s\ngot %d bytes:\n%s",
			want.Len(), want.String(), len(got), got)
	}
}

// TestMetricsDelta: the first delta scrape returns the full snapshot,
// later ones only the change since the previous delta scrape, with
// gauges passing through as levels.
func TestMetricsDelta(t *testing.T) {
	r := fixedRegistry()
	srv := testServer(t, r)

	var first telemetry.Snapshot
	if err := json.Unmarshal(get(t, srv.URL+"/metrics?delta=1"), &first); err != nil {
		t.Fatalf("first delta scrape is not JSON: %v", err)
	}
	if first.Counters["stream.daemon.dispatches"] != 11 {
		t.Fatalf("first delta scrape dispatches = %d, want full value 11",
			first.Counters["stream.daemon.dispatches"])
	}

	r.Counter("stream.daemon.dispatches").Add(4)
	r.Gauge("stream.daemon.cov0.queue_depth").Set(9)
	var second telemetry.Snapshot
	if err := json.Unmarshal(get(t, srv.URL+"/metrics?delta=1"), &second); err != nil {
		t.Fatalf("second delta scrape is not JSON: %v", err)
	}
	if second.Counters["stream.daemon.dispatches"] != 4 {
		t.Fatalf("second delta dispatches = %d, want 4", second.Counters["stream.daemon.dispatches"])
	}
	if second.Counters["sdr.samples"] != 0 {
		t.Fatalf("untouched counter delta = %d, want 0", second.Counters["sdr.samples"])
	}
	if second.Gauges["stream.daemon.cov0.queue_depth"] != 9 {
		t.Fatalf("gauge in delta = %d, want instantaneous 9",
			second.Gauges["stream.daemon.cov0.queue_depth"])
	}

	// A plain /metrics scrape between deltas must not advance the delta
	// baseline.
	get(t, srv.URL+"/metrics")
	r.Counter("stream.daemon.dispatches").Add(2)
	var third telemetry.Snapshot
	if err := json.Unmarshal(get(t, srv.URL+"/metrics?delta=1"), &third); err != nil {
		t.Fatal(err)
	}
	if third.Counters["stream.daemon.dispatches"] != 2 {
		t.Fatalf("third delta dispatches = %d, want 2", third.Counters["stream.daemon.dispatches"])
	}
}

// TestStreamsView: the per-stream assembly from stream.daemon.* series,
// sorted by name, with the latency digest wired to the histogram.
func TestStreamsView(t *testing.T) {
	r := fixedRegistry()
	srv := testServer(t, r)

	var view StreamsView
	if err := json.Unmarshal(get(t, srv.URL+"/streams"), &view); err != nil {
		t.Fatalf("/streams is not JSON: %v", err)
	}
	if view.ActiveStreams != 2 || view.Dispatches != 11 {
		t.Fatalf("daemon-level fields = (%d, %d), want (2, 11)", view.ActiveStreams, view.Dispatches)
	}
	if len(view.Streams) != 2 || view.Streams[0].Name != "cov0" || view.Streams[1].Name != "key1" {
		t.Fatalf("streams = %+v, want sorted [cov0 key1]", view.Streams)
	}
	cov := view.Streams[0]
	if cov.Chunks != 7 || cov.Samples != 7*4096 || cov.Stalls != 1 || cov.QueueDepth != 3 {
		t.Fatalf("cov0 row = %+v", cov)
	}
	if cov.ChunkCount != 7 || cov.ChunkP50Ns == 0 || cov.ChunkP99Ns < cov.ChunkP50Ns {
		t.Fatalf("cov0 latency digest = %+v", cov)
	}
	// All 700us observations share one power-of-two bucket, so p50 and
	// p99 agree on its bound.
	if cov.ChunkP50Ns != cov.ChunkP99Ns {
		t.Fatalf("single-bucket quantiles disagree: p50 %d, p99 %d", cov.ChunkP50Ns, cov.ChunkP99Ns)
	}
}

// TestHealthzAndPprof: a healthy registry reports status ok with
// live+ready set, and the pprof index is wired.
func TestHealthzAndPprof(t *testing.T) {
	srv := testServer(t, fixedRegistry())
	var view HealthView
	if err := json.Unmarshal(get(t, srv.URL+"/healthz"), &view); err != nil {
		t.Fatalf("/healthz is not JSON: %v", err)
	}
	if view.Status != "ok" || !view.Live || !view.Ready {
		t.Fatalf("healthy daemon /healthz = %+v, want status ok, live, ready", view)
	}
	if len(view.Quarantined) != 0 || view.ShedChunks != 0 {
		t.Fatalf("healthy daemon reports degradation: %+v", view)
	}
	if body := get(t, srv.URL+"/debug/pprof/"); !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("/debug/pprof/ index missing profiles: %q", body)
	}
}

// TestHealthzDegraded: quarantined streams and shed counts flip the
// status and are itemized in the body — the probe sees exactly which
// streams died and how much work was lost.
func TestHealthzDegraded(t *testing.T) {
	r := fixedRegistry()
	r.Gauge("stream.daemon.key1.quarantined").Set(1)
	r.Gauge("stream.daemon.cov0.quarantined").Set(0)
	r.Counter("stream.shed.chunks").Add(3)
	r.Counter("stream.retry.giveups").Add(1)
	srv := testServer(t, r)

	var view HealthView
	if err := json.Unmarshal(get(t, srv.URL+"/healthz"), &view); err != nil {
		t.Fatalf("/healthz is not JSON: %v", err)
	}
	if view.Status != "degraded" || !view.Live || view.Ready {
		t.Fatalf("degraded daemon /healthz = %+v, want status degraded, live, not ready", view)
	}
	if len(view.Quarantined) != 1 || view.Quarantined[0] != "key1" {
		t.Fatalf("quarantined list = %v, want [key1]", view.Quarantined)
	}
	if view.ShedChunks != 3 || view.RetryGiveups != 1 {
		t.Fatalf("loss counters = %+v, want shed 3, giveups 1", view)
	}

	// /streams carries the same degradation per row.
	var sview StreamsView
	if err := json.Unmarshal(get(t, srv.URL+"/streams"), &sview); err != nil {
		t.Fatal(err)
	}
	for _, row := range sview.Streams {
		if want := row.Name == "key1"; row.Quarantined != want {
			t.Fatalf("stream %s quarantined = %v, want %v", row.Name, row.Quarantined, want)
		}
	}
}
