// Package align compares a transmitted bit sequence with the sequence a
// receiver decoded, attributing every discrepancy to a substitution
// (bit error), an insertion, or a deletion. The paper's Table II/III
// metrics — BER, insertion probability (IP), deletion probability (DP) —
// come from exactly this attribution.
//
// The implementation is a global (Needleman-Wunsch / Levenshtein)
// alignment with unit costs, with the traceback choosing matches first
// so clean channels always score zero everywhere.
package align

import "fmt"

// Result summarizes an alignment of a received sequence against the
// transmitted reference.
type Result struct {
	TxLen, RxLen  int
	Matches       int
	Substitutions int
	Insertions    int // symbols present in RX but not TX
	Deletions     int // symbols present in TX but missing from RX
}

// BER is the bit-error (substitution) rate relative to the transmitted
// length.
func (r Result) BER() float64 { return r.rate(r.Substitutions) }

// InsertionProb is the insertion rate relative to the transmitted length.
func (r Result) InsertionProb() float64 { return r.rate(r.Insertions) }

// DeletionProb is the deletion rate relative to the transmitted length.
func (r Result) DeletionProb() float64 { return r.rate(r.Deletions) }

// ErrorRate is the combined edit-distance rate.
func (r Result) ErrorRate() float64 {
	return r.rate(r.Substitutions + r.Insertions + r.Deletions)
}

func (r Result) rate(n int) float64 {
	if r.TxLen == 0 {
		return 0
	}
	return float64(n) / float64(r.TxLen)
}

// String formats the headline metrics.
func (r Result) String() string {
	return fmt.Sprintf("BER=%.2e IP=%.2e DP=%.2e (tx=%d rx=%d)",
		r.BER(), r.InsertionProb(), r.DeletionProb(), r.TxLen, r.RxLen)
}

// Sequences aligns rx against tx with unit edit costs and returns the
// attribution. Memory is O(len(tx)*len(rx)); sequences of tens of
// thousands of bits are fine.
func Sequences(tx, rx []byte) Result {
	n, m := len(tx), len(rx)
	// dp[i][j] = edit distance between tx[:i] and rx[:j].
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
		dp[i][0] = int32(i)
	}
	for j := 0; j <= m; j++ {
		dp[0][j] = int32(j)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			sub := dp[i-1][j-1]
			if tx[i-1] != rx[j-1] {
				sub++
			}
			del := dp[i-1][j] + 1 // tx symbol missing from rx
			ins := dp[i][j-1] + 1 // extra rx symbol
			best := sub
			if del < best {
				best = del
			}
			if ins < best {
				best = ins
			}
			dp[i][j] = best
		}
	}
	// Traceback, preferring matches/substitutions to keep attribution
	// conventional.
	res := Result{TxLen: n, RxLen: m}
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && dp[i][j] == dp[i-1][j-1] && tx[i-1] == rx[j-1]:
			res.Matches++
			i, j = i-1, j-1
		case i > 0 && j > 0 && dp[i][j] == dp[i-1][j-1]+1:
			res.Substitutions++
			i, j = i-1, j-1
		case i > 0 && dp[i][j] == dp[i-1][j]+1:
			res.Deletions++
			i--
		default:
			res.Insertions++
			j--
		}
	}
	return res
}

// Distance returns just the edit distance between the sequences.
func Distance(tx, rx []byte) int {
	r := Sequences(tx, rx)
	return r.Substitutions + r.Insertions + r.Deletions
}
