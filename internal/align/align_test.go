package align

import (
	"strings"
	"testing"
	"testing/quick"

	"pmuleak/internal/xrand"
)

func bits(s string) []byte {
	out := make([]byte, 0, len(s))
	for _, c := range s {
		out = append(out, byte(c-'0'))
	}
	return out
}

func TestIdentical(t *testing.T) {
	r := Sequences(bits("10110"), bits("10110"))
	if r.Substitutions != 0 || r.Insertions != 0 || r.Deletions != 0 {
		t.Fatalf("clean alignment has errors: %+v", r)
	}
	if r.Matches != 5 {
		t.Fatalf("Matches = %d", r.Matches)
	}
	if r.BER() != 0 || r.ErrorRate() != 0 {
		t.Fatal("rates nonzero")
	}
}

func TestSingleSubstitution(t *testing.T) {
	r := Sequences(bits("10110"), bits("10010"))
	if r.Substitutions != 1 || r.Insertions != 0 || r.Deletions != 0 {
		t.Fatalf("%+v", r)
	}
	if r.BER() != 0.2 {
		t.Fatalf("BER = %v", r.BER())
	}
}

func TestSingleDeletion(t *testing.T) {
	r := Sequences(bits("10110"), bits("1010"))
	if r.Deletions != 1 || r.Substitutions != 0 || r.Insertions != 0 {
		t.Fatalf("%+v", r)
	}
	if r.DeletionProb() != 0.2 {
		t.Fatalf("DP = %v", r.DeletionProb())
	}
}

func TestSingleInsertion(t *testing.T) {
	r := Sequences(bits("1010"), bits("10110"))
	if r.Insertions != 1 || r.Substitutions != 0 || r.Deletions != 0 {
		t.Fatalf("%+v", r)
	}
	if r.InsertionProb() != 0.25 {
		t.Fatalf("IP = %v", r.InsertionProb())
	}
}

func TestEmptySequences(t *testing.T) {
	r := Sequences(nil, nil)
	if r.ErrorRate() != 0 {
		t.Fatalf("%+v", r)
	}
	r = Sequences(bits("111"), nil)
	if r.Deletions != 3 {
		t.Fatalf("%+v", r)
	}
	r = Sequences(nil, bits("11"))
	if r.Insertions != 2 {
		t.Fatalf("%+v", r)
	}
	if r.BER() != 0 { // TxLen 0 => rates 0, not NaN
		t.Fatal("rate with empty tx not zero")
	}
}

func TestMixedErrors(t *testing.T) {
	// tx: 1 0 1 1 0 0 1 ; rx drops the first 1, flips bit 4 (0->1),
	// and appends an extra 0.
	tx := bits("1011001")
	rx := bits("01110010")
	r := Sequences(tx, rx)
	total := r.Substitutions + r.Insertions + r.Deletions
	if total != Distance(tx, rx) {
		t.Fatalf("attribution %d doesn't match distance %d", total, Distance(tx, rx))
	}
	if total > 3 {
		t.Fatalf("distance = %d, want <= 3", total)
	}
}

func TestDistanceKnownCases(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"1", "0", 1},
		{"101", "101", 0},
		{"1111", "0000", 4},
		{"10101", "0101", 1},
		{"110", "011", 2},
	}
	for _, c := range cases {
		if got := Distance(bits(c.a), bits(c.b)); got != c.want {
			t.Errorf("Distance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAccountingInvariant(t *testing.T) {
	// Matches+Subs+Dels == TxLen and Matches+Subs+Ins == RxLen, always.
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		tx := rng.Bits(rng.Intn(200))
		rx := rng.Bits(rng.Intn(200))
		r := Sequences(tx, rx)
		return r.Matches+r.Substitutions+r.Deletions == r.TxLen &&
			r.Matches+r.Substitutions+r.Insertions == r.RxLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymmetryOfDistance(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		a := rng.Bits(rng.Intn(100))
		b := rng.Bits(rng.Intn(100))
		return Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		a := rng.Bits(rng.Intn(60))
		b := rng.Bits(rng.Intn(60))
		c := rng.Bits(rng.Intn(60))
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRealisticChannelAttribution(t *testing.T) {
	// Simulate a channel with known error counts and verify recovery.
	rng := xrand.New(99)
	tx := rng.Bits(2000)
	rx := make([]byte, 0, len(tx))
	subs, dels, ins := 0, 0, 0
	for _, b := range tx {
		switch {
		case rng.Bool(0.005): // deletion
			dels++
		case rng.Bool(0.005): // substitution
			rx = append(rx, b^1)
			subs++
		default:
			rx = append(rx, b)
		}
		if rng.Bool(0.002) { // insertion
			rx = append(rx, byte(rng.Intn(2)))
			ins++
		}
	}
	r := Sequences(tx, rx)
	// Alignment may find a slightly cheaper explanation, never a more
	// expensive one.
	if got, injected := r.Substitutions+r.Insertions+r.Deletions, subs+dels+ins; got > injected {
		t.Fatalf("alignment found %d errors, injected %d", got, injected)
	} else if got < injected/2 {
		t.Fatalf("alignment found only %d of %d injected errors", got, injected)
	}
}

func TestResultString(t *testing.T) {
	r := Sequences(bits("111"), bits("101"))
	s := r.String()
	if !strings.Contains(s, "BER=") || !strings.Contains(s, "tx=3") {
		t.Fatalf("String = %q", s)
	}
}
