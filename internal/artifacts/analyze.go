package artifacts

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Baseline is the checked-in regression expectation set, the same
// ratio-gate discipline cmd/benchguard applies to benchmark pairs:
// every gate compares against baseline×(1±Tolerance), never an
// absolute wall-clock threshold tuned to one machine.
type Baseline struct {
	// Tolerance is the allowed relative regression beyond each recorded
	// baseline (0.10 = fail on >10% worse). Wall gates fail above
	// baseline×(1+Tolerance); the keylog recall gate fails below
	// baseline×(1-Tolerance) — benchguard's baseline×0.9 idiom verbatim.
	Tolerance float64 `json:"tolerance"`
	// TotalWallMS is the recorded harness wall time. 0 disables the gate.
	TotalWallMS float64 `json:"total_wall_ms"`
	// Experiments optionally gate individual experiments' wall time.
	Experiments []ExperimentGate `json:"experiments,omitempty"`
	// CovertBER is the recorded aggregate covert bit-error rate
	// (core.covert.bit_errors / core.covert.tx_bits). The gate fails
	// when the measured BER exceeds CovertBER×(1+Tolerance)+BERSlack.
	CovertBER float64 `json:"covert_ber"`
	// BERSlack is the absolute slack on the BER gate, so a zero
	// baseline does not demand exactly zero forever.
	BERSlack float64 `json:"ber_slack"`
	// KeylogRecall is the recorded aggregate keystroke recall
	// (core.keylog.matched_keys / core.keylog.truth_keys). 0 disables
	// the gate; otherwise it fails below KeylogRecall×(1-Tolerance).
	KeylogRecall float64 `json:"keylog_recall,omitempty"`
}

// ExperimentGate is one experiment's recorded wall-time baseline.
type ExperimentGate struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
}

// LoadBaseline reads a baseline JSON file.
func LoadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &b, nil
}

// MeanStd is a mean ± sample standard deviation over n values.
type MeanStd struct {
	N    int
	Mean float64
	Std  float64
}

func meanStd(vals []float64) MeanStd {
	s := MeanStd{N: len(vals)}
	if s.N == 0 {
		return s
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, v := range vals {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// ExpStat is one experiment's aggregate across the analyzed runs.
type ExpStat struct {
	Name        string
	Wall        MeanStd
	CacheHits   uint64 // summed across runs
	CacheMisses uint64
	// BaselineWallMS is the matching gate's recorded value (0 = ungated);
	// Status is "ok", "FAIL", or "-" when ungated.
	BaselineWallMS float64
	Status         string
}

// Analysis is the grouped view emreport renders, plus the gate
// verdicts.
type Analysis struct {
	Runs          int
	PerExperiment []ExpStat
	TotalWall     MeanStd
	// CovertBER and KeylogRecall aggregate the core scoring counters
	// over all runs (they are deterministic per configuration, so
	// cross-run aggregation is a consistency check, not averaging noise).
	CovertBER    float64
	CovertBits   uint64
	KeylogRecall float64
	KeylogKeys   uint64
	// Failures lists every tripped gate; empty means the analysis
	// passed.
	Failures []string
}

// Analyze groups the runs' rows per experiment, aggregates the scoring
// counters, and applies the baseline gates (nil baseline = report
// only).
func Analyze(runs []*Run, base *Baseline) Analysis {
	a := Analysis{Runs: len(runs)}
	wallByExp := map[string][]float64{}
	hitsByExp := map[string]uint64{}
	missByExp := map[string]uint64{}
	var totals []float64
	var bits, errs, truth, matched uint64
	for _, r := range runs {
		var total float64
		for _, row := range r.Rows {
			wallByExp[row.Experiment] = append(wallByExp[row.Experiment], row.WallMS)
			hitsByExp[row.Experiment] += row.CacheHits
			missByExp[row.Experiment] += row.CacheMisses
			total += row.WallMS
		}
		if r.Manifest.WallSeconds > 0 {
			total = r.Manifest.WallSeconds * 1000
		}
		totals = append(totals, total)
		bits += r.Snapshot.Counters["core.covert.tx_bits"]
		errs += r.Snapshot.Counters["core.covert.bit_errors"]
		truth += r.Snapshot.Counters["core.keylog.truth_keys"]
		matched += r.Snapshot.Counters["core.keylog.matched_keys"]
	}
	a.TotalWall = meanStd(totals)
	a.CovertBits = bits
	if bits > 0 {
		a.CovertBER = float64(errs) / float64(bits)
	}
	a.KeylogKeys = truth
	if truth > 0 {
		a.KeylogRecall = float64(matched) / float64(truth)
	}

	gateByName := map[string]float64{}
	if base != nil {
		for _, g := range base.Experiments {
			gateByName[g.Name] = g.WallMS
		}
	}
	names := make([]string, 0, len(wallByExp))
	for name := range wallByExp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := ExpStat{
			Name:        name,
			Wall:        meanStd(wallByExp[name]),
			CacheHits:   hitsByExp[name],
			CacheMisses: missByExp[name],
			Status:      "-",
		}
		if bw, ok := gateByName[name]; ok && bw > 0 {
			st.BaselineWallMS = bw
			st.Status = "ok"
			if st.Wall.Mean > bw*(1+base.Tolerance) {
				st.Status = "FAIL"
				a.Failures = append(a.Failures,
					fmt.Sprintf("experiment %s: wall %.1f ms > baseline %.1f ms × %.2f",
						name, st.Wall.Mean, bw, 1+base.Tolerance))
			}
		}
		a.PerExperiment = append(a.PerExperiment, st)
	}

	if base == nil {
		return a
	}
	if base.TotalWallMS > 0 && a.TotalWall.Mean > base.TotalWallMS*(1+base.Tolerance) {
		a.Failures = append(a.Failures,
			fmt.Sprintf("total wall %.1f ms > baseline %.1f ms × %.2f",
				a.TotalWall.Mean, base.TotalWallMS, 1+base.Tolerance))
	}
	if bits > 0 {
		gate := base.CovertBER*(1+base.Tolerance) + base.BERSlack
		if a.CovertBER > gate {
			a.Failures = append(a.Failures,
				fmt.Sprintf("covert BER %.3e > gate %.3e (baseline %.3e × %.2f + slack %.1e)",
					a.CovertBER, gate, base.CovertBER, 1+base.Tolerance, base.BERSlack))
		}
	}
	if base.KeylogRecall > 0 && truth > 0 {
		gate := base.KeylogRecall * (1 - base.Tolerance)
		if a.KeylogRecall < gate {
			a.Failures = append(a.Failures,
				fmt.Sprintf("keylog recall %.3f < gate %.3f (baseline %.3f × %.2f)",
					a.KeylogRecall, gate, base.KeylogRecall, 1-base.Tolerance))
		}
	}
	return a
}
