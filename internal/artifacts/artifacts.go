// Package artifacts gives paperbench runs a durable trail: each
// invocation with -artifacts writes one timestamped run directory
// holding the per-experiment CSV, the full telemetry snapshot, the
// byte-exact stdout report, and an environment manifest — the
// reproducible paper-runner workflow (experiments grid, repeats,
// timestamped run dirs, CSV outputs, validate-only replay) that turns
// "the perf/BER trajectory lives in a hand-edited JSON" into recorded
// measurements. cmd/emreport reads these directories back and gates
// regressions (analyze.go).
//
// Run-directory layout:
//
//	<root>/<UTC timestamp>/
//	    manifest.json      environment + flags + stdout SHA-256
//	    experiments.csv    one row per experiment: wall, cache traffic
//	    metrics.json       the telemetry snapshot (Snapshot.WriteJSON)
//	    report.txt         the stdout report, byte-identical to the run's
//
// Nothing here touches stdout: artifacts are written from already-
// captured bytes, so a run's report is byte-identical with artifacts
// on or off (pinned by TestArtifactsGoldenStdout).
package artifacts

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"time"

	"pmuleak/internal/telemetry"
)

// SchemaVersion stamps manifests so future readers can tell what they
// are looking at.
const SchemaVersion = 1

// Manifest records where, how, and from what a run was produced —
// enough to replay it (-validate) and to interpret its numbers next to
// runs from other machines.
type Manifest struct {
	SchemaVersion int    `json:"schema_version"`
	CreatedUTC    string `json:"created_utc"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	// GitRevision comes from the binary's embedded VCS stamp
	// (debug.ReadBuildInfo); empty when the build carries none (go test,
	// dirty toolchains).
	GitRevision string `json:"git_revision,omitempty"`
	GitModified bool   `json:"git_modified,omitempty"`
	// Flags is the full knob set of the run, stringly typed so the
	// schema never chases the flag surface. The replay path
	// (paperbench -validate) reconstructs its configuration from this.
	Flags map[string]string `json:"flags"`
	// WallSeconds is the whole-harness wall time.
	WallSeconds float64 `json:"wall_seconds"`
	// StdoutSHA256 is the hex digest of the run's stdout report — the
	// replay target: a validate run re-executes the recorded flags and
	// must reproduce this digest bit for bit.
	StdoutSHA256 string `json:"stdout_sha256"`
}

// NewManifest fills the environment half of a manifest.
func NewManifest(now time.Time) Manifest {
	m := Manifest{
		SchemaVersion: SchemaVersion,
		CreatedUTC:    now.UTC().Format(time.RFC3339Nano),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Flags:         map[string]string{},
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitRevision = s.Value
			case "vcs.modified":
				m.GitModified = s.Value == "true"
			}
		}
	}
	return m
}

// Row is one experiment's line of experiments.csv.
type Row struct {
	Experiment string
	// WallMS is the experiment's wall time in milliseconds.
	WallMS float64
	// CacheHits/CacheMisses are the transmitter-trace cache deltas over
	// the experiment.
	CacheHits   uint64
	CacheMisses uint64
}

// csvHeader is the experiments.csv column set, in order.
var csvHeader = []string{"experiment", "wall_ms", "trace_cache_hits", "trace_cache_misses"}

// Filenames inside a run directory.
const (
	ManifestFile = "manifest.json"
	CSVFile      = "experiments.csv"
	MetricsFile  = "metrics.json"
	ReportFile   = "report.txt"
)

// WriteRun creates a timestamped directory under root and writes the
// four artifact files. It returns the created directory. Concurrent
// writers under one root are safe: the nanosecond timestamp plus an
// os.Mkdir claim (with -N suffixes on collision) makes the directory
// name unique.
func WriteRun(root string, now time.Time, m Manifest, rows []Row, snap telemetry.Snapshot, report []byte) (string, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return "", err
	}
	base := now.UTC().Format("20060102T150405.000000000Z")
	dir := filepath.Join(root, base)
	for n := 1; ; n++ {
		err := os.Mkdir(dir, 0o755)
		if err == nil {
			break
		}
		if !os.IsExist(err) || n > 100 {
			return "", err
		}
		dir = filepath.Join(root, fmt.Sprintf("%s-%d", base, n))
	}

	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), append(mb, '\n'), 0o644); err != nil {
		return "", err
	}

	cf, err := os.Create(filepath.Join(dir, CSVFile))
	if err != nil {
		return "", err
	}
	cw := csv.NewWriter(cf)
	if err := cw.Write(csvHeader); err != nil {
		cf.Close()
		return "", err
	}
	for _, r := range rows {
		rec := []string{
			r.Experiment,
			strconv.FormatFloat(r.WallMS, 'f', 3, 64),
			strconv.FormatUint(r.CacheHits, 10),
			strconv.FormatUint(r.CacheMisses, 10),
		}
		if err := cw.Write(rec); err != nil {
			cf.Close()
			return "", err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		cf.Close()
		return "", err
	}
	if err := cf.Close(); err != nil {
		return "", err
	}

	mf, err := os.Create(filepath.Join(dir, MetricsFile))
	if err != nil {
		return "", err
	}
	if err := snap.WriteJSON(mf); err != nil {
		mf.Close()
		return "", err
	}
	if err := mf.Close(); err != nil {
		return "", err
	}

	if err := os.WriteFile(filepath.Join(dir, ReportFile), report, 0o644); err != nil {
		return "", err
	}
	return dir, nil
}

// Run is one loaded run directory.
type Run struct {
	Dir      string
	Manifest Manifest
	Rows     []Row
	Snapshot telemetry.Snapshot
}

// ReadManifest loads a manifest from a path that may be the
// manifest.json itself or a run directory containing one.
func ReadManifest(path string) (Manifest, error) {
	var m Manifest
	st, err := os.Stat(path)
	if err != nil {
		return m, err
	}
	if st.IsDir() {
		path = filepath.Join(path, ManifestFile)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, fmt.Errorf("parsing %s: %w", path, err)
	}
	return m, nil
}

// LoadRun reads one run directory back.
func LoadRun(dir string) (*Run, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	cf, err := os.Open(filepath.Join(dir, CSVFile))
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	records, err := csv.NewReader(cf).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", filepath.Join(dir, CSVFile), err)
	}
	if len(records) == 0 || len(records[0]) != len(csvHeader) {
		return nil, fmt.Errorf("%s: missing or malformed header", filepath.Join(dir, CSVFile))
	}
	rows := make([]Row, 0, len(records)-1)
	for _, rec := range records[1:] {
		wall, err1 := strconv.ParseFloat(rec[1], 64)
		hits, err2 := strconv.ParseUint(rec[2], 10, 64)
		misses, err3 := strconv.ParseUint(rec[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%s: bad row %v", filepath.Join(dir, CSVFile), rec)
		}
		rows = append(rows, Row{Experiment: rec[0], WallMS: wall, CacheHits: hits, CacheMisses: misses})
	}
	var snap telemetry.Snapshot
	raw, err := os.ReadFile(filepath.Join(dir, MetricsFile))
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", filepath.Join(dir, MetricsFile), err)
	}
	return &Run{Dir: dir, Manifest: m, Rows: rows, Snapshot: snap}, nil
}

// DiscoverRuns resolves a path argument to run directories: the path
// itself when it holds a manifest, otherwise every immediate child that
// does. Results come back sorted (timestamped names sort
// chronologically), so multi-run analyses are order-deterministic.
func DiscoverRuns(path string) ([]string, error) {
	if _, err := os.Stat(filepath.Join(path, ManifestFile)); err == nil {
		return []string{path}, nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		child := filepath.Join(path, e.Name())
		if _, err := os.Stat(filepath.Join(child, ManifestFile)); err == nil {
			dirs = append(dirs, child)
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("%s: no run directories (no %s found)", path, ManifestFile)
	}
	sort.Strings(dirs)
	return dirs, nil
}
