package artifacts

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pmuleak/internal/telemetry"
)

// fakeSnapshot builds a snapshot carrying the scoring counters the
// analyzer reads.
func fakeSnapshot(bits, errs, truth, matched uint64) telemetry.Snapshot {
	r := telemetry.NewRegistry()
	r.Counter("core.covert.tx_bits").Add(bits)
	r.Counter("core.covert.bit_errors").Add(errs)
	r.Counter("core.keylog.truth_keys").Add(truth)
	r.Counter("core.keylog.matched_keys").Add(matched)
	r.Histogram("stage.demod").Observe(3 * time.Millisecond)
	return r.Snapshot()
}

func writeFakeRun(t *testing.T, root string, now time.Time, wall1, wall2 float64) string {
	t.Helper()
	m := NewManifest(now)
	m.Flags["seed"] = "2020"
	m.WallSeconds = (wall1 + wall2) / 1000
	m.StdoutSHA256 = strings.Repeat("ab", 32)
	rows := []Row{
		{Experiment: "table2", WallMS: wall1, CacheHits: 10, CacheMisses: 2},
		{Experiment: "fleet", WallMS: wall2, CacheHits: 0, CacheMisses: 1},
	}
	dir, err := WriteRun(root, now, m, rows, fakeSnapshot(1000, 3, 200, 180), []byte("report body\n"))
	if err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	return dir
}

// TestWriteLoadRoundTrip pins the artifact schema: what WriteRun
// persists, LoadRun reads back unchanged.
func TestWriteLoadRoundTrip(t *testing.T) {
	root := t.TempDir()
	now := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	dir := writeFakeRun(t, root, now, 1500, 300)

	if filepath.Dir(dir) != root {
		t.Fatalf("run dir %s not under root %s", dir, root)
	}
	for _, f := range []string{ManifestFile, CSVFile, MetricsFile, ReportFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing artifact %s: %v", f, err)
		}
	}

	run, err := LoadRun(dir)
	if err != nil {
		t.Fatalf("LoadRun: %v", err)
	}
	if run.Manifest.SchemaVersion != SchemaVersion || run.Manifest.GoVersion == "" ||
		run.Manifest.NumCPU < 1 || run.Manifest.Flags["seed"] != "2020" {
		t.Fatalf("manifest round trip lost fields: %+v", run.Manifest)
	}
	if run.Manifest.CreatedUTC != now.Format(time.RFC3339Nano) {
		t.Fatalf("created = %s, want %s", run.Manifest.CreatedUTC, now.Format(time.RFC3339Nano))
	}
	if len(run.Rows) != 2 || run.Rows[0].Experiment != "table2" ||
		run.Rows[0].WallMS != 1500 || run.Rows[0].CacheHits != 10 {
		t.Fatalf("rows round trip: %+v", run.Rows)
	}
	if run.Snapshot.Counters["core.covert.tx_bits"] != 1000 {
		t.Fatalf("snapshot round trip: %v", run.Snapshot.Counters)
	}
	if run.Snapshot.Histograms["stage.demod"].Count != 1 {
		t.Fatalf("snapshot histograms lost: %v", run.Snapshot.Histograms)
	}

	report, err := os.ReadFile(filepath.Join(dir, ReportFile))
	if err != nil || string(report) != "report body\n" {
		t.Fatalf("report round trip: %q, %v", report, err)
	}
}

// TestWriteRunCollision: two runs with the same timestamp land in
// distinct directories.
func TestWriteRunCollision(t *testing.T) {
	root := t.TempDir()
	now := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	a := writeFakeRun(t, root, now, 100, 100)
	b := writeFakeRun(t, root, now, 100, 100)
	if a == b {
		t.Fatalf("same directory handed out twice: %s", a)
	}
	dirs, err := DiscoverRuns(root)
	if err != nil || len(dirs) != 2 {
		t.Fatalf("DiscoverRuns = %v, %v; want both runs", dirs, err)
	}
}

// TestDiscoverRuns resolves both a run dir itself and a root of runs,
// and rejects a directory holding neither.
func TestDiscoverRuns(t *testing.T) {
	root := t.TempDir()
	dir := writeFakeRun(t, root, time.Now(), 10, 20)

	direct, err := DiscoverRuns(dir)
	if err != nil || len(direct) != 1 || direct[0] != dir {
		t.Fatalf("direct discovery = %v, %v", direct, err)
	}
	viaRoot, err := DiscoverRuns(root)
	if err != nil || len(viaRoot) != 1 || viaRoot[0] != dir {
		t.Fatalf("root discovery = %v, %v", viaRoot, err)
	}
	if _, err := DiscoverRuns(t.TempDir()); err == nil {
		t.Fatal("discovery in an empty dir did not fail")
	}
}

// TestAnalyzeGates drives every gate through its pass and fail sides.
func TestAnalyzeGates(t *testing.T) {
	root := t.TempDir()
	writeFakeRun(t, root, time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC), 1500, 300)
	writeFakeRun(t, root, time.Date(2026, 8, 9, 12, 5, 0, 0, time.UTC), 1700, 340)
	dirs, err := DiscoverRuns(root)
	if err != nil {
		t.Fatal(err)
	}
	var runs []*Run
	for _, d := range dirs {
		r, err := LoadRun(d)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}

	pass := &Baseline{
		Tolerance:    0.5,
		TotalWallMS:  1900,
		Experiments:  []ExperimentGate{{Name: "table2", WallMS: 1550}},
		CovertBER:    0.003, // measured aggregate is 6/2000 = 0.003
		BERSlack:     1e-4,
		KeylogRecall: 0.9, // measured 360/400 = 0.9, gate 0.45
	}
	a := Analyze(runs, pass)
	if len(a.Failures) != 0 {
		t.Fatalf("passing baseline tripped gates: %v", a.Failures)
	}
	if a.Runs != 2 || len(a.PerExperiment) != 2 {
		t.Fatalf("analysis shape: %+v", a)
	}
	// Rows group by experiment name, sorted.
	if a.PerExperiment[0].Name != "fleet" || a.PerExperiment[1].Name != "table2" {
		t.Fatalf("experiment order: %+v", a.PerExperiment)
	}
	if got := a.PerExperiment[1].Wall; got.N != 2 || got.Mean != 1600 {
		t.Fatalf("table2 wall stats = %+v, want mean 1600 over 2", got)
	}
	if a.PerExperiment[1].Status != "ok" || a.PerExperiment[0].Status != "-" {
		t.Fatalf("statuses: %+v", a.PerExperiment)
	}
	if a.CovertBER != 0.003 || a.KeylogRecall != 0.9 {
		t.Fatalf("aggregates: BER %v recall %v", a.CovertBER, a.KeylogRecall)
	}

	fail := &Baseline{
		Tolerance:    0.1,
		TotalWallMS:  500,                                            // way under the ~1920 measured
		Experiments:  []ExperimentGate{{Name: "fleet", WallMS: 100}}, // measured mean 320
		CovertBER:    0.0001,                                         // gate ~1.1e-4 < measured 3e-3
		KeylogRecall: 1.01,                                           // gate 0.909 > measured 0.9
	}
	a = Analyze(runs, fail)
	if len(a.Failures) != 4 {
		t.Fatalf("failing baseline tripped %d gates, want 4: %v", len(a.Failures), a.Failures)
	}
	for _, st := range a.PerExperiment {
		if st.Name == "fleet" && st.Status != "FAIL" {
			t.Fatalf("fleet gate not marked FAIL: %+v", st)
		}
	}

	// No baseline = report only.
	if a := Analyze(runs, nil); len(a.Failures) != 0 {
		t.Fatalf("nil baseline produced failures: %v", a.Failures)
	}
}
