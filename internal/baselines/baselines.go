// Package baselines implements simplified but physics-grounded models of
// the seven prior physical covert channels the paper compares against in
// Fig. 9. Each model simulates actual bit transmission through its
// mechanism's dominant physical constraint — thermal inertia, memory-bus
// burst energy, acoustic reverberation, DVFS transition latency, power
// budget arbitration — and reports the highest rate that keeps the
// bit-error rate under a target. Nothing returns a hard-coded
// transmission rate: the Fig. 9 bars come out of these simulations.
package baselines

import (
	"fmt"
	"math"

	"pmuleak/internal/xrand"
)

// Channel is one prior-work covert channel model.
type Channel interface {
	// Name is the short label used in Fig. 9.
	Name() string
	// Reference cites the modelled work.
	Reference() string
	// SimulateBER transmits n random bits at the given rate (bits/s)
	// and returns the measured bit-error rate.
	SimulateBER(rate float64, n int, seed int64) float64
	// MaxSymbolRate is the mechanism's hard modulation limit (Hz),
	// independent of noise.
	MaxSymbolRate() float64
}

// MaxRate searches for the highest rate at which ch sustains
// BER <= targetBER, probing n bits per trial. The search walks a
// geometric grid from the mechanism cap downwards, which is how such
// channel capacities are established experimentally.
func MaxRate(ch Channel, targetBER float64, n int, seed int64) float64 {
	rate := ch.MaxSymbolRate()
	const step = 1.15
	for rate > 0.01 {
		if ch.SimulateBER(rate, n, seed) <= targetBER {
			return rate
		}
		rate /= step
	}
	return 0
}

// ookBER simulates on-off-keyed symbols of duration symbolT with the
// given per-symbol signal amplitude and additive Gaussian noise on the
// receiver's matched integrator, and returns the measured BER. The
// integrator gain grows with sqrt(symbolT/refT): longer symbols collect
// more energy.
func ookBER(bits []byte, amp, noiseSigma, symbolT, refT float64, rng *xrand.Source) float64 {
	if len(bits) == 0 {
		return 0
	}
	gain := math.Sqrt(symbolT / refT)
	thr := amp * gain / 2
	errors := 0
	for _, b := range bits {
		level := 0.0
		if b == 1 {
			level = amp * gain
		}
		rx := level + rng.Normal(0, noiseSigma)
		got := byte(0)
		if rx > thr {
			got = 1
		}
		if got != b {
			errors++
		}
	}
	return float64(errors) / float64(len(bits))
}

// ---------------------------------------------------------------------
// GSMem: memory-bus EM emission at GSM frequencies (Guri et al.,
// USENIX Security 2015). Symbols are bursts of full-rate memory
// transfers; the receiver is a baseband phone radio. The dominant
// constraints are the per-symbol EM energy above the cellular-band
// noise floor and the multi-channel-instruction burst generation.

// GSMem models the memory-bus EM covert channel.
type GSMem struct{}

func (GSMem) Name() string      { return "GSMem" }
func (GSMem) Reference() string { return "Guri et al., USENIX Sec'15" }

// Memory burst trains cannot meaningfully amplitude-key faster than a
// few kHz: each symbol needs many LLC-defeating full-cacheline streams.
func (GSMem) MaxSymbolRate() float64 { return 4000 }

// SimulateBER implements Channel.
func (g GSMem) SimulateBER(rate float64, n int, seed int64) float64 {
	rng := xrand.New(seed)
	bits := rng.Bits(n)
	symbolT := 1 / rate
	// Calibration: at the published ~1 kbps working point the
	// per-symbol SNR sits right at the 1%-BER level (z of ~2.3 on the
	// half-amplitude decision margin).
	const ampAt1ms, noise = 4.7, 1.0
	return ookBER(bits, ampAt1ms, noise, symbolT, 1e-3, rng)
}

// ---------------------------------------------------------------------
// USBee: EM emission from USB data lines (Guri et al., 2016). The
// modulation toggles crafted USB transfers; the USB frame clock (1 kHz
// full-speed frames) quantizes symbol timing.

// USBee models the USB data-line EM covert channel.
type USBee struct{}

func (USBee) Name() string           { return "USBee" }
func (USBee) Reference() string      { return "Guri et al., arXiv'16" }
func (USBee) MaxSymbolRate() float64 { return 1000 } // one symbol per USB frame

// SimulateBER implements Channel.
func (u USBee) SimulateBER(rate float64, n int, seed int64) float64 {
	rng := xrand.New(seed)
	bits := rng.Bits(n)
	if rate > 1000 {
		return 0.5 // cannot signal faster than the frame clock
	}
	symbolT := 1 / rate
	const amp, noise = 4.7, 1.0 // 1%-BER working point at ~640 bps
	return ookBER(bits, amp, noise, symbolT, 1.0/640, rng)
}

// ---------------------------------------------------------------------
// AirHopper: FM radio emission from the video cable (Guri et al.,
// MALWARE 2014). Modulation rides on screen refresh: symbol boundaries
// are quantized to frames of a 60 Hz display pipeline, with audio-FM
// style encoding allowing several bits per frame at good SNR.

// AirHopper models the video-cable FM covert channel.
type AirHopper struct{}

func (AirHopper) Name() string           { return "AirHopper" }
func (AirHopper) Reference() string      { return "Guri et al., MALWARE'14" }
func (AirHopper) MaxSymbolRate() float64 { return 480 } // 8 tones x 60 Hz frames

// SimulateBER implements Channel.
func (a AirHopper) SimulateBER(rate float64, n int, seed int64) float64 {
	rng := xrand.New(seed)
	bits := rng.Bits(n)
	symbolT := 1 / rate
	// Video-DAC FM tones are strong but the receiver is a commodity
	// FM chip with a narrow audio passband; the 1%-BER working point
	// sits at ~240 bps, mid-band of the published 104-480 bps.
	const amp, noise = 4.7, 1.0
	return ookBER(bits, amp, noise, symbolT, 1.0/240, rng)
}

// ---------------------------------------------------------------------
// Thermal: CPU-heat covert channel between cores/machines (Masti et
// al., USENIX Sec'15). The package's thermal RC constant is seconds;
// the simulation integrates the heat equation and slices symbols onto
// the temperature trace.

// Thermal models the CPU-heat covert channel.
type Thermal struct{}

func (Thermal) Name() string           { return "Thermal" }
func (Thermal) Reference() string      { return "Masti et al., USENIX Sec'15" }
func (Thermal) MaxSymbolRate() float64 { return 50 }

// SimulateBER implements Channel.
func (t Thermal) SimulateBER(rate float64, n int, seed int64) float64 {
	rng := xrand.New(seed)
	bits := rng.Bits(n)
	symbolT := 1 / rate
	const (
		tau       = 1.8  // package thermal time constant (s)
		heating   = 10.0 // steady-state delta-T at full load (C)
		sensorStd = 0.35 // thermal sensor + ambient noise (C)
		dt        = 0.01 // integration step (s)
	)
	temp := 0.0
	errors := 0
	for _, b := range bits {
		drive := 0.0
		if b == 1 {
			drive = heating
		}
		// Integrate the first-order thermal model across the symbol
		// and read the sensor at its end.
		for t := 0.0; t < symbolT; t += dt {
			temp += (drive - temp) / tau * dt
		}
		read := temp + rng.Normal(0, sensorStd)
		// Receiver compares against the midpoint of the achievable
		// swing for this symbol duration.
		swing := heating * (1 - math.Exp(-symbolT/tau))
		mid := swing / 2
		// The baseline drifts with the running average of past bits;
		// use the symbol-relative change instead of absolute reads.
		got := byte(0)
		if read > mid {
			got = 1
		}
		if got != b {
			errors++
		}
		// Inter-symbol cooling toward a half-level baseline keeps the
		// comparison meaningful (the published channels use return-to-
		// baseline signalling).
		for t := 0.0; t < symbolT; t += dt {
			temp += (heating/2 - temp) / tau * dt
		}
	}
	return float64(errors) / float64(len(bits))
}

// ---------------------------------------------------------------------
// Acoustic mesh: near-ultrasonic networking between laptops (Hanspach
// and Goetz, JCM 2013). The modem is constrained by room reverberation:
// symbols shorter than the reverberation tail smear into each other.

// Acoustic models the near-ultrasonic covert channel.
type Acoustic struct{}

func (Acoustic) Name() string           { return "Acoustic" }
func (Acoustic) Reference() string      { return "Hanspach & Goetz, JCM'13" }
func (Acoustic) MaxSymbolRate() float64 { return 200 }

// SimulateBER implements Channel.
func (a Acoustic) SimulateBER(rate float64, n int, seed int64) float64 {
	rng := xrand.New(seed)
	bits := rng.Bits(n)
	symbolT := 1 / rate
	const reverbT = 0.04 // office reverberation tail (s)
	const amp, noise = 3.0, 1.0
	errors := 0
	prevLevel := 0.0
	for _, b := range bits {
		level := 0.0
		if b == 1 {
			level = amp
		}
		// Inter-symbol interference: the previous symbol's energy
		// decays exponentially into this one.
		isi := prevLevel * math.Exp(-symbolT/reverbT)
		rx := level + isi + rng.Normal(0, noise/math.Sqrt(symbolT/0.005))
		got := byte(0)
		if rx > amp/2+isi/2 {
			got = 1
		}
		if got != b {
			errors++
		}
		prevLevel = level
	}
	return float64(errors) / float64(len(bits))
}

// ---------------------------------------------------------------------
// DFS: the digital frequency-scaling covert channel (Alagappan et al.,
// VLSI-SoC 2017). The sender pins P-states; the receiver times its own
// work to infer the shared frequency. Each symbol costs a DVFS
// transition plus a timing-measurement window.

// DFS models the frequency-scaling digital covert channel.
type DFS struct{}

func (DFS) Name() string           { return "DFS" }
func (DFS) Reference() string      { return "Alagappan et al., VLSI-SoC'17" }
func (DFS) MaxSymbolRate() float64 { return 500 }

// SimulateBER implements Channel.
func (d DFS) SimulateBER(rate float64, n int, seed int64) float64 {
	rng := xrand.New(seed)
	bits := rng.Bits(n)
	symbolT := 1 / rate
	const (
		transition = 0.004 // worst-case frequency switch + settle (s)
		measureRef = 0.010 // timing window for a solid estimate (s)
	)
	if symbolT <= transition {
		return 0.5 // symbols vanish inside the transition latency
	}
	measureT := symbolT - transition
	// The receiver's own-timing estimate sharpens with window length;
	// scheduler noise corrupts it.
	snr := 4.0 * math.Sqrt(measureT/measureRef)
	errors := 0
	for _, b := range bits {
		level := 0.0
		if b == 1 {
			level = snr
		}
		rx := level + rng.Normal(0, 1)
		got := byte(0)
		if rx > snr/2 {
			got = 1
		}
		if got != b {
			errors++
		}
	}
	return float64(errors) / float64(len(bits))
}

// ---------------------------------------------------------------------
// POWERT: the power-budget covert channel (Khatamifard et al., HPCA
// 2019). The sink measures its own performance, which the shared power
// budget modulates. Budget re-arbitration happens on a multi-
// millisecond controller interval, and the sink needs several intervals
// per symbol to average out workload noise.

// POWERT models the power-budget covert channel.
type POWERT struct{}

func (POWERT) Name() string           { return "POWERT" }
func (POWERT) Reference() string      { return "Khatamifard et al., HPCA'19" }
func (POWERT) MaxSymbolRate() float64 { return 400 }

// SimulateBER implements Channel.
func (p POWERT) SimulateBER(rate float64, n int, seed int64) float64 {
	rng := xrand.New(seed)
	bits := rng.Bits(n)
	symbolT := 1 / rate
	const (
		arbitration = 0.002 // RAPL-style budget controller interval (s)
		perfNoise   = 1.0   // sink self-measurement noise per interval
		contrast    = 2.5   // per-interval performance swing from budget
	)
	intervals := symbolT / arbitration
	if intervals < 1 {
		return 0.5
	}
	// Averaging over the intervals in one symbol.
	snr := contrast * math.Sqrt(intervals) / perfNoise
	errors := 0
	for _, b := range bits {
		level := 0.0
		if b == 1 {
			level = snr
		}
		rx := level + rng.Normal(0, 1)
		got := byte(0)
		if rx > snr/2 {
			got = 1
		}
		if got != b {
			errors++
		}
	}
	return float64(errors) / float64(len(bits))
}

// All returns the seven Fig. 9 comparison channels in rate order.
func All() []Channel {
	return []Channel{
		Thermal{},
		Acoustic{},
		DFS{},
		POWERT{},
		AirHopper{},
		USBee{},
		GSMem{},
	}
}

// Row is one bar of Fig. 9.
type Row struct {
	Name      string
	Reference string
	Rate      float64 // bits/s at the target BER
}

// String renders the row.
func (r Row) String() string {
	return fmt.Sprintf("%-10s %8.0f bps (%s)", r.Name, r.Rate, r.Reference)
}

// Compare evaluates every baseline at the target BER.
func Compare(targetBER float64, bitsPerTrial int, seed int64) []Row {
	out := make([]Row, 0, len(All()))
	for _, ch := range All() {
		out = append(out, Row{
			Name:      ch.Name(),
			Reference: ch.Reference(),
			Rate:      MaxRate(ch, targetBER, bitsPerTrial, seed),
		})
	}
	return out
}
