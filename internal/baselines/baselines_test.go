package baselines

import (
	"strings"
	"testing"
)

func TestAllChannelsPresent(t *testing.T) {
	chans := All()
	if len(chans) != 7 {
		t.Fatalf("got %d channels, want the 7 Fig. 9 baselines", len(chans))
	}
	seen := map[string]bool{}
	for _, ch := range chans {
		if ch.Name() == "" || ch.Reference() == "" {
			t.Errorf("channel missing metadata: %q %q", ch.Name(), ch.Reference())
		}
		if seen[ch.Name()] {
			t.Errorf("duplicate channel %q", ch.Name())
		}
		seen[ch.Name()] = true
		if ch.MaxSymbolRate() <= 0 {
			t.Errorf("%s: non-positive symbol cap", ch.Name())
		}
	}
}

func TestBERImprovesAtLowerRates(t *testing.T) {
	for _, ch := range All() {
		fast := ch.SimulateBER(ch.MaxSymbolRate(), 3000, 1)
		slow := ch.SimulateBER(ch.MaxSymbolRate()/20, 3000, 1)
		if slow > fast+0.02 {
			t.Errorf("%s: BER at low rate (%v) worse than at cap (%v)",
				ch.Name(), slow, fast)
		}
	}
}

func TestMaxRateRespectsTarget(t *testing.T) {
	for _, ch := range All() {
		rate := MaxRate(ch, 1e-2, 3000, 2)
		if rate <= 0 {
			t.Errorf("%s: no achievable rate", ch.Name())
			continue
		}
		if ber := ch.SimulateBER(rate, 3000, 2); ber > 1e-2 {
			t.Errorf("%s: returned rate %v has BER %v > target", ch.Name(), rate, ber)
		}
		if rate > ch.MaxSymbolRate() {
			t.Errorf("%s: rate %v above mechanism cap %v", ch.Name(), rate, ch.MaxSymbolRate())
		}
	}
}

func TestMaxRateDeterministic(t *testing.T) {
	for _, ch := range All() {
		if MaxRate(ch, 1e-2, 2000, 7) != MaxRate(ch, 1e-2, 2000, 7) {
			t.Errorf("%s: MaxRate not deterministic", ch.Name())
		}
	}
}

func TestPublishedRateBands(t *testing.T) {
	// The models must land in the bands the original papers report;
	// Fig. 9's shape depends on this ordering.
	bands := map[string][2]float64{
		"GSMem":     {500, 2000},
		"USBee":     {300, 1000},
		"AirHopper": {100, 480},
		"POWERT":    {30, 300},
		"DFS":       {20, 200},
		"Acoustic":  {10, 100},
		"Thermal":   {0.3, 30},
	}
	for _, row := range Compare(1e-2, 4000, 3) {
		band, ok := bands[row.Name]
		if !ok {
			t.Errorf("unexpected channel %q", row.Name)
			continue
		}
		if row.Rate < band[0] || row.Rate > band[1] {
			t.Errorf("%s: rate %.0f bps outside published band [%v, %v]",
				row.Name, row.Rate, band[0], band[1])
		}
	}
}

func TestGSMemIsFastestBaseline(t *testing.T) {
	rows := Compare(1e-2, 4000, 4)
	var gsmem, best float64
	var bestName string
	for _, r := range rows {
		if r.Name == "GSMem" {
			gsmem = r.Rate
		}
		if r.Rate > best {
			best, bestName = r.Rate, r.Name
		}
	}
	if bestName != "GSMem" || gsmem != best {
		t.Fatalf("fastest baseline = %s (%v), want GSMem", bestName, best)
	}
}

func TestRowString(t *testing.T) {
	r := Row{Name: "GSMem", Reference: "ref", Rate: 1000}
	if s := r.String(); !strings.Contains(s, "GSMem") || !strings.Contains(s, "1000") {
		t.Fatalf("String = %q", s)
	}
}

func TestDegenerateRates(t *testing.T) {
	// Rates above what the mechanism can express must fail hard, not
	// silently succeed.
	if ber := (DFS{}).SimulateBER(1000, 500, 5); ber < 0.3 {
		t.Errorf("DFS above transition limit: BER %v", ber)
	}
	if ber := (POWERT{}).SimulateBER(1000, 500, 5); ber < 0.3 {
		t.Errorf("POWERT above arbitration limit: BER %v", ber)
	}
	if ber := (USBee{}).SimulateBER(2500, 500, 5); ber < 0.3 {
		t.Errorf("USBee above frame rate: BER %v", ber)
	}
}
