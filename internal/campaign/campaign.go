// Package campaign is the fleet-scale orchestration layer on top of
// internal/sweep: it runs very large populations of independent
// simulated cells (millions of transmitter/receiver pairs) with
// streaming reducers instead of result slices, so peak memory is
// O(blocks × reducer state) — independent of the cell count — and the
// reduced report is byte-identical at every shard count × worker count.
//
// # The determinism contract
//
// sweep's contract ("jobs=1 and jobs=N render byte-identical reports")
// survives sharding through three rules:
//
//  1. Cell randomness is keyed by stable identity. Cell i draws from
//     xrand.Sub(seed, i) — a pure function of the campaign seed and the
//     cell's global index, never of the shard that happened to execute
//     it. Re-sharding therefore cannot change any cell's sample.
//
//  2. Reducer state is kept per BLOCK, not per shard. The block
//     partition depends only on (cells, blocks); shards are groups of
//     whole blocks and workers claim shards, so neither knob moves a
//     block boundary. Blocks default to a fixed constant, which is what
//     makes reducer memory cell-count-independent.
//
//  3. Merges happen on the caller's goroutine, in block-index order,
//     after every block has finished. Exact-state reducers (integer
//     bucket counts, total-ordered top-k) are associative anyway;
//     float-state reducers (MeanVar) are not, and for them the fixed
//     partition plus the fixed fold order is precisely what pins the
//     byte pattern.
//
// Shards remain meaningful as the unit of execution and telemetry: one
// shard is one sweep chunk (sweep.MapChunks), so the sweep.cell span
// under a campaign measures per-shard latency, and the campaign.*
// series report population throughput.
package campaign

import (
	"time"

	"pmuleak/internal/sweep"
	"pmuleak/internal/telemetry"
	"pmuleak/internal/xrand"
)

// Campaign telemetry. Cell/block/shard counts are deterministic for a
// fixed configuration at every shard/worker setting; the block-duration
// histogram and the cells-per-second gauge observe the runtime and
// legitimately vary run to run.
var (
	campRuns        = telemetry.NewCounter("campaign.runs")
	campCells       = telemetry.NewCounter("campaign.cells")
	campBlocks      = telemetry.NewCounter("campaign.blocks")
	campShards      = telemetry.NewCounter("campaign.shards")
	campBlockDur    = telemetry.NewHistogram("campaign.block")
	campCellsPerSec = telemetry.NewGauge("campaign.cells_per_sec")
)

// DefaultBlocks is the reduction partition used when Config.Blocks is
// zero. It is a constant, not a function of the machine or the cell
// count: the block partition is part of the report's identity (float
// reducers fold in block order), so everything that varies per run or
// per host must stay out of it. 256 blocks keep ~3 blocks per worker
// even on large machines while holding reducer memory to a few hundred
// states.
const DefaultBlocks = 256

// DefaultShards is the execution batching used when Config.Shards is
// zero. Shards never affect the report; 16 gives work-stealing slack
// without making sweep chunks degenerate.
const DefaultShards = 16

// Config describes one campaign.
type Config struct {
	// Cells is the population size.
	Cells int64
	// Shards is the execution batch count: the block list is split into
	// this many contiguous chunks, each claimed as one unit by a sweep
	// worker. 0 means DefaultShards. Reports are byte-identical at
	// every value.
	Shards int
	// Jobs is the sweep worker knob: 0 = process default, 1 = serial.
	// Reports are byte-identical at every value.
	Jobs int
	// Blocks is the reduction partition. 0 means DefaultBlocks. Unlike
	// Shards and Jobs it is part of the report's identity (see the
	// package doc); it exists as a knob for tests, not for tuning.
	Blocks int
	// Seed is the campaign seed; every cell substream derives from it.
	Seed int64
}

// Plan is a resolved Config: the concrete partition a campaign will
// execute. Deterministic given the Config.
type Plan struct {
	Cells          int64
	Blocks         int
	Shards         int
	Jobs           int
	Seed           int64
	BlocksPerShard int
}

// plan resolves the defaults and clamps the partition to the
// population: never more blocks than cells, never more shards than
// blocks.
func (c Config) plan() Plan {
	p := Plan{Cells: c.Cells, Blocks: c.Blocks, Shards: c.Shards, Jobs: c.Jobs, Seed: c.Seed}
	if p.Cells < 0 {
		p.Cells = 0
	}
	if p.Blocks <= 0 {
		p.Blocks = DefaultBlocks
	}
	if int64(p.Blocks) > p.Cells {
		p.Blocks = int(p.Cells)
	}
	if p.Shards <= 0 {
		p.Shards = DefaultShards
	}
	if p.Shards > p.Blocks {
		p.Shards = p.Blocks
	}
	if p.Blocks > 0 {
		p.BlocksPerShard = (p.Blocks + p.Shards - 1) / p.Shards
		// The ceiling division may leave trailing shards empty; report
		// the count of shards that actually receive blocks.
		p.Shards = (p.Blocks + p.BlocksPerShard - 1) / p.BlocksPerShard
	}
	return p
}

// Block is one contiguous cell range [Lo, Hi) of the fixed reduction
// partition, with the campaign seed attached so cells can derive their
// substreams.
type Block struct {
	Index  int
	Lo, Hi int64
	Seed   int64
}

// Cells returns the block's population share.
func (b Block) Cells() int64 { return b.Hi - b.Lo }

// Rng derives cell's random substream. cell is the GLOBAL cell index
// (Lo <= cell < Hi): the substream key must be the cell's stable
// identity, not its block-relative offset, or two blocks would replay
// the same streams.
func (b Block) Rng(cell int64) xrand.Lite {
	return xrand.Sub(b.Seed, uint64(cell))
}

// Run executes the campaign: block(b) is called once per block of the
// fixed partition, fanned out over sweep workers in shard-sized chunks,
// and the per-block states come back in block-index order for the
// caller to fold. R is the caller's reducer bundle (typically a struct
// of Hist/Sketch/MeanVar/TopK).
//
// block must treat b as its complete input: derive all randomness via
// b.Rng(cell), share nothing mutable across blocks. Under that contract
// the returned slice is identical for every Shards/Jobs setting.
func Run[R any](cfg Config, block func(b Block) R) []R {
	p := cfg.plan()
	if p.Cells == 0 || p.Blocks == 0 {
		return nil
	}
	campRuns.Inc()
	campCells.Add(uint64(p.Cells))
	campBlocks.Add(uint64(p.Blocks))
	campShards.Add(uint64(p.Shards))

	start := time.Now()
	out := sweep.MapChunks(p.Jobs, p.Blocks, p.BlocksPerShard, func(i int) R {
		sp := campBlockDur.Start()
		defer sp.End()
		return block(blockAt(p, i))
	})
	if el := time.Since(start).Seconds(); el > 0 {
		campCellsPerSec.Set(int64(float64(p.Cells) / el))
	}
	return out
}

// PlanOf exposes the resolved partition for reporting and tests.
func PlanOf(cfg Config) Plan { return cfg.plan() }

// blockAt computes block i's range: cells are spread with the balanced
// i*cells/blocks boundaries, a pure function of (cells, blocks).
func blockAt(p Plan, i int) Block {
	lo := int64(i) * p.Cells / int64(p.Blocks)
	hi := int64(i+1) * p.Cells / int64(p.Blocks)
	return Block{Index: i, Lo: lo, Hi: hi, Seed: p.Seed}
}
