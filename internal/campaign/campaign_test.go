package campaign

import (
	"bytes"
	"fmt"
	"testing"

	"pmuleak/internal/sweep"
)

// testBundle is a reducer bundle exercising every reducer kind,
// including the float-state MeanVar whose determinism depends on the
// fixed partition and fold order.
type testBundle struct {
	hist   *Hist
	sketch *Sketch
	mv     MeanVar
	groups [4]MeanVar
	top    *TopK
}

func newTestBundle() *testBundle {
	return &testBundle{
		hist:   NewHist(0, 1, 64),
		sketch: NewSketch(0.01),
		top:    NewTopK(8),
	}
}

func (b *testBundle) merge(o *testBundle) {
	b.hist.Merge(o.hist)
	b.sketch.Merge(o.sketch)
	b.mv.Merge(o.mv)
	for g := range b.groups {
		b.groups[g].Merge(o.groups[g])
	}
	b.top.Merge(o.top)
}

// runTestCampaign runs a synthetic heterogeneous population and renders
// its full-precision report.
func runTestCampaign(cells int64, shards, jobs, blocks int) []byte {
	cfg := Config{Cells: cells, Shards: shards, Jobs: jobs, Blocks: blocks, Seed: 42}
	states := Run(cfg, func(b Block) *testBundle {
		tb := newTestBundle()
		for i := b.Lo; i < b.Hi; i++ {
			rng := b.Rng(i)
			group := rng.Intn(4)
			v := rng.Float64() * rng.Float64() // skewed toward 0
			tb.hist.Add(v)
			tb.sketch.Add(v)
			tb.mv.Add(v)
			tb.groups[group].Add(v)
			tb.top.Add(v, i)
		}
		return tb
	})
	total := newTestBundle()
	for _, s := range states {
		total.merge(s)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "n=%d mean=%.17g var=%.17g\n", total.mv.Count, total.mv.Mean, total.mv.Variance())
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99} {
		fmt.Fprintf(&buf, "hist q%.2f=%.17g sketch q%.2f=%.17g\n",
			q, total.hist.Quantile(q), q, total.sketch.Quantile(q))
	}
	for g, mv := range total.groups {
		fmt.Fprintf(&buf, "group %d: n=%d mean=%.17g std=%.17g\n", g, mv.Count, mv.Mean, mv.Std())
	}
	for _, it := range total.top.Items() {
		fmt.Fprintf(&buf, "top cell=%d v=%.17g\n", it.Cell, it.Value)
	}
	return buf.Bytes()
}

// TestCampaignShardWorkerInvariance is the load-bearing property test:
// the fully reduced report — rendered at full float precision — must be
// byte-identical for every shard count × worker count combination,
// including shard counts that do not divide the block count. This is
// the in-package version of the acceptance criterion the paperbench
// fleet golden test enforces end to end.
func TestCampaignShardWorkerInvariance(t *testing.T) {
	const cells = 40000
	baseline := runTestCampaign(cells, 1, 1, 0)
	if len(baseline) == 0 {
		t.Fatal("empty baseline report")
	}
	for _, shards := range []int{1, 2, 3, 4, 7, 16, 64, 256, 1000} {
		for _, jobs := range []int{1, 2, 4, 8} {
			got := runTestCampaign(cells, shards, jobs, 0)
			if !bytes.Equal(got, baseline) {
				t.Fatalf("shards=%d jobs=%d: report differs from serial baseline\n--- want\n%s--- got\n%s",
					shards, jobs, baseline, got)
			}
		}
	}
}

// TestCampaignBlocksArePartOfReportIdentity documents the flip side of
// the contract: the block partition (unlike shards/jobs) MAY move float
// reducer bytes, which is exactly why it is pinned to a constant
// default. The integer-state quantile lines must agree regardless.
func TestCampaignBlocksArePartOfReportIdentity(t *testing.T) {
	a := runTestCampaign(40000, 4, 4, 0)
	b := runTestCampaign(40000, 4, 4, 17)
	// Same samples either way, so the exact-state reducer lines agree.
	aLines, bLines := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	if len(aLines) != len(bLines) {
		t.Fatalf("report shapes differ: %d vs %d lines", len(aLines), len(bLines))
	}
	for i := range aLines {
		if bytes.HasPrefix(aLines[i], []byte("hist ")) || bytes.HasPrefix(aLines[i], []byte("top ")) {
			if !bytes.Equal(aLines[i], bLines[i]) {
				t.Fatalf("exact-state line differs across block partitions:\n%s\n%s", aLines[i], bLines[i])
			}
		}
	}
}

// TestPlanResolution: defaults, clamps, and tiny populations.
func TestPlanResolution(t *testing.T) {
	cases := []struct {
		cfg                    Config
		blocks, shards, chunks int
	}{
		{Config{Cells: 1 << 20}, DefaultBlocks, DefaultShards, 16},
		{Config{Cells: 1 << 20, Shards: 100}, DefaultBlocks, 86, 3},
		{Config{Cells: 10}, 10, 10, 1},
		{Config{Cells: 10, Shards: 3}, 10, 3, 4},
		{Config{Cells: 1}, 1, 1, 1},
		{Config{Cells: 0}, 0, 0, 0},
		{Config{Cells: 1 << 20, Shards: 1}, DefaultBlocks, 1, 256},
	}
	for _, tc := range cases {
		p := PlanOf(tc.cfg)
		if p.Blocks != tc.blocks || p.Shards != tc.shards || p.BlocksPerShard != tc.chunks {
			t.Errorf("%+v: plan blocks=%d shards=%d chunk=%d, want %d/%d/%d",
				tc.cfg, p.Blocks, p.Shards, p.BlocksPerShard, tc.blocks, tc.shards, tc.chunks)
		}
	}
}

// TestBlockPartitionCoversCells: blocks tile [0, cells) exactly, in
// order, with near-equal sizes, for awkward cell counts.
func TestBlockPartitionCoversCells(t *testing.T) {
	for _, cells := range []int64{1, 255, 256, 257, 1000003} {
		p := PlanOf(Config{Cells: cells})
		var next int64
		for i := 0; i < p.Blocks; i++ {
			b := blockAt(p, i)
			if b.Lo != next {
				t.Fatalf("cells=%d block %d starts at %d, want %d", cells, i, b.Lo, next)
			}
			if b.Cells() < 0 {
				t.Fatalf("cells=%d block %d negative size", cells, i)
			}
			next = b.Hi
		}
		if next != cells {
			t.Fatalf("cells=%d: blocks cover %d", cells, next)
		}
	}
}

// TestRunEmpty: zero cells produce no states and no work.
func TestRunEmpty(t *testing.T) {
	called := false
	if got := Run(Config{Cells: 0}, func(b Block) int { called = true; return 1 }); got != nil || called {
		t.Fatalf("empty campaign ran blocks: states=%v called=%v", got, called)
	}
}

// TestFlatReducerMemory pins the "flat memory" acceptance property at
// the reducer level: reducer state must not scale with the population.
// Hist/MeanVar/TopK state is exactly constant; Sketch state is bounded
// by the VALUE range (occupied buckets fill in logarithmically as a
// larger population samples deeper into the tail, then saturate), so a
// 16x population growth may add tail buckets but must stay far from
// 16x — and the whole state must stay under an absolute cap that an
// O(cells) result slice (8 MB of float64 at 1M cells) would blow
// through immediately.
func TestFlatReducerMemory(t *testing.T) {
	size := func(cells int64) int {
		cfg := Config{Cells: cells, Seed: 7}
		states := Run(cfg, func(b Block) *testBundle {
			tb := newTestBundle()
			for i := b.Lo; i < b.Hi; i++ {
				rng := b.Rng(i)
				v := rng.Float64()
				tb.hist.Add(v)
				tb.sketch.Add(v)
				tb.mv.Add(v)
				tb.top.Add(v, i)
			}
			return tb
		})
		total := 0
		for _, s := range states {
			total += s.hist.StateBytes() + s.sketch.StateBytes() + 16 /*MeanVar*/ + 16*8 /*TopK*/
		}
		return total
	}
	small, big := size(64_000), size(1_024_000)
	if float64(big) > 2.5*float64(small) {
		t.Fatalf("reducer state scales with the population: %d bytes at 64k cells, %d at 1M (16x cells)", small, big)
	}
	if big > 4<<20 {
		t.Fatalf("reducer state at 1M cells = %d bytes, want well under the 8 MB an O(cells) slice costs", big)
	}
}

// BenchmarkCampaignCells pairs the campaign's streamed reduction
// against the result-slice alternative it replaces: the same
// per-cell surrogate work either folded into per-block reducers
// (path=streamed, the campaign engine) or returned per cell through
// sweep and reduced afterwards (path=slices, what internal/sweep alone
// offers). cmd/benchguard gates the throughput ratio via
// internal/campaign/testdata/bench_baseline.json; BENCH_experiments.json
// records the absolute cells/s.
func BenchmarkCampaignCells(b *testing.B) {
	const cells = 1 << 20
	work := func(rng interface{ Float64() float64 }) float64 {
		v := rng.Float64() * rng.Float64()
		return v
	}
	b.Run("path=slices", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := PlanOf(Config{Cells: cells, Seed: 9})
			out := sweep.MapChunks(0, cells, 1, func(i int) float64 {
				rng := blockAt(p, 0).Rng(int64(i))
				return work(&rng)
			})
			h := NewHist(0, 1, 64)
			for _, v := range out {
				h.Add(v)
			}
			if h.N != cells {
				b.Fatal("bad count")
			}
		}
		b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
	})
	b.Run("path=streamed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			states := Run(Config{Cells: cells, Seed: 9}, func(blk Block) *Hist {
				h := NewHist(0, 1, 64)
				for i := blk.Lo; i < blk.Hi; i++ {
					rng := blk.Rng(i)
					h.Add(work(&rng))
				}
				return h
			})
			total := NewHist(0, 1, 64)
			for _, s := range states {
				total.Merge(s)
			}
			if total.N != cells {
				b.Fatal("bad count")
			}
		}
		b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
	})
}
