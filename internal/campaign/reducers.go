package campaign

import (
	"fmt"
	"math"
	"sort"
)

// Streaming reducers: the campaign layer's replacement for result
// slices. A million-cell sweep must not hold a million results — each
// block of cells folds its samples into one of these as it goes, and
// the caller merges the per-block states in block-index order at the
// end. Peak memory is O(blocks × reducer state), independent of the
// cell count.
//
// Two determinism classes, matching the byte-identical-report contract
// (see the package doc comment):
//
//   - Hist, Sketch, and TopK hold exact state (integer bucket counts,
//     a total-ordered selection). Their merges are associative and
//     commutative in exact arithmetic, so any partition of the cells
//     produces identical merged state.
//
//   - MeanVar accumulates in float64 (Welford update, Chan et al.
//     merge), which is NOT associative. Its determinism comes from the
//     campaign's fixed block partition and fixed merge order: the
//     partition depends only on (cells, blocks) and the fold happens in
//     block-index order on one goroutine, so every shard × worker
//     combination performs the exact same sequence of float operations.

// ---------------------------------------------------------------------
// Hist: fixed-geometry linear histogram.

// Hist is an online histogram with fixed linear bins over [Lo, Hi).
// Counts are uint64, so merging is exact. Out-of-range samples land in
// the Under/Over tails and still count toward quantiles (as Lo-epsilon
// and Hi+epsilon respectively).
type Hist struct {
	Lo, Hi      float64
	Bins        []uint64
	Under, Over uint64
	N           uint64
}

// NewHist returns a histogram with the given geometry. bins must be
// positive and hi > lo.
func NewHist(lo, hi float64, bins int) *Hist {
	if bins <= 0 || !(hi > lo) {
		panic(fmt.Sprintf("campaign: bad histogram geometry [%g,%g)/%d", lo, hi, bins))
	}
	return &Hist{Lo: lo, Hi: hi, Bins: make([]uint64, bins)}
}

// Add folds one sample in.
func (h *Hist) Add(v float64) {
	h.N++
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Bins)) * (v - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Bins) { // v just below Hi with rounding up
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Merge folds another histogram of identical geometry in. Exact:
// integer adds only.
func (h *Hist) Merge(o *Hist) {
	if o.Lo != h.Lo || o.Hi != h.Hi || len(o.Bins) != len(h.Bins) {
		panic("campaign: merging histograms with different geometry")
	}
	for i, c := range o.Bins {
		h.Bins[i] += c
	}
	h.Under += o.Under
	h.Over += o.Over
	h.N += o.N
}

// Quantile returns the q-quantile (0 <= q <= 1) by walking the bins and
// interpolating linearly inside the target bin. Deterministic for
// identical state.
func (h *Hist) Quantile(q float64) float64 {
	if h.N == 0 {
		return 0
	}
	target := uint64(q * float64(h.N-1))
	if target >= h.N {
		target = h.N - 1
	}
	var cum uint64
	if h.Under > 0 {
		cum = h.Under
		if target < cum {
			return h.Lo
		}
	}
	width := (h.Hi - h.Lo) / float64(len(h.Bins))
	for i, c := range h.Bins {
		if c > 0 && target < cum+c {
			frac := float64(target-cum) / float64(c)
			return h.Lo + width*(float64(i)+frac)
		}
		cum += c
	}
	return h.Hi
}

// StateBytes reports the reducer's memory footprint: fixed by the bin
// count, independent of how many samples were added.
func (h *Hist) StateBytes() int { return 8*len(h.Bins) + 5*8 }

// ---------------------------------------------------------------------
// Sketch: mergeable log-bucketed quantile sketch.

// sketchMinValue is the smallest value the sketch resolves; anything
// smaller (including zero — a BER of exactly 0 is common) lands in the
// dedicated zero bucket.
const sketchMinValue = 1e-12

// Sketch is a quantile sketch over non-negative values with bounded
// relative error: bucket k covers (gamma^(k-1), gamma^k] with
// gamma = (1+alpha)/(1-alpha), so any quantile estimate is within a
// factor (1±alpha) of the true value (the DDSketch bucket layout).
// State is integer bucket counts in a sparse map, so Merge is exact and
// associative — the property that makes campaign reports byte-identical
// at any shard count. Memory is O(log(max/min)/alpha), bounded by the
// value range, not the sample count.
type Sketch struct {
	alpha       float64
	gamma       float64
	invLogGamma float64
	zero        uint64
	buckets     map[int]uint64
	n           uint64
}

// NewSketch returns a sketch with relative accuracy alpha (e.g. 0.01
// for 1% quantile error). 0 < alpha < 1.
func NewSketch(alpha float64) *Sketch {
	if !(alpha > 0 && alpha < 1) {
		panic(fmt.Sprintf("campaign: bad sketch accuracy %g", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:       alpha,
		gamma:       gamma,
		invLogGamma: 1 / math.Log(gamma),
		buckets:     make(map[int]uint64),
	}
}

// Add folds one sample in. Negative values are treated as zero (the
// campaign's metrics — BER, F1, rates — are non-negative by
// construction; clamping keeps a stray -0.0 or tiny negative round-off
// out of the bucket index math).
func (s *Sketch) Add(v float64) {
	s.n++
	if v < sketchMinValue {
		s.zero++
		return
	}
	s.buckets[s.index(v)]++
}

func (s *Sketch) index(v float64) int {
	return int(math.Ceil(math.Log(v) * s.invLogGamma))
}

// value returns the representative value of bucket k: the geometric
// midpoint 2*gamma^k/(gamma+1), which bounds the relative error by
// alpha on both sides.
func (s *Sketch) value(k int) float64 {
	return 2 * math.Pow(s.gamma, float64(k)) / (s.gamma + 1)
}

// Merge folds another sketch in. Both must share alpha. Exact integer
// adds: merge order can never matter.
func (s *Sketch) Merge(o *Sketch) {
	if o.alpha != s.alpha {
		panic("campaign: merging sketches with different accuracy")
	}
	s.zero += o.zero
	s.n += o.n
	for k, c := range o.buckets {
		s.buckets[k] += c
	}
}

// N returns the number of samples folded in.
func (s *Sketch) N() uint64 { return s.n }

// Quantile returns the q-quantile (0 <= q <= 1) with relative error at
// most alpha. Bucket keys are sorted before the walk, so the result
// depends only on the (exact) bucket counts.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	target := uint64(q * float64(s.n-1))
	if target >= s.n {
		target = s.n - 1
	}
	if target < s.zero {
		return 0
	}
	keys := make([]int, 0, len(s.buckets))
	for k := range s.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	cum := s.zero
	for _, k := range keys {
		cum += s.buckets[k]
		if target < cum {
			return s.value(k)
		}
	}
	// Unreachable when counts are consistent; return the top bucket.
	if len(keys) == 0 {
		return 0
	}
	return s.value(keys[len(keys)-1])
}

// StateBytes reports the sketch's memory footprint: proportional to the
// number of occupied buckets (value-range-dependent), independent of
// the sample count.
func (s *Sketch) StateBytes() int { return 16*len(s.buckets) + 6*8 }

// ---------------------------------------------------------------------
// MeanVar: streaming mean/variance (Welford).

// MeanVar accumulates count, mean, and the centered second moment with
// Welford's update, merging partial states with the Chan et al.
// parallel formula. Float state: see the package doc for why its
// determinism relies on the fixed block partition and merge order
// rather than associativity.
type MeanVar struct {
	Count uint64
	Mean  float64
	M2    float64
}

// Add folds one sample in (Welford's numerically stable update).
func (m *MeanVar) Add(v float64) {
	m.Count++
	d := v - m.Mean
	m.Mean += d / float64(m.Count)
	m.M2 += d * (v - m.Mean)
}

// Merge folds another partial state in (Chan et al. 1979).
func (m *MeanVar) Merge(o MeanVar) {
	if o.Count == 0 {
		return
	}
	if m.Count == 0 {
		*m = o
		return
	}
	n1, n2 := float64(m.Count), float64(o.Count)
	d := o.Mean - m.Mean
	tot := n1 + n2
	m.Mean += d * n2 / tot
	m.M2 += o.M2 + d*d*n1*n2/tot
	m.Count += o.Count
}

// Variance returns the population variance.
func (m *MeanVar) Variance() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.M2 / float64(m.Count)
}

// Std returns the population standard deviation.
func (m *MeanVar) Std() float64 { return math.Sqrt(m.Variance()) }

// ---------------------------------------------------------------------
// TopK: deterministic worst-offender selection.

// Item is one retained cell: its metric value and its stable cell
// index. The pair (Value desc, Cell asc) is a strict total order —
// cell indices are unique — which makes top-k selection associative:
// any partition of the cells merges to the same k extremes.
type Item struct {
	Value float64
	Cell  int64
}

// TopK retains the k largest items under the (Value desc, Cell asc)
// order. The zero value is unusable; call NewTopK.
type TopK struct {
	k     int
	items []Item // sorted: best (largest) first
}

// NewTopK returns a selector retaining k items.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("campaign: NewTopK with non-positive k")
	}
	return &TopK{k: k, items: make([]Item, 0, k)}
}

// ranksBefore reports whether a outranks b in the retained order.
func ranksBefore(a, b Item) bool {
	if a.Value != b.Value {
		return a.Value > b.Value
	}
	return a.Cell < b.Cell
}

// Add offers one item.
func (t *TopK) Add(v float64, cell int64) {
	it := Item{Value: v, Cell: cell}
	if len(t.items) == t.k && !ranksBefore(it, t.items[len(t.items)-1]) {
		return
	}
	// Insertion sort: k is small (worst-offender lists), a linear scan
	// beats heap bookkeeping and keeps the slice always totally ordered.
	pos := len(t.items)
	for pos > 0 && ranksBefore(it, t.items[pos-1]) {
		pos--
	}
	if len(t.items) < t.k {
		t.items = append(t.items, Item{})
	}
	copy(t.items[pos+1:], t.items[pos:])
	t.items[pos] = it
}

// Merge folds another selector in. Both must share k.
func (t *TopK) Merge(o *TopK) {
	if o.k != t.k {
		panic("campaign: merging TopK selectors with different k")
	}
	for _, it := range o.items {
		t.Add(it.Value, it.Cell)
	}
}

// Items returns the retained items, best first. The returned slice is
// the selector's own storage; callers must not mutate it.
func (t *TopK) Items() []Item { return t.items }
