package campaign

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"pmuleak/internal/xrand"
)

// TestHistBasic: counts land in the right bins, tails catch
// out-of-range samples, quantiles interpolate sanely.
func TestHistBasic(t *testing.T) {
	h := NewHist(0, 1, 10)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i%10)/10 + 0.05) // bin centers
	}
	h.Add(-1)
	h.Add(2)
	if h.N != 1002 || h.Under != 1 || h.Over != 1 {
		t.Fatalf("N=%d Under=%d Over=%d", h.N, h.Under, h.Over)
	}
	for i, c := range h.Bins {
		if c != 100 {
			t.Fatalf("bin %d = %d, want 100", i, c)
		}
	}
	if q := h.Quantile(0.5); q < 0.4 || q > 0.6 {
		t.Fatalf("median = %v, want ~0.5", q)
	}
	if q := h.Quantile(0); q > 0.1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(1); q < 0.9 {
		t.Fatalf("q1 = %v", q)
	}
}

// TestHistMergePartitionInvariance: integer-state reducers must merge
// to identical state for ANY partition of the samples, not just the
// block partition — the stronger property the byte-identical contract
// rides on.
func TestHistMergePartitionInvariance(t *testing.T) {
	rng := xrand.Sub(1, 0)
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = rng.Normal(0.5, 0.4) // ~10% in each tail
	}
	single := NewHist(0, 1, 64)
	for _, v := range samples {
		single.Add(v)
	}
	for _, parts := range [][]int{{5000}, {1, 4999}, {1234, 1234, 1234, 1298}, {100, 4900}} {
		merged := NewHist(0, 1, 64)
		lo := 0
		for _, n := range parts {
			part := NewHist(0, 1, 64)
			for _, v := range samples[lo : lo+n] {
				part.Add(v)
			}
			merged.Merge(part)
			lo += n
		}
		if !reflect.DeepEqual(merged, single) {
			t.Fatalf("partition %v: merged state differs from single-pass", parts)
		}
	}
}

// TestSketchAccuracy: quantile estimates stay within the alpha
// relative-error envelope on a heavy-tailed sample.
func TestSketchAccuracy(t *testing.T) {
	const alpha = 0.01
	s := NewSketch(alpha)
	rng := xrand.Sub(2, 0)
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = math.Exp(rng.Normal(0, 2)) // lognormal, ~4 decades
		s.Add(samples[i])
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		truth := samples[int(q*float64(len(samples)-1))]
		got := s.Quantile(q)
		if rel := math.Abs(got-truth) / truth; rel > 2*alpha {
			t.Fatalf("q%.2f: got %v, truth %v, rel err %.4f > %.4f", q, got, truth, rel, 2*alpha)
		}
	}
}

// TestSketchZeroBucket: zeros (BER == 0 is the common case) and
// sub-resolution values count, survive merges, and pin the low
// quantiles to 0.
func TestSketchZeroBucket(t *testing.T) {
	s := NewSketch(0.02)
	for i := 0; i < 90; i++ {
		s.Add(0)
	}
	for i := 0; i < 10; i++ {
		s.Add(0.5)
	}
	if s.N() != 100 {
		t.Fatalf("N = %d", s.N())
	}
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("median = %v, want 0", q)
	}
	if q := s.Quantile(0.95); math.Abs(q-0.5) > 0.05 {
		t.Fatalf("q95 = %v, want ~0.5", q)
	}
	s.Add(-0.25) // clamps to the zero bucket
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("median after negative = %v", q)
	}
}

// TestSketchMergePartitionInvariance: same property as the histogram —
// any partition merges to identical sparse state.
func TestSketchMergePartitionInvariance(t *testing.T) {
	rng := xrand.Sub(3, 0)
	samples := make([]float64, 4000)
	for i := range samples {
		samples[i] = math.Exp(rng.Normal(-3, 3))
		if i%17 == 0 {
			samples[i] = 0
		}
	}
	single := NewSketch(0.01)
	for _, v := range samples {
		single.Add(v)
	}
	for _, parts := range [][]int{{4000}, {1, 3999}, {997, 1003, 2000}, {500, 500, 500, 2500}} {
		merged := NewSketch(0.01)
		lo := 0
		for _, n := range parts {
			part := NewSketch(0.01)
			for _, v := range samples[lo : lo+n] {
				part.Add(v)
			}
			merged.Merge(part)
			lo += n
		}
		if !reflect.DeepEqual(merged.buckets, single.buckets) ||
			merged.zero != single.zero || merged.n != single.n {
			t.Fatalf("partition %v: merged sketch state differs from single-pass", parts)
		}
	}
}

// TestMeanVarAgainstTwoPass: streaming mean/variance matches the
// two-pass computation to float tolerance, including after merges.
func TestMeanVarAgainstTwoPass(t *testing.T) {
	rng := xrand.Sub(4, 0)
	samples := make([]float64, 10000)
	var sum float64
	for i := range samples {
		samples[i] = rng.Normal(3, 7)
		sum += samples[i]
	}
	mean := sum / float64(len(samples))
	var m2 float64
	for _, v := range samples {
		m2 += (v - mean) * (v - mean)
	}
	wantVar := m2 / float64(len(samples))

	var single MeanVar
	for _, v := range samples {
		single.Add(v)
	}
	var merged MeanVar
	for lo := 0; lo < len(samples); lo += 1000 {
		var part MeanVar
		for _, v := range samples[lo : lo+1000] {
			part.Add(v)
		}
		merged.Merge(part)
	}
	for name, mv := range map[string]MeanVar{"single": single, "merged": merged} {
		if math.Abs(mv.Mean-mean) > 1e-9 {
			t.Fatalf("%s mean = %v, want %v", name, mv.Mean, mean)
		}
		if math.Abs(mv.Variance()-wantVar)/wantVar > 1e-9 {
			t.Fatalf("%s variance = %v, want %v", name, mv.Variance(), wantVar)
		}
	}
	// Merge with an empty side is the identity in both directions.
	var empty MeanVar
	before := merged
	merged.Merge(empty)
	if merged != before {
		t.Fatal("merging an empty state changed the accumulator")
	}
	empty.Merge(before)
	if empty != before {
		t.Fatal("merging into an empty state did not copy it")
	}
}

// TestTopKDeterministicSelection: selection respects the (value desc,
// cell asc) total order, handles ties by index, and merges to the same
// result for any partition.
func TestTopKDeterministicSelection(t *testing.T) {
	values := []float64{0.5, 0.9, 0.1, 0.9, 0.7, 0.3, 0.9, 0.2}
	single := NewTopK(3)
	for i, v := range values {
		single.Add(v, int64(i))
	}
	want := []Item{{0.9, 1}, {0.9, 3}, {0.9, 6}}
	if !reflect.DeepEqual(single.Items(), want) {
		t.Fatalf("items = %v, want %v", single.Items(), want)
	}
	for _, split := range []int{1, 3, 5, 7} {
		a, b := NewTopK(3), NewTopK(3)
		for i, v := range values[:split] {
			a.Add(v, int64(i))
		}
		for i, v := range values[split:] {
			b.Add(v, int64(split+i))
		}
		a.Merge(b)
		if !reflect.DeepEqual(a.Items(), want) {
			t.Fatalf("split %d: merged = %v, want %v", split, a.Items(), want)
		}
		// The other merge direction must agree too (commutativity).
		b2, a2 := NewTopK(3), NewTopK(3)
		for i, v := range values[:split] {
			a2.Add(v, int64(i))
		}
		for i, v := range values[split:] {
			b2.Add(v, int64(split+i))
		}
		b2.Merge(a2)
		if !reflect.DeepEqual(b2.Items(), want) {
			t.Fatalf("split %d reversed: merged = %v, want %v", split, b2.Items(), want)
		}
	}
}

// TestTopKUnderfilled: fewer offers than k retains everything, ordered.
func TestTopKUnderfilled(t *testing.T) {
	tk := NewTopK(10)
	tk.Add(1, 5)
	tk.Add(3, 2)
	tk.Add(2, 9)
	want := []Item{{3, 2}, {2, 9}, {1, 5}}
	if !reflect.DeepEqual(tk.Items(), want) {
		t.Fatalf("items = %v, want %v", tk.Items(), want)
	}
}

// FuzzSketchMerge is the satellite fuzz target: for arbitrary sample
// sets and split points, merging partial sketches must yield exactly
// the single-pass sketch state, and merge must be associative.
func FuzzSketchMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(3), uint8(7))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(0), uint8(0))
	f.Add([]byte{255, 254, 253}, uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, cut1, cut2 uint8) {
		// Each input byte becomes one sample spanning ~12 decades plus
		// exact zeros, exercising the zero bucket and both index signs.
		samples := make([]float64, len(data))
		for i, b := range data {
			if b == 0 {
				samples[i] = 0
			} else {
				samples[i] = math.Exp(float64(b)/10 - 13)
			}
		}
		n := len(samples)
		i, j := int(cut1)%(n+1), int(cut2)%(n+1)
		if i > j {
			i, j = j, i
		}
		single := NewSketch(0.01)
		for _, v := range samples {
			single.Add(v)
		}
		parts := [][]float64{samples[:i], samples[i:j], samples[j:]}
		sk := make([]*Sketch, 3)
		for p := range parts {
			sk[p] = NewSketch(0.01)
			for _, v := range parts[p] {
				sk[p].Add(v)
			}
		}
		// Left fold.
		left := NewSketch(0.01)
		left.Merge(sk[0])
		left.Merge(sk[1])
		left.Merge(sk[2])
		// Right-leaning fold: a merged into (b merged with c).
		bc := NewSketch(0.01)
		bc.Merge(sk[1])
		bc.Merge(sk[2])
		right := NewSketch(0.01)
		right.Merge(sk[0])
		right.Merge(bc)
		for name, got := range map[string]*Sketch{"left": left, "right": right} {
			if !reflect.DeepEqual(got.buckets, single.buckets) ||
				got.zero != single.zero || got.n != single.n {
				t.Fatalf("%s fold: merged state differs from single-pass", name)
			}
		}
		if n > 0 {
			for _, q := range []float64{0, 0.5, 1} {
				if left.Quantile(q) != single.Quantile(q) {
					t.Fatalf("quantile %v differs after merge", q)
				}
			}
		}
	})
}
