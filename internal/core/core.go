// Package core is the library's public face: it assembles a target
// laptop, a propagation path, and a receiver into a Testbed, and exposes
// one method per attack or experiment in the paper — covert-channel
// transfers (§IV), rate search at a BER target (Tables II/III),
// keystroke logging (§V), micro-benchmark spectrograms (Figs. 2 and 11),
// and the §III power-state ablation.
//
// Examples and command-line tools use only this package plus the option
// types it re-exports.
package core

import (
	"fmt"

	"pmuleak/internal/covert"
	"pmuleak/internal/dsp"
	"pmuleak/internal/emchannel"
	"pmuleak/internal/faults"
	"pmuleak/internal/kernel"
	"pmuleak/internal/keylog"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sdr"
	"pmuleak/internal/sim"
	"pmuleak/internal/sweep"
	"pmuleak/internal/telemetry"
	"pmuleak/internal/workload"
	"pmuleak/internal/xrand"
)

// Per-stage span histograms for the simulate → VRM/emit → EM-channel →
// SDR → demod/detect pipeline. One observation per stage per run —
// spans bracket whole pipeline stages, so their cost (two time.Now
// calls) vanishes next to the milliseconds each stage takes. Durations
// are wall-clock and naturally vary run to run; only the key set is
// deterministic.
var (
	stageSimulate = telemetry.NewHistogram("stage.simulate")
	stageEmit     = telemetry.NewHistogram("stage.emit")
	stageChannel  = telemetry.NewHistogram("stage.emchannel")
	stageSDR      = telemetry.NewHistogram("stage.sdr")
	stageFaults   = telemetry.NewHistogram("stage.faults")
	stageDemod    = telemetry.NewHistogram("stage.demod")
	stageDetect   = telemetry.NewHistogram("stage.detect")
)

// Aggregate scoring counters, recorded once per scored run in finish().
// These are pure functions of simulation outputs, so — like the other
// simulation-derived series — their totals are identical at every -jobs
// / cache / shard setting. bit_errors/tx_bits is the harness-wide
// covert BER and matched_keys/truth_keys the keystroke recall; the
// emreport regression gate reads both from persisted -metrics/artifact
// snapshots.
var (
	covertRuns    = telemetry.NewCounter("core.covert.runs")
	covertTxBits  = telemetry.NewCounter("core.covert.tx_bits")
	covertBitErrs = telemetry.NewCounter("core.covert.bit_errors")
	keylogRuns    = telemetry.NewCounter("core.keylog.runs")
	keylogTruth   = telemetry.NewCounter("core.keylog.truth_keys")
	keylogMatched = telemetry.NewCounter("core.keylog.matched_keys")
)

// faultSeedOffset derives the fault injector's stream from the testbed
// seed, distinct from the channel (104729), receiver (500), and typist
// (13) offsets so enabling faults never perturbs those streams.
const faultSeedOffset = 424243

// Testbed is one measurement setup: a target laptop, the EM path to the
// attacker's antenna, and the receiver. Construct with NewTestbed.
type Testbed struct {
	Profile laptop.Profile
	Channel emchannel.Config
	Radio   sdr.Config
	Seed    int64
}

// Option mutates a Testbed during construction.
type Option func(*Testbed)

// WithLaptop selects the target device (default: the Dell Inspiron the
// paper uses for its figures).
func WithLaptop(p laptop.Profile) Option {
	return func(tb *Testbed) { tb.Profile = p }
}

// WithDistance places the antenna d meters from the laptop's VRM.
func WithDistance(d float64) Option {
	return func(tb *Testbed) { tb.Channel.DistanceM = d }
}

// WithWall inserts a wall with the given penetration loss (power dB)
// into the path — the paper's 35 cm structural wall is ~15 dB at these
// frequencies.
func WithWall(lossDB float64) Option {
	return func(tb *Testbed) { tb.Channel.WallLossDB = lossDB }
}

// WithAntenna selects the pickup device. Distance work needs
// sdr.LoopLA390; the near-field default is sdr.CoilProbe.
func WithAntenna(a sdr.Antenna) Option {
	return func(tb *Testbed) { tb.Radio.Antenna = a }
}

// WithInterference adds environmental EM sources to the path.
func WithInterference(in ...emchannel.Interferer) Option {
	return func(tb *Testbed) { tb.Channel.Interferers = append(tb.Channel.Interferers, in...) }
}

// WithNoise overrides the environmental noise floor (per-component
// standard deviation at the antenna).
func WithNoise(sigma float64) Option {
	return func(tb *Testbed) { tb.Channel.NoiseSigma = sigma }
}

// WithSeed sets the experiment seed; every stochastic element derives
// from it, so equal seeds reproduce bit-exact results.
func WithSeed(seed int64) Option {
	return func(tb *Testbed) { tb.Seed = seed }
}

// NewTestbed builds the paper's default setup: Dell Inspiron target,
// coil probe at 10 cm, RTL-SDR at 2.4 MS/s.
func NewTestbed(opts ...Option) *Testbed {
	tb := &Testbed{
		Profile: laptop.Reference(),
		Channel: emchannel.DefaultConfig(),
		Radio:   sdr.DefaultConfig(),
		Seed:    1,
	}
	for _, opt := range opts {
		opt(tb)
	}
	return tb
}

// Validate reports configuration errors in the assembled testbed — the
// checks emchannel.Apply and sdr.Acquire would otherwise panic on deep
// inside a run. Command-line tools call it right after flag parsing so
// a bad -distance or -noise exits with a message instead of a stack
// trace.
func (tb *Testbed) Validate() error {
	if err := tb.Channel.Validate(); err != nil {
		return err
	}
	return tb.Radio.Validate()
}

// NLoSOffice returns the Fig. 10 setup: loop antenna 1.5 m away behind a
// 35 cm wall, with the printer and refrigerator interferers present.
func NLoSOffice(seed int64) *Testbed {
	return NewTestbed(
		WithDistance(1.5),
		WithWall(15),
		WithAntenna(sdr.LoopLA390),
		WithInterference(
			emchannel.OfficePrinter(0.002),
			emchannel.Refrigerator(0.0015),
			emchannel.OfficeBroadband(0.001),
		),
		WithSeed(seed),
	)
}

// CovertConfig parameterizes one covert-channel run.
type CovertConfig struct {
	// SleepPeriod is the transmitter's SLEEP_PERIOD; zero uses the
	// profile's default (the paper's per-OS choice).
	SleepPeriod sim.Time
	// PayloadBits sets the random payload size when Payload is nil.
	PayloadBits int
	// Payload transmits specific bits instead of a random payload.
	Payload []byte
	// Code selects the error-control code (default Hamming(7,4)).
	Code covert.Coding
	// Background adds the §IV-C2 resource-intensive background
	// process on the target.
	Background bool
	// RXHarmonics overrides the receiver's Eq. (1) harmonic count
	// (|S|); zero keeps the default of two.
	RXHarmonics int
	// Interleave sets the transmitter's block-interleave depth
	// (values > 1 spread burst errors across codewords).
	Interleave int
	// Parallelism is the receiver's DSP worker count (0 = process
	// default, 1 = serial). Parallel and serial paths are
	// bit-identical, so it only affects wall-clock time.
	Parallelism int
	// Faults injects acquisition faults (USB overrun drops, clock ppm
	// error, AGC gain steps, saturation bursts, truncation) into the
	// capture between sdr.Acquire and the demodulator. The zero value
	// injects nothing. The fault schedule derives from the testbed
	// seed, so it is reproducible and independent of -jobs; it is
	// receiver-side, so transmitter-trace cache hits are unaffected.
	Faults faults.Config
	// RXResync enables the receiver's per-batch period re-estimation
	// (covert.RXConfig.Resync).
	RXResync bool
	// RXCarrierRetries bounds the receiver's carrier re-acquisition
	// retries (covert.RXConfig.CarrierRetries).
	RXCarrierRetries int
}

func (c *CovertConfig) fill(tb *Testbed) {
	if c.SleepPeriod == 0 {
		c.SleepPeriod = tb.Profile.DefaultSleepPeriod
	}
	if c.PayloadBits == 0 {
		c.PayloadBits = 256
	}
}

// CovertResult bundles a covert run's metrics with the receiver's
// intermediate traces (the paper's Figs. 4-7 are plots of these).
type CovertResult struct {
	covert.Measurement
	Run     *covert.TxRun
	Demod   *covert.Demod
	Payload []byte
	TXCfg   covert.TXConfig
	// Faults is the realized fault schedule (zero when no faults were
	// configured).
	Faults faults.Report
}

// RunCovert executes one full covert transfer: transmitter process on
// the simulated laptop, EM emission, propagation, SDR capture, and the
// batch-processing demodulator.
//
// The transmitter half (kernel simulation through EM synthesis) reads
// only the laptop profile, the seed, the radio sample rate, and the
// transmitter-side config fields — never the channel or receiver
// config — so it is memoized in a process-wide cache: sweeps that vary
// only receiver-side parameters (distance, walls, antennas, noise,
// harmonic count) synthesize the pulse train once and replay it. The
// cache is on by default (SetTraceCacheEnabled to opt out) and results
// are bit-identical either way, because the receiver's random stream is
// independently seeded. When the trace comes from the cache, the
// result's Run, Payload, and TXCfg fields are shared with other results
// of the same transmitter configuration — treat them as read-only.
func (tb *Testbed) RunCovert(cfg CovertConfig) *CovertResult {
	p := tb.PrepareCovert(cfg)
	demodSpan := stageDemod.Start()
	demod := covert.Demodulate(p.Cap, p.RXCfg)
	demodSpan.End()
	res := p.finish(demod)
	// Demodulate keeps no reference to the raw samples; recycle them.
	p.Cap.Recycle()
	return res
}

// PreparedCovert is the receiver-side input of one covert run: the
// capture exactly as the demodulator would see it (faults applied) plus
// the receiver config RunCovert would use and the transmitter-side
// ground truth needed to score the decode. It is the seam between
// capture production and demodulation that lets the batch path
// (covert.Demodulate) and the streaming path (stream.CovertReceiver)
// consume the identical capture. The caller owns Cap and must Recycle
// it; when the transmitter trace came from the cache, Run, Payload, and
// TXCfg are shared — treat them as read-only.
type PreparedCovert struct {
	Cap     *sdr.Capture
	RXCfg   covert.RXConfig
	Run     *covert.TxRun
	Payload []byte
	TXCfg   covert.TXConfig
	Faults  faults.Report
}

// PrepareCovert runs the transmitter half, the EM channel, the SDR
// capture, and fault injection — everything RunCovert does before
// demodulation — and returns the assembled receiver-side input.
func (tb *Testbed) PrepareCovert(cfg CovertConfig) *PreparedCovert {
	cfg.fill(tb)
	tr, cached := tb.transmitterTrace(cfg)

	rng := xrand.New(tb.Seed + 104729)
	chSpan := stageChannel.Start()
	field := emchannel.Apply(tr.field, tr.plan.SampleRate, tb.Channel, rng)
	chSpan.End()
	if !cached {
		// A non-cached trace is exclusively ours and its pre-channel
		// field is dead once Apply has consumed it.
		dsp.PutIQ(tr.field)
		tr.field = nil
	}
	sdrSpan := stageSDR.Start()
	cap := sdr.Acquire(field, tr.plan.CenterFreqHz, tb.Radio, rng.Fork())
	sdrSpan.End()
	dsp.PutIQ(field) // Acquire copied what it needed

	var faultRep faults.Report
	if cfg.Faults.Enabled() {
		faultSpan := stageFaults.Start()
		faultRep = faults.MustNew(cfg.Faults, tb.Seed+faultSeedOffset).Apply(cap)
		faultSpan.End()
	}

	rxCfg := covert.DefaultRXConfig()
	rxCfg.ExpectedF0 = tb.Profile.VRM.SwitchingFreqHz
	rxCfg.MinBitPeriod = tr.txCfg.BitPeriod() / 2
	rxCfg.Parallelism = cfg.Parallelism
	rxCfg.Resync = cfg.RXResync
	rxCfg.CarrierRetries = cfg.RXCarrierRetries
	if cfg.RXHarmonics > 0 {
		rxCfg.NumHarmonics = cfg.RXHarmonics
	}
	return &PreparedCovert{
		Cap:     cap,
		RXCfg:   rxCfg,
		Run:     tr.run,
		Payload: tr.payload,
		TXCfg:   tr.txCfg,
		Faults:  faultRep,
	}
}

// Finish scores a demod produced outside RunCovert — typically a
// stream.CovertReceiver's Finalize output, as in `emscope serve` —
// against this prepared run's ground truth.
func (p *PreparedCovert) Finish(demod *covert.Demod) *CovertResult { return p.finish(demod) }

// finish scores a demod against the prepared run's ground truth.
func (p *PreparedCovert) finish(demod *covert.Demod) *CovertResult {
	m := covert.Measure(p.Run, demod, p.TXCfg, p.Payload)
	covertRuns.Inc()
	covertTxBits.Add(uint64(m.TxLen))
	covertBitErrs.Add(uint64(m.Substitutions))
	return &CovertResult{
		Measurement: m,
		Run:         p.Run,
		Demod:       demod,
		Payload:     p.Payload,
		TXCfg:       p.TXCfg,
		Faults:      p.Faults,
	}
}

// spawnBackgroundHog runs the §IV-C2 resource-intensive background
// activity. The paper observes the OS schedules such work as short
// bursts, most smaller than one sleep/active period (harmless), with
// occasional longer ones that corrupt a bit and force the transmitter
// to slow down modestly (~15% TR).
func spawnBackgroundHog(k *kernel.Kernel, seed int64) {
	rng := xrand.New(seed)
	k.Spawn("background-hog", func(p *kernel.Proc) {
		for {
			burst := sim.Time(rng.Uniform(float64(8*sim.Microsecond), float64(40*sim.Microsecond)))
			if rng.Bool(0.12) {
				// Occasional long burst spanning a whole bit period.
				burst = sim.Time(rng.Uniform(float64(250*sim.Microsecond), float64(500*sim.Microsecond)))
			}
			p.Busy(burst)
			p.Sleep(sim.Time(rng.Uniform(float64(2*sim.Millisecond), float64(6*sim.Millisecond))))
		}
	})
}

// RateSearch finds the highest transmission rate whose channel error
// rate stays at or below targetBER by lengthening the sleep period in
// geometric steps — the procedure behind Tables II and III. It returns
// the passing run (or the slowest attempted run if none passes, with
// ok=false).
func (tb *Testbed) RateSearch(targetBER float64, cfg CovertConfig) (*CovertResult, bool) {
	cfg.fill(tb)
	base := cfg.SleepPeriod
	var last *CovertResult
	for scale := 1.0; scale <= 12; scale *= 1.3 {
		attempt := cfg
		attempt.SleepPeriod = sim.Time(float64(base) * scale)
		res := tb.RunCovert(attempt)
		last = res
		if res.ErrorRate() <= targetBER && len(res.Demod.Bits) > 0 {
			return res, true
		}
	}
	return last, false
}

// KeylogConfig parameterizes a §V keystroke-logging run.
type KeylogConfig struct {
	// Text is typed verbatim; when empty, Words random pseudo-words
	// are generated.
	Text  string
	Words int
	// Typist and Handling override the human and host models.
	Typist   *keylog.TypistConfig
	Handling *keylog.HandlingConfig
	// Detector overrides the receiver's detector settings (for
	// example a finer STFT window when keystroke timing precision
	// matters more than runtime).
	Detector *keylog.DetectorConfig
	// Parallelism is the detector's DSP worker count (0 = process
	// default, 1 = serial); nonzero values override the Detector
	// config's own knob. Parallel and serial paths are bit-identical.
	Parallelism int
	// Faults injects acquisition faults into the capture between
	// sdr.Acquire and the detector (see CovertConfig.Faults).
	Faults faults.Config
	// GapAware turns on the detector's per-block threshold
	// normalization (keylog.DetectorConfig.GapAware) without having to
	// override the whole Detector config.
	GapAware bool
}

// KeylogResult carries the Table IV metrics plus everything needed to
// render Fig. 11.
type KeylogResult struct {
	Text      string
	Events    []keylog.KeyEvent
	Detection *keylog.Detection
	Char      keylog.CharScore
	Word      keylog.WordScore
	// Faults is the realized fault schedule (zero when no faults were
	// configured).
	Faults faults.Report
}

// keylogPlan is the narrowband tuning used for keystroke detection: the
// fundamental spike in a 240 kHz capture, which keeps multi-second
// captures tractable.
func (tb *Testbed) keylogPlan() laptop.EmanationPlan {
	return laptop.EmanationPlan{
		SampleRate:   240e3,
		CenterFreqHz: tb.Profile.VRM.SwitchingFreqHz - 60e3,
		Harmonics:    1,
	}
}

// RunKeylog executes a full keystroke-logging attack.
func (tb *Testbed) RunKeylog(cfg KeylogConfig) *KeylogResult {
	p := tb.PrepareKeylog(cfg)
	detSpan := stageDetect.Start()
	det := keylog.Detect(p.Cap, p.DetCfg)
	detSpan.End()
	p.Cap.Recycle()
	return p.finish(det)
}

// PreparedKeylog is the receiver-side input of one keystroke-logging
// run: the capture as the detector would see it (faults applied), the
// detector config RunKeylog would use, and the typed ground truth for
// scoring. Like PreparedCovert, it is the seam that lets the batch
// detector and the streaming detector consume the identical capture.
// The caller owns Cap and must Recycle it.
type PreparedKeylog struct {
	Cap    *sdr.Capture
	DetCfg keylog.DetectorConfig
	Text   string
	Events []keylog.KeyEvent
	Faults faults.Report
}

// PrepareKeylog runs the typing simulation, emanation synthesis, EM
// channel, SDR capture, and fault injection — everything RunKeylog does
// before detection — and returns the assembled receiver-side input.
func (tb *Testbed) PrepareKeylog(cfg KeylogConfig) *PreparedKeylog {
	text := cfg.Text
	if text == "" {
		n := cfg.Words
		if n == 0 {
			n = 50
		}
		text = keylog.RandomWords(n, xrand.New(tb.Seed+13))
	}
	typist := keylog.DefaultTypistConfig()
	if cfg.Typist != nil {
		typist = *cfg.Typist
	}
	handling := keylog.DefaultHandlingConfig()
	if cfg.Handling != nil {
		handling = *cfg.Handling
	}

	simSpan := stageSimulate.Start()
	sys := laptop.NewSystem(tb.Profile, tb.Seed)
	defer sys.Close()
	rng := xrand.New(tb.Seed + 500)
	events := keylog.Type(text, 200*sim.Millisecond, typist, rng)
	horizon := keylog.SessionHorizon(events)
	keylog.Inject(sys.Kernel(), events, horizon, handling, rng.Fork())
	sys.Run(horizon)
	simSpan.End()

	plan := tb.keylogPlan()
	emitSpan := stageEmit.Start()
	raw := sys.Emanations(horizon, plan)
	emitSpan.End()
	chSpan := stageChannel.Start()
	field := emchannel.Apply(raw, plan.SampleRate, tb.Channel, rng.Fork())
	chSpan.End()
	dsp.PutIQ(raw)
	radio := tb.Radio
	radio.SampleRate = plan.SampleRate
	sdrSpan := stageSDR.Start()
	cap := sdr.Acquire(field, plan.CenterFreqHz, radio, rng.Fork())
	sdrSpan.End()
	dsp.PutIQ(field)

	var faultRep faults.Report
	if cfg.Faults.Enabled() {
		faultSpan := stageFaults.Start()
		faultRep = faults.MustNew(cfg.Faults, tb.Seed+faultSeedOffset).Apply(cap)
		faultSpan.End()
	}

	detCfg := keylog.DefaultDetectorConfig()
	if cfg.Detector != nil {
		detCfg = *cfg.Detector
	}
	detCfg.ExpectedF0 = tb.Profile.VRM.SwitchingFreqHz
	if cfg.Parallelism != 0 {
		detCfg.Parallelism = cfg.Parallelism
	}
	if cfg.GapAware {
		detCfg.GapAware = true
	}
	return &PreparedKeylog{
		Cap:    cap,
		DetCfg: detCfg,
		Text:   text,
		Events: events,
		Faults: faultRep,
	}
}

// Finish scores a detection produced outside RunKeylog — typically a
// stream.KeylogDetector's Finalize output — against this prepared
// run's ground truth.
func (p *PreparedKeylog) Finish(det *keylog.Detection) *KeylogResult { return p.finish(det) }

// finish scores a detection against the prepared run's ground truth.
func (p *PreparedKeylog) finish(det *keylog.Detection) *KeylogResult {
	groups := keylog.GroupWords(det.Keystrokes, 0)
	char := keylog.ScoreKeystrokes(p.Events, det.Keystrokes, 30*sim.Millisecond)
	keylogRuns.Inc()
	keylogTruth.Add(uint64(char.Truth))
	keylogMatched.Add(uint64(char.Matched))
	return &KeylogResult{
		Text:      p.Text,
		Events:    p.Events,
		Detection: det,
		Char:      char,
		Word:      keylog.ScoreWords(keylog.WordLengths(p.Text), keylog.PredictedWordLengths(groups)),
		Faults:    p.Faults,
	}
}

// MicrobenchSpectrogram reproduces Fig. 2: the Fig. 1 micro-benchmark
// (t1 of activity, t2 of idleness, repeated) rendered as a spectrogram
// of the received emanations.
func (tb *Testbed) MicrobenchSpectrogram(active, idle sim.Time, cycles int) *dsp.Spectrogram {
	sys := laptop.NewSystem(tb.Profile, tb.Seed)
	defer sys.Close()
	workload.Microbench(sys.Kernel(), active, idle, cycles)
	horizon := sim.Time(float64(active+idle)*float64(cycles)*1.3) + 2*sim.Millisecond
	sys.Run(horizon)
	plan := sys.DefaultPlan()
	raw := sys.Emanations(horizon, plan)
	rng := xrand.New(tb.Seed + 104729)
	field := emchannel.Apply(raw, plan.SampleRate, tb.Channel, rng)
	dsp.PutIQ(raw)
	cap := sdr.Acquire(field, plan.CenterFreqHz, tb.Radio, rng.Fork())
	dsp.PutIQ(field)
	s := dsp.STFT(cap.IQ, 1024, 512, dsp.Hann(1024), cap.SampleRate)
	cap.Recycle()
	return s
}

// KeylogSpectrogram renders the Fig. 11 view: the spectrogram of the
// emanations while text is typed, plus the ground-truth key events.
func (tb *Testbed) KeylogSpectrogram(text string) (*dsp.Spectrogram, []keylog.KeyEvent) {
	sys := laptop.NewSystem(tb.Profile, tb.Seed)
	defer sys.Close()
	rng := xrand.New(tb.Seed + 500)
	events := keylog.Type(text, 200*sim.Millisecond, keylog.DefaultTypistConfig(), rng)
	horizon := keylog.SessionHorizon(events)
	keylog.Inject(sys.Kernel(), events, horizon, keylog.DefaultHandlingConfig(), rng.Fork())
	sys.Run(horizon)
	plan := tb.keylogPlan()
	raw := sys.Emanations(horizon, plan)
	field := emchannel.Apply(raw, plan.SampleRate, tb.Channel, rng.Fork())
	dsp.PutIQ(raw)
	radio := tb.Radio
	radio.SampleRate = plan.SampleRate
	cap := sdr.Acquire(field, plan.CenterFreqHz, radio, rng.Fork())
	dsp.PutIQ(field)
	fft := 2048
	s := dsp.STFT(cap.IQ, fft, fft, dsp.Hann(fft), cap.SampleRate)
	cap.Recycle()
	return s, events
}

// AblationRow is one configuration of the §III P/C-state experiment.
type AblationRow struct {
	Name              string
	PStates, CStates  bool
	SpikeOnOffRatio   float64 // band energy, active vs idle phases
	MeanSpikeStrength float64 // absolute band energy (idle phases)
}

// StateAblation reproduces §III: the micro-benchmark runs under the
// four BIOS combinations of P-/C-state enablement, and the band energy
// at the VRM fundamental is compared between active and idle phases.
// With either mechanism enabled the ratio is large (the signal exists);
// with both disabled it collapses to ~1 while the idle-phase emission
// stays strong.
func (tb *Testbed) StateAblation(active, idle sim.Time, cycles int) []AblationRow {
	combos := []struct {
		name string
		p, c bool
	}{
		{"P+C enabled", true, true},
		{"C-states only", false, true},
		{"P-states only", true, false},
		{"both disabled", false, false},
	}
	// The four BIOS combinations are independent cells — each builds its
	// own system and random streams from tb.Seed — so they run on the
	// sweep worker pool.
	return sweep.Map(len(combos), func(i int) AblationRow {
		combo := combos[i]
		prof := tb.Profile
		prof.Power.PStatesEnabled = combo.p
		prof.Power.CStatesEnabled = combo.c

		sys := laptop.NewSystem(prof, tb.Seed)
		workload.Microbench(sys.Kernel(), active, idle, cycles)
		horizon := sim.Time(float64(active+idle) * float64(cycles) * 1.2)
		sys.Run(horizon)
		plan := sys.DefaultPlan()
		raw := sys.Emanations(horizon, plan)
		rng := xrand.New(tb.Seed + 104729)
		field := emchannel.Apply(raw, plan.SampleRate, tb.Channel, rng)
		dsp.PutIQ(raw)
		cap := sdr.Acquire(field, plan.CenterFreqHz, tb.Radio, rng.Fork())
		dsp.PutIQ(field)
		sys.Close()

		s := dsp.STFT(cap.IQ, 1024, 512, dsp.Hann(1024), cap.SampleRate)
		cap.Recycle()
		col := s.Column(s.Bin(prof.VRM.SwitchingFreqHz - plan.CenterFreqHz))
		hi := dsp.Quantile(col, 0.9)
		lo := dsp.Quantile(col, 0.1)
		if lo <= 0 {
			lo = 1e-12
		}
		return AblationRow{
			Name:              combo.name,
			PStates:           combo.p,
			CStates:           combo.c,
			SpikeOnOffRatio:   hi / lo,
			MeanSpikeStrength: lo,
		}
	})
}

// ActivityDuration measures how long the processor stayed busy for a
// single workload burst, as seen purely from the EM side channel — the
// primitive behind the attack model's application/website
// fingerprinting (§III, attack model ii-b).
func (tb *Testbed) ActivityDuration(work sim.Time) (float64, error) {
	sys := laptop.NewSystem(tb.Profile, tb.Seed)
	defer sys.Close()
	start := 20 * sim.Millisecond
	sys.Kernel().InjectBurst(start, work)
	horizon := start + work + 40*sim.Millisecond
	sys.Run(horizon)
	plan := tb.keylogPlan()
	raw := sys.Emanations(horizon, plan)
	rng := xrand.New(tb.Seed + 104729)
	field := emchannel.Apply(raw, plan.SampleRate, tb.Channel, rng)
	dsp.PutIQ(raw)
	radio := tb.Radio
	radio.SampleRate = plan.SampleRate
	cap := sdr.Acquire(field, plan.CenterFreqHz, radio, rng.Fork())
	dsp.PutIQ(field)

	detCfg := keylog.DefaultDetectorConfig()
	detCfg.ExpectedF0 = tb.Profile.VRM.SwitchingFreqHz
	detCfg.MaxKeystroke = work + 500*sim.Millisecond
	detCfg.MinKeystroke = 5 * sim.Millisecond
	det := keylog.Detect(cap, detCfg)
	cap.Recycle()
	if len(det.Keystrokes) == 0 {
		return 0, fmt.Errorf("core: no activity burst detected")
	}
	// The longest detection is the workload burst.
	best := det.Keystrokes[0]
	for _, k := range det.Keystrokes[1:] {
		if k.Duration() > best.Duration() {
			best = k
		}
	}
	return best.Duration(), nil
}
