package core

import (
	"strings"
	"testing"

	"pmuleak/internal/dsp"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sdr"
	"pmuleak/internal/sim"
)

func TestNewTestbedDefaults(t *testing.T) {
	tb := NewTestbed()
	if tb.Profile.Model != "Dell Inspiron 15-3537" {
		t.Errorf("default laptop = %v", tb.Profile.Model)
	}
	if tb.Channel.DistanceM != 0.10 {
		t.Errorf("default distance = %v", tb.Channel.DistanceM)
	}
	if tb.Radio.Antenna != sdr.CoilProbe {
		t.Errorf("default antenna = %v", tb.Radio.Antenna)
	}
}

func TestOptionsApply(t *testing.T) {
	prof, _ := laptop.ByModel("Sony Ultrabook")
	tb := NewTestbed(
		WithLaptop(prof),
		WithDistance(2.5),
		WithWall(15),
		WithAntenna(sdr.LoopLA390),
		WithNoise(0.01),
		WithSeed(99),
	)
	if tb.Profile.Model != "Sony Ultrabook" || tb.Channel.DistanceM != 2.5 ||
		tb.Channel.WallLossDB != 15 || tb.Radio.Antenna != sdr.LoopLA390 ||
		tb.Channel.NoiseSigma != 0.01 || tb.Seed != 99 {
		t.Fatalf("options not applied: %+v", tb)
	}
}

func TestNLoSOfficeSetup(t *testing.T) {
	tb := NLoSOffice(5)
	if tb.Channel.WallLossDB == 0 || tb.Channel.DistanceM != 1.5 {
		t.Fatalf("NLoS geometry wrong: %+v", tb.Channel)
	}
	if len(tb.Channel.Interferers) < 2 {
		t.Fatal("NLoS office must include interferers")
	}
}

func TestRunCovertNearField(t *testing.T) {
	tb := NewTestbed(WithSeed(11))
	res := tb.RunCovert(CovertConfig{PayloadBits: 96})
	if res.ErrorRate() > 0.03 {
		t.Fatalf("near-field error rate = %v (%v)", res.ErrorRate(), res.Measurement)
	}
	if res.TransmitRate < 2500 {
		t.Fatalf("transmit rate = %v, want kbps-class", res.TransmitRate)
	}
	if !res.PayloadOK {
		t.Fatal("payload sync failed")
	}
	if res.Demod == nil || res.Run == nil || len(res.Payload) != 96 {
		t.Fatal("result missing artifacts")
	}
}

func TestRunCovertDeterministic(t *testing.T) {
	a := NewTestbed(WithSeed(3)).RunCovert(CovertConfig{PayloadBits: 48})
	b := NewTestbed(WithSeed(3)).RunCovert(CovertConfig{PayloadBits: 48})
	if a.ErrorRate() != b.ErrorRate() || a.TransmitRate != b.TransmitRate {
		t.Fatalf("same seed differs: %v vs %v", a.Measurement, b.Measurement)
	}
}

func TestRunCovertExplicitPayload(t *testing.T) {
	payload := []byte{1, 0, 1, 1, 0, 0, 1, 0}
	tb := NewTestbed(WithSeed(4))
	res := tb.RunCovert(CovertConfig{Payload: payload})
	if len(res.Payload) != len(payload) {
		t.Fatalf("payload length = %d", len(res.Payload))
	}
}

func TestRunCovertWithBackground(t *testing.T) {
	tb := NewTestbed(WithSeed(12))
	quiet := tb.RunCovert(CovertConfig{PayloadBits: 96})
	loaded := tb.RunCovert(CovertConfig{PayloadBits: 96, Background: true})
	// Background activity must not break the channel outright, but it
	// does degrade it.
	if loaded.ErrorRate() < quiet.ErrorRate() {
		t.Logf("note: background run cleaner than quiet run (%v vs %v)",
			loaded.ErrorRate(), quiet.ErrorRate())
	}
	if len(loaded.Demod.Bits) == 0 {
		t.Fatal("background load killed the channel completely")
	}
}

func TestRateSearchMeetsTarget(t *testing.T) {
	tb := NewTestbed(WithSeed(13), WithDistance(1.0), WithAntenna(sdr.LoopLA390))
	res, ok := tb.RateSearch(0.02, CovertConfig{PayloadBits: 96})
	if !ok {
		t.Fatalf("no rate met the target; last = %v", res.Measurement)
	}
	if res.ErrorRate() > 0.02 {
		t.Fatalf("returned run has error rate %v", res.ErrorRate())
	}
}

func TestRunKeylogNearField(t *testing.T) {
	tb := NewTestbed(WithSeed(14))
	res := tb.RunKeylog(KeylogConfig{Words: 12})
	if res.Char.TPR < 0.95 {
		t.Fatalf("char TPR = %v", res.Char.TPR)
	}
	if res.Char.FPR > 0.1 {
		t.Fatalf("char FPR = %v", res.Char.FPR)
	}
	if res.Word.Recall < 0.8 {
		t.Fatalf("word recall = %v", res.Word.Recall)
	}
	if res.Text == "" || len(res.Events) == 0 || res.Detection == nil {
		t.Fatal("result missing artifacts")
	}
}

func TestRunKeylogExplicitText(t *testing.T) {
	tb := NewTestbed(WithSeed(15))
	res := tb.RunKeylog(KeylogConfig{Text: "can you hear me"})
	if res.Text != "can you hear me" {
		t.Fatalf("text = %q", res.Text)
	}
	if res.Char.Truth != len("can you hear me") {
		t.Fatalf("truth count = %d", res.Char.Truth)
	}
}

func TestMicrobenchSpectrogramShowsAlternation(t *testing.T) {
	tb := NewTestbed(WithSeed(16))
	s := tb.MicrobenchSpectrogram(2*sim.Millisecond, 2*sim.Millisecond, 10)
	if s.Frames() < 10 {
		t.Fatalf("only %d frames", s.Frames())
	}
	f0 := tb.Profile.VRM.SwitchingFreqHz
	col := s.Column(s.Bin(f0 - 1.5*f0))
	hi := dsp.Quantile(col, 0.9)
	lo := dsp.Quantile(col, 0.1)
	if hi < 5*lo {
		t.Fatalf("no strong/weak spike alternation: hi %v lo %v", hi, lo)
	}
}

func TestStateAblationMatchesSection3(t *testing.T) {
	tb := NewTestbed(WithSeed(17))
	rows := tb.StateAblation(2*sim.Millisecond, 2*sim.Millisecond, 12)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Either mechanism alone keeps the modulation alive.
	for _, name := range []string{"P+C enabled", "C-states only", "P-states only"} {
		if byName[name].SpikeOnOffRatio < 3 {
			t.Errorf("%s: on/off ratio %v, want modulation present",
				name, byName[name].SpikeOnOffRatio)
		}
	}
	// Both disabled: modulation collapses...
	off := byName["both disabled"]
	if off.SpikeOnOffRatio > 2 {
		t.Errorf("both disabled: on/off ratio %v, want ~1", off.SpikeOnOffRatio)
	}
	// ...while the idle-phase spike is much STRONGER than with power
	// management on ("much stronger magnitude but continuously present").
	on := byName["P+C enabled"]
	if off.MeanSpikeStrength < 5*on.MeanSpikeStrength {
		t.Errorf("disabled idle spike %v not much stronger than managed %v",
			off.MeanSpikeStrength, on.MeanSpikeStrength)
	}
}

func TestActivityDurationTracksWorkload(t *testing.T) {
	tb := NewTestbed(WithSeed(18))
	short, err := tb.ActivityDuration(50 * sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	long, err := tb.ActivityDuration(200 * sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if long <= short {
		t.Fatalf("durations not ordered: %v vs %v", short, long)
	}
	if short < 0.03 || short > 0.09 {
		t.Fatalf("short duration = %v, want ~0.05", short)
	}
	if long < 0.15 || long > 0.3 {
		t.Fatalf("long duration = %v, want ~0.2", long)
	}
}

func TestRenderSpectrogram(t *testing.T) {
	tb := NewTestbed(WithSeed(19))
	s := tb.MicrobenchSpectrogram(sim.Millisecond, sim.Millisecond, 5)
	var sb strings.Builder
	RenderSpectrogram(&sb, s, 12, 60)
	out := sb.String()
	if strings.Count(out, "\n") < 12 {
		t.Fatalf("render too short:\n%s", out)
	}
	if !strings.Contains(out, "kHz") {
		t.Fatal("missing frequency labels")
	}
	// Empty case.
	sb.Reset()
	RenderSpectrogram(&sb, &dsp.Spectrogram{FFTSize: 16, Hop: 8, SampleRate: 1}, 4, 10)
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty spectrogram not flagged")
	}
}

func TestRenderTrace(t *testing.T) {
	var sb strings.Builder
	RenderTrace(&sb, []float64{0, 1, 2, 3, 2, 1, 0}, 4, 20)
	if strings.Count(sb.String(), "\n") != 4 {
		t.Fatalf("trace render:\n%s", sb.String())
	}
	sb.Reset()
	RenderTrace(&sb, nil, 4, 20)
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty trace not flagged")
	}
}
