package core_test

import (
	"fmt"

	"pmuleak/internal/core"
	"pmuleak/internal/ecc"
	"pmuleak/internal/sdr"
)

// ExampleTestbed_RunCovert transmits a string through the near-field
// covert channel and recovers it.
func ExampleTestbed_RunCovert() {
	tb := core.NewTestbed(core.WithSeed(42))
	secret := "hi hpca"
	res := tb.RunCovert(core.CovertConfig{Payload: ecc.BytesToBits([]byte(secret))})

	bits, _, _ := res.Demod.RecoverPayloadN(res.TXCfg, len(secret)*8)
	fmt.Println(string(ecc.BitsToBytes(bits[:len(secret)*8])))
	fmt.Println(res.PayloadOK && res.PayloadBER == 0)
	// Output:
	// hi hpca
	// true
}

// ExampleTestbed_RunKeylog detects every keystroke of a short sentence
// from two meters away.
func ExampleTestbed_RunKeylog() {
	tb := core.NewTestbed(
		core.WithSeed(7),
		core.WithDistance(2.0),
		core.WithAntenna(sdr.LoopLA390),
	)
	res := tb.RunKeylog(core.KeylogConfig{Text: "can you hear me"})
	fmt.Printf("%d keystrokes typed, %d detected\n", res.Char.Truth, res.Char.Detected)
	// Output:
	// 15 keystrokes typed, 14 detected
}

// ExampleNLoSOffice shows the through-wall setup of Fig. 10.
func ExampleNLoSOffice() {
	tb := core.NLoSOffice(1)
	fmt.Printf("%.1f m, wall %.0f dB, %d interferers, antenna %s\n",
		tb.Channel.DistanceM, tb.Channel.WallLossDB,
		len(tb.Channel.Interferers), tb.Radio.Antenna.Name)
	// Output:
	// 1.5 m, wall 15 dB, 3 interferers, antenna AOR-LA390
}
