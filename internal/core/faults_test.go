package core

import (
	"testing"

	"pmuleak/internal/faults"
)

// covertBits extracts the decoded on-air bits for exact comparison.
func covertBits(res *CovertResult) []byte { return res.Demod.Bits }

// TestFaultsZeroConfigIdentical: a zero Faults config must leave the
// entire covert result bit-identical to a run without the field set,
// and enabling RXResync on a clean capture must not change the decoded
// bits either (the divergence gate keeps healthy batches on the global
// period).
func TestFaultsZeroConfigIdentical(t *testing.T) {
	tb := NewTestbed(WithSeed(11))
	base := tb.RunCovert(CovertConfig{PayloadBits: 96})
	faulted := tb.RunCovert(CovertConfig{PayloadBits: 96, Faults: faults.Config{}})
	resync := tb.RunCovert(CovertConfig{PayloadBits: 96, RXResync: true, RXCarrierRetries: 2})

	if string(covertBits(base)) != string(covertBits(faulted)) {
		t.Error("zero Faults config changed decoded bits")
	}
	if string(covertBits(base)) != string(covertBits(resync)) {
		t.Error("RXResync changed decoded bits on a clean capture")
	}
	if resync.Demod.Quality.Resyncs != 0 {
		t.Errorf("clean capture performed %d resyncs", resync.Demod.Quality.Resyncs)
	}
	if resync.Demod.Quality.Retries != 0 {
		t.Errorf("clean capture consumed %d carrier retries", resync.Demod.Quality.Retries)
	}
	if base.Faults != (faults.Report{InSamples: base.Faults.InSamples, OutSamples: base.Faults.OutSamples}) {
		t.Errorf("unexpected fault report on clean run: %+v", base.Faults)
	}
}

// TestResyncDominatesUnderFaults is the differential acceptance test:
// at a pinned seed, across a drop-rate sweep (with the clock-drift
// faults that make per-batch re-estimation matter), the resyncing
// receiver's BER is never worse than the plain receiver's, and at zero
// faults the two are exactly equal.
func TestResyncDominatesUnderFaults(t *testing.T) {
	tb := NewTestbed(WithSeed(5))
	// The capture is only tens of ms long, so the rates are high
	// enough that each nonzero cell realizes at least one drop.
	dropRates := []float64{0, 100, 300, 800}
	for _, rate := range dropRates {
		fcfg := faults.Config{}
		if rate > 0 {
			fcfg = faults.Config{
				DropRatePerS: rate,
				ClockPPM:     120,
				DriftPPMPerS: 60,
			}
		}
		plain := tb.RunCovert(CovertConfig{PayloadBits: 96, Faults: fcfg})
		resync := tb.RunCovert(CovertConfig{PayloadBits: 96, Faults: fcfg, RXResync: true, RXCarrierRetries: 2})

		if rate == 0 {
			if plain.ErrorRate() != resync.ErrorRate() {
				t.Errorf("zero faults: BER(resync)=%v != BER(plain)=%v",
					resync.ErrorRate(), plain.ErrorRate())
			}
			continue
		}
		if resync.ErrorRate() > plain.ErrorRate() {
			t.Errorf("drop rate %v: BER(resync)=%v > BER(plain)=%v",
				rate, resync.ErrorRate(), plain.ErrorRate())
		}
		if plain.Faults != resync.Faults {
			t.Errorf("drop rate %v: fault schedules differ between receiver modes:\n%+v\n%+v",
				rate, plain.Faults, resync.Faults)
		}
		if plain.Faults.Drops == 0 {
			t.Errorf("drop rate %v realized no drops", rate)
		}
	}
}

// TestFaultReportSurfaced: the realized schedule lands in the result
// and the capture got shorter accordingly.
func TestFaultReportSurfaced(t *testing.T) {
	tb := NewTestbed(WithSeed(3))
	res := tb.RunCovert(CovertConfig{
		PayloadBits: 96,
		Faults:      faults.Config{DropRatePerS: 100, TruncateProb: 0},
	})
	if res.Faults.Drops == 0 {
		t.Fatal("no drops realized at 100/s")
	}
	if res.Faults.OutSamples != res.Faults.InSamples-res.Faults.DroppedSamples {
		t.Fatalf("inconsistent report: %+v", res.Faults)
	}
}

// TestKeylogFaultsWired: the keylog path injects too, and GapAware
// survives a gain-stepped capture with a usable F1.
func TestKeylogFaultsWired(t *testing.T) {
	tb := NewTestbed(WithSeed(9))
	fcfg := faults.Config{GainStepRatePerS: 2, GainStepMaxDB: 6}
	res := tb.RunKeylog(KeylogConfig{Words: 6, Faults: fcfg, GapAware: true})
	if res.Faults.GainSteps == 0 {
		t.Fatal("no gain steps realized on a multi-second keylog capture")
	}
	if res.Char.TPR == 0 && res.Char.FPR == 0 && len(res.Detection.Keystrokes) == 0 {
		t.Error("gap-aware detector found nothing at mild gain-step intensity")
	}
}
