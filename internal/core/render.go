package core

import (
	"fmt"
	"io"
	"strings"

	"pmuleak/internal/dsp"
)

// RenderSpectrogram writes an ASCII-art spectrogram (time on the x-axis,
// frequency on the y-axis, darkness = magnitude) to w. It is the
// terminal stand-in for the paper's Fig. 2 / Fig. 11 plots.
func RenderSpectrogram(w io.Writer, s *dsp.Spectrogram, rows, cols int) {
	if s.Frames() == 0 || rows < 1 || cols < 1 {
		fmt.Fprintln(w, "(empty spectrogram)")
		return
	}
	shades := []byte(" .:-=+*#%@")

	// Reduce to rows x cols by max-pooling; display positive
	// frequencies on top, negative below, like a centered FFT plot.
	n := s.FFTSize
	grid := make([][]float64, rows)
	for r := range grid {
		grid[r] = make([]float64, cols)
	}
	var peak float64
	for f := 0; f < s.Frames(); f++ {
		c := f * cols / s.Frames()
		for bin := 0; bin < n; bin++ {
			// Shifted bin: map frequency range [-sr/2, sr/2) onto rows
			// with high frequencies at row 0.
			shifted := (bin + n/2) % n
			r := (n - 1 - shifted) * rows / n
			v := s.Mag[f][bin]
			if v > grid[r][c] {
				grid[r][c] = v
			}
			if v > peak {
				peak = v
			}
		}
	}
	if peak == 0 {
		peak = 1
	}
	for r := 0; r < rows; r++ {
		var sb strings.Builder
		// Frequency label: center frequency offset of this row's top.
		frac := 0.5 - float64(r)/float64(rows)
		fmt.Fprintf(&sb, "%+8.0fkHz |", frac*s.SampleRate/1e3)
		for c := 0; c < cols; c++ {
			idx := int(float64(len(shades)-1) * grid[r][c] / peak)
			sb.WriteByte(shades[idx])
		}
		sb.WriteByte('|')
		fmt.Fprintln(w, sb.String())
	}
	dur := float64(s.Frames()) * float64(s.Hop) / s.SampleRate
	fmt.Fprintf(w, "%12s 0%s%.3fs\n", "", strings.Repeat(" ", max(0, cols-6)), dur)
}

// RenderTrace writes a compact ASCII plot of a scalar trace (e.g. the
// Eq. 1 acquisition signal Y[n]) to w.
func RenderTrace(w io.Writer, y []float64, rows, cols int) {
	if len(y) == 0 || rows < 1 || cols < 1 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	// Max-pool columns.
	pooled := make([]float64, cols)
	for i, v := range y {
		c := i * cols / len(y)
		if v > pooled[c] {
			pooled[c] = v
		}
	}
	peak, _ := dsp.Max(pooled)
	if peak == 0 {
		peak = 1
	}
	for r := rows - 1; r >= 0; r-- {
		lo := peak * float64(r) / float64(rows)
		var sb strings.Builder
		fmt.Fprintf(&sb, "%8.3g |", peak*float64(r+1)/float64(rows))
		for _, v := range pooled {
			if v > lo {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		fmt.Fprintln(w, sb.String())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
