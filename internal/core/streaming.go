package core

import (
	"pmuleak/internal/covert"
	"pmuleak/internal/keylog"
	"pmuleak/internal/stream"
)

// RunCovertStream is RunCovert with the demodulator replaced by the
// incremental stream receiver: the capture is fed to a
// stream.CovertReceiver in chunkSize-sample chunks and finalized. The
// result is byte-identical to RunCovert for every chunk size — the
// differential tests in internal/stream pin this — while the receiver
// itself never holds the raw capture (the daemon's reason to exist; here
// the capture is materialized anyway because the simulation produces it
// whole).
func (tb *Testbed) RunCovertStream(cfg CovertConfig, chunkSize int) (*CovertResult, error) {
	p := tb.PrepareCovert(cfg)
	defer p.Cap.Recycle()
	rx, err := stream.NewCovertReceiver(p.RXCfg, p.Cap.SampleRate, p.Cap.CenterFreqHz)
	if err != nil {
		return nil, err
	}
	demodSpan := stageDemod.Start()
	for _, chunk := range stream.Chunks(p.Cap.IQ, chunkSize) {
		rx.Push(chunk)
	}
	demod := rx.Finalize()
	demodSpan.End()
	return p.finish(demod), nil
}

// RunKeylogStream is RunKeylog with the detector replaced by the
// incremental stream detector, chunked the same way. Byte-identical to
// RunKeylog for every chunk size.
func (tb *Testbed) RunKeylogStream(cfg KeylogConfig, chunkSize int) (*KeylogResult, error) {
	p := tb.PrepareKeylog(cfg)
	defer p.Cap.Recycle()
	det, err := stream.NewKeylogDetector(p.DetCfg, p.Cap.SampleRate, p.Cap.CenterFreqHz)
	if err != nil {
		return nil, err
	}
	detSpan := stageDetect.Start()
	for _, chunk := range stream.Chunks(p.Cap.IQ, chunkSize) {
		det.Push(chunk)
	}
	detection := det.Finalize()
	detSpan.End()
	return p.finish(detection), nil
}

// CovertRXConfig returns the receiver config RunCovert would hand the
// demodulator for this covert config — pure arithmetic over the profile
// and the transmitter settings, no simulation.
func (tb *Testbed) CovertRXConfig(cfg CovertConfig) covert.RXConfig {
	cfg.fill(tb)
	txCfg := covert.DefaultTXConfig(cfg.SleepPeriod)
	rxCfg := covert.DefaultRXConfig()
	rxCfg.ExpectedF0 = tb.Profile.VRM.SwitchingFreqHz
	rxCfg.MinBitPeriod = txCfg.BitPeriod() / 2
	rxCfg.Parallelism = cfg.Parallelism
	rxCfg.Resync = cfg.RXResync
	rxCfg.CarrierRetries = cfg.RXCarrierRetries
	if cfg.RXHarmonics > 0 {
		rxCfg.NumHarmonics = cfg.RXHarmonics
	}
	return rxCfg
}

// NewCovertStreamReceiver returns a stream.CovertReceiver configured
// exactly as this testbed's RunCovert would configure its batch
// demodulator — the receiver the daemon attaches to a live covert
// stream. Tuning matches the covert capture plan: the radio's sample
// rate at the profile's default center frequency.
func (tb *Testbed) NewCovertStreamReceiver(cfg CovertConfig) (*stream.CovertReceiver, covert.RXConfig, error) {
	rxCfg := tb.CovertRXConfig(cfg)
	centerFreqHz := 1.5 * tb.Profile.VRM.SwitchingFreqHz
	rx, err := stream.NewCovertReceiver(rxCfg, tb.Radio.SampleRate, centerFreqHz)
	return rx, rxCfg, err
}

// NewKeylogStreamDetector returns a stream.KeylogDetector configured
// exactly as RunKeylog would configure its batch detector.
func (tb *Testbed) NewKeylogStreamDetector(cfg KeylogConfig) (*stream.KeylogDetector, keylog.DetectorConfig, error) {
	detCfg := keylog.DefaultDetectorConfig()
	if cfg.Detector != nil {
		detCfg = *cfg.Detector
	}
	detCfg.ExpectedF0 = tb.Profile.VRM.SwitchingFreqHz
	if cfg.Parallelism != 0 {
		detCfg.Parallelism = cfg.Parallelism
	}
	if cfg.GapAware {
		detCfg.GapAware = true
	}
	plan := tb.keylogPlan()
	det, err := stream.NewKeylogDetector(detCfg, plan.SampleRate, plan.CenterFreqHz)
	return det, detCfg, err
}
