package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pmuleak/internal/covert"
	"pmuleak/internal/laptop"
	"pmuleak/internal/telemetry"
	"pmuleak/internal/xrand"
)

// txTrace is the transmitter half of a covert run: everything computed
// before the EM field enters the propagation channel. It depends only on
// (laptop profile, seed, radio sample rate, transmitter-side covert
// config) — the channel config and the receiver config are never read —
// which is what makes it safe to memoize and replay through different
// channels and receivers. The receiver's randomness is independently
// seeded (tb.Seed + 104729), so a replayed trace consumes exactly the
// random stream the serial path would have.
type txTrace struct {
	field   []complex128 // sys.Emanations output, pre-channel
	plan    laptop.EmanationPlan
	run     *covert.TxRun
	payload []byte
	txCfg   covert.TXConfig
}

// simulateTxTrace runs the transmitter side from scratch: kernel
// simulation, EM synthesis, nothing channel- or receiver-dependent.
// cfg must already be filled (cfg.fill). The two transmitter-side
// pipeline stages are spanned separately: stage.simulate is the kernel
// and PMU simulation, stage.emit the VRM/EM field synthesis.
func (tb *Testbed) simulateTxTrace(cfg CovertConfig) *txTrace {
	simSpan := stageSimulate.Start()
	sys := laptop.NewSystem(tb.Profile, tb.Seed)
	defer sys.Close()

	txCfg := covert.DefaultTXConfig(cfg.SleepPeriod)
	if cfg.Code != covert.CodeHamming74 {
		txCfg.Code = cfg.Code
	}
	txCfg.InterleaveDepth = cfg.Interleave
	payload := cfg.Payload
	if payload == nil {
		payload = xrand.New(tb.Seed + 7919).Bits(cfg.PayloadBits)
	}
	frame := covert.EncodeFrame(payload, txCfg)
	run := covert.SpawnTransmitter(sys.Kernel(), frame, txCfg)

	if cfg.Background {
		spawnBackgroundHog(sys.Kernel(), tb.Seed+31)
	}

	horizon := covert.AirtimeEstimate(frame, txCfg, tb.Profile.Kernel)
	sys.Run(horizon)
	simSpan.End()

	emitSpan := stageEmit.Start()
	plan := sys.DefaultPlan()
	plan.SampleRate = tb.Radio.SampleRate
	field := sys.Emanations(horizon, plan)
	emitSpan.End()
	return &txTrace{field: field, plan: plan, run: run, payload: payload, txCfg: txCfg}
}

// traceKey encodes every input the transmitter path reads. Profile is
// not map-comparable (it embeds P-/C-state tables as slices) and has a
// Stringer that prints only the model name, so its fields are formatted
// individually — the nested configs have no Stringers of their own and
// render in full under %+v. The rest of the key is the seed, the radio
// sample rate (the one radio field the tx path reads, via the emanation
// plan), and the tx-side covert config fields. Receiver-side fields
// (RXHarmonics, Parallelism) and the channel config are deliberately
// absent — varying them must hit the cache.
func traceKey(tb *Testbed, cfg CovertConfig) string {
	p := tb.Profile
	return fmt.Sprintf("%s|%s|%+v|%+v|%+v|%v|%v|%v|%v|%d|%d|%d|%g|%d|%d|%x|%d|%t|%d",
		p.Model, p.Arch, p.Kernel, p.Power, p.VRM,
		p.EmitterGain, p.PhaseNoiseSigma, p.CarrierDriftHzPerS, p.VRMDitherHz,
		p.DVFSWindow, p.DefaultSleepPeriod,
		tb.Seed, tb.Radio.SampleRate,
		cfg.SleepPeriod, cfg.PayloadBits, cfg.Payload,
		cfg.Code, cfg.Background, cfg.Interleave)
}

// The process-wide transmitter-trace cache: a small LRU of memoized
// traces with per-entry singleflight, so concurrent sweep cells that
// share a transmitter configuration simulate it once and replay it.
// Fields are a few MB each at quick scale (tens at paper scale), so the
// cache is deliberately tiny — sweeps that vary only receiver-side
// parameters need exactly one entry live at a time.
type traceEntry struct {
	once sync.Once
	tr   *txTrace
	used int64 // LRU tick, guarded by traceMu
}

var (
	traceMu      sync.Mutex
	traceEntries = make(map[string]*traceEntry)
	traceTick    int64
	traceCap     = DefaultTraceCacheCapacity
	// The hit/miss counters live on the telemetry registry (the -metrics
	// snapshot's core.tracecache.* series); TraceCacheStats remains as a
	// thin shim over them. Both are bumped under traceMu. hits+misses
	// (total lookups) is deterministic for a given workload at every
	// -jobs setting; the split between them is only deterministic while
	// the working set fits in traceCap — once eviction starts, the LRU
	// victim depends on concurrent access order, and an evicted key's
	// next lookup is a re-miss.
	traceHits      = telemetry.NewCounter("core.tracecache.hits")
	traceMisses    = telemetry.NewCounter("core.tracecache.misses")
	traceEvictions = telemetry.NewCounter("core.tracecache.evictions")
	traceLive      = telemetry.NewGauge("core.tracecache.entries")
	// traceDisabled's zero value leaves the cache ON by default.
	traceDisabled atomic.Bool
)

// SetTraceCacheEnabled turns the transmitter-trace cache on or off
// process-wide. Off forces every RunCovert to simulate its transmitter
// from scratch (the pre-memoization behavior); results are bit-identical
// either way.
func SetTraceCacheEnabled(on bool) { traceDisabled.Store(!on) }

// DefaultTraceCacheCapacity is the capacity the cache starts with: large
// enough for receiver-side sweeps over the Table I laptops, small enough
// that paper-scale fields (tens of MB each) do not pin gigabytes.
const DefaultTraceCacheCapacity = 8

// SetTraceCacheCapacity resizes the transmitter-trace LRU. Fleet-scale
// campaigns anchor against many distinct profiles in one process; the
// default capacity of 8 would thrash them (every lookup an eviction plus
// a re-miss), so such runs size the cache to their anchor working set
// (paperbench -tracecache-cap). Shrinking evicts least-recently-used
// entries immediately. n < 1 restores the default. Counter semantics are
// unchanged: lookups still split into hits and misses exactly as before,
// and evictions still count per entry dropped — only the point where
// eviction starts moves. Results are bit-identical at every capacity.
func SetTraceCacheCapacity(n int) {
	if n < 1 {
		n = DefaultTraceCacheCapacity
	}
	traceMu.Lock()
	traceCap = n
	for len(traceEntries) > traceCap {
		evictOldestLocked()
	}
	traceLive.Set(int64(len(traceEntries)))
	traceMu.Unlock()
}

// TraceCacheCapacity reports the cache's current entry capacity.
func TraceCacheCapacity() int {
	traceMu.Lock()
	defer traceMu.Unlock()
	return traceCap
}

// TraceCacheEnabled reports whether the transmitter-trace cache is on.
func TraceCacheEnabled() bool { return !traceDisabled.Load() }

// TraceCacheStats returns the cumulative hit and miss counts since the
// last ResetTraceCache. A miss is a simulation; a hit is a replay. It
// is a thin shim over the telemetry registry's core.tracecache.hits and
// core.tracecache.misses counters, kept for callers that predate the
// telemetry layer.
func TraceCacheStats() (hits, misses uint64) {
	return traceHits.Load(), traceMisses.Load()
}

// ResetTraceCache drops every cached trace and zeroes the cache's
// telemetry counters.
func ResetTraceCache() {
	traceMu.Lock()
	traceEntries = make(map[string]*traceEntry)
	traceTick = 0
	traceLive.Set(0)
	traceMu.Unlock()
	traceHits.Reset()
	traceMisses.Reset()
	traceEvictions.Reset()
}

// transmitterTrace returns the transmitter trace for (tb, cfg), from
// the cache when enabled. cached reports whether the returned trace is
// cache-owned: cache-owned traces are shared across runs and their
// field buffer must never be mutated or recycled; a non-cached trace is
// exclusively the caller's.
func (tb *Testbed) transmitterTrace(cfg CovertConfig) (tr *txTrace, cached bool) {
	if traceDisabled.Load() {
		return tb.simulateTxTrace(cfg), false
	}
	key := traceKey(tb, cfg)
	traceMu.Lock()
	e, ok := traceEntries[key]
	if !ok {
		if len(traceEntries) >= traceCap {
			evictOldestLocked()
		}
		e = &traceEntry{}
		traceEntries[key] = e
		traceLive.Set(int64(len(traceEntries)))
		traceMisses.Inc()
	} else {
		traceHits.Inc()
	}
	traceTick++
	e.used = traceTick
	traceMu.Unlock()
	// Singleflight: concurrent cells wanting the same trace block here
	// while exactly one simulates it.
	e.once.Do(func() { e.tr = tb.simulateTxTrace(cfg) })
	return e.tr, true
}

// evictOldestLocked drops the least-recently-used entry. The evicted
// trace's field buffer goes to the garbage collector, never to the
// sample-buffer pool: a concurrent replay may still hold it.
func evictOldestLocked() {
	var (
		oldKey string
		oldUse int64 = 1<<63 - 1
	)
	for k, e := range traceEntries {
		if e.used < oldUse {
			oldUse = e.used
			oldKey = k
		}
	}
	delete(traceEntries, oldKey)
	traceEvictions.Inc()
}
