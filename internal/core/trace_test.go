package core

import (
	"reflect"
	"testing"

	"pmuleak/internal/emchannel"
	"pmuleak/internal/sdr"
)

// withTraceCache runs f with the trace cache forced to the given state
// and restores the default (enabled, empty) afterwards.
func withTraceCache(t *testing.T, on bool, f func()) {
	t.Helper()
	ResetTraceCache()
	SetTraceCacheEnabled(on)
	defer func() {
		SetTraceCacheEnabled(true)
		ResetTraceCache()
	}()
	f()
}

// receiverVariants returns testbeds that share a transmitter
// configuration (same profile, seed, sample rate) but differ in every
// receiver-side knob the cache claims not to care about: distance,
// antenna, wall, noise floor, interferers.
func receiverVariants(seed int64) []*Testbed {
	return []*Testbed{
		NewTestbed(WithSeed(seed)),
		NewTestbed(WithSeed(seed), WithDistance(1.5), WithAntenna(sdr.LoopLA390)),
		NewTestbed(WithSeed(seed), WithDistance(1.0), WithWall(15), WithAntenna(sdr.LoopLA390)),
		NewTestbed(WithSeed(seed), WithNoise(0.02)),
		NewTestbed(WithSeed(seed),
			WithInterference(emchannel.OfficePrinter(0.002), emchannel.Refrigerator(0.0015))),
	}
}

// TestTraceCacheEquivalence is the load-bearing soundness check for the
// transmitter-trace memoization: for testbeds that differ only in
// channel/receiver configuration, a cached (replayed) transmitter trace
// must produce byte-for-byte the measurements and demod decisions the
// uncached path produces. RXHarmonics is varied too — it is
// receiver-side and must also replay.
func TestTraceCacheEquivalence(t *testing.T) {
	const seed = 71
	cfgs := []CovertConfig{
		{PayloadBits: 64},
		{PayloadBits: 64, RXHarmonics: 1},
	}
	type outcome struct {
		meas interface{}
		bits []byte
		rate float64
	}
	capture := func() []outcome {
		var out []outcome
		for _, tb := range receiverVariants(seed) {
			for _, cfg := range cfgs {
				res := tb.RunCovert(cfg)
				out = append(out, outcome{
					meas: res.Measurement,
					bits: append([]byte(nil), res.Demod.Bits...),
					rate: res.TransmitRate,
				})
			}
		}
		return out
	}

	var cold, warm, uncached []outcome
	withTraceCache(t, true, func() {
		cold = capture() // populates the cache
		warm = capture() // replays every transmitter trace
		hits, misses := TraceCacheStats()
		if misses == 0 || hits == 0 {
			t.Fatalf("cache did not engage: hits=%d misses=%d", hits, misses)
		}
		// Both cfgs differ only in RXHarmonics (receiver-side), and all
		// testbeds differ only in channel config, so every run shares a
		// single transmitter key: exactly one simulation total.
		if misses != 1 {
			t.Errorf("misses = %d, want 1 (all runs share one tx config)", misses)
		}
	})
	withTraceCache(t, false, func() {
		uncached = capture()
	})

	if !reflect.DeepEqual(cold, uncached) {
		t.Fatalf("cache-populating pass differs from uncached pass")
	}
	if !reflect.DeepEqual(warm, uncached) {
		t.Fatalf("cache-replay pass differs from uncached pass")
	}
}

// TestTraceCacheKeysTxSide: transmitter-side config changes must MISS —
// a hit here would replay the wrong pulse train.
func TestTraceCacheKeysTxSide(t *testing.T) {
	tb := NewTestbed(WithSeed(9))
	withTraceCache(t, true, func() {
		tb.RunCovert(CovertConfig{PayloadBits: 48})
		tb.RunCovert(CovertConfig{PayloadBits: 48, Background: true})
		tb.RunCovert(CovertConfig{PayloadBits: 48, Interleave: 4})
		tb.RunCovert(CovertConfig{PayloadBits: 96})
		// Profile mutations must miss too. laptop.Profile's Stringer
		// prints only the model name, so a naive %+v key would collide
		// here and replay an undefended pulse train against the §VI
		// defenses.
		pcOff := NewTestbed(WithSeed(9))
		pcOff.Profile.Power.PStatesEnabled = false
		pcOff.Profile.Power.CStatesEnabled = false
		pcOff.RunCovert(CovertConfig{PayloadBits: 48})
		dither := NewTestbed(WithSeed(9))
		dither.Profile.VRMDitherHz = 60e3
		dither.RunCovert(CovertConfig{PayloadBits: 48})
		hits, misses := TraceCacheStats()
		if hits != 0 {
			t.Errorf("tx-side variations hit the cache: hits=%d", hits)
		}
		if misses != 6 {
			t.Errorf("misses = %d, want 6", misses)
		}
	})
}

// TestTraceCacheEviction: the LRU stays bounded and keeps working past
// capacity.
func TestTraceCacheEviction(t *testing.T) {
	tb := NewTestbed(WithSeed(3))
	withTraceCache(t, true, func() {
		for bits := 8; bits <= 8*(traceCap+3); bits += 8 {
			tb.RunCovert(CovertConfig{PayloadBits: bits})
		}
		traceMu.Lock()
		n := len(traceEntries)
		traceMu.Unlock()
		if n > traceCap {
			t.Fatalf("cache grew to %d entries, cap %d", n, traceCap)
		}
		// An evicted key re-simulates and still yields a usable result.
		res := tb.RunCovert(CovertConfig{PayloadBits: 8})
		if res == nil || len(res.Payload) == 0 {
			t.Fatalf("post-eviction run broken")
		}
	})
}

// TestTraceCacheCapacity: the capacity knob round-trips, shrinking
// evicts immediately, growing stops eviction for the larger working
// set, and n < 1 restores the default.
func TestTraceCacheCapacity(t *testing.T) {
	tb := NewTestbed(WithSeed(5))
	withTraceCache(t, true, func() {
		defer SetTraceCacheCapacity(0)
		if got := TraceCacheCapacity(); got != DefaultTraceCacheCapacity {
			t.Fatalf("default capacity = %d, want %d", got, DefaultTraceCacheCapacity)
		}

		// Grow past the default: a working set of default+2 distinct
		// traces stays fully resident with zero evictions.
		SetTraceCacheCapacity(DefaultTraceCacheCapacity + 2)
		if got := TraceCacheCapacity(); got != DefaultTraceCacheCapacity+2 {
			t.Fatalf("capacity = %d after grow, want %d", got, DefaultTraceCacheCapacity+2)
		}
		for bits := 8; bits <= 8*(DefaultTraceCacheCapacity+2); bits += 8 {
			tb.RunCovert(CovertConfig{PayloadBits: bits})
		}
		if ev := traceEvictions.Load(); ev != 0 {
			t.Fatalf("grown cache evicted %d entries for an in-capacity working set", ev)
		}
		traceMu.Lock()
		n := len(traceEntries)
		traceMu.Unlock()
		if n != DefaultTraceCacheCapacity+2 {
			t.Fatalf("cache holds %d entries, want %d", n, DefaultTraceCacheCapacity+2)
		}

		// Shrink: over-capacity entries are evicted immediately, not on
		// the next lookup.
		SetTraceCacheCapacity(2)
		traceMu.Lock()
		n = len(traceEntries)
		traceMu.Unlock()
		if n > 2 {
			t.Fatalf("cache holds %d entries after shrinking to 2", n)
		}
		if ev := traceEvictions.Load(); ev != uint64(DefaultTraceCacheCapacity) {
			t.Fatalf("shrink evicted %d entries, want %d", ev, DefaultTraceCacheCapacity)
		}

		// The shrunken cache still serves usable results.
		res := tb.RunCovert(CovertConfig{PayloadBits: 8})
		if res == nil || len(res.Payload) == 0 {
			t.Fatalf("post-shrink run broken")
		}

		// n < 1 restores the default.
		SetTraceCacheCapacity(-3)
		if got := TraceCacheCapacity(); got != DefaultTraceCacheCapacity {
			t.Fatalf("capacity = %d after reset, want %d", got, DefaultTraceCacheCapacity)
		}
	})
}
