package covert

import (
	"testing"

	"pmuleak/internal/dsp"
	"pmuleak/internal/emchannel"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sdr"
	"pmuleak/internal/sim"
	"pmuleak/internal/xrand"
)

func TestCodingString(t *testing.T) {
	if CodeNone.String() != "none" || CodeHamming74.String() != "hamming74" ||
		CodeParity.String() != "parity" {
		t.Fatal("coding names wrong")
	}
	if Coding(9).String() != "Coding(9)" {
		t.Fatal("unknown coding string")
	}
}

func TestTXConfigValidate(t *testing.T) {
	if err := DefaultTXConfig(100 * sim.Microsecond).Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultTXConfig(100 * sim.Microsecond)
	bad.LoopPeriod = 0
	if bad.Validate() == nil {
		t.Error("zero LoopPeriod accepted")
	}
	bad = DefaultTXConfig(100 * sim.Microsecond)
	bad.SleepPeriod = -1
	if bad.Validate() == nil {
		t.Error("negative SleepPeriod accepted")
	}
	bad = DefaultTXConfig(100 * sim.Microsecond)
	bad.Code = CodeParity
	bad.ParityBlock = 0
	if bad.Validate() == nil {
		t.Error("zero ParityBlock accepted")
	}
	bad = DefaultTXConfig(100 * sim.Microsecond)
	bad.Preamble = []byte{1, 2}
	if bad.Validate() == nil {
		t.Error("non-bit preamble accepted")
	}
}

func TestBitPeriod(t *testing.T) {
	cfg := DefaultTXConfig(100 * sim.Microsecond)
	if got := cfg.BitPeriod(); got != 200*sim.Microsecond {
		t.Fatalf("BitPeriod = %v", got)
	}
}

func TestEncodeFrameStructure(t *testing.T) {
	cfg := DefaultTXConfig(100 * sim.Microsecond)
	cfg.Code = CodeNone
	payload := []byte{1, 0, 1, 1}
	frame := EncodeFrame(payload, cfg)
	if len(frame) != len(cfg.Preamble)+4+len(cfg.Postamble) {
		t.Fatalf("frame length = %d", len(frame))
	}
	for i, b := range cfg.Postamble {
		if frame[len(cfg.Preamble)+4+i] != b {
			t.Fatal("postamble not appended verbatim")
		}
	}
	for i, b := range cfg.Preamble {
		if frame[i] != b {
			t.Fatal("preamble not prepended verbatim")
		}
	}
}

func TestEncodeDecodeRoundTripAllCodes(t *testing.T) {
	rng := xrand.New(1)
	payload := rng.Bits(64)
	for _, code := range []Coding{CodeNone, CodeParity, CodeHamming74} {
		cfg := DefaultTXConfig(100 * sim.Microsecond)
		cfg.Code = code
		frame := EncodeFrame(payload, cfg)
		got, corrections := DecodePayload(frame[len(cfg.Preamble):], cfg)
		if corrections != 0 {
			t.Errorf("%v: spurious corrections", code)
		}
		if len(got) < len(payload) {
			t.Fatalf("%v: decoded too short", code)
		}
		for i := range payload {
			if got[i] != payload[i] {
				t.Fatalf("%v: payload mismatch at %d", code, i)
			}
		}
	}
}

func TestFindPreamble(t *testing.T) {
	pre := DefaultPreamble()
	bits := append(append([]byte{0, 0, 1}, pre...), 1, 0, 1, 1)
	start, ok := FindPreamble(bits, pre, 2)
	if !ok || start != 3+len(pre) {
		t.Fatalf("start=%d ok=%v", start, ok)
	}
	// With one flipped preamble bit it still syncs.
	bits[5] ^= 1
	if _, ok := FindPreamble(bits, pre, 2); !ok {
		t.Fatal("tolerant sync failed")
	}
	// Garbage does not sync.
	if _, ok := FindPreamble([]byte{0, 0, 0, 0, 0, 0}, pre, 1); ok {
		t.Fatal("synced on garbage")
	}
}

func TestFindPreambleEmpty(t *testing.T) {
	if _, ok := FindPreamble(nil, DefaultPreamble(), 3); ok {
		t.Fatal("synced on empty stream")
	}
	if _, ok := FindPreamble([]byte{1, 0}, nil, 0); ok {
		t.Fatal("synced with empty preamble")
	}
}

func TestRXConfigValidate(t *testing.T) {
	if err := DefaultRXConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	mutations := []func(*RXConfig){
		func(c *RXConfig) { c.FFTSize = 1000 },
		func(c *RXConfig) { c.NumHarmonics = 0 },
		func(c *RXConfig) { c.DecimateFactor = 0 },
		func(c *RXConfig) { c.MinBitPeriod = 0 },
		func(c *RXConfig) { c.HistBins = 1 },
		func(c *RXConfig) { c.BatchBits = 1 },
		func(c *RXConfig) { c.CarrierMinZ = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultRXConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// activeTrace builds a Y trace with bursts at every multiple of period
// so the active-region clipper sees transmission everywhere.
func activeTrace(n, period int) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i += period {
		for j := i; j < i+period/8 && j < n; j++ {
			y[j] = 1
		}
	}
	return y
}

func TestFillGaps(t *testing.T) {
	starts := []int{0, 100, 310, 400} // one missing start near 200
	filled, inserted := fillGaps(starts, 100, 100)
	if inserted != 1 {
		t.Fatalf("inserted = %d", inserted)
	}
	if len(filled) != 5 {
		t.Fatalf("filled = %v", filled)
	}
	if filled[2] < 190 || filled[2] > 215 {
		t.Fatalf("synthetic start at %d", filled[2])
	}
}

func TestFillGapsNoGaps(t *testing.T) {
	starts := []int{0, 100, 200}
	filled, inserted := fillGaps(starts, 100, 100)
	if inserted != 0 || len(filled) != 3 {
		t.Fatalf("filled=%v inserted=%d", filled, inserted)
	}
	if f, n := fillGaps(nil, 100, 100); f != nil || n != 0 {
		t.Fatal("empty input mishandled")
	}
}

func TestClipToActiveDropsTrailingEdges(t *testing.T) {
	// Activity covers the first three periods; a stray edge at 800
	// sits in silence and must be dropped.
	y := activeTrace(300, 100)
	y = append(y, make([]float64, 600)...)
	starts := []int{0, 100, 200, 800}
	clipped := clipToActive(starts, y, 100)
	if len(clipped) != 3 {
		t.Fatalf("clipped = %v, want the three active starts", clipped)
	}
}

func TestClipToActiveKeepsAllWhenActive(t *testing.T) {
	y := activeTrace(500, 100)
	starts := []int{0, 100, 200, 300, 400}
	clipped := clipToActive(starts, y, 100)
	if len(clipped) != len(starts) {
		t.Fatalf("clipped = %v", clipped)
	}
	if c := clipToActive(nil, y, 100); c != nil {
		t.Fatal("nil starts mishandled")
	}
	if c := clipToActive(starts, nil, 100); c != nil {
		t.Fatal("nil trace mishandled")
	}
}

func TestFillGapsHonorsMaxGap(t *testing.T) {
	// The gap spans more than maxFillGap periods: the stream truncates.
	starts := []int{0, 100, 100 * (maxFillGap + 2)}
	filled, inserted := fillGaps(starts, 100, 100)
	if inserted != 0 || len(filled) != 2 {
		t.Fatalf("filled=%v inserted=%d", filled, inserted)
	}
}

func TestEvenAtLeast(t *testing.T) {
	cases := [][2]int{{0, 2}, {1, 2}, {2, 2}, {3, 4}, {10, 10}, {11, 12}}
	for _, c := range cases {
		if got := evenAtLeast(c[0]); got != c[1] {
			t.Errorf("evenAtLeast(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestAirtimeEstimateCoversActualRun(t *testing.T) {
	prof := laptop.Reference()
	sys := laptop.NewSystem(prof, 3)
	defer sys.Close()
	txCfg := DefaultTXConfig(prof.DefaultSleepPeriod)
	bits := xrand.New(4).Bits(100)
	run := SpawnTransmitter(sys.Kernel(), bits, txCfg)
	budget := AirtimeEstimate(bits, txCfg, prof.Kernel)
	sys.Run(budget)
	if run.End == 0 {
		t.Fatal("transmitter did not finish within the airtime estimate")
	}
	if run.Airtime() > budget {
		t.Fatalf("airtime %v exceeded estimate %v", run.Airtime(), budget)
	}
}

// runLink performs a full transmit -> emanate -> propagate -> acquire ->
// demodulate cycle and returns the measurement.
func runLink(t *testing.T, prof laptop.Profile, payloadBits int, seed int64,
	chanCfg emchannel.Config, ant sdr.Antenna) (Measurement, *Demod, *TxRun, []byte) {
	t.Helper()
	sys := laptop.NewSystem(prof, seed)
	defer sys.Close()

	txCfg := DefaultTXConfig(prof.DefaultSleepPeriod)
	payload := xrand.New(seed + 1000).Bits(payloadBits)
	frame := EncodeFrame(payload, txCfg)
	run := SpawnTransmitter(sys.Kernel(), frame, txCfg)

	horizon := AirtimeEstimate(frame, txCfg, prof.Kernel)
	sys.Run(horizon)
	plan := sys.DefaultPlan()
	field := sys.Emanations(horizon, plan)

	rng := xrand.New(seed + 2000)
	field = emchannel.Apply(field, plan.SampleRate, chanCfg, rng)

	sdrCfg := sdr.DefaultConfig()
	sdrCfg.Antenna = ant
	cap := sdr.Acquire(field, plan.CenterFreqHz, sdrCfg, rng.Fork())

	rxCfg := DefaultRXConfig()
	rxCfg.ExpectedF0 = prof.VRM.SwitchingFreqHz
	rxCfg.MinBitPeriod = txCfg.BitPeriod() / 2
	d := Demodulate(cap, rxCfg)
	return Measure(run, d, txCfg, payload), d, run, payload
}

func TestEndToEndNearFieldLink(t *testing.T) {
	m, d, run, _ := runLink(t, laptop.Reference(), 96, 11,
		emchannel.DefaultConfig(), sdr.CoilProbe)
	if len(d.Bits) == 0 {
		t.Fatal("no bits decoded")
	}
	if m.ErrorRate() > 0.03 {
		t.Fatalf("near-field error rate = %v (%v), want < 3%%", m.ErrorRate(), m)
	}
	if !m.PayloadOK {
		t.Fatal("payload did not synchronize")
	}
	// A single insertion shifts the downstream Hamming blocks, so the
	// payload BER tolerance is looser than the channel's.
	if m.PayloadBER > 0.06 {
		t.Fatalf("payload BER = %v", m.PayloadBER)
	}
	// Bit rate should be in the multi-kbps range for a Linux laptop.
	if run.BitRate() < 2000 {
		t.Fatalf("bit rate = %v bps, want kbps-class", run.BitRate())
	}
}

func TestEndToEndIntermediatesPopulated(t *testing.T) {
	_, d, _, _ := runLink(t, laptop.Reference(), 48, 12,
		emchannel.DefaultConfig(), sdr.CoilProbe)
	if len(d.Y) == 0 || len(d.Conv) == 0 || len(d.Starts) < 10 {
		t.Fatalf("intermediates missing: y=%d conv=%d starts=%d",
			len(d.Y), len(d.Conv), len(d.Starts))
	}
	if len(d.RawDistances) < 5 {
		t.Fatal("no distance statistics")
	}
	if d.SignalingTime <= 0 {
		t.Fatal("no signaling time estimate")
	}
	if d.Threshold <= 0 {
		t.Fatal("no power threshold")
	}
	// Signaling time should be near the configured bit period.
	bp := DefaultTXConfig(laptop.Reference().DefaultSleepPeriod).BitPeriod().Seconds()
	if d.SignalingTime < 0.7*bp || d.SignalingTime > 1.8*bp {
		t.Fatalf("signaling time %v vs bit period %v", d.SignalingTime, bp)
	}
}

func TestEndToEndPowersBimodal(t *testing.T) {
	_, d, _, _ := runLink(t, laptop.Reference(), 64, 13,
		emchannel.DefaultConfig(), sdr.CoilProbe)
	h := dsp.NewHistogram(d.Powers, 32).Smoothed(3)
	if _, _, ok := h.Modes(); !ok {
		t.Fatal("per-bit power distribution is not bimodal")
	}
}

func TestDemodulateTooShortCapture(t *testing.T) {
	cap := &sdr.Capture{IQ: make([]complex128, 100), SampleRate: 2.4e6}
	d := Demodulate(cap, DefaultRXConfig())
	if len(d.Bits) != 0 {
		t.Fatal("bits from an empty capture")
	}
}

func TestDemodulateSilence(t *testing.T) {
	rng := xrand.New(14)
	iq := make([]complex128, 1<<16)
	for i := range iq {
		iq[i] = complex(rng.Normal(0, 0.01), rng.Normal(0, 0.01))
	}
	cap := &sdr.Capture{IQ: iq, SampleRate: 2.4e6}
	d := Demodulate(cap, DefaultRXConfig())
	// Pure noise must not produce a confident long bit stream.
	if len(d.Bits) > 20 {
		t.Fatalf("decoded %d bits from pure noise", len(d.Bits))
	}
}

func TestMeasureWithoutPayload(t *testing.T) {
	run := &TxRun{Bits: []byte{1, 0, 1}, Start: 0, End: sim.Millisecond}
	d := &Demod{Bits: []byte{1, 0, 1}}
	m := Measure(run, d, DefaultTXConfig(100*sim.Microsecond), nil)
	if m.Corrections != -1 || m.PayloadOK {
		t.Fatalf("payload fields should be unset: %+v", m)
	}
	if m.TransmitRate != 3000 {
		t.Fatalf("TransmitRate = %v", m.TransmitRate)
	}
}

func TestAverage(t *testing.T) {
	runs := []Measurement{
		{TransmitRate: 1000, SignalingTime: 1, PayloadOK: true},
		{TransmitRate: 3000, SignalingTime: 3, PayloadOK: true},
	}
	avg := Average(runs)
	if avg.TransmitRate != 2000 || avg.SignalingTime != 2 || !avg.PayloadOK {
		t.Fatalf("avg = %+v", avg)
	}
	if got := Average(nil); got.TransmitRate != 0 {
		t.Fatal("empty average nonzero")
	}
}

func TestTxRunBitRateZeroDivision(t *testing.T) {
	run := &TxRun{Bits: []byte{1}}
	if run.BitRate() != 0 {
		t.Fatal("BitRate without End should be 0")
	}
}

func TestWindowsLaptopSlowerThanLinux(t *testing.T) {
	win, _ := laptop.ByModel("Dell Precision 7290")
	mWin, _, runWin, _ := runLink(t, win, 48, 15, emchannel.DefaultConfig(), sdr.CoilProbe)
	mLin, _, runLin, _ := runLink(t, laptop.Reference(), 48, 15, emchannel.DefaultConfig(), sdr.CoilProbe)
	if runWin.BitRate() >= runLin.BitRate()/2 {
		t.Fatalf("Windows rate %v not well below Linux rate %v",
			runWin.BitRate(), runLin.BitRate())
	}
	if mWin.ErrorRate() > 0.05 || mLin.ErrorRate() > 0.05 {
		t.Fatalf("error rates too high: win %v lin %v", mWin.ErrorRate(), mLin.ErrorRate())
	}
}

func TestInterleavedFrameRoundTrip(t *testing.T) {
	cfg := DefaultTXConfig(100 * sim.Microsecond)
	cfg.InterleaveDepth = 7
	payload := xrand.New(70).Bits(96)
	frame := EncodeFrame(payload, cfg)
	inner := frame[len(cfg.Preamble) : len(frame)-len(cfg.Postamble)]
	got, corrections := DecodePayload(inner, cfg)
	if corrections != 0 {
		t.Fatalf("spurious corrections %d", corrections)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestInterleavedFrameSurvivesBurst(t *testing.T) {
	cfg := DefaultTXConfig(100 * sim.Microsecond)
	cfg.InterleaveDepth = 7
	payload := xrand.New(71).Bits(96)
	frame := EncodeFrame(payload, cfg)
	inner := append([]byte(nil), frame[len(cfg.Preamble):len(frame)-len(cfg.Postamble)]...)
	for i := 40; i < 47; i++ { // 7-bit burst on the air
		inner[i] ^= 1
	}
	got, corrections := DecodePayload(inner, cfg)
	if corrections != 7 {
		t.Fatalf("corrections = %d, want 7 (one per codeword)", corrections)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("burst not corrected at %d", i)
		}
	}
	// Contrast: the same burst without interleaving corrupts payload bits.
	plainCfg := cfg
	plainCfg.InterleaveDepth = 0
	plainFrame := EncodeFrame(payload, plainCfg)
	plainInner := append([]byte(nil),
		plainFrame[len(cfg.Preamble):len(plainFrame)-len(cfg.Postamble)]...)
	for i := 40; i < 47; i++ {
		plainInner[i] ^= 1
	}
	plainGot, _ := DecodePayload(plainInner, plainCfg)
	diff := 0
	for i := range payload {
		if plainGot[i] != payload[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("bare Hamming should have failed on the burst")
	}
}
