package covert_test

import (
	"fmt"

	"pmuleak/internal/covert"
	"pmuleak/internal/ecc"
	"pmuleak/internal/sim"
)

// ExampleEncodeFrame shows the on-air frame structure: preamble, coded
// payload, postamble.
func ExampleEncodeFrame() {
	cfg := covert.DefaultTXConfig(100 * sim.Microsecond)
	payload := []byte{1, 0, 1, 1}
	frame := covert.EncodeFrame(payload, cfg)
	fmt.Printf("preamble %d + coded %d + postamble %d = %d on-air bits\n",
		len(cfg.Preamble), cfg.InterleavedLen(len(payload)), len(cfg.Postamble), len(frame))
	got, _ := covert.DecodePayloadN(frame[len(cfg.Preamble):], cfg, len(payload))
	fmt.Println(got)
	// Output:
	// preamble 24 + coded 7 + postamble 2 = 33 on-air bits
	// [1 0 1 1]
}

// ExamplePacketize shows the reliable framing layer.
func ExamplePacketize() {
	data := []byte("a document much longer than one packet payload")
	packets := covert.Packetize(data)
	r := covert.NewReassembler()
	for _, p := range packets {
		// (each packet would cross the EM channel here)
		body := covert.PacketBody(p)
		got, ok := covert.ParsePacket(ecc.BytesToBits(body))
		if ok {
			r.Add(got)
		}
	}
	fmt.Println(len(packets), r.Complete(), string(r.Bytes()))
	// Output:
	// 4 true a document much longer than one packet payload
}
