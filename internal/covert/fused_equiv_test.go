package covert

import (
	"fmt"
	"reflect"
	"testing"

	"pmuleak/internal/dsp"
	"pmuleak/internal/emchannel"
	"pmuleak/internal/faults"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sdr"
	"pmuleak/internal/xrand"
)

// linkCapture runs the transmit -> emanate -> propagate -> acquire
// front half of runLink and returns the capture plus the receiver
// config tuned to the profile, without demodulating. The demodulation
// differential below reuses one capture across kernel modes so the
// input bits are literally identical.
func linkCapture(payloadBits int, seed int64) (*sdr.Capture, RXConfig) {
	prof := laptop.Reference()
	sys := laptop.NewSystem(prof, seed)
	defer sys.Close()

	txCfg := DefaultTXConfig(prof.DefaultSleepPeriod)
	payload := xrand.New(seed + 1000).Bits(payloadBits)
	frame := EncodeFrame(payload, txCfg)
	SpawnTransmitter(sys.Kernel(), frame, txCfg)

	horizon := AirtimeEstimate(frame, txCfg, prof.Kernel)
	sys.Run(horizon)
	plan := sys.DefaultPlan()
	field := sys.Emanations(horizon, plan)

	rng := xrand.New(seed + 2000)
	field = emchannel.Apply(field, plan.SampleRate, emchannel.DefaultConfig(), rng)

	sdrCfg := sdr.DefaultConfig()
	sdrCfg.Antenna = sdr.CoilProbe
	cap := sdr.Acquire(field, plan.CenterFreqHz, sdrCfg, rng.Fork())

	rxCfg := DefaultRXConfig()
	rxCfg.ExpectedF0 = prof.VRM.SwitchingFreqHz
	rxCfg.MinBitPeriod = txCfg.BitPeriod() / 2
	return cap, rxCfg
}

// TestDemodulateFusedEquivalence is the receiver-level differential for
// the fused kernels, across the fault axis the robustness experiment
// exercises: for a clean capture and for deterministically faulted
// copies of it (drops, clock error, gain steps, saturation), the entire
// Demod — traces, bit starts, decoded bits, quality — must be identical
// with fused kernels on and off, serial and parallel. The receiver's
// decisions consume STFT magnitudes and Welch PSDs, which the kernel
// suite proves bit-identical, so reflect.DeepEqual is the bar.
func TestDemodulateFusedEquivalence(t *testing.T) {
	prevFused := dsp.FusedKernels()
	defer dsp.SetFusedKernels(prevFused)

	faultConfigs := []struct {
		name string
		cfg  faults.Config
	}{
		{"clean", faults.Config{}},
		{"drops", faults.Config{DropRatePerS: 8}},
		{"clock", faults.Config{ClockPPM: 25, DriftPPMPerS: 2}},
		{"analog", faults.Config{GainStepRatePerS: 4, SaturationRatePerS: 4}},
	}
	for fi, fc := range faultConfigs {
		cap, rxCfg := linkCapture(64, 77+int64(fi))
		faults.MustNew(fc.cfg, 99).Apply(cap)

		var want *Demod
		for _, fused := range []bool{false, true} {
			dsp.SetFusedKernels(fused)
			for _, par := range []int{1, 4} {
				cfg := rxCfg
				cfg.Parallelism = par
				d := Demodulate(cap, cfg)
				if want == nil {
					if !d.CarrierFound {
						t.Fatalf("%s: carrier lost in reference demodulation", fc.name)
					}
					want = d
					continue
				}
				if !reflect.DeepEqual(d, want) {
					t.Fatalf("%s fused=%v par=%d: demodulation differs from reference:\n%s",
						fc.name, fused, par, demodDiff(d, want))
				}
			}
		}
	}
}

// demodDiff names the first field that differs, so a failure reports
// "Conv diverges at sample 812" instead of two megabyte dumps.
func demodDiff(got, want *Demod) string {
	if got.CarrierFound != want.CarrierFound {
		return fmt.Sprintf("CarrierFound %v vs %v", got.CarrierFound, want.CarrierFound)
	}
	for i := range want.Y {
		if i >= len(got.Y) || got.Y[i] != want.Y[i] {
			return fmt.Sprintf("Y diverges at sample %d", i)
		}
	}
	for i := range want.Conv {
		if i >= len(got.Conv) || got.Conv[i] != want.Conv[i] {
			return fmt.Sprintf("Conv diverges at sample %d", i)
		}
	}
	if !reflect.DeepEqual(got.Starts, want.Starts) {
		return fmt.Sprintf("Starts %v vs %v", got.Starts, want.Starts)
	}
	if !reflect.DeepEqual(got.Bits, want.Bits) {
		return "decoded bits differ"
	}
	return "difference outside Y/Conv/Starts/Bits (see Quality/Powers)"
}
