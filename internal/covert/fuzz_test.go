package covert

import (
	"bytes"
	"testing"

	"pmuleak/internal/ecc"
	"pmuleak/internal/sim"
)

// Native fuzz targets. `go test` runs the seed corpus; `go test -fuzz`
// explores further. The invariants are absence of panics and internal
// consistency on arbitrary input.

func FuzzParsePacket(f *testing.F) {
	cfg := DefaultTXConfig(100 * sim.Microsecond)
	good := TransmitPacket(Packet{Seq: 3, Payload: []byte("hello")}, cfg)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{1, 0, 1})
	f.Add(bytes.Repeat([]byte{1}, 200))
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Map arbitrary bytes onto a bit stream.
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		p, ok := ParsePacket(bits)
		if !ok {
			return
		}
		if p.Seq < 0 || p.Seq > 15 {
			t.Fatalf("parsed seq %d out of range", p.Seq)
		}
		if len(p.Payload) < 1 || len(p.Payload) > MaxPacketPayload {
			t.Fatalf("parsed payload length %d out of range", len(p.Payload))
		}
		// Anything that parses must re-serialize to a frame that
		// parses back identically (CRC consistency).
		onAir := TransmitPacket(p, cfg)
		decoded, _ := DecodePayload(onAir[len(cfg.Preamble):], cfg)
		p2, ok2 := ParsePacket(decoded)
		if !ok2 || p2.Seq != p.Seq || !bytes.Equal(p2.Payload, p.Payload) {
			t.Fatalf("re-serialization broke the packet: %+v vs %+v", p, p2)
		}
	})
}

func FuzzFindPreamble(f *testing.F) {
	pre := DefaultPreamble()
	f.Add([]byte{1, 0, 1, 0}, 2)
	f.Add(append(append([]byte{0, 0}, pre...), 1, 1), 3)
	f.Fuzz(func(t *testing.T, raw []byte, tol int) {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		if tol < 0 {
			tol = -tol
		}
		tol %= 8
		start, ok := FindPreamble(bits, pre, tol)
		if !ok {
			return
		}
		if start < len(pre) || start > len(bits) {
			t.Fatalf("payload start %d out of bounds (len %d)", start, len(bits))
		}
	})
}

func FuzzDecodePayload(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1, 0, 0, 1}, 0)
	f.Add([]byte{}, 1)
	f.Add(bytes.Repeat([]byte{1, 0}, 50), 2)
	f.Fuzz(func(t *testing.T, raw []byte, codeSel int) {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		cfg := DefaultTXConfig(100 * sim.Microsecond)
		switch codeSel % 3 {
		case 0:
			cfg.Code = CodeNone
		case 1:
			cfg.Code = CodeParity
		default:
			cfg.Code = CodeHamming74
		}
		payload, corrections := DecodePayload(bits, cfg)
		if corrections < 0 {
			t.Fatal("negative corrections")
		}
		for _, b := range payload {
			if b > 1 {
				t.Fatalf("non-bit %d in decoded payload", b)
			}
		}
		_ = ecc.BitsToBytes(payload) // must not panic either
	})
}
