package covert

import (
	"bytes"
	"testing"

	"pmuleak/internal/ecc"
	"pmuleak/internal/sim"
)

// Native fuzz targets. `go test` runs the seed corpus; `go test -fuzz`
// explores further. The invariants are absence of panics and internal
// consistency on arbitrary input.

func FuzzParsePacket(f *testing.F) {
	cfg := DefaultTXConfig(100 * sim.Microsecond)
	good := TransmitPacket(Packet{Seq: 3, Payload: []byte("hello")}, cfg)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{1, 0, 1})
	f.Add(bytes.Repeat([]byte{1}, 200))
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Map arbitrary bytes onto a bit stream.
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		p, ok := ParsePacket(bits)
		if !ok {
			return
		}
		if p.Seq < 0 || p.Seq > 15 {
			t.Fatalf("parsed seq %d out of range", p.Seq)
		}
		if len(p.Payload) < 1 || len(p.Payload) > MaxPacketPayload {
			t.Fatalf("parsed payload length %d out of range", len(p.Payload))
		}
		// Anything that parses must re-serialize to a frame that
		// parses back identically (CRC consistency).
		onAir := TransmitPacket(p, cfg)
		decoded, _ := DecodePayload(onAir[len(cfg.Preamble):], cfg)
		p2, ok2 := ParsePacket(decoded)
		if !ok2 || p2.Seq != p.Seq || !bytes.Equal(p2.Payload, p.Payload) {
			t.Fatalf("re-serialization broke the packet: %+v vs %+v", p, p2)
		}
	})
}

func FuzzFindPreamble(f *testing.F) {
	pre := DefaultPreamble()
	f.Add([]byte{1, 0, 1, 0}, 2)
	f.Add(append(append([]byte{0, 0}, pre...), 1, 1), 3)
	f.Fuzz(func(t *testing.T, raw []byte, tol int) {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		if tol < 0 {
			tol = -tol
		}
		tol %= 8
		start, ok := FindPreamble(bits, pre, tol)
		if !ok {
			return
		}
		if start < len(pre) || start > len(bits) {
			t.Fatalf("payload start %d out of bounds (len %d)", start, len(bits))
		}
	})
}

// FuzzFindPreambleUnderDamage injects the channel damage of the Fig. 8
// regimes — bit deletions and insertions — into a well-formed frame and
// checks FindPreamble's contract survives: no panic, in-bounds result,
// and guaranteed sync whenever an intact copy of the preamble is still
// present (damage landed past it). The seed corpus mirrors Fig. 8:
// the quiet regime (no deletions; DP < 0.2%) and the loaded regime
// (~1 deletion per 122 on-air bits).
func FuzzFindPreambleUnderDamage(f *testing.F) {
	pre := DefaultPreamble()
	f.Add([]byte{1, 1, 0, 1, 0, 0, 1, 0}, uint16(0), uint16(0), false, false)       // quiet: intact
	f.Add(bytes.Repeat([]byte{1, 0, 1, 1}, 30), uint16(61), uint16(0), true, false) // loaded: one deletion
	f.Add(bytes.Repeat([]byte{0, 1}, 61), uint16(40), uint16(90), true, true)       // deletion + insertion
	f.Add(bytes.Repeat([]byte{1}, 122), uint16(3), uint16(5), true, true)           // damage inside the preamble
	f.Fuzz(func(t *testing.T, rawPayload []byte, delPos, insPos uint16, doDel, doIns bool) {
		payload := make([]byte, len(rawPayload))
		for i, b := range rawPayload {
			payload[i] = b & 1
		}
		bits := append(append([]byte(nil), pre...), payload...)

		damagedPastPreamble := true
		if doDel && len(bits) > 0 {
			p := int(delPos) % len(bits)
			bits = append(bits[:p], bits[p+1:]...)
			if p < len(pre) {
				damagedPastPreamble = false
			}
		}
		if doIns {
			p := int(insPos) % (len(bits) + 1)
			bits = append(bits[:p], append([]byte{1}, bits[p:]...)...)
			if p < len(pre) {
				damagedPastPreamble = false
			}
		}

		start, ok := FindPreamble(bits, pre, len(pre)/4)
		if ok && (start < len(pre) || start > len(bits)) {
			t.Fatalf("payload start %d out of bounds (len %d)", start, len(bits))
		}
		if damagedPastPreamble && !ok {
			t.Fatalf("intact preamble not found (del=%v ins=%v, %d bits)", doDel, doIns, len(bits))
		}
	})
}

// FuzzDemodulateParallelism round-trips the full demodulator over a
// simulated capture under two arbitrary Parallelism settings and
// asserts the decoded bits — and the recovered payload — are identical.
// This is the fuzzing arm of the engine's bit-equivalence guarantee:
// whatever worker counts the fuzzer picks, the receiver's output may
// depend only on the capture.
func FuzzDemodulateParallelism(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(4))
	f.Add(int64(7), uint8(0), uint8(2))
	f.Add(int64(42), uint8(8), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, p1, p2 uint8) {
		cap, txCfg, _, prof := buildCapture(24, seed)
		cfg := DefaultRXConfig()
		cfg.ExpectedF0 = prof.VRM.SwitchingFreqHz
		cfg.MinBitPeriod = txCfg.BitPeriod() / 2
		run := func(p uint8) (*Demod, []byte, bool) {
			c := cfg
			c.Parallelism = int(p % 9) // 0 (auto) through 8 workers
			d := Demodulate(cap, c)
			payload, _, ok := d.RecoverPayload(txCfg)
			return d, payload, ok
		}
		d1, pay1, ok1 := run(p1)
		d2, pay2, ok2 := run(p2)
		if len(d1.Bits) != len(d2.Bits) {
			t.Fatalf("bit counts differ: %d vs %d (P=%d vs P=%d)",
				len(d1.Bits), len(d2.Bits), p1%9, p2%9)
		}
		for i := range d1.Bits {
			if d1.Bits[i] != d2.Bits[i] {
				t.Fatalf("bit %d differs between P=%d and P=%d", i, p1%9, p2%9)
			}
		}
		if ok1 != ok2 || len(pay1) != len(pay2) {
			t.Fatalf("payload recovery diverged: ok %v/%v len %d/%d",
				ok1, ok2, len(pay1), len(pay2))
		}
		for i := range pay1 {
			if pay1[i] != pay2[i] {
				t.Fatalf("payload bit %d differs", i)
			}
		}
	})
}

func FuzzDecodePayload(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1, 0, 0, 1}, 0)
	f.Add([]byte{}, 1)
	f.Add(bytes.Repeat([]byte{1, 0}, 50), 2)
	f.Fuzz(func(t *testing.T, raw []byte, codeSel int) {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		cfg := DefaultTXConfig(100 * sim.Microsecond)
		switch codeSel % 3 {
		case 0:
			cfg.Code = CodeNone
		case 1:
			cfg.Code = CodeParity
		default:
			cfg.Code = CodeHamming74
		}
		payload, corrections := DecodePayload(bits, cfg)
		if corrections < 0 {
			t.Fatal("negative corrections")
		}
		for _, b := range payload {
			if b > 1 {
				t.Fatalf("non-bit %d in decoded payload", b)
			}
		}
		_ = ecc.BitsToBytes(payload) // must not panic either
	})
}
