package covert

import (
	"fmt"

	"pmuleak/internal/align"
)

// Measurement is the Table II/III row for one covert-channel run.
type Measurement struct {
	align.Result
	// TransmitRate is the achieved on-air channel rate in bits/s.
	TransmitRate float64
	// SignalingTime is the receiver's per-bit duration estimate (s).
	SignalingTime float64
	// Corrections is the number of error-control corrections (or
	// parity failures) during payload decode; -1 if the payload could
	// not be synchronized.
	Corrections int
	// PayloadOK reports whether preamble sync and decode succeeded.
	PayloadOK bool
	// PayloadBER is the residual error rate of the decoded payload
	// against the transmitted payload (after error correction).
	PayloadBER float64
}

// String renders the headline numbers in the table's units.
func (m Measurement) String() string {
	return fmt.Sprintf("BER=%.1e TR=%.0fbps IP=%.1e DP=%.1e",
		m.BER(), m.TransmitRate, m.InsertionProb(), m.DeletionProb())
}

// Measure aligns the receiver's decoded bit stream against the
// transmitted frame and assembles the run's metrics. payload is the
// pre-coding payload (pass nil to skip payload scoring).
func Measure(run *TxRun, d *Demod, txCfg TXConfig, payload []byte) Measurement {
	m := Measurement{
		Result:        align.Sequences(run.Bits, d.Bits),
		TransmitRate:  run.BitRate(),
		SignalingTime: d.SignalingTime,
		Corrections:   -1,
	}
	if payload != nil {
		got, corrections, ok := d.RecoverPayloadN(txCfg, len(payload))
		m.PayloadOK = ok
		if ok {
			m.Corrections = corrections
			if len(got) > len(payload) {
				got = got[:len(payload)]
			}
			m.PayloadBER = align.Sequences(payload, got).ErrorRate()
		}
	}
	return m
}

// Average pools several runs of the same configuration, as the paper
// does (five runs per laptop for Table II).
func Average(runs []Measurement) Measurement {
	if len(runs) == 0 {
		return Measurement{}
	}
	var out Measurement
	okCount := 0
	for _, r := range runs {
		out.TxLen += r.TxLen
		out.RxLen += r.RxLen
		out.Matches += r.Matches
		out.Substitutions += r.Substitutions
		out.Insertions += r.Insertions
		out.Deletions += r.Deletions
		out.TransmitRate += r.TransmitRate
		out.SignalingTime += r.SignalingTime
		out.PayloadBER += r.PayloadBER
		if r.PayloadOK {
			okCount++
			if r.Corrections > 0 {
				out.Corrections += r.Corrections
			}
		}
	}
	n := float64(len(runs))
	out.TransmitRate /= n
	out.SignalingTime /= n
	out.PayloadBER /= n
	out.PayloadOK = okCount == len(runs)
	return out
}
