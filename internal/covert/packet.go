package covert

import (
	"fmt"

	"pmuleak/internal/ecc"
)

// This file implements a small reliable framing layer on top of the raw
// bit channel. The paper transmits raw parity-coded streams ("the data
// can be sent in packets or continuously", §IV-C1); packetization is
// what a real exfiltration tool needs, because block codes cannot
// survive bit insertions or deletions — one slipped bit desynchronizes
// everything after it. Splitting the payload into small self-delimiting
// packets, each with its own sequence number and CRC, confines a timing
// slip to one packet, and the receiver can reassemble from however many
// packets survive (plus retransmissions).
//
// Packet layout (before Hamming coding):
//
//	4 bits  sequence number (mod 16)
//	4 bits  payload length in bytes (1..15)
//	n*8     payload bytes
//	8 bits  CRC-8 over sequence|length|payload
//
// Each packet is Hamming(7,4)-coded and prepended with the standard
// preamble, so every packet is independently synchronizable.

// MaxPacketPayload is the largest payload one packet can carry.
const MaxPacketPayload = 15

// Packet is one protocol frame.
type Packet struct {
	Seq     int
	Payload []byte
}

// PacketBody serializes one packet into its wire bytes (header,
// payload, CRC) — the unit that gets bit-expanded, coded, and framed.
func PacketBody(p Packet) []byte {
	if len(p.Payload) == 0 || len(p.Payload) > MaxPacketPayload {
		panic(fmt.Sprintf("covert: packet payload %d out of 1..%d",
			len(p.Payload), MaxPacketPayload))
	}
	header := []byte{byte(p.Seq&0x0F)<<4 | byte(len(p.Payload)&0x0F)}
	body := append(header, p.Payload...)
	return append(body, ecc.CRC8(body))
}

// packetBits serializes and codes one packet for the air.
func packetBits(p Packet, cfg TXConfig) []byte {
	return EncodeFrame(ecc.BytesToBits(PacketBody(p)), cfg)
}

// Packetize splits data into packets of at most MaxPacketPayload bytes.
func Packetize(data []byte) []Packet {
	var out []Packet
	for i, seq := 0, 0; i < len(data); seq++ {
		end := i + MaxPacketPayload
		if end > len(data) {
			end = len(data)
		}
		out = append(out, Packet{Seq: seq & 0x0F, Payload: data[i:end]})
		i = end
	}
	return out
}

// ParsePacket validates and decodes the payload bits of one received
// packet (preamble already stripped, Hamming already decoded).
func ParsePacket(bits []byte) (Packet, bool) {
	raw := ecc.BitsToBytes(bits)
	if len(raw) < 3 {
		return Packet{}, false
	}
	seq := int(raw[0] >> 4)
	n := int(raw[0] & 0x0F)
	if n < 1 || n > MaxPacketPayload || len(raw) < 2+n {
		return Packet{}, false
	}
	body := raw[:1+n]
	if ecc.CRC8(body) != raw[1+n] {
		return Packet{}, false
	}
	return Packet{Seq: seq, Payload: append([]byte(nil), raw[1:1+n]...)}, true
}

// PacketAirtime estimates the on-air bit count of one packet.
func PacketAirtime(payloadBytes int, cfg TXConfig) int {
	bits := (1 + payloadBytes + 1) * 8
	switch cfg.Code {
	case CodeHamming74:
		bits = (bits + 3) / 4 * 7
	case CodeParity:
		bits += (bits + cfg.ParityBlock - 1) / cfg.ParityBlock
	}
	return bits + len(cfg.Preamble) + len(cfg.Postamble)
}

// Reassembler collects received packets into the original byte stream.
type Reassembler struct {
	packets map[int][]byte // seq -> payload
	highest int
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{packets: map[int][]byte{}, highest: -1}
}

// Add records a received packet. Duplicate sequence numbers keep the
// first copy (retransmissions carry identical payloads).
func (r *Reassembler) Add(p Packet) {
	if _, ok := r.packets[p.Seq]; !ok {
		r.packets[p.Seq] = p.Payload
	}
	if p.Seq > r.highest {
		r.highest = p.Seq
	}
}

// Has reports whether a packet with the given sequence number arrived.
func (r *Reassembler) Has(seq int) bool {
	_, ok := r.packets[seq]
	return ok
}

// Missing lists sequence numbers absent below the highest seen.
func (r *Reassembler) Missing() []int {
	var out []int
	for s := 0; s <= r.highest; s++ {
		if _, ok := r.packets[s]; !ok {
			out = append(out, s)
		}
	}
	return out
}

// Complete reports whether every packet up to the highest is present.
func (r *Reassembler) Complete() bool { return r.highest >= 0 && len(r.Missing()) == 0 }

// Bytes concatenates the payloads in sequence order. Missing packets
// leave gaps, so check Complete first for exact recovery.
func (r *Reassembler) Bytes() []byte {
	var out []byte
	for s := 0; s <= r.highest; s++ {
		out = append(out, r.packets[s]...)
	}
	return out
}

// TransmitPacket encodes one packet as a TX bit stream; use with
// SpawnTransmitter. The receiver side is Demodulate + RecoverPayload +
// ParsePacket.
func TransmitPacket(p Packet, cfg TXConfig) []byte {
	return packetBits(p, cfg)
}
