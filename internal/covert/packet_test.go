package covert

import (
	"bytes"
	"testing"
	"testing/quick"

	"pmuleak/internal/ecc"
	"pmuleak/internal/sim"
	"pmuleak/internal/xrand"
)

func TestPacketizeSplits(t *testing.T) {
	data := make([]byte, 40)
	for i := range data {
		data[i] = byte(i)
	}
	pkts := Packetize(data)
	if len(pkts) != 3 { // 15 + 15 + 10
		t.Fatalf("got %d packets", len(pkts))
	}
	if len(pkts[0].Payload) != 15 || len(pkts[2].Payload) != 10 {
		t.Fatalf("payload sizes %d %d %d",
			len(pkts[0].Payload), len(pkts[1].Payload), len(pkts[2].Payload))
	}
	for i, p := range pkts {
		if p.Seq != i&0x0F {
			t.Fatalf("packet %d has seq %d", i, p.Seq)
		}
	}
}

func TestPacketizeEmpty(t *testing.T) {
	if pkts := Packetize(nil); pkts != nil {
		t.Fatalf("packets from empty data: %v", pkts)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	cfg := DefaultTXConfig(100 * sim.Microsecond)
	p := Packet{Seq: 5, Payload: []byte("hello!")}
	onAir := TransmitPacket(p, cfg)
	// Strip preamble, decode Hamming, parse.
	payloadBits, _ := DecodePayload(onAir[len(cfg.Preamble):], cfg)
	got, ok := ParsePacket(payloadBits)
	if !ok {
		t.Fatal("packet did not parse")
	}
	if got.Seq != 5 || !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("got %+v", got)
	}
}

func TestPacketRejectsDamage(t *testing.T) {
	cfg := DefaultTXConfig(100 * sim.Microsecond)
	cfg.Code = CodeNone // direct access to raw bits
	p := Packet{Seq: 1, Payload: []byte("secret")}
	onAir := TransmitPacket(p, cfg)
	bits := append([]byte(nil), onAir[len(cfg.Preamble):]...)
	bits[10] ^= 1 // flip a payload bit
	if _, ok := ParsePacket(bits); ok {
		t.Fatal("damaged packet accepted")
	}
}

func TestPacketRejectsTruncation(t *testing.T) {
	if _, ok := ParsePacket(ecc.BytesToBits([]byte{0x15})); ok {
		t.Fatal("truncated packet accepted")
	}
	if _, ok := ParsePacket(nil); ok {
		t.Fatal("empty packet accepted")
	}
}

func TestPacketBadSizePanics(t *testing.T) {
	cfg := DefaultTXConfig(100 * sim.Microsecond)
	for _, payload := range [][]byte{nil, make([]byte, 16)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("payload size %d accepted", len(payload))
				}
			}()
			TransmitPacket(Packet{Payload: payload}, cfg)
		}()
	}
}

func TestPacketAirtime(t *testing.T) {
	cfg := DefaultTXConfig(100 * sim.Microsecond)
	p := Packet{Seq: 0, Payload: []byte("12345")}
	if got, want := PacketAirtime(5, cfg), len(TransmitPacket(p, cfg)); got != want {
		t.Fatalf("PacketAirtime = %d, actual %d", got, want)
	}
	cfg.Code = CodeNone
	if got, want := PacketAirtime(5, cfg), len(TransmitPacket(p, cfg)); got != want {
		t.Fatalf("uncoded PacketAirtime = %d, actual %d", got, want)
	}
	cfg.Code = CodeParity
	if got, want := PacketAirtime(5, cfg), len(TransmitPacket(p, cfg)); got != want {
		t.Fatalf("parity PacketAirtime = %d, actual %d", got, want)
	}
}

func TestReassembler(t *testing.T) {
	r := NewReassembler()
	if r.Complete() {
		t.Fatal("empty reassembler complete")
	}
	r.Add(Packet{Seq: 0, Payload: []byte("ab")})
	r.Add(Packet{Seq: 2, Payload: []byte("ef")})
	if r.Complete() {
		t.Fatal("complete with a gap")
	}
	missing := r.Missing()
	if len(missing) != 1 || missing[0] != 1 {
		t.Fatalf("missing = %v", missing)
	}
	r.Add(Packet{Seq: 1, Payload: []byte("cd")})
	if !r.Complete() {
		t.Fatal("not complete after filling the gap")
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("abcdef")) {
		t.Fatalf("Bytes = %q", got)
	}
}

func TestReassemblerKeepsFirstDuplicate(t *testing.T) {
	r := NewReassembler()
	r.Add(Packet{Seq: 0, Payload: []byte("good")})
	r.Add(Packet{Seq: 0, Payload: []byte("bad!")})
	if got := r.Bytes(); !bytes.Equal(got, []byte("good")) {
		t.Fatalf("Bytes = %q", got)
	}
}

func TestPacketPropertyRoundTrip(t *testing.T) {
	cfg := DefaultTXConfig(100 * sim.Microsecond)
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(MaxPacketPayload)
		payload := make([]byte, n)
		rng.Bytes(payload)
		p := Packet{Seq: rng.Intn(16), Payload: payload}
		onAir := TransmitPacket(p, cfg)
		bits, _ := DecodePayload(onAir[len(cfg.Preamble):], cfg)
		got, ok := ParsePacket(bits)
		return ok && got.Seq == p.Seq && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketizeReassembleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		data := make([]byte, 1+rng.Intn(300))
		rng.Bytes(data)
		r := NewReassembler()
		for _, p := range Packetize(data) {
			r.Add(p)
		}
		// Sequence numbers wrap at 16; reassembly of more than 16
		// packets needs higher-layer windowing, so restrict to the
		// in-window case.
		if len(data) > MaxPacketPayload*16 {
			return true
		}
		return r.Complete() && bytes.Equal(r.Bytes(), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReassemblerHas(t *testing.T) {
	r := NewReassembler()
	if r.Has(0) {
		t.Fatal("empty reassembler has packet 0")
	}
	r.Add(Packet{Seq: 2, Payload: []byte("x")})
	if !r.Has(2) || r.Has(1) {
		t.Fatal("Has wrong")
	}
}

func TestPacketBodyRoundTrip(t *testing.T) {
	p := Packet{Seq: 7, Payload: []byte("abc")}
	body := PacketBody(p)
	got, ok := ParsePacket(ecc.BytesToBits(body))
	if !ok || got.Seq != 7 || !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("round trip: %+v ok=%v", got, ok)
	}
}
