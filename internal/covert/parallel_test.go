package covert

import (
	"math"
	"testing"

	"pmuleak/internal/emchannel"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sdr"
	"pmuleak/internal/xrand"
)

// buildCapture runs the transmit -> emanate -> propagate -> acquire
// half of the pipeline once, so a capture can be demodulated repeatedly
// under different receiver settings.
func buildCapture(payloadBits int, seed int64) (*sdr.Capture, TXConfig, []byte, laptop.Profile) {
	prof := laptop.Reference()
	sys := laptop.NewSystem(prof, seed)
	defer sys.Close()

	txCfg := DefaultTXConfig(prof.DefaultSleepPeriod)
	payload := xrand.New(seed + 1000).Bits(payloadBits)
	frame := EncodeFrame(payload, txCfg)
	SpawnTransmitter(sys.Kernel(), frame, txCfg)

	horizon := AirtimeEstimate(frame, txCfg, prof.Kernel)
	sys.Run(horizon)
	plan := sys.DefaultPlan()
	field := sys.Emanations(horizon, plan)

	rng := xrand.New(seed + 2000)
	field = emchannel.Apply(field, plan.SampleRate, emchannel.DefaultConfig(), rng)
	cap := sdr.Acquire(field, plan.CenterFreqHz, sdr.DefaultConfig(), rng.Fork())
	return cap, txCfg, payload, prof
}

func demodEqual(t *testing.T, label string, a, b *Demod) {
	t.Helper()
	if a.CarrierFound != b.CarrierFound {
		t.Fatalf("%s: CarrierFound %v != %v", label, a.CarrierFound, b.CarrierFound)
	}
	cmpFloats := func(name string, x, y []float64) {
		if len(x) != len(y) {
			t.Fatalf("%s: %s length %d != %d", label, name, len(x), len(y))
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				t.Fatalf("%s: %s[%d] = %v != %v", label, name, i, x[i], y[i])
			}
		}
	}
	cmpFloats("Offsets", a.Offsets, b.Offsets)
	cmpFloats("Y", a.Y, b.Y)
	cmpFloats("Conv", a.Conv, b.Conv)
	cmpFloats("Powers", a.Powers, b.Powers)
	if len(a.Starts) != len(b.Starts) {
		t.Fatalf("%s: Starts length %d != %d", label, len(a.Starts), len(b.Starts))
	}
	for i := range a.Starts {
		if a.Starts[i] != b.Starts[i] {
			t.Fatalf("%s: Starts[%d] = %d != %d", label, i, a.Starts[i], b.Starts[i])
		}
	}
	if math.Float64bits(a.Threshold) != math.Float64bits(b.Threshold) ||
		math.Float64bits(a.SignalingTime) != math.Float64bits(b.SignalingTime) {
		t.Fatalf("%s: threshold/signaling time differ", label)
	}
	if len(a.Bits) != len(b.Bits) {
		t.Fatalf("%s: Bits length %d != %d", label, len(a.Bits), len(b.Bits))
	}
	for i := range a.Bits {
		if a.Bits[i] != b.Bits[i] {
			t.Fatalf("%s: Bits[%d] = %d != %d", label, i, a.Bits[i], b.Bits[i])
		}
	}
}

// TestDemodulateParallelismIndependence is the end-to-end arm of the
// differential harness: the full demodulator — Welch carrier search,
// acquisition, both edge-detection passes, power statistics, decoded
// bits — must be identical for every Parallelism setting, not just the
// dsp primitives in isolation.
func TestDemodulateParallelismIndependence(t *testing.T) {
	cap, txCfg, payload, prof := buildCapture(96, 41)
	cfg := DefaultRXConfig()
	cfg.ExpectedF0 = prof.VRM.SwitchingFreqHz
	cfg.MinBitPeriod = txCfg.BitPeriod() / 2

	cfg.Parallelism = 1
	serial := Demodulate(cap, cfg)
	if !serial.CarrierFound || len(serial.Bits) == 0 {
		t.Fatal("baseline serial demodulation found nothing; test capture is broken")
	}
	serialPayload, _, serialOK := serial.RecoverPayload(txCfg)

	for _, p := range []int{0, 2, 4, 8} {
		c := cfg
		c.Parallelism = p
		d := Demodulate(cap, c)
		demodEqual(t, labelP(p), serial, d)
		gotPayload, _, ok := d.RecoverPayload(txCfg)
		if ok != serialOK || len(gotPayload) != len(serialPayload) {
			t.Fatalf("P=%d: payload recovery diverged", p)
		}
		for i := range gotPayload {
			if gotPayload[i] != serialPayload[i] {
				t.Fatalf("P=%d: payload bit %d differs", p, i)
			}
		}
	}
	// Sanity: the shared capture actually decodes the payload.
	if !serialOK {
		t.Fatal("payload did not synchronize")
	}
	_ = payload
}

func labelP(p int) string {
	return map[int]string{0: "P=auto", 2: "P=2", 4: "P=4", 8: "P=8"}[p]
}

func TestRXConfigParallelismValidate(t *testing.T) {
	cfg := DefaultRXConfig()
	cfg.Parallelism = -1
	if cfg.Validate() == nil {
		t.Fatal("negative Parallelism accepted")
	}
	cfg.Parallelism = 8
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Parallelism 8 rejected: %v", err)
	}
}

// TestDemodulateConcurrentSharedConfig runs the demodulator from many
// goroutines against one shared capture and one shared config, each
// goroutine itself fanning out internally. Run under -race this covers
// the FFT plan cache and the engine worker pools along the whole
// receiver path.
func TestDemodulateConcurrentSharedConfig(t *testing.T) {
	cap, txCfg, _, prof := buildCapture(48, 43)
	cfg := DefaultRXConfig()
	cfg.ExpectedF0 = prof.VRM.SwitchingFreqHz
	cfg.MinBitPeriod = txCfg.BitPeriod() / 2
	cfg.Parallelism = 2

	baseline := Demodulate(cap, cfg)
	const goroutines = 8
	results := make([]*Demod, goroutines)
	done := make(chan int, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			results[g] = Demodulate(cap, cfg)
			done <- g
		}(g)
	}
	for range results {
		<-done
	}
	for g, d := range results {
		demodEqual(t, labelP(2)+" concurrent", baseline, d)
		_ = g
	}
}
