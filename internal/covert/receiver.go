package covert

import (
	"fmt"
	"math"

	"pmuleak/internal/dsp"
	"pmuleak/internal/sdr"
	"pmuleak/internal/sim"
)

// RXConfig parameterizes the receiver's detection pipeline.
type RXConfig struct {
	// FFTSize is the PSD resolution used for carrier search and
	// carrier detection (M in Eq. (1) terms).
	FFTSize int
	// NumHarmonics is |S|: how many VRM spectral spikes to sum.
	NumHarmonics int
	// ExpectedF0 is the VRM switching frequency hint (Hz). When zero
	// the receiver locates the spikes itself from the capture's PSD.
	ExpectedF0 float64
	// DecimateFactor reduces the per-sample acquisition trace before
	// edge detection.
	DecimateFactor int
	// MinBitPeriod bounds the shortest plausible signaling period and
	// sizes the first-pass edge kernel.
	MinBitPeriod sim.Time
	// TrackerTimeConstant is the acquisition tracker's response time.
	// Zero derives it from MinBitPeriod (a quarter of it).
	TrackerTimeConstant sim.Time
	// HistBins is the resolution of the power histogram used for
	// threshold selection (Fig. 7).
	HistBins int
	// BatchBits is the approximate number of bit periods per
	// batch-processing window (§IV-B2).
	BatchBits int
	// CarrierMinZ is the minimum robust z-score of the spike bin above
	// the PSD floor for the capture to be considered to contain a VRM
	// carrier at all. Below it the demodulator reports no bits.
	CarrierMinZ float64
	// CarrierRetries bounds carrier re-acquisition: when the first
	// spike search fails the gate, each retry widens the search (more
	// candidate peaks, tighter peak spacing) and relaxes CarrierMinZ by
	// 25%. Zero — the default — keeps the single-pass behavior.
	CarrierRetries int
	// Resync enables per-batch period re-estimation (§IV-B2 batch
	// processing taken to its conclusion): estimatePeriod is re-run on
	// each BatchBits window and, when the local period diverges from
	// the global one by more than resyncDivergence, gap filling inside
	// that window re-locks onto the local period. On a clean capture no
	// window diverges and the decoded bits are identical to Resync off.
	Resync bool
	// Parallelism is the DSP engine's worker count: 0 picks the process
	// default (normally all CPUs), 1 forces the exact legacy serial
	// path, n > 1 uses n workers. The engine's parallel paths are
	// bit-identical to the serial ones, so this knob never changes the
	// decoded bits — only the wall-clock time.
	Parallelism int
}

// DefaultRXConfig mirrors the paper's receiver: 1024-point spectral
// analysis, fundamental plus first harmonic.
func DefaultRXConfig() RXConfig {
	return RXConfig{
		FFTSize:        1024,
		NumHarmonics:   2,
		DecimateFactor: 8,
		MinBitPeriod:   100 * sim.Microsecond,
		HistBins:       48,
		BatchBits:      50,
		CarrierMinZ:    12,
	}
}

// Validate reports configuration errors.
func (c RXConfig) Validate() error {
	if !dsp.IsPowerOfTwo(c.FFTSize) {
		return fmt.Errorf("covert: FFTSize %d not a power of two", c.FFTSize)
	}
	if c.NumHarmonics < 1 {
		return fmt.Errorf("covert: NumHarmonics must be >= 1")
	}
	if c.DecimateFactor < 1 {
		return fmt.Errorf("covert: DecimateFactor must be >= 1")
	}
	if c.MinBitPeriod <= 0 {
		return fmt.Errorf("covert: MinBitPeriod must be positive")
	}
	if c.TrackerTimeConstant < 0 {
		return fmt.Errorf("covert: negative TrackerTimeConstant")
	}
	if c.HistBins < 4 {
		return fmt.Errorf("covert: HistBins must be >= 4")
	}
	if c.BatchBits < 4 {
		return fmt.Errorf("covert: BatchBits must be >= 4")
	}
	if c.CarrierMinZ <= 0 {
		return fmt.Errorf("covert: CarrierMinZ must be positive")
	}
	if c.CarrierRetries < 0 || c.CarrierRetries > 8 {
		return fmt.Errorf("covert: CarrierRetries %d out of range [0,8]", c.CarrierRetries)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("covert: negative Parallelism")
	}
	return nil
}

// Quality is the receiver's structured self-assessment: instead of
// silently returning fewer bits when the capture was damaged, the
// demodulator reports how hard it had to work. Experiments use it to
// correlate injected faults with decoder behavior.
type Quality struct {
	// CarrierZ is the robust z-score of the strongest selected spike
	// over the PSD floor (compared against CarrierMinZ).
	CarrierZ float64
	// Retries is the number of carrier re-acquisition retries consumed
	// before the gate passed (0 = first pass).
	Retries int
	// Resyncs counts batch windows whose local period diverged from
	// the global estimate and were re-locked (Resync mode only).
	Resyncs int
	// BatchPeriods are the per-window signaling-period estimates in
	// seconds (Resync mode only), global or local per the divergence
	// gate — the trace of how the symbol period walked.
	BatchPeriods []float64
	// BatchConfidence is, per window, the fraction of inter-start
	// distances within 10% of the period grid actually used — a
	// per-batch decoding confidence in [0, 1].
	BatchConfidence []float64
}

// Demod holds the receiver's intermediate traces and the decoded bits.
// The intermediates are retained because the paper's figures (4-7) are
// exactly these signals.
type Demod struct {
	// CarrierFound reports whether the capture contained VRM spikes.
	CarrierFound bool
	// Offsets are the baseband frequencies (Hz) summed in the Eq. (1)
	// acquisition.
	Offsets []float64
	// Y is the decimated acquisition trace.
	Y []float64
	// DT is the seconds-per-sample of Y (and Conv).
	DT float64
	// Conv is the final edge-detection convolution trace (Fig. 5).
	Conv []float64
	// Starts are the detected (and gap-filled) bit start indices in Y.
	Starts []int
	// RawDistances are the inter-start distances (seconds) before gap
	// filling — the Fig. 6 pulse-width sample set.
	RawDistances []float64
	// SignalingTime is the estimated per-bit duration (seconds): the
	// median of RawDistances.
	SignalingTime float64
	// Inserted counts synthetic starts added by gap filling.
	Inserted int
	// Powers are the per-bit average powers (Eq. 2), and Threshold the
	// bimodal decision threshold (Fig. 7).
	Powers    []float64
	Threshold float64
	// Bits is the decoded on-air bit sequence.
	Bits []byte
	// Quality is the receiver's self-assessment (carrier margin,
	// retries, resyncs, per-batch confidence).
	Quality Quality
}

// Carrier is the outcome of the receiver's carrier search: the Eq. (1)
// frequency set, the spike's robust z-score over the PSD floor, the
// re-acquisition retries consumed, and whether the gate passed. The
// field values mirror exactly what Demodulate leaves in a Demod — on a
// failed search, Offsets and Z still carry the first pass so the caller
// can report how close the capture came.
type Carrier struct {
	Offsets []float64
	Z       float64
	Retries int
	Found   bool
}

// SearchCarrier runs the receiver's step-1 carrier search over an
// already-computed Welch PSD (one value per FFT bin, fftSize ==
// cfg.FFTSize). It is the seam the streaming receiver shares with
// Demodulate: both paths make identical gate decisions because both run
// this exact function over bit-identical PSDs.
func SearchCarrier(psd []float64, sampleRate, centerFreqHz float64, cfg RXConfig) Carrier {
	var car Carrier
	var spikePower float64
	car.Offsets, spikePower = selectOffsetsWiden(psd, sampleRate, centerFreqHz, cfg, 0)
	floor := dsp.Median(psd)
	sigma := 1.4826 * dsp.MAD(psd)
	if sigma <= 0 {
		return car
	}
	car.Z = (spikePower - floor) / sigma
	if car.Z < cfg.CarrierMinZ {
		// Bounded re-acquisition: a gain step or saturation burst can
		// smear the spike below the gate on the first look. Each retry
		// admits more candidate peaks at tighter spacing and relaxes
		// the gate by 25%, so a genuinely dead capture still fails
		// every step while a damaged-but-live one re-locks.
		for r := 1; r <= cfg.CarrierRetries; r++ {
			offsets, spike := selectOffsetsWiden(psd, sampleRate, centerFreqHz, cfg, r)
			z := (spike - floor) / sigma
			if z >= cfg.CarrierMinZ*math.Pow(0.75, float64(r)) {
				car.Offsets, car.Z, car.Retries = offsets, z, r
				car.Found = true
				return car
			}
		}
		return car
	}
	car.Found = true
	return car
}

// AcquisitionDecay returns the resonator decay factor Demodulate
// derives from the config — the streaming receiver must run its
// resonators with the identical constant to reproduce the batch trace.
func AcquisitionDecay(cfg RXConfig, sampleRate float64) float64 {
	tc := cfg.TrackerTimeConstant
	if tc == 0 {
		// A third of the shortest bit period: fast enough to keep bit
		// edges sharp, narrow enough to reject interferers a few tens
		// of kHz away from the tracked spikes.
		tc = cfg.MinBitPeriod / 3
	}
	return dsp.DecayForTimeConstant(tc.Seconds(), sampleRate)
}

// Demodulate runs the full §IV-B pipeline over a capture.
func Demodulate(cap *sdr.Capture, cfg RXConfig) *Demod {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Demod{}
	if len(cap.IQ) < 4*cfg.FFTSize {
		return d
	}

	// 1. Locate the VRM spikes and confirm a carrier is present.
	// The Welch average shrinks the per-bin noise spread by the square
	// root of the segment count, so even a spike well under twice the
	// floor can be decisive; a robust z-score captures that.
	eng := dsp.NewEngine(cfg.Parallelism)
	psd := eng.WelchPSD(cap.IQ, cfg.FFTSize)
	car := SearchCarrier(psd, cap.SampleRate, cap.CenterFreqHz, cfg)
	d.Offsets = car.Offsets
	d.Quality.CarrierZ = car.Z
	d.Quality.Retries = car.Retries
	if !car.Found {
		return d
	}
	d.CarrierFound = true

	// 2. Acquisition (Eq. 1): per-sample summed spike amplitude,
	// tracked at the exact spike frequencies.
	norm := make([]float64, len(d.Offsets))
	for i, f := range d.Offsets {
		norm[i] = f / cap.SampleRate
	}
	decay := AcquisitionDecay(cfg, cap.SampleRate)
	y := dsp.ResonatorBank(cap.IQ, norm, decay)
	d.Y = dsp.DecimateMean(y, cfg.DecimateFactor)
	d.DT = float64(cfg.DecimateFactor) / cap.SampleRate

	return DemodulateTrace(d, cfg)
}

// DemodulateTrace runs the back half of the §IV-B pipeline — edge
// detection, period estimation, gap filling, per-bit power, and
// thresholding (steps 3–6) — over a Demod whose acquisition trace is
// already in place: CarrierFound, Offsets, Quality.{CarrierZ,Retries},
// Y, and DT must be set. It is the seam the streaming receiver shares
// with Demodulate: given a bit-identical trace, it produces
// bit-identical decoded bits, so streaming ≡ batch reduces to proving
// the traces equal. The Demod is finished in place and returned.
func DemodulateTrace(d *Demod, cfg RXConfig) *Demod {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	eng := dsp.NewEngine(cfg.Parallelism)

	// 3. First-pass edge detection sized by the minimum plausible bit
	// period (Fig. 5).
	minPeriod := int(cfg.MinBitPeriod.Seconds() / d.DT)
	if minPeriod < 2 {
		minPeriod = 2
	}
	starts := detectEdges(d.Y, evenAtLeast(minPeriod/2), minPeriod, cfg, nil)
	if len(starts) < 3 {
		d.Conv = eng.Convolve(d.Y, dsp.EdgeKernel(evenAtLeast(minPeriod/2)))
		return d
	}

	// 4. Signaling time: median inter-start distance (Fig. 6).
	for i := 1; i < len(starts); i++ {
		d.RawDistances = append(d.RawDistances, float64(starts[i]-starts[i-1])*d.DT)
	}
	period := estimatePeriod(d.RawDistances, d.DT, minPeriod)
	d.SignalingTime = float64(period) * d.DT

	// 5. Second pass with the kernel matched to the measured period,
	// then gap filling at multiples of the signaling time.
	d.Conv = eng.Convolve(d.Y, dsp.EdgeKernel(evenAtLeast(period/2)))
	starts = detectEdges(d.Y, evenAtLeast(period/2), period*6/10, cfg, d.Conv)
	if len(starts) < 2 {
		return d
	}
	// Refresh the distance statistics from the better pass.
	d.RawDistances = d.RawDistances[:0]
	for i := 1; i < len(starts); i++ {
		d.RawDistances = append(d.RawDistances, float64(starts[i]-starts[i-1])*d.DT)
	}
	period = estimatePeriod(d.RawDistances, d.DT, minPeriod)
	d.SignalingTime = float64(period) * d.DT
	starts = clipToActive(starts, d.Y, period)
	if len(starts) == 0 {
		return d
	}
	if cfg.Resync {
		d.Starts, d.Inserted = fillGapsResync(starts, period,
			zeroPeriod(starts, period), minPeriod, cfg.BatchBits, d.DT, &d.Quality)
	} else {
		d.Starts, d.Inserted = fillGaps(starts, period, zeroPeriod(starts, period))
	}

	// 6. Per-bit average power (Eq. 2) and bimodal threshold (Fig. 7).
	// With return-to-zero coding a '1' is active only during the first
	// half of its period, so the power window covers the leading half
	// of each interval (skipping the shared start-of-bit housekeeping
	// burst); that roughly doubles the 1/0 contrast of the statistic.
	bounds := append(append([]int(nil), d.Starts...), d.Starts[len(d.Starts)-1]+period)
	for i := 0; i+1 < len(bounds); i++ {
		a, b := bounds[i], bounds[i+1]
		skip := (b - a) / 10
		a += skip
		if half := bounds[i] + (bounds[i+1]-bounds[i])/2; half < b {
			b = half
		}
		if b > len(d.Y) {
			b = len(d.Y)
		}
		if a >= b {
			d.Powers = append(d.Powers, 0)
			continue
		}
		d.Powers = append(d.Powers, dsp.MeanPower(d.Y[a:b]))
	}
	d.Threshold = dsp.BimodalThreshold(d.Powers, cfg.HistBins)
	d.Bits = make([]byte, len(d.Powers))
	for i, p := range d.Powers {
		if p > d.Threshold {
			d.Bits[i] = 1
		}
	}
	return d
}

// HintedOffsets returns the Eq. (1) frequency set the receiver would
// select at the given re-acquisition widening level using only the
// cfg.ExpectedF0 hint — no PSD required. ok is false when the receiver
// would instead fall back to the blind PSD peak search (no hint
// configured, or no harmonic lands in the usable band): the streaming
// receiver needs the offsets before the capture ends, so blind
// selection — which depends on the full capture's PSD — is outside its
// contract.
func HintedOffsets(cfg RXConfig, sampleRate, centerFreqHz float64, widen int) ([]float64, bool) {
	offsets := hintedOffsets(cfg, sampleRate, centerFreqHz, cfg.NumHarmonics+widen)
	return offsets, len(offsets) > 0
}

// hintedOffsets collects up to numHarmonics in-band harmonics of the
// ExpectedF0 hint as baseband offsets; empty without a usable hint.
func hintedOffsets(cfg RXConfig, sampleRate, centerFreqHz float64, numHarmonics int) []float64 {
	usable := 0.46 * sampleRate
	var offsets []float64
	if cfg.ExpectedF0 > 0 {
		for k := 1; len(offsets) < numHarmonics && float64(k)*cfg.ExpectedF0 < sampleRate*3; k++ {
			off := float64(k)*cfg.ExpectedF0 - centerFreqHz
			if math.Abs(off) <= usable {
				offsets = append(offsets, off)
			}
		}
	}
	return offsets
}

// selectOffsetsWiden chooses the Eq. (1) frequency set S as exact
// baseband offsets, plus the strongest selected spike's PSD power for
// carrier detection. With an f0 hint the offsets are the harmonics that
// fall in band; otherwise the strongest well-separated PSD peaks are
// used. Narrowband interferers near a spike are attenuated by the
// acquisition tracker's own selectivity, so no candidate is excluded
// here; slower signaling (a narrower tracker) is the §IV-C3 remedy when
// the band is polluted. The widen level is the re-acquisition widening:
// each level admits one more candidate spike and halves the minimum
// peak spacing, so a spike displaced or split by mid-capture damage can
// still be found. Level 0 is the exact first-pass search.
func selectOffsetsWiden(psd []float64, sampleRate, centerFreqHz float64, cfg RXConfig, widen int) ([]float64, float64) {
	m := cfg.FFTSize
	numHarmonics := cfg.NumHarmonics + widen
	offsets := hintedOffsets(cfg, sampleRate, centerFreqHz, numHarmonics)
	if len(offsets) == 0 {
		// Blind selection: strongest well-separated PSD peaks,
		// excluding DC.
		work := append([]float64(nil), psd...)
		work[0] = 0
		sep := m / 32 >> widen
		if sep < 2 {
			sep = 2
		}
		peaks := dsp.FindPeaks(work, sep, 0)
		for i := 0; i < len(peaks); i++ {
			for j := i + 1; j < len(peaks); j++ {
				if work[peaks[j]] > work[peaks[i]] {
					peaks[i], peaks[j] = peaks[j], peaks[i]
				}
			}
		}
		if len(peaks) > numHarmonics {
			peaks = peaks[:numHarmonics]
		}
		for _, p := range peaks {
			offsets = append(offsets, dsp.BinFrequency(p, m, sampleRate))
		}
		if len(offsets) == 0 {
			offsets = []float64{0}
		}
	}
	var spike float64
	for _, f := range offsets {
		if p := psd[dsp.FrequencyBin(f, m, sampleRate)]; p > spike {
			spike = p
		}
	}
	return offsets, spike
}

// estimatePeriod turns the inter-start distances into a signaling-period
// estimate (in Y samples). The distances are a mixture: mostly one
// period, plus multiples where weak bit starts were missed and
// sub-period values from spurious edges. Several quantile anchors are
// refined into candidate periods, and the candidate that explains the
// distance set with the smallest fractional residual wins.
func estimatePeriod(distances []float64, dt float64, minPeriod int) int {
	if len(distances) == 0 {
		return minPeriod
	}
	refine := func(p0 float64) float64 {
		ratios := make([]float64, 0, len(distances))
		for _, d := range distances {
			if k := math.Round(d / dt / p0); k >= 1 {
				ratios = append(ratios, d/dt/k)
			}
		}
		if len(ratios) == 0 {
			return p0
		}
		return dsp.Median(ratios)
	}
	score := func(p float64) float64 {
		var sum float64
		for _, d := range distances {
			k := math.Round(d / dt / p)
			if k < 1 {
				k = 1
			}
			sum += math.Abs(d/dt-k*p) / p
		}
		return sum / float64(len(distances))
	}
	best, bestScore := float64(minPeriod), math.Inf(1)
	for _, q := range []float64{0.10, 0.15, 0.25, 0.50} {
		p0 := dsp.Quantile(distances, q) / dt
		if p0 < float64(minPeriod) {
			p0 = float64(minPeriod)
		}
		p := refine(p0)
		if p < float64(minPeriod) {
			continue
		}
		if sc := score(p); sc < bestScore {
			best, bestScore = p, sc
		}
	}
	return int(best)
}

// EstimatePeriod exposes the receiver's signaling-period estimator (see
// estimatePeriod) for running trackers outside the package: the
// streaming receiver re-estimates the period over each window of newly
// decoded inter-start distances with exactly the estimator the batch
// path and the Resync gap filler use.
func EstimatePeriod(distances []float64, dt float64, minPeriod int) int {
	return estimatePeriod(distances, dt, minPeriod)
}

// TrackWindow runs the §IV-B2 per-batch statistics over one window of
// the acquisition trace as a standalone primitive: edge detection with
// the minimum-period kernel, the period estimate from the inter-start
// distances, and the fraction of distances within 10% of the period
// grid (the same confidence Quality.BatchConfidence records). It is the
// running-tracker form of the Resync path's per-window re-estimation —
// the streaming receiver calls it on recent trace windows to publish a
// live period/confidence without waiting for Finalize. edges reports
// the detected starts; a window with fewer than 3 yields (0, 0, edges).
func TrackWindow(y []float64, dt float64, cfg RXConfig) (periodS, confidence float64, edges int) {
	minPeriod := int(cfg.MinBitPeriod.Seconds() / dt)
	if minPeriod < 2 {
		minPeriod = 2
	}
	starts := detectEdges(y, evenAtLeast(minPeriod/2), minPeriod, cfg, nil)
	if len(starts) < 3 {
		return 0, 0, len(starts)
	}
	distances := make([]float64, 0, len(starts)-1)
	for i := 1; i < len(starts); i++ {
		distances = append(distances, float64(starts[i]-starts[i-1])*dt)
	}
	period := estimatePeriod(distances, dt, minPeriod)
	fit := 0
	for _, g := range distances {
		gs := g / dt
		if k := math.Round(gs / float64(period)); k >= 1 && math.Abs(gs-k*float64(period))/float64(period) < 0.1 {
			fit++
		}
	}
	return float64(period) * dt, float64(fit) / float64(len(distances)), len(starts)
}

// detectEdges convolves the acquisition trace with a rising-edge kernel
// and returns the locations of prominent positive peaks. Thresholding is
// done per batch (§IV-B2) with a global gate so silent stretches do not
// produce phantom edges. A precomputed convolution may be passed in.
func detectEdges(y []float64, kernelLen, minDist int, cfg RXConfig, conv []float64) []int {
	if conv == nil {
		conv = dsp.NewEngine(cfg.Parallelism).Convolve(y, dsp.EdgeKernel(kernelLen))
	}
	peaks := dsp.FindPeaks(conv, minDist, 0)
	if len(peaks) == 0 {
		return nil
	}
	// Global gate: a fraction of the near-maximum response.
	gate := 0.2 * dsp.Quantile(conv, 0.99)
	batch := cfg.BatchBits * minDist
	if batch < minDist {
		batch = minDist
	}
	var out []int
	for _, p := range peaks {
		batchStart := (p / batch) * batch
		batchEnd := batchStart + batch
		if batchEnd > len(conv) {
			batchEnd = len(conv)
		}
		localMax, _ := dsp.Max(conv[batchStart:batchEnd])
		thr := 0.25 * localMax
		if thr < gate {
			thr = gate
		}
		if conv[p] >= thr {
			out = append(out, p)
		}
	}
	return out
}

// maxFillGap bounds gap filling: gaps longer than this many signaling
// periods mark the end of the transmission even if stray edges follow.
const maxFillGap = 12

// zeroPeriod estimates the per-bit duration INSIDE multi-bit gaps.
// Gaps longer than one period consist of consecutive '0' bits (their
// start edges are the weak ones that go undetected), and a '0' bit's
// duration differs systematically from the overall median period; using
// the wrong period to subdivide a long run of zeros drops or invents a
// bit every few runs. The estimate is the median per-period length of
// the multi-period gaps themselves, falling back to the global period.
func zeroPeriod(starts []int, period int) int {
	var perBit []float64
	for i := 1; i < len(starts); i++ {
		gap := starts[i] - starts[i-1]
		k := int(math.Round(float64(gap) / float64(period)))
		if k >= 2 && k <= maxFillGap {
			perBit = append(perBit, float64(gap)/float64(k))
		}
	}
	if len(perBit) < 3 {
		return period
	}
	return int(dsp.Median(perBit))
}

// clipToActive trims detected starts to the stretch of the acquisition
// trace that actually contains transmission activity. '1' bits light the
// trace up at least every few periods, so the active region is bounded
// by the first and last samples whose level clearly exceeds the idle
// floor; edges outside it come from unrelated system activity.
func clipToActive(starts []int, y []float64, period int) []int {
	if len(starts) == 0 || len(y) == 0 {
		return nil
	}
	// Sustained activity: a transmission keeps the 2-period windowed
	// mean high (a '1' bit is active half its period), while isolated
	// interrupt bursts in the surrounding silence do not.
	smooth := dsp.MovingAverage(y, 2*period)
	lo := dsp.Quantile(smooth, 0.05)
	hi := dsp.Quantile(smooth, 0.95)
	thr := lo + 0.3*(hi-lo)
	first, last := -1, -1
	for i, v := range smooth {
		if v > thr {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return nil
	}
	first -= 2 * period
	last += period
	var out []int
	for _, s := range starts {
		if s >= first && s <= last {
			out = append(out, s)
		}
	}
	return out
}

// fillGaps inserts synthetic starts wherever consecutive detected starts
// are separated by a near-multiple of the signaling period — the
// paper's recovery for bit starts whose edges were too weak or were
// suppressed by other system activity. Single-period decisions use the
// global period; multi-period subdivision uses the zero-bit period (see
// zeroPeriod). A gap beyond maxFillGap periods truncates the stream.
func fillGaps(starts []int, period, zPeriod int) (filled []int, inserted int) {
	if len(starts) == 0 {
		return nil, 0
	}
	if zPeriod <= 0 {
		zPeriod = period
	}
	filled = append(filled, starts[0])
	for i := 1; i < len(starts); i++ {
		gap := starts[i] - starts[i-1]
		k := int(math.Round(float64(gap) / float64(period)))
		if k >= 2 {
			k = int(math.Round(float64(gap) / float64(zPeriod)))
			if k < 2 {
				k = 2
			}
		}
		if k > maxFillGap {
			return filled, inserted
		}
		for j := 1; j < k; j++ {
			filled = append(filled, starts[i-1]+j*gap/k)
			inserted++
		}
		filled = append(filled, starts[i])
	}
	return filled, inserted
}

// resyncDivergence is the relative gate for per-batch period re-lock:
// a window's local estimate must differ from the global period by more
// than this fraction before it replaces it. The gate is what keeps the
// Resync path bit-identical to the plain path on a clean capture —
// healthy windows never diverge this far — while a clock that drifted
// tens of ppm over a long capture does.
const resyncDivergence = 0.02

// fillGapsResync is fillGaps with §IV-B2 batch processing applied to
// the period itself: estimatePeriod is re-run on every batchBits-wide
// window of inter-start distances, and a window whose local period
// diverges from the global one re-locks gap filling onto its own
// estimate. Per-window periods and grid-fit confidences are recorded
// in q.
func fillGapsResync(starts []int, period, zPeriod, minPeriod, batchBits int, dt float64, q *Quality) (filled []int, inserted int) {
	if len(starts) == 0 {
		return nil, 0
	}
	if zPeriod <= 0 {
		zPeriod = period
	}
	filled = append(filled, starts[0])
	nDist := len(starts) - 1
	for lo := 0; lo < nDist; lo += batchBits {
		hi := lo + batchBits
		if hi > nDist {
			hi = nDist
		}
		local := make([]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			local = append(local, float64(starts[i+1]-starts[i])*dt)
		}
		used := period
		if p := estimatePeriod(local, dt, minPeriod); math.Abs(float64(p-period))/float64(period) > resyncDivergence {
			used = p
			q.Resyncs++
		}
		// The zero-bit period scales with the window's period: both
		// walk together under clock drift.
		zUsed := int(math.Round(float64(zPeriod) * float64(used) / float64(period)))
		if zUsed <= 0 {
			zUsed = used
		}
		fit := 0
		for _, g := range local {
			gs := g / dt
			if k := math.Round(gs / float64(used)); k >= 1 && math.Abs(gs-k*float64(used))/float64(used) < 0.1 {
				fit++
			}
		}
		q.BatchPeriods = append(q.BatchPeriods, float64(used)*dt)
		q.BatchConfidence = append(q.BatchConfidence, float64(fit)/float64(len(local)))

		for i := lo; i < hi; i++ {
			gap := starts[i+1] - starts[i]
			k := int(math.Round(float64(gap) / float64(used)))
			if k >= 2 {
				k = int(math.Round(float64(gap) / float64(zUsed)))
				if k < 2 {
					k = 2
				}
			}
			if k > maxFillGap {
				return filled, inserted
			}
			for j := 1; j < k; j++ {
				filled = append(filled, starts[i]+j*gap/k)
				inserted++
			}
			filled = append(filled, starts[i+1])
		}
	}
	return filled, inserted
}

func evenAtLeast(n int) int {
	if n < 2 {
		return 2
	}
	if n%2 != 0 {
		n++
	}
	return n
}

// FindPreamble locates the best match of the expected preamble in the
// decoded bit stream by minimum Hamming distance, tolerating up to
// maxErrors bit flips. It returns the index just past the preamble and
// whether a match was found.
func FindPreamble(bits, preamble []byte, maxErrors int) (payloadStart int, ok bool) {
	if len(preamble) == 0 || len(bits) < len(preamble) {
		return 0, false
	}
	bestIdx, bestDist := -1, maxErrors+1
	for i := 0; i+len(preamble) <= len(bits); i++ {
		dist := 0
		for j := range preamble {
			if bits[i+j] != preamble[j] {
				dist++
				if dist > maxErrors {
					break
				}
			}
		}
		if dist < bestDist {
			bestDist, bestIdx = dist, i
		}
	}
	if bestIdx < 0 {
		return 0, false
	}
	return bestIdx + len(preamble), true
}

// RecoverPayload synchronizes on the preamble and decodes the payload
// with the frame's error-control code. ok is false when the preamble
// cannot be located. For interleaved frames, prefer RecoverPayloadN.
func (d *Demod) RecoverPayload(cfg TXConfig) (payload []byte, corrections int, ok bool) {
	start := 0
	if len(cfg.Preamble) > 0 {
		var found bool
		start, found = FindPreamble(d.Bits, cfg.Preamble, len(cfg.Preamble)/4)
		if !found {
			return nil, 0, false
		}
	}
	payload, corrections = DecodePayload(d.Bits[start:], cfg)
	return payload, corrections, true
}

// RecoverPayloadN is RecoverPayload for a payload of known size (bits):
// required when interleaving is enabled, and more precise in general
// because trailing postamble/stray bits are excluded before decoding.
func (d *Demod) RecoverPayloadN(cfg TXConfig, payloadBits int) (payload []byte, corrections int, ok bool) {
	start := 0
	if len(cfg.Preamble) > 0 {
		var found bool
		start, found = FindPreamble(d.Bits, cfg.Preamble, len(cfg.Preamble)/4)
		if !found {
			return nil, 0, false
		}
	}
	payload, corrections = DecodePayloadN(d.Bits[start:], cfg, payloadBits)
	return payload, corrections, true
}
