package covert

import (
	"math"
	"testing"
)

// The self-healing knobs must be strict no-ops when off and bounded,
// deterministic helpers when on. These tests drive the carrier
// re-acquisition retry loop and the per-batch resync path directly.

// TestCarrierRetryRecovers raises CarrierMinZ just above the capture's
// actual spike z-score so the first acquisition pass fails, then checks
// that one relaxation step (0.75 per retry) re-locks the carrier and is
// reported in the quality block.
func TestCarrierRetryRecovers(t *testing.T) {
	cap, txCfg, _, prof := buildCapture(24, 9)
	cfg := DefaultRXConfig()
	cfg.ExpectedF0 = prof.VRM.SwitchingFreqHz
	cfg.MinBitPeriod = txCfg.BitPeriod() / 2

	base := Demodulate(cap, cfg)
	if !base.CarrierFound {
		t.Fatal("baseline capture has no carrier")
	}
	z := base.Quality.CarrierZ
	if base.Quality.Retries != 0 {
		t.Fatalf("baseline used %d retries", base.Quality.Retries)
	}

	// A threshold 10% above the measured z fails the first pass but is
	// within one 0.75 relaxation step.
	cfg.CarrierMinZ = z * 1.1

	strict := Demodulate(cap, cfg)
	if strict.CarrierFound {
		t.Fatalf("carrier found at MinZ %.1f > z %.1f with no retries", cfg.CarrierMinZ, z)
	}

	cfg.CarrierRetries = 2
	healed := Demodulate(cap, cfg)
	if !healed.CarrierFound {
		t.Fatal("retry loop did not re-acquire the carrier")
	}
	if healed.Quality.Retries < 1 || healed.Quality.Retries > 2 {
		t.Fatalf("retries = %d, want 1..2", healed.Quality.Retries)
	}
	if len(healed.Bits) != len(base.Bits) {
		t.Fatalf("healed decode has %d bits, baseline %d", len(healed.Bits), len(base.Bits))
	}
}

// TestCarrierRetryBounded: with no carrier present at all, every retry
// must be consumed and the demodulator must still give up cleanly.
func TestCarrierRetryBounded(t *testing.T) {
	cap, txCfg, _, prof := buildCapture(16, 11)
	cfg := DefaultRXConfig()
	cfg.ExpectedF0 = prof.VRM.SwitchingFreqHz
	cfg.MinBitPeriod = txCfg.BitPeriod() / 2
	cfg.CarrierMinZ = math.Inf(1) // unreachable even after relaxation
	cfg.CarrierRetries = 4

	d := Demodulate(cap, cfg)
	if d.CarrierFound {
		t.Fatal("carrier found against an infinite threshold")
	}
	if len(d.Bits) != 0 {
		t.Fatalf("decoded %d bits without a carrier", len(d.Bits))
	}
}

// TestResyncQualityReport: with Resync on, the quality block must carry
// one period estimate and one confidence value per batch, the periods
// must be near the transmitter's bit period, and the clean-capture
// decode must stay bit-identical to the plain path.
func TestResyncQualityReport(t *testing.T) {
	cap, txCfg, _, prof := buildCapture(32, 5)
	cfg := DefaultRXConfig()
	cfg.ExpectedF0 = prof.VRM.SwitchingFreqHz
	cfg.MinBitPeriod = txCfg.BitPeriod() / 2

	plain := Demodulate(cap, cfg)
	cfg.Resync = true
	resync := Demodulate(cap, cfg)

	if len(plain.Bits) != len(resync.Bits) {
		t.Fatalf("resync changed clean decode length: %d vs %d", len(resync.Bits), len(plain.Bits))
	}
	for i := range plain.Bits {
		if plain.Bits[i] != resync.Bits[i] {
			t.Fatalf("resync changed clean bit %d", i)
		}
	}
	q := resync.Quality
	if len(q.BatchPeriods) == 0 || len(q.BatchPeriods) != len(q.BatchConfidence) {
		t.Fatalf("quality report sizes: %d periods, %d confidences",
			len(q.BatchPeriods), len(q.BatchConfidence))
	}
	want := txCfg.BitPeriod().Seconds()
	for i, p := range q.BatchPeriods {
		if p < want/2 || p > want*2 {
			t.Fatalf("batch %d period %.3gs, transmitter bit period %.3gs", i, p, want)
		}
		if q.BatchConfidence[i] < 0 || q.BatchConfidence[i] > 1 {
			t.Fatalf("batch %d confidence %v out of [0,1]", i, q.BatchConfidence[i])
		}
	}
	if resync.Quality.Resyncs != 0 {
		t.Fatalf("clean capture triggered %d resyncs", resync.Quality.Resyncs)
	}
}
