package covert

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"pmuleak/internal/emchannel"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sdr"
	"pmuleak/internal/sim"
	"pmuleak/internal/xrand"
)

// These tests feed the demodulator hostile inputs: pure noise, tones,
// impulses, DC, clipped garbage, and a target under interrupt storms.
// The invariant everywhere is graceful behaviour — no panics, no
// confident bit streams conjured from nothing.

func demod(iq []complex128) *Demod {
	cap := &sdr.Capture{IQ: iq, SampleRate: 2.4e6, CenterFreqHz: 1.455e6}
	return Demodulate(cap, DefaultRXConfig())
}

func TestDemodulatePureDC(t *testing.T) {
	iq := make([]complex128, 1<<15)
	for i := range iq {
		iq[i] = 0.3
	}
	d := demod(iq)
	if len(d.Bits) > 16 {
		t.Fatalf("decoded %d bits from DC", len(d.Bits))
	}
}

func TestDemodulateSingleCleanTone(t *testing.T) {
	// An unmodulated carrier is a real VRM with constant load: carrier
	// found, but no bit stream (no edges).
	iq := make([]complex128, 1<<15)
	for i := range iq {
		iq[i] = 0.2 * cmplx.Exp(complex(0, 2*math.Pi*0.1*float64(i)))
	}
	d := demod(iq)
	if !d.CarrierFound {
		t.Fatal("clean carrier not detected")
	}
	if len(d.Bits) > 16 {
		t.Fatalf("decoded %d bits from an unmodulated carrier", len(d.Bits))
	}
}

func TestDemodulateImpulses(t *testing.T) {
	rng := xrand.New(1)
	iq := make([]complex128, 1<<15)
	for i := 0; i < 40; i++ {
		iq[rng.Intn(len(iq))] = complex(rng.Normal(0, 5), rng.Normal(0, 5))
	}
	d := demod(iq)
	if len(d.Bits) > 40 {
		t.Fatalf("decoded %d bits from impulses", len(d.Bits))
	}
}

func TestDemodulateRandomCapturesNeverPanic(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 4096 + rng.Intn(1<<14)
		iq := make([]complex128, n)
		switch rng.Intn(4) {
		case 0: // white noise
			for i := range iq {
				iq[i] = complex(rng.Normal(0, 0.2), rng.Normal(0, 0.2))
			}
		case 1: // gated tone with random gating
			f0 := rng.Uniform(-0.4, 0.4)
			on := true
			for i := range iq {
				if rng.Bool(0.001) {
					on = !on
				}
				if on {
					iq[i] = 0.3 * cmplx.Exp(complex(0, 2*math.Pi*f0*float64(i)))
				}
			}
		case 2: // clipped garbage
			for i := range iq {
				iq[i] = complex(float64(rng.Intn(3)-1), float64(rng.Intn(3)-1))
			}
		default: // near silence
			for i := range iq {
				iq[i] = complex(rng.Normal(0, 1e-6), rng.Normal(0, 1e-6))
			}
		}
		d := demod(iq)
		// Invariants that must hold for ANY input.
		if len(d.Powers) != len(d.Bits) {
			return false
		}
		if len(d.Starts) > 0 && len(d.Bits) != len(d.Starts) {
			return false
		}
		for i := 1; i < len(d.Starts); i++ {
			if d.Starts[i] <= d.Starts[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLinkSurvivesInterruptStorm(t *testing.T) {
	// A target with 20x the normal interrupt load: the channel may
	// slow down, but the demodulator must not produce garbage bits
	// that alignment counts as a huge insertion burst.
	prof := laptop.Reference()
	prof.Kernel.InterruptRate = 2000
	prof.Kernel.InterruptWorkMax = 80 * sim.Microsecond
	m, d, _, _ := runLink(t, prof, 64, 31, emchannel.DefaultConfig(), sdr.CoilProbe)
	if len(d.Bits) == 0 {
		t.Fatal("storm killed the demodulator outright")
	}
	if m.ErrorRate() > 0.5 {
		t.Fatalf("error rate %v under storm; decoder degraded to garbage", m.ErrorRate())
	}
}

func TestLinkSurvivesExtremeNoise(t *testing.T) {
	// Noise 100x the default: the carrier drowns. The correct outcome
	// is a dead channel (no bits), not a hallucinated stream.
	chanCfg := emchannel.DefaultConfig()
	chanCfg.NoiseSigma = 0.4
	chanCfg.DistanceM = 2.5
	m, d, _, _ := runLink(t, laptop.Reference(), 64, 32, chanCfg, sdr.LoopLA390)
	if d.CarrierFound && len(d.Bits) > 0 && m.ErrorRate() < 0.1 {
		t.Fatalf("confident decode (%v) through impossible noise", m.ErrorRate())
	}
}

func TestLinkZeroPayloadFrame(t *testing.T) {
	// A frame of only preamble+postamble still round-trips.
	prof := laptop.Reference()
	sys := laptop.NewSystem(prof, 33)
	defer sys.Close()
	txCfg := DefaultTXConfig(prof.DefaultSleepPeriod)
	frame := EncodeFrame(nil, txCfg)
	run := SpawnTransmitter(sys.Kernel(), frame, txCfg)
	horizon := AirtimeEstimate(frame, txCfg, prof.Kernel)
	sys.Run(horizon)
	plan := sys.DefaultPlan()
	field := sys.Emanations(horizon, plan)
	rng := xrand.New(34)
	field = emchannel.Apply(field, plan.SampleRate, emchannel.DefaultConfig(), rng)
	cap := sdr.Acquire(field, plan.CenterFreqHz, sdr.DefaultConfig(), rng.Fork())
	rxCfg := DefaultRXConfig()
	rxCfg.ExpectedF0 = prof.VRM.SwitchingFreqHz
	rxCfg.MinBitPeriod = txCfg.BitPeriod() / 2
	d := Demodulate(cap, rxCfg)
	m := Measure(run, d, txCfg, nil)
	if m.ErrorRate() > 0.15 {
		t.Fatalf("empty-payload frame error rate %v", m.ErrorRate())
	}
}

func TestAllLaptopsDecodeNearField(t *testing.T) {
	// Every Table I profile must sustain the channel at its default
	// rate — the paper's "exists on all systems we evaluated".
	for i, prof := range laptop.Profiles() {
		m, d, _, _ := runLink(t, prof, 48, int64(40+i), emchannel.DefaultConfig(), sdr.CoilProbe)
		if len(d.Bits) == 0 {
			t.Errorf("%s: no bits", prof.Model)
			continue
		}
		if m.ErrorRate() > 0.08 {
			t.Errorf("%s: error rate %v", prof.Model, m.ErrorRate())
		}
	}
}
