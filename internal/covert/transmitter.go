// Package covert implements the paper's covert channel: a user-level
// transmitter that encodes bits in the processor's power-state
// transitions (Fig. 3), and a receiver that recovers them from the VRM's
// EM emanations using the batch-processing pipeline of §IV-B —
// multi-harmonic acquisition (Eq. 1), derivative-convolution edge
// detection (Fig. 5), median signaling-time estimation (Fig. 6),
// bimodal-threshold power labeling (Fig. 7, Eq. 2) — plus the channel
// metrics of §IV-C (BER, TR, insertion and deletion probabilities).
package covert

import (
	"fmt"

	"pmuleak/internal/ecc"
	"pmuleak/internal/kernel"
	"pmuleak/internal/sim"
)

// Coding selects the transmitter's error-control code.
type Coding int

const (
	// CodeNone sends raw bits.
	CodeNone Coding = iota
	// CodeParity appends an even-parity bit per block (detection only).
	CodeParity
	// CodeHamming74 uses the Hamming(7,4) code: minimum distance 3,
	// corrects one error per codeword — the paper's choice.
	CodeHamming74
)

// String names the coding.
func (c Coding) String() string {
	switch c {
	case CodeNone:
		return "none"
	case CodeParity:
		return "parity"
	case CodeHamming74:
		return "hamming74"
	}
	return fmt.Sprintf("Coding(%d)", int(c))
}

// DefaultPreamble is the synchronization header: interleaved ones and
// zeros for symbol-timing acquisition, a run of zeros, then a start
// marker — the structure §IV-C1 describes.
func DefaultPreamble() []byte {
	var p []byte
	for i := 0; i < 8; i++ {
		p = append(p, 1, 0)
	}
	p = append(p, 0, 0, 0, 0)
	p = append(p, 1, 1, 0, 1) // start-of-frame marker
	return p
}

// TXConfig parameterizes the transmitter program.
type TXConfig struct {
	// LoopPeriod is the busy-loop duration encoding a '1'
	// (LOOP_PERIOD in Fig. 3).
	LoopPeriod sim.Time
	// SleepPeriod is the base idle duration (SLEEP_PERIOD in Fig. 3):
	// a '1' sleeps this long after its busy loop, a '0' sleeps twice
	// this long (return-to-zero coding).
	SleepPeriod sim.Time
	// Preamble is prepended to every frame. Nil means no preamble.
	Preamble []byte
	// Postamble is appended after the coded payload. Ending the frame
	// with '1' bits gives the receiver a strong final edge, so a
	// payload that happens to end in zeros is still fully delimited.
	Postamble []byte
	// Code is the error-control code applied to the payload.
	Code Coding
	// ParityBlock is the data-block size for CodeParity.
	ParityBlock int
	// InterleaveDepth, when > 1, block-interleaves the coded payload
	// so a burst of channel errors spreads across that many codewords
	// (each then within the Hamming code's correction budget).
	InterleaveDepth int
}

// DefaultTXConfig returns the paper's setup for a given sleep period:
// LOOP_PERIOD chosen so active and idle periods have almost equal
// lengths, Hamming coding, standard preamble.
func DefaultTXConfig(sleep sim.Time) TXConfig {
	return TXConfig{
		LoopPeriod:  sleep,
		SleepPeriod: sleep,
		Preamble:    DefaultPreamble(),
		Postamble:   []byte{1, 1},
		Code:        CodeHamming74,
		ParityBlock: 8,
	}
}

// Validate reports configuration errors.
func (c TXConfig) Validate() error {
	if c.LoopPeriod <= 0 {
		return fmt.Errorf("covert: LoopPeriod must be positive")
	}
	if c.SleepPeriod <= 0 {
		return fmt.Errorf("covert: SleepPeriod must be positive")
	}
	if c.Code == CodeParity && c.ParityBlock <= 0 {
		return fmt.Errorf("covert: ParityBlock must be positive for parity coding")
	}
	if c.InterleaveDepth < 0 {
		return fmt.Errorf("covert: negative InterleaveDepth")
	}
	for _, b := range c.Preamble {
		if b > 1 {
			return fmt.Errorf("covert: preamble contains non-bit value %d", b)
		}
	}
	for _, b := range c.Postamble {
		if b > 1 {
			return fmt.Errorf("covert: postamble contains non-bit value %d", b)
		}
	}
	return nil
}

// BitPeriod estimates the nominal duration of one channel bit: both
// symbols take about LOOP+SLEEP (for '1') or 2*SLEEP (for '0').
func (c TXConfig) BitPeriod() sim.Time {
	one := c.LoopPeriod + c.SleepPeriod
	zero := 2 * c.SleepPeriod
	return (one + zero) / 2
}

// EncodeFrame converts payload bits into the on-air bit sequence:
// error-control coding applied, preamble prepended.
func EncodeFrame(payload []byte, cfg TXConfig) []byte {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	var coded []byte
	switch cfg.Code {
	case CodeParity:
		coded = ecc.EvenParity(payload, cfg.ParityBlock)
	case CodeHamming74:
		coded = (ecc.Hamming74{}).Encode(payload)
	default:
		coded = append([]byte(nil), payload...)
	}
	if cfg.InterleaveDepth > 1 {
		coded = ecc.Interleave(coded, cfg.InterleaveDepth)
	}
	frame := make([]byte, 0, len(cfg.Preamble)+len(coded)+len(cfg.Postamble))
	frame = append(frame, cfg.Preamble...)
	frame = append(frame, coded...)
	frame = append(frame, cfg.Postamble...)
	return frame
}

// CodedLen returns the number of coded bits EncodeFrame produces for a
// payload of the given bit count, before interleaving and framing.
func (c TXConfig) CodedLen(payloadBits int) int {
	switch c.Code {
	case CodeParity:
		blocks := (payloadBits + c.ParityBlock - 1) / c.ParityBlock
		return payloadBits + blocks
	case CodeHamming74:
		return (payloadBits + 3) / 4 * 7
	default:
		return payloadBits
	}
}

// InterleavedLen returns the on-air payload length (coded bits after
// interleaver padding) for a payload of the given bit count.
func (c TXConfig) InterleavedLen(payloadBits int) int {
	n := c.CodedLen(payloadBits)
	if c.InterleaveDepth > 1 {
		cols := (n + c.InterleaveDepth - 1) / c.InterleaveDepth
		return cols * c.InterleaveDepth
	}
	return n
}

// DecodePayload reverses EncodeFrame's coding stage (the preamble must
// already be stripped). corrections reports corrected (Hamming) or
// detected-bad (parity) blocks. With interleaving enabled the coded
// length must be known to recover the column geometry — use
// DecodePayloadN and state the payload size; this variant assumes the
// input is exactly the on-air payload with no trailing bits.
func DecodePayload(coded []byte, cfg TXConfig) (payload []byte, corrections int) {
	if cfg.InterleaveDepth > 1 {
		n := len(coded) / cfg.InterleaveDepth * cfg.InterleaveDepth
		coded = ecc.Deinterleave(coded[:n], cfg.InterleaveDepth, n)
	}
	return decodeCoded(coded, cfg)
}

// DecodePayloadN decodes a received bit stream that may carry trailing
// bits (postamble, stray edges) after the payload, given the expected
// payload size in bits. It trims or zero-pads the stream to the exact
// on-air length before deinterleaving, which interleaved frames require.
func DecodePayloadN(coded []byte, cfg TXConfig, payloadBits int) (payload []byte, corrections int) {
	want := cfg.InterleavedLen(payloadBits)
	trimmed := make([]byte, want)
	copy(trimmed, coded)
	if cfg.InterleaveDepth > 1 {
		trimmed = ecc.Deinterleave(trimmed, cfg.InterleaveDepth, cfg.CodedLen(payloadBits))
	}
	payload, corrections = decodeCoded(trimmed, cfg)
	if len(payload) > payloadBits {
		payload = payload[:payloadBits]
	}
	return payload, corrections
}

func decodeCoded(coded []byte, cfg TXConfig) (payload []byte, corrections int) {
	switch cfg.Code {
	case CodeParity:
		return ecc.CheckEvenParity(coded, cfg.ParityBlock)
	case CodeHamming74:
		return (ecc.Hamming74{}).Decode(coded)
	default:
		return append([]byte(nil), coded...), 0
	}
}

// TxRun tracks one transmission: the on-air bits and when they went out.
type TxRun struct {
	Bits  []byte
	Start sim.Time
	// End is valid once the transmitter process has finished (i.e.
	// after the kernel has been Run past the frame's airtime).
	End sim.Time
}

// Airtime is the wall-clock (simulated) duration of the transmission.
func (r *TxRun) Airtime() sim.Time { return r.End - r.Start }

// BitRate is the achieved channel rate in bits per second.
func (r *TxRun) BitRate() float64 {
	if r.End <= r.Start {
		return 0
	}
	return float64(len(r.Bits)) / r.Airtime().Seconds()
}

// SpawnTransmitter starts the Fig. 3 transmitter program on the target
// kernel, sending the given on-air bits (from EncodeFrame).
//
// The body is a direct translation of the paper's C code: for each '1'
// bit keep the processor active for LOOP_PERIOD then usleep
// SLEEP_PERIOD (return-to-zero coding); for each '0' only usleep twice
// SLEEP_PERIOD. The per-bit housekeeping (reading the next bit) is the
// syscall overhead the kernel model charges around every sleep.
func SpawnTransmitter(k *kernel.Kernel, frameBits []byte, cfg TXConfig) *TxRun {
	return spawnTransmitter(k, -1, frameBits, cfg)
}

// SpawnTransmitterOn is SpawnTransmitter pinned to a specific core.
func SpawnTransmitterOn(k *kernel.Kernel, core int, frameBits []byte, cfg TXConfig) *TxRun {
	return spawnTransmitter(k, core, frameBits, cfg)
}

func spawnTransmitter(k *kernel.Kernel, core int, frameBits []byte, cfg TXConfig) *TxRun {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	run := &TxRun{Bits: frameBits}
	body := func(p *kernel.Proc) {
		run.Start = p.Now()
		for _, bit := range frameBits {
			if bit == 1 {
				p.Busy(cfg.LoopPeriod) // keeping the processor active
				p.Sleep(cfg.SleepPeriod)
			} else {
				p.Sleep(cfg.SleepPeriod * 2)
			}
		}
		run.End = p.Now()
	}
	if core >= 0 {
		k.SpawnOn("transmitter", core, body)
	} else {
		k.Spawn("transmitter", body)
	}
	return run
}

// AirtimeEstimate returns a safe upper bound on the simulated time
// needed to transmit the frame, including per-bit OS overheads. Use it
// to size the capture horizon.
func AirtimeEstimate(frameBits []byte, cfg TXConfig, kcfg kernel.Config) sim.Time {
	perBitOverhead := 2*kcfg.SyscallOverhead + kcfg.WakeupLatency +
		4*kcfg.WakeupJitterSigma + kcfg.TimerGranularity
	var total sim.Time
	for _, bit := range frameBits {
		if bit == 1 {
			total += cfg.LoopPeriod + cfg.SleepPeriod
		} else {
			total += 2 * cfg.SleepPeriod
		}
		total += perBitOverhead
	}
	// Headroom for scheduler interference.
	return total + total/10 + sim.Millisecond
}
