// Package defense implements and evaluates the countermeasures §VI of
// the paper proposes against the PMU/VRM side channel:
//
//   - disabling P- and C-states during sensitive computation (the
//     system-level mitigation, at a significant energy cost);
//   - adding randomness to the PMU/VRM operation (spread-spectrum
//     dithering of the switching clock, the circuit-level mitigation);
//   - traditional EMI shielding (reducing the SNR at the attacker).
//
// Each countermeasure mutates a core.Testbed; Evaluate then reruns the
// paper's two attacks against the hardened target and reports how much
// of each attack survives.
package defense

import (
	"fmt"

	"pmuleak/internal/core"
	"pmuleak/internal/laptop"
	"pmuleak/internal/power"
	"pmuleak/internal/sdr"
	"pmuleak/internal/sim"
	"pmuleak/internal/sweep"
	"pmuleak/internal/workload"
)

// Countermeasure is one §VI mitigation.
type Countermeasure struct {
	Name        string
	Description string
	// Cost summarizes the deployment downside the paper notes.
	Cost string
	// Apply hardens the testbed's target or path.
	Apply func(tb *core.Testbed)
}

// DisablePowerStates locks the processor at nominal voltage/frequency:
// with no power-state transitions the VRM never changes mode and the
// modulation disappears (§III showed the carrier becomes constant).
func DisablePowerStates() Countermeasure {
	return Countermeasure{
		Name:        "disable P/C-states",
		Description: "BIOS locks the processor at nominal V/f during sensitive computation",
		Cost:        "large energy and thermal overhead; needs privileged configuration",
		Apply: func(tb *core.Testbed) {
			tb.Profile.Power.PStatesEnabled = false
			tb.Profile.Power.CStatesEnabled = false
		},
	}
}

// SpreadSpectrumVRM dithers the VRM switching clock across the given
// bandwidth, smearing the spectral spikes the receiver locks onto.
func SpreadSpectrumVRM(hz float64) Countermeasure {
	return Countermeasure{
		Name:        fmt.Sprintf("VRM dither ±%.0f kHz", hz/1e3),
		Description: "spread-spectrum modulation of the switching frequency",
		Cost:        "circuit change; slightly worse regulation ripple",
		Apply: func(tb *core.Testbed) {
			tb.Profile.VRMDitherHz = hz
		},
	}
}

// Shielding adds EMI shielding around the VRM with the given insertion
// loss.
func Shielding(db float64) Countermeasure {
	return Countermeasure{
		Name:        fmt.Sprintf("EMI shield %.0f dB", db),
		Description: "conductive enclosure around the regulator",
		Cost:        "mechanical/thermal redesign; adds weight",
		Apply: func(tb *core.Testbed) {
			tb.Channel.WallLossDB += db
		},
	}
}

// Standard returns the §VI countermeasure set at representative
// strengths.
func Standard() []Countermeasure {
	return []Countermeasure{
		DisablePowerStates(),
		SpreadSpectrumVRM(60e3),
		Shielding(30),
	}
}

// Outcome reports how the attacks fare against one hardened target.
type Outcome struct {
	Name string
	// CovertRate is the highest transmission rate (bits/s) that met
	// the error target against this target; zero when no rate did.
	CovertRate float64
	// CovertErrorRate is the channel error rate at that rate (1.0
	// means the channel is dead).
	CovertErrorRate float64
	// CovertAlive reports whether any usable rate exists.
	CovertAlive bool
	// KeylogTPR is the keystroke detection rate against the hardened
	// target.
	KeylogTPR float64
	// KeylogFPR is the corresponding false-positive rate.
	KeylogFPR float64
	// EnergyX is the defense's energy cost as a multiple of the
	// undefended baseline under a light workload.
	EnergyX float64
}

// String renders the outcome.
func (o Outcome) String() string {
	status := "DEAD"
	if o.CovertAlive {
		status = fmt.Sprintf("%4.0f bps (err %.1e)", o.CovertRate, o.CovertErrorRate)
	}
	return fmt.Sprintf("%-22s covert: %-20s keylog: TPR=%5.1f%% FPR=%4.1f%%  energy %.1fx",
		o.Name, status, 100*o.KeylogTPR, 100*o.KeylogFPR, o.EnergyX)
}

// Evaluate reruns the covert channel and the keylogger against the
// baseline target and against each countermeasure. The attacker sits
// 2 m away with the loop antenna — the paper's realistic placement for
// both attacks (Table III / Table IV) — so residual leakage has to beat
// a real noise floor rather than the near-field's enormous SNR.
func Evaluate(cms []Countermeasure, seed int64, payloadBits, words int) []Outcome {
	run := func(name string, cm *Countermeasure) Outcome {
		tb := core.NewTestbed(
			core.WithSeed(seed),
			core.WithDistance(2.0),
			core.WithAntenna(sdr.LoopLA390),
		)
		if cm != nil {
			cm.Apply(tb)
		}
		res, ok := tb.RateSearch(1.5e-2, core.CovertConfig{PayloadBits: payloadBits})
		kl := tb.RunKeylog(core.KeylogConfig{Words: words})
		out := Outcome{
			Name:            name,
			CovertErrorRate: 1,
			KeylogTPR:       kl.Char.TPR,
			KeylogFPR:       kl.Char.FPR,
		}
		if ok && res.Demod.CarrierFound && len(res.Demod.Bits) > 0 {
			out.CovertAlive = true
			out.CovertRate = res.TransmitRate
			out.CovertErrorRate = res.ErrorRate()
		}
		return out
	}
	// Baseline and each countermeasure build their own testbeds from the
	// same seed — independent cells on the sweep pool. Cell 0 is the
	// undefended baseline (energy 1x by definition).
	return sweep.Map(1+len(cms), func(i int) Outcome {
		if i == 0 {
			o := run("no defense", nil)
			o.EnergyX = 1
			return o
		}
		cm := cms[i-1]
		o := run(cm.Name, &cm)
		o.EnergyX = EnergyOverhead(cm, seed)
		return o
	})
}

// EnergyOverhead measures the power cost of a countermeasure: the ratio
// of mean package current under a light interactive workload with the
// defense applied versus without. Shielding and dithering are nearly
// free; disabling power management is the §VI trade-off the paper warns
// about ("at significant cost in terms of power-efficiency").
func EnergyOverhead(cm Countermeasure, seed int64) float64 {
	measure := func(apply bool) float64 {
		tb := core.NewTestbed(core.WithSeed(seed))
		if apply {
			cm.Apply(tb)
		}
		sys := laptop.NewSystem(tb.Profile, seed)
		defer sys.Close()
		workload.Bursty(sys.Kernel(), workload.DefaultBursty(), seed+1)
		horizon := 2 * sim.Second
		sys.Run(horizon)
		tr := power.Trace(sys.Kernel().Activity(horizon), horizon, tb.Profile.Power)
		return power.MeanCurrent(tr)
	}
	base := measure(false)
	if base == 0 {
		return 1
	}
	return measure(true) / base
}
