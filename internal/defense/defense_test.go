package defense

import (
	"strings"
	"testing"

	"pmuleak/internal/core"
)

func TestStandardSet(t *testing.T) {
	cms := Standard()
	if len(cms) != 3 {
		t.Fatalf("got %d countermeasures", len(cms))
	}
	for _, cm := range cms {
		if cm.Name == "" || cm.Description == "" || cm.Cost == "" || cm.Apply == nil {
			t.Errorf("countermeasure incomplete: %+v", cm)
		}
	}
}

func TestApplyMutations(t *testing.T) {
	tb := core.NewTestbed()
	DisablePowerStates().Apply(tb)
	if tb.Profile.Power.PStatesEnabled || tb.Profile.Power.CStatesEnabled {
		t.Fatal("power states still enabled")
	}

	tb = core.NewTestbed()
	SpreadSpectrumVRM(50e3).Apply(tb)
	if tb.Profile.VRMDitherHz != 50e3 {
		t.Fatalf("dither = %v", tb.Profile.VRMDitherHz)
	}

	tb = core.NewTestbed()
	base := tb.Channel.WallLossDB
	Shielding(30).Apply(tb)
	if tb.Channel.WallLossDB != base+30 {
		t.Fatalf("wall loss = %v", tb.Channel.WallLossDB)
	}
}

func TestEvaluateBaselineVulnerable(t *testing.T) {
	out := Evaluate(nil, 5, 96, 10)
	if len(out) != 1 {
		t.Fatalf("rows = %d", len(out))
	}
	base := out[0]
	if !base.CovertAlive || base.CovertRate < 500 {
		t.Fatalf("undefended target should be fully exploitable: %+v", base)
	}
	if base.KeylogTPR < 0.9 {
		t.Fatalf("undefended keylog TPR = %v", base.KeylogTPR)
	}
}

func TestDisablingPowerStatesKillsCovertChannel(t *testing.T) {
	out := Evaluate([]Countermeasure{DisablePowerStates()}, 6, 96, 10)
	base, hardened := out[0], out[1]
	if hardened.CovertAlive {
		t.Fatalf("covert channel survived disabled power states: %+v", hardened)
	}
	// Keystroke bursts remain partially visible as residual load
	// modulation on the constant carrier (a finding of this
	// reproduction — see EXPERIMENTS.md), but detection must degrade
	// substantially versus the undefended target.
	if hardened.KeylogTPR > 0.8*base.KeylogTPR {
		t.Fatalf("keylogging barely degraded: TPR %v vs baseline %v",
			hardened.KeylogTPR, base.KeylogTPR)
	}
}

func TestSpreadSpectrumDegradesChannel(t *testing.T) {
	out := Evaluate([]Countermeasure{SpreadSpectrumVRM(60e3)}, 7, 96, 10)
	base, hardened := out[0], out[1]
	// The smeared carrier must at minimum cost the covert channel an
	// order of magnitude in error rate, if it survives at all.
	if hardened.CovertAlive && hardened.CovertErrorRate < 10*base.CovertErrorRate+1e-3 {
		t.Fatalf("dither ineffective: base %v hardened %v",
			base.CovertErrorRate, hardened.CovertErrorRate)
	}
}

func TestShieldingDegradesChannel(t *testing.T) {
	// Shielding only reduces SNR (the paper's caveat); enough of it
	// kills the 2 m attack outright.
	strong := Evaluate([]Countermeasure{Shielding(40)}, 8, 96, 10)[1]
	if strong.CovertAlive {
		t.Fatalf("covert channel survived 80 dB shielding: %+v", strong)
	}
}

func TestOutcomeString(t *testing.T) {
	s := Outcome{Name: "x", CovertAlive: true, CovertRate: 1200,
		CovertErrorRate: 0.01, KeylogTPR: 0.5}.String()
	if !strings.Contains(s, "1200 bps") || !strings.Contains(s, "keylog") {
		t.Fatalf("String = %q", s)
	}
	s = Outcome{Name: "x"}.String()
	if !strings.Contains(s, "DEAD") {
		t.Fatalf("String = %q", s)
	}
}

func TestEnergyOverhead(t *testing.T) {
	// Disabling power management on a mostly-idle machine costs many
	// times the energy; shielding is free.
	disable := EnergyOverhead(DisablePowerStates(), 9)
	if disable < 3 {
		t.Fatalf("disable P/C energy overhead = %vx, want large", disable)
	}
	shield := EnergyOverhead(Shielding(30), 9)
	if shield < 0.95 || shield > 1.05 {
		t.Fatalf("shielding energy overhead = %vx, want ~1", shield)
	}
	dither := EnergyOverhead(SpreadSpectrumVRM(60e3), 9)
	if dither < 0.95 || dither > 1.1 {
		t.Fatalf("dither energy overhead = %vx, want ~1", dither)
	}
}
