package dsp

import "testing"

// Kernel benchmarks, paired so the fused/real-input speedup is measured
// inside one process on one machine: for each workload, path=reference
// is the pre-fusion serial algorithm (kernel switch off; for real
// workloads that includes the pack-to-complex copy the old entry
// points forced on every caller with a real trace) and path=fused is
// the production path. cmd/benchguard enforces the fused/reference
// ratio from this output — ratios survive machine-speed differences,
// absolute nanoseconds do not.

const (
	benchTraceLen = 1 << 17
	benchFFTSize  = 1024
	benchHop      = 256
)

func benchPaths(b *testing.B, run func(b *testing.B)) {
	prev := FusedKernels()
	b.Cleanup(func() { SetFusedKernels(prev) })
	for _, path := range []struct {
		name  string
		fused bool
	}{{"path=reference", false}, {"path=fused", true}} {
		b.Run(path.name, func(b *testing.B) {
			SetFusedKernels(path.fused)
			run(b)
		})
	}
}

func BenchmarkSTFT(b *testing.B) {
	x := randReal(benchTraceLen, 1)
	window := Hann(benchFFTSize)
	e := Engine{Parallelism: 1}
	benchPaths(b, func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.STFTReal(x, benchFFTSize, benchHop, window, 2.4e6)
		}
	})
}

func BenchmarkWelch(b *testing.B) {
	x := randReal(benchTraceLen, 2)
	e := Engine{Parallelism: 1}
	benchPaths(b, func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.WelchPSDReal(x, benchFFTSize)
		}
	})
}

// BenchmarkSTFTComplex measures the fused win on the pipeline's real
// workload shape — complex IQ, where only the gather and stage fusion
// apply, not the real-input halving.
func BenchmarkSTFTComplex(b *testing.B) {
	x := randComplex(benchTraceLen, 3)
	window := Hann(benchFFTSize)
	e := Engine{Parallelism: 1}
	benchPaths(b, func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.STFT(x, benchFFTSize, benchHop, window, 2.4e6)
		}
	})
}

func BenchmarkFFT(b *testing.B) {
	// One op is a batch of transforms: a single 4096-point FFT is tens
	// of microseconds, far too short for the -benchtime 2x CI runs to
	// measure a stable fused/reference ratio.
	const n = 4096
	const batch = 64
	src := randComplex(n, 4)
	buf := make([]complex128, n)
	benchPaths(b, func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				copy(buf, src)
				FFT(buf)
			}
		}
	})
	real := randReal(n, 5)
	dst := make([]complex128, n)
	b.Run("path=rfft", func(b *testing.B) {
		prev := FusedKernels()
		defer SetFusedKernels(prev)
		SetFusedKernels(true)
		plan := PlanFFT(n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				plan.RealTransform(dst, real)
			}
		}
	})
}
