package dsp

// Convolve computes the "same"-size linear convolution of x with kernel
// k: the output has len(x) entries and output[i] is the kernel centered
// at x[i]. Samples beyond the signal edges are treated as zero; an
// empty kernel or signal yields all zeros. This is the single-threaded
// path; Engine.Convolve computes the bit-identical result on a worker
// pool, and Engine.OverlapSave is the FFT-accelerated variant for
// long kernels.
func Convolve(x, k []float64) []float64 {
	out := make([]float64, len(x))
	if len(k) == 0 {
		return out
	}
	convolveRange(out, x, k, 0, len(x))
	return out
}

// convolveRange fills out[lo:hi] with the "same"-size convolution of x
// and k. It is the shared inner loop of the serial and parallel paths:
// because each output sample is an independent dot product evaluated in
// the same order, any partition of [0, len(x)) reproduces the serial
// result bit for bit.
func convolveRange(out, x, k []float64, lo, hi int) {
	half := len(k) / 2
	for i := lo; i < hi; i++ {
		var sum float64
		for j, kv := range k {
			idx := i + j - half
			if idx >= 0 && idx < len(x) {
				sum += x[idx] * kv
			}
		}
		out[i] = sum
	}
}

// EdgeKernel returns the length-l derivative-mimicking kernel the paper
// uses for bit-start detection (§IV-B2): the first half is -1 and the
// second half +1, so convolving it with the acquisition trace peaks at
// sharp rising edges. l must be even and positive.
func EdgeKernel(l int) []float64 {
	if l <= 0 || l%2 != 0 {
		panic("dsp: EdgeKernel length must be positive and even")
	}
	k := make([]float64, l)
	for i := range k {
		if i < l/2 {
			k[i] = -1
		} else {
			k[i] = 1
		}
	}
	return k
}

// BoxcarKernel returns a length-l moving-average kernel (each tap 1/l).
func BoxcarKernel(l int) []float64 {
	if l <= 0 {
		panic("dsp: BoxcarKernel length must be positive")
	}
	k := make([]float64, l)
	for i := range k {
		k[i] = 1 / float64(l)
	}
	return k
}

// MovingAverage smooths x with a window of width w (centered). It is
// equivalent to Convolve(x, BoxcarKernel(w)) but runs in O(n).
func MovingAverage(x []float64, w int) []float64 {
	if w <= 0 {
		panic("dsp: MovingAverage width must be positive")
	}
	out := make([]float64, len(x))
	half := w / 2
	var sum float64
	lo, hi := 0, 0 // current window is x[lo:hi]
	for i := range x {
		wantLo, wantHi := i-half, i-half+w
		if wantLo < 0 {
			wantLo = 0
		}
		if wantHi > len(x) {
			wantHi = len(x)
		}
		for hi < wantHi {
			sum += x[hi]
			hi++
		}
		for lo < wantLo {
			sum -= x[lo]
			lo++
		}
		out[i] = sum / float64(w)
	}
	return out
}

// Decimate keeps every factor-th sample of x, starting with x[0].
func Decimate(x []float64, factor int) []float64 {
	if factor <= 0 {
		panic("dsp: Decimate factor must be positive")
	}
	out := make([]float64, 0, (len(x)+factor-1)/factor)
	for i := 0; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out
}

// DecimateMean reduces x by the given factor, replacing each block with
// its mean. Unlike Decimate it acts as a crude anti-aliasing filter and
// is what the receiver uses before edge detection.
func DecimateMean(x []float64, factor int) []float64 {
	if factor <= 0 {
		panic("dsp: DecimateMean factor must be positive")
	}
	out := make([]float64, 0, (len(x)+factor-1)/factor)
	for i := 0; i < len(x); i += factor {
		end := i + factor
		if end > len(x) {
			end = len(x)
		}
		var sum float64
		for _, v := range x[i:end] {
			sum += v
		}
		out = append(out, sum/float64(end-i))
	}
	return out
}
