package dsp

import (
	"math"
	"testing"
	"testing/quick"

	"pmuleak/internal/xrand"
)

func TestConvolveIdentity(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	got := Convolve(x, []float64{1})
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("identity convolution changed signal: %v", got)
		}
	}
}

func TestConvolveBoxcar(t *testing.T) {
	x := []float64{0, 0, 3, 0, 0}
	got := Convolve(x, []float64{1, 1, 1})
	want := []float64{0, 3, 3, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestConvolveEmptyKernel(t *testing.T) {
	got := Convolve([]float64{1, 2}, nil)
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty kernel should produce zeros, got %v", got)
	}
}

func TestEdgeKernelShape(t *testing.T) {
	k := EdgeKernel(6)
	want := []float64{-1, -1, -1, 1, 1, 1}
	for i := range want {
		if k[i] != want[i] {
			t.Fatalf("EdgeKernel(6) = %v", k)
		}
	}
}

func TestEdgeKernelOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd EdgeKernel did not panic")
		}
	}()
	EdgeKernel(5)
}

func TestEdgeDetectionPeaksAtStep(t *testing.T) {
	// A step at index 50 must produce the convolution maximum there.
	x := make([]float64, 100)
	for i := 50; i < 100; i++ {
		x[i] = 1
	}
	conv := Convolve(x, EdgeKernel(10))
	_, peak := Max(conv)
	if peak < 48 || peak > 52 {
		t.Fatalf("edge peak at %d, want ~50", peak)
	}
}

func TestEdgeDetectionIgnoresFlat(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = 5
	}
	conv := Convolve(x, EdgeKernel(8))
	for i := 10; i < 90; i++ {
		if math.Abs(conv[i]) > 1e-9 {
			t.Fatalf("flat signal produced edge response %v at %d", conv[i], i)
		}
	}
}

func TestMovingAverageMatchesConvolve(t *testing.T) {
	rng := xrand.New(9)
	x := make([]float64, 200)
	for i := range x {
		x[i] = rng.Normal(0, 1)
	}
	for _, w := range []int{1, 3, 7, 10} {
		fast := MovingAverage(x, w)
		slow := Convolve(x, BoxcarKernel(w))
		// They agree exactly away from the edges (edge normalization
		// differs: MovingAverage still divides by w).
		for i := w; i < len(x)-w; i++ {
			if math.Abs(fast[i]-slow[i]) > 1e-9 {
				t.Fatalf("w=%d mismatch at %d: %v vs %v", w, i, fast[i], slow[i])
			}
		}
	}
}

func TestMovingAverageConstant(t *testing.T) {
	x := []float64{2, 2, 2, 2, 2, 2}
	got := MovingAverage(x, 3)
	// Interior points average a full window of 2s.
	for i := 1; i < 5; i++ {
		if !approxEqual(got[i], 2, 1e-12) {
			t.Fatalf("MovingAverage interior = %v", got)
		}
	}
}

func TestDecimate(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6}
	got := Decimate(x, 3)
	want := []float64{0, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("Decimate = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Decimate = %v, want %v", got, want)
		}
	}
}

func TestDecimateMeanBlocks(t *testing.T) {
	x := []float64{1, 3, 5, 7, 9}
	got := DecimateMean(x, 2)
	want := []float64{2, 6, 9} // last block is partial
	if len(got) != len(want) {
		t.Fatalf("DecimateMean = %v", got)
	}
	for i := range want {
		if !approxEqual(got[i], want[i], 1e-12) {
			t.Fatalf("DecimateMean = %v, want %v", got, want)
		}
	}
}

func TestDecimateMeanPreservesMeanProperty(t *testing.T) {
	// Property: for inputs whose length is a multiple of the factor,
	// the mean of the decimated signal equals the mean of the input.
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 24 * (1 + rng.Intn(20))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Normal(0, 10)
		}
		d := DecimateMean(x, 24)
		return math.Abs(Mean(d)-Mean(x)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
