// Package dsp implements the signal-processing primitives the attack
// pipeline needs: FFT and short-time Fourier transforms, window
// functions, convolution, sliding-bin DFTs for the Eq. (1) acquisition,
// peak detection, histograms, robust statistics, and Rayleigh fitting.
//
// Everything is implemented from scratch on the standard library; the
// receiver in the paper was MATLAB, and this package is its Go
// equivalent. Functions operate on plain slices and never retain their
// arguments, so callers are free to reuse buffers.
package dsp
