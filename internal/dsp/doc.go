// Package dsp implements the signal-processing primitives the attack
// pipeline needs: FFT and short-time Fourier transforms, window
// functions, convolution, sliding-bin DFTs for the Eq. (1) acquisition,
// peak detection, histograms, robust statistics, and Rayleigh fitting.
//
// Everything is implemented from scratch on the standard library; the
// receiver in the paper was MATLAB, and this package is its Go
// equivalent. Functions operate on plain slices and never retain their
// arguments, so callers are free to reuse buffers.
//
// # The parallel engine
//
// The hot transforms are available in two forms. The package-level
// functions (FFT, STFT, WelchPSD, Convolve) are single-threaded and
// preserved exactly as the original reference implementation behaved.
// Engine wraps the same transforms with a worker pool sized by its
// Parallelism knob (0 = all CPUs, 1 = serial, n = n goroutines) and a
// per-size FFT plan cache (PlanFFT) that precomputes twiddle factors
// and bit-reversal tables once per transform size.
//
// The engine's defining property is that parallelism never changes
// results: frames, Welch segments, and convolution outputs are
// independent units of identical arithmetic, and the one
// order-sensitive reduction (the Welch segment average) is accumulated
// in segment order after the parallel transforms finish. The
// differential harness in engine_test.go pins this down — every
// parallel output is required to be bit-identical to the serial one.
// The single exception is Engine.OverlapSave, an FFT-accelerated
// convolution whose rounding differs from the direct path at the
// ~1e-15 relative level; decision-making consumers stay on Convolve.
package dsp
