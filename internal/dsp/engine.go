package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"sync"
	"sync/atomic"

	"pmuleak/internal/telemetry"
)

// Engine telemetry: one histogram observation per transform call (never
// per frame — a frame is microseconds, a time.Now pair is not free at
// that granularity) plus counters for the work fanned out. Frame and
// segment totals are derived from the input geometry, so they are
// deterministic for a fixed workload at every Parallelism.
var (
	engSTFTDur      = telemetry.NewHistogram("dsp.engine.stft")
	engWelchDur     = telemetry.NewHistogram("dsp.engine.welch")
	engSTFTFrames   = telemetry.NewCounter("dsp.engine.stft.frames")
	engWelchSegs    = telemetry.NewCounter("dsp.engine.welch.segments")
	engConvolves    = telemetry.NewCounter("dsp.engine.convolve.calls")
	engOverlapSaves = telemetry.NewCounter("dsp.engine.overlapsave.calls")
)

// defaultParallelism is the process-wide worker count used by engines
// whose Parallelism field is zero. Zero here in turn means
// runtime.NumCPU(). Stored atomically so tools can set it while
// pipelines run on other goroutines.
var defaultParallelism atomic.Int32

// SetDefaultParallelism sets the worker count engines with Parallelism
// == 0 resolve to: p == 0 restores the default (all CPUs), p == 1
// forces the serial path everywhere the knob was left on auto, and
// p > 1 pins a specific worker count. Negative values are treated as 0.
func SetDefaultParallelism(p int) {
	if p < 0 {
		p = 0
	}
	defaultParallelism.Store(int32(p))
}

// DefaultParallelism reports the current process-wide default (0 =
// runtime.NumCPU()).
func DefaultParallelism() int { return int(defaultParallelism.Load()) }

// Engine runs the package's frame-oriented transforms — STFT, Welch
// averaging, and matched-filter convolution — across a pool of
// goroutines. The zero value is an auto-sized engine.
//
// Every parallel path is bit-identical to the serial one: frames and
// segments are transformed independently (each frame's FFT is the same
// arithmetic regardless of which worker runs it), and the one
// order-sensitive reduction (Welch's segment average) is accumulated in
// segment order after the transforms complete. Consequently results
// never depend on Parallelism, and an Engine is safe for concurrent use
// from multiple goroutines.
type Engine struct {
	// Parallelism is the worker count: 0 resolves to the process
	// default (normally all CPUs), 1 is the exact legacy serial path,
	// and n > 1 fans work out across n goroutines.
	Parallelism int
}

// NewEngine returns an engine with the given Parallelism knob
// (0 = auto, 1 = serial).
func NewEngine(parallelism int) Engine { return Engine{Parallelism: parallelism} }

// workers resolves the Parallelism knob to a concrete worker count.
func (e Engine) workers() int {
	p := e.Parallelism
	if p == 0 {
		p = DefaultParallelism()
	}
	if p == 0 {
		p = runtime.NumCPU()
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Chunks partitions [0, n) into at most workers() contiguous ranges and
// runs fn on each, concurrently when the engine is parallel. fn must
// not touch indices outside its range; under that contract the result
// is identical to a single fn(0, n) call. It is the building block
// consumers (e.g. the SDR front end) use for element-wise stages.
func (e Engine) Chunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := e.workers()
	if w > n {
		w = n
	}
	if w == 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// STFT computes the same magnitude spectrogram as the package-level
// STFT, fanning frames out across the worker pool. Each worker reuses
// one scratch buffer for all of its frames and writes magnitudes into a
// single preallocated backing array, so the steady state allocates
// nothing per frame.
func (e Engine) STFT(x []complex128, fftSize, hop int, window []float64, sampleRate float64) *Spectrogram {
	stftValidate(fftSize, hop, window)
	s := &Spectrogram{FFTSize: fftSize, Hop: hop, SampleRate: sampleRate}
	frames := 0
	if len(x) >= fftSize {
		frames = (len(x)-fftSize)/hop + 1
	}
	if frames == 0 {
		return s
	}
	defer engSTFTDur.Start().End()
	engSTFTFrames.Add(uint64(frames))
	plan := PlanFFT(fftSize)
	if FusedKernels() {
		e.stftFused(s, x, frames, hop, plan, window)
		return s
	}
	w := e.workers()
	if w > frames {
		w = frames
	}
	if w == 1 {
		buf := make([]complex128, fftSize)
		for f := 0; f < frames; f++ {
			start := f * hop
			copy(buf, x[start:start+fftSize])
			ApplyWindow(buf, window)
			plan.Transform(buf)
			s.Mag = append(s.Mag, Magnitudes(buf))
		}
		return s
	}
	flat := make([]float64, frames*fftSize)
	s.Mag = make([][]float64, frames)
	for f := range s.Mag {
		s.Mag[f] = flat[f*fftSize : (f+1)*fftSize : (f+1)*fftSize]
	}
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			buf := make([]complex128, fftSize)
			for f := wk; f < frames; f += w {
				start := f * hop
				copy(buf, x[start:start+fftSize])
				ApplyWindow(buf, window)
				plan.Transform(buf)
				row := s.Mag[f]
				for i, v := range buf {
					row[i] = cmplx.Abs(v)
				}
			}
		}(wk)
	}
	wg.Wait()
	return s
}

// stftValidate checks the shared STFT argument contract.
func stftValidate(fftSize, hop int, window []float64) {
	if !IsPowerOfTwo(fftSize) {
		panic(fmt.Sprintf("dsp: STFT fftSize %d not a power of two", fftSize))
	}
	if hop <= 0 {
		panic("dsp: STFT hop must be positive")
	}
	if len(window) != fftSize {
		panic("dsp: STFT window length must equal fftSize")
	}
}

// isRealValued reports whether every sample's imaginary part is zero —
// a real capture stored in a complex buffer. The scan aborts at the
// first genuinely complex sample, so IQ captures pay one comparison;
// real-valued traces pay a linear scan and then save half of every
// transform that follows.
func isRealValued(x []complex128) bool {
	for _, v := range x {
		if imag(v) != 0 {
			return false
		}
	}
	return true
}

// mirrorMagRow expands a half-spectrum into a full magnitude row using
// conjugate symmetry: |X[n-k]| equals |X[k]| bit-exactly, because
// cmplx.Abs (math.Hypot) strips both signs before it does arithmetic.
func mirrorMagRow(row []float64, buf []complex128, n int) {
	h := n >> 1
	// Two passes: a forward Hypot loop over the computed half-spectrum,
	// then a pure copy into the mirrored bins — keeping the expensive
	// loop free of the backward-striding second store.
	for k := 0; k <= h && k < n; k++ {
		v := buf[k]
		row[k] = math.Hypot(real(v), imag(v))
	}
	for k := 1; k < h; k++ {
		row[n-k] = row[k]
	}
}

// stftFused fills the spectrogram through the fused kernels: each frame
// is gathered (window multiply + bit-reversal permutation in one pass)
// straight into the paired butterfly stages, and when the capture is
// real-valued the half-spectrum real transform runs instead with the
// magnitude row mirrored. Both variants produce rows bit-identical to
// the reference path's (DESIGN.md §9), so the spectrogram never depends
// on the kernel mode or Parallelism.
func (e Engine) stftFused(s *Spectrogram, x []complex128, frames, hop int, plan *FFTPlan, window []float64) {
	fftSize := plan.Size()
	realIn := isRealValued(x)
	flat := make([]float64, frames*fftSize)
	s.Mag = make([][]float64, frames)
	for f := range s.Mag {
		s.Mag[f] = flat[f*fftSize : (f+1)*fftSize : (f+1)*fftSize]
	}
	w := e.workers()
	if w > frames {
		w = frames
	}
	worker := func(wk int) {
		buf := make([]complex128, fftSize)
		for f := wk; f < frames; f += w {
			frame := x[f*hop : f*hop+fftSize]
			row := s.Mag[f]
			if realIn {
				plan.realHalfComplex(buf, frame, window)
				mirrorMagRow(row, buf, fftSize)
				continue
			}
			plan.windowGather(buf, frame, window, plan.fwd)
			for i, v := range buf {
				row[i] = cmplx.Abs(v)
			}
		}
	}
	if w == 1 {
		worker(0)
		return
	}
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			worker(wk)
		}(wk)
	}
	wg.Wait()
}

// STFTReal computes the magnitude spectrogram of a real-valued signal —
// the native shape of the paper's power traces. It is the real-input
// twin of STFT: with the fused kernels enabled every frame runs the
// half-spectrum real transform (half the butterflies and half the
// magnitude evaluations of the complex path); with them disabled the
// samples are packed into a complex buffer and handed to the reference
// STFT. Both modes produce bit-identical rows.
func (e Engine) STFTReal(x []float64, fftSize, hop int, window []float64, sampleRate float64) *Spectrogram {
	if !FusedKernels() {
		packed := make([]complex128, len(x))
		for i, v := range x {
			packed[i] = complex(v, 0)
		}
		return e.STFT(packed, fftSize, hop, window, sampleRate)
	}
	stftValidate(fftSize, hop, window)
	s := &Spectrogram{FFTSize: fftSize, Hop: hop, SampleRate: sampleRate}
	frames := 0
	if len(x) >= fftSize {
		frames = (len(x)-fftSize)/hop + 1
	}
	if frames == 0 {
		return s
	}
	defer engSTFTDur.Start().End()
	engSTFTFrames.Add(uint64(frames))
	plan := PlanFFT(fftSize)
	flat := make([]float64, frames*fftSize)
	s.Mag = make([][]float64, frames)
	for f := range s.Mag {
		s.Mag[f] = flat[f*fftSize : (f+1)*fftSize : (f+1)*fftSize]
	}
	w := e.workers()
	if w > frames {
		w = frames
	}
	worker := func(wk int) {
		buf := make([]complex128, fftSize)
		for f := wk; f < frames; f += w {
			plan.realHalfFloat(buf, x[f*hop:f*hop+fftSize], window)
			mirrorMagRow(s.Mag[f], buf, fftSize)
		}
	}
	if w == 1 {
		worker(0)
		return s
	}
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			worker(wk)
		}(wk)
	}
	wg.Wait()
	return s
}

// welchBatchFactor bounds the scratch memory of the parallel Welch
// path: per round, workers transform at most workers*welchBatchFactor
// segments before the ordered accumulation drains them.
const welchBatchFactor = 16

// WelchPSD computes the same power spectral density as the
// package-level WelchPSD. Segment transforms run on the worker pool;
// the segment average is then accumulated in segment order, so the
// output is bit-identical to the serial path for every Parallelism.
func (e Engine) WelchPSD(x []complex128, fftSize int) []float64 {
	if !IsPowerOfTwo(fftSize) {
		panic(fmt.Sprintf("dsp: WelchPSD fftSize %d not a power of two", fftSize))
	}
	if fftSize < 2 {
		// fftSize 1 would make the 50%-overlap hop zero; the historical
		// implementation looped forever on it.
		panic("dsp: WelchPSD fftSize must be >= 2")
	}
	window := Hann(fftSize)
	hop := fftSize / 2
	psd := make([]float64, fftSize)
	segments := 0
	if len(x) >= fftSize {
		segments = (len(x)-fftSize)/hop + 1
	}
	if segments == 0 {
		return psd
	}
	defer engWelchDur.Start().End()
	engWelchSegs.Add(uint64(segments))
	plan := PlanFFT(fftSize)
	if FusedKernels() {
		if isRealValued(x) {
			e.welchReal(psd, segments, hop, fftSize, func(buf []complex128, start int) {
				plan.realHalfComplex(buf, x[start:start+fftSize], window)
			})
		} else {
			e.welchFused(psd, x, segments, hop, fftSize, window, plan)
		}
		return psd
	}
	w := e.workers()
	if w > segments {
		w = segments
	}
	if w == 1 {
		buf := make([]complex128, fftSize)
		for seg := 0; seg < segments; seg++ {
			copy(buf, x[seg*hop:seg*hop+fftSize])
			ApplyWindow(buf, window)
			plan.Transform(buf)
			for i, v := range buf {
				re, im := real(v), imag(v)
				psd[i] += re*re + im*im
			}
		}
		for i := range psd {
			psd[i] /= float64(segments)
		}
		return psd
	}
	batch := w * welchBatchFactor
	if batch > segments {
		batch = segments
	}
	flat := make([]float64, batch*fftSize)
	for base := 0; base < segments; base += batch {
		nb := batch
		if base+nb > segments {
			nb = segments - base
		}
		var wg sync.WaitGroup
		for wk := 0; wk < w; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				buf := make([]complex128, fftSize)
				for k := wk; k < nb; k += w {
					start := (base + k) * hop
					copy(buf, x[start:start+fftSize])
					ApplyWindow(buf, window)
					plan.Transform(buf)
					row := flat[k*fftSize : (k+1)*fftSize]
					for i, v := range buf {
						re, im := real(v), imag(v)
						row[i] = re*re + im*im
					}
				}
			}(wk)
		}
		wg.Wait()
		// Ordered accumulation: segment k is always added after
		// segment k-1, exactly as the serial loop does, so the
		// floating-point sum is reproduced bit for bit.
		for k := 0; k < nb; k++ {
			row := flat[k*fftSize : (k+1)*fftSize]
			for i := range psd {
				psd[i] += row[i]
			}
		}
	}
	for i := range psd {
		psd[i] /= float64(segments)
	}
	return psd
}

// WelchPSDReal computes the Welch PSD of a real-valued signal. With the
// fused kernels enabled each segment runs the half-spectrum real
// transform and only bins [0, fftSize/2] are accumulated, the upper
// half being their bit-exact mirror; with them disabled the samples are
// packed into a complex buffer and handed to the reference WelchPSD.
// Both modes produce a bit-identical PSD.
func (e Engine) WelchPSDReal(x []float64, fftSize int) []float64 {
	if !FusedKernels() {
		packed := make([]complex128, len(x))
		for i, v := range x {
			packed[i] = complex(v, 0)
		}
		return e.WelchPSD(packed, fftSize)
	}
	if !IsPowerOfTwo(fftSize) {
		panic(fmt.Sprintf("dsp: WelchPSD fftSize %d not a power of two", fftSize))
	}
	if fftSize < 2 {
		panic("dsp: WelchPSD fftSize must be >= 2")
	}
	window := Hann(fftSize)
	hop := fftSize / 2
	psd := make([]float64, fftSize)
	segments := 0
	if len(x) >= fftSize {
		segments = (len(x)-fftSize)/hop + 1
	}
	if segments == 0 {
		return psd
	}
	defer engWelchDur.Start().End()
	engWelchSegs.Add(uint64(segments))
	plan := PlanFFT(fftSize)
	e.welchReal(psd, segments, hop, fftSize, func(buf []complex128, start int) {
		plan.realHalfFloat(buf, x[start:start+fftSize], window)
	})
	return psd
}

// welchReal accumulates the Welch average over half-spectrum segment
// transforms: gather must leave bins [0, fftSize/2] of segment start's
// windowed transform in buf. Per-segment powers at mirrored bins are
// bit-identical (squares are sign-blind), and segments accumulate in
// segment order exactly as the serial reference does, so averaging the
// half and mirroring at the end reproduces the reference PSD bit for
// bit at every Parallelism.
func (e Engine) welchReal(psd []float64, segments, hop, fftSize int, gather func(buf []complex128, start int)) {
	half := fftSize >> 1
	halfLen := half + 1
	w := e.workers()
	if w > segments {
		w = segments
	}
	if w == 1 {
		buf := make([]complex128, fftSize)
		for seg := 0; seg < segments; seg++ {
			gather(buf, seg*hop)
			for i := 0; i <= half; i++ {
				re, im := real(buf[i]), imag(buf[i])
				psd[i] += re*re + im*im
			}
		}
	} else {
		batch := w * welchBatchFactor
		if batch > segments {
			batch = segments
		}
		flat := make([]float64, batch*halfLen)
		for base := 0; base < segments; base += batch {
			nb := batch
			if base+nb > segments {
				nb = segments - base
			}
			var wg sync.WaitGroup
			for wk := 0; wk < w; wk++ {
				wg.Add(1)
				go func(wk int) {
					defer wg.Done()
					buf := make([]complex128, fftSize)
					for k := wk; k < nb; k += w {
						gather(buf, (base+k)*hop)
						row := flat[k*halfLen : (k+1)*halfLen]
						for i := 0; i <= half; i++ {
							re, im := real(buf[i]), imag(buf[i])
							row[i] = re*re + im*im
						}
					}
				}(wk)
			}
			wg.Wait()
			for k := 0; k < nb; k++ {
				row := flat[k*halfLen : (k+1)*halfLen]
				for i := range row {
					psd[i] += row[i]
				}
			}
		}
	}
	for i := 0; i <= half; i++ {
		psd[i] /= float64(segments)
	}
	for k := 1; k < half; k++ {
		psd[fftSize-k] = psd[k]
	}
}

// welchFused is WelchPSD's fused-kernel path for genuinely complex
// input: the reference segment loop with the copy/window/transform
// passes collapsed into one windowGather per segment. Bit-identical to
// the reference at every Parallelism.
func (e Engine) welchFused(psd []float64, x []complex128, segments, hop, fftSize int, window []float64, plan *FFTPlan) {
	w := e.workers()
	if w > segments {
		w = segments
	}
	if w == 1 {
		buf := make([]complex128, fftSize)
		for seg := 0; seg < segments; seg++ {
			plan.windowGather(buf, x[seg*hop:seg*hop+fftSize], window, plan.fwd)
			for i, v := range buf {
				re, im := real(v), imag(v)
				psd[i] += re*re + im*im
			}
		}
	} else {
		batch := w * welchBatchFactor
		if batch > segments {
			batch = segments
		}
		flat := make([]float64, batch*fftSize)
		for base := 0; base < segments; base += batch {
			nb := batch
			if base+nb > segments {
				nb = segments - base
			}
			var wg sync.WaitGroup
			for wk := 0; wk < w; wk++ {
				wg.Add(1)
				go func(wk int) {
					defer wg.Done()
					buf := make([]complex128, fftSize)
					for k := wk; k < nb; k += w {
						start := (base + k) * hop
						plan.windowGather(buf, x[start:start+fftSize], window, plan.fwd)
						row := flat[k*fftSize : (k+1)*fftSize]
						for i, v := range buf {
							re, im := real(v), imag(v)
							row[i] = re*re + im*im
						}
					}
				}(wk)
			}
			wg.Wait()
			for k := 0; k < nb; k++ {
				row := flat[k*fftSize : (k+1)*fftSize]
				for i := range psd {
					psd[i] += row[i]
				}
			}
		}
	}
	for i := range psd {
		psd[i] /= float64(segments)
	}
}

// Convolve computes the same "same"-size convolution as the
// package-level Convolve, partitioning the output range across the
// worker pool. Each output sample is an independent dot product, so the
// result is bit-identical for every Parallelism.
func (e Engine) Convolve(x, k []float64) []float64 {
	out := make([]float64, len(x))
	if len(k) == 0 || len(x) == 0 {
		return out
	}
	engConvolves.Inc()
	e.Chunks(len(x), func(lo, hi int) { convolveRange(out, x, k, lo, hi) })
	return out
}

// OverlapSave computes the same quantity as Convolve by overlap-save
// FFT block processing: O((n/L)·N log N) instead of O(n·k), a large win
// once the kernel has more than a few dozen taps. Unlike the engine's
// other methods its output is NOT bit-identical to the direct path —
// the transform pair introduces rounding on the order of 1e-15 relative
// to the output scale — which is why the receiver's decision paths stay
// on Convolve and this entry point is for bulk analysis workloads.
func (e Engine) OverlapSave(x, k []float64) []float64 {
	out := make([]float64, len(x))
	if len(k) == 0 || len(x) == 0 {
		return out
	}
	engOverlapSaves.Inc()
	kl := len(k)
	n := NextPowerOfTwo(4 * kl)
	if n < 1024 {
		n = 1024
	}
	if n > NextPowerOfTwo(len(x)+kl) {
		n = NextPowerOfTwo(len(x) + kl)
	}
	blockLen := n - kl + 1 // valid linear-convolution outputs per block
	plan := PlanFFT(n)
	// Kernel spectrum, reversed so the block product computes
	// out[i] = sum_j k[j]*x[i+j-half] (Convolve's indexing).
	kf := make([]complex128, n)
	for j, kv := range k {
		kf[kl-1-j] = complex(kv, 0)
	}
	plan.Transform(kf)
	half := kl / 2
	off := kl - 1 - half
	blocks := (len(x) + blockLen - 1) / blockLen
	w := e.workers()
	if w > blocks {
		w = blocks
	}
	fused := FusedKernels()
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			seg := make([]complex128, n)
			var segRe []float64
			if fused {
				// Blocks are real, so the forward transform can run the
				// half-work real path; the kernel-spectrum product and
				// inverse stay complex.
				segRe = make([]float64, n)
			}
			for b := wk; b < blocks; b += w {
				lo := b * blockLen
				hi := lo + blockLen
				if hi > len(x) {
					hi = len(x)
				}
				// The block's first full-convolution index is lo+off;
				// the segment feeding it starts kl-1 samples earlier.
				base := lo + off - (kl - 1)
				if fused {
					for t := 0; t < n; t++ {
						if idx := base + t; idx >= 0 && idx < len(x) {
							segRe[t] = x[idx]
						} else {
							segRe[t] = 0
						}
					}
					plan.RealTransform(seg, segRe)
				} else {
					for t := 0; t < n; t++ {
						if idx := base + t; idx >= 0 && idx < len(x) {
							seg[t] = complex(x[idx], 0)
						} else {
							seg[t] = 0
						}
					}
					plan.Transform(seg)
				}
				for t := range seg {
					seg[t] *= kf[t]
				}
				plan.InverseTransform(seg)
				for i := lo; i < hi; i++ {
					out[i] = real(seg[i+off-base])
				}
			}
		}(wk)
	}
	wg.Wait()
	return out
}
