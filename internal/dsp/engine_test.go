package dsp

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"pmuleak/internal/xrand"
)

// The differential harness: for every engine entry point, the parallel
// output at P in {2, 4, 8} must be BIT-IDENTICAL to the serial (P=1)
// output, which in turn must be bit-identical to the package-level
// legacy function. The engine promises equality, not closeness — the
// receiver's downstream decisions (peak picking, bimodal thresholds)
// can flip on 1-ulp differences, so anything weaker would make decoded
// payloads depend on the worker count.

var diffParallelisms = []int{2, 4, 8}

func realSignal(n int, seed int64) []float64 {
	rng := xrand.New(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Normal(0, 1)
	}
	return x
}

func TestEngineSTFTDifferential(t *testing.T) {
	cases := []struct {
		sigLen, fftSize, hop int
	}{
		{0, 16, 8},     // empty signal
		{1, 16, 8},     // shorter than one frame
		{15, 16, 8},    // still shorter than one frame
		{16, 16, 16},   // exactly one frame
		{100, 16, 7},   // non-power-of-two signal, awkward hop
		{257, 64, 64},  // non-overlapping frames, trailing remainder
		{1024, 256, 64} /* dense overlap */, {5000, 1, 1}, // degenerate 1-point FFT
		{4096, 1024, 256}, // the Fig. 2 spectrogram shape
	}
	for _, c := range cases {
		x := randComplex(c.sigLen, int64(31+c.sigLen))
		window := Hann(c.fftSize)
		serial := Engine{Parallelism: 1}.STFT(x, c.fftSize, c.hop, window, 2.4e6)
		legacy := STFT(x, c.fftSize, c.hop, window, 2.4e6)
		if len(serial.Mag) != len(legacy.Mag) {
			t.Fatalf("case %+v: serial engine %d frames, legacy %d", c, len(serial.Mag), len(legacy.Mag))
		}
		for f := range legacy.Mag {
			floatBitEqual(t, fmt.Sprintf("case %+v serial-vs-legacy frame %d", c, f),
				serial.Mag[f], legacy.Mag[f])
		}
		for _, p := range diffParallelisms {
			par := Engine{Parallelism: p}.STFT(x, c.fftSize, c.hop, window, 2.4e6)
			if len(par.Mag) != len(serial.Mag) {
				t.Fatalf("case %+v P=%d: %d frames, want %d", c, p, len(par.Mag), len(serial.Mag))
			}
			for f := range serial.Mag {
				floatBitEqual(t, fmt.Sprintf("case %+v P=%d frame %d", c, p, f),
					par.Mag[f], serial.Mag[f])
			}
			if par.FFTSize != serial.FFTSize || par.Hop != serial.Hop || par.SampleRate != serial.SampleRate {
				t.Fatalf("case %+v P=%d: metadata differs", c, p)
			}
		}
	}
}

func TestEngineWelchPSDDifferential(t *testing.T) {
	cases := []struct {
		sigLen, fftSize int
	}{
		{0, 16},    // empty
		{15, 16},   // shorter than one segment
		{16, 16},   // exactly one segment
		{100, 16},  // partial trailing segment dropped
		{1023, 64}, // many segments, non-power-of-two signal
		{4096, 1024},
		{10000, 64}, // enough segments to need several parallel batches
		{5000, 2},   // smallest legal segment size
	}
	for _, c := range cases {
		x := randComplex(c.sigLen, int64(57+c.sigLen))
		serial := Engine{Parallelism: 1}.WelchPSD(x, c.fftSize)
		floatBitEqual(t, fmt.Sprintf("case %+v serial-vs-legacy", c),
			serial, WelchPSD(x, c.fftSize))
		for _, p := range diffParallelisms {
			par := Engine{Parallelism: p}.WelchPSD(x, c.fftSize)
			floatBitEqual(t, fmt.Sprintf("case %+v P=%d", c, p), par, serial)
		}
	}
}

func TestEngineConvolveDifferential(t *testing.T) {
	xLens := []int{0, 1, 5, 100, 1000, 4097}
	kLens := []int{0, 1, 2, 7, 64, 129}
	for _, xl := range xLens {
		for _, kl := range kLens {
			x := realSignal(xl, int64(xl+kl))
			k := realSignal(kl, int64(xl-kl+1000))
			serial := Engine{Parallelism: 1}.Convolve(x, k)
			floatBitEqual(t, fmt.Sprintf("x=%d k=%d serial-vs-legacy", xl, kl),
				serial, Convolve(x, k))
			for _, p := range diffParallelisms {
				par := Engine{Parallelism: p}.Convolve(x, k)
				floatBitEqual(t, fmt.Sprintf("x=%d k=%d P=%d", xl, kl, p), par, serial)
			}
		}
	}
}

// TestEngineAutoMatchesSerial pins the knob semantics: Parallelism 0
// (auto) must also reproduce the serial result bit for bit, whatever
// worker count it resolves to.
func TestEngineAutoMatchesSerial(t *testing.T) {
	x := randComplex(5000, 3)
	window := Hann(128)
	auto := Engine{}.STFT(x, 128, 32, window, 1e6)
	serial := Engine{Parallelism: 1}.STFT(x, 128, 32, window, 1e6)
	for f := range serial.Mag {
		floatBitEqual(t, fmt.Sprintf("auto frame %d", f), auto.Mag[f], serial.Mag[f])
	}
	floatBitEqual(t, "auto WelchPSD", Engine{}.WelchPSD(x, 256), Engine{Parallelism: 1}.WelchPSD(x, 256))
}

func TestSetDefaultParallelism(t *testing.T) {
	defer SetDefaultParallelism(0)
	SetDefaultParallelism(3)
	if DefaultParallelism() != 3 {
		t.Fatalf("DefaultParallelism = %d", DefaultParallelism())
	}
	if w := (Engine{}).workers(); w != 3 {
		t.Fatalf("auto engine resolved to %d workers, want 3", w)
	}
	if w := (Engine{Parallelism: 1}).workers(); w != 1 {
		t.Fatalf("explicit serial engine resolved to %d workers", w)
	}
	SetDefaultParallelism(-5)
	if DefaultParallelism() != 0 {
		t.Fatal("negative default not clamped to 0")
	}
}

// TestEngineOverlapSaveMatchesConvolve checks the FFT-accelerated path
// against the direct convolution. Overlap-save is the one engine path
// that is NOT bit-exact (the transform pair rounds differently), so the
// comparison uses a tolerance scaled to the worst-case output
// magnitude, ||k||_1 * max|x|.
func TestEngineOverlapSaveMatchesConvolve(t *testing.T) {
	xLens := []int{1, 50, 1000, 5000}
	kLens := []int{1, 2, 7, 64, 129, 501}
	for _, xl := range xLens {
		for _, kl := range kLens {
			x := realSignal(xl, int64(3*xl+kl))
			k := realSignal(kl, int64(xl+7*kl))
			want := Convolve(x, k)
			var k1, xMax float64
			for _, v := range k {
				k1 += math.Abs(v)
			}
			for _, v := range x {
				if a := math.Abs(v); a > xMax {
					xMax = a
				}
			}
			tol := 1e-12 * (k1*xMax + 1)
			for _, p := range []int{1, 4} {
				got := Engine{Parallelism: p}.OverlapSave(x, k)
				if len(got) != len(want) {
					t.Fatalf("x=%d k=%d P=%d: length %d != %d", xl, kl, p, len(got), len(want))
				}
				for i := range want {
					if math.Abs(got[i]-want[i]) > tol {
						t.Fatalf("x=%d k=%d P=%d: sample %d: %v != %v (tol %g)",
							xl, kl, p, i, got[i], want[i], tol)
					}
				}
			}
		}
	}
}

// TestEngineConcurrentUse shares one engine between goroutines running
// mixed workloads; every result must match the baseline computed up
// front. Run under -race this proves the engine itself carries no
// mutable state and the per-call worker pools do not interfere.
func TestEngineConcurrentUse(t *testing.T) {
	eng := Engine{Parallelism: 4}
	x := randComplex(6000, 11)
	window := Hann(256)
	baseSTFT := eng.STFT(x, 256, 64, window, 1e6)
	basePSD := eng.WelchPSD(x, 512)
	kernel := EdgeKernel(32)
	re := realSignal(6000, 12)
	baseConv := eng.Convolve(re, kernel)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				s := eng.STFT(x, 256, 64, window, 1e6)
				for f := range baseSTFT.Mag {
					for i := range baseSTFT.Mag[f] {
						if s.Mag[f][i] != baseSTFT.Mag[f][i] {
							errs <- fmt.Errorf("goroutine %d: STFT frame %d bin %d differs", g, f, i)
							return
						}
					}
				}
				for i, v := range eng.WelchPSD(x, 512) {
					if v != basePSD[i] {
						errs <- fmt.Errorf("goroutine %d: PSD bin %d differs", g, i)
						return
					}
				}
				for i, v := range eng.Convolve(re, kernel) {
					if v != baseConv[i] {
						errs <- fmt.Errorf("goroutine %d: conv sample %d differs", g, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestEngineChunksCoversRangeOnce(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 7, 100} {
			covered := make([]int32, n)
			var mu sync.Mutex
			Engine{Parallelism: p}.Chunks(n, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					covered[i]++
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("P=%d n=%d: index %d covered %d times", p, n, i, c)
				}
			}
		}
	}
}

func TestEngineSTFTPanicsMatchLegacy(t *testing.T) {
	x := randComplex(64, 1)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("non-power-of-two fftSize", func() {
		Engine{Parallelism: 4}.STFT(x, 12, 4, make([]float64, 12), 1e6)
	})
	mustPanic("non-positive hop", func() {
		Engine{Parallelism: 4}.STFT(x, 16, 0, Hann(16), 1e6)
	})
	mustPanic("window length mismatch", func() {
		Engine{Parallelism: 4}.STFT(x, 16, 8, Hann(8), 1e6)
	})
	mustPanic("WelchPSD non-power-of-two", func() {
		Engine{Parallelism: 4}.WelchPSD(x, 12)
	})
	// fftSize 1 used to hang the legacy implementation (hop 0); the
	// contract is now an explicit panic.
	mustPanic("WelchPSD fftSize 1", func() {
		Engine{Parallelism: 1}.WelchPSD(x, 1)
	})
}
