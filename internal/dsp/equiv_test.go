package dsp

import (
	"fmt"
	"math"
	"testing"
)

// This file is the engine-level half of the kernel equivalence suite:
// every consumer-visible transform output — spectrogram rows, Welch
// PSDs, overlap-save convolutions — is compared between the fused
// kernels and the reference serial path, across sizes, hops, input
// shapes (complex, real-in-complex, real), and parallelism levels. The
// magnitude/power outputs are held to Float64bits identity; raw
// spectra and overlap-save outputs to value identity (== — the fused
// kernels may flip the sign of a zero, never a value).

// referenceSTFT computes the spectrogram through the reference serial
// path regardless of the process-wide kernel switch.
func referenceSTFT(x []complex128, fftSize, hop int, window []float64) *Spectrogram {
	prev := FusedKernels()
	SetFusedKernels(false)
	defer SetFusedKernels(prev)
	return Engine{Parallelism: 1}.STFT(x, fftSize, hop, window, 2.4e6)
}

func referenceWelch(x []complex128, fftSize int) []float64 {
	prev := FusedKernels()
	SetFusedKernels(false)
	defer SetFusedKernels(prev)
	return Engine{Parallelism: 1}.WelchPSD(x, fftSize)
}

// realInComplex packs a real signal into a complex buffer, the shape a
// real capture takes inside the IQ pipeline.
func realInComplex(x []float64) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	return out
}

func equivParallelisms() []int { return []int{1, 2, 4, 8} }

// TestFusedSTFTEquivalence sweeps the STFT surface: for every size/hop
// geometry and input shape, the fused kernels at every parallelism
// produce rows bit-identical to the reference serial path, through
// both the complex entry point (including its real-input
// auto-detection) and the real entry point.
func TestFusedSTFTEquivalence(t *testing.T) {
	prev := FusedKernels()
	defer SetFusedKernels(prev)
	geoms := []struct{ fftSize, hop, length int }{
		{2, 2, 64},
		{8, 8, 300},
		{8, 3, 300},
		{64, 16, 2048},
		{256, 64, 4096},
		{1024, 256, 8192},
		{1024, 1024, 1024}, // exactly one frame
		{1024, 256, 1000},  // shorter than one frame: zero frames
	}
	for _, g := range geoms {
		window := Hann(g.fftSize)
		cplx := randComplex(g.length, int64(g.length)+1)
		realSig := randReal(g.length, int64(g.length)+2)
		packed := realInComplex(realSig)
		wantCplx := referenceSTFT(cplx, g.fftSize, g.hop, window)
		wantReal := referenceSTFT(packed, g.fftSize, g.hop, window)
		for _, fused := range []bool{false, true} {
			SetFusedKernels(fused)
			for _, par := range equivParallelisms() {
				e := Engine{Parallelism: par}
				label := fmt.Sprintf("fft=%d hop=%d len=%d fused=%v par=%d",
					g.fftSize, g.hop, g.length, fused, par)

				got := e.STFT(cplx, g.fftSize, g.hop, window, 2.4e6)
				compareSpectrograms(t, "STFT(complex) "+label, got, wantCplx)

				got = e.STFT(packed, g.fftSize, g.hop, window, 2.4e6)
				compareSpectrograms(t, "STFT(real-in-complex) "+label, got, wantReal)

				got = e.STFTReal(realSig, g.fftSize, g.hop, window, 2.4e6)
				compareSpectrograms(t, "STFTReal "+label, got, wantReal)
			}
		}
	}
}

func compareSpectrograms(t *testing.T, label string, got, want *Spectrogram) {
	t.Helper()
	if got.Frames() != want.Frames() {
		t.Fatalf("%s: %d frames, want %d", label, got.Frames(), want.Frames())
	}
	for f := range got.Mag {
		floatBitEqual(t, fmt.Sprintf("%s frame %d", label, f), got.Mag[f], want.Mag[f])
	}
}

// TestFusedWelchEquivalence does the same sweep for Welch PSDs.
func TestFusedWelchEquivalence(t *testing.T) {
	prev := FusedKernels()
	defer SetFusedKernels(prev)
	geoms := []struct{ fftSize, length int }{
		{2, 64},
		{8, 300},
		{64, 2048},
		{1024, 1 << 14},
		{1024, 1024},     // exactly one segment
		{1024, 1000},     // shorter than one segment: all zeros
		{256, 256 + 128}, // exactly two 50%-overlapped segments
	}
	for _, g := range geoms {
		cplx := randComplex(g.length, int64(g.length)+3)
		realSig := randReal(g.length, int64(g.length)+4)
		packed := realInComplex(realSig)
		wantCplx := referenceWelch(cplx, g.fftSize)
		wantReal := referenceWelch(packed, g.fftSize)
		for _, fused := range []bool{false, true} {
			SetFusedKernels(fused)
			for _, par := range equivParallelisms() {
				e := Engine{Parallelism: par}
				label := fmt.Sprintf("fft=%d len=%d fused=%v par=%d", g.fftSize, g.length, fused, par)
				floatBitEqual(t, "WelchPSD(complex) "+label, e.WelchPSD(cplx, g.fftSize), wantCplx)
				floatBitEqual(t, "WelchPSD(real-in-complex) "+label, e.WelchPSD(packed, g.fftSize), wantReal)
				floatBitEqual(t, "WelchPSDReal "+label, e.WelchPSDReal(realSig, g.fftSize), wantReal)
			}
		}
	}
}

// TestFusedOverlapSaveEquivalence: overlap-save stays tolerance-gated
// against direct convolution (it reorders a transform pair, documented
// in the method comment), but between kernel modes it must agree
// value-exactly — the real-input forward transform changes no value.
func TestFusedOverlapSaveEquivalence(t *testing.T) {
	prev := FusedKernels()
	defer SetFusedKernels(prev)
	x := randReal(5000, 61)
	k := randReal(64, 62)
	SetFusedKernels(false)
	want := Engine{Parallelism: 1}.OverlapSave(x, k)
	for _, fused := range []bool{false, true} {
		SetFusedKernels(fused)
		for _, par := range equivParallelisms() {
			got := Engine{Parallelism: par}.OverlapSave(x, k)
			floatValueEqual(t, fmt.Sprintf("OverlapSave fused=%v par=%d", fused, par), got, want)
		}
	}
}

// TestFusedKernelSwitch covers the switch itself: default on, round
// trip through both states, and FFTReal honoring it.
func TestFusedKernelSwitch(t *testing.T) {
	prev := FusedKernels()
	defer SetFusedKernels(prev)
	if !prev {
		t.Error("fused kernels should default to enabled")
	}
	SetFusedKernels(false)
	if FusedKernels() {
		t.Fatal("SetFusedKernels(false) did not stick")
	}
	SetFusedKernels(true)
	if !FusedKernels() {
		t.Fatal("SetFusedKernels(true) did not stick")
	}
}

// --- Welch short-capture and minimum-size boundaries -----------------
// Satellite regression tests for the NextPowerOfTwo/Welch sizing
// boundaries: captures shorter than one segment, and the smallest legal
// fftSize. Today's behavior is pinned, in both kernel modes.

// TestWelchPSDShorterThanSegment: a capture shorter than fftSize has
// zero segments and must yield an all-zero PSD of full length — not a
// panic, not a truncated slice.
func TestWelchPSDShorterThanSegment(t *testing.T) {
	prev := FusedKernels()
	defer SetFusedKernels(prev)
	for _, fused := range []bool{false, true} {
		SetFusedKernels(fused)
		for _, length := range []int{0, 1, 511, 1023} {
			for _, par := range []int{1, 4} {
				e := Engine{Parallelism: par}
				for _, psd := range [][]float64{
					e.WelchPSD(randComplex(length, 9), 1024),
					e.WelchPSDReal(randReal(length, 9), 1024),
				} {
					if len(psd) != 1024 {
						t.Fatalf("fused=%v len=%d par=%d: PSD has %d bins, want 1024",
							fused, length, par, len(psd))
					}
					for i, v := range psd {
						if v != 0 {
							t.Fatalf("fused=%v len=%d par=%d: bin %d = %v, want 0",
								fused, length, par, i, v)
						}
					}
				}
			}
		}
	}
}

// TestWelchPSDFFTSizeTwo pins the smallest accepted transform size.
// fftSize 2 is degenerate by arithmetic, not by accident: the
// symmetric Hann window of length 2 is identically zero (see
// TestHannSizeTwoIsZero), so every windowed segment — and therefore
// the PSD — is exactly zero regardless of the signal. The case still
// must not panic, hang (the historical fftSize-1 infinite loop), or
// disagree between kernel modes.
func TestWelchPSDFFTSizeTwo(t *testing.T) {
	prev := FusedKernels()
	defer SetFusedKernels(prev)
	x := randComplex(64, 17)
	r := randReal(64, 18)
	for _, fused := range []bool{false, true} {
		SetFusedKernels(fused)
		for _, par := range []int{1, 4} {
			e := Engine{Parallelism: par}
			for _, psd := range [][]float64{e.WelchPSD(x, 2), e.WelchPSDReal(r, 2)} {
				if len(psd) != 2 || psd[0] != 0 || psd[1] != 0 {
					t.Fatalf("fused=%v par=%d: WelchPSD fftSize 2 = %v, want [0 0]", fused, par, psd)
				}
			}
		}
	}
}

// TestWelchPSDRejectsDegenerateSizes: fftSize 1 (the historical
// infinite loop) and non-powers of two panic from every entry point.
func TestWelchPSDRejectsDegenerateSizes(t *testing.T) {
	for _, fftSize := range []int{0, 1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WelchPSD fftSize %d did not panic", fftSize)
				}
			}()
			Engine{Parallelism: 1}.WelchPSD(make([]complex128, 256), fftSize)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WelchPSDReal fftSize %d did not panic", fftSize)
				}
			}()
			Engine{Parallelism: 1}.WelchPSDReal(make([]float64, 256), fftSize)
		}()
	}
}

// TestWelchPSDOneSegmentExact: with exactly fftSize samples there is
// one segment, so the PSD is that segment's windowed periodogram —
// checked against a from-scratch computation.
func TestWelchPSDOneSegmentExact(t *testing.T) {
	const n = 256
	x := randComplex(n, 23)
	window := Hann(n)
	seg := append([]complex128(nil), x...)
	ApplyWindow(seg, window)
	prev := FusedKernels()
	SetFusedKernels(false)
	FFT(seg)
	SetFusedKernels(prev)
	want := PowerSpectrum(seg)
	got := Engine{Parallelism: 1}.WelchPSD(x, n)
	floatBitEqual(t, "one-segment Welch", got, want)
}

// TestSTFTRealPackedAgree pins the package-level wrappers.
func TestSTFTRealPackedAgree(t *testing.T) {
	x := randReal(4096, 41)
	want := STFT(realInComplex(x), 256, 64, Hann(256), 2.4e6)
	got := STFTReal(x, 256, 64, Hann(256), 2.4e6)
	compareSpectrograms(t, "package STFTReal", got, want)
	floatBitEqual(t, "package WelchPSDReal",
		WelchPSDReal(x, 256), WelchPSD(realInComplex(x), 256))
}

// TestMirrorMagRowNaNFree sanity-checks the row mirror on a spectrum
// with negative zeros and denormals, the shapes the shortcut multiplies
// can produce.
func TestMirrorMagRowNaNFree(t *testing.T) {
	buf := []complex128{
		complex(1, 0), complex(math.Copysign(0, -1), 5e-324),
		complex(-2, math.Copysign(0, -1)), complex(0, 0),
		complex(3, -4), 0, 0, 0,
	}
	row := make([]float64, 8)
	mirrorMagRow(row, buf, 8)
	for i, v := range row {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("bin %d: %v", i, v)
		}
	}
	for k := 1; k < 4; k++ {
		if row[8-k] != row[k] {
			t.Fatalf("mirror broken at %d: %v vs %v", k, row[8-k], row[k])
		}
	}
}
