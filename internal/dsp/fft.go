package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n.
//
// Contract: n must be > 0; n <= 0 panics. Callers that can receive
// degenerate sizes guard before calling — FFTReal returns an empty
// spectrum for an empty signal, keylog.Detect reports no keystrokes
// when the STFT window rounds to zero samples, and Engine.OverlapSave
// returns zeros for an empty signal or kernel. (STFT and WelchPSD never
// call it: they require the caller to pass a power-of-two size and
// panic otherwise.)
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo of non-positive n")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// FFT computes the discrete Fourier transform of x in place using an
// iterative radix-2 Cooley-Tukey algorithm. len(x) must be a power of
// two. The transform is unnormalized: IFFT(FFT(x)) == x. The twiddle
// and bit-reversal tables come from the per-size plan cache (PlanFFT),
// so repeated transforms of one size pay the table cost once.
func FFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	PlanFFT(n).Transform(x)
}

// IFFT computes the inverse DFT of x in place, including the 1/N
// normalization.
func IFFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	PlanFFT(n).InverseTransform(x)
}

// FFTReal transforms a real signal, returning the full complex spectrum
// of length NextPowerOfTwo(len(x)) with zero padding. An empty signal
// yields an empty spectrum. With the fused kernels enabled it runs the
// half-work real-input transform (RFFT); the result is value-identical
// to the historical pack-into-complex path either way.
func FFTReal(x []float64) []complex128 {
	if len(x) == 0 {
		return nil
	}
	n := NextPowerOfTwo(len(x))
	if FusedKernels() {
		buf := x
		if len(x) != n {
			buf = make([]float64, n)
			copy(buf, x)
		}
		return RFFT(buf)
	}
	out := make([]complex128, n)
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	FFT(out)
	return out
}

// RFFT computes the DFT of the real sequence x, whose length must be a
// power of two, returning the full n-bin complex spectrum. It exploits
// the conjugate symmetry of real-input spectra to do half the butterfly
// work of FFT on a packed complex buffer, and its output is
// value-identical (Go ==, which identifies the signs of zeros) to that
// reference; magnitudes and power spectra derived from the two are
// bit-identical. With the fused kernels disabled (SetFusedKernels) it
// runs the packed reference path itself.
func RFFT(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: RFFT length %d is not a power of two", n))
	}
	out := make([]complex128, n)
	if !FusedKernels() {
		for i, v := range x {
			out[i] = complex(v, 0)
		}
		PlanFFT(n).Transform(out)
		return out
	}
	PlanFFT(n).RealTransform(out, x)
	return out
}

// IRFFT inverts a full conjugate-symmetric spectrum (as produced by
// RFFT) back to its real sequence: the real parts of the unrestricted
// complex inverse transform. It is exactly IFFT followed by dropping
// the imaginary parts — a deliberate choice of the slow, obviously
// correct path: the inverse is used for round-trip validation and API
// completeness, not by any hot loop, so it inherits the complex
// kernel's equivalence guarantees instead of adding a second
// half-spectrum kernel to prove. If spec is not conjugate-symmetric the
// imaginary parts are silently discarded.
func IRFFT(spec []complex128) []float64 {
	n := len(spec)
	if n == 0 {
		return nil
	}
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: IRFFT length %d is not a power of two", n))
	}
	buf := make([]complex128, n)
	copy(buf, spec)
	PlanFFT(n).InverseTransform(buf)
	out := make([]float64, n)
	for i, v := range buf {
		out[i] = real(v)
	}
	return out
}

// Magnitudes returns |x[i]| for each element.
func Magnitudes(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// PowerSpectrum returns |x[i]|^2 for each element.
func PowerSpectrum(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		re, im := real(v), imag(v)
		out[i] = re*re + im*im
	}
	return out
}

// BinFrequency returns the baseband frequency (Hz) of FFT bin k for an
// n-point transform of complex samples taken at sampleRate. Bins above
// n/2 map to negative frequencies, matching the convention of a complex
// (IQ) capture.
func BinFrequency(k, n int, sampleRate float64) float64 {
	if k >= n/2 {
		k -= n
	}
	return float64(k) * sampleRate / float64(n)
}

// FrequencyBin returns the FFT bin index (0..n-1) closest to frequency f
// (which may be negative for an IQ capture) for an n-point transform at
// sampleRate.
func FrequencyBin(f float64, n int, sampleRate float64) int {
	k := int(math.Round(f * float64(n) / sampleRate))
	k %= n
	if k < 0 {
		k += n
	}
	return k
}
