package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n.
//
// Contract: n must be > 0; n <= 0 panics. Callers that can receive
// degenerate sizes guard before calling — FFTReal returns an empty
// spectrum for an empty signal, keylog.Detect reports no keystrokes
// when the STFT window rounds to zero samples, and Engine.OverlapSave
// returns zeros for an empty signal or kernel. (STFT and WelchPSD never
// call it: they require the caller to pass a power-of-two size and
// panic otherwise.)
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo of non-positive n")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// FFT computes the discrete Fourier transform of x in place using an
// iterative radix-2 Cooley-Tukey algorithm. len(x) must be a power of
// two. The transform is unnormalized: IFFT(FFT(x)) == x. The twiddle
// and bit-reversal tables come from the per-size plan cache (PlanFFT),
// so repeated transforms of one size pay the table cost once.
func FFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	PlanFFT(n).Transform(x)
}

// IFFT computes the inverse DFT of x in place, including the 1/N
// normalization.
func IFFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	PlanFFT(n).InverseTransform(x)
}

// FFTReal transforms a real signal, returning the full complex spectrum
// of length NextPowerOfTwo(len(x)) with zero padding. An empty signal
// yields an empty spectrum.
func FFTReal(x []float64) []complex128 {
	if len(x) == 0 {
		return nil
	}
	n := NextPowerOfTwo(len(x))
	out := make([]complex128, n)
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	FFT(out)
	return out
}

// Magnitudes returns |x[i]| for each element.
func Magnitudes(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// PowerSpectrum returns |x[i]|^2 for each element.
func PowerSpectrum(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		re, im := real(v), imag(v)
		out[i] = re*re + im*im
	}
	return out
}

// BinFrequency returns the baseband frequency (Hz) of FFT bin k for an
// n-point transform of complex samples taken at sampleRate. Bins above
// n/2 map to negative frequencies, matching the convention of a complex
// (IQ) capture.
func BinFrequency(k, n int, sampleRate float64) float64 {
	if k >= n/2 {
		k -= n
	}
	return float64(k) * sampleRate / float64(n)
}

// FrequencyBin returns the FFT bin index (0..n-1) closest to frequency f
// (which may be negative for an IQ capture) for an n-point transform at
// sampleRate.
func FrequencyBin(f float64, n int, sampleRate float64) int {
	k := int(math.Round(f * float64(n) / sampleRate))
	k %= n
	if k < 0 {
		k += n
	}
	return k
}
