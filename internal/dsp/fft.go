package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n (n must be > 0).
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo of non-positive n")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// FFT computes the discrete Fourier transform of x in place using an
// iterative radix-2 Cooley-Tukey algorithm. len(x) must be a power of
// two. The transform is unnormalized: IFFT(FFT(x)) == x.
func FFT(x []complex128) {
	fftDir(x, false)
}

// IFFT computes the inverse DFT of x in place, including the 1/N
// normalization.
func IFFT(x []complex128) {
	fftDir(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fftDir(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return
	}
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := cmplx.Exp(complex(0, sign*2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= step
			}
		}
	}
}

// FFTReal transforms a real signal, returning the full complex spectrum
// of length NextPowerOfTwo(len(x)) with zero padding.
func FFTReal(x []float64) []complex128 {
	n := NextPowerOfTwo(len(x))
	out := make([]complex128, n)
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	FFT(out)
	return out
}

// Magnitudes returns |x[i]| for each element.
func Magnitudes(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// PowerSpectrum returns |x[i]|^2 for each element.
func PowerSpectrum(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		re, im := real(v), imag(v)
		out[i] = re*re + im*im
	}
	return out
}

// BinFrequency returns the baseband frequency (Hz) of FFT bin k for an
// n-point transform of complex samples taken at sampleRate. Bins above
// n/2 map to negative frequencies, matching the convention of a complex
// (IQ) capture.
func BinFrequency(k, n int, sampleRate float64) float64 {
	if k >= n/2 {
		k -= n
	}
	return float64(k) * sampleRate / float64(n)
}

// FrequencyBin returns the FFT bin index (0..n-1) closest to frequency f
// (which may be negative for an IQ capture) for an n-point transform at
// sampleRate.
func FrequencyBin(f float64, n int, sampleRate float64) int {
	k := int(math.Round(f * float64(n) / sampleRate))
	k %= n
	if k < 0 {
		k += n
	}
	return k
}
