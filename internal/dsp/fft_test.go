package dsp

import (
	"math"
	"math/cmplx"
	"testing"

	"pmuleak/internal/xrand"
)

func approxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024, 1 << 20} {
		if !IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 1000} {
		if IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = true", n)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := [][2]int{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {1024, 1024}, {1025, 2048}}
	for _, c := range cases {
		if got := NextPowerOfTwo(c[0]); got != c[1] {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// DFT of a unit impulse is flat ones.
	x := make([]complex128, 16)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if !approxEqual(real(v), 1, 1e-12) || !approxEqual(imag(v), 0, 1e-12) {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex exponential at bin k concentrates all energy in bin k.
	const n, k = 64, 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k)*float64(i)/float64(n)))
	}
	FFT(x)
	for i, v := range x {
		want := 0.0
		if i == k {
			want = float64(n)
		}
		if !approxEqual(cmplx.Abs(v), want, 1e-9) {
			t.Fatalf("bin %d magnitude = %v, want %v", i, cmplx.Abs(v), want)
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := xrand.New(1)
	const n = 128
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := 0; i < n; i++ {
		a[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
		b[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
		sum[i] = a[i] + b[i]
	}
	FFT(a)
	FFT(b)
	FFT(sum)
	for i := range sum {
		if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := xrand.New(2)
	for _, n := range []int{1, 2, 8, 256, 4096} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip error at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := xrand.New(3)
	const n = 512
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
		timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	FFT(x)
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= n
	if !approxEqual(timeEnergy, freqEnergy, 1e-6*timeEnergy) {
		t.Fatalf("Parseval violated: time %v vs freq %v", timeEnergy, freqEnergy)
	}
}

func TestFFTNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT of length 6 did not panic")
		}
	}()
	FFT(make([]complex128, 6))
}

func TestFFTReal(t *testing.T) {
	// Real cosine at bin k splits into bins k and n-k.
	const n, k = 32, 3
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * float64(k) * float64(i) / float64(n))
	}
	spec := FFTReal(x)
	mags := Magnitudes(spec)
	for i, m := range mags {
		want := 0.0
		if i == k || i == n-k {
			want = float64(n) / 2
		}
		if !approxEqual(m, want, 1e-9) {
			t.Fatalf("bin %d magnitude = %v, want %v", i, m, want)
		}
	}
}

func TestFFTRealPads(t *testing.T) {
	spec := FFTReal(make([]float64, 100))
	if len(spec) != 128 {
		t.Fatalf("FFTReal padded to %d, want 128", len(spec))
	}
}

func TestPowerSpectrum(t *testing.T) {
	x := []complex128{3 + 4i, 1, 0}
	p := PowerSpectrum(x)
	if p[0] != 25 || p[1] != 1 || p[2] != 0 {
		t.Fatalf("PowerSpectrum = %v", p)
	}
}

func TestBinFrequencyRoundTrip(t *testing.T) {
	const n = 1024
	const sr = 2.4e6
	for _, f := range []float64{0, 100e3, 970e3, -430e3, -1.1e6} {
		bin := FrequencyBin(f, n, sr)
		got := BinFrequency(bin, n, sr)
		if math.Abs(got-f) > sr/n/2+1e-9 {
			t.Errorf("f=%v: bin %d maps back to %v", f, bin, got)
		}
	}
}

func TestBinFrequencyNegativeHalf(t *testing.T) {
	// Bin n/2 and above are negative frequencies for IQ data.
	if f := BinFrequency(512, 1024, 2.4e6); f >= 0 {
		t.Errorf("bin 512 frequency = %v, want negative", f)
	}
	if f := BinFrequency(100, 1024, 2.4e6); f <= 0 {
		t.Errorf("bin 100 frequency = %v, want positive", f)
	}
}

func TestGoertzelMatchesFFT(t *testing.T) {
	rng := xrand.New(4)
	const n = 256
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
	}
	ref := append([]complex128(nil), x...)
	FFT(ref)
	for _, k := range []int{0, 1, 17, 128, 255} {
		got := Goertzel(x, k)
		want := cmplx.Abs(ref[k])
		if !approxEqual(got, want, 1e-6*(want+1)) {
			t.Errorf("Goertzel bin %d = %v, FFT = %v", k, got, want)
		}
	}
}
