package dsp

import "math"

// Histogram is a fixed-width binning of a sample set, used both for the
// pulse-width PDF of Fig. 6 and the average-power distribution of Fig. 7.
type Histogram struct {
	Counts []float64 // bin occupancy (float so it can be smoothed)
	Lo, Hi float64   // value range covered
}

// NewHistogram bins x into bins equal-width bins spanning [min(x), max(x)].
func NewHistogram(x []float64, bins int) *Histogram {
	if bins <= 0 {
		panic("dsp: histogram needs at least one bin")
	}
	h := &Histogram{Counts: make([]float64, bins)}
	if len(x) == 0 {
		h.Hi = 1
		return h
	}
	h.Lo, _ = Min(x)
	h.Hi, _ = Max(x)
	if h.Hi == h.Lo {
		h.Hi = h.Lo + 1
	}
	for _, v := range x {
		h.Counts[h.bin(v)]++
	}
	return h
}

func (h *Histogram) bin(v float64) int {
	idx := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	return idx
}

// BinCenter returns the value at the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Smoothed returns a copy of the histogram with a moving-average of
// width w applied to the counts; the mode-finding logic runs on the
// smoothed shape so single-bin noise does not create spurious peaks.
func (h *Histogram) Smoothed(w int) *Histogram {
	return &Histogram{Counts: MovingAverage(h.Counts, w), Lo: h.Lo, Hi: h.Hi}
}

// PDF returns the histogram normalized to integrate to 1.
func (h *Histogram) PDF() []float64 {
	var total float64
	for _, c := range h.Counts {
		total += c
	}
	binWidth := (h.Hi - h.Lo) / float64(len(h.Counts))
	out := make([]float64, len(h.Counts))
	if total == 0 || binWidth == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = c / (total * binWidth)
	}
	return out
}

// Modes returns the values of the two most prominent local maxima of the
// smoothed histogram, in ascending value order. This is the Fig. 7
// procedure: the lower mode is the bit-0 power, the upper mode the
// bit-1 power. ok is false when the histogram has fewer than two
// separated modes (e.g. the capture contained only one symbol value).
func (h *Histogram) Modes() (lo, hi float64, ok bool) {
	peaks := FindPeaks(h.Counts, len(h.Counts)/10+1, 0)
	if len(peaks) < 2 {
		return 0, 0, false
	}
	// Pick the two tallest peaks.
	best, second := -1, -1
	for _, p := range peaks {
		if best == -1 || h.Counts[p] > h.Counts[best] {
			second = best
			best = p
		} else if second == -1 || h.Counts[p] > h.Counts[second] {
			second = p
		}
	}
	a, b := h.BinCenter(best), h.BinCenter(second)
	if a > b {
		a, b = b, a
	}
	return a, b, true
}

// BimodalThreshold selects the decision threshold between the two modes
// of the sample distribution, per Fig. 7: it locates the two most
// prominent histogram modes and places the threshold at the emptiest
// bin of the valley between them (tie-broken toward the modes'
// geometric mean, which is the equal-error point when the two
// populations have proportional spreads, as squared-amplitude powers
// do). When the distribution is not clearly bimodal it falls back to
// the midpoint of the observed range, which keeps the decoder alive at
// very low SNR.
func BimodalThreshold(samples []float64, bins int) float64 {
	if len(samples) == 0 {
		return 0
	}
	h := NewHistogram(samples, bins).Smoothed(3)
	lo, hi, ok := h.Modes()
	if !ok {
		mn, _ := Min(samples)
		mx, _ := Max(samples)
		return (mn + mx) / 2
	}
	// Valley search between the mode bins.
	loBin, hiBin := h.bin(lo), h.bin(hi)
	if hiBin-loBin < 2 {
		return (lo + hi) / 2
	}
	target := math.Sqrt(math.Max(lo, 1e-300) * math.Max(hi, 1e-300))
	bestBin := -1
	bestCount := math.Inf(1)
	bestDist := math.Inf(1)
	for b := loBin + 1; b < hiBin; b++ {
		c := h.Counts[b]
		dist := math.Abs(h.BinCenter(b) - target)
		if c < bestCount || (c == bestCount && dist < bestDist) {
			bestBin, bestCount, bestDist = b, c, dist
		}
	}
	if bestBin < 0 {
		return (lo + hi) / 2
	}
	return h.BinCenter(bestBin)
}

// CDFPoint returns the fraction of samples <= v.
func CDFPoint(samples []float64, v float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range samples {
		if s <= v {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}

// Skewness returns the sample skewness of x, used by tests to verify the
// positive skew of the signaling-period distribution.
func Skewness(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var m2, m3 float64
	for _, v := range x {
		d := v - m
		m2 += d * d
		m3 += d * d * d
	}
	n := float64(len(x))
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}
