package dsp

import (
	"math"
	"testing"

	"pmuleak/internal/xrand"
)

func TestHistogramBinning(t *testing.T) {
	x := []float64{0, 0.1, 0.9, 1.0, 0.5}
	h := NewHistogram(x, 2)
	// Range [0,1]: first bin [0,0.5), second [0.5,1].
	if h.Counts[0] != 2 || h.Counts[1] != 3 {
		t.Fatalf("Counts = %v", h.Counts)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 4)
	var total float64
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("lost samples: %v", h.Counts)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil, 3)
	for _, c := range h.Counts {
		if c != 0 {
			t.Fatalf("empty histogram has counts %v", h.Counts)
		}
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := &Histogram{Counts: make([]float64, 4), Lo: 0, Hi: 8}
	if c := h.BinCenter(0); !approxEqual(c, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v", c)
	}
	if c := h.BinCenter(3); !approxEqual(c, 7, 1e-12) {
		t.Errorf("BinCenter(3) = %v", c)
	}
}

func TestHistogramPDFIntegratesToOne(t *testing.T) {
	rng := xrand.New(30)
	x := make([]float64, 10000)
	for i := range x {
		x[i] = rng.Normal(0, 1)
	}
	h := NewHistogram(x, 50)
	pdf := h.PDF()
	binWidth := (h.Hi - h.Lo) / float64(len(h.Counts))
	var integral float64
	for _, p := range pdf {
		integral += p * binWidth
	}
	if !approxEqual(integral, 1, 1e-9) {
		t.Fatalf("PDF integral = %v", integral)
	}
}

func TestModesBimodal(t *testing.T) {
	rng := xrand.New(31)
	x := make([]float64, 0, 20000)
	for i := 0; i < 10000; i++ {
		x = append(x, rng.Normal(2, 0.3))
		x = append(x, rng.Normal(8, 0.3))
	}
	lo, hi, ok := NewHistogram(x, 100).Smoothed(3).Modes()
	if !ok {
		t.Fatal("bimodal data: Modes reported not ok")
	}
	if math.Abs(lo-2) > 0.5 || math.Abs(hi-8) > 0.5 {
		t.Fatalf("modes = %v, %v, want ~2 and ~8", lo, hi)
	}
}

func TestBimodalThresholdSeparates(t *testing.T) {
	rng := xrand.New(32)
	var x []float64
	for i := 0; i < 5000; i++ {
		x = append(x, rng.Normal(1, 0.2), rng.Normal(9, 0.2))
	}
	thr := BimodalThreshold(x, 100)
	// The valley between the populations spans ~1.6..8.4; ties among
	// empty valley bins break toward the geometric mean (3).
	if thr < 1.8 || thr > 8.2 {
		t.Fatalf("threshold = %v, want inside the valley", thr)
	}
}

func TestBimodalThresholdUnimodalFallback(t *testing.T) {
	rng := xrand.New(33)
	x := make([]float64, 5000)
	for i := range x {
		x[i] = rng.Normal(5, 0.1)
	}
	thr := BimodalThreshold(x, 50)
	if thr < 4 || thr > 6 {
		t.Fatalf("unimodal fallback threshold = %v", thr)
	}
}

func TestBimodalThresholdEmpty(t *testing.T) {
	if thr := BimodalThreshold(nil, 10); thr != 0 {
		t.Fatalf("empty threshold = %v", thr)
	}
}

func TestCDFPoint(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := CDFPoint(x, 2.5); !approxEqual(got, 0.5, 1e-12) {
		t.Errorf("CDFPoint(2.5) = %v", got)
	}
	if got := CDFPoint(x, 0); got != 0 {
		t.Errorf("CDFPoint(0) = %v", got)
	}
	if got := CDFPoint(x, 10); got != 1 {
		t.Errorf("CDFPoint(10) = %v", got)
	}
}

func TestFindPeaksBasic(t *testing.T) {
	x := []float64{0, 1, 0, 2, 0, 3, 0}
	peaks := FindPeaks(x, 1, 0.5)
	want := []int{1, 3, 5}
	if len(peaks) != len(want) {
		t.Fatalf("peaks = %v", peaks)
	}
	for i := range want {
		if peaks[i] != want[i] {
			t.Fatalf("peaks = %v, want %v", peaks, want)
		}
	}
}

func TestFindPeaksMinHeight(t *testing.T) {
	x := []float64{0, 1, 0, 5, 0}
	peaks := FindPeaks(x, 1, 2)
	if len(peaks) != 1 || peaks[0] != 3 {
		t.Fatalf("peaks = %v", peaks)
	}
}

func TestFindPeaksMinDistanceKeepsTaller(t *testing.T) {
	x := []float64{0, 3, 0, 5, 0, 0, 0, 0}
	peaks := FindPeaks(x, 4, 0)
	if len(peaks) != 1 || peaks[0] != 3 {
		t.Fatalf("peaks = %v, want just the taller one at 3", peaks)
	}
}

func TestFindPeaksPlateau(t *testing.T) {
	x := []float64{0, 2, 2, 2, 0}
	peaks := FindPeaks(x, 1, 0)
	if len(peaks) != 1 || peaks[0] != 1 {
		t.Fatalf("plateau peaks = %v, want [1]", peaks)
	}
}

func TestFindPeaksEmptyAndFlat(t *testing.T) {
	if p := FindPeaks(nil, 1, 0); p != nil {
		t.Errorf("FindPeaks(nil) = %v", p)
	}
	// A constant signal has a plateau "peak" only at index 0.
	p := FindPeaks([]float64{1, 1, 1, 1}, 1, 0)
	if len(p) != 1 || p[0] != 0 {
		t.Errorf("flat peaks = %v", p)
	}
}

func TestThresholdCrossings(t *testing.T) {
	x := []float64{0, 5, 5, 0, 0, 7, 7, 7}
	iv := ThresholdCrossings(x, 1)
	if len(iv) != 2 {
		t.Fatalf("intervals = %v", iv)
	}
	if iv[0] != [2]int{1, 3} || iv[1] != [2]int{5, 8} {
		t.Fatalf("intervals = %v", iv)
	}
}

func TestThresholdCrossingsNone(t *testing.T) {
	if iv := ThresholdCrossings([]float64{0, 0.5, 0}, 1); iv != nil {
		t.Fatalf("intervals = %v", iv)
	}
}

func TestMergeIntervals(t *testing.T) {
	iv := [][2]int{{0, 5}, {7, 10}, {30, 35}}
	merged := MergeIntervals(iv, 3)
	if len(merged) != 2 {
		t.Fatalf("merged = %v", merged)
	}
	if merged[0] != [2]int{0, 10} || merged[1] != [2]int{30, 35} {
		t.Fatalf("merged = %v", merged)
	}
}

func TestMergeIntervalsEmpty(t *testing.T) {
	if m := MergeIntervals(nil, 1); m != nil {
		t.Fatalf("merged = %v", m)
	}
}

func TestFilterIntervals(t *testing.T) {
	iv := [][2]int{{0, 2}, {10, 20}, {30, 33}}
	out := FilterIntervals(iv, 5)
	if len(out) != 1 || out[0] != [2]int{10, 20} {
		t.Fatalf("filtered = %v", out)
	}
}
