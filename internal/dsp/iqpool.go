package dsp

import (
	"sync"

	"pmuleak/internal/telemetry"
)

// iqPool recycles IQ sample buffers for the channel/radio hot path.
// The pool stores *[]complex128 (not []complex128) so Put does not
// allocate a fresh interface box per call.
//
// Contract: GetIQ returns a buffer of exactly length n whose contents
// are ARBITRARY — callers must fully overwrite every element before
// reading any (emchannel.Apply and sdr.Acquire both do). PutIQ must
// only be called once the buffer is provably dead: no Capture, Demod,
// or cached trace may still reference it.
var iqPool sync.Pool

// The pool's accounting. Gets and puts count call sites and are
// deterministic for a fixed workload; allocs and undersized-discards
// depend on pool state (sync.Pool empties under GC pressure and is
// per-P), so they legitimately vary run to run and across -jobs
// settings.
var (
	iqGets     = telemetry.NewCounter("dsp.iqpool.gets")
	iqPuts     = telemetry.NewCounter("dsp.iqpool.puts")
	iqAllocs   = telemetry.NewCounter("dsp.iqpool.allocs")
	iqDiscards = telemetry.NewCounter("dsp.iqpool.undersized_discards")
)

// GetIQ returns a []complex128 of length n, reusing a pooled buffer
// when one with sufficient capacity is available. Contents are not
// zeroed.
func GetIQ(n int) []complex128 {
	iqGets.Inc()
	if v := iqPool.Get(); v != nil {
		buf := *(v.(*[]complex128))
		if cap(buf) >= n {
			return buf[:n]
		}
		// Too small for this request; drop it and allocate.
		iqDiscards.Inc()
	}
	iqAllocs.Inc()
	return make([]complex128, n)
}

// PutIQ returns a buffer to the pool. Safe to call with nil or empty
// slices (no-op). The caller must not touch buf afterwards.
func PutIQ(buf []complex128) {
	if cap(buf) == 0 {
		return
	}
	iqPuts.Inc()
	buf = buf[:cap(buf)]
	iqPool.Put(&buf)
}
