package dsp

import "testing"

func TestIQPoolRoundTrip(t *testing.T) {
	a := GetIQ(64)
	if len(a) != 64 {
		t.Fatalf("GetIQ(64) len = %d", len(a))
	}
	for i := range a {
		a[i] = complex(float64(i), 0)
	}
	PutIQ(a)
	b := GetIQ(32)
	if len(b) != 32 {
		t.Fatalf("GetIQ(32) len = %d", len(b))
	}
	// Contents are arbitrary; only the length contract matters.
	PutIQ(b)
	// nil and empty are no-ops.
	PutIQ(nil)
	PutIQ([]complex128{})
	c := GetIQ(128)
	if len(c) != 128 {
		t.Fatalf("GetIQ(128) len = %d", len(c))
	}
}

func BenchmarkGetPutIQ(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetIQ(4096)
		buf[0] = 1
		PutIQ(buf)
	}
}
