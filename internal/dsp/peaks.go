package dsp

import "sort"

// FindPeaks returns the indices of local maxima of x that are at least
// minHeight tall, enforcing a minimum distance of minDist samples
// between reported peaks (taller peaks win). Indices are returned in
// ascending order.
func FindPeaks(x []float64, minDist int, minHeight float64) []int {
	if minDist < 1 {
		minDist = 1
	}
	var candidates []int
	for i := range x {
		if x[i] < minHeight {
			continue
		}
		left := i == 0 || x[i] > x[i-1]
		// Treat plateau edges as peaks only at their left edge by
		// requiring a strict rise on the left and a non-rise on the
		// right.
		right := i == len(x)-1 || x[i] >= x[i+1]
		if left && right {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	// Greedy suppression: keep taller peaks first.
	order := append([]int(nil), candidates...)
	sort.Slice(order, func(a, b int) bool {
		if x[order[a]] != x[order[b]] {
			return x[order[a]] > x[order[b]]
		}
		return order[a] < order[b]
	})
	kept := make([]int, 0, len(order))
	suppressed := make(map[int]bool)
	for _, p := range order {
		if suppressed[p] {
			continue
		}
		kept = append(kept, p)
		for _, q := range candidates {
			if q != p && abs(q-p) < minDist {
				suppressed[q] = true
			}
		}
	}
	sort.Ints(kept)
	return kept
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// ThresholdCrossings returns the [start, end) index intervals where x
// stays strictly above thr. An interval still open at the end of the
// signal is closed at len(x). The keystroke detector uses this to turn
// the band-energy trace into candidate key events.
func ThresholdCrossings(x []float64, thr float64) [][2]int {
	var out [][2]int
	start := -1
	for i, v := range x {
		if v > thr {
			if start == -1 {
				start = i
			}
		} else if start != -1 {
			out = append(out, [2]int{start, i})
			start = -1
		}
	}
	if start != -1 {
		out = append(out, [2]int{start, len(x)})
	}
	return out
}

// MergeIntervals merges intervals whose gap is at most maxGap samples.
// Intervals must be sorted by start, as ThresholdCrossings produces.
func MergeIntervals(iv [][2]int, maxGap int) [][2]int {
	if len(iv) == 0 {
		return nil
	}
	out := [][2]int{iv[0]}
	for _, cur := range iv[1:] {
		last := &out[len(out)-1]
		if cur[0]-last[1] <= maxGap {
			if cur[1] > last[1] {
				last[1] = cur[1]
			}
		} else {
			out = append(out, cur)
		}
	}
	return out
}

// FilterIntervals drops intervals shorter than minLen samples — the
// paper's 30 ms minimum-keystroke-duration filter.
func FilterIntervals(iv [][2]int, minLen int) [][2]int {
	var out [][2]int
	for _, v := range iv {
		if v[1]-v[0] >= minLen {
			out = append(out, v)
		}
	}
	return out
}
