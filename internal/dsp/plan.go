package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"

	"pmuleak/internal/telemetry"
)

// FFTPlan holds the precomputed tables for one radix-2 transform size:
// the bit-reversal permutation and the per-stage twiddle factors for
// both transform directions. Building a plan costs O(n log n); applying
// it avoids re-deriving those tables on every call, which is where the
// receiver's STFT loops spend a large share of their time.
//
// The twiddle tables are generated with the exact iterative recurrence
// the direct implementation used (w[0] = 1, w[k+1] = w[k]*step), so a
// plan-based transform is bit-identical to the historical FFT/IFFT
// output, not merely close.
//
// A plan is immutable after construction and safe for concurrent use by
// any number of goroutines.
type FFTPlan struct {
	n     int
	pairs [][2]int32     // bit-reversal swaps, stored once with i < j
	fwd   [][]complex128 // fwd[s]: stage-(2<<s) twiddles, forward
	inv   [][]complex128 // inv[s]: same, inverse
}

// planCache maps transform size -> *FFTPlan. Plans are tiny relative to
// the signals they transform and sizes form a small working set (one or
// two per pipeline), so entries are never evicted.
var planCache sync.Map

// The plan-cache counters. A miss is counted only by the goroutine
// whose plan actually lands in the cache (LoadOrStore loaded==false),
// so misses equal the number of distinct sizes planned and both series
// are deterministic for a given workload even when concurrent callers
// race to build the same first plan.
var (
	planHits   = telemetry.NewCounter("dsp.fftplan.hits")
	planMisses = telemetry.NewCounter("dsp.fftplan.misses")
)

// PlanFFT returns the shared transform plan for size n, computing and
// caching it on first use. n must be a positive power of two; anything
// else panics, mirroring FFT's own contract.
func PlanFFT(n int) *FFTPlan {
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: PlanFFT size %d is not a power of two", n))
	}
	if p, ok := planCache.Load(n); ok {
		planHits.Inc()
		return p.(*FFTPlan)
	}
	p, loaded := planCache.LoadOrStore(n, newFFTPlan(n))
	if loaded {
		planHits.Inc()
	} else {
		planMisses.Inc()
	}
	return p.(*FFTPlan)
}

func newFFTPlan(n int) *FFTPlan {
	p := &FFTPlan{n: n}
	if n == 1 {
		return p
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			p.pairs = append(p.pairs, [2]int32{int32(i), int32(j)})
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		fw := make([]complex128, half)
		iv := make([]complex128, half)
		stepF := cmplx.Exp(complex(0, -1.0*2*math.Pi/float64(size)))
		stepI := cmplx.Exp(complex(0, 1.0*2*math.Pi/float64(size)))
		wf, wi := complex(1, 0), complex(1, 0)
		for k := 0; k < half; k++ {
			fw[k], iv[k] = wf, wi
			wf *= stepF
			wi *= stepI
		}
		p.fwd = append(p.fwd, fw)
		p.inv = append(p.inv, iv)
	}
	return p
}

// Size reports the transform length the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

// Transform computes the forward DFT of x in place. len(x) must equal
// the plan size.
func (p *FFTPlan) Transform(x []complex128) { p.apply(x, p.fwd) }

// InverseTransform computes the inverse DFT of x in place, including
// the 1/N normalization.
func (p *FFTPlan) InverseTransform(x []complex128) {
	p.apply(x, p.inv)
	n := complex(float64(p.n), 0)
	for i := range x {
		x[i] /= n
	}
}

func (p *FFTPlan) apply(x []complex128, tw [][]complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("dsp: FFTPlan size %d applied to length %d", p.n, len(x)))
	}
	for _, pr := range p.pairs {
		x[pr[0]], x[pr[1]] = x[pr[1]], x[pr[0]]
	}
	for s, stage := range tw {
		size := 2 << uint(s)
		half := size >> 1
		for start := 0; start < p.n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * stage[k]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}
