package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"pmuleak/internal/telemetry"
)

// fusedKernelsOn gates the speed pass added with the real-input FFT:
// fused window+permute gathers, paired ("radix-4 dataflow") butterfly
// stages, and the half-spectrum real transform. It defaults to on.
// SetFusedKernels(false) routes every transform back through the
// reference serial kernels — the equivalence suite runs both ways, and
// paperbench exposes the switch as -nofused so the golden tests can
// prove stdout is byte-identical in either mode.
var fusedKernelsOn atomic.Bool

func init() { fusedKernelsOn.Store(true) }

// SetFusedKernels enables (true, the default) or disables the fused and
// real-input transform kernels process-wide. With them disabled every
// FFT runs the reference serial radix-2 path. The fused kernels are
// value-identical to the reference (see DESIGN.md §9), so this switch
// exists for differential testing and benchmarking, not correctness.
func SetFusedKernels(on bool) { fusedKernelsOn.Store(on) }

// FusedKernels reports whether the fused transform kernels are enabled.
func FusedKernels() bool { return fusedKernelsOn.Load() }

// FFTPlan holds the precomputed tables for one radix-2 transform size:
// the bit-reversal permutation and the per-stage twiddle factors for
// both transform directions. Building a plan costs O(n log n); applying
// it avoids re-deriving those tables on every call, which is where the
// receiver's STFT loops spend a large share of their time.
//
// The twiddle tables are generated with the exact iterative recurrence
// the direct implementation used (w[0] = 1, w[k+1] = w[k]*step), so a
// plan-based transform is bit-identical to the historical FFT/IFFT
// output, not merely close.
//
// A plan is immutable after construction and safe for concurrent use by
// any number of goroutines.
type FFTPlan struct {
	n     int
	pairs [][2]int32     // bit-reversal swaps, stored once with i < j
	rev   []int32        // full permutation: rev[i] = bit-reversed i
	fwd   [][]complex128 // fwd[s]: stage-(2<<s) twiddles, forward
	inv   [][]complex128 // inv[s]: same, inverse
}

// planCache maps transform size -> *FFTPlan. Plans are tiny relative to
// the signals they transform and sizes form a small working set (one or
// two per pipeline), so entries are never evicted.
var planCache sync.Map

// The plan-cache counters. A miss is counted only by the goroutine
// whose plan actually lands in the cache (LoadOrStore loaded==false),
// so misses equal the number of distinct sizes planned and both series
// are deterministic for a given workload even when concurrent callers
// race to build the same first plan.
var (
	planHits   = telemetry.NewCounter("dsp.fftplan.hits")
	planMisses = telemetry.NewCounter("dsp.fftplan.misses")
)

// Kernel-path counters for the speed pass. All three count work that is
// a pure function of the workload geometry (transform sizes and frame
// counts), so like the engine counters they are deterministic across
// parallelism levels for a fixed workload.
var (
	// rfftTransforms counts half-spectrum real-input transforms.
	rfftTransforms = telemetry.NewCounter("dsp.fft.rfft")
	// radix4Pairs counts fused stage pairs (two radix-2 stages walked in
	// one pass — the radix-4 dataflow) executed by the fused kernels.
	radix4Pairs = telemetry.NewCounter("dsp.fft.radix4.pairs")
	// fusedGathers counts fused window+permute input gathers, i.e. frames
	// that skipped the separate copy/window/swap passes.
	fusedGathers = telemetry.NewCounter("dsp.fft.fusedgather")
)

// PlanFFT returns the shared transform plan for size n, computing and
// caching it on first use. n must be a positive power of two; anything
// else panics, mirroring FFT's own contract.
func PlanFFT(n int) *FFTPlan {
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: PlanFFT size %d is not a power of two", n))
	}
	if p, ok := planCache.Load(n); ok {
		planHits.Inc()
		return p.(*FFTPlan)
	}
	p, loaded := planCache.LoadOrStore(n, newFFTPlan(n))
	if loaded {
		planHits.Inc()
	} else {
		planMisses.Inc()
	}
	return p.(*FFTPlan)
}

func newFFTPlan(n int) *FFTPlan {
	p := &FFTPlan{n: n, rev: make([]int32, n)}
	if n == 1 {
		return p
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		p.rev[i] = int32(j)
		if j > i {
			p.pairs = append(p.pairs, [2]int32{int32(i), int32(j)})
		}
	}
	for size := 2; size <= n; size <<= 1 {
		fw, iv := stageTwiddles(size)
		p.fwd = append(p.fwd, fw)
		p.inv = append(p.inv, iv)
	}
	return p
}

// stageTwiddles builds the forward and inverse twiddle tables for one
// stage size: fw[k] = exp(-2πik/size) for k in [0, size/2). Each entry
// is computed directly from cos/sin (never by the historical w *= step
// recurrence, whose rounding error grows along the table), and three
// symmetries are enforced bit-exactly by construction:
//
//	fw[0]         = (1, 0)
//	fw[size/4]    = (0, -1)              (the quarter turn)
//	fw[half-k]    = -conj(fw[k])         (half-turn reflection)
//	iv[k]         = conj(fw[k])
//
// The reflection identity is what makes the real-input transform
// (FFTPlan.RealTransform) value-exact against the complex path: the
// conjugate-symmetry induction over stages needs -conj(fw[k]) to BE the
// stored fw[half-k], not merely approximate it. See DESIGN.md §9.
func stageTwiddles(size int) (fw, iv []complex128) {
	half := size >> 1
	quarter := half >> 1
	fw = make([]complex128, half)
	iv = make([]complex128, half)
	fw[0] = complex(1, 0)
	for k := 1; k < half; k++ {
		switch {
		case k == quarter:
			fw[k] = complex(0, -1)
		case k < quarter:
			theta := 2 * math.Pi * float64(k) / float64(size)
			fw[k] = complex(math.Cos(theta), -math.Sin(theta))
		default: // k > quarter: reflect the first quadrant
			m := fw[half-k]
			fw[k] = complex(-real(m), imag(m))
		}
	}
	for k := range fw {
		iv[k] = complex(real(fw[k]), -imag(fw[k]))
	}
	return fw, iv
}

// Size reports the transform length the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

// Transform computes the forward DFT of x in place. len(x) must equal
// the plan size. With the fused kernels enabled (the default) the
// butterfly stages run two at a time; the per-element arithmetic is
// identical to the reference pass, so the output is bit-identical
// either way.
func (p *FFTPlan) Transform(x []complex128) {
	if fusedKernelsOn.Load() {
		p.applyFused(x, p.fwd)
		return
	}
	p.apply(x, p.fwd)
}

// InverseTransform computes the inverse DFT of x in place, including
// the 1/N normalization.
func (p *FFTPlan) InverseTransform(x []complex128) {
	if fusedKernelsOn.Load() {
		p.applyFused(x, p.inv)
	} else {
		p.apply(x, p.inv)
	}
	n := complex(float64(p.n), 0)
	for i := range x {
		x[i] /= n
	}
}

func (p *FFTPlan) apply(x []complex128, tw [][]complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("dsp: FFTPlan size %d applied to length %d", p.n, len(x)))
	}
	for _, pr := range p.pairs {
		x[pr[0]], x[pr[1]] = x[pr[1]], x[pr[0]]
	}
	for s, stage := range tw {
		size := 2 << uint(s)
		half := size >> 1
		for start := 0; start < p.n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * stage[k]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// applyFused is the fused-kernel counterpart of apply: same bit-reversal
// permutation, then the stages run through stagesFused.
func (p *FFTPlan) applyFused(x []complex128, tw [][]complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("dsp: FFTPlan size %d applied to length %d", p.n, len(x)))
	}
	for _, pr := range p.pairs {
		x[pr[0]], x[pr[1]] = x[pr[1]], x[pr[0]]
	}
	p.stagesFused(x, tw)
}

// stagesFused runs the butterfly stages over bit-reversed data, fusing
// consecutive stage pairs into one pass: for each output quartet the
// stage-s butterflies (u0,u1,v0,v1) are kept in registers and fed
// straight into the stage-(s+1) butterflies, which is the radix-4
// dataflow — half the loads and stores of two radix-2 passes — while
// performing the exact radix-2 arithmetic per element. Every multiply
// and add happens on the same values in the same order as the reference
// apply loop, so the result is bit-identical to it (a true radix-4
// kernel would reassociate the sums and change low-order bits; that is
// precisely what this formulation avoids). An odd final stage falls
// back to one plain radix-2 pass.
func (p *FFTPlan) stagesFused(x []complex128, tw [][]complex128) {
	s := 0
	for ; s+1 < len(tw); s += 2 {
		w1, w2 := tw[s], tw[s+1]
		size1 := 2 << uint(s)
		half1 := size1 >> 1
		size2 := size1 << 1
		for base := 0; base < p.n; base += size2 {
			for k := 0; k < half1; k++ {
				i0 := base + k
				i1 := i0 + half1
				i2 := i0 + size1
				i3 := i2 + half1
				a0, a1 := x[i0], x[i1]
				b0, b1 := x[i2], x[i3]
				ta := a1 * w1[k]
				u0, u1 := a0+ta, a0-ta
				tb := b1 * w1[k]
				v0, v1 := b0+tb, b0-tb
				t0 := v0 * w2[k]
				t1 := v1 * w2[k+half1]
				x[i0], x[i2] = u0+t0, u0-t0
				x[i1], x[i3] = u1+t1, u1-t1
			}
		}
	}
	if s>>1 > 0 {
		radix4Pairs.Add(uint64(s >> 1))
	}
	if s < len(tw) {
		stage := tw[s]
		size := 2 << uint(s)
		half := size >> 1
		for start := 0; start < p.n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * stage[k]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// windowGather fuses the per-frame copy, ApplyWindow, and bit-reversal
// permutation into a single gather — dst[rev[i]] = src[i]·(window[i],0),
// the same complex multiply ApplyWindow performs — and then runs the
// fused stages. The result is bit-identical to copy+ApplyWindow+apply.
// window may be nil to skip windowing (plain permuted copy).
func (p *FFTPlan) windowGather(dst, src []complex128, window []float64, tw [][]complex128) {
	if len(src) != p.n || len(dst) != p.n {
		panic(fmt.Sprintf("dsp: FFTPlan size %d gather on lengths %d/%d", p.n, len(src), len(dst)))
	}
	rev := p.rev
	if window == nil {
		for i, v := range src {
			dst[rev[i]] = v
		}
	} else {
		if len(window) != p.n {
			panic("dsp: frame/window length mismatch")
		}
		for i, v := range src {
			dst[rev[i]] = v * complex(window[i], 0)
		}
	}
	fusedGathers.Inc()
	p.stagesFused(dst, tw)
}

// RealTransform computes the forward DFT of the real sequence x into
// dst, exploiting the conjugate symmetry of real-input spectra to run
// half the butterflies of the complex path (the classic Sorensen-style
// real-split — not the N/2 packing identity, which cannot be made
// bit-equivalent; see DESIGN.md §9). Because the twiddle tables enforce
// w[half-k] = -conj(w[k]) bit-exactly, the output is value-identical
// (Go ==, which identifies ±0) to packing x into a complex buffer and
// calling Transform; magnitudes and power spectra derived from it are
// bit-identical to the complex path's. len(dst) and len(x) must equal
// the plan size.
func (p *FFTPlan) RealTransform(dst []complex128, x []float64) {
	if len(x) != p.n || len(dst) != p.n {
		panic(fmt.Sprintf("dsp: FFTPlan size %d real transform on lengths %d/%d", p.n, len(x), len(dst)))
	}
	p.realHalfFloat(dst, x, nil)
	p.mirror(dst)
}

// mirror fills bins (n/2, n) of a half-spectrum by conjugate symmetry:
// dst[n-k] = conj(dst[k]).
func (p *FFTPlan) mirror(dst []complex128) {
	half := p.n >> 1
	for k := 1; k < half; k++ {
		v := dst[k]
		dst[p.n-k] = complex(real(v), -imag(v))
	}
}

// realHalfFloat computes bins [0, n/2] of the DFT of the real sequence
// src (optionally windowed) into dst. Bins above n/2 are left stale;
// callers either mirror them (RealTransform) or never read them (the
// magnitude and PSD paths, which mirror the derived real values
// instead). window may be nil.
func (p *FFTPlan) realHalfFloat(dst []complex128, src, window []float64) {
	rfftTransforms.Inc()
	rev := p.rev
	switch p.n {
	case 1:
		a := src[0]
		if window != nil {
			a *= window[0]
		}
		dst[0] = complex(a, 0)
		return
	case 2:
		a, b := src[0], src[1]
		if window != nil {
			a *= window[0]
			b *= window[1]
		}
		dst[0] = complex(a+b, 0)
		dst[1] = complex(a-b, 0)
		return
	}
	// Reslice to the exact transform length so the compiler drops the
	// per-element bounds checks (the gather indices in rev are data, so
	// only the sequential dst/rev accesses are provable).
	n := p.n
	dst = dst[:n:n]
	rev = rev[:n:n]
	if window == nil {
		for base := 0; base+3 < n; base += 4 {
			a := src[rev[base]]
			b := src[rev[base+1]]
			c := src[rev[base+2]]
			d := src[rev[base+3]]
			s0, d0 := a+b, a-b
			s1, d1 := c+d, c-d
			dst[base] = complex(s0+s1, 0)
			dst[base+1] = complex(d0, -d1)
			dst[base+2] = complex(s0-s1, 0)
		}
	} else {
		for base := 0; base+3 < n; base += 4 {
			i0, i1, i2, i3 := rev[base], rev[base+1], rev[base+2], rev[base+3]
			a := src[i0] * window[i0]
			b := src[i1] * window[i1]
			c := src[i2] * window[i2]
			d := src[i3] * window[i3]
			s0, d0 := a+b, a-b
			s1, d1 := c+d, c-d
			dst[base] = complex(s0+s1, 0)
			dst[base+1] = complex(d0, -d1)
			dst[base+2] = complex(s0-s1, 0)
		}
	}
	p.realStages(dst)
}

// realHalfComplex is realHalfFloat for a real-valued signal stored in a
// complex slice (imaginary parts all zero): it reads only the real
// parts. The engine uses it when it detects a real-valued capture in a
// complex buffer, avoiding a conversion copy.
func (p *FFTPlan) realHalfComplex(dst, src []complex128, window []float64) {
	rfftTransforms.Inc()
	rev := p.rev
	switch p.n {
	case 1:
		a := real(src[0])
		if window != nil {
			a *= window[0]
		}
		dst[0] = complex(a, 0)
		return
	case 2:
		a, b := real(src[0]), real(src[1])
		if window != nil {
			a *= window[0]
			b *= window[1]
		}
		dst[0] = complex(a+b, 0)
		dst[1] = complex(a-b, 0)
		return
	}
	// Same bounds-check reslicing as realHalfFloat.
	n := p.n
	dst = dst[:n:n]
	rev = rev[:n:n]
	if window == nil {
		for base := 0; base+3 < n; base += 4 {
			a := real(src[rev[base]])
			b := real(src[rev[base+1]])
			c := real(src[rev[base+2]])
			d := real(src[rev[base+3]])
			s0, d0 := a+b, a-b
			s1, d1 := c+d, c-d
			dst[base] = complex(s0+s1, 0)
			dst[base+1] = complex(d0, -d1)
			dst[base+2] = complex(s0-s1, 0)
		}
	} else {
		for base := 0; base+3 < n; base += 4 {
			i0, i1, i2, i3 := rev[base], rev[base+1], rev[base+2], rev[base+3]
			a := real(src[i0]) * window[i0]
			b := real(src[i1]) * window[i1]
			c := real(src[i2]) * window[i2]
			d := real(src[i3]) * window[i3]
			s0, d0 := a+b, a-b
			s1, d1 := c+d, c-d
			dst[base] = complex(s0+s1, 0)
			dst[base+1] = complex(d0, -d1)
			dst[base+2] = complex(s0-s1, 0)
		}
	}
	p.realStages(dst)
}

// realStages runs the size-8-and-up butterfly stages over a
// half-spectrum (the leaf pass has already produced valid bins
// [0, size/2] of every size-4 sub-block, exactly the complex path's
// values there). The conjugate-symmetry invariant — each sub-block's
// spectrum satisfies Y[size-k] = conj(Y[k]) value-exactly, which the
// symmetric twiddle tables guarantee — lets each stage compute only
// bins [0, half] of its output block: one multiply t = w[k]·O[k] serves
// both Y[k] = E[k] + t and Y[half-k] = conj(E[k]) - conj(t), and the
// k = 0 and k = quarter columns need no multiply at all. That is half
// the butterfly arithmetic and half the memory traffic of the complex
// path.
func (p *FFTPlan) realStages(dst []complex128) {
	for s := 2; s < len(p.fwd); s++ {
		size := 2 << uint(s)
		half := size >> 1
		quarter := half >> 1
		// Slices sized to exactly the regions the loop touches, so the
		// compiler proves every index in bounds: this loop is the hot
		// core of every real-input transform.
		w := p.fwd[s][:quarter]
		for base := 0; base < p.n; base += size {
			lo := dst[base : base+half : base+half]
			hi := dst[base+half : base+size : base+size]
			e0, o0 := lo[0], hi[0]
			lo[0] = e0 + o0
			hi[0] = e0 - o0
			for k := 1; k < quarter; k++ {
				e := lo[k]
				t := hi[k] * w[k]
				lo[k] = e + t
				lo[half-k] = complex(real(e)-real(t), imag(t)-imag(e))
			}
			// k == quarter: w[quarter] is exactly (0,-1), so w·O = (imag(O), -real(O)).
			e := lo[quarter]
			o := hi[quarter]
			lo[quarter] = complex(real(e)+imag(o), imag(e)-real(o))
		}
	}
}
