package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
	"testing"

	"pmuleak/internal/xrand"
)

// legacyFFT is a frozen copy of the pre-plan iterative radix-2
// implementation. The plan cache is required to reproduce its output
// bit for bit — not approximately — because the serial receiver path is
// defined as "whatever the original implementation computed".
func legacyFFT(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return
	}
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := cmplx.Exp(complex(0, sign*2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= step
			}
		}
	}
}

func randComplex(n int, seed int64) []complex128 {
	rng := xrand.New(seed)
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
	}
	return x
}

func complexBitEqual(t *testing.T, label string, got, want []complex128) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(real(got[i])) != math.Float64bits(real(want[i])) ||
			math.Float64bits(imag(got[i])) != math.Float64bits(imag(want[i])) {
			t.Fatalf("%s: sample %d differs: %v != %v", label, i, got[i], want[i])
		}
	}
}

func floatBitEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: sample %d differs: %v != %v (delta %g)",
				label, i, got[i], want[i], got[i]-want[i])
		}
	}
}

func TestPlanFFTBitIdenticalToLegacy(t *testing.T) {
	for n := 1; n <= 4096; n <<= 1 {
		x := randComplex(n, int64(n))
		want := append([]complex128(nil), x...)
		legacyFFT(want, false)
		got := append([]complex128(nil), x...)
		FFT(got)
		complexBitEqual(t, fmt.Sprintf("FFT n=%d", n), got, want)

		wantInv := append([]complex128(nil), x...)
		legacyFFT(wantInv, true)
		nn := complex(float64(n), 0)
		for i := range wantInv {
			wantInv[i] /= nn
		}
		gotInv := append([]complex128(nil), x...)
		IFFT(gotInv)
		complexBitEqual(t, fmt.Sprintf("IFFT n=%d", n), gotInv, wantInv)
	}
}

func TestPlanFFTRoundTrip(t *testing.T) {
	x := randComplex(1024, 9)
	y := append([]complex128(nil), x...)
	FFT(y)
	IFFT(y)
	for i := range x {
		if cmplx.Abs(y[i]-x[i]) > 1e-10 {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, y[i], x[i])
		}
	}
}

func TestPlanFFTRejectsBadSizes(t *testing.T) {
	for _, n := range []int{-4, 0, 3, 12, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PlanFFT(%d) did not panic", n)
				}
			}()
			PlanFFT(n)
		}()
	}
	// Applying a plan to the wrong length must panic too.
	defer func() {
		if recover() == nil {
			t.Error("Transform on wrong length did not panic")
		}
	}()
	PlanFFT(8).Transform(make([]complex128, 4))
}

// TestPlanCacheConcurrent hammers the plan cache from 16 goroutines
// across a spread of sizes while transforming, and checks every result
// against the serial reference. Run under -race this covers the
// lock-free read path and the LoadOrStore insertion race.
func TestPlanCacheConcurrent(t *testing.T) {
	sizes := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	want := make(map[int][]complex128)
	for _, n := range sizes {
		x := randComplex(n, int64(100+n))
		legacyFFT(x, false)
		want[n] = x
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				for _, n := range sizes {
					x := randComplex(n, int64(100+n))
					PlanFFT(n).Transform(x)
					for i := range x {
						if x[i] != want[n][i] {
							errs <- fmt.Errorf("goroutine %d: n=%d sample %d: %v != %v",
								g, n, i, x[i], want[n][i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestNextPowerOfTwoContract(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, out := range cases {
		if got := NextPowerOfTwo(in); got != out {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", in, got, out)
		}
	}
	for _, bad := range []int{0, -1, -1024} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NextPowerOfTwo(%d) did not panic", bad)
				}
			}()
			NextPowerOfTwo(bad)
		}()
	}
}

// TestNextPowerOfTwoCallSitesGuarded exercises the call sites that used
// to be able to reach the panic with degenerate inputs.
func TestNextPowerOfTwoCallSitesGuarded(t *testing.T) {
	if got := FFTReal(nil); len(got) != 0 {
		t.Fatalf("FFTReal(nil) returned %d bins", len(got))
	}
	if got := FFTReal([]float64{}); len(got) != 0 {
		t.Fatalf("FFTReal(empty) returned %d bins", len(got))
	}
	if got := FFTReal([]float64{1, 2, 3}); len(got) != 4 {
		t.Fatalf("FFTReal(3 samples) returned %d bins, want 4", len(got))
	}
	// OverlapSave guards both operands before sizing its transform.
	if got := (Engine{Parallelism: 2}).OverlapSave(nil, []float64{1}); len(got) != 0 {
		t.Fatal("OverlapSave with empty signal not guarded")
	}
	if got := (Engine{Parallelism: 2}).OverlapSave([]float64{1, 2}, nil); len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatal("OverlapSave with empty kernel not guarded")
	}
}
