package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
	"testing"

	"pmuleak/internal/xrand"
)

// referenceFFT is a frozen copy of the reference serial radix-2
// implementation with the symmetric twiddle tables: per-entry cos/sin
// with fw[0] = (1,0), fw[quarter] = (0,-1) and fw[half-k] = -conj(fw[k])
// enforced bit-exactly, one butterfly per (stage, column) in stage
// order. Every production transform — planned, fused, and real-input —
// is required to reproduce its output bit for bit (or value-for-value
// where ±0 is documented to differ), because the decision paths are
// defined as "whatever the reference serial path computes".
func referenceFFT(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	if n == 1 {
		return
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		quarter := half >> 1
		w := make([]complex128, half)
		w[0] = complex(1, 0)
		for k := 1; k < half; k++ {
			switch {
			case k == quarter:
				w[k] = complex(0, -1)
			case k < quarter:
				theta := 2 * math.Pi * float64(k) / float64(size)
				w[k] = complex(math.Cos(theta), -math.Sin(theta))
			default:
				m := w[half-k]
				w[k] = complex(-real(m), imag(m))
			}
		}
		if inverse {
			for k := range w {
				w[k] = complex(real(w[k]), -imag(w[k]))
			}
		}
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w[k]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// legacyFFT is a frozen copy of the original pre-plan implementation,
// which generated each stage's twiddles by the iterative recurrence
// w *= exp(±2πi/size). The production tables replaced that recurrence
// with the symmetric per-entry construction above (the recurrence's
// rounding error grows along the table and breaks the w[half-k] =
// -conj(w[k]) identity the real-input transform depends on), so the
// legacy output is no longer bit-identical — TestPlanFFTNearLegacy pins
// the redefinition to rounding-level distance instead.
func legacyFFT(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return
	}
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := cmplx.Exp(complex(0, sign*2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= step
			}
		}
	}
}

func randComplex(n int, seed int64) []complex128 {
	rng := xrand.New(seed)
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
	}
	return x
}

func complexBitEqual(t *testing.T, label string, got, want []complex128) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(real(got[i])) != math.Float64bits(real(want[i])) ||
			math.Float64bits(imag(got[i])) != math.Float64bits(imag(want[i])) {
			t.Fatalf("%s: sample %d differs: %v != %v", label, i, got[i], want[i])
		}
	}
}

func floatBitEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: sample %d differs: %v != %v (delta %g)",
				label, i, got[i], want[i], got[i]-want[i])
		}
	}
}

// TestPlanFFTBitIdenticalToReference checks FFT/IFFT against the frozen
// reference in both kernel modes: the fused (paired-stage) kernels do
// the same arithmetic per element as the reference loop, so "fused" is
// held to bitwise equality, not a tolerance.
func TestPlanFFTBitIdenticalToReference(t *testing.T) {
	defer SetFusedKernels(FusedKernels())
	for _, fused := range []bool{false, true} {
		SetFusedKernels(fused)
		for n := 1; n <= 4096; n <<= 1 {
			x := randComplex(n, int64(n))
			want := append([]complex128(nil), x...)
			referenceFFT(want, false)
			got := append([]complex128(nil), x...)
			FFT(got)
			complexBitEqual(t, fmt.Sprintf("fused=%v FFT n=%d", fused, n), got, want)

			wantInv := append([]complex128(nil), x...)
			referenceFFT(wantInv, true)
			nn := complex(float64(n), 0)
			for i := range wantInv {
				wantInv[i] /= nn
			}
			gotInv := append([]complex128(nil), x...)
			IFFT(gotInv)
			complexBitEqual(t, fmt.Sprintf("fused=%v IFFT n=%d", fused, n), gotInv, wantInv)
		}
	}
}

// TestPlanFFTNearLegacy documents the one deliberate numeric
// redefinition of this codebase's history: replacing the recurrence
// twiddles with the symmetric tables moved individual bins by at most a
// few ULPs. The distance to the legacy output is pinned at rounding
// level so an accidental algorithmic change (wrong stage, wrong sign)
// cannot hide behind "the tables changed". The empirical companion is
// the paperbench golden suite, whose stdout was verified byte-identical
// across the switch.
func TestPlanFFTNearLegacy(t *testing.T) {
	for n := 1; n <= 4096; n <<= 1 {
		x := randComplex(n, int64(n))
		want := append([]complex128(nil), x...)
		legacyFFT(want, false)
		got := append([]complex128(nil), x...)
		FFT(got)
		var scale float64
		for _, v := range want {
			if a := cmplx.Abs(v); a > scale {
				scale = a
			}
		}
		tol := 1e-13 * scale * float64(bits.Len(uint(n)))
		for i := range got {
			if d := cmplx.Abs(got[i] - want[i]); d > tol {
				t.Fatalf("n=%d bin %d: %g from legacy (tol %g)", n, i, d, tol)
			}
		}
	}
}

func TestPlanFFTRoundTrip(t *testing.T) {
	x := randComplex(1024, 9)
	y := append([]complex128(nil), x...)
	FFT(y)
	IFFT(y)
	for i := range x {
		if cmplx.Abs(y[i]-x[i]) > 1e-10 {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, y[i], x[i])
		}
	}
}

func TestPlanFFTRejectsBadSizes(t *testing.T) {
	for _, n := range []int{-4, 0, 3, 12, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PlanFFT(%d) did not panic", n)
				}
			}()
			PlanFFT(n)
		}()
	}
	// Applying a plan to the wrong length must panic too.
	defer func() {
		if recover() == nil {
			t.Error("Transform on wrong length did not panic")
		}
	}()
	PlanFFT(8).Transform(make([]complex128, 4))
}

// TestPlanCacheConcurrent hammers the plan cache from 16 goroutines
// across a spread of sizes while transforming, and checks every result
// against the serial reference. Run under -race this covers the
// lock-free read path and the LoadOrStore insertion race.
func TestPlanCacheConcurrent(t *testing.T) {
	sizes := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	want := make(map[int][]complex128)
	for _, n := range sizes {
		x := randComplex(n, int64(100+n))
		referenceFFT(x, false)
		want[n] = x
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				for _, n := range sizes {
					x := randComplex(n, int64(100+n))
					PlanFFT(n).Transform(x)
					for i := range x {
						if x[i] != want[n][i] {
							errs <- fmt.Errorf("goroutine %d: n=%d sample %d: %v != %v",
								g, n, i, x[i], want[n][i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestNextPowerOfTwoContract(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, out := range cases {
		if got := NextPowerOfTwo(in); got != out {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", in, got, out)
		}
	}
	for _, bad := range []int{0, -1, -1024} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NextPowerOfTwo(%d) did not panic", bad)
				}
			}()
			NextPowerOfTwo(bad)
		}()
	}
}

// TestNextPowerOfTwoCallSitesGuarded exercises the call sites that used
// to be able to reach the panic with degenerate inputs.
func TestNextPowerOfTwoCallSitesGuarded(t *testing.T) {
	if got := FFTReal(nil); len(got) != 0 {
		t.Fatalf("FFTReal(nil) returned %d bins", len(got))
	}
	if got := FFTReal([]float64{}); len(got) != 0 {
		t.Fatalf("FFTReal(empty) returned %d bins", len(got))
	}
	if got := FFTReal([]float64{1, 2, 3}); len(got) != 4 {
		t.Fatalf("FFTReal(3 samples) returned %d bins, want 4", len(got))
	}
	// OverlapSave guards both operands before sizing its transform.
	if got := (Engine{Parallelism: 2}).OverlapSave(nil, []float64{1}); len(got) != 0 {
		t.Fatal("OverlapSave with empty signal not guarded")
	}
	if got := (Engine{Parallelism: 2}).OverlapSave([]float64{1, 2}, nil); len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatal("OverlapSave with empty kernel not guarded")
	}
}
