package dsp

import "math"

// RayleighFit estimates the scale parameter sigma of a Rayleigh
// distribution from samples by maximum likelihood:
//
//	sigma^2 = (1/2N) * sum(x_i^2)
//
// The paper observes (Fig. 6) that the distance between consecutive bit
// start points follows a Rayleigh-like, positively skewed distribution;
// the experiments fit it to characterize the timing spread.
func RayleighFit(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v * v
	}
	return math.Sqrt(sum / (2 * float64(len(x))))
}

// RayleighPDF evaluates the Rayleigh density with scale sigma at v.
func RayleighPDF(v, sigma float64) float64 {
	if v < 0 || sigma <= 0 {
		return 0
	}
	s2 := sigma * sigma
	return v / s2 * math.Exp(-v*v/(2*s2))
}

// RayleighCDF evaluates the Rayleigh distribution function at v.
func RayleighCDF(v, sigma float64) float64 {
	if v <= 0 || sigma <= 0 {
		return 0
	}
	return 1 - math.Exp(-v*v/(2*sigma*sigma))
}

// RayleighMedian returns the median of a Rayleigh distribution with
// scale sigma: sigma*sqrt(2 ln 2). The receiver picks the median of the
// observed start-point distances as the signaling time (§IV-B2), and
// tests compare that empirical median against this closed form.
func RayleighMedian(sigma float64) float64 {
	return sigma * math.Sqrt(2*math.Ln2)
}
