package dsp

import (
	"math"
	"math/cmplx"
)

// ResonatorBank tracks the amplitude of a set of narrowband components
// at exact (not bin-quantized) baseband frequencies. Each component is
// followed by a single-pole complex resonator — an exponentially
// weighted sliding DFT:
//
//	z[n] = decay * e^{i·2π·f/fs} * z[n-1] + x[n]
//
// whose magnitude, scaled by (1-decay), estimates the component's
// amplitude with a time constant of 1/(1-decay) samples and an effective
// bandwidth of roughly (1-decay)·fs/π Hz.
//
// The receiver uses it as the practical form of the paper's Eq. (1):
// summing the tracked magnitudes of the VRM spike set S gives the
// per-sample acquisition trace Y[n] without FFT-grid scalloping loss.
//
// offsets are the component frequencies normalized by the sample rate
// (f/fs, may be negative); decay must be in (0, 1).
func ResonatorBank(x []complex128, offsets []float64, decay float64) []float64 {
	if decay <= 0 || decay >= 1 {
		panic("dsp: ResonatorBank decay must be in (0,1)")
	}
	rot := make([]complex128, len(offsets))
	for i, f := range offsets {
		rot[i] = cmplx.Exp(complex(0, 2*math.Pi*f)) * complex(decay, 0)
	}
	z := make([]complex128, len(offsets))
	out := make([]float64, len(x))
	gain := 1 - decay
	for n, v := range x {
		var sum float64
		for i := range z {
			z[i] = z[i]*rot[i] + v
			sum += cmplx.Abs(z[i])
		}
		out[n] = sum * gain
	}
	return out
}

// ResonatorBandwidth returns the approximate -3 dB bandwidth (Hz) of a
// resonator with the given decay at the given sample rate.
func ResonatorBandwidth(decay, sampleRate float64) float64 {
	return (1 - decay) * sampleRate / math.Pi
}

// DecayForTimeConstant returns the decay factor whose step-response time
// constant is tc seconds at the given sample rate.
func DecayForTimeConstant(tc, sampleRate float64) float64 {
	samples := tc * sampleRate
	if samples < 1 {
		samples = 1
	}
	return 1 - 1/samples
}
