package dsp

import (
	"math"
	"math/cmplx"
	"testing"

	"pmuleak/internal/xrand"
)

func resTone(n int, f, amp float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(amp, 0) * cmplx.Exp(complex(0, 2*math.Pi*f*float64(i)))
	}
	return x
}

func TestResonatorTracksOnFrequencyTone(t *testing.T) {
	const f = 0.123 // normalized
	x := resTone(20000, f, 2.5)
	y := ResonatorBank(x, []float64{f}, 0.995)
	// After several time constants the output settles at the amplitude.
	settled := y[10000:]
	if m := Mean(settled); math.Abs(m-2.5) > 0.05 {
		t.Fatalf("settled output = %v, want 2.5", m)
	}
}

func TestResonatorTracksOffGridFrequency(t *testing.T) {
	// A frequency that falls exactly between FFT bins must be tracked
	// at full amplitude; that is the whole point versus SlidingDFT.
	const m = 256
	f := (41.5) / float64(m) // half-bin offset for an m-point DFT
	x := resTone(20000, f, 1.0)
	y := ResonatorBank(x, []float64{f}, 0.995)
	if got := Mean(y[10000:]); math.Abs(got-1.0) > 0.03 {
		t.Fatalf("off-grid amplitude = %v, want 1.0", got)
	}
}

func TestResonatorRejectsDistantTone(t *testing.T) {
	const fTone, fTrack = 0.2, 0.3
	x := resTone(20000, fTone, 1.0)
	y := ResonatorBank(x, []float64{fTrack}, 0.995)
	if got := Mean(y[10000:]); got > 0.05 {
		t.Fatalf("distant tone leaked: %v", got)
	}
}

func TestResonatorStepResponseTimeConstant(t *testing.T) {
	const f = 0.1
	const decay = 0.99 // time constant 100 samples
	x := resTone(2000, f, 1.0)
	y := ResonatorBank(x, []float64{f}, decay)
	// At one time constant the response is ~1-1/e of final.
	if y[100] < 0.55 || y[100] > 0.72 {
		t.Fatalf("response at tau = %v, want ~0.63", y[100])
	}
	if y[1000] < 0.99 {
		t.Fatalf("response at 10 tau = %v", y[1000])
	}
}

func TestResonatorSumsMultipleComponents(t *testing.T) {
	x := resTone(20000, 0.1, 1.0)
	x2 := resTone(20000, -0.2, 0.5)
	for i := range x {
		x[i] += x2[i]
	}
	y := ResonatorBank(x, []float64{0.1, -0.2}, 0.995)
	if got := Mean(y[10000:]); math.Abs(got-1.5) > 0.05 {
		t.Fatalf("summed amplitude = %v, want 1.5", got)
	}
}

func TestResonatorTracksAmplitudeModulation(t *testing.T) {
	// On-off keyed tone: output must follow the envelope.
	const f = 0.15
	n := 30000
	x := make([]complex128, n)
	for i := range x {
		amp := 1.0
		if (i/5000)%2 == 1 {
			amp = 0
		}
		x[i] = complex(amp, 0) * cmplx.Exp(complex(0, 2*math.Pi*f*float64(i)))
	}
	y := ResonatorBank(x, []float64{f}, 0.998) // tau = 500 samples
	on := Mean(y[3000:5000])
	off := Mean(y[8000:10000])
	if off > on/10 {
		t.Fatalf("envelope not tracked: on %v off %v", on, off)
	}
}

func TestResonatorBadDecayPanics(t *testing.T) {
	for _, d := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("decay %v accepted", d)
				}
			}()
			ResonatorBank(nil, []float64{0.1}, d)
		}()
	}
}

func TestResonatorNoiseFloorScales(t *testing.T) {
	rng := xrand.New(40)
	x := make([]complex128, 50000)
	for i := range x {
		x[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
	}
	// Narrower resonator (higher decay) -> lower noise output.
	wide := Mean(ResonatorBank(x, []float64{0.1}, 0.99)[10000:])
	narrow := Mean(ResonatorBank(x, []float64{0.1}, 0.999)[10000:])
	if narrow >= wide {
		t.Fatalf("narrowband noise %v not below wideband %v", narrow, wide)
	}
}

func TestResonatorBandwidthAndDecayHelpers(t *testing.T) {
	d := DecayForTimeConstant(100e-6, 2.4e6) // 240 samples
	if math.Abs(d-(1-1.0/240)) > 1e-12 {
		t.Fatalf("decay = %v", d)
	}
	bw := ResonatorBandwidth(d, 2.4e6)
	want := (1.0 / 240) * 2.4e6 / math.Pi
	if math.Abs(bw-want) > 1e-6 {
		t.Fatalf("bandwidth = %v, want %v", bw, want)
	}
	// Degenerate time constant clamps to one sample.
	if d := DecayForTimeConstant(0, 2.4e6); d != 0 {
		t.Fatalf("zero tc decay = %v, want 0", d)
	}
}
