package dsp

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzRFFTMatchesComplexFFT feeds arbitrary finite real signals to the
// real-input kernel and holds it to the equivalence contract against
// the complex reference on the same bits:
//
//   - the RFFT spectrum is value-identical (==) to FFT of the packed
//     signal, and its magnitudes and powers are bit-identical;
//   - RFFT→IRFFT reproduces the packed FFT→IFFT round trip
//     value-exactly — 0 ULP from the reference round trip, which
//     subsumes the "within 1 ULP" requirement — and stays within an
//     O(eps·log n) absolute band of the original signal;
//   - a non-power-of-two length is rejected by panic, never by a
//     silently wrong spectrum.
//
// The fuzzer owns input generation: bytes decode to float64 samples,
// non-finite values are squashed and magnitudes clamped to 1e150 (the
// contract covers finite signals whose spectra stay finite — a NaN
// poisons == trivially, and once a sum overflows to Inf the halved
// dataflow's Inf/NaN propagation legitimately differs from the
// reference's; capture-pipeline samples are O(1), nowhere near either
// edge), and the usable prefix is truncated to the largest power of
// two up to 2048 samples.
func FuzzRFFTMatchesComplexFFT(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 8))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	seed := make([]byte, 64*8)
	for i := 0; i < 64; i++ {
		binary.LittleEndian.PutUint64(seed[i*8:], math.Float64bits(math.Sin(float64(i))))
	}
	f.Add(seed)
	huge := make([]byte, 8*8)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(huge[i*8:], math.Float64bits(1e100*float64(1-2*(i&1))))
	}
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		vals := make([]float64, 0, len(data)/8)
		for i := 0; i+8 <= len(data) && len(vals) < 2048; i += 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[i:]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			if v > 1e150 {
				v = 1e150
			} else if v < -1e150 {
				v = -1e150
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			return
		}
		n := 1
		for n*2 <= len(vals) {
			n *= 2
		}
		x := vals[:n]

		spec := RFFT(x)
		want := make([]complex128, n)
		for i, v := range x {
			want[i] = complex(v, 0)
		}
		FFT(want)
		for i := range spec {
			if spec[i] != want[i] {
				t.Fatalf("n=%d bin %d: RFFT %v != complex FFT %v", n, i, spec[i], want[i])
			}
		}
		gm, wm := Magnitudes(spec), Magnitudes(want)
		for i := range gm {
			if math.Float64bits(gm[i]) != math.Float64bits(wm[i]) {
				t.Fatalf("n=%d bin %d: |RFFT| %v != |FFT| %v", n, i, gm[i], wm[i])
			}
		}

		rt := IRFFT(spec)
		IFFT(want)
		peak := 0.0
		for _, v := range x {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		tol := 1e-13 * peak * float64(log2int(n)+1)
		for i := range rt {
			if rt[i] != real(want[i]) {
				t.Fatalf("n=%d sample %d: round trip %v != reference %v", n, i, rt[i], real(want[i]))
			}
			if d := math.Abs(rt[i] - x[i]); d > tol {
				t.Fatalf("n=%d sample %d: round trip %g off input %g by %g (tol %g)",
					n, i, rt[i], x[i], d, tol)
			}
		}

		// Non-power-of-two rejection: 3·2^(k-1) is never a power of two.
		if bad := n + n/2; n >= 2 && bad <= len(vals) {
			func() {
				defer func() {
					if recover() == nil {
						t.Fatalf("RFFT accepted non-power-of-two length %d", bad)
					}
				}()
				RFFT(vals[:bad])
			}()
		}
	})
}
