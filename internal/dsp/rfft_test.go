package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
	"testing"

	"pmuleak/internal/xrand"
)

// The real-input kernel's equivalence contract is Go value equality
// (==), not Float64bits identity: skipping the multiplies by (1,0) and
// (0,-1) and deriving the upper half-spectrum by conjugation can flip
// the sign of a zero but can never change a value, and == identifies
// +0 with -0 while still rejecting every real difference (NaN never
// appears: inputs are finite and the kernels divide only by the
// transform length). Magnitudes and power spectra — everything the
// decision paths consume — erase zero signs (Hypot and squaring are
// sign-blind), so those are checked bitwise.
func complexValueEqual(t *testing.T, label string, got, want []complex128) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: bin %d: %v != %v", label, i, got[i], want[i])
		}
	}
}

func floatValueEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: sample %d: %v != %v", label, i, got[i], want[i])
		}
	}
}

func randReal(n int, seed int64) []float64 {
	rng := xrand.New(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Normal(0, 1)
	}
	return x
}

// packComplex lifts a real signal into a complex buffer, the reference
// way of feeding real data to the complex FFT.
func packComplex(x []float64) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	return out
}

// withFusedKernels runs fn once per kernel mode and restores the
// process-wide switch afterwards.
func withFusedKernels(t *testing.T, fn func(t *testing.T, fused bool)) {
	t.Helper()
	prev := FusedKernels()
	defer SetFusedKernels(prev)
	for _, fused := range []bool{false, true} {
		SetFusedKernels(fused)
		fn(t, fused)
	}
}

// TestRFFTMatchesComplexReference is the core equivalence claim of the
// real-input kernel: for every size, RFFT equals the frozen serial
// reference on the packed signal — value-exact spectra, bit-exact
// magnitudes and power spectra — in both kernel modes.
func TestRFFTMatchesComplexReference(t *testing.T) {
	withFusedKernels(t, func(t *testing.T, fused bool) {
		for n := 1; n <= 8192; n <<= 1 {
			x := randReal(n, int64(n)+7)
			want := packComplex(x)
			referenceFFT(want, false)
			got := RFFT(x)
			complexValueEqual(t, fmt.Sprintf("fused=%v RFFT n=%d", fused, n), got, want)
			floatBitEqual(t, fmt.Sprintf("fused=%v |RFFT| n=%d", fused, n),
				Magnitudes(got), Magnitudes(want))
			floatBitEqual(t, fmt.Sprintf("fused=%v |RFFT|^2 n=%d", fused, n),
				PowerSpectrum(got), PowerSpectrum(want))
		}
	})
}

// TestRealTransformMatchesPlanTransform checks the plan-level kernel
// directly (no allocation wrappers) against the plan's own complex
// transform, which TestPlanFFTBitIdenticalToReference anchors to the
// frozen reference.
func TestRealTransformMatchesPlanTransform(t *testing.T) {
	for n := 1; n <= 4096; n <<= 1 {
		x := randReal(n, int64(n)+21)
		want := packComplex(x)
		p := PlanFFT(n)
		p.Transform(want)
		got := make([]complex128, n)
		p.RealTransform(got, x)
		complexValueEqual(t, fmt.Sprintf("RealTransform n=%d", n), got, want)
	}
}

// TestRFFTConjugateSymmetry pins the structural property every
// consumer of the half-spectrum relies on: X[n-k] == conj(X[k]) and the
// DC/Nyquist bins are purely real.
func TestRFFTConjugateSymmetry(t *testing.T) {
	for _, n := range []int{2, 8, 64, 1024} {
		spec := RFFT(randReal(n, int64(n)+33))
		if imag(spec[0]) != 0 {
			t.Fatalf("n=%d: DC bin not real: %v", n, spec[0])
		}
		if n > 1 && imag(spec[n/2]) != 0 {
			t.Fatalf("n=%d: Nyquist bin not real: %v", n, spec[n/2])
		}
		for k := 1; k < n/2; k++ {
			c := complex(real(spec[k]), -imag(spec[k]))
			if spec[n-k] != c {
				t.Fatalf("n=%d bin %d: %v != conj mirror %v", n, n-k, spec[n-k], c)
			}
		}
	}
}

// TestIRFFTRoundTrip holds the inverse to the strongest claim available
// for a transform pair: RFFT→IRFFT reproduces the reference
// FFT→IFFT→real-parts round trip value-exactly (0 ULP from the
// reference — stronger than the "within 1 ULP" the harness originally
// demanded), and its absolute deviation from the input is bounded by
// the usual O(eps·log n) FFT error relative to the signal's scale.
func TestIRFFTRoundTrip(t *testing.T) {
	withFusedKernels(t, func(t *testing.T, fused bool) {
		for n := 1; n <= 4096; n <<= 1 {
			x := randReal(n, int64(n)+55)
			spec := RFFT(x)
			got := IRFFT(spec)

			ref := packComplex(x)
			referenceFFT(ref, false)
			referenceFFT(ref, true)
			want := make([]float64, n)
			for i, v := range ref {
				want[i] = real(v) / float64(n)
			}
			floatValueEqual(t, fmt.Sprintf("fused=%v round trip n=%d", fused, n), got, want)

			var peak float64
			for _, v := range x {
				if a := math.Abs(v); a > peak {
					peak = a
				}
			}
			tol := 1e-13 * peak * float64(log2int(n)+1)
			for i := range got {
				if d := math.Abs(got[i] - x[i]); d > tol {
					t.Fatalf("fused=%v n=%d sample %d: round trip off by %g (tol %g)",
						fused, n, i, d, tol)
				}
			}
		}
	})
}

func log2int(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// TestFFTRealMatchesReferencePadding covers FFTReal's zero-padding
// contract through the new kernel: a non-power-of-two signal is padded
// to the next power of two and transformed, matching the historical
// pack-pad-FFT path value-exactly in both kernel modes.
func TestFFTRealMatchesReferencePadding(t *testing.T) {
	withFusedKernels(t, func(t *testing.T, fused bool) {
		for _, n := range []int{1, 2, 3, 5, 100, 1000, 1024} {
			x := randReal(n, int64(n)+91)
			padded := make([]float64, NextPowerOfTwo(n))
			copy(padded, x)
			want := packComplex(padded)
			referenceFFT(want, false)
			got := FFTReal(x)
			complexValueEqual(t, fmt.Sprintf("fused=%v FFTReal n=%d", fused, n), got, want)
		}
	})
}

// TestRFFTRejectsBadSizes mirrors PlanFFT's contract on the real entry
// points: empty input yields an empty spectrum, anything that is not a
// power of two panics.
func TestRFFTRejectsBadSizes(t *testing.T) {
	if got := RFFT(nil); got != nil {
		t.Fatalf("RFFT(nil) = %v", got)
	}
	if got := IRFFT(nil); got != nil {
		t.Fatalf("IRFFT(nil) = %v", got)
	}
	for _, n := range []int{3, 12, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RFFT(len %d) did not panic", n)
				}
			}()
			RFFT(make([]float64, n))
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("IRFFT(len %d) did not panic", n)
				}
			}()
			IRFFT(make([]complex128, n))
		}()
	}
}

// --- Closed-form and conservation properties -------------------------

// TestParseval checks energy conservation sum|x|^2 == (1/n)·sum|X|^2
// for both the complex and the real transform.
func TestParseval(t *testing.T) {
	for _, n := range []int{2, 16, 256, 2048} {
		x := randReal(n, int64(n)+13)
		var timeE float64
		for _, v := range x {
			timeE += v * v
		}

		spec := RFFT(x)
		var freqE float64
		for _, v := range spec {
			re, im := real(v), imag(v)
			freqE += re*re + im*im
		}
		freqE /= float64(n)
		if d := math.Abs(timeE - freqE); d > 1e-9*timeE {
			t.Fatalf("RFFT n=%d: Parseval violated: %g vs %g", n, timeE, freqE)
		}

		c := randComplex(n, int64(n)+14)
		timeE = 0
		for _, v := range c {
			timeE += real(v)*real(v) + imag(v)*imag(v)
		}
		FFT(c)
		freqE = 0
		for _, v := range c {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		freqE /= float64(n)
		if d := math.Abs(timeE - freqE); d > 1e-9*timeE {
			t.Fatalf("FFT n=%d: Parseval violated: %g vs %g", n, timeE, freqE)
		}
	}
}

// TestRFFTLinearity: RFFT(a·x + b·y) == a·RFFT(x) + b·RFFT(y) up to
// rounding.
func TestRFFTLinearity(t *testing.T) {
	const n = 512
	x := randReal(n, 71)
	y := randReal(n, 72)
	const a, b = 2.5, -1.25
	mix := make([]float64, n)
	for i := range mix {
		mix[i] = a*x[i] + b*y[i]
	}
	got := RFFT(mix)
	sx, sy := RFFT(x), RFFT(y)
	for i := range got {
		want := complex(a, 0)*sx[i] + complex(b, 0)*sy[i]
		if cmplx.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("bin %d: %v != %v", i, got[i], want)
		}
	}
}

// TestRFFTImpulse: a unit impulse at t=0 has the all-ones spectrum,
// exactly — every butterfly only ever adds zeros to ones.
func TestRFFTImpulse(t *testing.T) {
	for _, n := range []int{1, 2, 8, 256} {
		x := make([]float64, n)
		x[0] = 1
		for k, v := range RFFT(x) {
			if v != complex(1, 0) {
				t.Fatalf("n=%d bin %d: impulse spectrum %v != 1", n, k, v)
			}
		}
	}
}

// TestRFFTDC: a constant signal concentrates in bin 0 with value
// exactly n (power-of-two sums of ones are exact in binary floating
// point); the other bins are rounding residue.
func TestRFFTDC(t *testing.T) {
	for _, n := range []int{2, 16, 1024} {
		x := make([]float64, n)
		for i := range x {
			x[i] = 1
		}
		spec := RFFT(x)
		if spec[0] != complex(float64(n), 0) {
			t.Fatalf("n=%d: DC bin %v != %d", n, spec[0], n)
		}
		for k := 1; k < n; k++ {
			if cmplx.Abs(spec[k]) > 1e-12*float64(n) {
				t.Fatalf("n=%d bin %d: DC leakage %v", n, k, spec[k])
			}
		}
	}
}

// TestRFFTSingleTone: cos(2π·k0·i/n) lands n/2 in bins k0 and n-k0.
func TestRFFTSingleTone(t *testing.T) {
	const n = 1024
	for _, k0 := range []int{1, 37, 300, n/2 - 1} {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Cos(2 * math.Pi * float64(k0) * float64(i) / float64(n))
		}
		spec := RFFT(x)
		for k := 0; k < n; k++ {
			want := 0.0
			if k == k0 || k == n-k0 {
				want = float64(n) / 2
			}
			if math.Abs(cmplx.Abs(spec[k])-want) > 1e-8*float64(n) {
				t.Fatalf("k0=%d bin %d: |X|=%g want %g", k0, k, cmplx.Abs(spec[k]), want)
			}
		}
	}
}
