package dsp

import (
	"math"
	"math/cmplx"
)

// SlidingDFT evaluates the paper's Eq. (1) acquisition efficiently: for a
// set S of frequency bins, it computes
//
//	Y[n] = sum over k in S of |F_n[k]|
//
// where F_n[k] is the M-point DFT of the window of samples ending at n.
// A direct STFT with hop 1 ("maximum overlapping") costs O(N·M log M);
// the sliding DFT updates each tracked bin recursively in O(1) per
// sample, so the whole acquisition is O(N·|S|).
//
// The output has len(x) - m + 1 entries: Y[0] corresponds to the window
// x[0:m].
func SlidingDFT(x []complex128, m int, bins []int) []float64 {
	if m <= 0 {
		panic("dsp: SlidingDFT window must be positive")
	}
	if len(x) < m {
		return nil
	}
	// Twiddle per bin: e^{+2πi k / M} (advance of the window by one
	// sample rotates each bin by this factor).
	tw := make([]complex128, len(bins))
	acc := make([]complex128, len(bins))
	for i, k := range bins {
		tw[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k)/float64(m)))
	}
	// exact computes bin k of the M-point DFT of the window starting
	// at offset start.
	exact := func(start, k int) complex128 {
		var sum complex128
		w := complex(1, 0)
		step := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(m)))
		for j := 0; j < m; j++ {
			sum += x[start+j] * w
			w *= step
		}
		return sum
	}
	for i, k := range bins {
		acc[i] = exact(0, k)
	}
	out := make([]float64, len(x)-m+1)
	sumAbs := func() float64 {
		var s float64
		for _, a := range acc {
			s += cmplx.Abs(a)
		}
		return s
	}
	out[0] = sumAbs()
	// Recursive update. Every renormEvery samples, recompute the bins
	// exactly to stop floating-point drift from accumulating over
	// millions of updates.
	const renormEvery = 1 << 15
	for n := 1; n < len(out); n++ {
		oldest := x[n-1]
		newest := x[n+m-1]
		for i := range bins {
			acc[i] = (acc[i] - oldest + newest) * tw[i]
		}
		if n%renormEvery == 0 {
			for i, k := range bins {
				acc[i] = exact(n, k)
			}
		}
		out[n] = sumAbs()
	}
	return out
}

// Goertzel computes the magnitude of a single DFT bin k of x (length-n
// DFT over the whole slice) without a full FFT. It is used for spot
// checks of individual spectral spikes.
func Goertzel(x []complex128, k int) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	w := 2 * math.Pi * float64(k) / float64(n)
	coeff := complex(2*math.Cos(w), 0)
	var s0, s1, s2 complex128
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	res := s1*cmplx.Exp(complex(0, w)) - s2
	return cmplx.Abs(res)
}
