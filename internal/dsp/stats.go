package dsp

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// Variance returns the population variance of x.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var sum float64
	for _, v := range x {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(x))
}

// Stddev returns the population standard deviation of x.
func Stddev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// MeanPower returns the average of v^2 over x — the per-bit decision
// statistic of the paper's Eq. (2).
func MeanPower(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v * v
	}
	return sum / float64(len(x))
}

// Median returns the median of x without modifying it.
func Median(x []float64) float64 {
	return Quantile(x, 0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) of x using linear
// interpolation between order statistics. x is not modified.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MAD returns the median absolute deviation of x — a robust spread
// estimate. Multiply by 1.4826 to estimate a Gaussian sigma.
func MAD(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Median(x)
	dev := make([]float64, len(x))
	for i, v := range x {
		dev[i] = math.Abs(v - m)
	}
	return Median(dev)
}

// Max returns the maximum value of x and its index (-1 for empty input).
func Max(x []float64) (float64, int) {
	if len(x) == 0 {
		return 0, -1
	}
	best, idx := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, idx = v, i+1
		}
	}
	return best, idx
}

// Min returns the minimum value of x and its index (-1 for empty input).
func Min(x []float64) (float64, int) {
	if len(x) == 0 {
		return 0, -1
	}
	best, idx := x[0], 0
	for i, v := range x[1:] {
		if v < best {
			best, idx = v, i+1
		}
	}
	return best, idx
}

// Normalize scales x in place so its maximum absolute value is 1.
// A zero signal is left unchanged.
func Normalize(x []float64) {
	var peak float64
	for _, v := range x {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	if peak == 0 {
		return
	}
	for i := range x {
		x[i] /= peak
	}
}

// DB converts a linear power ratio to decibels, clamping at a floor to
// avoid -Inf for zero power.
func DB(ratio float64) float64 {
	const floor = 1e-30
	if ratio < floor {
		ratio = floor
	}
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}
