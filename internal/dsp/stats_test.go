package dsp

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"pmuleak/internal/xrand"
)

func TestMeanVarianceStddev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); !approxEqual(m, 5, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(x); !approxEqual(v, 4, 1e-12) {
		t.Errorf("Variance = %v", v)
	}
	if s := Stddev(x); !approxEqual(s, 2, 1e-12) {
		t.Errorf("Stddev = %v", s)
	}
}

func TestEmptyStats(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || MeanPower(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-input stats not zero")
	}
	if _, i := Max(nil); i != -1 {
		t.Error("Max(nil) index != -1")
	}
	if _, i := Min(nil); i != -1 {
		t.Error("Min(nil) index != -1")
	}
}

func TestMeanPower(t *testing.T) {
	x := []float64{1, -2, 3}
	if got := MeanPower(x); !approxEqual(got, 14.0/3, 1e-12) {
		t.Errorf("MeanPower = %v", got)
	}
}

func TestMedianOddEven(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); !approxEqual(m, 2, 1e-12) {
		t.Errorf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); !approxEqual(m, 2.5, 1e-12) {
		t.Errorf("even median = %v", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	x := []float64{5, 1, 4}
	Median(x)
	if x[0] != 5 || x[1] != 1 || x[2] != 4 {
		t.Fatalf("Median mutated input: %v", x)
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 10}, {0.5, 5}, {0.25, 2.5}, {0.9, 9},
	}
	for _, c := range cases {
		if got := Quantile(x, c.q); !approxEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Out-of-range q clamps.
	if got := Quantile(x, -1); got != 0 {
		t.Errorf("Quantile(-1) = %v", got)
	}
	if got := Quantile(x, 2); got != 10 {
		t.Errorf("Quantile(2) = %v", got)
	}
}

func TestQuantileMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		x := make([]float64, 1+rng.Intn(100))
		for i := range x {
			x[i] = rng.Normal(0, 100)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(x, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxMin(t *testing.T) {
	x := []float64{3, 9, -4, 9, 0}
	if v, i := Max(x); v != 9 || i != 1 {
		t.Errorf("Max = %v at %d", v, i)
	}
	if v, i := Min(x); v != -4 || i != 2 {
		t.Errorf("Min = %v at %d", v, i)
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{-4, 2, 1}
	Normalize(x)
	if !approxEqual(x[0], -1, 1e-12) || !approxEqual(x[1], 0.5, 1e-12) {
		t.Fatalf("Normalize = %v", x)
	}
	zero := []float64{0, 0}
	Normalize(zero) // must not divide by zero
	if zero[0] != 0 {
		t.Fatal("Normalize changed zero signal")
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-20, 0, 3, 40} {
		if got := DB(FromDB(db)); !approxEqual(got, db, 1e-9) {
			t.Errorf("DB(FromDB(%v)) = %v", db, got)
		}
	}
	if DB(0) > -200 {
		t.Errorf("DB(0) = %v, want very negative but finite", DB(0))
	}
	if math.IsInf(DB(0), -1) {
		t.Error("DB(0) is -Inf")
	}
}

func TestSkewnessSigns(t *testing.T) {
	rng := xrand.New(20)
	sym := make([]float64, 50000)
	skewed := make([]float64, 50000)
	for i := range sym {
		sym[i] = rng.Normal(0, 1)
		skewed[i] = rng.Rayleigh(1)
	}
	if s := Skewness(sym); math.Abs(s) > 0.1 {
		t.Errorf("normal skewness = %v, want ~0", s)
	}
	if s := Skewness(skewed); s < 0.4 {
		t.Errorf("Rayleigh skewness = %v, want positive", s)
	}
}

func TestRayleighFitRecoversSigma(t *testing.T) {
	rng := xrand.New(21)
	const sigma = 3.7
	x := make([]float64, 100000)
	for i := range x {
		x[i] = rng.Rayleigh(sigma)
	}
	got := RayleighFit(x)
	if math.Abs(got-sigma) > 0.05 {
		t.Fatalf("RayleighFit = %v, want ~%v", got, sigma)
	}
}

func TestRayleighPDFIntegratesToOne(t *testing.T) {
	const sigma = 2.0
	var integral float64
	const dx = 0.001
	for v := 0.0; v < 30; v += dx {
		integral += RayleighPDF(v, sigma) * dx
	}
	if !approxEqual(integral, 1, 1e-3) {
		t.Fatalf("PDF integral = %v", integral)
	}
}

func TestRayleighCDFMatchesPDF(t *testing.T) {
	const sigma = 1.5
	var integral float64
	const dx = 0.0005
	for v := 0.0; v < 4; v += dx {
		integral += RayleighPDF(v, sigma) * dx
	}
	if got := RayleighCDF(4, sigma); !approxEqual(got, integral, 1e-3) {
		t.Fatalf("CDF(4) = %v, integral = %v", got, integral)
	}
}

func TestRayleighMedianClosedForm(t *testing.T) {
	const sigma = 2.2
	med := RayleighMedian(sigma)
	if got := RayleighCDF(med, sigma); !approxEqual(got, 0.5, 1e-9) {
		t.Fatalf("CDF(median) = %v, want 0.5", got)
	}
}

func TestRayleighMedianMatchesEmpirical(t *testing.T) {
	rng := xrand.New(22)
	const sigma = 5.0
	x := make([]float64, 200000)
	for i := range x {
		x[i] = rng.Rayleigh(sigma)
	}
	sort.Float64s(x)
	empirical := x[len(x)/2]
	if math.Abs(empirical-RayleighMedian(sigma)) > 0.05 {
		t.Fatalf("empirical median %v vs closed form %v", empirical, RayleighMedian(sigma))
	}
}
