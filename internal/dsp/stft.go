package dsp

import (
	"bufio"
	"fmt"
	"io"
)

// Spectrogram is the magnitude output of a short-time Fourier transform:
// Mag[frame][bin], together with the parameters needed to map indices
// back to time and frequency.
type Spectrogram struct {
	Mag        [][]float64 // |STFT|, one row per frame
	FFTSize    int
	Hop        int     // samples between frame starts
	SampleRate float64 // Hz
}

// Frames reports the number of time frames.
func (s *Spectrogram) Frames() int { return len(s.Mag) }

// FrameTime returns the time (seconds) of the center of frame i.
func (s *Spectrogram) FrameTime(i int) float64 {
	return (float64(i)*float64(s.Hop) + float64(s.FFTSize)/2) / s.SampleRate
}

// BinFreq returns the baseband frequency (Hz) of bin k.
func (s *Spectrogram) BinFreq(k int) float64 {
	return BinFrequency(k, s.FFTSize, s.SampleRate)
}

// Bin returns the bin index closest to frequency f.
func (s *Spectrogram) Bin(f float64) int {
	return FrequencyBin(f, s.FFTSize, s.SampleRate)
}

// Column extracts the time series of a single frequency bin.
func (s *Spectrogram) Column(bin int) []float64 {
	out := make([]float64, len(s.Mag))
	for i, row := range s.Mag {
		out[i] = row[bin]
	}
	return out
}

// BandEnergy sums the magnitudes of the given bins for every frame,
// which is exactly the paper's Eq. (1) acquisition evaluated frame-wise.
func (s *Spectrogram) BandEnergy(bins []int) []float64 {
	out := make([]float64, len(s.Mag))
	for i, row := range s.Mag {
		var sum float64
		for _, b := range bins {
			sum += row[b]
		}
		out[i] = sum
	}
	return out
}

// STFT computes a magnitude spectrogram of the complex signal x with the
// given FFT size, hop, and window (len(window) must equal fftSize).
// Frames that would run past the end of x are dropped; a signal shorter
// than fftSize (including an empty one) yields a spectrogram with zero
// frames. This is the single-threaded path; Engine.STFT computes the
// bit-identical result on a worker pool.
func STFT(x []complex128, fftSize, hop int, window []float64, sampleRate float64) *Spectrogram {
	return Engine{Parallelism: 1}.STFT(x, fftSize, hop, window, sampleRate)
}

// WelchPSD estimates the power spectral density of x by averaging the
// power spectra of Hann-windowed segments with 50% overlap. It returns
// one value per FFT bin; a signal shorter than fftSize yields all
// zeros. The receiver uses it to locate the VRM carrier before
// demodulation. This is the single-threaded path; Engine.WelchPSD
// computes the bit-identical result on a worker pool.
func WelchPSD(x []complex128, fftSize int) []float64 {
	return Engine{Parallelism: 1}.WelchPSD(x, fftSize)
}

// STFTReal computes the magnitude spectrogram of a real-valued signal —
// the native shape of the paper's power traces — through the
// half-spectrum real transform. Its rows are bit-identical to packing x
// into a complex buffer and calling STFT; see Engine.STFTReal.
func STFTReal(x []float64, fftSize, hop int, window []float64, sampleRate float64) *Spectrogram {
	return Engine{Parallelism: 1}.STFTReal(x, fftSize, hop, window, sampleRate)
}

// WelchPSDReal estimates the Welch PSD of a real-valued signal through
// the half-spectrum real transform. The result is bit-identical to
// packing x into a complex buffer and calling WelchPSD; see
// Engine.WelchPSDReal.
func WelchPSDReal(x []float64, fftSize int) []float64 {
	return Engine{Parallelism: 1}.WelchPSDReal(x, fftSize)
}

// WriteCSV emits the spectrogram as CSV: a header row of bin center
// frequencies (Hz, FFT-shifted so they ascend), then one row per frame
// with the frame time (s) in the first column. Plotting tools consume
// this directly.
func (s *Spectrogram) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprint(bw, "time_s"); err != nil {
		return err
	}
	n := s.FFTSize
	order := make([]int, n)
	for i := range order {
		order[i] = (i + n/2) % n // negative frequencies first
	}
	for _, bin := range order {
		if _, err := fmt.Fprintf(bw, ",%.0f", s.BinFreq(bin)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}
	for f := range s.Mag {
		if _, err := fmt.Fprintf(bw, "%.6f", s.FrameTime(f)); err != nil {
			return err
		}
		for _, bin := range order {
			if _, err := fmt.Fprintf(bw, ",%.6g", s.Mag[f][bin]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}
