package dsp

import (
	"math"
	"math/cmplx"
	"strconv"
	"strings"
	"testing"

	"pmuleak/internal/xrand"
)

// tone generates a complex exponential at frequency f (Hz) sampled at sr.
func tone(n int, f, sr, amp float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(amp, 0) * cmplx.Exp(complex(0, 2*math.Pi*f*float64(i)/sr))
	}
	return x
}

func TestHannEndpointsAndPeak(t *testing.T) {
	w := Hann(65)
	if !approxEqual(w[0], 0, 1e-12) || !approxEqual(w[64], 0, 1e-12) {
		t.Errorf("Hann endpoints = %v, %v, want 0", w[0], w[64])
	}
	if !approxEqual(w[32], 1, 1e-12) {
		t.Errorf("Hann center = %v, want 1", w[32])
	}
}

func TestHammingEndpoints(t *testing.T) {
	w := Hamming(11)
	if !approxEqual(w[0], 0.08, 1e-9) {
		t.Errorf("Hamming[0] = %v, want 0.08", w[0])
	}
}

func TestBlackmanSymmetry(t *testing.T) {
	w := Blackman(64)
	for i := range w {
		if !approxEqual(w[i], w[len(w)-1-i], 1e-12) {
			t.Fatalf("Blackman not symmetric at %d", i)
		}
	}
}

func TestWindowLengthOne(t *testing.T) {
	for _, f := range []func(int) []float64{Hann, Hamming, Blackman, Rect} {
		w := f(1)
		if len(w) != 1 || w[0] != 1 {
			t.Errorf("window of length 1 = %v", w)
		}
	}
}

func TestApplyWindowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched ApplyWindow did not panic")
		}
	}()
	ApplyWindow(make([]complex128, 4), make([]float64, 5))
}

func TestSTFTFrameCountAndShape(t *testing.T) {
	x := make([]complex128, 1000)
	s := STFT(x, 256, 128, Hann(256), 1e6)
	// Frames start at 0,128,...,744 -> last full frame start 744? 744+256=1000 ok.
	want := 0
	for start := 0; start+256 <= 1000; start += 128 {
		want++
	}
	if s.Frames() != want {
		t.Fatalf("Frames = %d, want %d", s.Frames(), want)
	}
	for _, row := range s.Mag {
		if len(row) != 256 {
			t.Fatalf("row length %d", len(row))
		}
	}
}

func TestSTFTLocatesTone(t *testing.T) {
	const sr = 2.4e6
	const f = 300e3
	x := tone(8192, f, sr, 1)
	s := STFT(x, 1024, 256, Hann(1024), sr)
	bin := s.Bin(f)
	for frame, row := range s.Mag {
		_, peak := Max(row)
		if peak != bin {
			t.Fatalf("frame %d peak at bin %d, want %d", frame, peak, bin)
		}
	}
}

func TestSTFTTracksAmplitudeChange(t *testing.T) {
	// First half strong tone, second half weak: band energy must drop.
	const sr = 1e6
	const f = 100e3
	strong := tone(8192, f, sr, 1)
	weak := tone(8192, f, sr, 0.05)
	x := append(strong, weak...)
	s := STFT(x, 512, 256, Hann(512), sr)
	bin := s.Bin(f)
	col := s.Column(bin)
	n := len(col)
	early := Mean(col[:n/3])
	late := Mean(col[2*n/3:])
	if late >= early/5 {
		t.Fatalf("amplitude drop not visible: early %v late %v", early, late)
	}
}

func TestBandEnergyEqualsColumnSum(t *testing.T) {
	rng := xrand.New(5)
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
	}
	s := STFT(x, 256, 64, Hann(256), 1e6)
	bins := []int{10, 20, 30}
	be := s.BandEnergy(bins)
	for i := range be {
		var want float64
		for _, b := range bins {
			want += s.Mag[i][b]
		}
		if !approxEqual(be[i], want, 1e-12) {
			t.Fatalf("BandEnergy mismatch at frame %d", i)
		}
	}
}

func TestSpectrogramTimeMapping(t *testing.T) {
	s := &Spectrogram{FFTSize: 1024, Hop: 512, SampleRate: 1e6}
	if got := s.FrameTime(0); !approxEqual(got, 512e-6, 1e-12) {
		t.Errorf("FrameTime(0) = %v", got)
	}
	if got := s.FrameTime(2); !approxEqual(got, (1024+512)/1e6, 1e-12) {
		t.Errorf("FrameTime(2) = %v", got)
	}
}

func TestWelchPSDFindsCarrier(t *testing.T) {
	const sr = 2.4e6
	const f = 970e3
	rng := xrand.New(6)
	x := tone(16384, f, sr, 1)
	for i := range x {
		x[i] += complex(rng.Normal(0, 0.1), rng.Normal(0, 0.1))
	}
	psd := WelchPSD(x, 1024)
	_, peak := Max(psd)
	if peak != FrequencyBin(f, 1024, sr) {
		t.Fatalf("PSD peak at bin %d, want %d", peak, FrequencyBin(f, 1024, sr))
	}
}

func TestSTFTBadArgsPanic(t *testing.T) {
	x := make([]complex128, 512)
	for name, fn := range map[string]func(){
		"fftSize": func() { STFT(x, 100, 10, Hann(100), 1) },
		"hop":     func() { STFT(x, 128, 0, Hann(128), 1) },
		"window":  func() { STFT(x, 128, 32, Hann(64), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSlidingDFTMatchesDirect(t *testing.T) {
	rng := xrand.New(7)
	const n, m = 700, 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
	}
	bins := []int{3, 17}
	got := SlidingDFT(x, m, bins)
	if len(got) != n-m+1 {
		t.Fatalf("length = %d, want %d", len(got), n-m+1)
	}
	// Direct computation for a few windows.
	for _, start := range []int{0, 1, 5, 300, n - m} {
		var want float64
		for _, k := range bins {
			var sum complex128
			for j := 0; j < m; j++ {
				angle := -2 * math.Pi * float64(k) * float64(j) / float64(m)
				sum += x[start+j] * cmplx.Exp(complex(0, angle))
			}
			want += cmplx.Abs(sum)
		}
		if !approxEqual(got[start], want, 1e-6*(want+1)) {
			t.Fatalf("window %d: got %v want %v", start, got[start], want)
		}
	}
}

func TestSlidingDFTShortInput(t *testing.T) {
	if out := SlidingDFT(make([]complex128, 10), 64, []int{0}); out != nil {
		t.Fatalf("short input should return nil, got len %d", len(out))
	}
}

func TestSlidingDFTStableOverLongRuns(t *testing.T) {
	// Drift check: after many recursive updates the value must still
	// match a direct computation (the renormalization path).
	rng := xrand.New(8)
	const n, m = 100000, 128
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
	}
	bins := []int{5}
	got := SlidingDFT(x, m, bins)
	start := n - m // last window
	var sum complex128
	for j := 0; j < m; j++ {
		angle := -2 * math.Pi * float64(bins[0]) * float64(j) / float64(m)
		sum += x[start+j] * cmplx.Exp(complex(0, angle))
	}
	want := cmplx.Abs(sum)
	if !approxEqual(got[start], want, 1e-6*(want+1)) {
		t.Fatalf("drift after long run: got %v want %v", got[start], want)
	}
}

func TestSpectrogramWriteCSV(t *testing.T) {
	x := tone(2048, 100e3, 1e6, 1)
	s := STFT(x, 256, 128, Hann(256), 1e6)
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != s.Frames()+1 {
		t.Fatalf("got %d lines for %d frames", len(lines), s.Frames())
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "time_s" || len(header) != 257 {
		t.Fatalf("header = %v...", header[:3])
	}
	// Frequencies ascend across the header.
	prev := math.Inf(-1)
	for _, h := range header[1:] {
		v, err := strconv.ParseFloat(h, 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatal("header frequencies not ascending")
		}
		prev = v
	}
	row := strings.Split(lines[1], ",")
	if len(row) != 257 {
		t.Fatalf("row has %d fields", len(row))
	}
}
