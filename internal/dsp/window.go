package dsp

import "math"

// Hann returns an n-point Hann window. It is the default analysis window
// for the spectrogram pipeline.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// Hamming returns an n-point Hamming window.
func Hamming(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// Rect returns an n-point rectangular (all ones) window.
func Rect(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Blackman returns an n-point Blackman window, used where stronger
// sidelobe suppression is needed than Hann provides.
func Blackman(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		w[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
	}
	return w
}

// ApplyWindow multiplies frame by window element-wise, in place.
// The slices must have equal length.
func ApplyWindow(frame []complex128, window []float64) {
	if len(frame) != len(window) {
		panic("dsp: frame/window length mismatch")
	}
	for i := range frame {
		frame[i] *= complex(window[i], 0)
	}
}
