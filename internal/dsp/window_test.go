package dsp

import (
	"math"
	"testing"
)

// The window property table. COLA here is the engineering fact the STFT
// pipeline relies on, stated honestly for symmetric (n-1 denominator)
// windows: overlap-added at the listed hop they sum to a constant only
// up to a ripple that shrinks like 1/n (a periodic window would cancel
// exactly; the symmetric variant repeats its first sample one hop
// early). The measured constants are ~1.6/n for Hann and Hamming at
// 50% overlap and ~0.1/n for Blackman at 75% overlap, so the bounds
// below hold with >2x margin at every size while still catching a
// wrong coefficient, which shifts the sum by O(1).
var windowCases = []struct {
	name string
	fn   func(int) []float64
	// hopDiv is the COLA hop divisor (hop = n/hopDiv).
	hopDiv int
	// olaMean is the expected overlap-add level; 2/n tolerance.
	olaMean float64
	// rippleN bounds the relative overlap-add ripple times n.
	rippleN float64
	// endpoint is the expected w[0] (== w[n-1]); 1e-12 tolerance.
	endpoint float64
}{
	{"hann", Hann, 2, 1.0, 4, 0},
	{"hamming", Hamming, 2, 1.08, 4, 0.08},
	{"blackman", Blackman, 4, 1.68, 1, 0},
	{"rect", Rect, 1, 1.0, 0, 1},
}

// TestWindowInvariants checks, for every window and a spread of sizes:
// symmetry, range, endpoints, a unit peak at the center, and the COLA
// (constant-overlap-add) level and ripple at the window's natural hop.
func TestWindowInvariants(t *testing.T) {
	for _, tc := range windowCases {
		t.Run(tc.name, func(t *testing.T) {
			for _, n := range []int{1, 2, 3, 8, 16, 63, 64, 256, 1024} {
				w := tc.fn(n)
				if len(w) != n {
					t.Fatalf("n=%d: returned %d samples", n, len(w))
				}
				for i, v := range w {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("n=%d sample %d not finite: %v", n, i, v)
					}
					// Blackman's endpoints can round a hair below zero
					// (0.42-0.5+0.08 is not exactly representable).
					if v < -1e-12 || v > 1+1e-12 {
						t.Fatalf("n=%d sample %d out of range: %v", n, i, v)
					}
				}
				// Symmetry: w[i] == w[n-1-i]. Not bitwise — the two cos
				// arguments round differently — but far below anything a
				// spectral estimate can see.
				for i := 0; i < n/2; i++ {
					if d := math.Abs(w[i] - w[n-1-i]); d > 1e-9 {
						t.Fatalf("n=%d: w[%d]=%v vs w[%d]=%v", n, i, w[i], n-1-i, w[n-1-i])
					}
				}
				if n == 1 {
					if w[0] != 1 {
						t.Fatalf("n=1 window %v != [1]", w)
					}
					continue
				}
				if d := math.Abs(w[0] - tc.endpoint); d > 1e-12 {
					t.Fatalf("n=%d: endpoint %v, want %v", n, w[0], tc.endpoint)
				}
				// Peak shape. Only odd sizes sample the continuous maximum
				// exactly (even sizes straddle it, so their peak sits below
				// 1 by O(1/n^2) and n=2 is nothing but endpoints); for every
				// size the first half must rise monotonically to the center,
				// which is what a wrong coefficient or sign breaks first.
				if n%2 == 1 && math.Abs(w[n/2]-1) > 1e-9 {
					t.Fatalf("n=%d: center %v, want 1", n, w[n/2])
				}
				for i := 1; i <= n/2; i++ {
					if w[i] < w[i-1]-1e-12 {
						t.Fatalf("n=%d: not unimodal: w[%d]=%v < w[%d]=%v",
							n, i, w[i], i-1, w[i-1])
					}
				}

				// COLA at the window's natural hop. Power-of-two sizes
				// only: that is the only shape the STFT pipeline can use,
				// and at odd n the truncated hop n/2 no longer bisects
				// the window, which turns the smooth 1/n drift into
				// endpoint spikes that say nothing about the pipeline.
				hop := n / tc.hopDiv
				if hop == 0 || !IsPowerOfTwo(n) || n < 2*tc.hopDiv {
					continue
				}
				mean, rel := overlapAdd(w, hop)
				if d := math.Abs(mean - tc.olaMean); d > 2/float64(n) {
					t.Fatalf("n=%d hop=%d: OLA mean %v, want %v±%v", n, hop, mean, tc.olaMean, 2/float64(n))
				}
				if limit := tc.rippleN / float64(n); rel > limit && tc.rippleN > 0 {
					t.Fatalf("n=%d hop=%d: OLA ripple %v > %v", n, hop, rel, limit)
				}
				if tc.rippleN == 0 && rel != 0 {
					t.Fatalf("n=%d hop=%d: exact-COLA window has ripple %v", n, hop, rel)
				}
			}
		})
	}
}

// overlapAdd sums shifted copies of w at the given hop over a long
// span and reports the mean level and relative peak-to-peak ripple of
// the central (fully covered) region.
func overlapAdd(w []float64, hop int) (mean, rel float64) {
	n := len(w)
	span := n * 8
	sum := make([]float64, span)
	for s := 0; s+n <= span; s += hop {
		for i, v := range w {
			sum[s+i] += v
		}
	}
	lo, hi := n, span-n
	mn, mx := math.Inf(1), math.Inf(-1)
	for i := lo; i < hi; i++ {
		v := sum[i]
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		mean += v
	}
	mean /= float64(hi - lo)
	return mean, (mx - mn) / mean
}

// TestHannSizeTwoIsZero pins a boundary quirk the Welch code inherits:
// the symmetric Hann of length 2 is identically zero (both samples sit
// on the window's zero endpoints), so WelchPSD at fftSize 2 — the
// smallest size it accepts — is all zeros by construction, not by
// accident. See TestWelchPSDFFTSizeTwo.
func TestHannSizeTwoIsZero(t *testing.T) {
	w := Hann(2)
	if w[0] != 0 || w[1] != 0 {
		t.Fatalf("Hann(2) = %v, want [0 0]", w)
	}
}

// TestApplyWindowMatchesGather pins the equivalence the fused gather
// relies on: multiplying a complex frame by (w, 0) is what ApplyWindow
// does, and the gather performs the identical complex multiply.
func TestApplyWindowMatchesGather(t *testing.T) {
	const n = 256
	x := randComplex(n, 5)
	w := Hann(n)
	ref := append([]complex128(nil), x...)
	ApplyWindow(ref, w)
	for i := range x {
		if got := x[i] * complex(w[i], 0); got != ref[i] {
			t.Fatalf("sample %d: %v != %v", i, got, ref[i])
		}
	}
}
