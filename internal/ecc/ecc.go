// Package ecc implements the simple error-correcting codes the paper's
// transmitter uses: a Hamming(7,4) code whose minimum distance of three
// corrects one bit error per codeword ("we use a very simple (parity)
// code, which keeps our transmitter application simple enough to
// manually implement on a target machine in a few minutes"), plus a
// plain even-parity check for detection-only framing.
//
// Bits are represented as byte slices of 0/1 values throughout, matching
// the rest of the pipeline.
package ecc

import "fmt"

// Hamming74 is the classic (7,4) Hamming code: 4 data bits, 3 parity
// bits, minimum distance 3.
type Hamming74 struct{}

// codeword layout: positions 1..7 (1-indexed), parity at powers of two.
//
//	p1 p2 d1 p3 d2 d3 d4
//
// p1 covers positions {1,3,5,7}, p2 {2,3,6,7}, p3 {4,5,6,7}.

// EncodeBlock encodes 4 data bits into a 7-bit codeword.
func (Hamming74) EncodeBlock(d [4]byte) [7]byte {
	for _, b := range d {
		if b > 1 {
			panic(fmt.Sprintf("ecc: non-bit value %d", b))
		}
	}
	var c [7]byte
	c[2], c[4], c[5], c[6] = d[0], d[1], d[2], d[3]
	c[0] = c[2] ^ c[4] ^ c[6]
	c[1] = c[2] ^ c[5] ^ c[6]
	c[3] = c[4] ^ c[5] ^ c[6]
	return c
}

// DecodeBlock decodes a 7-bit codeword, correcting up to one bit error.
// corrected reports whether a correction was applied.
func (Hamming74) DecodeBlock(c [7]byte) (d [4]byte, corrected bool) {
	s1 := c[0] ^ c[2] ^ c[4] ^ c[6]
	s2 := c[1] ^ c[2] ^ c[5] ^ c[6]
	s3 := c[3] ^ c[4] ^ c[5] ^ c[6]
	syndrome := int(s1) | int(s2)<<1 | int(s3)<<2
	if syndrome != 0 {
		c[syndrome-1] ^= 1
		corrected = true
	}
	d[0], d[1], d[2], d[3] = c[2], c[4], c[5], c[6]
	return d, corrected
}

// Encode encodes a bit stream, padding the final block with zeros.
// Output length is 7*ceil(len(bits)/4).
func (h Hamming74) Encode(bits []byte) []byte {
	out := make([]byte, 0, (len(bits)+3)/4*7)
	for i := 0; i < len(bits); i += 4 {
		var block [4]byte
		copy(block[:], bits[i:min(i+4, len(bits))])
		cw := h.EncodeBlock(block)
		out = append(out, cw[:]...)
	}
	return out
}

// Decode decodes a bit stream of whole codewords, correcting single-bit
// errors per block. It returns the data bits and the number of blocks
// that needed correction. A trailing partial block is dropped.
func (h Hamming74) Decode(bits []byte) (data []byte, corrections int) {
	data = make([]byte, 0, len(bits)/7*4)
	for i := 0; i+7 <= len(bits); i += 7 {
		var cw [7]byte
		copy(cw[:], bits[i:i+7])
		d, corrected := h.DecodeBlock(cw)
		if corrected {
			corrections++
		}
		data = append(data, d[:]...)
	}
	return data, corrections
}

// Overhead returns the code's expansion factor (7/4).
func (Hamming74) Overhead() float64 { return 7.0 / 4.0 }

// EvenParity appends an even-parity bit to every block of blockSize data
// bits (padding the last block with zeros before the parity bit).
func EvenParity(bits []byte, blockSize int) []byte {
	if blockSize <= 0 {
		panic("ecc: blockSize must be positive")
	}
	out := make([]byte, 0, len(bits)+len(bits)/blockSize+1)
	var parity byte
	n := 0
	for _, b := range bits {
		out = append(out, b)
		parity ^= b
		n++
		if n == blockSize {
			out = append(out, parity)
			parity, n = 0, 0
		}
	}
	if n > 0 {
		out = append(out, parity)
	}
	return out
}

// CheckEvenParity strips the parity bits inserted by EvenParity and
// reports how many blocks failed the check. Failed blocks are still
// returned (detection only, no correction).
func CheckEvenParity(bits []byte, blockSize int) (data []byte, failures int) {
	if blockSize <= 0 {
		panic("ecc: blockSize must be positive")
	}
	stride := blockSize + 1
	for i := 0; i < len(bits); i += stride {
		end := min(i+stride, len(bits))
		block := bits[i:end]
		if len(block) < 2 {
			break
		}
		var parity byte
		for _, b := range block[:len(block)-1] {
			parity ^= b
		}
		if parity != block[len(block)-1] {
			failures++
		}
		data = append(data, block[:len(block)-1]...)
	}
	return data, failures
}

// BytesToBits expands a byte slice into its bits, MSB first.
func BytesToBits(p []byte) []byte {
	out := make([]byte, 0, len(p)*8)
	for _, b := range p {
		for i := 7; i >= 0; i-- {
			out = append(out, (b>>uint(i))&1)
		}
	}
	return out
}

// BitsToBytes packs bits (MSB first) into bytes; a trailing partial byte
// is zero-padded on the right.
func BitsToBytes(bits []byte) []byte {
	out := make([]byte, 0, (len(bits)+7)/8)
	for i := 0; i < len(bits); i += 8 {
		var b byte
		for j := 0; j < 8; j++ {
			b <<= 1
			if i+j < len(bits) && bits[i+j] == 1 {
				b |= 1
			}
		}
		out = append(out, b)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CRC8 computes the CRC-8/ATM checksum (polynomial x^8+x^2+x+1, 0x07)
// of p. Exfiltration protocols append it so the receiver can tell a
// clean frame from one damaged by a bit insertion or deletion, which
// the Hamming code alone cannot detect.
func CRC8(p []byte) byte {
	var crc byte
	for _, b := range p {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Interleave reorders bits into a depth-row block interleaver: bits are
// written row by row and read column by column, so a burst of up to
// depth consecutive channel errors lands in depth DIFFERENT codewords —
// each within the Hamming code's single-error budget. The output is
// padded to a whole block with zeros; record the original length for
// Deinterleave.
func Interleave(bits []byte, depth int) []byte {
	if depth <= 1 {
		return append([]byte(nil), bits...)
	}
	cols := (len(bits) + depth - 1) / depth
	out := make([]byte, 0, cols*depth)
	for c := 0; c < cols; c++ {
		for r := 0; r < depth; r++ {
			idx := r*cols + c
			if idx < len(bits) {
				out = append(out, bits[idx])
			} else {
				out = append(out, 0)
			}
		}
	}
	return out
}

// Deinterleave inverts Interleave, returning the first n bits of the
// original order.
func Deinterleave(bits []byte, depth, n int) []byte {
	if depth <= 1 {
		if n > len(bits) {
			n = len(bits)
		}
		return append([]byte(nil), bits[:n]...)
	}
	cols := (len(bits) + depth - 1) / depth
	out := make([]byte, depth*cols)
	for i, b := range bits {
		c := i / depth
		r := i % depth
		out[r*cols+c] = b
	}
	if n > len(out) {
		n = len(out)
	}
	return out[:n]
}
