package ecc

import (
	"bytes"
	"testing"
	"testing/quick"

	"pmuleak/internal/xrand"
)

func TestHammingRoundTripAllBlocks(t *testing.T) {
	var h Hamming74
	for v := 0; v < 16; v++ {
		d := [4]byte{byte(v) & 1, byte(v>>1) & 1, byte(v>>2) & 1, byte(v>>3) & 1}
		cw := h.EncodeBlock(d)
		got, corrected := h.DecodeBlock(cw)
		if corrected {
			t.Errorf("clean codeword %v reported corrected", cw)
		}
		if got != d {
			t.Errorf("round trip failed for %v: got %v", d, got)
		}
	}
}

func TestHammingCorrectsEverySingleBitError(t *testing.T) {
	var h Hamming74
	for v := 0; v < 16; v++ {
		d := [4]byte{byte(v) & 1, byte(v>>1) & 1, byte(v>>2) & 1, byte(v>>3) & 1}
		cw := h.EncodeBlock(d)
		for pos := 0; pos < 7; pos++ {
			corrupted := cw
			corrupted[pos] ^= 1
			got, corrected := h.DecodeBlock(corrupted)
			if !corrected {
				t.Fatalf("block %v pos %d: correction not reported", d, pos)
			}
			if got != d {
				t.Fatalf("block %v pos %d: decoded %v", d, pos, got)
			}
		}
	}
}

func TestHammingMinimumDistanceThree(t *testing.T) {
	var h Hamming74
	words := make([][7]byte, 0, 16)
	for v := 0; v < 16; v++ {
		d := [4]byte{byte(v) & 1, byte(v>>1) & 1, byte(v>>2) & 1, byte(v>>3) & 1}
		words = append(words, h.EncodeBlock(d))
	}
	for i := range words {
		for j := i + 1; j < len(words); j++ {
			dist := 0
			for k := 0; k < 7; k++ {
				if words[i][k] != words[j][k] {
					dist++
				}
			}
			if dist < 3 {
				t.Fatalf("codewords %d and %d at distance %d", i, j, dist)
			}
		}
	}
}

func TestHammingEncodeNonBitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Hamming74{}.EncodeBlock([4]byte{2, 0, 0, 0})
}

func TestHammingStreamRoundTrip(t *testing.T) {
	var h Hamming74
	rng := xrand.New(1)
	for _, n := range []int{0, 1, 4, 7, 100, 1001} {
		bits := rng.Bits(n)
		enc := h.Encode(bits)
		if want := (n + 3) / 4 * 7; len(enc) != want {
			t.Fatalf("n=%d: encoded length %d, want %d", n, len(enc), want)
		}
		dec, corrections := h.Decode(enc)
		if corrections != 0 {
			t.Fatalf("n=%d: spurious corrections %d", n, corrections)
		}
		// Decode returns padded length; the prefix must match.
		if !bytes.Equal(dec[:n], bits) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestHammingStreamCorrectsScatteredErrors(t *testing.T) {
	var h Hamming74
	rng := xrand.New(2)
	bits := rng.Bits(400)
	enc := h.Encode(bits)
	// One error in each of 20 different blocks.
	for b := 0; b < 20; b++ {
		pos := b*7 + rng.Intn(7)
		enc[pos] ^= 1
	}
	dec, corrections := h.Decode(enc)
	if corrections != 20 {
		t.Fatalf("corrections = %d, want 20", corrections)
	}
	if !bytes.Equal(dec[:400], bits) {
		t.Fatal("errors not corrected")
	}
}

func TestHammingOverhead(t *testing.T) {
	if (Hamming74{}).Overhead() != 1.75 {
		t.Fatal("overhead wrong")
	}
}

func TestEvenParityRoundTrip(t *testing.T) {
	rng := xrand.New(3)
	bits := rng.Bits(64)
	enc := EvenParity(bits, 8)
	if len(enc) != 72 {
		t.Fatalf("encoded length = %d", len(enc))
	}
	data, failures := CheckEvenParity(enc, 8)
	if failures != 0 {
		t.Fatalf("failures = %d", failures)
	}
	if !bytes.Equal(data, bits) {
		t.Fatal("data mismatch")
	}
}

func TestEvenParityDetectsSingleError(t *testing.T) {
	rng := xrand.New(4)
	bits := rng.Bits(64)
	enc := EvenParity(bits, 8)
	enc[20] ^= 1
	_, failures := CheckEvenParity(enc, 8)
	if failures != 1 {
		t.Fatalf("failures = %d, want 1", failures)
	}
}

func TestEvenParityPartialBlock(t *testing.T) {
	bits := []byte{1, 0, 1}
	enc := EvenParity(bits, 8)
	if len(enc) != 4 {
		t.Fatalf("encoded = %v", enc)
	}
	if enc[3] != 0 { // parity of 1^0^1
		t.Fatalf("parity bit = %d", enc[3])
	}
	data, failures := CheckEvenParity(enc, 8)
	if failures != 0 || !bytes.Equal(data, bits) {
		t.Fatalf("partial block round trip failed: %v %d", data, failures)
	}
}

func TestParityBadBlockSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	EvenParity(nil, 0)
}

func TestBytesBitsRoundTrip(t *testing.T) {
	f := func(p []byte) bool {
		return bytes.Equal(BitsToBytes(BytesToBits(p)), p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesToBitsMSBFirst(t *testing.T) {
	bits := BytesToBits([]byte{0xA5})
	want := []byte{1, 0, 1, 0, 0, 1, 0, 1}
	if !bytes.Equal(bits, want) {
		t.Fatalf("bits = %v", bits)
	}
}

func TestBitsToBytesPadsRight(t *testing.T) {
	got := BitsToBytes([]byte{1, 1})
	if len(got) != 1 || got[0] != 0xC0 {
		t.Fatalf("got %x", got)
	}
}

func TestHammingPropertyRandomSingleErrors(t *testing.T) {
	var h Hamming74
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		bits := rng.Bits(4 + rng.Intn(200))
		enc := h.Encode(bits)
		// Corrupt at most one bit per block.
		for b := 0; b+7 <= len(enc); b += 7 {
			if rng.Bool(0.5) {
				enc[b+rng.Intn(7)] ^= 1
			}
		}
		dec, _ := h.Decode(enc)
		return bytes.Equal(dec[:len(bits)], bits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCRC8KnownValue(t *testing.T) {
	// CRC-8/ATM check value for "123456789" is 0xF4.
	if got := CRC8([]byte("123456789")); got != 0xF4 {
		t.Fatalf("CRC8 = %#x, want 0xF4", got)
	}
	if CRC8(nil) != 0 {
		t.Fatal("CRC8(nil) != 0")
	}
}

func TestCRC8DetectsDamage(t *testing.T) {
	rng := xrand.New(50)
	msg := make([]byte, 32)
	rng.Bytes(msg)
	crc := CRC8(msg)
	misses := 0
	for i := 0; i < 32*8; i++ {
		damaged := append([]byte(nil), msg...)
		damaged[i/8] ^= 1 << uint(i%8)
		if CRC8(damaged) == crc {
			misses++
		}
	}
	if misses != 0 {
		t.Fatalf("%d single-bit errors undetected", misses)
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	rng := xrand.New(60)
	for _, n := range []int{0, 1, 7, 64, 100} {
		for _, depth := range []int{1, 2, 7, 16} {
			bits := rng.Bits(n)
			inter := Interleave(bits, depth)
			got := Deinterleave(inter, depth, n)
			if !bytes.Equal(got, bits) {
				t.Fatalf("n=%d depth=%d round trip failed", n, depth)
			}
		}
	}
}

func TestInterleaveSpreadsBursts(t *testing.T) {
	// A burst of `depth` consecutive errors must land in distinct
	// pre-interleave positions at least `cols` apart.
	rng := xrand.New(61)
	const n, depth = 140, 7
	bits := rng.Bits(n)
	inter := Interleave(bits, depth)
	// Corrupt a burst in the interleaved domain.
	burstStart := 20
	for i := burstStart; i < burstStart+depth; i++ {
		inter[i] ^= 1
	}
	got := Deinterleave(inter, depth, n)
	var errorPositions []int
	for i := range bits {
		if got[i] != bits[i] {
			errorPositions = append(errorPositions, i)
		}
	}
	if len(errorPositions) != depth {
		t.Fatalf("burst spread to %d errors, want %d", len(errorPositions), depth)
	}
	// A burst that straddles a column boundary yields spacings of
	// cols-1 in the worst case; that still puts each error in its own
	// 7-bit codeword for any cols >= 8.
	cols := (n + depth - 1) / depth
	for i := 1; i < len(errorPositions); i++ {
		if gap := errorPositions[i] - errorPositions[i-1]; gap < cols-1 {
			t.Fatalf("errors only %d apart after deinterleave (cols %d)", gap, cols)
		}
	}
}

func TestInterleavedHammingSurvivesBurst(t *testing.T) {
	// The payoff: Hamming(7,4) alone dies on a 7-bit burst; with a
	// depth-7 interleaver the same burst is fully corrected.
	var h Hamming74
	rng := xrand.New(62)
	data := rng.Bits(112) // 28 codewords
	coded := h.Encode(data)

	burst := func(bits []byte) []byte {
		out := append([]byte(nil), bits...)
		for i := 50; i < 57; i++ { // 7-bit burst
			out[i] ^= 1
		}
		return out
	}

	// Without interleaving: the burst hits one codeword with 7 errors
	// (and possibly a neighbour), beyond correction.
	plain, _ := h.Decode(burst(coded))
	plainErrs := 0
	for i := range data {
		if plain[i] != data[i] {
			plainErrs++
		}
	}
	if plainErrs == 0 {
		t.Fatal("burst should defeat bare Hamming")
	}

	// With depth-7 interleaving the burst lands one error per codeword.
	inter := Interleave(coded, 7)
	recovered, _ := h.Decode(Deinterleave(burst(inter), 7, len(coded)))
	for i := range data {
		if recovered[i] != data[i] {
			t.Fatalf("interleaved Hamming failed at bit %d", i)
		}
	}
}
