package ecc_test

import (
	"fmt"

	"pmuleak/internal/ecc"
)

// ExampleHamming74 shows single-error correction on a codeword.
func ExampleHamming74() {
	var h ecc.Hamming74
	code := h.EncodeBlock([4]byte{1, 0, 1, 1})
	code[2] ^= 1 // channel flips one bit
	data, corrected := h.DecodeBlock(code)
	fmt.Println(data, corrected)
	// Output:
	// [1 0 1 1] true
}

// ExampleCRC8 frames a message so damage is detectable.
func ExampleCRC8() {
	msg := []byte("launch code")
	crc := ecc.CRC8(msg)
	fmt.Println(ecc.CRC8(msg) == crc)
	msg[0] ^= 1
	fmt.Println(ecc.CRC8(msg) == crc)
	// Output:
	// true
	// false
}
