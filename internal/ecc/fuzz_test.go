package ecc

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the coding layer. `go test` runs the seed
// corpus; `go test -fuzz` explores further. The corpus seeds mirror the
// Fig. 8 channel regimes: the quiet regime (no deletions) and the
// loaded regime (~1 deletion per 122 on-air bits), plus burst damage at
// the interleaver's design limit.

func toBits(raw []byte) []byte {
	bits := make([]byte, len(raw))
	for i, b := range raw {
		bits[i] = b & 1
	}
	return bits
}

// FuzzInterleaveRoundTrip: Deinterleave inverts Interleave exactly for
// every bit string and depth.
func FuzzInterleaveRoundTrip(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1, 0}, 4)
	f.Add([]byte{}, 8)
	f.Add(bytes.Repeat([]byte{1, 0}, 61), 7)
	f.Fuzz(func(t *testing.T, raw []byte, depth int) {
		bits := toBits(raw)
		if depth < 0 {
			depth = -depth
		}
		depth = depth%32 + 1
		inter := Interleave(bits, depth)
		if depth > 1 && len(inter)%depth != 0 {
			t.Fatalf("interleaved length %d not a multiple of depth %d", len(inter), depth)
		}
		back := Deinterleave(inter, depth, len(bits))
		if !bytes.Equal(back, bits) {
			t.Fatalf("round trip broke: %v -> %v (depth %d)", bits, back, depth)
		}
	})
}

// FuzzHammingInterleaveBurst: the system guarantee behind the
// Interleave knob — a burst of up to depth consecutive bit FLIPS in the
// interleaved codeword stream lands in distinct codewords, each within
// Hamming(7,4)'s single-error budget, so the payload decodes exactly.
func FuzzHammingInterleaveBurst(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1}, 4, uint16(0), uint8(0))              // quiet: no damage
	f.Add(bytes.Repeat([]byte{1, 0}, 28), 7, uint16(13), uint8(7)) // full-depth burst
	f.Add(bytes.Repeat([]byte{0, 1, 1}, 16), 5, uint16(200), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, depth int, burstStart uint16, burstLen uint8) {
		payload := toBits(raw)
		if depth < 0 {
			depth = -depth
		}
		depth = depth%16 + 2 // 2..17
		var h Hamming74
		coded := Interleave(h.Encode(payload), depth)
		if len(coded) == 0 {
			return
		}
		// Burst of at most depth consecutive flips.
		bl := int(burstLen) % (depth + 1)
		bs := int(burstStart) % len(coded)
		for i := bs; i < bs+bl && i < len(coded); i++ {
			coded[i] ^= 1
		}
		decoded, corrections := h.Decode(Deinterleave(coded, depth, len(h.Encode(payload))))
		if corrections < 0 {
			t.Fatal("negative corrections")
		}
		if len(decoded) < len(payload) {
			t.Fatalf("decoded %d bits for %d-bit payload", len(decoded), len(payload))
		}
		if !bytes.Equal(decoded[:len(payload)], payload) {
			t.Fatalf("burst of %d flips at %d broke the payload (depth %d)", bl, bs, depth)
		}
	})
}

// FuzzHammingUnderDeletions: deletions and insertions break codeword
// framing entirely — the decoder cannot recover the payload, but it
// must stay total: no panic, bit-valued output, non-negative
// corrections, and a decoded length consistent with the input.
func FuzzHammingUnderDeletions(f *testing.F) {
	f.Add(bytes.Repeat([]byte{1, 0, 1}, 40), uint16(61), false) // Fig. 8 loaded: one deletion
	f.Add(bytes.Repeat([]byte{1}, 122), uint16(0), true)        // insertion at the head
	f.Add([]byte{}, uint16(9), false)
	f.Fuzz(func(t *testing.T, raw []byte, pos uint16, insert bool) {
		var h Hamming74
		stream := h.Encode(toBits(raw))
		if insert {
			p := int(pos) % (len(stream) + 1)
			stream = append(stream[:p], append([]byte{1}, stream[p:]...)...)
		} else if len(stream) > 0 {
			p := int(pos) % len(stream)
			stream = append(stream[:p], stream[p+1:]...)
		}
		decoded, corrections := h.Decode(stream)
		if corrections < 0 {
			t.Fatal("negative corrections")
		}
		if len(decoded) > len(stream) {
			t.Fatalf("decoded %d bits from %d", len(decoded), len(stream))
		}
		for _, b := range decoded {
			if b > 1 {
				t.Fatalf("non-bit %d in decoded stream", b)
			}
		}
		_ = BitsToBytes(decoded) // must not panic either
	})
}
