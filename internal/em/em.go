// Package em synthesizes the electromagnetic emanations of the voltage
// regulator as a complex-baseband (IQ) sample stream, the way a
// software-defined radio tuned near the VRM switching frequency would
// see them.
//
// The physics being modelled (§II of the paper): each replenishment
// current burst radiates, and because bursts repeat at the switching
// frequency f0, the emission concentrates in spectral spikes at f0 and
// its integer harmonics, with square-wave-like 1/k harmonic weights. The
// spike amplitude follows the burst charge, so the processor's activity
// level amplitude-modulates every spike — the on-off keying the attack
// receives.
package em

import (
	"fmt"
	"math"

	"pmuleak/internal/dsp"
	"pmuleak/internal/sim"
	"pmuleak/internal/vrm"
	"pmuleak/internal/xrand"
)

// Config describes the synthesis: emitter physics plus the (virtual)
// receiver tuning that defines the baseband.
type Config struct {
	// SwitchingFreqHz is the VRM's fundamental emission frequency.
	SwitchingFreqHz float64

	// CenterFreqHz is the receiver's tuning frequency: rendered
	// components appear at offsets (k·f0 - fc) in the baseband.
	CenterFreqHz float64

	// SampleRate is the IQ sample rate (Hz).
	SampleRate float64

	// Harmonics is the number of harmonics of f0 to render (>= 1).
	// Harmonics falling outside the usable baseband are skipped.
	Harmonics int

	// EmitterGain converts charge-flow (A) at the VRM into received
	// field amplitude at the reference distance. Per-laptop constant.
	EmitterGain float64

	// PhaseNoiseSigma is the per-sample standard deviation (radians)
	// of the common random-walk phase noise of the switching clock.
	PhaseNoiseSigma float64

	// FreqDitherHz, when positive, spreads the switching clock: the
	// instantaneous fundamental wanders in a reflected random walk
	// within +/- FreqDitherHz of nominal. This models the
	// spread-spectrum VRM dithering the paper's §VI proposes as a
	// countermeasure (and that secure-VRM designs like random fast
	// voltage dithering implement).
	FreqDitherHz float64
	// FreqDitherRateHz controls how fast the wander moves (the corner
	// frequency of the random walk); zero with FreqDitherHz > 0
	// selects a 1 kHz default.
	FreqDitherRateHz float64

	// CarrierDriftHzPerS is a slow linear drift of the switching
	// frequency (thermal drift of the converter's RC oscillator). It
	// is what forces a receiver to re-acquire the spike over
	// multi-second captures.
	CarrierDriftHzPerS float64

	// EnvelopeSmoothPeriods controls how many switching periods of
	// smoothing the emission envelope gets; it models the finite
	// bandwidth of the resonant emission path.
	EnvelopeSmoothPeriods float64
}

// DefaultConfig returns a synthesis setup matching the paper's: 970 kHz
// VRM, tuned between the fundamental and first harmonic so both fit in a
// 2.4 MS/s capture.
func DefaultConfig() Config {
	return Config{
		SwitchingFreqHz:       970e3,
		CenterFreqHz:          1.5 * 970e3,
		SampleRate:            2.4e6,
		Harmonics:             2,
		EmitterGain:           1.0,
		PhaseNoiseSigma:       2e-4,
		EnvelopeSmoothPeriods: 2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SwitchingFreqHz <= 0 {
		return fmt.Errorf("em: SwitchingFreqHz must be positive")
	}
	if c.SampleRate <= 0 {
		return fmt.Errorf("em: SampleRate must be positive")
	}
	if c.Harmonics < 1 {
		return fmt.Errorf("em: need at least one harmonic")
	}
	if c.EmitterGain < 0 {
		return fmt.Errorf("em: negative EmitterGain")
	}
	if c.PhaseNoiseSigma < 0 {
		return fmt.Errorf("em: negative PhaseNoiseSigma")
	}
	if c.FreqDitherHz < 0 || c.FreqDitherRateHz < 0 {
		return fmt.Errorf("em: negative frequency dither")
	}
	if c.EnvelopeSmoothPeriods <= 0 {
		return fmt.Errorf("em: EnvelopeSmoothPeriods must be positive")
	}
	return nil
}

// HarmonicOffsets returns the baseband offsets (Hz) of the harmonics
// that fit inside the usable band (92% of Nyquist, keeping clear of the
// band edges), in harmonic order. Harmonics outside are omitted.
func (c Config) HarmonicOffsets() []float64 {
	usable := 0.46 * c.SampleRate
	var out []float64
	for k := 1; k <= c.Harmonics; k++ {
		off := float64(k)*c.SwitchingFreqHz - c.CenterFreqHz
		if math.Abs(off) <= usable {
			out = append(out, off)
		}
	}
	return out
}

// SampleCount returns the number of samples spanning the horizon.
func (c Config) SampleCount(horizon sim.Time) int {
	return int(horizon.Seconds() * c.SampleRate)
}

// Render converts a VRM pulse train into an IQ baseband stream over
// [0, horizon). The result has Config.SampleCount(horizon) samples.
func Render(pulses []vrm.Pulse, horizon sim.Time, cfg Config, rng *xrand.Source) []complex128 {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.SampleCount(horizon)
	out := make([]complex128, n)
	if n == 0 {
		return out
	}

	// Emission envelope: charge-flow per sample, smoothed over a few
	// switching periods.
	dt := sim.FromSeconds(1 / cfg.SampleRate)
	if dt < 1 {
		dt = 1
	}
	env := vrm.EnergyRate(pulses, horizon, dt)
	if len(env) > n {
		env = env[:n]
	}
	for len(env) < n {
		env = append(env, 0)
	}
	// The emission path acts as a resonant filter: the envelope cannot
	// change faster than a few switching periods. At low sample rates a
	// floor of a few samples also removes the artificial per-sample
	// pulse-count aliasing that would otherwise spread the carrier.
	smoothSamples := int(cfg.EnvelopeSmoothPeriods * cfg.SampleRate / cfg.SwitchingFreqHz)
	if smoothSamples < 4 {
		smoothSamples = 4
	}
	env = dsp.MovingAverage(env, smoothSamples)

	// Harmonic oscillators sharing a common phase-noise random walk.
	type osc struct {
		phase float64 // current phase (radians)
		step  float64 // deterministic phase increment per sample
		kfrac float64 // harmonic number (phase noise scales with it)
		amp   float64 // relative amplitude (1/k falloff)
	}
	usable := 0.46 * cfg.SampleRate
	var oscs []osc
	for k := 1; k <= cfg.Harmonics; k++ {
		off := float64(k)*cfg.SwitchingFreqHz - cfg.CenterFreqHz
		if math.Abs(off) > usable {
			continue
		}
		oscs = append(oscs, osc{
			phase: rng.Uniform(0, 2*math.Pi),
			step:  2 * math.Pi * off / cfg.SampleRate,
			kfrac: float64(k),
			amp:   1 / float64(k),
		})
	}

	driftPerSample := cfg.CarrierDriftHzPerS / cfg.SampleRate

	// Spread-spectrum dither: a reflected random walk of the
	// fundamental within +/- FreqDitherHz.
	var wander, wanderStep float64
	if cfg.FreqDitherHz > 0 {
		rate := cfg.FreqDitherRateHz
		if rate <= 0 {
			rate = 1000
		}
		// Per-sample step sized so the walk crosses the full range at
		// roughly the requested rate.
		wanderStep = cfg.FreqDitherHz * math.Sqrt(rate/cfg.SampleRate)
		wander = rng.Uniform(-cfg.FreqDitherHz, cfg.FreqDitherHz)
	}

	for i := 0; i < n; i++ {
		var dn float64
		if cfg.PhaseNoiseSigma > 0 {
			dn = rng.Normal(0, cfg.PhaseNoiseSigma)
		}
		if wanderStep > 0 {
			wander += rng.Normal(0, wanderStep)
			if wander > cfg.FreqDitherHz {
				wander = 2*cfg.FreqDitherHz - wander
			} else if wander < -cfg.FreqDitherHz {
				wander = -2*cfg.FreqDitherHz - wander
			}
			dn += 2 * math.Pi * wander / cfg.SampleRate
		}
		if driftPerSample != 0 {
			// Linear frequency drift: the accumulated offset after i
			// samples is drift * i / fs Hz.
			dn += 2 * math.Pi * driftPerSample * float64(i) / cfg.SampleRate
		}
		a := cfg.EmitterGain * env[i]
		var acc complex128
		for j := range oscs {
			o := &oscs[j]
			o.phase += o.step + o.kfrac*dn
			// Keep the accumulated phase small for float accuracy.
			if o.phase > math.Pi {
				o.phase -= 2 * math.Pi
			} else if o.phase < -math.Pi {
				o.phase += 2 * math.Pi
			}
			s, c := math.Sincos(o.phase)
			acc += complex(a*o.amp*c, a*o.amp*s)
		}
		out[i] = acc
	}
	return out
}

// RMS returns the root-mean-square magnitude of an IQ stream.
func RMS(iq []complex128) float64 {
	if len(iq) == 0 {
		return 0
	}
	var sum float64
	for _, v := range iq {
		re, im := real(v), imag(v)
		sum += re*re + im*im
	}
	return math.Sqrt(sum / float64(len(iq)))
}
