package em

import (
	"math"
	"testing"

	"pmuleak/internal/dsp"
	"pmuleak/internal/sim"
	"pmuleak/internal/vrm"
	"pmuleak/internal/xrand"
)

// fullLoadPulses builds a constant full-load pulse train at the config's
// switching frequency.
func fullLoadPulses(cfg Config, horizon sim.Time, charge float64) []vrm.Pulse {
	period := sim.FromSeconds(1 / cfg.SwitchingFreqHz)
	var out []vrm.Pulse
	for t := sim.Time(0); t < horizon; t += period {
		out = append(out, vrm.Pulse{At: t, Charge: charge})
	}
	return out
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.SwitchingFreqHz = 0 },
		func(c *Config) { c.SampleRate = 0 },
		func(c *Config) { c.Harmonics = 0 },
		func(c *Config) { c.EmitterGain = -1 },
		func(c *Config) { c.PhaseNoiseSigma = -1 },
		func(c *Config) { c.EnvelopeSmoothPeriods = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestHarmonicOffsetsDefault(t *testing.T) {
	cfg := DefaultConfig()
	offs := cfg.HarmonicOffsets()
	if len(offs) != 2 {
		t.Fatalf("offsets = %v, want fundamental and first harmonic", offs)
	}
	// fc = 1.5 f0, so offsets are -f0/2 and +f0/2.
	if math.Abs(offs[0]+485e3) > 1 || math.Abs(offs[1]-485e3) > 1 {
		t.Fatalf("offsets = %v", offs)
	}
}

func TestHarmonicOffsetsSkipsOutOfBand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Harmonics = 10 // 3rd harmonic and up fall out of the 2.4MS/s band
	offs := cfg.HarmonicOffsets()
	for _, o := range offs {
		if math.Abs(o) > 0.46*cfg.SampleRate {
			t.Fatalf("out-of-band offset %v rendered", o)
		}
	}
	if len(offs) != 2 {
		t.Fatalf("offsets = %v", offs)
	}
}

func TestSampleCount(t *testing.T) {
	cfg := DefaultConfig()
	if n := cfg.SampleCount(sim.Millisecond); n != 2400 {
		t.Fatalf("SampleCount(1ms) = %d", n)
	}
	if n := cfg.SampleCount(0); n != 0 {
		t.Fatalf("SampleCount(0) = %d", n)
	}
}

func TestRenderSpikesAtHarmonics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PhaseNoiseSigma = 0
	horizon := 20 * sim.Millisecond
	pulses := fullLoadPulses(cfg, horizon, 20/cfg.SwitchingFreqHz)
	iq := Render(pulses, horizon, cfg, xrand.New(1))

	psd := dsp.WelchPSD(iq, 4096)
	fundBin := dsp.FrequencyBin(cfg.SwitchingFreqHz-cfg.CenterFreqHz, 4096, cfg.SampleRate)
	harmBin := dsp.FrequencyBin(2*cfg.SwitchingFreqHz-cfg.CenterFreqHz, 4096, cfg.SampleRate)

	_, peak := dsp.Max(psd)
	if peak != fundBin {
		t.Fatalf("PSD peak at bin %d, want fundamental at %d", peak, fundBin)
	}
	// First harmonic present and weaker than the fundamental (1/k).
	if psd[harmBin] <= 0 {
		t.Fatal("first harmonic absent")
	}
	if psd[harmBin] >= psd[fundBin] {
		t.Fatalf("harmonic (%v) not weaker than fundamental (%v)", psd[harmBin], psd[fundBin])
	}
	// Ratio should be near (1/2)^2 in power.
	ratio := psd[harmBin] / psd[fundBin]
	if ratio < 0.15 || ratio > 0.4 {
		t.Fatalf("harmonic/fundamental power ratio = %v, want ~0.25", ratio)
	}
}

func TestRenderAmplitudeTracksLoad(t *testing.T) {
	cfg := DefaultConfig()
	horizon := 10 * sim.Millisecond
	strong := fullLoadPulses(cfg, horizon, 20/cfg.SwitchingFreqHz)
	weak := fullLoadPulses(cfg, horizon, 0.5/cfg.SwitchingFreqHz)
	strongIQ := Render(strong, horizon, cfg, xrand.New(2))
	weakIQ := Render(weak, horizon, cfg, xrand.New(2))
	if RMS(strongIQ) < 10*RMS(weakIQ) {
		t.Fatalf("strong RMS %v vs weak RMS %v: modulation too shallow",
			RMS(strongIQ), RMS(weakIQ))
	}
}

func TestRenderOnOffKeying(t *testing.T) {
	// Pulses only in the first half: band energy must collapse in the
	// second half.
	cfg := DefaultConfig()
	horizon := 10 * sim.Millisecond
	all := fullLoadPulses(cfg, horizon, 20/cfg.SwitchingFreqHz)
	var firstHalf []vrm.Pulse
	for _, p := range all {
		if p.At < horizon/2 {
			firstHalf = append(firstHalf, p)
		}
	}
	iq := Render(firstHalf, horizon, cfg, xrand.New(3))
	n := len(iq)
	on := RMS(iq[:n/3])
	off := RMS(iq[2*n/3:])
	if off > on/20 {
		t.Fatalf("off-state RMS %v not far below on-state %v", off, on)
	}
}

func TestRenderDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	horizon := sim.Millisecond
	pulses := fullLoadPulses(cfg, horizon, 1e-5)
	a := Render(pulses, horizon, cfg, xrand.New(4))
	b := Render(pulses, horizon, cfg, xrand.New(4))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("render diverged at sample %d", i)
		}
	}
}

func TestRenderEmptyPulses(t *testing.T) {
	cfg := DefaultConfig()
	iq := Render(nil, sim.Millisecond, cfg, xrand.New(5))
	if len(iq) != cfg.SampleCount(sim.Millisecond) {
		t.Fatalf("len = %d", len(iq))
	}
	if RMS(iq) != 0 {
		t.Fatalf("silent render has RMS %v", RMS(iq))
	}
}

func TestRenderZeroHorizon(t *testing.T) {
	iq := Render(nil, 0, DefaultConfig(), xrand.New(6))
	if len(iq) != 0 {
		t.Fatalf("len = %d", len(iq))
	}
}

func TestPhaseNoiseBroadensSpike(t *testing.T) {
	horizon := 50 * sim.Millisecond
	measureWidth := func(sigma float64) float64 {
		cfg := DefaultConfig()
		cfg.Harmonics = 1
		cfg.PhaseNoiseSigma = sigma
		pulses := fullLoadPulses(cfg, horizon, 20/cfg.SwitchingFreqHz)
		iq := Render(pulses, horizon, cfg, xrand.New(7))
		psd := dsp.WelchPSD(iq, 8192)
		peak, _ := dsp.Max(psd)
		// Count bins above half the peak.
		n := 0
		for _, v := range psd {
			if v > peak/2 {
				n++
			}
		}
		return float64(n)
	}
	// A random-walk phase noise of sigma rad/sample has a Lorentzian
	// linewidth of sigma^2*fs/(2pi); sigma=0.1 at 2.4 MS/s gives ~4 kHz,
	// a dozen bins of the 8192-point PSD.
	if clean, noisy := measureWidth(0), measureWidth(0.1); noisy <= clean {
		t.Fatalf("phase noise did not broaden spike: clean %v noisy %v", clean, noisy)
	}
}

func TestRMS(t *testing.T) {
	if RMS(nil) != 0 {
		t.Error("RMS(nil) != 0")
	}
	x := []complex128{3 + 4i, 3 + 4i}
	if got := RMS(x); math.Abs(got-5) > 1e-12 {
		t.Errorf("RMS = %v, want 5", got)
	}
}

func TestCarrierDriftMovesSpike(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Harmonics = 1
	cfg.PhaseNoiseSigma = 0
	cfg.CarrierDriftHzPerS = 50e3 // exaggerated for a short render
	horizon := 100 * sim.Millisecond
	pulses := fullLoadPulses(cfg, horizon, 20/cfg.SwitchingFreqHz)
	iq := Render(pulses, horizon, cfg, xrand.New(30))

	// Compare the spike position in the first and last fifths.
	n := len(iq)
	peakOffset := func(seg []complex128) float64 {
		psd := dsp.WelchPSD(seg, 4096)
		_, bin := dsp.Max(psd)
		return dsp.BinFrequency(bin, 4096, cfg.SampleRate)
	}
	early := peakOffset(iq[:n/5])
	late := peakOffset(iq[4*n/5:])
	moved := late - early
	// 50 kHz/s over ~80 ms between window centers: about 4 kHz.
	if moved < 2e3 || moved > 7e3 {
		t.Fatalf("spike moved %v Hz, want ~4 kHz", moved)
	}
}
