package em

import (
	"math"
	"math/cmplx"

	"pmuleak/internal/sim"
	"pmuleak/internal/vrm"
	"pmuleak/internal/xrand"
)

// This file implements the high-fidelity rendering mode: instead of
// synthesizing oscillators at assumed harmonic frequencies, each VRM
// current burst is convolved with the impulse response of the emission
// path (a damped resonance). The spectral structure then EMERGES from
// the pulse timing itself: a periodic train produces the comb at f0 and
// its harmonics, pulse skipping at light load produces sub-harmonics and
// a collapsed fundamental, period jitter broadens the spikes, and
// multi-phase interleaving partially cancels the fundamental while
// reinforcing N·f0 — none of which needs to be assumed.
//
// The calibrated experiment pipeline uses the oscillator model in
// Render (fast, directly parameterized); RenderPulseTrain exists for
// physical-fidelity studies and for validating the oscillator model's
// assumptions (see the package tests and cmd/emscope -hifi).

// PulseTrainConfig describes the high-fidelity emission model.
type PulseTrainConfig struct {
	// CenterFreqHz and SampleRate define the receiver baseband, as in
	// Config.
	CenterFreqHz float64
	SampleRate   float64

	// ResonanceHz is the natural frequency of the radiating structure
	// (the VRM's inductor loop and nearby traces). Emission is
	// strongest where the pulse comb and the resonance overlap. Zero
	// defaults to 1.2x the center frequency.
	ResonanceHz float64

	// QualityFactor sets the resonance damping (ringdown length in
	// cycles). Buck-converter parasitics give a low Q of a few.
	QualityFactor float64

	// EmitterGain scales burst charge into received field amplitude.
	EmitterGain float64
}

// DefaultPulseTrainConfig matches the oscillator model's default tuning.
func DefaultPulseTrainConfig() PulseTrainConfig {
	return PulseTrainConfig{
		CenterFreqHz:  1.5 * 970e3,
		SampleRate:    2.4e6,
		ResonanceHz:   1.45 * 970e3,
		QualityFactor: 3,
		EmitterGain:   1.0,
	}
}

// Validate reports configuration errors.
func (c PulseTrainConfig) Validate() error {
	if c.SampleRate <= 0 {
		return errPositive("SampleRate")
	}
	if c.CenterFreqHz <= 0 {
		return errPositive("CenterFreqHz")
	}
	if c.ResonanceHz < 0 {
		return errPositive("ResonanceHz")
	}
	if c.QualityFactor <= 0 {
		return errPositive("QualityFactor")
	}
	if c.EmitterGain < 0 {
		return errPositive("EmitterGain")
	}
	return nil
}

type fieldError string

func (e fieldError) Error() string { return "em: " + string(e) + " must be positive" }

func errPositive(field string) error { return fieldError(field) }

// RenderPulseTrain converts a VRM pulse train into an IQ baseband stream
// by superposing one ringdown per pulse. The result has
// int(horizon*SampleRate) samples.
func RenderPulseTrain(pulses []vrm.Pulse, horizon sim.Time, cfg PulseTrainConfig, rng *xrand.Source) []complex128 {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := int(horizon.Seconds() * cfg.SampleRate)
	out := make([]complex128, n)
	if n == 0 || len(pulses) == 0 {
		return out
	}
	f0 := cfg.ResonanceHz
	if f0 == 0 {
		f0 = 1.2 * cfg.CenterFreqHz
	}

	// Baseband impulse response of the resonance: a complex
	// exponential at (f0 - fc) decaying over Q cycles of f0.
	ringCycles := cfg.QualityFactor
	ringSeconds := ringCycles / f0
	kernelLen := int(ringSeconds*cfg.SampleRate*4) + 2 // 4 time constants
	kernel := make([]complex128, kernelLen)
	offset := 2 * math.Pi * (f0 - cfg.CenterFreqHz) / cfg.SampleRate
	decayPerSample := 1 / (ringSeconds * cfg.SampleRate)
	for i := range kernel {
		amp := math.Exp(-float64(i) * decayPerSample)
		kernel[i] = cmplx.Exp(complex(0, offset*float64(i))) * complex(amp, 0)
	}

	// Superpose one scaled kernel per pulse. Downconversion to
	// baseband turns the pulse's arrival time into a carrier phase of
	// exp(-i 2π fc t): that term is what makes a periodic train add
	// coherently into comb lines while jittered or interleaved trains
	// partially cancel.
	for _, p := range pulses {
		tp := p.At.Seconds()
		idx := int(tp * cfg.SampleRate)
		if idx >= n {
			continue
		}
		theta := -2 * math.Pi * math.Mod(cfg.CenterFreqHz*tp, 1)
		phase := cmplx.Exp(complex(0, theta))
		scale := complex(cfg.EmitterGain*p.Charge*cfg.SampleRate, 0) * phase
		end := idx + kernelLen
		if end > n {
			end = n
		}
		for i := idx; i < end; i++ {
			out[i] += scale * kernel[i-idx]
		}
	}
	_ = rng // reserved for receiver-side effects; emission here is deterministic
	return out
}
