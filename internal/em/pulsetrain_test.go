package em

import (
	"testing"

	"pmuleak/internal/dsp"
	"pmuleak/internal/power"
	"pmuleak/internal/sim"
	"pmuleak/internal/vrm"
	"pmuleak/internal/xrand"
)

// renderTrain builds a pulse train from a constant load and renders it
// with the high-fidelity model.
func renderTrain(t *testing.T, vcfg vrm.Config, currentA float64,
	horizon sim.Time, seed int64) ([]complex128, PulseTrainConfig) {
	t.Helper()
	trace := []power.Span{{Start: 0, End: horizon, Current: currentA, Voltage: 1.2}}
	pulses := vrm.Pulses(trace, horizon, vcfg, xrand.New(seed))
	cfg := DefaultPulseTrainConfig()
	cfg.CenterFreqHz = 1.5 * vcfg.SwitchingFreqHz
	cfg.ResonanceHz = 1.45 * vcfg.SwitchingFreqHz
	return RenderPulseTrain(pulses, horizon, cfg, xrand.New(seed+1)), cfg
}

func vcfgClean() vrm.Config {
	cfg := vrm.DefaultConfig()
	cfg.PeriodJitterFrac = 0
	cfg.AmplitudeNoiseFrac = 0
	return cfg
}

func psdPeakNear(psd []float64, f float64, m int, sr float64, widthBins int) float64 {
	center := dsp.FrequencyBin(f, m, sr)
	var best float64
	for d := -widthBins; d <= widthBins; d++ {
		b := (center + d + m) % m
		if psd[b] > best {
			best = psd[b]
		}
	}
	return best
}

func TestPulseTrainCombEmerges(t *testing.T) {
	// A periodic pulse train must concentrate energy at f0 and 2*f0
	// without those frequencies ever being told to the renderer.
	vcfg := vcfgClean()
	iq, cfg := renderTrain(t, vcfg, 20, 20*sim.Millisecond, 1)
	psd := dsp.WelchPSD(iq, 4096)
	floor := dsp.Median(psd)
	fund := psdPeakNear(psd, vcfg.SwitchingFreqHz-cfg.CenterFreqHz, 4096, cfg.SampleRate, 2)
	harm := psdPeakNear(psd, 2*vcfg.SwitchingFreqHz-cfg.CenterFreqHz, 4096, cfg.SampleRate, 2)
	if fund < 100*floor {
		t.Fatalf("fundamental not emergent: %v vs floor %v", fund, floor)
	}
	if harm < 10*floor {
		t.Fatalf("first harmonic not emergent: %v vs floor %v", harm, floor)
	}
}

func TestPulseTrainSheddingCollapsesComb(t *testing.T) {
	vcfg := vcfgClean()
	active, cfg := renderTrain(t, vcfg, 20, 20*sim.Millisecond, 2)
	idle, _ := renderTrain(t, vcfg, 0.5, 20*sim.Millisecond, 2)
	fundA := psdPeakNear(dsp.WelchPSD(active, 4096),
		vcfg.SwitchingFreqHz-cfg.CenterFreqHz, 4096, cfg.SampleRate, 2)
	fundI := psdPeakNear(dsp.WelchPSD(idle, 4096),
		vcfg.SwitchingFreqHz-cfg.CenterFreqHz, 4096, cfg.SampleRate, 2)
	if fundI > fundA/50 {
		t.Fatalf("idle fundamental %v not far below active %v", fundI, fundA)
	}
}

func TestPulseTrainJitterBroadensSpike(t *testing.T) {
	clean := vcfgClean()
	dirty := vcfgClean()
	dirty.PeriodJitterFrac = 0.03
	width := func(vcfg vrm.Config, seed int64) int {
		iq, _ := renderTrain(t, vcfg, 20, 20*sim.Millisecond, seed)
		psd := dsp.WelchPSD(iq, 4096)
		peak, _ := dsp.Max(psd)
		n := 0
		for _, v := range psd {
			if v > peak/4 {
				n++
			}
		}
		return n
	}
	if wClean, wDirty := width(clean, 3), width(dirty, 3); wDirty <= wClean {
		t.Fatalf("jitter did not broaden the spike: %d vs %d bins", wDirty, wClean)
	}
}

func TestPulseTrainMultiPhaseSuppressesFundamental(t *testing.T) {
	// Interleaved phases cancel most of the fundamental; the imbalance
	// leaves a residue. Compare the fundamental-to-total ratio.
	single := vcfgClean()
	quad := vcfgClean()
	quad.Phases = 4
	quad.PhaseImbalanceFrac = 0.1

	ratio := func(vcfg vrm.Config) float64 {
		iq, cfg := renderTrain(t, vcfg, 20, 20*sim.Millisecond, 4)
		psd := dsp.WelchPSD(iq, 4096)
		fund := psdPeakNear(psd, vcfg.SwitchingFreqHz-cfg.CenterFreqHz, 4096, cfg.SampleRate, 2)
		var total float64
		for _, v := range psd {
			total += v
		}
		return fund / total
	}
	if rs, rq := ratio(single), ratio(quad); rq > rs/4 {
		t.Fatalf("interleaving did not suppress the fundamental: single %v quad %v", rs, rq)
	}
}

func TestPulseTrainAmplitudeFollowsLoad(t *testing.T) {
	vcfg := vcfgClean()
	strong, _ := renderTrain(t, vcfg, 20, 5*sim.Millisecond, 5)
	weak, _ := renderTrain(t, vcfg, 3, 5*sim.Millisecond, 5)
	if RMS(strong) < 3*RMS(weak) {
		t.Fatalf("RMS not tracking load: %v vs %v", RMS(strong), RMS(weak))
	}
}

func TestPulseTrainEmpty(t *testing.T) {
	cfg := DefaultPulseTrainConfig()
	iq := RenderPulseTrain(nil, sim.Millisecond, cfg, xrand.New(6))
	if RMS(iq) != 0 {
		t.Fatal("silent train has energy")
	}
	if len(RenderPulseTrain(nil, 0, cfg, xrand.New(6))) != 0 {
		t.Fatal("zero horizon produced samples")
	}
}

func TestPulseTrainValidate(t *testing.T) {
	mutations := []func(*PulseTrainConfig){
		func(c *PulseTrainConfig) { c.SampleRate = 0 },
		func(c *PulseTrainConfig) { c.CenterFreqHz = 0 },
		func(c *PulseTrainConfig) { c.ResonanceHz = -1 },
		func(c *PulseTrainConfig) { c.QualityFactor = 0 },
		func(c *PulseTrainConfig) { c.EmitterGain = -1 },
	}
	for i, mutate := range mutations {
		cfg := DefaultPulseTrainConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPulseTrainAgreesWithOscillatorModel(t *testing.T) {
	// Both renderers must put their strongest energy at the same
	// baseband offset for the same pulse train — the oscillator model
	// is a calibrated shortcut of this one.
	vcfg := vcfgClean()
	horizon := 20 * sim.Millisecond
	trace := []power.Span{{Start: 0, End: horizon, Current: 20, Voltage: 1.2}}
	pulses := vrm.Pulses(trace, horizon, vcfg, xrand.New(7))

	ptCfg := DefaultPulseTrainConfig()
	hifi := RenderPulseTrain(pulses, horizon, ptCfg, xrand.New(8))

	oscCfg := DefaultConfig()
	oscCfg.PhaseNoiseSigma = 0
	fast := Render(pulses, horizon, oscCfg, xrand.New(8))

	peakBin := func(iq []complex128) int {
		psd := dsp.WelchPSD(iq, 4096)
		_, b := dsp.Max(psd)
		return b
	}
	hb, fb := peakBin(hifi), peakBin(fast)
	if d := hb - fb; d < -2 || d > 2 {
		t.Fatalf("models disagree on the dominant line: bins %d vs %d", hb, fb)
	}
}
