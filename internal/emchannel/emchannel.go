// Package emchannel models the propagation path between the laptop's
// VRM and the attacker's antenna: near-field distance attenuation, wall
// penetration loss, co-located interference sources (the paper's NLoS
// setup has a printer in the transmitter's room and a refrigerator in
// the receiver's room), and additive receiver-referred noise.
package emchannel

import (
	"fmt"
	"math"

	"pmuleak/internal/dsp"
	"pmuleak/internal/telemetry"
	"pmuleak/internal/xrand"
)

// Channel telemetry: propagations run and IQ samples produced. Both are
// functions of the experiment configuration alone, so they are
// deterministic across runs and -jobs settings.
var (
	chApplies = telemetry.NewCounter("emchannel.applies")
	chSamples = telemetry.NewCounter("emchannel.samples")
)

// InterfererKind selects the interference waveform.
type InterfererKind int

const (
	// CW is a continuous narrowband carrier (e.g. another switching
	// supply running at constant load).
	CW InterfererKind = iota
	// Pulsed is a carrier gated on/off periodically (motor controller,
	// compressor electronics).
	Pulsed
	// Broadband is wideband Gaussian noise bursts.
	Broadband
)

// Interferer is one environmental EM source, described in the receiver's
// baseband.
type Interferer struct {
	Kind      InterfererKind
	OffsetHz  float64 // baseband frequency offset of the carrier
	Amplitude float64 // field amplitude at the receiver
	// For Pulsed and Broadband: gate period and duty cycle.
	PeriodS float64
	Duty    float64
}

// Config describes one propagation path.
type Config struct {
	// DistanceM is the antenna-to-VRM distance in meters.
	DistanceM float64

	// RefDistanceM is the distance at which the emitter gain was
	// calibrated (path gain = 1). The paper's near-field measurements
	// use a 10 cm probe placement.
	RefDistanceM float64

	// NearFieldExponent is the amplitude roll-off exponent. Magnetic
	// near-field induction decays as 1/d^3; far-field would be 1/d.
	NearFieldExponent float64

	// WallLossDB is the penetration loss (power dB) of any wall in the
	// path. 0 for line of sight.
	WallLossDB float64

	// NoiseSigma is the standard deviation (per I/Q component) of the
	// additive Gaussian noise referred to the antenna output.
	NoiseSigma float64

	Interferers []Interferer
}

// DefaultConfig returns the near-field setup: a probe 10 cm from the
// laptop, no wall, a realistic office noise floor.
func DefaultConfig() Config {
	return Config{
		DistanceM:         0.10,
		RefDistanceM:      0.10,
		NearFieldExponent: 3,
		NoiseSigma:        0.004,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DistanceM <= 0 || c.RefDistanceM <= 0 {
		return fmt.Errorf("emchannel: distances must be positive")
	}
	if c.NearFieldExponent < 1 || c.NearFieldExponent > 4 {
		return fmt.Errorf("emchannel: NearFieldExponent %v out of range [1,4]", c.NearFieldExponent)
	}
	if c.WallLossDB < 0 {
		return fmt.Errorf("emchannel: negative WallLossDB")
	}
	if c.NoiseSigma < 0 {
		return fmt.Errorf("emchannel: negative NoiseSigma")
	}
	for i, in := range c.Interferers {
		if in.Amplitude < 0 {
			return fmt.Errorf("emchannel: interferer %d has negative amplitude", i)
		}
		if in.Kind != CW && (in.PeriodS <= 0 || in.Duty < 0 || in.Duty > 1) {
			return fmt.Errorf("emchannel: interferer %d has bad gating (period %v duty %v)",
				i, in.PeriodS, in.Duty)
		}
	}
	return nil
}

// PathGain returns the amplitude gain of the path (distance roll-off
// plus wall loss). It is 1 at the reference distance with no wall.
func (c Config) PathGain() float64 {
	g := math.Pow(c.RefDistanceM/c.DistanceM, c.NearFieldExponent)
	// WallLossDB is a power loss; amplitude scales with its square root.
	g *= math.Pow(10, -c.WallLossDB/20)
	return g
}

// Apply propagates the IQ stream through the channel: scales by the path
// gain, then adds interference and noise. A fresh slice is returned; the
// input is not modified. The output buffer may come from the process
// sample-buffer pool (dsp.GetIQ) — callers that are done with it can
// hand it back with dsp.PutIQ. sampleRate is needed to synthesize the
// interferers.
//
// Apply panics on an invalid configuration; it is for callers whose
// configs are validated by construction (the experiment runners).
// Callers handling user input should use ApplyE and report the error.
func Apply(iq []complex128, sampleRate float64, cfg Config, rng *xrand.Source) []complex128 {
	out, err := ApplyE(iq, sampleRate, cfg, rng)
	if err != nil {
		panic(err)
	}
	return out
}

// ApplyE is Apply with the configuration errors returned instead of
// panicking, including the rate-dependent checks (sub-sample interferer
// gate periods) that Config.Validate alone cannot see.
func ApplyE(iq []complex128, sampleRate float64, cfg Config, rng *xrand.Source) ([]complex128, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("emchannel: sampleRate must be positive")
	}
	for i, in := range cfg.Interferers {
		// A gate period under one sample cannot be synthesized: the old
		// truncation turned it into an always-on interferer silently.
		if in.Kind != CW && in.PeriodS*sampleRate < 1 {
			return nil, fmt.Errorf("emchannel: interferer %d gate period %vs is under one sample at %v S/s",
				i, in.PeriodS, sampleRate)
		}
	}
	chApplies.Inc()
	chSamples.Add(uint64(len(iq)))
	gain := cfg.PathGain()
	// Pooled buffer: the gain loop below overwrites every element before
	// any read-modify op, so no zeroing is needed.
	out := dsp.GetIQ(len(iq))
	for i, v := range iq {
		out[i] = v * complex(gain, 0)
	}
	for _, in := range cfg.Interferers {
		addInterferer(out, sampleRate, in, rng)
	}
	if cfg.NoiseSigma > 0 {
		for i := range out {
			out[i] += complex(rng.Normal(0, cfg.NoiseSigma), rng.Normal(0, cfg.NoiseSigma))
		}
	}
	return out, nil
}

func addInterferer(iq []complex128, sampleRate float64, in Interferer, rng *xrand.Source) {
	if in.Amplitude == 0 {
		return
	}
	phase := rng.Uniform(0, 2*math.Pi)
	step := 2 * math.Pi * in.OffsetHz / sampleRate
	// Round, don't truncate: a 0.9-sample period used to truncate to a
	// zero-length gate, which the gateSamples > 0 check below silently
	// turned into an always-on interferer. ApplyE rejects sub-sample
	// periods outright, so rounding here only corrects the half-sample
	// bias for legitimate periods.
	gateSamples := int(math.Round(in.PeriodS * sampleRate))
	onSamples := int(in.Duty * float64(gateSamples))
	for i := range iq {
		on := true
		if in.Kind != CW && gateSamples > 0 {
			on = i%gateSamples < onSamples
		}
		if !on {
			continue
		}
		switch in.Kind {
		case Broadband:
			iq[i] += complex(rng.Normal(0, in.Amplitude), rng.Normal(0, in.Amplitude))
		default:
			phase += step
			if phase > math.Pi {
				phase -= 2 * math.Pi
			} else if phase < -math.Pi {
				phase += 2 * math.Pi
			}
			s, c := math.Sincos(phase)
			iq[i] += complex(in.Amplitude*c, in.Amplitude*s)
		}
	}
}

// OfficePrinter returns the paper's Fig. 10 printer-style interferer: a
// pulsed switching supply a few hundred kHz off the band center.
func OfficePrinter(amplitude float64) Interferer {
	return Interferer{
		Kind:      Pulsed,
		OffsetHz:  -320e3,
		Amplitude: amplitude,
		PeriodS:   0.004,
		Duty:      0.6,
	}
}

// Refrigerator returns a compressor-electronics interferer: a slow
// pulsed carrier close to the fundamental.
func Refrigerator(amplitude float64) Interferer {
	return Interferer{
		Kind:      Pulsed,
		OffsetHz:  -460e3,
		Amplitude: amplitude,
		PeriodS:   0.02,
		Duty:      0.5,
	}
}

// OfficeBroadband returns a weak wideband noise source (cabling pickup,
// digital crosstalk).
func OfficeBroadband(amplitude float64) Interferer {
	return Interferer{
		Kind:      Broadband,
		Amplitude: amplitude,
		PeriodS:   0.001,
		Duty:      1,
	}
}
