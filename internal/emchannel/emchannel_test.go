package emchannel

import (
	"math"
	"testing"

	"pmuleak/internal/dsp"
	"pmuleak/internal/xrand"
)

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.DistanceM = 0 },
		func(c *Config) { c.RefDistanceM = 0 },
		func(c *Config) { c.NearFieldExponent = 0 },
		func(c *Config) { c.NearFieldExponent = 10 },
		func(c *Config) { c.WallLossDB = -3 },
		func(c *Config) { c.NoiseSigma = -1 },
		func(c *Config) { c.Interferers = []Interferer{{Amplitude: -1}} },
		func(c *Config) {
			c.Interferers = []Interferer{{Kind: Pulsed, Amplitude: 1, PeriodS: 0}}
		},
		func(c *Config) {
			c.Interferers = []Interferer{{Kind: Pulsed, Amplitude: 1, PeriodS: 1, Duty: 2}}
		},
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPathGainReference(t *testing.T) {
	cfg := DefaultConfig()
	if g := cfg.PathGain(); math.Abs(g-1) > 1e-12 {
		t.Fatalf("reference gain = %v, want 1", g)
	}
}

func TestPathGainNearFieldRollOff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DistanceM = 0.20 // double the distance
	// 1/d^3 amplitude: doubling distance divides amplitude by 8.
	if g := cfg.PathGain(); math.Abs(g-0.125) > 1e-9 {
		t.Fatalf("gain at 2x distance = %v, want 0.125", g)
	}
}

func TestPathGainMonotoneInDistance(t *testing.T) {
	cfg := DefaultConfig()
	prev := math.Inf(1)
	for _, d := range []float64{0.1, 0.5, 1, 1.5, 2.5} {
		cfg.DistanceM = d
		g := cfg.PathGain()
		if g >= prev {
			t.Fatalf("gain not decreasing at d=%v", d)
		}
		prev = g
	}
}

func TestWallLoss(t *testing.T) {
	cfg := DefaultConfig()
	clear := cfg.PathGain()
	cfg.WallLossDB = 20
	walled := cfg.PathGain()
	// 20 dB power = 10x amplitude.
	if math.Abs(walled-clear/10) > 1e-9 {
		t.Fatalf("wall gain = %v, want %v", walled, clear/10)
	}
}

func TestApplyScalesSignal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DistanceM = 0.2
	cfg.NoiseSigma = 0
	in := []complex128{1, 2i, -3}
	out := Apply(in, 2.4e6, cfg, xrand.New(1))
	for i := range in {
		want := in[i] * complex(cfg.PathGain(), 0)
		if out[i] != want {
			t.Fatalf("sample %d = %v, want %v", i, out[i], want)
		}
	}
	// Input untouched.
	if in[0] != 1 {
		t.Fatal("Apply modified its input")
	}
}

func TestApplyAddsNoise(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseSigma = 0.5
	in := make([]complex128, 100000)
	out := Apply(in, 2.4e6, cfg, xrand.New(2))
	var sum float64
	for _, v := range out {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	rms := math.Sqrt(sum / float64(len(out)))
	want := 0.5 * math.Sqrt2 // complex noise power = 2 sigma^2
	if math.Abs(rms-want) > 0.02 {
		t.Fatalf("noise RMS = %v, want ~%v", rms, want)
	}
}

func TestCWInterfererAppearsAtOffset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseSigma = 0
	cfg.Interferers = []Interferer{{Kind: CW, OffsetHz: 300e3, Amplitude: 1}}
	in := make([]complex128, 1<<15)
	out := Apply(in, 2.4e6, cfg, xrand.New(3))
	psd := dsp.WelchPSD(out, 4096)
	_, peak := dsp.Max(psd)
	want := dsp.FrequencyBin(300e3, 4096, 2.4e6)
	if peak != want {
		t.Fatalf("interferer peak at bin %d, want %d", peak, want)
	}
}

func TestPulsedInterfererGates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseSigma = 0
	cfg.Interferers = []Interferer{{
		Kind: Pulsed, OffsetHz: 100e3, Amplitude: 1, PeriodS: 0.001, Duty: 0.25,
	}}
	const sr = 1e6
	in := make([]complex128, 10000) // 10 ms
	out := Apply(in, sr, cfg, xrand.New(4))
	// Count samples with energy: should be ~25%.
	on := 0
	for _, v := range out {
		if real(v)*real(v)+imag(v)*imag(v) > 0.5 {
			on++
		}
	}
	frac := float64(on) / float64(len(out))
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("pulsed duty = %v, want ~0.25", frac)
	}
}

func TestBroadbandInterfererIsWideband(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseSigma = 0
	cfg.Interferers = []Interferer{OfficeBroadband(0.3)}
	in := make([]complex128, 1<<15)
	out := Apply(in, 2.4e6, cfg, xrand.New(5))
	psd := dsp.WelchPSD(out, 1024)
	peak, _ := dsp.Max(psd)
	mean := dsp.Mean(psd)
	// Wideband: no bin dominates.
	if peak > 10*mean {
		t.Fatalf("broadband interferer has narrowband peak: peak %v mean %v", peak, mean)
	}
}

func TestApplyDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interferers = []Interferer{OfficePrinter(0.1), Refrigerator(0.05)}
	in := make([]complex128, 4096)
	for i := range in {
		in[i] = complex(float64(i%7), 0)
	}
	a := Apply(in, 2.4e6, cfg, xrand.New(6))
	b := Apply(in, 2.4e6, cfg, xrand.New(6))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestApplyBadSampleRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Apply(nil, 0, DefaultConfig(), xrand.New(1))
}

func TestInterfererFactories(t *testing.T) {
	for _, in := range []Interferer{OfficePrinter(0.5), Refrigerator(0.5), OfficeBroadband(0.5)} {
		cfg := DefaultConfig()
		cfg.Interferers = []Interferer{in}
		if err := cfg.Validate(); err != nil {
			t.Errorf("factory interferer invalid: %v", err)
		}
	}
}

func TestSNRDegradesWithDistance(t *testing.T) {
	// End-to-end sanity: fixed transmit amplitude, growing distance,
	// constant noise -> SNR strictly falls.
	in := make([]complex128, 8192)
	for i := range in {
		in[i] = complex(math.Cos(2*math.Pi*0.1*float64(i)), math.Sin(2*math.Pi*0.1*float64(i)))
	}
	var prev = math.Inf(1)
	for _, d := range []float64{0.1, 0.5, 1.0, 2.5} {
		cfg := DefaultConfig()
		cfg.DistanceM = d
		cfg.NoiseSigma = 0.001
		out := Apply(in, 2.4e6, cfg, xrand.New(7))
		var sig float64
		for _, v := range out {
			sig += real(v)*real(v) + imag(v)*imag(v)
		}
		if sig >= prev {
			t.Fatalf("received power not decreasing at d=%v", d)
		}
		prev = sig
	}
}
