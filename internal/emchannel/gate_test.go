package emchannel

import (
	"testing"

	"pmuleak/internal/xrand"
)

// TestSubSamplePeriodRejected: the old truncation bug made an
// interferer with PeriodS*sampleRate < 1 silently always-on; ApplyE now
// rejects it, and a period that rounds to at least one sample gates
// properly.
func TestSubSamplePeriodRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interferers = []Interferer{{
		Kind:      Pulsed,
		OffsetHz:  100e3,
		Amplitude: 0.5,
		PeriodS:   1e-9, // well under one sample at any practical rate
		Duty:      0.5,
	}}
	if _, err := ApplyE(make([]complex128, 64), 2.4e6, cfg, xrand.New(1)); err == nil {
		t.Fatal("ApplyE accepted a sub-sample interferer gate period")
	}
}

// TestNearSampleGateRounds: a period of 1.6 samples must round to a
// 2-sample gate (the old int() truncation gave 1, halving the period).
func TestNearSampleGateRounds(t *testing.T) {
	rate := 1e6
	cfg := DefaultConfig()
	cfg.NoiseSigma = 0
	cfg.Interferers = []Interferer{{
		Kind:      Pulsed,
		OffsetHz:  0,
		Amplitude: 1,
		PeriodS:   1.6 / rate, // rounds to 2 samples
		Duty:      0.5,        // 1 sample on, 1 off
	}}
	out, err := ApplyE(make([]complex128, 32), rate, cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Duty 0.5 of a 2-sample gate: every other sample carries the
	// interferer, the rest must be exactly zero (zero input, no noise).
	var on, off int
	for i, v := range out {
		if i%2 == 0 {
			if v == 0 {
				t.Fatalf("gate-on sample %d is zero", i)
			}
			on++
		} else {
			if v != 0 {
				t.Fatalf("gate-off sample %d carries interferer %v", i, v)
			}
			off++
		}
	}
	if on == 0 || off == 0 {
		t.Fatal("gate did not alternate")
	}
}

func TestApplyEReturnsError(t *testing.T) {
	bad := DefaultConfig()
	bad.DistanceM = -1
	if _, err := ApplyE(make([]complex128, 16), 2.4e6, bad, xrand.New(1)); err == nil {
		t.Fatal("ApplyE accepted invalid config")
	}
	if _, err := ApplyE(make([]complex128, 16), 0, DefaultConfig(), xrand.New(1)); err == nil {
		t.Fatal("ApplyE accepted zero sample rate")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Apply did not panic on invalid config")
		}
	}()
	Apply(make([]complex128, 16), 2.4e6, bad, xrand.New(1))
}
