// Package experiments contains one runner per table and figure of the
// paper's evaluation. The command-line harness (cmd/paperbench) and the
// benchmark suite (bench_test.go) both drive these functions, so the
// numbers they print are produced by exactly one code path.
package experiments

import (
	"fmt"
	"strings"

	"pmuleak/internal/baselines"
	"pmuleak/internal/core"
	"pmuleak/internal/covert"
	"pmuleak/internal/defense"
	"pmuleak/internal/dsp"
	"pmuleak/internal/ecc"
	"pmuleak/internal/emchannel"
	"pmuleak/internal/fingerprint"
	"pmuleak/internal/kernel"
	"pmuleak/internal/keylog"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sdr"
	"pmuleak/internal/sim"
	"pmuleak/internal/sweep"
	"pmuleak/internal/telemetry"
	"pmuleak/internal/xrand"
)

// expSpan opens the per-runner telemetry span: one histogram per
// experiment under experiment.<name>, created lazily so the snapshot's
// key set reflects exactly the runners that executed (paperbench -only
// narrows it). Runners that reuse other runners (Fig9 calls TableII)
// record both spans, nested.
func expSpan(name string) telemetry.Span {
	return telemetry.NewHistogram("experiment." + name).Start()
}

// Scale trades experiment fidelity for runtime. Tests and smoke runs
// use Quick; the paperbench binary defaults to Full.
type Scale struct {
	PayloadBits int   // covert payload per run
	Runs        int   // averaging runs per configuration
	Words       int   // typed words for keylogging
	Cells       int64 // fleet-campaign population size
}

// Quick is the CI-friendly scale. The fleet population stays at a full
// million cells even here: campaign cells run through the anchored
// surrogate at tens of millions per second, so the population is not
// where the quick/full time difference lives.
var Quick = Scale{PayloadBits: 96, Runs: 2, Words: 15, Cells: 1 << 20}

// Full approximates the paper's measurement sizes (the paper types 1000
// words and averages five runs).
var Full = Scale{PayloadBits: 512, Runs: 5, Words: 120, Cells: 4 << 20}

// ---------------------------------------------------------------------
// Fig. 2 — spectrogram of the active/idle micro-benchmark.

// Fig2Result summarizes the spectrogram contrast.
type Fig2Result struct {
	Spectrogram     *dsp.Spectrogram
	FundamentalKHz  float64
	SpikeOnOffRatio float64 // strong-phase vs weak-phase band energy
	HarmonicRatio   float64 // fundamental vs first-harmonic strength
}

// Fig2 runs the Fig. 1 micro-benchmark and measures the alternating
// spike pattern of Fig. 2.
func Fig2(seed int64) Fig2Result {
	defer expSpan("fig2").End()
	tb := core.NewTestbed(core.WithSeed(seed))
	s := tb.MicrobenchSpectrogram(2*sim.Millisecond, 2*sim.Millisecond, 20)
	f0 := tb.Profile.VRM.SwitchingFreqHz
	fund := s.Column(s.Bin(f0 - 1.5*f0))
	harm := s.Column(s.Bin(2*f0 - 1.5*f0))
	hi := dsp.Quantile(fund, 0.9)
	lo := dsp.Quantile(fund, 0.1)
	if lo <= 0 {
		lo = 1e-12
	}
	hh := dsp.Quantile(harm, 0.9)
	res := Fig2Result{
		Spectrogram:     s,
		FundamentalKHz:  f0 / 1e3,
		SpikeOnOffRatio: hi / lo,
	}
	if hh > 0 {
		res.HarmonicRatio = hi / hh
	}
	return res
}

// ---------------------------------------------------------------------
// §III — power-state ablation.

// Sec3Ablation reruns the micro-benchmark under the four P-/C-state
// BIOS combinations.
func Sec3Ablation(seed int64) []core.AblationRow {
	defer expSpan("sec3").End()
	tb := core.NewTestbed(core.WithSeed(seed))
	return tb.StateAblation(2*sim.Millisecond, 2*sim.Millisecond, 15)
}

// ---------------------------------------------------------------------
// Figs. 4-7 — receiver pipeline internals on one near-field run.

// PipelineResult carries the statistics the paper plots in Figs. 4-7.
type PipelineResult struct {
	Res *core.CovertResult
	// Fig. 4: the acquisition trace exists and rises at bit starts.
	AcquisitionLen int
	// Fig. 5: edge-detection peak count vs transmitted bits.
	DetectedStarts int
	TxBits         int
	// Fig. 6: pulse-width distribution.
	MedianPulseWidth float64 // seconds
	RayleighSigma    float64
	PulseWidthSkew   float64
	// Fig. 7: power histogram modes and selected threshold.
	PowerModeLow, PowerModeHigh float64
	Threshold                   float64
}

// Pipeline runs one near-field transfer and extracts the Figs. 4-7
// statistics from the receiver's intermediate traces.
func Pipeline(seed int64, scale Scale) PipelineResult {
	defer expSpan("pipeline").End()
	tb := core.NewTestbed(core.WithSeed(seed))
	res := tb.RunCovert(core.CovertConfig{PayloadBits: scale.PayloadBits})
	d := res.Demod
	out := PipelineResult{
		Res:            res,
		AcquisitionLen: len(d.Y),
		DetectedStarts: len(d.Starts),
		TxBits:         len(res.Run.Bits),
		Threshold:      d.Threshold,
	}
	if len(d.RawDistances) > 0 {
		out.MedianPulseWidth = dsp.Median(d.RawDistances)
		// Fit the Rayleigh to the overshoot beyond the minimum, as the
		// paper's Fig. 6 distribution is offset from zero.
		min, _ := dsp.Min(d.RawDistances)
		excess := make([]float64, len(d.RawDistances))
		for i, v := range d.RawDistances {
			excess[i] = v - min
		}
		out.RayleighSigma = dsp.RayleighFit(excess)
		out.PulseWidthSkew = dsp.Skewness(d.RawDistances)
	}
	if lo, hi, ok := dsp.NewHistogram(d.Powers, 48).Smoothed(3).Modes(); ok {
		out.PowerModeLow, out.PowerModeHigh = lo, hi
	}
	return out
}

// ---------------------------------------------------------------------
// Fig. 8 / §IV-B4 — deletion and insertion under interrupt load.

// Fig8Result reports error attribution with aggressive interrupts.
type Fig8Result struct {
	Quiet  covert.Measurement
	Loaded covert.Measurement
}

// Fig8 measures insertion/deletion behaviour with the background hog
// running (the paper's "other system activity" scenario).
func Fig8(seed int64, scale Scale) Fig8Result {
	defer expSpan("fig8").End()
	cells := sweep.Map(2, func(i int) covert.Measurement {
		tb := core.NewTestbed(core.WithSeed(seed))
		return tb.RunCovert(core.CovertConfig{
			PayloadBits: scale.PayloadBits, Background: i == 1}).Measurement
	})
	return Fig8Result{Quiet: cells[0], Loaded: cells[1]}
}

// ---------------------------------------------------------------------
// Table II — near-field results across the six laptops.

// TableIIRow is one laptop's measurement.
type TableIIRow struct {
	Model string
	OS    string
	BER   float64
	TR    float64
	IP    float64
	DP    float64
}

// String renders the row in the table's format.
func (r TableIIRow) String() string {
	return fmt.Sprintf("%-22s %-8s BER=%.1e TR=%4.0f IP=%.1e DP=%.1e",
		r.Model, r.OS, r.BER, r.TR, r.IP, r.DP)
}

// TableII measures the near-field covert channel on every Table I
// laptop, averaging scale.Runs runs. The laptop×run grid is flattened
// onto the sweep pool — every cell has its own seed — and each laptop's
// average is reduced in run order, so the table is bit-identical to the
// old serial loop.
func TableII(seed int64, scale Scale) []TableIIRow {
	defer expSpan("table2").End()
	profiles := laptop.Profiles()
	cells := sweep.Map(len(profiles)*scale.Runs, func(c int) covert.Measurement {
		i, r := c/scale.Runs, c%scale.Runs
		tb := core.NewTestbed(
			core.WithLaptop(profiles[i]),
			core.WithSeed(seed+int64(i*100+r)),
		)
		return tb.RunCovert(core.CovertConfig{PayloadBits: scale.PayloadBits}).Measurement
	})
	rows := make([]TableIIRow, 0, len(profiles))
	for i, prof := range profiles {
		avg := covert.Average(cells[i*scale.Runs : (i+1)*scale.Runs])
		rows = append(rows, TableIIRow{
			Model: prof.Model,
			OS:    prof.OS().String(),
			BER:   avg.BER(),
			TR:    avg.TransmitRate,
			IP:    avg.InsertionProb(),
			DP:    avg.DeletionProb(),
		})
	}
	return rows
}

// BackgroundLoadTRDrop measures the §IV-C2 effect: the TR reduction
// needed to hold the near-field error rate under load, averaged over
// several independent runs (rate searches on single frames are noisy).
func BackgroundLoadTRDrop(seed int64, scale Scale) (quiet, loaded float64) {
	defer expSpan("background").End()
	const target = 0.012
	const runs = 3
	type pair struct{ q, l float64 }
	cells := sweep.Map(runs, func(r int) pair {
		tb := core.NewTestbed(core.WithSeed(seed + int64(r)))
		q, _ := tb.RateSearch(target, core.CovertConfig{PayloadBits: scale.PayloadBits})
		l, _ := tb.RateSearch(target, core.CovertConfig{
			PayloadBits: scale.PayloadBits, Background: true})
		return pair{q.TransmitRate, l.TransmitRate}
	})
	// Sum in run order: float addition is not associative, and the
	// harness requires jobs=1 and jobs=N to agree bit for bit.
	for _, c := range cells {
		quiet += c.q
		loaded += c.l
	}
	return quiet / runs, loaded / runs
}

// ---------------------------------------------------------------------
// Fig. 9 — transmission-rate comparison with prior work.

// Fig9Result is the complete comparison.
type Fig9Result struct {
	Baselines []baselines.Row
	Proposed  float64 // best Table II rate, bits/s
}

// Speedup returns the proposed/best-baseline rate ratio.
func (f Fig9Result) Speedup() float64 {
	var best float64
	for _, b := range f.Baselines {
		if b.Rate > best {
			best = b.Rate
		}
	}
	if best == 0 {
		return 0
	}
	return f.Proposed / best
}

// Fig9 evaluates the seven baseline channels at a 1% BER target and
// compares them with the proposed channel's achieved rate. As in the
// paper, the proposed number is the fastest laptop's near-field TR from
// the Table II measurement (the MacBooks, which run at ~3 kbps with a
// percent-level BER).
func Fig9(seed int64, scale Scale) Fig9Result {
	defer expSpan("fig9").End()
	const targetBER = 1e-2
	rows := baselines.Compare(targetBER, 4000, seed)
	var proposed float64
	for _, r := range TableII(seed, scale) {
		if r.TR > proposed {
			proposed = r.TR
		}
	}
	return Fig9Result{Baselines: rows, Proposed: proposed}
}

// ---------------------------------------------------------------------
// Table III — line-of-sight distance sweep.

// TableIIIRow is one distance's measurement.
type TableIIIRow struct {
	DistanceM float64
	BER       float64
	TR        float64
	IP        float64
	DP        float64
	OK        bool
}

// String renders the row.
func (r TableIIIRow) String() string {
	return fmt.Sprintf("%.1fm  BER=%.1e TR=%4.0f IP=%.1e DP=%.1e",
		r.DistanceM, r.BER, r.TR, r.IP, r.DP)
}

// TableIII sweeps the loop antenna over the paper's distances, lowering
// the rate at each distance until the error rate meets the target.
func TableIII(seed int64, scale Scale) []TableIIIRow {
	defer expSpan("table3").End()
	distances := []float64{1.0, 1.5, 2.5}
	return sweep.Map(len(distances), func(i int) TableIIIRow {
		tb := core.NewTestbed(
			core.WithDistance(distances[i]),
			core.WithAntenna(sdr.LoopLA390),
			core.WithSeed(seed+int64(i)),
		)
		res, ok := tb.RateSearch(1.5e-2, core.CovertConfig{PayloadBits: scale.PayloadBits})
		return TableIIIRow{
			DistanceM: distances[i],
			BER:       res.BER(),
			TR:        res.TransmitRate,
			IP:        res.InsertionProb(),
			DP:        res.DeletionProb(),
			OK:        ok,
		}
	})
}

// ---------------------------------------------------------------------
// §IV-C3 — non-line-of-sight (through the wall).

// NLoS runs the Fig. 10 office scenario.
func NLoS(seed int64, scale Scale) TableIIIRow {
	defer expSpan("nlos").End()
	tb := core.NLoSOffice(seed)
	res, ok := tb.RateSearch(1.5e-2, core.CovertConfig{PayloadBits: scale.PayloadBits})
	return TableIIIRow{
		DistanceM: tb.Channel.DistanceM,
		BER:       res.BER(),
		TR:        res.TransmitRate,
		IP:        res.InsertionProb(),
		DP:        res.DeletionProb(),
		OK:        ok,
	}
}

// ---------------------------------------------------------------------
// Fig. 11 — keystroke spectrogram.

// Fig11Result summarizes the typed-sentence spectrogram.
type Fig11Result struct {
	Spectrogram *dsp.Spectrogram
	Text        string
	Keystrokes  int
	// DistinctBursts is the number of above-threshold activity bursts
	// in the spike band; it should be near the keystroke count.
	DistinctBursts int
}

// Fig11 renders the "can you hear me" spectrogram and counts the
// per-key bursts visible in the spike band.
func Fig11(seed int64) Fig11Result {
	defer expSpan("fig11").End()
	tb := core.NewTestbed(core.WithSeed(seed))
	text := "can you hear me"
	s, events := tb.KeylogSpectrogram(text)
	f0 := tb.Profile.VRM.SwitchingFreqHz
	col := s.Column(s.Bin(f0 - (f0 - 60e3)))
	dsp.Normalize(col)
	thr := dsp.BimodalThreshold(col, 40)
	iv := dsp.ThresholdCrossings(col, thr)
	iv = dsp.MergeIntervals(iv, 3)
	iv = dsp.FilterIntervals(iv, 3)
	return Fig11Result{
		Spectrogram:    s,
		Text:           text,
		Keystrokes:     len(events),
		DistinctBursts: len(iv),
	}
}

// ---------------------------------------------------------------------
// Table IV — keylogging accuracy at three placements.

// TableIVRow is one placement's scores.
type TableIVRow struct {
	Placement string
	TPR, FPR  float64
	Precision float64
	Recall    float64
}

// String renders the row.
func (r TableIVRow) String() string {
	return fmt.Sprintf("%-18s TPR=%5.1f%% FPR=%4.1f%% Prec=%5.1f%% Recall=%5.1f%%",
		r.Placement, 100*r.TPR, 100*r.FPR, 100*r.Precision, 100*r.Recall)
}

// TableIV measures keylogging accuracy at the paper's three placements:
// 10 cm probe, 2 m loop antenna, and 1.5 m through the wall.
func TableIV(seed int64, scale Scale) []TableIVRow {
	defer expSpan("table4").End()
	placements := []struct {
		name string
		opts []core.Option
	}{
		{"10cm", nil},
		{"2m", []core.Option{core.WithDistance(2), core.WithAntenna(sdr.LoopLA390)}},
		{"1.5m+wall", []core.Option{
			core.WithDistance(1.5), core.WithWall(15), core.WithAntenna(sdr.LoopLA390)}},
	}
	return sweep.Map(len(placements), func(i int) TableIVRow {
		p := placements[i]
		opts := append([]core.Option{core.WithSeed(seed + int64(i))}, p.opts...)
		tb := core.NewTestbed(opts...)
		res := tb.RunKeylog(core.KeylogConfig{Words: scale.Words})
		return TableIVRow{
			Placement: p.name,
			TPR:       res.Char.TPR,
			FPR:       res.Char.FPR,
			Precision: res.Word.Precision,
			Recall:    res.Word.Recall,
		}
	})
}

// ---------------------------------------------------------------------
// Ablations of the receiver design (DESIGN.md §6).

// AblationResult compares a design choice on/off.
type AblationResult struct {
	Name    string
	With    float64
	Without float64
	Comment string
}

// ReceiverAblations evaluates the DESIGN.md §6 receiver design choices.
func ReceiverAblations(seed int64, scale Scale) []AblationResult {
	defer expSpan("ablations").End()
	var out []AblationResult

	// Multi-harmonic acquisition (Eq. 1 with |S|=2 vs fundamental
	// only): channel error rate at the 2.5 m operating point, averaged
	// over a few seeds to steady the comparison. The |S|=2 and |S|=1
	// groups share seeds and differ only receiver-side, so the second
	// group replays the first group's transmitter traces from the cache.
	harmonics := []int{2, 1}
	errs := sweep.Map(len(harmonics)*scale.Runs, func(c int) float64 {
		h, r := harmonics[c/scale.Runs], c%scale.Runs
		tb := core.NewTestbed(
			core.WithDistance(2.5),
			core.WithAntenna(sdr.LoopLA390),
			core.WithSeed(seed+int64(r)),
		)
		res := tb.RunCovert(core.CovertConfig{
			PayloadBits: scale.PayloadBits,
			SleepPeriod: 5 * tb.Profile.DefaultSleepPeriod,
			RXHarmonics: h,
		})
		return res.ErrorRate()
	})
	groupMean := func(g int) float64 {
		var sum float64
		for r := 0; r < scale.Runs; r++ {
			sum += errs[g*scale.Runs+r]
		}
		return sum / float64(scale.Runs)
	}
	out = append(out, AblationResult{
		Name:    "2.5m error rate: |S|=2 vs |S|=1",
		With:    groupMean(0),
		Without: groupMean(1),
		Comment: "multi-harmonic acquisition (Eq. 1)",
	})

	// Error-control coding against isolated labeling errors (the
	// paper's §IV-B4 fix): random bit flips on the coded stream at the
	// channel's raw BER, decoded with and without Hamming(7,4).
	const flipP = 0.01
	rng := xrand.New(seed + 555)
	payload := rng.Bits(4000)
	var h ecc.Hamming74
	coded := h.Encode(payload)
	for i := range coded {
		if rng.Bool(flipP) {
			coded[i] ^= 1
		}
	}
	decoded, _ := h.Decode(coded)
	hammingErrs := 0
	for i := range payload {
		if decoded[i] != payload[i] {
			hammingErrs++
		}
	}
	out = append(out, AblationResult{
		Name:    "payload BER at 1% label flips: Hamming vs raw",
		With:    float64(hammingErrs) / float64(len(payload)),
		Without: flipP,
		Comment: "Hamming(7,4) corrects isolated labeling errors",
	})
	return out
}

// ---------------------------------------------------------------------
// §VI — countermeasures (extension: the paper proposes these
// qualitatively; here they are implemented and measured).

// Countermeasures evaluates the §VI defense set against both attacks at
// the 2 m attacker placement.
func Countermeasures(seed int64, scale Scale) []defense.Outcome {
	defer expSpan("countermeasures").End()
	return defense.Evaluate(defense.Standard(), seed, scale.PayloadBits, scale.Words)
}

// ---------------------------------------------------------------------
// Attack model (ii-b) — activity-duration fingerprinting (extension).

// FingerprintResult is the accuracy of the §III task-fingerprinting
// attack at two attacker placements.
type FingerprintResult struct {
	NearAccuracy float64
	FarAccuracy  float64
	Classes      int
}

// Fingerprint trains and evaluates the page-load classifier near-field
// and at 2 m.
func Fingerprint(seed int64, scale Scale) FingerprintResult {
	defer expSpan("fingerprint").End()
	catalog := fingerprint.DefaultCatalog()
	trials := scale.Runs + 1
	near := func(s int64) *core.Testbed {
		return core.NewTestbed(core.WithSeed(s))
	}
	far := func(s int64) *core.Testbed {
		return core.NewTestbed(core.WithSeed(s),
			core.WithDistance(2.0), core.WithAntenna(sdr.LoopLA390))
	}
	res := FingerprintResult{Classes: len(catalog)}
	// The near and far placements use disjoint seed ranges and are
	// independent train+evaluate pipelines: two sweep cells.
	accs := sweep.Map(2, func(i int) float64 {
		if i == 0 {
			clf, err := fingerprint.Train(near, catalog, scale.Runs, seed)
			if err != nil {
				return 0
			}
			return fingerprint.Evaluate(clf, near, catalog, trials, seed+1000).Accuracy()
		}
		clf, err := fingerprint.Train(far, catalog, scale.Runs, seed+2000)
		if err != nil {
			return 0
		}
		return fingerprint.Evaluate(clf, far, catalog, trials, seed+3000).Accuracy()
	})
	res.NearAccuracy, res.FarAccuracy = accs[0], accs[1]
	return res
}

// Banner formats a section header for the harness output.
func Banner(title string) string {
	return fmt.Sprintf("\n==== %s %s\n", title, strings.Repeat("=", max(0, 66-len(title))))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// Multi-core isolation (extension): does pinning unrelated work to a
// different core hide it from the VRM channel? It does not — the VRM
// feeds the whole package — and this experiment quantifies that.

// MultiCoreResult compares covert-channel pollution from a background
// hog on the transmitter's own core versus a different core.
type MultiCoreResult struct {
	QuietErr     float64 // no hog
	SameCoreErr  float64 // hog sharing the transmitter's core
	CrossCoreErr float64 // hog pinned to the other core
}

// MultiCoreIsolation runs the near-field covert channel on a dual-core
// target under three background placements.
func MultiCoreIsolation(seed int64, scale Scale) MultiCoreResult {
	defer expSpan("multicore").End()
	run := func(hogCore int) float64 {
		prof := laptop.Reference()
		prof.Kernel.Cores = 2
		sys := laptop.NewSystem(prof, seed)
		defer sys.Close()

		txCfg := covert.DefaultTXConfig(prof.DefaultSleepPeriod)
		payload := xrand.New(seed + 7919).Bits(scale.PayloadBits)
		frame := covert.EncodeFrame(payload, txCfg)
		// The transmitter always runs on core 0.
		runTx := covert.SpawnTransmitterOn(sys.Kernel(), 0, frame, txCfg)

		if hogCore >= 0 {
			rng := xrand.New(seed + 31)
			sys.Kernel().SpawnOn("hog", hogCore, func(p *kernel.Proc) {
				for {
					burst := sim.Time(rng.Uniform(float64(8*sim.Microsecond), float64(40*sim.Microsecond)))
					if rng.Bool(0.12) {
						burst = sim.Time(rng.Uniform(float64(250*sim.Microsecond), float64(500*sim.Microsecond)))
					}
					p.Busy(burst)
					p.Sleep(sim.Time(rng.Uniform(float64(2*sim.Millisecond), float64(6*sim.Millisecond))))
				}
			})
		}

		horizon := covert.AirtimeEstimate(frame, txCfg, prof.Kernel)
		sys.Run(horizon)
		plan := sys.DefaultPlan()
		raw := sys.Emanations(horizon, plan)
		rng := xrand.New(seed + 104729)
		field := emchannel.Apply(raw, plan.SampleRate, emchannel.DefaultConfig(), rng)
		dsp.PutIQ(raw)
		cap := sdr.Acquire(field, plan.CenterFreqHz, sdr.DefaultConfig(), rng.Fork())
		dsp.PutIQ(field)

		rxCfg := covert.DefaultRXConfig()
		rxCfg.ExpectedF0 = prof.VRM.SwitchingFreqHz
		rxCfg.MinBitPeriod = txCfg.BitPeriod() / 2
		d := covert.Demodulate(cap, rxCfg)
		cap.Recycle()
		return covert.Measure(runTx, d, txCfg, payload).ErrorRate()
	}
	// This experiment places processes on specific cores by hand, so it
	// never goes through RunCovert's trace cache — each cell simulates
	// its own dual-core system on the sweep pool.
	hogCores := []int{-1, 0, 1}
	errs := sweep.Map(len(hogCores), func(i int) float64 { return run(hogCores[i]) })
	return MultiCoreResult{
		QuietErr:     errs[0],
		SameCoreErr:  errs[1],
		CrossCoreErr: errs[2],
	}
}

// ---------------------------------------------------------------------
// Utilization inference (extension): under a demand-based (Speed-Shift
// style) DVFS governor, the emission amplitude during activity tracks
// utilization, so the channel leaks HOW busy the processor is, not just
// whether it is busy.

// UtilizationLeakResult holds band amplitude measured at several duty
// cycles under the demand governor.
type UtilizationLeakResult struct {
	Duty      []float64
	Amplitude []float64 // active-phase band amplitude, normalized to max
}

// Monotone reports whether amplitude rises with duty cycle.
func (r UtilizationLeakResult) Monotone() bool {
	for i := 1; i < len(r.Amplitude); i++ {
		if r.Amplitude[i] <= r.Amplitude[i-1] {
			return false
		}
	}
	return len(r.Amplitude) > 1
}

// UtilizationLeak runs a fixed-period duty-cycled workload at several
// duty levels on a Speed-Shift-style target and measures the VRM band
// amplitude during the active phases.
func UtilizationLeak(seed int64) UtilizationLeakResult {
	defer expSpan("utilization").End()
	duties := []float64{0.25, 0.5, 0.75, 1.0}
	res := UtilizationLeakResult{Duty: duties}
	res.Amplitude = sweep.Map(len(duties), func(i int) float64 {
		prof := laptop.Reference()
		prof.DVFSWindow = 5 * sim.Millisecond
		sys := laptop.NewSystem(prof, seed+int64(i))

		period := sim.Millisecond
		busy := sim.Time(duties[i] * float64(period))
		sys.Kernel().Spawn("load", func(p *kernel.Proc) {
			for j := 0; j < 60; j++ {
				p.Busy(busy)
				if idle := period - busy; idle > 0 {
					p.Sleep(idle)
				}
			}
		})
		horizon := 70 * sim.Millisecond
		sys.Run(horizon)
		plan := sys.DefaultPlan()
		field := sys.Emanations(horizon, plan)
		sys.Close()

		s := dsp.STFT(field, 1024, 256, dsp.Hann(1024), plan.SampleRate)
		dsp.PutIQ(field)
		col := s.Column(s.Bin(prof.VRM.SwitchingFreqHz - plan.CenterFreqHz))
		// Skip the cold-start window; measure the steady active level.
		tail := col[len(col)/3:]
		return dsp.Quantile(tail, 0.9)
	})
	// Normalize to the full-load level (after the sweep: the reference
	// cell must exist first).
	if max := res.Amplitude[len(res.Amplitude)-1]; max > 0 {
		for i := range res.Amplitude {
			res.Amplitude[i] /= max
		}
	}
	return res
}

// ---------------------------------------------------------------------
// §V-B end to end: dictionary attack through the full EM pipeline.

// DictionaryResult scores word identification over EM-detected
// keystrokes.
type DictionaryResult struct {
	Words     int
	Top1      int // true word ranked first among same-length candidates
	Top3      int
	MeanCands float64 // average candidate-list size (same-length words)
}

// Top1Rate returns the fraction of words identified exactly.
func (r DictionaryResult) Top1Rate() float64 {
	if r.Words == 0 {
		return 0
	}
	return float64(r.Top1) / float64(r.Words)
}

// Top3Rate returns the fraction of words whose truth lands in the top 3.
func (r DictionaryResult) Top3Rate() float64 {
	if r.Words == 0 {
		return 0
	}
	return float64(r.Top3) / float64(r.Words)
}

// Dictionary types a text drawn from the common-word dictionary, runs
// the full keylogging pipeline at 2 m, groups words, and ranks
// candidates by timing correlation.
func Dictionary(seed int64, scale Scale) DictionaryResult {
	defer expSpan("dictionary").End()
	dict := keylog.CommonWords()
	// Compose a text of dictionary words.
	rng := xrand.New(seed)
	n := scale.Words
	if n > 40 {
		n = 40
	}
	words := make([]string, n)
	for i := range words {
		words[i] = dict[rng.Intn(len(dict))]
	}
	text := strings.Join(words, " ")

	tb := core.NewTestbed(core.WithSeed(seed),
		core.WithDistance(2.0), core.WithAntenna(sdr.LoopLA390))
	// Timing correlation needs finer keystroke timestamps than the
	// default 2.5 ms detector window provides.
	detCfg := keylog.DefaultDetectorConfig()
	detCfg.Window = 800 * sim.Microsecond
	res := tb.RunKeylog(core.KeylogConfig{Text: text, Detector: &detCfg})
	groups := keylog.GroupWords(res.Detection.Keystrokes, 0)

	// Align recovered groups to true words by position (group i maps
	// to word i when counts match; otherwise score only the aligned
	// prefix — segmentation errors count as misses).
	out := DictionaryResult{Words: len(words)}
	var candTotal, candCount int
	for i, g := range groups {
		if i >= len(words) {
			break
		}
		cands := keylog.RankWord(g, dict, keylog.DefaultTypistConfig())
		if len(cands) > 0 {
			candTotal += len(cands)
			candCount++
		}
		r := keylog.Rank(cands, words[i])
		if r == 1 {
			out.Top1++
		}
		if r >= 1 && r <= 3 {
			out.Top3++
		}
	}
	if candCount > 0 {
		out.MeanCands = float64(candTotal) / float64(candCount)
	}
	return out
}

// ---------------------------------------------------------------------
// Noise waterfall (validation): the achievable rate at a fixed error
// target versus the environmental noise floor. A healthy channel
// degrades gracefully — rate falls as noise rises until the link dies —
// and a decoder bug typically breaks that shape.

// WaterfallPoint is one (noise, achievable rate) sample.
type WaterfallPoint struct {
	NoiseSigma float64
	Rate       float64 // bits/s at the error target; 0 when the link died
	ErrorRate  float64
	OK         bool
}

// Waterfall sweeps the environmental noise floor at the 2 m placement,
// rate-searching at each level.
func Waterfall(seed int64, scale Scale) []WaterfallPoint {
	defer expSpan("waterfall").End()
	sigmas := []float64{0.001, 0.002, 0.004, 0.008, 0.016}
	return sweep.Map(len(sigmas), func(i int) WaterfallPoint {
		tb := core.NewTestbed(
			core.WithSeed(seed+int64(i)),
			core.WithDistance(2.0),
			core.WithAntenna(sdr.LoopLA390),
			core.WithNoise(sigmas[i]),
		)
		res, ok := tb.RateSearch(1.5e-2, core.CovertConfig{PayloadBits: scale.PayloadBits})
		pt := WaterfallPoint{NoiseSigma: sigmas[i], OK: ok, ErrorRate: res.ErrorRate()}
		if ok {
			pt.Rate = res.TransmitRate
		}
		return pt
	})
}

// ---------------------------------------------------------------------
// §IV-A — the SLEEP_PERIOD floor. The paper: "around 10µs is the limit
// below which the actual idleness period of usleep() becomes highly
// variable", bounding the channel's bit rate.

// SleepFloorPoint characterizes the channel at one SLEEP_PERIOD.
type SleepFloorPoint struct {
	SleepPeriod sim.Time
	// JitterCV is the coefficient of variation of the actual sleep
	// durations (the "highly variable" metric).
	JitterCV float64
	// Rate and ErrorRate are the channel's performance at this
	// setting.
	Rate      float64
	ErrorRate float64
}

// SleepFloor sweeps SLEEP_PERIOD downward on the reference (Linux)
// laptop. As the period approaches the timer jitter, the relative
// timing variability explodes and the channel error rate follows.
func SleepFloor(seed int64, scale Scale) []SleepFloorPoint {
	defer expSpan("sleepfloor").End()
	periods := []sim.Time{
		200 * sim.Microsecond,
		100 * sim.Microsecond,
		50 * sim.Microsecond,
		20 * sim.Microsecond,
		8 * sim.Microsecond,
	}
	return sweep.Map(len(periods), func(i int) SleepFloorPoint {
		sp := periods[i]
		pt := SleepFloorPoint{SleepPeriod: sp}

		// Measure raw sleep variability on the target OS.
		prof := laptop.Reference()
		kcfg := prof.Kernel
		kcfg.InterruptRate = 0
		kcfg.TickInterval = 0
		k := kernel.New(kcfg, seed+int64(i))
		var durations []float64
		k.Spawn("sleeper", func(p *kernel.Proc) {
			for j := 0; j < 300; j++ {
				before := p.Now()
				p.Sleep(sp)
				durations = append(durations, float64(p.Now()-before))
			}
		})
		k.Run(sim.Second)
		k.Close()
		if m := dsp.Mean(durations); m > 0 {
			pt.JitterCV = dsp.Stddev(durations) / m
		}

		// Measure the channel at this setting.
		tb := core.NewTestbed(core.WithSeed(seed + int64(100+i)))
		res := tb.RunCovert(core.CovertConfig{
			PayloadBits: scale.PayloadBits,
			SleepPeriod: sp,
		})
		pt.Rate = res.TransmitRate
		pt.ErrorRate = res.ErrorRate()
		if pt.ErrorRate > 1 {
			pt.ErrorRate = 1
		}
		return pt
	})
}
