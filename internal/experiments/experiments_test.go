package experiments

import (
	"strings"
	"testing"

	"pmuleak/internal/kernel"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sim"
)

func TestFig2SpikesAlternate(t *testing.T) {
	res := Fig2(1)
	if res.SpikeOnOffRatio < 5 {
		t.Fatalf("spike on/off ratio = %v, want strong alternation", res.SpikeOnOffRatio)
	}
	if res.HarmonicRatio < 1.2 {
		t.Fatalf("fundamental/harmonic ratio = %v, want fundamental stronger", res.HarmonicRatio)
	}
	if res.FundamentalKHz != 970 {
		t.Fatalf("fundamental = %v kHz, want 970 (Dell Inspiron)", res.FundamentalKHz)
	}
	if res.Spectrogram.Frames() < 20 {
		t.Fatal("spectrogram too short")
	}
}

func TestSec3AblationShape(t *testing.T) {
	rows := Sec3Ablation(2)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var offRow, onRow *struct {
		ratio, strength float64
	}
	for _, r := range rows {
		v := struct{ ratio, strength float64 }{r.SpikeOnOffRatio, r.MeanSpikeStrength}
		switch {
		case !r.PStates && !r.CStates:
			offRow = &v
		case r.PStates && r.CStates:
			onRow = &v
		default:
			if r.SpikeOnOffRatio < 3 {
				t.Errorf("%s: modulation lost (%v)", r.Name, r.SpikeOnOffRatio)
			}
		}
	}
	if offRow == nil || onRow == nil {
		t.Fatal("missing combos")
	}
	if offRow.ratio > 2 {
		t.Errorf("both-disabled ratio = %v, want ~1", offRow.ratio)
	}
	if offRow.strength < 5*onRow.strength {
		t.Errorf("both-disabled idle spike not stronger: %v vs %v",
			offRow.strength, onRow.strength)
	}
}

func TestPipelineStatistics(t *testing.T) {
	res := Pipeline(3, Quick)
	if res.AcquisitionLen == 0 {
		t.Fatal("no acquisition trace (Fig 4)")
	}
	if res.DetectedStarts < res.TxBits*9/10 {
		t.Fatalf("starts %d much below tx bits %d (Fig 5)", res.DetectedStarts, res.TxBits)
	}
	if res.MedianPulseWidth <= 0 || res.RayleighSigma <= 0 {
		t.Fatal("no pulse-width statistics (Fig 6)")
	}
	if res.PulseWidthSkew <= 0 {
		t.Fatalf("pulse-width skew = %v, want positive (Fig 6)", res.PulseWidthSkew)
	}
	if res.PowerModeHigh <= res.PowerModeLow {
		t.Fatal("power modes not separated (Fig 7)")
	}
	if res.Threshold <= res.PowerModeLow || res.Threshold >= res.PowerModeHigh {
		t.Fatalf("threshold %v outside the valley [%v, %v] (Fig 7)",
			res.Threshold, res.PowerModeLow, res.PowerModeHigh)
	}
}

func TestFig8DeletionRateLow(t *testing.T) {
	res := Fig8(4, Quick)
	// The paper: deletion probability is low (<0.2% quiet, small loaded).
	if res.Quiet.DeletionProb() > 0.02 {
		t.Fatalf("quiet DP = %v", res.Quiet.DeletionProb())
	}
	if res.Loaded.DeletionProb() > 0.1 {
		t.Fatalf("loaded DP = %v", res.Loaded.DeletionProb())
	}
}

func TestTableIIShape(t *testing.T) {
	rows := TableII(5, Quick)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Shape assertions from the paper: UNIX-family laptops reach
	// 3-4 kbps, Windows laptops ~1 kbps, every BER below a few percent.
	for _, r := range rows {
		prof, ok := laptop.ByModel(r.Model)
		if !ok {
			t.Fatalf("unknown model %q", r.Model)
		}
		if prof.OS() == kernel.Windows {
			if r.TR < 600 || r.TR > 1500 {
				t.Errorf("%s: TR %v outside Windows band", r.Model, r.TR)
			}
		} else {
			if r.TR < 2200 || r.TR > 4800 {
				t.Errorf("%s: TR %v outside UNIX band", r.Model, r.TR)
			}
		}
		if r.BER > 0.05 {
			t.Errorf("%s: BER %v too high", r.Model, r.BER)
		}
		if !strings.Contains(r.String(), r.Model) {
			t.Errorf("row String missing model")
		}
	}
}

func TestFig9ProposedWins(t *testing.T) {
	res := Fig9(6, Quick)
	if len(res.Baselines) != 7 {
		t.Fatalf("baselines = %d", len(res.Baselines))
	}
	if res.Proposed < 2500 {
		t.Fatalf("proposed rate = %v", res.Proposed)
	}
	if s := res.Speedup(); s < 2 {
		t.Fatalf("speedup over best baseline = %v, want >~3", s)
	}
}

func TestTableIIIDistanceShape(t *testing.T) {
	rows := TableIII(7, Quick)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// TR must fall with distance, and each row should meet its target.
	for i, r := range rows {
		if !r.OK {
			t.Errorf("distance %v: rate search failed (BER %v)", r.DistanceM, r.BER)
		}
		if i > 0 && r.TR > rows[i-1].TR*1.05 {
			t.Errorf("TR not decreasing with distance: %v then %v",
				rows[i-1].TR, r.TR)
		}
	}
	if rows[0].TR < 1000 {
		t.Errorf("1m TR = %v, want kbps-class", rows[0].TR)
	}
}

func TestNLoSStillWorks(t *testing.T) {
	row := NLoS(8, Quick)
	if !row.OK {
		t.Fatalf("through-wall link failed: %+v", row)
	}
	if row.TR < 300 {
		t.Fatalf("through-wall TR = %v, want hundreds of bps", row.TR)
	}
}

func TestFig11BurstsMatchKeystrokes(t *testing.T) {
	res := Fig11(9)
	if res.Keystrokes != len("can you hear me") {
		t.Fatalf("keystrokes = %d", res.Keystrokes)
	}
	if res.DistinctBursts < res.Keystrokes-3 || res.DistinctBursts > res.Keystrokes+3 {
		t.Fatalf("bursts = %d for %d keystrokes", res.DistinctBursts, res.Keystrokes)
	}
}

func TestTableIVShape(t *testing.T) {
	rows := TableIV(10, Quick)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TPR < 0.9 {
			t.Errorf("%s: TPR %v", r.Placement, r.TPR)
		}
		if r.FPR > 0.12 {
			t.Errorf("%s: FPR %v", r.Placement, r.FPR)
		}
		if r.Recall < 0.8 {
			t.Errorf("%s: recall %v", r.Placement, r.Recall)
		}
		if r.Precision < 0.45 {
			t.Errorf("%s: precision %v", r.Placement, r.Precision)
		}
	}
}

func TestReceiverAblations(t *testing.T) {
	res := ReceiverAblations(11, Quick)
	if len(res) == 0 {
		t.Fatal("no ablations")
	}
	for _, a := range res {
		if a.Name == "" {
			t.Error("unnamed ablation")
		}
	}
	// The harmonic-count comparison is scenario-dependent (a weak
	// harmonic adds more noise than signal at the SNR edge); assert
	// only that both measurements are valid error rates.
	for _, v := range []float64{res[0].With, res[0].Without} {
		if v < 0 || v > 1 {
			t.Errorf("harmonic ablation produced invalid error rate %v", v)
		}
	}
	// Hamming must beat raw flips by a wide margin.
	if res[1].With > res[1].Without/3 {
		t.Errorf("Hamming payload BER %v not well below raw %v", res[1].With, res[1].Without)
	}
}

func TestBackgroundLoadReducesRate(t *testing.T) {
	quiet, loaded := BackgroundLoadTRDrop(12, Quick)
	if quiet <= 0 || loaded <= 0 {
		t.Fatalf("rates: quiet %v loaded %v", quiet, loaded)
	}
	if loaded > quiet*1.1 {
		t.Fatalf("background load did not reduce the rate: %v vs %v", loaded, quiet)
	}
}

func TestBanner(t *testing.T) {
	b := Banner("Table II")
	if !strings.Contains(b, "Table II") || !strings.Contains(b, "====") {
		t.Fatalf("banner = %q", b)
	}
}

func TestCountermeasuresShape(t *testing.T) {
	rows := Countermeasures(13, Quick)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want baseline + 3 defenses", len(rows))
	}
	base := rows[0]
	if !base.CovertAlive {
		t.Fatalf("baseline covert channel dead: %+v", base)
	}
	for _, r := range rows[1:] {
		if r.CovertAlive {
			t.Errorf("%s: covert channel survived", r.Name)
		}
		if r.KeylogTPR > 0.85*base.KeylogTPR {
			t.Errorf("%s: keylogging barely degraded (%v vs %v)",
				r.Name, r.KeylogTPR, base.KeylogTPR)
		}
	}
}

func TestMultiCoreIsolationIneffective(t *testing.T) {
	res := MultiCoreIsolation(14, Quick)
	if res.QuietErr > 0.05 {
		t.Fatalf("quiet dual-core error rate = %v", res.QuietErr)
	}
	// The whole point: moving the hog to the other core does not
	// restore the quiet error rate, because the VRM integrates the
	// package. Cross-core must stay within a factor of a few of
	// same-core pollution, not collapse back to quiet.
	if res.SameCoreErr <= res.QuietErr && res.CrossCoreErr <= res.QuietErr {
		t.Skipf("hog did not pollute this seed (same %v cross %v quiet %v)",
			res.SameCoreErr, res.CrossCoreErr, res.QuietErr)
	}
	if res.CrossCoreErr < res.QuietErr+0.001 && res.SameCoreErr > res.QuietErr+0.01 {
		t.Fatalf("cross-core pinning hid the hog (same %v, cross %v, quiet %v): "+
			"the VRM channel should see all cores",
			res.SameCoreErr, res.CrossCoreErr, res.QuietErr)
	}
}

func TestUtilizationLeakMonotone(t *testing.T) {
	res := UtilizationLeak(15)
	if len(res.Amplitude) != 4 {
		t.Fatalf("amplitudes = %v", res.Amplitude)
	}
	if !res.Monotone() {
		t.Fatalf("amplitude does not track utilization: %v", res.Amplitude)
	}
	// The staircase must be material: quarter load clearly below full.
	if res.Amplitude[0] > 0.85 {
		t.Fatalf("quarter-load amplitude %v too close to full load", res.Amplitude[0])
	}
}

func TestDictionaryAttackEndToEnd(t *testing.T) {
	res := Dictionary(16, Quick)
	if res.Words == 0 {
		t.Fatal("no words")
	}
	if res.MeanCands < 2 {
		t.Fatalf("mean candidate list %v — dictionary too thin to mean anything", res.MeanCands)
	}
	// Exact identification must clearly beat picking at random from
	// the same-length candidates.
	chance := 1 / res.MeanCands
	if res.Top1Rate() < 1.5*chance {
		t.Fatalf("top-1 %.2f vs chance %.2f: timing carries no information",
			res.Top1Rate(), chance)
	}
	if res.Top3Rate() < res.Top1Rate() {
		t.Fatal("top-3 below top-1")
	}
}

func TestWaterfallGracefulDegradation(t *testing.T) {
	pts := Waterfall(17, Quick)
	if len(pts) != 5 {
		t.Fatalf("points = %v", pts)
	}
	if !pts[0].OK || pts[0].Rate < 1000 {
		t.Fatalf("clean-noise link should run kbps-class: %+v", pts[0])
	}
	if pts[len(pts)-1].OK {
		t.Fatalf("highest noise should kill the link: %+v", pts[len(pts)-1])
	}
	// Achievable rate must never clearly INCREASE with noise; one
	// rate-search grid step (1.3x) of slack absorbs per-point seed
	// luck at the same true operating point.
	prev := pts[0].Rate
	for _, p := range pts[1:] {
		if p.Rate > prev*1.35 {
			t.Fatalf("rate rose with noise: %v", pts)
		}
		if p.Rate > 0 {
			prev = p.Rate
		}
	}
}

func TestSleepFloorShape(t *testing.T) {
	pts := SleepFloor(18, Quick)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	// Relative jitter must grow monotonically as the period shrinks.
	for i := 1; i < len(pts); i++ {
		if pts[i].JitterCV <= pts[i-1].JitterCV {
			t.Fatalf("jitter CV not increasing: %+v", pts)
		}
	}
	// At 100µs (the paper's UNIX setting) the channel is clean; at the
	// shortest period it must be severely degraded.
	if pts[1].SleepPeriod != 100*sim.Microsecond || pts[1].ErrorRate > 0.05 {
		t.Fatalf("100µs point unhealthy: %+v", pts[1])
	}
	last := pts[len(pts)-1]
	if last.ErrorRate < 0.1 {
		t.Fatalf("sub-10µs channel suspiciously clean: %+v", last)
	}
}
