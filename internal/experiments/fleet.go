package experiments

import (
	"math"

	"pmuleak/internal/campaign"
	"pmuleak/internal/core"
	"pmuleak/internal/covert"
	"pmuleak/internal/faults"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sweep"
	"pmuleak/internal/xrand"
)

// ---------------------------------------------------------------------
// Fleet — population-scale campaign (measured extension). The paper
// measures six laptops on a bench; this experiment asks what the attack
// surface looks like across an organization's whole fleet: a million
// heterogeneous (laptop model × background load × typist × distance ×
// acquisition-fault severity) cells, reduced to population quantiles.
//
// Full-fidelity simulation of a million covert runs is off the table
// (each run costs tens of milliseconds), so the experiment is anchored:
// a handful of full RunCovert/RunKeylog measurements calibrate a
// per-cell analytic surrogate, and internal/campaign then streams the
// million-cell population through it with O(blocks) reducer memory.
// The anchors carry the simulator's fidelity; the surrogate carries the
// population structure.
//
// The surrogate routes every effect through one effective-SNR scalar:
//
//	snr(cell) = anchorSNR[model] × (d_anchor/d)² × load × shadow / sev
//	BER(cell) = ½·erfc(√(snr/2))        (coherent OOK decision error)
//	F1(cell)  = anchorF1^(snr_ref/snr)  (monotone, pinned at the anchor)
//
// anchorSNR inverts the measured per-model BER through the same erfc
// law; the severity divisors invert the measured BER of the fault-
// injected anchors (internal/faults, the Robustness experiment's
// schedule shapes), so the degradation grid is calibrated, not assumed.

// fleetNominalDistM is the population's reference attacker placement:
// a cell at this distance sees exactly its model's anchor SNR. The
// anchors themselves are measured near-field (the Table II placement,
// where every model has a bounded, differentiating substitution BER);
// the nominal distance says where in the fleet that fidelity is pinned.
const fleetNominalDistM = 2.0

// fleetPathExp is the SNR-vs-distance exponent. The measured channel
// (Table III) degrades shallowly with distance because the receiver
// adapts its rate; the fleet model keeps transmitters at a fixed rate,
// so the exponent sits between the rate-adaptive shallow slope and the
// free-space field decay.
const fleetPathExp = 1.2

// fleetBERFloor clamps the surrogate BER away from zero. Physically a
// "link so good no error occurs at any feasible payload"; numerically
// it bounds the quantile sketch's bucket range, which is what keeps
// reducer state independent of the population size.
const fleetBERFloor = 1e-7

// fleetAnchorBERClamp bounds a measured anchor BER into the invertible
// range of the erfc law: an error-free anchor run still yields a large
// finite SNR rather than +Inf.
func fleetAnchorBERClamp(ber float64) float64 {
	return math.Min(math.Max(ber, 1e-4), 0.45)
}

// berToSNR inverts ber = ½·erfc(√(snr/2)).
func berToSNR(ber float64) float64 {
	x := math.Erfcinv(2 * ber)
	return 2 * x * x
}

// FleetAnchor is one laptop model's full-fidelity calibration point.
type FleetAnchor struct {
	Model string
	BER   float64
	TR    float64
	SNR   float64 // effective SNR inverted from the clamped BER
}

// FleetSeverityAnchor is one acquisition-fault severity level: its
// injector configuration, the measured BER of the self-healing receiver
// under it, and the SNR divisor the surrogate applies for it.
type FleetSeverityAnchor struct {
	Name      string
	Faults    faults.Config
	BER       float64
	SNRFactor float64 // ≥ 1; clean = 1 by construction
}

// FleetGroup is one sub-population's streamed statistics.
type FleetGroup struct {
	Name string
	BER  campaign.MeanVar
	F1   campaign.MeanVar
}

// FleetResult carries the campaign's reduced state. Everything here is
// a pure function of (seed, scale, cells): byte-identical rendering at
// every shard count × worker count is the campaign contract.
type FleetResult struct {
	Plan       campaign.Plan
	Anchors    []FleetAnchor
	Severities []FleetSeverityAnchor
	KeyF1      float64 // keylogging anchor at the same placement

	BER        *campaign.Sketch // population BER quantiles
	F1         *campaign.Hist   // population keystroke-F1 distribution
	Pop        campaign.MeanVar // population BER moments
	PerModel   []FleetGroup
	PerSev     []FleetGroup
	Worst      []campaign.Item // highest-BER cells, by stable cell index
	StateBytes int             // summed per-block reducer state
}

// fleetBlock is the per-block reducer bundle. One lives per block of
// the fixed partition; peak memory is blocks × sizeof(this), not cells.
type fleetBlock struct {
	ber   *campaign.Sketch
	f1    *campaign.Hist
	pop   campaign.MeanVar
	model []campaign.MeanVar
	sev   []campaign.MeanVar
	sevF1 []campaign.MeanVar
	worst *campaign.TopK
}

func newFleetBlock(models, sevs int) *fleetBlock {
	return &fleetBlock{
		ber:   campaign.NewSketch(0.02),
		f1:    campaign.NewHist(0, 1, 64),
		model: make([]campaign.MeanVar, models),
		sev:   make([]campaign.MeanVar, sevs),
		sevF1: make([]campaign.MeanVar, sevs),
		worst: campaign.NewTopK(8),
	}
}

func (b *fleetBlock) merge(o *fleetBlock) {
	b.ber.Merge(o.ber)
	b.f1.Merge(o.f1)
	b.pop.Merge(o.pop)
	for i := range b.model {
		b.model[i].Merge(o.model[i])
	}
	for i := range b.sev {
		b.sev[i].Merge(o.sev[i])
		b.sevF1[i].Merge(o.sevF1[i])
	}
	b.worst.Merge(o.worst)
}

func (b *fleetBlock) stateBytes() int {
	return b.ber.StateBytes() + b.f1.StateBytes() +
		16*(1+len(b.model)+2*len(b.sev)) + 16*8
}

// fleetSeverities is the degradation grid: the Robustness experiment's
// fault axes collapsed to four severity levels an IT fleet would
// actually span (pristine bench, light office, busy USB bus, failing
// acquisition chain).
func fleetSeverities() []FleetSeverityAnchor {
	return []FleetSeverityAnchor{
		{Name: "clean", Faults: faults.Config{}},
		{Name: "light", Faults: faults.Config{
			DropRatePerS: 100, ClockPPM: 50, DriftPPMPerS: 25}},
		{Name: "moderate", Faults: faults.Config{
			DropRatePerS: 300, ClockPPM: 200, DriftPPMPerS: 100,
			GainStepRatePerS: gainStepRatePerS, GainStepMaxDB: 3}},
		{Name: "heavy", Faults: faults.Config{
			DropRatePerS: 800, ClockPPM: 400, DriftPPMPerS: 200,
			GainStepRatePerS: gainStepRatePerS, GainStepMaxDB: 6}},
	}
}

// Fleet runs the population campaign. cells ≤ 0 falls back to the
// scale's population; shards ≤ 0 uses the campaign default. Jobs are
// inherited from the sweep pool's process default, so paperbench -jobs
// governs the anchors and the campaign alike.
func Fleet(seed int64, scale Scale, cells int64, shards int) FleetResult {
	defer expSpan("fleet").End()
	if cells <= 0 {
		cells = scale.Cells
	}
	if cells <= 0 {
		cells = 1 << 20
	}

	// ---- Anchors: full-fidelity runs through the real pipeline, at
	// the near-field Table II placement where every model's channel is
	// operational and the substitution BER is bounded and model-
	// differentiating. Each is averaged over scale.Runs seeds, exactly
	// the TableII pooling, flattened onto one sweep so -jobs fans the
	// whole anchor grid out.
	profiles := laptop.Profiles()
	anchorRuns := sweep.Map(len(profiles)*scale.Runs, func(c int) covert.Measurement {
		i, r := c/scale.Runs, c%scale.Runs
		tb := core.NewTestbed(
			core.WithLaptop(profiles[i]),
			core.WithSeed(seed+int64(10*i+r)),
		)
		return tb.RunCovert(core.CovertConfig{PayloadBits: scale.PayloadBits}).Measurement
	})
	anchors := make([]FleetAnchor, len(profiles))
	for i, prof := range profiles {
		avg := covert.Average(anchorRuns[i*scale.Runs : (i+1)*scale.Runs])
		anchors[i] = FleetAnchor{Model: prof.Model, BER: avg.BER(), TR: avg.TransmitRate}
		anchors[i].SNR = berToSNR(fleetAnchorBERClamp(anchors[i].BER))
	}

	// Severity anchors replay the reference laptop's transmitter trace
	// (faults are injected receiver-side, after sdr.Acquire) with the
	// self-healing receiver, matching the Robustness experiment's setup.
	sevs := fleetSeverities()
	sevBERs := sweep.Map(len(sevs)*scale.Runs, func(c int) float64 {
		i, r := c/scale.Runs, c%scale.Runs
		tb := core.NewTestbed(core.WithSeed(seed + 1000 + int64(r)))
		res := tb.RunCovert(core.CovertConfig{
			PayloadBits:      scale.PayloadBits,
			Interleave:       7,
			Faults:           sevs[i].Faults,
			RXResync:         true,
			RXCarrierRetries: 3,
		})
		// The total error rate (substitutions + insertions + deletions),
		// not the substitution BER: acquisition faults mostly shred the
		// stream's alignment, and that is exactly the damage the
		// severity axis models.
		return res.ErrorRate()
	})
	cleanBER := 0.0
	for r := 0; r < scale.Runs; r++ {
		cleanBER += sevBERs[r]
	}
	cleanBER /= float64(scale.Runs)
	cleanSNR := berToSNR(fleetAnchorBERClamp(cleanBER))
	for i := range sevs {
		var ber float64
		for r := 0; r < scale.Runs; r++ {
			ber += sevBERs[i*scale.Runs+r]
		}
		ber /= float64(scale.Runs)
		sevs[i].BER = ber
		// The divisor is the SNR loss the measured degradation implies
		// under the same erfc law. Severity levels are ordered by
		// construction, so the divisors are clamped monotone: a noisy
		// single-level measurement can never make a harsher fault level
		// HELP the attacker.
		f := cleanSNR / berToSNR(fleetAnchorBERClamp(ber))
		if i == 0 {
			f = 1
		} else if f < sevs[i-1].SNRFactor {
			f = sevs[i-1].SNRFactor
		}
		sevs[i].SNRFactor = f
	}

	// Keylogging anchor at the same near-field placement pins the F1
	// curve's fixed point.
	ktb := core.NewTestbed(core.WithSeed(seed + 2000))
	keyF1 := keystrokeF1(ktb.RunKeylog(core.KeylogConfig{Words: scale.Words}))
	if keyF1 <= 0 || keyF1 >= 1 {
		keyF1 = math.Min(math.Max(keyF1, 0.05), 0.99)
	}

	// ---- Population mixes (all heavy-headed Zipf, per the fleet
	// framing: a few dominant models/workloads, a long tail). The
	// pickers are stateless CDFs (xrand.Zipf), so blocks share them
	// without any cross-block state.
	modelMix := xrand.NewZipf(len(profiles), 1.1)
	loadMix := xrand.NewZipf(4, 1.0)
	typistMix := xrand.NewZipf(3, 1.2)
	sevMix := xrand.NewZipf(len(sevs), 1.5) // most machines near-clean
	loadFactor := []float64{1.0, 0.85, 0.65, 0.45}
	typistFactor := []float64{1.0, 0.92, 0.8}

	anchorSNR := make([]float64, len(anchors))
	for i, a := range anchors {
		anchorSNR[i] = a.SNR
	}
	refSNR := anchorSNR[0]
	sevDiv := make([]float64, len(sevs))
	for i, s := range sevs {
		sevDiv[i] = s.SNRFactor
	}

	// ---- The campaign: stream the population through the surrogate. ----
	ccfg := campaign.Config{Cells: cells, Shards: shards, Seed: seed}
	states := campaign.Run(ccfg, func(blk campaign.Block) *fleetBlock {
		fb := newFleetBlock(len(anchorSNR), len(sevDiv))
		for i := blk.Lo; i < blk.Hi; i++ {
			rng := blk.Rng(i)
			m := modelMix.Pick(rng.Float64())
			wl := loadMix.Pick(rng.Float64())
			ty := typistMix.Pick(rng.Float64())
			sv := sevMix.Pick(rng.Float64())
			d := 0.5 + rng.Exp(0.9)
			if d > 4 {
				d = 4
			}
			shadow := math.Exp(rng.Normal(0, 0.6))

			snr := anchorSNR[m] * math.Pow(fleetNominalDistM/d, fleetPathExp) *
				loadFactor[wl] * shadow / sevDiv[sv]
			ber := 0.5 * math.Erfc(math.Sqrt(snr/2))
			if ber < fleetBERFloor {
				ber = fleetBERFloor
			}
			f1 := math.Pow(keyF1, refSNR/snr) * typistFactor[ty]

			fb.ber.Add(ber)
			fb.f1.Add(f1)
			fb.pop.Add(ber)
			fb.model[m].Add(ber)
			fb.sev[sv].Add(ber)
			fb.sevF1[sv].Add(f1)
			fb.worst.Add(ber, i)
		}
		return fb
	})

	// Fold in block-index order (the float-determinism contract) and sum
	// the per-block state for the flat-memory evidence line.
	out := FleetResult{
		Plan:       campaign.PlanOf(ccfg),
		Anchors:    anchors,
		Severities: sevs,
		KeyF1:      keyF1,
	}
	total := newFleetBlock(len(anchorSNR), len(sevDiv))
	for _, s := range states {
		out.StateBytes += s.stateBytes()
		total.merge(s)
	}
	out.BER = total.ber
	out.F1 = total.f1
	out.Pop = total.pop
	out.Worst = total.worst.Items()
	for i, a := range anchors {
		out.PerModel = append(out.PerModel, FleetGroup{Name: a.Model, BER: total.model[i]})
	}
	for i, s := range sevs {
		out.PerSev = append(out.PerSev, FleetGroup{Name: s.Name, BER: total.sev[i], F1: total.sevF1[i]})
	}
	return out
}
