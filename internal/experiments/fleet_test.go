package experiments

import (
	"testing"
)

// fleetTestScale keeps the anchor runs cheap; the campaign population
// is small but still spans many blocks.
var fleetTestScale = Scale{PayloadBits: 32, Runs: 1, Words: 6, Cells: 1 << 14}

// TestFleetShape checks the campaign's reduced state is coherent: the
// population count flows through every reducer, the calibration anchors
// are physical, and the degradation grid orders the way its calibrated
// divisors demand.
func TestFleetShape(t *testing.T) {
	res := Fleet(2020, fleetTestScale, 0, 0)

	if res.Plan.Cells != fleetTestScale.Cells {
		t.Fatalf("plan cells = %d, want %d", res.Plan.Cells, fleetTestScale.Cells)
	}
	if res.Pop.Count != uint64(res.Plan.Cells) {
		t.Fatalf("population reducer saw %d cells, want %d", res.Pop.Count, res.Plan.Cells)
	}
	if got := res.BER.N(); got != uint64(res.Plan.Cells) {
		t.Fatalf("BER sketch saw %d cells, want %d", got, res.Plan.Cells)
	}

	if len(res.Anchors) != 6 {
		t.Fatalf("anchors for %d models, want 6", len(res.Anchors))
	}
	for _, a := range res.Anchors {
		if a.SNR <= 0 || a.BER < 0 || a.TR <= 0 {
			t.Fatalf("unphysical anchor %+v", a)
		}
	}

	// Severity divisors are clamped monotone non-decreasing with
	// clean = 1, so the calibrated grid can only hurt the attacker.
	if res.Severities[0].SNRFactor != 1 {
		t.Fatalf("clean severity divisor = %v, want 1", res.Severities[0].SNRFactor)
	}
	for i := 1; i < len(res.Severities); i++ {
		if res.Severities[i].SNRFactor < res.Severities[i-1].SNRFactor {
			t.Fatalf("severity divisors not monotone: %v", res.Severities)
		}
	}

	// The sub-population counts tile the population exactly.
	var modelN, sevN uint64
	for _, g := range res.PerModel {
		modelN += g.BER.Count
	}
	for _, g := range res.PerSev {
		sevN += g.BER.Count
	}
	if modelN != uint64(res.Plan.Cells) || sevN != uint64(res.Plan.Cells) {
		t.Fatalf("group counts: models %d, severities %d, want %d both", modelN, sevN, res.Plan.Cells)
	}

	// Zipf mixes are heavy-headed: the first model/severity dominates.
	if res.PerModel[0].BER.Count <= res.PerModel[len(res.PerModel)-1].BER.Count {
		t.Fatal("model mix is not Zipf-heavy-headed")
	}
	if res.PerSev[0].BER.Count <= res.PerSev[len(res.PerSev)-1].BER.Count {
		t.Fatal("severity mix is not Zipf-heavy-headed")
	}

	// Worst cells are valid, sorted, and within the BER domain.
	if len(res.Worst) == 0 {
		t.Fatal("no worst cells retained")
	}
	for i, it := range res.Worst {
		if it.Value < 0 || it.Value > 0.5 {
			t.Fatalf("worst cell %d has BER %v outside [0, 0.5]", it.Cell, it.Value)
		}
		if i > 0 && it.Value > res.Worst[i-1].Value {
			t.Fatal("worst cells not sorted by BER")
		}
		if it.Cell < 0 || it.Cell >= res.Plan.Cells {
			t.Fatalf("worst cell index %d outside the population", it.Cell)
		}
	}

	// Reducer state is bounded by the block partition, not the cell
	// count (the scaling law itself is pinned in internal/campaign's
	// TestFlatReducerMemory): a few KB per block, never remotely the
	// 8 MB an O(cells) float64 slice costs at the million-cell scale
	// this experiment runs at.
	if res.StateBytes <= 0 || res.StateBytes > 4<<20 {
		t.Fatalf("reducer state = %d bytes — outside the flat-memory envelope", res.StateBytes)
	}
}

// TestFleetDegradationGridOrders checks the population-scale
// degradation effect the severity axis exists for: with monotone
// calibrated SNR divisors, the harshest severity's sub-population must
// show a higher mean BER and a lower mean F1 than the clean one.
func TestFleetDegradationGridOrders(t *testing.T) {
	res := Fleet(2020, fleetTestScale, 0, 0)
	clean, heavy := res.PerSev[0], res.PerSev[len(res.PerSev)-1]
	if heavy.BER.Mean <= clean.BER.Mean {
		t.Fatalf("heavy severity mean BER %v not above clean %v", heavy.BER.Mean, clean.BER.Mean)
	}
	if heavy.F1.Mean >= clean.F1.Mean {
		t.Fatalf("heavy severity mean F1 %v not below clean %v", heavy.F1.Mean, clean.F1.Mean)
	}
}
