package experiments

import (
	"fmt"

	"pmuleak/internal/core"
	"pmuleak/internal/faults"
	"pmuleak/internal/sweep"
)

// ---------------------------------------------------------------------
// Robustness — acquisition-fault degradation curves (measured
// extension). The paper's receiver works in the field because §IV-B2's
// batch processing rides out messy acquisition; this experiment
// quantifies exactly how much mess it survives by sweeping the fault
// injector's intensity (USB-overrun drop rate × clock drift × AGC gain
// steps) and tracing BER, throughput, payload survival (the
// Hamming(7,4)+interleaving knee), and keystroke F1.

// RobustnessPoint is one fault-intensity cell of the covert-channel
// degradation grid, averaged over the scale's runs.
type RobustnessPoint struct {
	DropRatePerS float64
	DriftPPM     float64
	GainStepDB   float64
	// PlainBER and ResyncBER are the channel error rates of the legacy
	// receiver and the self-healing receiver (per-batch resync +
	// bounded carrier re-acquisition) under the same fault schedule.
	PlainBER  float64
	ResyncBER float64
	// TR is the mean transmit rate (bps) — fixed by the transmitter,
	// reported for the degradation curve's x-axis context.
	TR float64
	// PayloadSaved is the fraction of runs in which
	// Hamming(7,4)+interleaving still delivered the payload error-free
	// through the resyncing receiver.
	PayloadSaved float64
	// Drops/Resyncs/Retries are per-cell totals of realized fault events
	// and receiver healing actions across the runs.
	Drops, Resyncs, Retries int
}

// RobustnessKeyPoint is one cell of the keystroke-detection arm: the
// same gain-step fault intensity seen by the plain detector and the
// gap-aware (per-block normalized) detector.
type RobustnessKeyPoint struct {
	GainStepDB float64
	GainSteps  int
	PlainF1    float64
	GapAwareF1 float64
}

// RobustnessResult carries the full degradation surface.
type RobustnessResult struct {
	DropRates []float64
	DriftPPMs []float64
	GainDBs   []float64
	// Covert is the grid in (drift, gain, drop) order: the point for
	// (DriftPPMs[i], GainDBs[j], DropRates[k]) is
	// Covert[(i*len(GainDBs)+j)*len(DropRates)+k].
	Covert []RobustnessPoint
	Keylog []RobustnessKeyPoint
	// KneeDropRate is the first drop rate (along the drift=0, gain=0
	// axis) at which ECC no longer saves every payload; -1 if the
	// payload survived the whole sweep.
	KneeDropRate float64
}

// Row returns the drop-rate curve at the given drift/gain indices.
func (r RobustnessResult) Row(drift, gain int) []RobustnessPoint {
	base := (drift*len(r.GainDBs) + gain) * len(r.DropRates)
	return r.Covert[base : base+len(r.DropRates)]
}

// BERMonotoneInDropRate reports whether the resync receiver's BER is
// non-decreasing along the drop-rate axis with the other fault axes at
// zero — the shape a degradation curve must have at a fixed seed.
func (r RobustnessResult) BERMonotoneInDropRate() bool {
	row := r.Row(0, 0)
	for i := 1; i < len(row); i++ {
		if row[i].ResyncBER < row[i-1].ResyncBER {
			return false
		}
	}
	return true
}

// gainStepRatePerS is the AGC re-gain event rate used whenever the
// gain-step axis is nonzero: a few events per covert capture, tens per
// multi-second keylog session.
const gainStepRatePerS = 100

// Robustness sweeps the fault injector over the covert channel and the
// keystroke detector. Every cell derives its seeds from its grid index,
// so the surface is reproducible and identical at every -jobs setting.
func Robustness(seed int64, scale Scale) RobustnessResult {
	defer expSpan("robustness").End()
	res := RobustnessResult{
		DropRates:    []float64{0, 100, 300, 800},
		DriftPPMs:    []float64{0, 200},
		GainDBs:      []float64{0, 6},
		KneeDropRate: -1,
	}

	nCells := len(res.DriftPPMs) * len(res.GainDBs) * len(res.DropRates)
	res.Covert = sweep.Map(nCells, func(c int) RobustnessPoint {
		k := c % len(res.DropRates)
		j := c / len(res.DropRates) % len(res.GainDBs)
		i := c / (len(res.DropRates) * len(res.GainDBs))
		pt := RobustnessPoint{
			DropRatePerS: res.DropRates[k],
			DriftPPM:     res.DriftPPMs[i],
			GainStepDB:   res.GainDBs[j],
		}
		fcfg := faults.Config{
			DropRatePerS:  pt.DropRatePerS,
			ClockPPM:      pt.DriftPPM,
			DriftPPMPerS:  pt.DriftPPM / 2,
			GainStepMaxDB: pt.GainStepDB,
		}
		if pt.GainStepDB > 0 {
			fcfg.GainStepRatePerS = gainStepRatePerS
		}
		saved := 0
		for r := 0; r < scale.Runs; r++ {
			tb := core.NewTestbed(core.WithSeed(seed + int64(c*scale.Runs+r)))
			base := core.CovertConfig{
				PayloadBits: scale.PayloadBits,
				Interleave:  7,
				Faults:      fcfg,
			}
			plain := tb.RunCovert(base)
			healed := base
			healed.RXResync = true
			healed.RXCarrierRetries = 3
			resync := tb.RunCovert(healed)

			pt.PlainBER += plain.ErrorRate()
			pt.ResyncBER += resync.ErrorRate()
			pt.TR += resync.TransmitRate
			pt.Drops += resync.Faults.Drops
			pt.Resyncs += resync.Demod.Quality.Resyncs
			pt.Retries += resync.Demod.Quality.Retries
			if resync.PayloadOK && resync.PayloadBER == 0 {
				saved++
			}
		}
		n := float64(scale.Runs)
		pt.PlainBER /= n
		pt.ResyncBER /= n
		pt.TR /= n
		pt.PayloadSaved = float64(saved) / n
		return pt
	})

	// The ECC knee: walk the clean-drift, clean-gain drop axis.
	for _, pt := range res.Row(0, 0) {
		if pt.PayloadSaved < 1 {
			res.KneeDropRate = pt.DropRatePerS
			break
		}
	}

	// Keystroke arm: gain-step magnitude is the axis that stresses the
	// detector's global threshold; each cell scores the plain and the
	// gap-aware detector against the same damaged capture.
	gainDBs := []float64{0, 6, 12}
	res.Keylog = sweep.Map(len(gainDBs), func(i int) RobustnessKeyPoint {
		fcfg := faults.Config{}
		if gainDBs[i] > 0 {
			fcfg = faults.Config{GainStepRatePerS: 2, GainStepMaxDB: gainDBs[i]}
		}
		run := func(gapAware bool) (float64, int) {
			tb := core.NewTestbed(core.WithSeed(seed + 7000 + int64(i)))
			kr := tb.RunKeylog(core.KeylogConfig{
				Words:    scale.Words,
				Faults:   fcfg,
				GapAware: gapAware,
			})
			return keystrokeF1(kr), kr.Faults.GainSteps
		}
		plainF1, steps := run(false)
		gapF1, _ := run(true)
		return RobustnessKeyPoint{
			GainStepDB: gainDBs[i],
			GainSteps:  steps,
			PlainF1:    plainF1,
			GapAwareF1: gapF1,
		}
	})
	return res
}

// keystrokeF1 folds a run's character score into a single F1 value:
// precision = matched/detected, recall = matched/truth, so
// F1 = 2*matched/(truth+detected).
func keystrokeF1(kr *core.KeylogResult) float64 {
	denom := kr.Char.Truth + kr.Char.Detected
	if denom == 0 {
		return 0
	}
	return 2 * float64(kr.Char.Matched) / float64(denom)
}

// String renders one covert grid point compactly.
func (p RobustnessPoint) String() string {
	return fmt.Sprintf("drop %3.0f/s drift %3.0fppm gain %2.0fdB -> BER %.1e (plain %.1e) payload saved %3.0f%%",
		p.DropRatePerS, p.DriftPPM, p.GainStepDB, p.ResyncBER, p.PlainBER, 100*p.PayloadSaved)
}
