package experiments

import "testing"

// TestRobustnessDegradationCurve is the acceptance test for the fault
// sweep: at a pinned seed the degradation surface must have the right
// shape — BER non-decreasing in drop rate on the clean axes, the
// self-healing receiver never worse than the plain one, a clean cell
// that is actually clean, and realized drops wherever the rate is
// nonzero.
func TestRobustnessDegradationCurve(t *testing.T) {
	res := Robustness(2020, Quick)

	if !res.BERMonotoneInDropRate() {
		row := res.Row(0, 0)
		t.Errorf("BER not monotone in drop rate: %+v", row)
	}
	clean := res.Row(0, 0)[0]
	if clean.ResyncBER != 0 || clean.PlainBER != 0 {
		t.Errorf("clean cell has BER resync=%v plain=%v", clean.ResyncBER, clean.PlainBER)
	}
	if clean.PayloadSaved != 1 {
		t.Errorf("clean cell payload saved = %v, want 1", clean.PayloadSaved)
	}
	for _, pt := range res.Covert {
		if pt.ResyncBER > pt.PlainBER+1e-9 {
			t.Errorf("self-healing receiver is worse at %s: resync %v > plain %v",
				pt.String(), pt.ResyncBER, pt.PlainBER)
		}
		if pt.DropRatePerS > 0 && pt.Drops == 0 {
			t.Errorf("drop rate %v/s realized no drops", pt.DropRatePerS)
		}
		if pt.DropRatePerS == 0 && pt.Drops != 0 {
			t.Errorf("zero drop rate realized %d drops", pt.Drops)
		}
	}
	// The ECC knee must sit on the sweep's drop axis: payloads survive
	// the clean cell, and a USB-overrun-sized drop exceeds the
	// interleaver's burst budget.
	if res.KneeDropRate < 0 {
		t.Error("no ECC knee found: payload survived every drop rate")
	}

	// The keylog arm: gap-aware normalization must never hurt, and must
	// demonstrably help once AGC steps are large.
	for _, kp := range res.Keylog {
		if kp.GainStepDB == 0 {
			if kp.PlainF1 != kp.GapAwareF1 {
				t.Errorf("gap-aware changed the clean keylog run: %v vs %v",
					kp.GapAwareF1, kp.PlainF1)
			}
			continue
		}
		if kp.GainSteps == 0 {
			t.Errorf("gain-step magnitude %vdB realized no steps", kp.GainStepDB)
		}
		if kp.GapAwareF1 < kp.PlainF1 {
			t.Errorf("gap-aware hurt at %vdB steps: %v < %v",
				kp.GainStepDB, kp.GapAwareF1, kp.PlainF1)
		}
	}
	last := res.Keylog[len(res.Keylog)-1]
	if last.GapAwareF1 <= last.PlainF1 {
		t.Errorf("gap-aware detector shows no healing at %vdB: %v vs %v",
			last.GainStepDB, last.GapAwareF1, last.PlainF1)
	}
}
