// Chaos is the daemon-level sibling of the capture-level injector in
// faults.go: where Injector perturbs the *signal* a receiver sees,
// Chaos perturbs the *service* that carries it — sources that stall or
// slow down, processors that die mid-stream, checkpoints that rot on
// disk. The same determinism contract applies: every fault schedule is
// a pure function of (ChaosConfig, seed, stream key, chunk index), so a
// chaos run is replayable bit-for-bit and a recovery bug found under
// seed S reproduces under seed S forever.
//
// The classes map to the failure paths internal/stream supervises:
//
//   - stall — a Source.Next that blocks past the supervisor's deadline
//     (exercises retry/backoff and Restart escalation);
//   - slow — a Source.Next that is late but within deadline
//     (exercises backpressure, never the retry path);
//   - kill — a Processor.Push that panics at a scheduled chunk
//     (exercises quarantine, and — combined with checkpoints — the
//     restore-and-resume path);
//   - corrupt — a checkpoint file with a flipped byte (exercises the
//     digest check and the restore-or-start-fresh fallback).
package faults

import (
	"fmt"
	"os"
	"time"

	"pmuleak/internal/telemetry"
	"pmuleak/internal/xrand"
)

// ChunkSource and ChunkProcessor mirror stream.Source and
// stream.Processor structurally instead of importing internal/stream —
// faults sits below the service layer in the dependency order (covert's
// tests use faults, and stream uses covert), so the interfaces are
// re-stated here and Go's structural typing makes the wrappers
// drop-in for the daemon's supervision API.
type ChunkSource interface {
	Next() ([]complex128, error)
}

// ChunkProcessor mirrors stream.Processor.
type ChunkProcessor interface {
	Push(chunk []complex128)
}

// chunkCheckpointer mirrors stream.Checkpointer.
type chunkCheckpointer interface {
	ChunkProcessor
	EncodeState() []byte
	RestoreState([]byte) error
	Consumed() int
}

// chunkRestarter mirrors stream.Restarter.
type chunkRestarter interface {
	Restart() error
}

// Chaos telemetry: one counter per injected event class, so a chaos
// run's snapshot states exactly which paths were exercised.
var (
	cStalls   = telemetry.NewCounter("faults.chaos.stalls")
	cSlows    = telemetry.NewCounter("faults.chaos.slows")
	cKills    = telemetry.NewCounter("faults.chaos.kills")
	cCorrupts = telemetry.NewCounter("faults.chaos.corruptions")
)

// Per-class substream derivation keys: a stream's chaos key is combined
// with the class tag so the stall/slow schedule, the kill chunk, and
// the corruption offset are independent draws — enabling one class
// never moves another's schedule.
const (
	chaosTagSource  = 1
	chaosTagKill    = 2
	chaosTagCorrupt = 3
)

// ChaosConfig describes daemon-level fault intensity. The zero value
// injects nothing. Probabilities are per chunk.
type ChaosConfig struct {
	// StallProb is the per-chunk probability that Next blocks for
	// StallFor before delivering — meant to exceed the supervisor's
	// stall deadline.
	StallProb float64
	StallFor  time.Duration
	// SlowProb is the per-chunk probability that Next sleeps SlowFor
	// before delivering — meant to stay within the deadline.
	SlowProb float64
	SlowFor  time.Duration
	// Kill schedules one processor panic per stream at a chunk index
	// drawn uniformly from [1, ceil(KillFrac·total)] (0 disables). The
	// panic fires once; a restored processor replays past it.
	Kill     bool
	KillFrac float64
	// CorruptCheckpoints flips one deterministic byte in a checkpoint
	// file via CorruptFile.
	CorruptCheckpoints bool
}

// Validate rejects nonsensical configurations.
func (c ChaosConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"StallProb", c.StallProb}, {"SlowProb", c.SlowProb}, {"KillFrac", c.KillFrac}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1]", p.name, p.v)
		}
	}
	if c.StallProb > 0 && c.StallFor <= 0 {
		return fmt.Errorf("faults: StallProb set but StallFor is %v", c.StallFor)
	}
	if c.SlowProb > 0 && c.SlowFor <= 0 {
		return fmt.Errorf("faults: SlowProb set but SlowFor is %v", c.SlowFor)
	}
	return nil
}

// Enabled reports whether any chaos class is active.
func (c ChaosConfig) Enabled() bool {
	return c.StallProb > 0 || c.SlowProb > 0 || c.Kill || c.CorruptCheckpoints
}

// Chaos derives deterministic fault schedules for daemon streams. All
// methods are pure functions of (config, seed, key, index) — a Chaos
// value holds no mutable state, so it is safe to share across
// goroutines and a schedule queried twice is the same schedule.
type Chaos struct {
	cfg  ChaosConfig
	seed int64
}

// NewChaos validates cfg and binds it to a seed.
func NewChaos(cfg ChaosConfig, seed int64) (*Chaos, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Chaos{cfg: cfg, seed: seed}, nil
}

// ChunkFault is one chunk's scheduled source fault.
type ChunkFault int

const (
	FaultNone ChunkFault = iota
	FaultStall
	FaultSlow
)

// Schedule returns the source-fault schedule for a stream's first n
// chunks. The schedule draws exactly two values per chunk regardless of
// outcome, so it is stable under any (StallProb, SlowProb) combination
// — changing one probability never shifts which random values decide
// the other chunks. Stall wins when both fire.
func (c *Chaos) Schedule(key uint64, n int) []ChunkFault {
	rng := xrand.Sub(c.seed, key<<8|chaosTagSource)
	out := make([]ChunkFault, n)
	for i := range out {
		stall := rng.Float64() < c.cfg.StallProb
		slow := rng.Float64() < c.cfg.SlowProb
		switch {
		case stall:
			out[i] = FaultStall
		case slow:
			out[i] = FaultSlow
		}
	}
	return out
}

// KillChunk returns the 1-based chunk index at which the stream's
// processor panic is scheduled, or 0 when the kill class is off. The
// index is drawn from [1, max(1, ceil(KillFrac·totalChunks))] so a
// small KillFrac kills early in the stream — leaving plenty of chunks
// after the kill for the restore path to replay.
func (c *Chaos) KillChunk(key uint64, totalChunks int) int {
	if !c.cfg.Kill || totalChunks < 1 {
		return 0
	}
	frac := c.cfg.KillFrac
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	hi := int(float64(totalChunks)*frac + 0.999999)
	if hi < 1 {
		hi = 1
	}
	if hi > totalChunks {
		hi = totalChunks
	}
	rng := xrand.Sub(c.seed, key<<8|chaosTagKill)
	return 1 + rng.Intn(hi)
}

// Source wraps src with the stream's scheduled stall/slow faults. Each
// fault fires once per chunk index: a stalled chunk blocks for StallFor
// (or until a Restart kick arrives), a slow chunk sleeps SlowFor, and
// delivery order is untouched — chaos perturbs timing, never data,
// which is what lets a chaos run demand byte-identical output.
func (c *Chaos) Source(key uint64, src ChunkSource) ChunkSource {
	return &chaosSource{
		inner: src,
		sched: c,
		key:   key,
		kick:  make(chan struct{}, 1),
	}
}

type chaosSource struct {
	inner ChunkSource
	sched *Chaos
	key   uint64
	rng   xrand.Lite
	idx   int
	init  bool
	kick  chan struct{}
}

// fault draws this chunk's fault class, advancing the substream exactly
// two values (the same contract as Schedule, so a wrapped source and a
// precomputed schedule agree draw for draw).
func (s *chaosSource) fault() ChunkFault {
	if !s.init {
		s.rng = xrand.Sub(s.sched.seed, s.key<<8|chaosTagSource)
		s.init = true
	}
	stall := s.rng.Float64() < s.sched.cfg.StallProb
	slow := s.rng.Float64() < s.sched.cfg.SlowProb
	switch {
	case stall:
		return FaultStall
	case slow:
		return FaultSlow
	}
	return FaultNone
}

func (s *chaosSource) Next() ([]complex128, error) {
	switch s.fault() {
	case FaultStall:
		cStalls.Inc()
		timer := time.NewTimer(s.sched.cfg.StallFor)
		select {
		case <-timer.C:
		case <-s.kick:
			timer.Stop()
		}
	case FaultSlow:
		cSlows.Inc()
		time.Sleep(s.sched.cfg.SlowFor)
	}
	s.idx++
	return s.inner.Next()
}

// Restart kicks a stall (waking a blocked Next early) and delegates to
// the inner source's Restarter if it has one — so supervision's
// escalation path works against chaos exactly as against a real source.
func (s *chaosSource) Restart() error {
	select {
	case s.kick <- struct{}{}:
	default:
	}
	if r, ok := s.inner.(chunkRestarter); ok {
		return r.Restart()
	}
	return nil
}

// Processor wraps proc with a one-shot scheduled panic at the stream's
// KillChunk (counting from 1). With the kill class off, proc is
// returned unwrapped. When proc is a stream.Checkpointer the wrapper is
// too, delegating the checkpoint surface — a killed stream must still
// have checkpoints to restore from.
func (c *Chaos) Processor(key uint64, totalChunks int, proc ChunkProcessor) ChunkProcessor {
	at := c.KillChunk(key, totalChunks)
	if at == 0 {
		return proc
	}
	kp := &killProc{inner: proc, at: at}
	if ck, ok := proc.(chunkCheckpointer); ok {
		return &killCkptProc{killProc: kp, ck: ck}
	}
	return kp
}

type killProc struct {
	inner ChunkProcessor
	seen  int
	at    int
	fired bool
}

func (k *killProc) Push(chunk []complex128) {
	k.seen++
	if !k.fired && k.seen == k.at {
		k.fired = true
		cKills.Inc()
		panic(fmt.Sprintf("faults: chaos kill at chunk %d", k.at))
	}
	k.inner.Push(chunk)
}

// killCkptProc forwards the Checkpointer surface through the kill
// wrapper so the daemon still checkpoints the inner processor. Note the
// kill counter itself is not checkpointed: a restored processor is a
// fresh wrapper-less instance, so the panic fires at most once per
// chaos run — which is the point (crash, restore, converge).
type killCkptProc struct {
	*killProc
	ck chunkCheckpointer
}

func (k *killCkptProc) EncodeState() []byte         { return k.ck.EncodeState() }
func (k *killCkptProc) RestoreState(b []byte) error { return k.ck.RestoreState(b) }
func (k *killCkptProc) Consumed() int               { return k.ck.Consumed() }

// CorruptFile flips one deterministically chosen byte of the file —
// the checkpoint-corruption class. The byte offset and XOR mask depend
// only on (seed, key), so a corrupted checkpoint is the same corrupted
// checkpoint on every replay. The mask is never zero, so the flip is
// always a real change the digest must catch.
func (c *Chaos) CorruptFile(key uint64, path string) error {
	if !c.cfg.CorruptCheckpoints {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("faults: cannot corrupt empty file %s", path)
	}
	rng := xrand.Sub(c.seed, key<<8|chaosTagCorrupt)
	off := rng.Intn(len(data))
	mask := byte(rng.Uint64()%255) + 1
	data[off] ^= mask
	cCorrupts.Inc()
	return os.WriteFile(path, data, 0o644)
}
