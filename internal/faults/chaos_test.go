package faults_test

import (
	"bytes"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"pmuleak/internal/covert"
	"pmuleak/internal/faults"
	"pmuleak/internal/stream"
)

func mustChaos(t *testing.T, cfg faults.ChaosConfig, seed int64) *faults.Chaos {
	t.Helper()
	c, err := faults.NewChaos(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestChaosConfigValidate: probabilities outside [0,1] and
// probability-without-duration combinations are rejected.
func TestChaosConfigValidate(t *testing.T) {
	bad := []faults.ChaosConfig{
		{StallProb: -0.1, StallFor: time.Millisecond},
		{StallProb: 1.5, StallFor: time.Millisecond},
		{SlowProb: 2, SlowFor: time.Millisecond},
		{KillFrac: -1},
		{StallProb: 0.5}, // StallFor missing
		{SlowProb: 0.5},  // SlowFor missing
	}
	for i, cfg := range bad {
		if _, err := faults.NewChaos(cfg, 1); err == nil {
			t.Errorf("case %d: NewChaos accepted invalid config %+v", i, cfg)
		}
	}
	if (faults.ChaosConfig{}).Enabled() {
		t.Error("zero config reports Enabled")
	}
	if !(faults.ChaosConfig{Kill: true}).Enabled() {
		t.Error("kill config reports disabled")
	}
}

// TestScheduleReplayable: a schedule is a pure function of (seed, key)
// — identical inputs give identical schedules, and different keys or
// seeds give independent ones.
func TestScheduleReplayable(t *testing.T) {
	cfg := faults.ChaosConfig{
		StallProb: 0.2, StallFor: time.Millisecond,
		SlowProb: 0.3, SlowFor: time.Millisecond,
	}
	a := mustChaos(t, cfg, 42).Schedule(7, 512)
	b := mustChaos(t, cfg, 42).Schedule(7, 512)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, key) produced different schedules")
	}
	stalls, slows := 0, 0
	for _, f := range a {
		switch f {
		case faults.FaultStall:
			stalls++
		case faults.FaultSlow:
			slows++
		}
	}
	if stalls == 0 || slows == 0 {
		t.Fatalf("512-chunk schedule at p=0.2/0.3 drew stalls=%d slows=%d — substream looks degenerate", stalls, slows)
	}
	if reflect.DeepEqual(a, mustChaos(t, cfg, 42).Schedule(8, 512)) {
		t.Fatal("different keys produced identical schedules")
	}
	if reflect.DeepEqual(a, mustChaos(t, cfg, 43).Schedule(7, 512)) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScheduleTwoDrawStability: the schedule consumes exactly two
// draws per chunk regardless of outcome, so toggling SlowProb never
// moves which chunks stall — the per-class independence the chaos
// docs promise.
func TestScheduleTwoDrawStability(t *testing.T) {
	stallOnly := mustChaos(t, faults.ChaosConfig{StallProb: 0.15, StallFor: time.Millisecond}, 9).Schedule(3, 256)
	both := mustChaos(t, faults.ChaosConfig{
		StallProb: 0.15, StallFor: time.Millisecond,
		SlowProb: 0.4, SlowFor: time.Millisecond,
	}, 9).Schedule(3, 256)
	for i := range stallOnly {
		if (stallOnly[i] == faults.FaultStall) != (both[i] == faults.FaultStall) {
			t.Fatalf("chunk %d: stall decision moved when SlowProb changed (%v vs %v)",
				i, stallOnly[i], both[i])
		}
	}
}

// TestKillChunkDeterministicAndBounded: the kill index replays
// exactly and always lands in [1, ceil(KillFrac*total)].
func TestKillChunkDeterministicAndBounded(t *testing.T) {
	cfg := faults.ChaosConfig{Kill: true, KillFrac: 0.5}
	for key := uint64(0); key < 32; key++ {
		c := mustChaos(t, cfg, 11)
		total := 20
		at := c.KillChunk(key, total)
		if at != mustChaos(t, cfg, 11).KillChunk(key, total) {
			t.Fatalf("key %d: kill chunk not replayable", key)
		}
		hi := int(math.Ceil(0.5 * float64(total)))
		if at < 1 || at > hi {
			t.Fatalf("key %d: kill chunk %d outside [1, %d]", key, at, hi)
		}
	}
	if got := mustChaos(t, faults.ChaosConfig{}, 11).KillChunk(1, 20); got != 0 {
		t.Fatalf("kill disabled but KillChunk = %d", got)
	}
	if got := mustChaos(t, cfg, 11).KillChunk(1, 0); got != 0 {
		t.Fatalf("zero-chunk stream but KillChunk = %d", got)
	}
}

// collectProc counts chunks.
type collectProc struct{ chunks int }

func (p *collectProc) Push(c []complex128) { p.chunks++ }

// TestKillProcFiresOnce: the wrapped processor panics exactly at the
// scheduled chunk, exactly once — a replay past the kill point (the
// restore path) runs clean.
func TestKillProcFiresOnce(t *testing.T) {
	c := mustChaos(t, faults.ChaosConfig{Kill: true, KillFrac: 1}, 3)
	inner := &collectProc{}
	total := 10
	at := c.KillChunk(5, total)
	proc := c.Processor(5, total, inner)
	if reflect.TypeOf(proc) == reflect.TypeOf(inner) {
		t.Fatal("kill class on but processor returned unwrapped")
	}
	chunk := make([]complex128, 8)
	fired := 0
	for i := 1; i <= total; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					fired++
					if i != at {
						t.Fatalf("panic at chunk %d, scheduled %d", i, at)
					}
					if !strings.Contains(r.(string), "chaos kill") {
						t.Fatalf("unexpected panic payload %v", r)
					}
				}
			}()
			proc.Push(chunk)
		}()
	}
	if fired != 1 {
		t.Fatalf("kill fired %d times, want exactly 1", fired)
	}
	// The killed chunk itself is not delivered to the inner processor;
	// all others are.
	if inner.chunks != total-1 {
		t.Fatalf("inner processor saw %d chunks, want %d", inner.chunks, total-1)
	}
}

// TestKillProcPreservesCheckpointer: wrapping a stream.Checkpointer
// keeps the checkpoint surface — the daemon must still be able to
// persist a stream that is scheduled to die.
func TestKillProcPreservesCheckpointer(t *testing.T) {
	rx := freshReceiver(t)
	c := mustChaos(t, faults.ChaosConfig{Kill: true, KillFrac: 1}, 3)
	proc := c.Processor(1, 10, rx)
	ck, ok := proc.(stream.Checkpointer)
	if !ok {
		t.Fatal("kill wrapper dropped the Checkpointer surface")
	}
	proc.Push(make([]complex128, 4096))
	if ck.Consumed() != 4096 {
		t.Fatalf("delegated Consumed = %d, want 4096", ck.Consumed())
	}
	state := ck.EncodeState()
	fresh := freshReceiver(t)
	if err := fresh.RestoreState(state); err != nil {
		t.Fatalf("state encoded through the kill wrapper does not restore: %v", err)
	}
	if fresh.Consumed() != 4096 {
		t.Fatalf("restored Consumed = %d, want 4096", fresh.Consumed())
	}
}

// freshReceiver builds a minimal covert receiver for checkpoint
// surface tests.
func freshReceiver(t *testing.T) *stream.CovertReceiver {
	t.Helper()
	cfg := covert.DefaultRXConfig()
	cfg.ExpectedF0 = 360e3
	rx, err := stream.NewCovertReceiver(cfg, 2.4e6, 540e3)
	if err != nil {
		t.Fatal(err)
	}
	return rx
}

// TestChaosSourceDeliversEverything: timing faults never reorder or
// drop data — a wrapped source yields the same chunk sequence as the
// bare one, and its Restart kick cuts a stall short.
func TestChaosSourceDeliversEverything(t *testing.T) {
	iq := make([]complex128, 1000)
	for i := range iq {
		iq[i] = complex(float64(i), 0)
	}
	cfg := faults.ChaosConfig{
		StallProb: 0.3, StallFor: time.Millisecond,
		SlowProb: 0.3, SlowFor: time.Microsecond,
	}
	src := mustChaos(t, cfg, 5).Source(2, stream.NewSliceSource(iq, 64))
	var got []complex128
	for {
		c, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, c...)
	}
	if !reflect.DeepEqual(got, iq) {
		t.Fatal("chaos source altered the data stream")
	}
	if _, ok := src.(stream.Restarter); !ok {
		t.Fatal("chaos source does not expose Restart")
	}
}

// TestCorruptFileDeterministic: the corruption flips exactly one byte,
// at the same offset with the same mask on every replay, and never a
// zero mask.
func TestCorruptFileDeterministic(t *testing.T) {
	dir := t.TempDir()
	orig := []byte("EMCK checkpoint payload with enough bytes to pick from")
	write := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, append([]byte(nil), orig...), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	c := mustChaos(t, faults.ChaosConfig{CorruptCheckpoints: true}, 77)
	p1 := write("a.ckpt")
	if err := c.CorruptFile(3, p1); err != nil {
		t.Fatal(err)
	}
	got1, _ := os.ReadFile(p1)
	diff := 0
	for i := range orig {
		if got1[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption changed %d bytes, want exactly 1", diff)
	}
	p2 := write("b.ckpt")
	if err := c.CorruptFile(3, p2); err != nil {
		t.Fatal(err)
	}
	got2, _ := os.ReadFile(p2)
	if !bytes.Equal(got1, got2) {
		t.Fatal("same (seed, key, content) produced different corruptions")
	}
	// Disabled class is a no-op.
	off := mustChaos(t, faults.ChaosConfig{}, 77)
	p3 := write("c.ckpt")
	if err := off.CorruptFile(3, p3); err != nil {
		t.Fatal(err)
	}
	if got3, _ := os.ReadFile(p3); !bytes.Equal(got3, orig) {
		t.Fatal("disabled corruption touched the file")
	}
}
