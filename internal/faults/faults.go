// Package faults is a deterministic fault injector for the acquisition
// chain. The simulated receiver path (emchannel.Apply → sdr.Acquire)
// models steady-state artifacts — noise, AGC, quantization, interferers
// — but a real RTL-SDR-v3 capture also suffers transient failures: USB
// overruns that drop contiguous sample blocks, a sample clock that is
// off by tens of ppm and drifts with temperature, AGC re-gain steps
// mid-capture, bursts that rail the ADC, and captures that end early.
// This package synthesizes those failure modes on top of a finished
// sdr.Capture so the demodulator's robustness can be measured (and the
// degradation curves of the `robustness` experiment plotted) without
// giving up reproducibility.
//
// Determinism contract: every fault class draws from its own
// xrand stream derived from the injector seed, so (a) a fault schedule
// is a pure function of (Config, seed, capture length), identical at
// every -jobs setting, and (b) enabling one fault class never perturbs
// the schedule of another. With the zero Config the injector is a
// strict no-op — the capture is untouched and no telemetry is recorded
// — which is what keeps golden outputs byte-identical when faults are
// disabled.
package faults

import (
	"fmt"
	"math"

	"pmuleak/internal/dsp"
	"pmuleak/internal/sdr"
	"pmuleak/internal/telemetry"
	"pmuleak/internal/xrand"
)

// Injector telemetry. Every injected event increments a counter, so a
// sweep's -metrics snapshot carries the fault totals next to the
// channel metrics they explain. All faults.* series are sums over
// per-cell deterministic schedules, hence scheduling-independent.
var (
	fApplies      = telemetry.NewCounter("faults.applies")
	fDrops        = telemetry.NewCounter("faults.drops")
	fDroppedSamp  = telemetry.NewCounter("faults.dropped_samples")
	fDriftPPM     = telemetry.NewCounter("faults.drift_ppm")
	fGainSteps    = telemetry.NewCounter("faults.gain_steps")
	fSaturations  = telemetry.NewCounter("faults.saturations")
	fSatSamples   = telemetry.NewCounter("faults.saturated_samples")
	fTruncations  = telemetry.NewCounter("faults.truncations")
	fTruncSamples = telemetry.NewCounter("faults.truncated_samples")
)

// Per-fault-class seed offsets: each class forks its stream from
// seed+offset so enabling or re-ordering classes never perturbs the
// schedules of the others.
const (
	seedDrops = iota + 1
	seedClock
	seedGain
	seedSaturation
	seedTruncation
)

// Config describes the fault intensity. The zero value disables every
// class (Enabled() == false) and Apply becomes a no-op.
type Config struct {
	// DropRatePerS is the expected number of USB-overrun events per
	// second of capture. Overruns arrive as a Poisson process
	// (exponential inter-arrival times) and each deletes a contiguous
	// sample block — the samples are gone, not zeroed, exactly as
	// librtlsdr delivers the stream after an overrun.
	DropRatePerS float64
	// DropMinLen and DropMaxLen bound the deleted block length in
	// samples (uniform). DropMaxLen == 0 defaults both to
	// [512, 4096] — roughly 0.2–1.7 ms at 2.4 MS/s, the order of one
	// USB transfer.
	DropMinLen, DropMaxLen int

	// ClockPPM is the receiver sample-clock frequency error in parts
	// per million: positive means the receiver's clock runs slow, so
	// symbol periods stretch as seen by the decoder. RTL-SDR crystals
	// are specified around ±20 ppm.
	ClockPPM float64
	// DriftPPMPerS adds a slow linear drift to the clock error
	// (thermal ramp): the effective error at capture time t is
	// ClockPPM + t*DriftPPMPerS, so symbol periods walk during the
	// capture.
	DriftPPMPerS float64

	// GainStepRatePerS is the expected number of AGC re-gain events
	// per second. Each multiplies the remainder of the capture by a
	// step drawn uniformly in ±GainStepMaxDB (amplitude dB).
	GainStepRatePerS float64
	// GainStepMaxDB bounds the per-event gain step. Zero with a
	// nonzero rate defaults to 6 dB.
	GainStepMaxDB float64

	// SaturationRatePerS is the expected number of burst-saturation
	// events per second (a nearby impulse railing the ADC). Each
	// clamps SaturationLen samples to the converter rails.
	SaturationRatePerS float64
	// SaturationLen is the burst length in samples; zero with a
	// nonzero rate defaults to 256.
	SaturationLen int

	// TruncateProb is the probability the capture ends early (host
	// stopped streaming). When it fires, the capture is cut to a
	// uniform fraction in [TruncateMinFrac, 1) of its length.
	TruncateProb float64
	// TruncateMinFrac is the minimum fraction kept; zero with a
	// nonzero TruncateProb defaults to 0.5.
	TruncateMinFrac float64
}

// Enabled reports whether any fault class is active. The zero Config
// reports false and Apply is then a strict no-op.
func (c Config) Enabled() bool {
	return c.DropRatePerS > 0 || c.ClockPPM != 0 || c.DriftPPMPerS != 0 ||
		c.GainStepRatePerS > 0 || c.SaturationRatePerS > 0 || c.TruncateProb > 0
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DropRatePerS < 0 {
		return fmt.Errorf("faults: negative DropRatePerS")
	}
	if c.DropMinLen < 0 || c.DropMaxLen < 0 || c.DropMinLen > c.DropMaxLen {
		return fmt.Errorf("faults: bad drop length bounds [%d,%d]", c.DropMinLen, c.DropMaxLen)
	}
	if math.Abs(c.ClockPPM) > 1000 {
		return fmt.Errorf("faults: ClockPPM %v out of range [-1000,1000]", c.ClockPPM)
	}
	if math.Abs(c.DriftPPMPerS) > 1000 {
		return fmt.Errorf("faults: DriftPPMPerS %v out of range [-1000,1000]", c.DriftPPMPerS)
	}
	if c.GainStepRatePerS < 0 {
		return fmt.Errorf("faults: negative GainStepRatePerS")
	}
	if c.GainStepMaxDB < 0 || c.GainStepMaxDB > 40 {
		return fmt.Errorf("faults: GainStepMaxDB %v out of range [0,40]", c.GainStepMaxDB)
	}
	if c.SaturationRatePerS < 0 {
		return fmt.Errorf("faults: negative SaturationRatePerS")
	}
	if c.SaturationLen < 0 {
		return fmt.Errorf("faults: negative SaturationLen")
	}
	if c.TruncateProb < 0 || c.TruncateProb > 1 {
		return fmt.Errorf("faults: TruncateProb %v out of range [0,1]", c.TruncateProb)
	}
	if c.TruncateMinFrac < 0 || c.TruncateMinFrac >= 1 {
		return fmt.Errorf("faults: TruncateMinFrac %v out of range [0,1)", c.TruncateMinFrac)
	}
	return nil
}

// Report is the realized fault schedule of one Apply: what was actually
// injected, for the experiment reports and the degradation curves.
type Report struct {
	// InSamples and OutSamples are the capture length before and after
	// injection.
	InSamples, OutSamples int
	// Drops and DroppedSamples count the overrun events and the
	// samples they deleted.
	Drops, DroppedSamples int
	// MaxDriftPPM is the largest absolute clock error applied during
	// the capture (|ClockPPM| at the start or end of the drift ramp).
	MaxDriftPPM float64
	// GainSteps counts AGC re-gain events; NetGainDB is their sum.
	GainSteps int
	NetGainDB float64
	// Saturations and SaturatedSamples count rail events.
	Saturations, SaturatedSamples int
	// Truncated reports early capture end; TruncatedSamples how many
	// samples it removed.
	Truncated        bool
	TruncatedSamples int
}

// Injector applies a deterministic fault schedule to captures. One
// Injector serves one experiment cell; it is not safe for concurrent
// use (each cell builds its own from its cell seed).
type Injector struct {
	cfg  Config
	seed int64
}

// New returns an injector for the given intensity, with every fault
// stream derived from seed.
func New(cfg Config, seed int64) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, seed: seed}, nil
}

// MustNew is New for pre-validated configs; it panics on an invalid one.
func MustNew(cfg Config, seed int64) *Injector {
	inj, err := New(cfg, seed)
	if err != nil {
		panic(err)
	}
	return inj
}

// Apply injects the configured faults into the capture in a fixed
// physical order — clock error (the ADC timebase), gain steps and
// saturation (the analog front end), block drops (the USB transport),
// truncation (the host) — and returns the realized schedule. The
// capture's IQ buffer is modified in place or replaced (the old buffer
// is returned to the sample pool when replaced). With a zero Config the
// capture is untouched and nothing is recorded.
func (inj *Injector) Apply(cap *sdr.Capture) Report {
	rep := Report{InSamples: len(cap.IQ), OutSamples: len(cap.IQ)}
	if !inj.cfg.Enabled() || len(cap.IQ) == 0 {
		return rep
	}
	fApplies.Inc()
	inj.applyClock(cap, &rep)
	inj.applyGainSteps(cap, &rep)
	inj.applySaturation(cap, &rep)
	inj.applyDrops(cap, &rep)
	inj.applyTruncation(cap, &rep)
	rep.OutSamples = len(cap.IQ)
	return rep
}

// applyClock resamples the capture through the erroneous receiver
// timebase: output sample k reads the input at a position advancing by
// 1 + ppm(t)*1e-6 per sample, with ppm(t) = ClockPPM + t*DriftPPMPerS.
// Linear interpolation is plenty below ~100 ppm (the inter-sample error
// is second order), and the resampler is what makes symbol periods walk
// instead of merely shifting.
func (inj *Injector) applyClock(cap *sdr.Capture, rep *Report) {
	c := inj.cfg
	if c.ClockPPM == 0 && c.DriftPPMPerS == 0 {
		return
	}
	n := len(cap.IQ)
	dur := float64(n) / cap.SampleRate
	endPPM := c.ClockPPM + dur*c.DriftPPMPerS
	rep.MaxDriftPPM = math.Max(math.Abs(c.ClockPPM), math.Abs(endPPM))
	fDriftPPM.Add(uint64(math.Round(rep.MaxDriftPPM)))

	out := dsp.GetIQ(n)
	pos := 0.0
	written := 0
	for k := 0; k < n; k++ {
		i := int(pos)
		if i >= n-1 {
			break
		}
		frac := pos - float64(i)
		out[k] = cap.IQ[i] + complex(frac, 0)*(cap.IQ[i+1]-cap.IQ[i])
		written++
		t := float64(k) / cap.SampleRate
		pos += 1 + (c.ClockPPM+t*c.DriftPPMPerS)*1e-6
	}
	old := cap.IQ
	cap.IQ = out[:written]
	dsp.PutIQ(old)
}

// poissonEvents draws event start positions (sample indices) from a
// Poisson process with the given rate, using the class's own stream.
func poissonEvents(rng *xrand.Source, ratePerS, sampleRate float64, n int) []int {
	var events []int
	pos := 0.0
	for {
		pos += rng.Exp(1/ratePerS) * sampleRate
		if int(pos) >= n {
			return events
		}
		events = append(events, int(pos))
	}
}

// applyGainSteps multiplies everything after each re-gain event by the
// event's step factor (steps compound, like a real AGC walking its gain
// word).
func (inj *Injector) applyGainSteps(cap *sdr.Capture, rep *Report) {
	c := inj.cfg
	if c.GainStepRatePerS <= 0 {
		return
	}
	maxDB := c.GainStepMaxDB
	if maxDB == 0 {
		maxDB = 6
	}
	rng := xrand.New(inj.seed + seedGain)
	events := poissonEvents(rng, c.GainStepRatePerS, cap.SampleRate, len(cap.IQ))
	gain := 1.0
	for e, start := range events {
		stepDB := rng.Uniform(-maxDB, maxDB)
		rep.GainSteps++
		rep.NetGainDB += stepDB
		fGainSteps.Inc()
		gain *= math.Pow(10, stepDB/20)
		end := len(cap.IQ)
		if e+1 < len(events) {
			end = events[e+1]
		}
		for i := start; i < end; i++ {
			cap.IQ[i] *= complex(gain, 0)
		}
	}
}

// applySaturation rails the ADC for each burst: both components clamp
// to ±1 (full scale), destroying the amplitude information the decoder
// thresholds on.
func (inj *Injector) applySaturation(cap *sdr.Capture, rep *Report) {
	c := inj.cfg
	if c.SaturationRatePerS <= 0 {
		return
	}
	burstLen := c.SaturationLen
	if burstLen == 0 {
		burstLen = 256
	}
	rng := xrand.New(inj.seed + seedSaturation)
	for _, start := range poissonEvents(rng, c.SaturationRatePerS, cap.SampleRate, len(cap.IQ)) {
		end := start + burstLen
		if end > len(cap.IQ) {
			end = len(cap.IQ)
		}
		rep.Saturations++
		fSaturations.Inc()
		for i := start; i < end; i++ {
			cap.IQ[i] = complex(rail(real(cap.IQ[i])), rail(imag(cap.IQ[i])))
			rep.SaturatedSamples++
		}
		fSatSamples.Add(uint64(end - start))
		cap.Clipped += end - start
	}
}

// rail returns the full-scale value with v's sign (zero rails high, as
// a pinned ADC input does).
func rail(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

// applyDrops deletes a contiguous block per overrun event. Blocks are
// removed back to front so earlier event positions stay valid, and the
// stream simply closes up — the receiver sees a shorter capture with
// phase discontinuities, not zeros.
func (inj *Injector) applyDrops(cap *sdr.Capture, rep *Report) {
	c := inj.cfg
	if c.DropRatePerS <= 0 {
		return
	}
	minLen, maxLen := c.DropMinLen, c.DropMaxLen
	if maxLen == 0 {
		minLen, maxLen = 512, 4096
	}
	if minLen < 1 {
		minLen = 1
	}
	rng := xrand.New(inj.seed + seedDrops)
	events := poissonEvents(rng, c.DropRatePerS, cap.SampleRate, len(cap.IQ))
	type block struct{ start, length int }
	blocks := make([]block, 0, len(events))
	for _, start := range events {
		length := minLen
		if maxLen > minLen {
			length += rng.Intn(maxLen - minLen + 1)
		}
		blocks = append(blocks, block{start, length})
	}
	for b := len(blocks) - 1; b >= 0; b-- {
		start, length := blocks[b].start, blocks[b].length
		if start >= len(cap.IQ) {
			continue
		}
		if start+length > len(cap.IQ) {
			length = len(cap.IQ) - start
		}
		copy(cap.IQ[start:], cap.IQ[start+length:])
		cap.IQ = cap.IQ[:len(cap.IQ)-length]
		rep.Drops++
		rep.DroppedSamples += length
		fDrops.Inc()
		fDroppedSamp.Add(uint64(length))
	}
}

// applyTruncation cuts the capture tail when the truncation event
// fires.
func (inj *Injector) applyTruncation(cap *sdr.Capture, rep *Report) {
	c := inj.cfg
	if c.TruncateProb <= 0 {
		return
	}
	rng := xrand.New(inj.seed + seedTruncation)
	if !rng.Bool(c.TruncateProb) {
		return
	}
	minFrac := c.TruncateMinFrac
	if minFrac == 0 {
		minFrac = 0.5
	}
	keep := int(rng.Uniform(minFrac, 1) * float64(len(cap.IQ)))
	if keep >= len(cap.IQ) {
		return
	}
	rep.Truncated = true
	rep.TruncatedSamples = len(cap.IQ) - keep
	fTruncations.Inc()
	fTruncSamples.Add(uint64(rep.TruncatedSamples))
	cap.IQ = cap.IQ[:keep]
}
