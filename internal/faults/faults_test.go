package faults

import (
	"math"
	"math/cmplx"
	"testing"

	"pmuleak/internal/sdr"
	"pmuleak/internal/xrand"
)

// testCapture builds a deterministic capture: a unit-amplitude tone so
// gain and saturation effects are easy to measure.
func testCapture(n int, rate float64) *sdr.Capture {
	iq := make([]complex128, n)
	for i := range iq {
		ph := 2 * math.Pi * 970e3 * float64(i) / rate
		iq[i] = cmplx.Rect(0.5, ph)
	}
	return &sdr.Capture{IQ: iq, SampleRate: rate, CenterFreqHz: 970e3}
}

func TestZeroConfigIsNoOp(t *testing.T) {
	cap := testCapture(4096, 2.4e6)
	orig := make([]complex128, len(cap.IQ))
	copy(orig, cap.IQ)

	inj := MustNew(Config{}, 42)
	rep := inj.Apply(cap)

	if rep.Drops != 0 || rep.GainSteps != 0 || rep.Saturations != 0 || rep.Truncated {
		t.Fatalf("zero config injected faults: %+v", rep)
	}
	if rep.InSamples != 4096 || rep.OutSamples != 4096 {
		t.Fatalf("zero config changed length: %+v", rep)
	}
	for i := range orig {
		if cap.IQ[i] != orig[i] {
			t.Fatalf("zero config modified sample %d: %v != %v", i, cap.IQ[i], orig[i])
		}
	}
	if (Config{}).Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{
		DropRatePerS:       200,
		ClockPPM:           40,
		DriftPPMPerS:       10,
		GainStepRatePerS:   100,
		SaturationRatePerS: 100,
		TruncateProb:       0.5,
	}
	run := func() (*sdr.Capture, Report) {
		cap := testCapture(1<<15, 2.4e6)
		rep := MustNew(cfg, 7).Apply(cap)
		return cap, rep
	}
	capA, repA := run()
	capB, repB := run()
	if repA != repB {
		t.Fatalf("reports differ at same seed:\n%+v\n%+v", repA, repB)
	}
	if len(capA.IQ) != len(capB.IQ) {
		t.Fatalf("output lengths differ: %d vs %d", len(capA.IQ), len(capB.IQ))
	}
	for i := range capA.IQ {
		if capA.IQ[i] != capB.IQ[i] {
			t.Fatalf("sample %d differs at same seed", i)
		}
	}

	// A different seed must realize a different schedule.
	capC := testCapture(1<<15, 2.4e6)
	repC := MustNew(cfg, 8).Apply(capC)
	if repA == repC {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestStreamIndependence: enabling one fault class must not perturb the
// schedule of another — each class forks its own stream.
func TestStreamIndependence(t *testing.T) {
	dropsOnly := Config{DropRatePerS: 300}
	combined := Config{DropRatePerS: 300, GainStepRatePerS: 150, SaturationRatePerS: 80}

	capA := testCapture(1<<15, 2.4e6)
	repA := MustNew(dropsOnly, 11).Apply(capA)
	capB := testCapture(1<<15, 2.4e6)
	repB := MustNew(combined, 11).Apply(capB)

	if repA.Drops != repB.Drops || repA.DroppedSamples != repB.DroppedSamples {
		t.Fatalf("drop schedule perturbed by other classes: %+v vs %+v", repA, repB)
	}
}

func TestDropsDeleteBlocks(t *testing.T) {
	cap := testCapture(1<<15, 2.4e6)
	rep := MustNew(Config{DropRatePerS: 500, DropMinLen: 64, DropMaxLen: 128}, 3).Apply(cap)
	if rep.Drops == 0 {
		t.Fatal("no drops at 500/s over 13.6ms capture is possible but the pinned seed should yield some")
	}
	if rep.DroppedSamples < rep.Drops*64 || rep.DroppedSamples > rep.Drops*128 {
		t.Fatalf("dropped samples %d outside bounds for %d drops of [64,128]", rep.DroppedSamples, rep.Drops)
	}
	if len(cap.IQ) != rep.InSamples-rep.DroppedSamples {
		t.Fatalf("length %d != %d - %d", len(cap.IQ), rep.InSamples, rep.DroppedSamples)
	}
	if rep.OutSamples != len(cap.IQ) {
		t.Fatalf("report OutSamples %d != len %d", rep.OutSamples, len(cap.IQ))
	}
}

func TestClockPPMStretchesTone(t *testing.T) {
	// +100 ppm clock error: the resampler reads ~100e-6 fewer input
	// samples' worth of signal per second, so the output runs out of
	// input slightly early and the tone appears shifted. Check the
	// output length shrank by roughly n*ppm*1e-6.
	n := 1 << 16
	cap := testCapture(n, 2.4e6)
	rep := MustNew(Config{ClockPPM: 100}, 5).Apply(cap)
	lost := n - len(cap.IQ)
	want := int(float64(n) * 100e-6)
	if lost < want-2 || lost > want+2 {
		t.Fatalf("clock resample lost %d samples, want ~%d", lost, want)
	}
	if rep.MaxDriftPPM != 100 {
		t.Fatalf("MaxDriftPPM = %v, want 100", rep.MaxDriftPPM)
	}
}

func TestDriftRampReported(t *testing.T) {
	n := 1 << 16
	cap := testCapture(n, 2.4e6)
	dur := float64(n) / 2.4e6
	rep := MustNew(Config{ClockPPM: -20, DriftPPMPerS: 400}, 5).Apply(cap)
	wantEnd := -20 + dur*400
	if math.Abs(rep.MaxDriftPPM-math.Max(20, math.Abs(wantEnd))) > 1e-9 {
		t.Fatalf("MaxDriftPPM = %v, want %v", rep.MaxDriftPPM, math.Max(20, math.Abs(wantEnd)))
	}
}

func TestGainStepsScaleTail(t *testing.T) {
	cap := testCapture(1<<15, 2.4e6)
	rep := MustNew(Config{GainStepRatePerS: 200, GainStepMaxDB: 6}, 9).Apply(cap)
	if rep.GainSteps == 0 {
		t.Fatal("no gain steps realized at pinned seed")
	}
	// After the last step the amplitude must equal 0.5 * 10^(net/20).
	want := 0.5 * math.Pow(10, rep.NetGainDB/20)
	got := cmplx.Abs(cap.IQ[len(cap.IQ)-1])
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("tail amplitude %v, want %v (net %.2f dB over %d steps)", got, want, rep.NetGainDB, rep.GainSteps)
	}
}

func TestSaturationRails(t *testing.T) {
	cap := testCapture(1<<15, 2.4e6)
	rep := MustNew(Config{SaturationRatePerS: 150, SaturationLen: 32}, 13).Apply(cap)
	if rep.Saturations == 0 || rep.SaturatedSamples == 0 {
		t.Fatal("no saturation realized at pinned seed")
	}
	if cap.Clipped < rep.SaturatedSamples {
		t.Fatalf("Clipped %d < SaturatedSamples %d", cap.Clipped, rep.SaturatedSamples)
	}
	railed := 0
	for _, s := range cap.IQ {
		if math.Abs(real(s)) == 1 && math.Abs(imag(s)) == 1 {
			railed++
		}
	}
	if railed != rep.SaturatedSamples {
		t.Fatalf("found %d railed samples, report says %d", railed, rep.SaturatedSamples)
	}
}

func TestTruncationCutsTail(t *testing.T) {
	cap := testCapture(1<<15, 2.4e6)
	rep := MustNew(Config{TruncateProb: 1, TruncateMinFrac: 0.5}, 17).Apply(cap)
	if !rep.Truncated {
		t.Fatal("TruncateProb=1 did not truncate")
	}
	if len(cap.IQ) < 1<<14 || len(cap.IQ) >= 1<<15 {
		t.Fatalf("kept %d samples, want in [%d, %d)", len(cap.IQ), 1<<14, 1<<15)
	}
	if rep.TruncatedSamples != 1<<15-len(cap.IQ) {
		t.Fatalf("TruncatedSamples %d != %d", rep.TruncatedSamples, 1<<15-len(cap.IQ))
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{DropRatePerS: -1},
		{DropMinLen: 10, DropMaxLen: 5},
		{DropMinLen: -1},
		{ClockPPM: 2000},
		{DriftPPMPerS: -2000},
		{GainStepRatePerS: -1},
		{GainStepRatePerS: 1, GainStepMaxDB: 50},
		{SaturationRatePerS: -1},
		{SaturationLen: -1},
		{TruncateProb: 1.5},
		{TruncateProb: 0.5, TruncateMinFrac: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
	good := Config{DropRatePerS: 100, ClockPPM: -20, DriftPPMPerS: 5,
		GainStepRatePerS: 10, GainStepMaxDB: 6, SaturationRatePerS: 5, TruncateProb: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected good config: %v", err)
	}
	if _, err := New(Config{DropRatePerS: -1}, 1); err == nil {
		t.Error("New accepted invalid config")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on invalid config")
		}
	}()
	MustNew(Config{TruncateProb: 2}, 1)
}

func TestEmptyCapture(t *testing.T) {
	cap := &sdr.Capture{IQ: nil, SampleRate: 2.4e6}
	rep := MustNew(Config{DropRatePerS: 1000, ClockPPM: 50, TruncateProb: 1}, 1).Apply(cap)
	if rep.OutSamples != 0 || rep.Drops != 0 {
		t.Fatalf("empty capture produced events: %+v", rep)
	}
}

func TestPoissonEventsOrdered(t *testing.T) {
	rng := xrand.New(99)
	events := poissonEvents(rng, 1000, 2.4e6, 1<<16)
	for i := 1; i < len(events); i++ {
		if events[i] < events[i-1] {
			t.Fatalf("events out of order at %d: %d < %d", i, events[i], events[i-1])
		}
	}
	if len(events) == 0 {
		t.Fatal("no events at 1000/s over 27ms")
	}
}
