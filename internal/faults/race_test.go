package faults

import (
	"sync"
	"testing"

	"pmuleak/internal/sdr"
)

// TestConcurrentInjectorsDeterministic exercises the fleet pattern the
// sweep uses: one injector per cell, many cells in flight. Each
// goroutine owns its injector and capture; schedules must come out
// identical to a serial run regardless of interleaving. Run under
// -race this also proves the telemetry counters are the only shared
// state.
func TestConcurrentInjectorsDeterministic(t *testing.T) {
	cfg := Config{
		DropRatePerS:       300,
		ClockPPM:           30,
		GainStepRatePerS:   120,
		SaturationRatePerS: 60,
		TruncateProb:       0.3,
	}
	const cells = 16

	serial := make([]Report, cells)
	for i := range serial {
		cap := testCapture(1<<14, 2.4e6)
		serial[i] = MustNew(cfg, int64(i)).Apply(cap)
	}

	parallel := make([]Report, cells)
	var wg sync.WaitGroup
	for i := 0; i < cells; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cap := testCapture(1<<14, 2.4e6)
			parallel[i] = MustNew(cfg, int64(i)).Apply(cap)
		}(i)
	}
	wg.Wait()

	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("cell %d schedule differs between serial and parallel runs:\n%+v\n%+v",
				i, serial[i], parallel[i])
		}
	}
}

// TestConcurrentApplySharedCounters hammers the telemetry counters from
// many goroutines (the only cross-injector shared state) under -race.
func TestConcurrentApplySharedCounters(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				cap := &sdr.Capture{IQ: make([]complex128, 4096), SampleRate: 2.4e6}
				MustNew(Config{DropRatePerS: 500, SaturationRatePerS: 200}, int64(i*100+j)).Apply(cap)
			}
		}(i)
	}
	wg.Wait()
}
