// Package fingerprint implements the paper's attack model (ii-b):
// inferring which task a computer just performed from how long its
// processor stayed active, observed purely through the VRM's EM
// emanations ("by measuring how long it takes to load a webpage, the
// attacker can infer which website was loaded", §III).
//
// The attack has two phases: a profiling phase, where the attacker
// measures each candidate workload's EM activity signature on a
// reference machine, and an attack phase, where victim activity bursts
// are classified against those profiles.
package fingerprint

import (
	"fmt"
	"math"
	"sort"

	"pmuleak/internal/core"
	"pmuleak/internal/sim"
)

// Site is one candidate workload (a web page, an application launch...)
// characterized by the CPU time its handling consumes.
type Site struct {
	Name    string
	CPUTime sim.Time
}

// DefaultCatalog returns a representative set of page-load workloads.
func DefaultCatalog() []Site {
	return []Site{
		{"text-only blog", 60 * sim.Millisecond},
		{"news front page", 140 * sim.Millisecond},
		{"webmail client", 230 * sim.Millisecond},
		{"video portal", 340 * sim.Millisecond},
	}
}

// Profile is one trained class: the mean and spread of the EM-measured
// activity duration for a site.
type Profile struct {
	Name   string
	MeanS  float64
	StdS   float64
	Trials int
}

// Classifier matches observed durations to trained profiles.
type Classifier struct {
	Profiles []Profile
}

// Train measures each site reps times on a testbed built by mkTB (called
// with a fresh seed per trial so trials are independent) and returns the
// fitted classifier. Sites whose measurements all fail are omitted; an
// error is returned if nothing could be profiled.
func Train(mkTB func(seed int64) *core.Testbed, sites []Site, reps int, seed int64) (*Classifier, error) {
	if reps < 1 {
		return nil, fmt.Errorf("fingerprint: reps must be >= 1")
	}
	c := &Classifier{}
	trial := seed
	for _, s := range sites {
		var durations []float64
		for r := 0; r < reps; r++ {
			trial++
			tb := mkTB(trial)
			d, err := tb.ActivityDuration(s.CPUTime)
			if err != nil {
				continue
			}
			durations = append(durations, d)
		}
		if len(durations) == 0 {
			continue
		}
		mean := 0.0
		for _, d := range durations {
			mean += d
		}
		mean /= float64(len(durations))
		variance := 0.0
		for _, d := range durations {
			variance += (d - mean) * (d - mean)
		}
		variance /= float64(len(durations))
		c.Profiles = append(c.Profiles, Profile{
			Name:   s.Name,
			MeanS:  mean,
			StdS:   math.Sqrt(variance),
			Trials: len(durations),
		})
	}
	if len(c.Profiles) == 0 {
		return nil, fmt.Errorf("fingerprint: no site could be profiled")
	}
	sort.Slice(c.Profiles, func(i, j int) bool {
		return c.Profiles[i].MeanS < c.Profiles[j].MeanS
	})
	return c, nil
}

// Classify returns the profile whose mean duration is nearest the
// observation, with the z-score distance to that profile as confidence
// context (small is confident).
func (c *Classifier) Classify(durationS float64) (name string, z float64) {
	best := math.Inf(1)
	for _, p := range c.Profiles {
		d := math.Abs(durationS - p.MeanS)
		if d < best {
			best = d
			name = p.Name
			sigma := p.StdS
			if sigma <= 0 {
				sigma = 0.005
			}
			z = d / sigma
		}
	}
	return name, z
}

// Separability reports the smallest gap between adjacent profile means
// in units of their pooled spread: below ~2 the classes overlap and
// misclassification is expected.
func (c *Classifier) Separability() float64 {
	if len(c.Profiles) < 2 {
		return math.Inf(1)
	}
	worst := math.Inf(1)
	for i := 1; i < len(c.Profiles); i++ {
		a, b := c.Profiles[i-1], c.Profiles[i]
		spread := (a.StdS + b.StdS) / 2
		if spread <= 0 {
			spread = 0.0025
		}
		if gap := (b.MeanS - a.MeanS) / spread; gap < worst {
			worst = gap
		}
	}
	return worst
}

// Result is the outcome of an attack-phase evaluation.
type Result struct {
	Trials  int
	Correct int
	// Confusion[truth][guess] counts classifications.
	Confusion map[string]map[string]int
}

// Accuracy is the fraction of trials classified correctly.
func (r Result) Accuracy() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Trials)
}

// Evaluate runs the attack phase: for each site, trials victim page
// loads are measured on fresh testbeds and classified.
func Evaluate(c *Classifier, mkTB func(seed int64) *core.Testbed,
	sites []Site, trials int, seed int64) Result {
	res := Result{Confusion: map[string]map[string]int{}}
	trial := seed
	for _, s := range sites {
		for t := 0; t < trials; t++ {
			trial++
			tb := mkTB(trial)
			d, err := tb.ActivityDuration(s.CPUTime)
			if err != nil {
				continue
			}
			guess, _ := c.Classify(d)
			if res.Confusion[s.Name] == nil {
				res.Confusion[s.Name] = map[string]int{}
			}
			res.Confusion[s.Name][guess]++
			res.Trials++
			if guess == s.Name {
				res.Correct++
			}
		}
	}
	return res
}
