package fingerprint

import (
	"testing"

	"pmuleak/internal/core"
	"pmuleak/internal/sdr"
	"pmuleak/internal/sim"
)

func nearTB(seed int64) *core.Testbed {
	return core.NewTestbed(core.WithSeed(seed))
}

func farTB(seed int64) *core.Testbed {
	return core.NewTestbed(
		core.WithSeed(seed),
		core.WithDistance(2.0),
		core.WithAntenna(sdr.LoopLA390),
	)
}

func TestTrainProducesOrderedProfiles(t *testing.T) {
	c, err := Train(nearTB, DefaultCatalog(), 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Profiles) != len(DefaultCatalog()) {
		t.Fatalf("profiled %d of %d sites", len(c.Profiles), len(DefaultCatalog()))
	}
	for i := 1; i < len(c.Profiles); i++ {
		if c.Profiles[i].MeanS <= c.Profiles[i-1].MeanS {
			t.Fatal("profiles not ordered by duration")
		}
	}
	// Measured durations track the configured CPU times.
	for _, p := range c.Profiles {
		var want float64
		for _, s := range DefaultCatalog() {
			if s.Name == p.Name {
				want = s.CPUTime.Seconds()
			}
		}
		if p.MeanS < 0.7*want || p.MeanS > 1.6*want {
			t.Errorf("%s: measured %.3fs for %.3fs of CPU time", p.Name, p.MeanS, want)
		}
	}
}

func TestTrainRejectsBadReps(t *testing.T) {
	if _, err := Train(nearTB, DefaultCatalog(), 0, 1); err == nil {
		t.Fatal("reps=0 accepted")
	}
}

func TestClassifyNearest(t *testing.T) {
	c := &Classifier{Profiles: []Profile{
		{Name: "short", MeanS: 0.05, StdS: 0.005},
		{Name: "long", MeanS: 0.30, StdS: 0.005},
	}}
	if name, _ := c.Classify(0.06); name != "short" {
		t.Fatalf("classified %q", name)
	}
	if name, z := c.Classify(0.31); name != "long" || z > 3 {
		t.Fatalf("classified %q z=%v", name, z)
	}
}

func TestSeparability(t *testing.T) {
	tight := &Classifier{Profiles: []Profile{
		{MeanS: 0.10, StdS: 0.05}, {MeanS: 0.12, StdS: 0.05},
	}}
	wide := &Classifier{Profiles: []Profile{
		{MeanS: 0.10, StdS: 0.005}, {MeanS: 0.30, StdS: 0.005},
	}}
	if tight.Separability() >= wide.Separability() {
		t.Fatal("separability ordering wrong")
	}
	single := &Classifier{Profiles: []Profile{{MeanS: 1}}}
	if s := single.Separability(); !(s > 1e9) {
		t.Fatalf("single-class separability = %v", s)
	}
}

func TestEndToEndNearFieldFingerprinting(t *testing.T) {
	c, err := Train(nearTB, DefaultCatalog(), 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	res := Evaluate(c, nearTB, DefaultCatalog(), 3, 300)
	if res.Trials != 12 {
		t.Fatalf("trials = %d", res.Trials)
	}
	if res.Accuracy() < 0.9 {
		t.Fatalf("near-field accuracy = %v (confusion %v)", res.Accuracy(), res.Confusion)
	}
}

func TestEndToEndDistanceFingerprinting(t *testing.T) {
	// The attack works at 2 m with the loop antenna, like keylogging.
	c, err := Train(farTB, DefaultCatalog(), 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	res := Evaluate(c, farTB, DefaultCatalog(), 2, 500)
	if res.Accuracy() < 0.75 {
		t.Fatalf("2m accuracy = %v (confusion %v)", res.Accuracy(), res.Confusion)
	}
}

func TestConfusionBookkeeping(t *testing.T) {
	c, _ := Train(nearTB, DefaultCatalog()[:2], 1, 600)
	res := Evaluate(c, nearTB, DefaultCatalog()[:2], 2, 700)
	total := 0
	for _, row := range res.Confusion {
		for _, n := range row {
			total += n
		}
	}
	if total != res.Trials {
		t.Fatalf("confusion total %d != trials %d", total, res.Trials)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if (Result{}).Accuracy() != 0 {
		t.Fatal("empty accuracy not 0")
	}
}

func TestCatalogSane(t *testing.T) {
	sites := DefaultCatalog()
	if len(sites) < 3 {
		t.Fatal("catalog too small")
	}
	for i := 1; i < len(sites); i++ {
		if sites[i].CPUTime <= sites[i-1].CPUTime {
			t.Fatal("catalog not ordered by CPU time")
		}
	}
	_ = sim.Millisecond
}
