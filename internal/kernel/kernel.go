// Package kernel simulates the operating-system behaviour the attack
// depends on: user processes alternating between CPU-bound work and
// sleep, sleep timers with OS-specific granularity and positively skewed
// overshoot, periodic scheduler ticks, asynchronous interrupts, and
// background workloads.
//
// The kernel's observable output is an activity trace — the merged set
// of time intervals during which the (single simulated) CPU was busy.
// The power-management model consumes that trace to decide P-/C-states,
// which in turn drives the voltage regulator and the EM emission model.
//
// Processes are written as ordinary Go functions that call Busy and
// Sleep on their Proc handle, mirroring the paper's transmitter code
// (Fig. 3) almost line for line. Each process runs on its own goroutine
// but in strict alternation with the simulation loop, so execution is
// fully deterministic.
package kernel

import (
	"fmt"
	"runtime"
	"sort"

	"pmuleak/internal/sim"
	"pmuleak/internal/xrand"
)

// OSKind selects the operating-system timing model.
type OSKind int

const (
	Linux OSKind = iota
	MacOS
	Windows
)

// String returns the OS family name.
func (o OSKind) String() string {
	switch o {
	case Linux:
		return "Linux"
	case MacOS:
		return "macOS"
	case Windows:
		return "Windows"
	}
	return fmt.Sprintf("OSKind(%d)", int(o))
}

// Config holds the timing parameters of the simulated OS.
type Config struct {
	OS OSKind

	// Cores is the number of CPU cores (0 and 1 both mean one).
	// Processes are pinned to cores round-robin at Spawn (or
	// explicitly with SpawnOn); activity is accounted per core.
	Cores int

	// TimerGranularity is the resolution of the sleep timer: sleep
	// requests round up to a multiple of it. Linux/macOS hrtimers are
	// microsecond-class; Windows Sleep() is millisecond-class.
	TimerGranularity sim.Time

	// WakeupLatency is the fixed extra delay between timer expiry and
	// the process actually running again (timer interrupt, scheduler).
	WakeupLatency sim.Time

	// WakeupJitterSigma is the Rayleigh scale of the additional,
	// positively skewed sleep overshoot. This is the dominant source
	// of the signaling-period spread in Fig. 6.
	WakeupJitterSigma sim.Time

	// SyscallOverhead is the CPU-busy time consumed on each side of a
	// sleep call (entering the kernel, and the housekeeping after
	// wakeup). It is why "the signal exhibits a sharp increase
	// whenever a new bit is transmitted, even when the bit is a zero"
	// (§IV-B1).
	SyscallOverhead sim.Time

	// TickInterval and TickWork model the periodic scheduler tick.
	// Zero TickInterval disables the tick (a "tickless" kernel).
	TickInterval sim.Time
	TickWork     sim.Time

	// InterruptRate is the mean rate (per second) of asynchronous
	// background interrupts; each consumes a busy burst of duration
	// uniform in [InterruptWorkMin, InterruptWorkMax].
	InterruptRate    float64
	InterruptWorkMin sim.Time
	InterruptWorkMax sim.Time
}

// DefaultConfig returns a realistic timing model for the given OS family.
func DefaultConfig(os OSKind) Config {
	switch os {
	case Windows:
		return Config{
			OS:                Windows,
			TimerGranularity:  500 * sim.Microsecond,
			WakeupLatency:     20 * sim.Microsecond,
			WakeupJitterSigma: 30 * sim.Microsecond,
			SyscallOverhead:   18 * sim.Microsecond,
			TickInterval:      sim.Millisecond,
			TickWork:          3 * sim.Microsecond,
			InterruptRate:     120,
			InterruptWorkMin:  5 * sim.Microsecond,
			InterruptWorkMax:  60 * sim.Microsecond,
		}
	case MacOS:
		return Config{
			OS:                MacOS,
			TimerGranularity:  sim.Microsecond,
			WakeupLatency:     6 * sim.Microsecond,
			WakeupJitterSigma: 9 * sim.Microsecond,
			SyscallOverhead:   12 * sim.Microsecond,
			TickInterval:      sim.Millisecond,
			TickWork:          2 * sim.Microsecond,
			InterruptRate:     100,
			InterruptWorkMin:  4 * sim.Microsecond,
			InterruptWorkMax:  50 * sim.Microsecond,
		}
	default: // Linux
		return Config{
			OS:                Linux,
			TimerGranularity:  sim.Microsecond,
			WakeupLatency:     5 * sim.Microsecond,
			WakeupJitterSigma: 8 * sim.Microsecond,
			SyscallOverhead:   10 * sim.Microsecond,
			TickInterval:      sim.Millisecond,
			TickWork:          2 * sim.Microsecond,
			InterruptRate:     90,
			InterruptWorkMin:  4 * sim.Microsecond,
			InterruptWorkMax:  50 * sim.Microsecond,
		}
	}
}

// Span is a half-open interval [Start, End) during which a CPU core was
// busy.
type Span struct {
	Start, End sim.Time
	// Core is the CPU core the activity ran on.
	Core int
}

// Duration returns the span length.
func (s Span) Duration() sim.Time { return s.End - s.Start }

type opKind int

const (
	opBusy opKind = iota
	opSleep
	opExit
)

type op struct {
	kind opKind
	d    sim.Time
}

// Proc is the handle a simulated process uses to interact with the
// kernel. Its methods may only be called from the process body function.
type Proc struct {
	k      *Kernel
	name   string
	core   int
	resume chan struct{}
	req    chan op
	exited bool
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Core returns the CPU core this process is pinned to.
func (p *Proc) Core() int { return p.core }

// Now reports the current simulated time. Inside a process body this is
// the instant the process resumed.
func (p *Proc) Now() sim.Time { return p.k.sched.Now() }

// Busy consumes CPU for exactly d of simulated time, recording it as
// activity. d must be non-negative; Busy(0) is a no-op that still yields
// to the kernel.
func (p *Proc) Busy(d sim.Time) {
	if d < 0 {
		panic("kernel: negative Busy duration")
	}
	p.issue(op{opBusy, d})
}

// Sleep requests that the process sleep for d. The actual sleep is
// longer: the request rounds up to the timer granularity and then incurs
// wakeup latency plus a positively skewed jitter, exactly the usleep()
// behaviour the paper measures. The syscall overhead on both sides is
// recorded as CPU activity.
func (p *Proc) Sleep(d sim.Time) {
	if d < 0 {
		panic("kernel: negative Sleep duration")
	}
	p.issue(op{opSleep, d})
}

// issue hands the operation to the kernel loop and blocks until the
// kernel resumes this process.
func (p *Proc) issue(o op) {
	p.req <- o
	if _, ok := <-p.resume; !ok {
		// Kernel shut down while we were blocked: unwind this
		// goroutine without running the rest of the body.
		p.exited = true
		runtime.Goexit()
	}
}

// Kernel is the simulated operating system. Create one with New, spawn
// workloads, then call Run; afterwards Activity returns the busy trace.
type Kernel struct {
	cfg      Config
	sched    *sim.Scheduler
	rng      *xrand.Source
	spans    []Span
	procs    []*Proc
	nextCore int
}

// New creates a kernel over a fresh scheduler. The seed controls every
// stochastic OS effect (jitter, interrupts).
func New(cfg Config, seed int64) *Kernel {
	k := &Kernel{
		cfg:   cfg,
		sched: sim.NewScheduler(),
		rng:   xrand.New(seed),
	}
	if cfg.TickInterval > 0 {
		k.scheduleTick(cfg.TickInterval)
	}
	if cfg.InterruptRate > 0 {
		k.scheduleInterrupt()
	}
	return k
}

// Scheduler exposes the underlying event scheduler, used by models that
// need to inject events (e.g. keystroke arrival).
func (k *Kernel) Scheduler() *sim.Scheduler { return k.sched }

// Config returns the kernel's timing configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Now reports the current simulated time.
func (k *Kernel) Now() sim.Time { return k.sched.Now() }

// Cores reports the configured core count (at least one).
func (k *Kernel) Cores() int {
	if k.cfg.Cores < 1 {
		return 1
	}
	return k.cfg.Cores
}

func (k *Kernel) scheduleTick(at sim.Time) {
	k.sched.At(at, func() {
		// The timekeeping core handles the tick.
		k.addSpan(k.sched.Now(), k.sched.Now()+k.cfg.TickWork, 0)
		k.scheduleTick(k.sched.Now() + k.cfg.TickInterval)
	})
}

func (k *Kernel) scheduleInterrupt() {
	gap := sim.FromSeconds(k.rng.Exp(1 / k.cfg.InterruptRate))
	if gap < sim.Microsecond {
		gap = sim.Microsecond
	}
	k.sched.After(gap, func() {
		work := sim.Time(k.rng.Uniform(float64(k.cfg.InterruptWorkMin), float64(k.cfg.InterruptWorkMax)))
		// Interrupts land on an arbitrary core.
		k.addSpan(k.sched.Now(), k.sched.Now()+work, k.rng.Intn(k.Cores()))
		k.scheduleInterrupt()
	})
}

// InjectBurst records a CPU-activity burst of duration d starting at
// absolute time at. It is how external stimuli (keystroke handling, UI
// work) enter the model without a full process.
func (k *Kernel) InjectBurst(at, d sim.Time) {
	if at < k.sched.Now() {
		panic("kernel: InjectBurst in the past")
	}
	k.sched.At(at, func() {
		k.addSpan(at, at+d, 0)
	})
}

// InjectBurstOn is InjectBurst pinned to a specific core.
func (k *Kernel) InjectBurstOn(core int, at, d sim.Time) {
	if at < k.sched.Now() {
		panic("kernel: InjectBurstOn in the past")
	}
	if core < 0 || core >= k.Cores() {
		panic(fmt.Sprintf("kernel: core %d out of range", core))
	}
	k.sched.At(at, func() {
		k.addSpan(at, at+d, core)
	})
}

func (k *Kernel) addSpan(start, end sim.Time, core int) {
	if end > start {
		k.spans = append(k.spans, Span{Start: start, End: end, Core: core})
	}
}

// Spawn starts a process running body at the current simulated time,
// pinned to the next core round-robin. The body function runs on its
// own goroutine in strict alternation with the simulation, so ordinary
// sequential code models the workload.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	core := k.nextCore % k.Cores()
	k.nextCore++
	return k.SpawnOn(name, core, body)
}

// SpawnOn starts a process pinned to the given core.
func (k *Kernel) SpawnOn(name string, core int, body func(p *Proc)) *Proc {
	if core < 0 || core >= k.Cores() {
		panic(fmt.Sprintf("kernel: core %d out of range [0,%d)", core, k.Cores()))
	}
	p := &Proc{
		k:      k,
		name:   name,
		core:   core,
		resume: make(chan struct{}),
		req:    make(chan op),
	}
	k.procs = append(k.procs, p)
	go func() {
		if _, ok := <-p.resume; !ok {
			return
		}
		body(p)
		p.exited = true
		p.req <- op{kind: opExit}
	}()
	// First dispatch: give the process control at the current instant.
	k.sched.After(0, func() { k.dispatch(p) })
	return p
}

// dispatch resumes process p, waits for its next operation, and
// schedules the continuation.
func (k *Kernel) dispatch(p *Proc) {
	p.resume <- struct{}{}
	o := <-p.req
	now := k.sched.Now()
	switch o.kind {
	case opBusy:
		k.addSpan(now, now+o.d, p.core)
		k.sched.At(now+o.d, func() { k.dispatch(p) })
	case opSleep:
		// Syscall entry housekeeping is CPU work.
		k.addSpan(now, now+k.cfg.SyscallOverhead, p.core)
		sleepStart := now + k.cfg.SyscallOverhead
		rounded := roundUp(o.d, k.cfg.TimerGranularity)
		jitter := sim.Time(k.rng.Rayleigh(float64(k.cfg.WakeupJitterSigma)))
		wake := sleepStart + rounded + k.cfg.WakeupLatency + jitter
		k.sched.At(wake, func() {
			// Wakeup housekeeping (timer interrupt, scheduler, the
			// process reading its next bit) is CPU work too.
			k.addSpan(wake, wake+k.cfg.SyscallOverhead, p.core)
			k.sched.At(wake+k.cfg.SyscallOverhead, func() { k.dispatch(p) })
		})
	case opExit:
		// Process finished; nothing more to schedule.
	}
}

func roundUp(d, g sim.Time) sim.Time {
	if g <= 1 {
		return d
	}
	if rem := d % g; rem != 0 {
		return d + g - rem
	}
	return d
}

// Run advances the simulation by d of simulated time.
func (k *Kernel) Run(d sim.Time) {
	k.sched.RunFor(d)
}

// Close releases any process goroutines still blocked in the kernel.
// The kernel must not be used afterwards.
func (k *Kernel) Close() {
	for _, p := range k.procs {
		if !p.exited {
			close(p.resume)
			// Absorb a possible in-flight request so the goroutine's
			// Goexit isn't blocked on the send.
			select {
			case <-p.req:
			default:
			}
		}
	}
	k.procs = nil
}

// Activity returns the busy trace up to horizon as a sorted, merged,
// non-overlapping list of spans, clamped to [0, horizon), across all
// cores (the package-level view a shared VRM sees when any core being
// busy keeps the package out of deep idle).
func (k *Kernel) Activity(horizon sim.Time) []Span {
	return mergeSpans(k.clamped(horizon, -1))
}

// ActivityOn returns the busy trace of a single core.
func (k *Kernel) ActivityOn(core int, horizon sim.Time) []Span {
	return mergeSpans(k.clamped(horizon, core))
}

// clamped selects spans up to horizon, filtered to one core (or all
// cores when core < 0).
func (k *Kernel) clamped(horizon sim.Time, core int) []Span {
	spans := make([]Span, 0, len(k.spans))
	for _, s := range k.spans {
		if core >= 0 && s.Core != core {
			continue
		}
		if s.Start >= horizon {
			continue
		}
		if s.End > horizon {
			s.End = horizon
		}
		if s.End > s.Start {
			spans = append(spans, s)
		}
	}
	return spans
}

func mergeSpans(spans []Span) []Span {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	merged := spans[:0]
	for _, s := range spans {
		if n := len(merged); n > 0 && s.Start <= merged[n-1].End {
			if s.End > merged[n-1].End {
				merged[n-1].End = s.End
			}
		} else {
			merged = append(merged, s)
		}
	}
	return merged
}

// BusyFraction reports the fraction of [0, horizon) covered by activity.
func (k *Kernel) BusyFraction(horizon sim.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	var busy sim.Time
	for _, s := range k.Activity(horizon) {
		busy += s.Duration()
	}
	return float64(busy) / float64(horizon)
}
