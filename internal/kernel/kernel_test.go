package kernel

import (
	"testing"

	"pmuleak/internal/sim"
)

// quiet returns a config with no background noise, for tests that need
// exact activity accounting.
func quiet() Config {
	return Config{
		OS:               Linux,
		TimerGranularity: sim.Microsecond,
	}
}

func TestOSKindString(t *testing.T) {
	if Linux.String() != "Linux" || Windows.String() != "Windows" || MacOS.String() != "macOS" {
		t.Fatal("OSKind names wrong")
	}
	if OSKind(9).String() != "OSKind(9)" {
		t.Fatal("unknown OSKind string")
	}
}

func TestBusyRecordsExactSpan(t *testing.T) {
	k := New(quiet(), 1)
	defer k.Close()
	k.Spawn("w", func(p *Proc) {
		p.Busy(10 * sim.Microsecond)
	})
	k.Run(sim.Millisecond)
	spans := k.Activity(sim.Millisecond)
	if len(spans) != 1 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0].Start != 0 || spans[0].End != 10*sim.Microsecond {
		t.Fatalf("span = %v", spans[0])
	}
}

func TestBusySequenceAccumulates(t *testing.T) {
	k := New(quiet(), 1)
	defer k.Close()
	k.Spawn("w", func(p *Proc) {
		p.Busy(5 * sim.Microsecond)
		p.Busy(5 * sim.Microsecond) // adjacent spans merge
	})
	k.Run(sim.Millisecond)
	spans := k.Activity(sim.Millisecond)
	if len(spans) != 1 || spans[0].Duration() != 10*sim.Microsecond {
		t.Fatalf("spans = %v", spans)
	}
}

func TestSleepCreatesGap(t *testing.T) {
	cfg := quiet()
	cfg.SyscallOverhead = 2 * sim.Microsecond
	k := New(cfg, 1)
	defer k.Close()
	k.Spawn("w", func(p *Proc) {
		p.Busy(10 * sim.Microsecond)
		p.Sleep(100 * sim.Microsecond)
		p.Busy(10 * sim.Microsecond)
	})
	k.Run(sim.Millisecond)
	spans := k.Activity(sim.Millisecond)
	// The busy work and the syscall-entry overhead merge into one
	// leading span; the wake overhead and trailing busy merge into the
	// second. Between them lies the sleep gap.
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	gap := spans[1].Start - spans[0].End
	if gap < 100*sim.Microsecond {
		t.Fatalf("sleep gap = %v, want >= 100µs", gap)
	}
	if gap > 200*sim.Microsecond {
		t.Fatalf("sleep gap = %v, unreasonably long with zero jitter... cfg=%+v", gap, cfg)
	}
}

func TestSleepNeverShort(t *testing.T) {
	cfg := DefaultConfig(Linux)
	cfg.InterruptRate = 0
	cfg.TickInterval = 0
	k := New(cfg, 7)
	defer k.Close()
	var wakes []sim.Time
	k.Spawn("w", func(p *Proc) {
		for i := 0; i < 200; i++ {
			before := p.Now()
			p.Sleep(50 * sim.Microsecond)
			wakes = append(wakes, p.Now()-before)
		}
	})
	k.Run(sim.Second)
	if len(wakes) != 200 {
		t.Fatalf("got %d sleeps", len(wakes))
	}
	for i, w := range wakes {
		if w < 50*sim.Microsecond {
			t.Fatalf("sleep %d returned early: %v", i, w)
		}
	}
}

func TestSleepOvershootPositivelySkewed(t *testing.T) {
	cfg := DefaultConfig(Linux)
	cfg.InterruptRate = 0
	cfg.TickInterval = 0
	k := New(cfg, 8)
	defer k.Close()
	var overshoots []float64
	k.Spawn("w", func(p *Proc) {
		for i := 0; i < 2000; i++ {
			before := p.Now()
			p.Sleep(100 * sim.Microsecond)
			actual := p.Now() - before
			overshoots = append(overshoots, float64(actual-100*sim.Microsecond))
		}
	})
	k.Run(10 * sim.Second)
	if len(overshoots) != 2000 {
		t.Fatalf("got %d sleeps", len(overshoots))
	}
	// Mean overshoot must exceed the median: positive skew.
	var sum float64
	for _, v := range overshoots {
		sum += v
	}
	mean := sum / float64(len(overshoots))
	sorted := append([]float64(nil), overshoots...)
	for i := 0; i < len(sorted); i++ { // insertion-free selection via sort
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	median := sorted[len(sorted)/2]
	if mean <= median {
		t.Fatalf("overshoot not positively skewed: mean %v median %v", mean, median)
	}
}

func TestWindowsGranularityCoarserThanLinux(t *testing.T) {
	lin, win := DefaultConfig(Linux), DefaultConfig(Windows)
	if win.TimerGranularity <= lin.TimerGranularity {
		t.Fatal("Windows timer granularity should be coarser than Linux")
	}
	measure := func(cfg Config) sim.Time {
		cfg.InterruptRate = 0
		cfg.TickInterval = 0
		cfg.WakeupJitterSigma = 0
		k := New(cfg, 1)
		defer k.Close()
		var took sim.Time
		k.Spawn("w", func(p *Proc) {
			before := p.Now()
			p.Sleep(100 * sim.Microsecond)
			took = p.Now() - before
		})
		k.Run(sim.Second)
		return took
	}
	if linT, winT := measure(lin), measure(win); winT <= linT {
		t.Fatalf("Windows sleep (%v) should exceed Linux sleep (%v)", winT, linT)
	}
}

func TestTickProducesPeriodicActivity(t *testing.T) {
	cfg := quiet()
	cfg.TickInterval = sim.Millisecond
	cfg.TickWork = 10 * sim.Microsecond
	k := New(cfg, 1)
	defer k.Close()
	k.Run(10*sim.Millisecond + 500*sim.Microsecond)
	spans := k.Activity(10*sim.Millisecond + 500*sim.Microsecond)
	if len(spans) != 10 {
		t.Fatalf("got %d tick spans, want 10: %v", len(spans), spans)
	}
	for i, s := range spans {
		if s.Start != sim.Time(i+1)*sim.Millisecond {
			t.Fatalf("tick %d at %v", i, s.Start)
		}
	}
}

func TestInterruptsArrive(t *testing.T) {
	cfg := quiet()
	cfg.InterruptRate = 1000 // 1k/s
	cfg.InterruptWorkMin = sim.Microsecond
	cfg.InterruptWorkMax = 10 * sim.Microsecond
	k := New(cfg, 3)
	defer k.Close()
	k.Run(sim.Second)
	n := len(k.Activity(sim.Second))
	if n < 700 || n > 1400 {
		t.Fatalf("got %d interrupt bursts in 1s at rate 1000", n)
	}
}

func TestInjectBurst(t *testing.T) {
	k := New(quiet(), 1)
	defer k.Close()
	k.InjectBurst(5*sim.Millisecond, 2*sim.Millisecond)
	k.Run(20 * sim.Millisecond)
	spans := k.Activity(20 * sim.Millisecond)
	if len(spans) != 1 || spans[0].Start != 5*sim.Millisecond || spans[0].End != 7*sim.Millisecond {
		t.Fatalf("spans = %v", spans)
	}
}

func TestInjectBurstPastPanics(t *testing.T) {
	k := New(quiet(), 1)
	defer k.Close()
	k.Run(10 * sim.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for past burst")
		}
	}()
	k.InjectBurst(sim.Millisecond, sim.Millisecond)
}

func TestActivityMergesOverlaps(t *testing.T) {
	k := New(quiet(), 1)
	defer k.Close()
	k.InjectBurst(sim.Millisecond, 3*sim.Millisecond)
	k.InjectBurst(2*sim.Millisecond, 4*sim.Millisecond)
	k.Run(20 * sim.Millisecond)
	spans := k.Activity(20 * sim.Millisecond)
	if len(spans) != 1 || spans[0].Start != sim.Millisecond || spans[0].End != 6*sim.Millisecond {
		t.Fatalf("spans = %v", spans)
	}
}

func TestActivityClampsToHorizon(t *testing.T) {
	k := New(quiet(), 1)
	defer k.Close()
	k.InjectBurst(sim.Millisecond, 10*sim.Millisecond)
	k.Run(20 * sim.Millisecond)
	spans := k.Activity(5 * sim.Millisecond)
	if len(spans) != 1 || spans[0].End != 5*sim.Millisecond {
		t.Fatalf("spans = %v", spans)
	}
	if got := k.Activity(500 * sim.Microsecond); len(got) != 0 {
		t.Fatalf("pre-burst horizon should be empty: %v", got)
	}
}

func TestBusyFraction(t *testing.T) {
	k := New(quiet(), 1)
	defer k.Close()
	k.InjectBurst(0, 25*sim.Millisecond)
	k.Run(100 * sim.Millisecond)
	if f := k.BusyFraction(100 * sim.Millisecond); f < 0.24 || f > 0.26 {
		t.Fatalf("BusyFraction = %v, want 0.25", f)
	}
	if f := k.BusyFraction(0); f != 0 {
		t.Fatalf("BusyFraction(0) = %v", f)
	}
}

func TestMultipleProcessesInterleave(t *testing.T) {
	k := New(quiet(), 1)
	defer k.Close()
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Busy(sim.Millisecond)
			p.Sleep(sim.Millisecond)
		}
	})
	k.Spawn("b", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(sim.Millisecond)
			p.Busy(sim.Millisecond)
		}
	})
	k.Run(20 * sim.Millisecond)
	// Each process runs 3 iterations of busy(1ms)+sleep(1ms) with
	// opposite phases, so the first 6 ms are fully covered.
	if f := k.BusyFraction(6 * sim.Millisecond); f < 0.95 {
		t.Fatalf("interleaved busy fraction = %v, expected mostly busy", f)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []Span {
		cfg := DefaultConfig(Linux)
		k := New(cfg, 42)
		defer k.Close()
		k.Spawn("tx", func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Busy(80 * sim.Microsecond)
				p.Sleep(100 * sim.Microsecond)
			}
		})
		k.Run(100 * sim.Millisecond)
		return k.Activity(100 * sim.Millisecond)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at span %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCloseReleasesBlockedProcesses(t *testing.T) {
	k := New(quiet(), 1)
	bodyDone := make(chan bool, 1)
	k.Spawn("w", func(p *Proc) {
		defer func() { bodyDone <- true }()
		for {
			p.Sleep(sim.Millisecond) // will be abandoned mid-run
		}
	})
	k.Run(10 * sim.Millisecond)
	k.Close()
	// After Close the process goroutine must unwind (running defers).
	// A deadlock here fails the test via the package timeout.
	if !<-bodyDone {
		t.Fatal("process body defer reported failure")
	}
}

func TestNegativeBusyPanics(t *testing.T) {
	k := New(quiet(), 1)
	defer k.Close()
	panicked := make(chan bool, 1)
	k.Spawn("w", func(p *Proc) {
		defer func() {
			panicked <- recover() != nil
			// swallow the panic so the goroutine can exit cleanly
			runtimeGoexitShim(p)
		}()
		p.Busy(-1)
	})
	k.Run(sim.Millisecond)
	select {
	case ok := <-panicked:
		if !ok {
			t.Fatal("negative Busy did not panic")
		}
	default:
		t.Fatal("process never ran")
	}
}

// runtimeGoexitShim marks the proc exited so Close does not try to close
// its channel twice; used only by the panic test above.
func runtimeGoexitShim(p *Proc) { p.exited = true }

func TestMultiCoreRoundRobinPinning(t *testing.T) {
	cfg := quiet()
	cfg.Cores = 2
	k := New(cfg, 1)
	defer k.Close()
	var cores []int
	for i := 0; i < 4; i++ {
		p := k.Spawn("w", func(p *Proc) { p.Busy(sim.Microsecond) })
		cores = append(cores, p.Core())
	}
	k.Run(sim.Millisecond)
	want := []int{0, 1, 0, 1}
	for i := range want {
		if cores[i] != want[i] {
			t.Fatalf("pinning = %v", cores)
		}
	}
}

func TestMultiCorePerCoreActivity(t *testing.T) {
	cfg := quiet()
	cfg.Cores = 2
	k := New(cfg, 1)
	defer k.Close()
	k.SpawnOn("a", 0, func(p *Proc) { p.Busy(10 * sim.Millisecond) })
	k.SpawnOn("b", 1, func(p *Proc) {
		p.Sleep(20 * sim.Millisecond)
		p.Busy(10 * sim.Millisecond)
	})
	k.Run(50 * sim.Millisecond)
	a := k.ActivityOn(0, 50*sim.Millisecond)
	b := k.ActivityOn(1, 50*sim.Millisecond)
	if len(a) != 1 || a[0].Start != 0 {
		t.Fatalf("core 0 activity = %v", a)
	}
	if len(b) != 1 || b[0].Start < 20*sim.Millisecond {
		t.Fatalf("core 1 activity = %v", b)
	}
	// The package view covers both.
	pkg := k.Activity(50 * sim.Millisecond)
	if len(pkg) != 2 {
		t.Fatalf("package activity = %v", pkg)
	}
}

func TestMultiCoreOverlapMergesInPackageView(t *testing.T) {
	cfg := quiet()
	cfg.Cores = 2
	k := New(cfg, 1)
	defer k.Close()
	k.InjectBurstOn(0, sim.Millisecond, 4*sim.Millisecond)
	k.InjectBurstOn(1, 2*sim.Millisecond, 5*sim.Millisecond)
	k.Run(20 * sim.Millisecond)
	pkg := k.Activity(20 * sim.Millisecond)
	if len(pkg) != 1 || pkg[0].Start != sim.Millisecond || pkg[0].End != 7*sim.Millisecond {
		t.Fatalf("package view = %v", pkg)
	}
}

func TestSpawnOnBadCorePanics(t *testing.T) {
	k := New(quiet(), 1)
	defer k.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	k.SpawnOn("w", 3, func(p *Proc) {})
}

func TestSingleCoreDefault(t *testing.T) {
	k := New(quiet(), 1)
	defer k.Close()
	if k.Cores() != 1 {
		t.Fatalf("Cores = %d", k.Cores())
	}
	p := k.Spawn("w", func(p *Proc) { p.Busy(sim.Microsecond) })
	if p.Core() != 0 {
		t.Fatalf("core = %d", p.Core())
	}
	k.Run(sim.Millisecond)
}

func TestInterruptsSpreadAcrossCores(t *testing.T) {
	cfg := quiet()
	cfg.Cores = 4
	cfg.InterruptRate = 2000
	cfg.InterruptWorkMin = sim.Microsecond
	cfg.InterruptWorkMax = 2 * sim.Microsecond
	k := New(cfg, 5)
	defer k.Close()
	k.Run(sim.Second)
	seen := map[int]bool{}
	for core := 0; core < 4; core++ {
		if len(k.ActivityOn(core, sim.Second)) > 0 {
			seen[core] = true
		}
	}
	if len(seen) < 3 {
		t.Fatalf("interrupts landed on only %d cores", len(seen))
	}
}
