package keylog

import (
	"fmt"
	"math"

	"pmuleak/internal/dsp"
	"pmuleak/internal/sdr"
	"pmuleak/internal/sim"
)

// DetectorConfig parameterizes the keystroke detector of §V-C.
type DetectorConfig struct {
	// Window is the STFT segment length (the paper: 5 ms,
	// non-overlapping).
	Window sim.Time
	// ExpectedF0 is the VRM frequency hint; zero means the band is
	// found by peak detection ("can also be easily found using
	// standard peak detection techniques").
	ExpectedF0 float64
	// BandBins is how many bins around the spike are summed.
	BandBins int
	// MinKeystroke filters out bursts shorter than this (30 ms in the
	// paper: "a valid keystroke should take longer").
	MinKeystroke sim.Time
	// MergeGap joins activity separated by less than this, bridging
	// brief dips inside one keystroke's handling.
	MergeGap sim.Time
	// MaxKeystroke caps a detection's length; longer activity is
	// bulk processor work, not typing.
	MaxKeystroke sim.Time
	// TrackBlock re-acquires the spike frequency once per block of
	// this duration, following the VRM clock's slow thermal drift over
	// multi-minute captures. Zero uses a single static band.
	TrackBlock sim.Time
	// GapAware re-normalizes the band trace per TrackBlock before
	// thresholding. A mid-capture AGC gain step (or the level
	// discontinuity left where a USB overrun dropped samples) shifts
	// whole stretches of the trace up or down, pulling the single
	// global bimodal threshold out of the valley; block-local gain
	// normalization makes the threshold see the same idle/burst
	// contrast in every block. Off — the default — keeps the global
	// single-pass behavior.
	GapAware bool
	// Parallelism is the DSP engine's worker count: 0 picks the process
	// default (normally all CPUs), 1 forces the exact legacy serial
	// path, n > 1 uses n workers. The engine's parallel STFT is
	// bit-identical to the serial one, so this knob never changes which
	// keystrokes are detected — only the wall-clock time.
	Parallelism int
}

// DefaultDetectorConfig mirrors the paper's settings.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		Window:       2500 * sim.Microsecond,
		BandBins:     3,
		MinKeystroke: 30 * sim.Millisecond,
		MergeGap:     15 * sim.Millisecond,
		MaxKeystroke: 400 * sim.Millisecond,
		TrackBlock:   2 * sim.Second,
	}
}

// Validate reports configuration errors.
func (c DetectorConfig) Validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("keylog: Window must be positive")
	}
	if c.BandBins < 1 {
		return fmt.Errorf("keylog: BandBins must be >= 1")
	}
	if c.MinKeystroke <= 0 || c.MergeGap < 0 {
		return fmt.Errorf("keylog: bad duration filters")
	}
	if c.MaxKeystroke <= c.MinKeystroke {
		return fmt.Errorf("keylog: MaxKeystroke must exceed MinKeystroke")
	}
	if c.TrackBlock < 0 {
		return fmt.Errorf("keylog: negative TrackBlock")
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("keylog: negative Parallelism")
	}
	return nil
}

// Keystroke is one detected key event, in capture-relative seconds.
type Keystroke struct {
	Start, End float64
}

// Duration returns the keystroke's detected length in seconds.
func (k Keystroke) Duration() float64 { return k.End - k.Start }

// Mid returns the keystroke's temporal midpoint.
func (k Keystroke) Mid() float64 { return (k.Start + k.End) / 2 }

// Detection is the detector's full output, retaining the intermediate
// band-energy trace for the Fig. 11-style spectrogram rendering.
type Detection struct {
	Keystrokes []Keystroke
	// Band is the per-frame normalized spectral sample sequence (SS in
	// the paper's terminology).
	Band []float64
	// FrameDT is seconds per Band frame.
	FrameDT float64
	// Threshold is the activity decision level applied to Band.
	Threshold float64
}

// Geometry is the derived STFT/tracking geometry of one detector run —
// everything the streaming detector needs to frame samples and schedule
// block re-acquisitions before it has seen any data.
type Geometry struct {
	// FFTSize is the non-overlapping STFT frame length in samples
	// (NextPowerOfTwo of the configured window).
	FFTSize int
	// FrameDT is seconds per STFT frame.
	FrameDT float64
	// BlockFrames is the re-acquisition block length in frames; 0 means
	// a single global block spanning the whole capture (TrackBlock
	// unset), which only the batch path can realize.
	BlockFrames int
	// SearchBins is the half-width of the per-block spike search.
	SearchBins int
}

// PlanGeometry derives the detector geometry for a sample rate. ok is
// false when the configured window rounds to zero samples at this rate
// — the batch path returns an empty Detection for such captures, and a
// streaming detector has nothing to frame.
func PlanGeometry(cfg DetectorConfig, sampleRate float64) (g Geometry, ok bool) {
	windowSamples := int(cfg.Window.Seconds() * sampleRate)
	if windowSamples < 1 {
		return g, false
	}
	g.FFTSize = dsp.NextPowerOfTwo(windowSamples)
	g.FrameDT = float64(g.FFTSize) / sampleRate
	if cfg.TrackBlock > 0 {
		g.BlockFrames = int(cfg.TrackBlock.Seconds() / g.FrameDT)
		if g.BlockFrames < 1 {
			g.BlockFrames = 1
		}
	}
	g.SearchBins = DriftSearchBins(g.FFTSize, sampleRate)
	return g, true
}

// DriftSearchBins is the half-width, in bins, of the per-block spike
// re-acquisition search: ±25 kHz — the drift between blocks is small,
// but the initial hint may be a few kHz off — and never less than ±2.
func DriftSearchBins(fftSize int, sampleRate float64) int {
	searchBins := int(25e3 * float64(fftSize) / sampleRate)
	if searchBins < 2 {
		searchBins = 2
	}
	return searchBins
}

// ScanBlock runs one block of the §V-C band tracker: re-acquire the
// spike bin by searching ±searchBins around center over the block's
// mean spectrum (skipping the receiver's DC bin), then write each
// frame's BandBins-wide band energy into out. mag holds the block's
// STFT magnitude rows and out must have the same length. Returns the
// re-acquired center for the next block. The batch detector and the
// streaming detector both express their block loop through this
// function, which is what keeps their Band traces byte-identical.
func ScanBlock(mag [][]float64, out []float64, center, fftSize, searchBins, bandBins int) int {
	// Mean spectrum of the block, searched near the last center.
	best, bestVal := center, -1.0
	for d := -searchBins; d <= searchBins; d++ {
		b := (center + d + fftSize) % fftSize
		if b == 0 {
			continue // skip the receiver's DC spike
		}
		var sum float64
		for _, row := range mag {
			sum += row[b]
		}
		if sum > bestVal {
			best, bestVal = b, sum
		}
	}
	center = best
	bins := make([]int, 0, bandBins)
	for i := -(bandBins - 1) / 2; len(bins) < bandBins; i++ {
		bins = append(bins, (center+i+fftSize)%fftSize)
	}
	for f, row := range mag {
		var sum float64
		for _, b := range bins {
			sum += row[b]
		}
		out[f] = sum
	}
	return center
}

// FinishDetection runs the global tail of the detector over a complete
// band trace: optional per-block gain normalization (GapAware), global
// normalization, the bimodal threshold, and the merge/duration interval
// passes. It takes ownership of band (the returned Detection aliases
// and mutates it). blockFrames is the per-block normalization width for
// GapAware; pass the full trace length when tracking is off.
func FinishDetection(band []float64, frameDT float64, blockFrames int, cfg DetectorConfig) *Detection {
	det := &Detection{Band: band, FrameDT: frameDT}
	if cfg.GapAware {
		normalizeBlocks(det.Band, blockFrames)
	}
	dsp.Normalize(det.Band)

	// Threshold: the trace is near-zero at idle and near-one during a
	// keystroke burst, so the bimodal threshold lands in the valley.
	det.Threshold = dsp.BimodalThreshold(det.Band, 40)

	frames := func(d sim.Time) int {
		// Round up: an interval passes the duration filter only when
		// it covers at least the full requirement.
		n := int(math.Ceil(d.Seconds() / det.FrameDT))
		if n < 1 {
			n = 1
		}
		return n
	}
	iv := dsp.ThresholdCrossings(det.Band, det.Threshold)
	iv = dsp.MergeIntervals(iv, frames(cfg.MergeGap))
	iv = dsp.FilterIntervals(iv, frames(cfg.MinKeystroke))
	maxFrames := frames(cfg.MaxKeystroke)
	for _, v := range iv {
		if v[1]-v[0] > maxFrames {
			continue
		}
		det.Keystrokes = append(det.Keystrokes, Keystroke{
			Start: float64(v[0]) * det.FrameDT,
			End:   float64(v[1]) * det.FrameDT,
		})
	}
	return det
}

// Detect runs the §V-C detector: STFT with non-overlapping ~5 ms
// windows, band selection around the PMU spike, thresholding, a merge
// pass, and the minimum-duration filter.
func Detect(cap *sdr.Capture, cfg DetectorConfig) *Detection {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g, ok := PlanGeometry(cfg, cap.SampleRate)
	if !ok {
		// The STFT window rounds to zero samples (NextPowerOfTwo would
		// panic): the capture cannot resolve the configured window, so
		// there is nothing to detect.
		return &Detection{}
	}
	if g.FFTSize > len(cap.IQ) {
		return &Detection{}
	}
	// Non-overlapping windows: hop = fftSize.
	s := dsp.NewEngine(cfg.Parallelism).STFT(cap.IQ, g.FFTSize, g.FFTSize, dsp.Hann(g.FFTSize), cap.SampleRate)

	// Band selection: start around the expected spike (or the
	// strongest non-DC peak), then re-acquire per block so the band
	// follows the VRM clock's slow thermal drift.
	var center int
	if cfg.ExpectedF0 > 0 {
		center = s.Bin(cfg.ExpectedF0 - cap.CenterFreqHz)
	} else {
		mean := make([]float64, g.FFTSize)
		for _, row := range s.Mag {
			for i, v := range row {
				mean[i] += v
			}
		}
		mean[0] = 0
		_, center = dsp.Max(mean)
	}
	blockFrames := g.BlockFrames
	if blockFrames == 0 {
		blockFrames = s.Frames()
	}
	band := make([]float64, s.Frames())
	for blockStart := 0; blockStart < s.Frames(); blockStart += blockFrames {
		blockEnd := blockStart + blockFrames
		if blockEnd > s.Frames() {
			blockEnd = s.Frames()
		}
		center = ScanBlock(s.Mag[blockStart:blockEnd], band[blockStart:blockEnd],
			center, g.FFTSize, g.SearchBins, cfg.BandBins)
	}
	return FinishDetection(band, g.FrameDT, blockFrames, cfg)
}

// normalizeBlocks rescales each blockFrames-wide stretch of the band
// trace by its own robust peak (98th percentile), equalizing the
// idle/burst contrast across AGC gain steps. The high quantile — not
// the max — keeps one saturated frame from crushing its whole block.
func normalizeBlocks(band []float64, blockFrames int) {
	if blockFrames < 1 {
		blockFrames = 1
	}
	for lo := 0; lo < len(band); lo += blockFrames {
		hi := lo + blockFrames
		if hi > len(band) {
			hi = len(band)
		}
		scale := dsp.Quantile(band[lo:hi], 0.98)
		if scale <= 0 {
			continue
		}
		for i := lo; i < hi; i++ {
			band[i] /= scale
		}
	}
}
