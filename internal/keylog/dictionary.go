package keylog

import (
	"math"
	"sort"

	"pmuleak/internal/dsp"
)

// This file implements the Berger-style dictionary attack the paper
// builds toward (§V-B): once keystroke timing and word boundaries are
// recovered, candidate words are ranked by how well their predicted
// inter-key timing (from the Salthouse effects) matches the observed
// intervals. Length alone narrows the dictionary; timing correlation
// ranks what remains.

// Candidate is one scored dictionary word.
type Candidate struct {
	Word string
	// Score combines length match and timing correlation; higher is
	// more likely. Range roughly [-1, 1].
	Score float64
}

// RankWord scores every dictionary word against one detected word group
// and returns candidates sorted best-first. Words whose length differs
// from the group are excluded (the attack assumes word segmentation
// already happened; a length-tolerant variant would simply merge ranks
// across neighbouring lengths).
func RankWord(group []Keystroke, dictionary []string, cfg TypistConfig) []Candidate {
	n := len(group)
	if n == 0 {
		return nil
	}
	observed := make([]float64, 0, n-1)
	for i := 1; i < n; i++ {
		observed = append(observed, group[i].Start-group[i-1].Start)
	}
	var out []Candidate
	for _, w := range dictionary {
		runes := []rune(w)
		if len(runes) != n {
			continue
		}
		score := 0.0
		if len(observed) >= 2 {
			predicted := make([]float64, 0, len(observed))
			for i := 1; i < len(runes); i++ {
				predicted = append(predicted, relativeInterval(runes[i-1], runes[i], cfg))
			}
			score = correlation(observed, predicted)
		}
		out = append(out, Candidate{Word: w, Score: score})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// correlation is the Pearson correlation of two equal-length series
// (0 when either side is constant).
func correlation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	ma, mb := dsp.Mean(a), dsp.Mean(b)
	var num, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		num += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return num / math.Sqrt(va*vb)
}

// Rank reports the 1-based position of word in the candidate list, or 0
// when absent.
func Rank(candidates []Candidate, word string) int {
	for i, c := range candidates {
		if c.Word == word {
			return i + 1
		}
	}
	return 0
}

// RecoverText runs the dictionary attack over every detected word group
// and returns the best-scoring candidate per word ("" when no
// same-length dictionary word exists).
func RecoverText(groups [][]Keystroke, dictionary []string, cfg TypistConfig) []string {
	out := make([]string, len(groups))
	for i, g := range groups {
		if c := RankWord(g, dictionary, cfg); len(c) > 0 {
			out[i] = c[0].Word
		}
	}
	return out
}

// CommonWords is a small built-in dictionary of frequent English words
// for demonstrations; real attacks load a full wordlist.
func CommonWords() []string {
	return []string{
		"the", "and", "for", "are", "but", "not", "you", "all", "can",
		"her", "was", "one", "our", "out", "day", "get", "has", "him",
		"his", "how", "man", "new", "now", "old", "see", "two", "way",
		"who", "boy", "did", "its", "let", "put", "say", "she", "too",
		"use", "that", "with", "have", "this", "will", "your", "from",
		"they", "know", "want", "been", "good", "much", "some", "time",
		"very", "when", "come", "here", "just", "like", "long", "make",
		"many", "more", "only", "over", "such", "take", "than", "them",
		"well", "were", "what", "word", "down", "side", "been", "call",
		"about", "other", "which", "their", "there", "first", "would",
		"these", "click", "price", "state", "email", "world", "music",
		"after", "video", "where", "books", "links", "years", "order",
		"items", "group", "under", "games", "could", "great", "hotel",
		"store", "terms", "right", "local", "those", "using", "phone",
		"forum", "based", "black", "check", "index", "being", "women",
		"today", "south", "pages", "found", "house", "photo", "power",
		"while", "three", "total", "place", "think", "north", "posts",
		"media", "water", "since", "guide", "board", "white", "small",
		"times", "sites", "level", "hours", "image", "title", "shall",
		"class", "still", "money", "every", "visit", "tools", "reply",
		"value", "press", "learn", "print", "stock", "point", "sales",
		"large", "table", "start", "model", "human", "movie", "march",
		"yahoo", "going", "study", "staff", "again", "april", "never",
		"users", "topic", "below", "party", "login", "legal", "quote",
		"story", "young", "field", "paper", "girls", "night", "texas",
		"poker", "issue", "range", "court", "audio", "light", "write",
		"offer", "given", "files", "event", "china", "needs", "might",
		"month", "major", "areas", "space", "cards", "child", "enter",
		"share", "added", "radio", "until", "color", "track", "least",
		"trade", "david", "green", "close", "drive", "short", "means",
		"daily", "beach", "costs", "style", "front", "parts", "early",
		"miles", "sound", "works", "rules", "final", "adult", "thing",
		"cheap", "third", "gifts", "cover", "often", "watch", "deals",
		"words", "heard", "horse", "staple", "battery", "correct",
	}
}
