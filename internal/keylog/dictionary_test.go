package keylog

import (
	"strings"
	"testing"

	"pmuleak/internal/xrand"
)

// typeWordGroups types a sentence and returns its true keystroke groups
// (split on the space keystrokes), for dictionary-attack tests that
// isolate the ranking from the detection pipeline.
func typeWordGroups(text string, cfg TypistConfig, seed int64) [][]Keystroke {
	events := Type(text, 0, cfg, xrand.New(seed))
	var groups [][]Keystroke
	var cur []Keystroke
	for _, ev := range events {
		if ev.Key == ' ' {
			if len(cur) > 0 {
				groups = append(groups, cur)
				cur = nil
			}
			continue
		}
		cur = append(cur, Keystroke{Start: ev.Press.Seconds(), End: ev.Release.Seconds()})
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

func TestCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if c := correlation(a, a); c < 0.999 {
		t.Fatalf("self-correlation = %v", c)
	}
	b := []float64{4, 3, 2, 1}
	if c := correlation(a, b); c > -0.999 {
		t.Fatalf("anti-correlation = %v", c)
	}
	if c := correlation(a, []float64{1, 1, 1, 1}); c != 0 {
		t.Fatalf("constant correlation = %v", c)
	}
	if c := correlation(a, a[:2]); c != 0 {
		t.Fatalf("length mismatch correlation = %v", c)
	}
}

func TestRankWordLengthFilter(t *testing.T) {
	group := make([]Keystroke, 5)
	for i := range group {
		group[i] = Keystroke{Start: float64(i) * 0.2}
	}
	cands := RankWord(group, []string{"the", "horse", "hotel", "battery"}, DefaultTypistConfig())
	if len(cands) != 2 {
		t.Fatalf("candidates = %v", cands)
	}
	for _, c := range cands {
		if len(c.Word) != 5 {
			t.Fatalf("wrong-length candidate %q", c.Word)
		}
	}
}

func TestRankWordEmptyGroup(t *testing.T) {
	if c := RankWord(nil, CommonWords(), DefaultTypistConfig()); c != nil {
		t.Fatalf("candidates from empty group: %v", c)
	}
}

func TestRank(t *testing.T) {
	c := []Candidate{{Word: "abc"}, {Word: "def"}}
	if Rank(c, "def") != 2 || Rank(c, "abc") != 1 || Rank(c, "zzz") != 0 {
		t.Fatal("Rank wrong")
	}
}

func TestDictionaryAttackBeatsChance(t *testing.T) {
	// Type dictionary words with low jitter and check that timing
	// correlation ranks the true word well above the same-length
	// median.
	cfg := DefaultTypistConfig()
	cfg.JitterFrac = 0.06
	cfg.PracticeGain = 0
	dict := CommonWords()

	words := []string{"world", "music", "horse", "staple", "battery", "correct", "there"}
	betterThanMedian := 0
	for i, w := range words {
		groups := typeWordGroups(w, cfg, int64(100+i))
		if len(groups) != 1 {
			t.Fatalf("grouping broke for %q", w)
		}
		cands := RankWord(groups[0], dict, cfg)
		r := Rank(cands, w)
		if r == 0 {
			t.Fatalf("%q missing from its own candidate list", w)
		}
		if r <= (len(cands)+1)/2 {
			betterThanMedian++
		}
	}
	if betterThanMedian < len(words)*2/3 {
		t.Fatalf("true word beat the median rank only %d/%d times",
			betterThanMedian, len(words))
	}
}

func TestRecoverTextShape(t *testing.T) {
	cfg := DefaultTypistConfig()
	cfg.JitterFrac = 0.05
	text := "horse battery"
	groups := typeWordGroups(text, cfg, 7)
	got := RecoverText(groups, CommonWords(), cfg)
	if len(got) != 2 {
		t.Fatalf("recovered %d words", len(got))
	}
	for i, w := range got {
		truth := strings.Fields(text)[i]
		if len(w) != len(truth) {
			t.Fatalf("word %d: recovered %q for %q", i, w, truth)
		}
	}
}

func TestRecoverTextNoCandidates(t *testing.T) {
	groups := [][]Keystroke{make([]Keystroke, 12)} // no 12-letter words in dict
	got := RecoverText(groups, CommonWords(), DefaultTypistConfig())
	if got[0] != "" {
		t.Fatalf("invented a word: %q", got[0])
	}
}

func TestCommonWordsSane(t *testing.T) {
	words := CommonWords()
	if len(words) < 150 {
		t.Fatalf("dictionary too small: %d", len(words))
	}
	for _, w := range words {
		if w == "" || strings.ContainsAny(w, " \t") {
			t.Fatalf("bad dictionary entry %q", w)
		}
	}
}
