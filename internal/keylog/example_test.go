package keylog_test

import (
	"fmt"

	"pmuleak/internal/keylog"
	"pmuleak/internal/xrand"
)

// ExampleType shows the Salthouse typist model: frequent digraphs are
// typed in quicker succession than rare ones.
func ExampleType() {
	cfg := keylog.DefaultTypistConfig()
	cfg.JitterFrac = 0
	cfg.PracticeGain = 0
	events := keylog.Type("the", 0, cfg, xrand.New(1))
	th := events[1].Press - events[0].Press // 'th': frequent digraph
	he := events[2].Press - events[1].Press // 'he': frequent digraph
	base := cfg.BaseInterKey
	fmt.Println(th < base, he < base)
	// Output:
	// true true
}

// ExampleGroupWords segments keystrokes into words by inter-key gaps.
func ExampleGroupWords() {
	ks := []keylog.Keystroke{
		{Start: 0.0}, {Start: 0.2}, {Start: 0.4}, // "c a n"
		{Start: 0.75},              // space
		{Start: 1.1}, {Start: 1.3}, // "m e"
	}
	groups := keylog.GroupWords(ks, 0)
	fmt.Println(keylog.PredictedWordLengths(groups))
	// Output:
	// [3 2]
}
