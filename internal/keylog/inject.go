package keylog

import (
	"fmt"

	"pmuleak/internal/kernel"
	"pmuleak/internal/sim"
	"pmuleak/internal/xrand"
)

// HandlingConfig models the processor activity a keystroke triggers on
// an otherwise-idle machine: the keyboard interrupt, the input stack,
// and the foreground application (the paper types into Chrome) redrawing
// and processing the character.
type HandlingConfig struct {
	// BurstMin/BurstMax bound the activity burst per keystroke. The
	// paper's detector assumes valid keystrokes exceed 30 ms.
	BurstMin sim.Time
	BurstMax sim.Time
	// AppNoiseRate is the rate (per second) of unrelated short
	// application bursts ("handling of the browser requests"), the
	// paper's stated source of false positives.
	AppNoiseRate float64
	// AppNoiseMin/AppNoiseMax bound those unrelated bursts; mostly
	// below the 30 ms filter, occasionally above it.
	AppNoiseMin sim.Time
	AppNoiseMax sim.Time
}

// DefaultHandlingConfig returns browser-typing burst parameters.
func DefaultHandlingConfig() HandlingConfig {
	return HandlingConfig{
		BurstMin:     45 * sim.Millisecond,
		BurstMax:     110 * sim.Millisecond,
		AppNoiseRate: 2.0,
		AppNoiseMin:  3 * sim.Millisecond,
		AppNoiseMax:  33 * sim.Millisecond,
	}
}

// Validate reports configuration errors.
func (c HandlingConfig) Validate() error {
	if c.BurstMin <= 0 || c.BurstMax < c.BurstMin {
		return fmt.Errorf("keylog: bad burst bounds [%v, %v]", c.BurstMin, c.BurstMax)
	}
	if c.AppNoiseRate < 0 {
		return fmt.Errorf("keylog: negative AppNoiseRate")
	}
	if c.AppNoiseRate > 0 && (c.AppNoiseMin <= 0 || c.AppNoiseMax < c.AppNoiseMin) {
		return fmt.Errorf("keylog: bad app-noise bounds [%v, %v]", c.AppNoiseMin, c.AppNoiseMax)
	}
	return nil
}

// Inject schedules the keystroke-handling activity for the events on
// the target kernel, plus the background application noise over
// [now, horizon). Call before running the kernel.
func Inject(k *kernel.Kernel, events []KeyEvent, horizon sim.Time,
	cfg HandlingConfig, rng *xrand.Source) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	for _, ev := range events {
		if ev.Press < k.Now() || ev.Press >= horizon {
			continue
		}
		burst := sim.Time(rng.Uniform(float64(cfg.BurstMin), float64(cfg.BurstMax)))
		k.InjectBurst(ev.Press, burst)
	}
	if cfg.AppNoiseRate > 0 {
		t := k.Now()
		for {
			t += sim.FromSeconds(rng.Exp(1 / cfg.AppNoiseRate))
			if t >= horizon {
				break
			}
			burst := sim.Time(rng.Uniform(float64(cfg.AppNoiseMin), float64(cfg.AppNoiseMax)))
			k.InjectBurst(t, burst)
		}
	}
}

// SessionHorizon returns a horizon comfortably past the last keystroke.
func SessionHorizon(events []KeyEvent) sim.Time {
	if len(events) == 0 {
		return sim.Second
	}
	last := events[len(events)-1]
	return last.Release + 500*sim.Millisecond
}
