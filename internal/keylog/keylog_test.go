package keylog

import (
	"strings"
	"testing"

	"pmuleak/internal/emchannel"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sdr"
	"pmuleak/internal/sim"
	"pmuleak/internal/xrand"
)

func TestKeyDistance(t *testing.T) {
	if d := KeyDistance('f', 'f'); d != 0 {
		t.Errorf("same-key distance = %v", d)
	}
	if d := KeyDistance('f', 'g'); d < 0.9 || d > 1.1 {
		t.Errorf("adjacent distance = %v", d)
	}
	if KeyDistance('q', 'p') < 5 {
		t.Error("cross-keyboard distance too small")
	}
	if d := KeyDistance('é', 'f'); d != 1 {
		t.Errorf("unknown key distance = %v", d)
	}
}

func TestTypistConfigValidate(t *testing.T) {
	if err := DefaultTypistConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultTypistConfig()
	bad.BaseInterKey = 0
	if bad.Validate() == nil {
		t.Error("zero BaseInterKey accepted")
	}
	bad = DefaultTypistConfig()
	bad.JitterFrac = 1
	if bad.Validate() == nil {
		t.Error("JitterFrac 1 accepted")
	}
	bad = DefaultTypistConfig()
	bad.WordBoundaryFactor = 0.5
	if bad.Validate() == nil {
		t.Error("WordBoundaryFactor < 1 accepted")
	}
}

func TestTypeProducesOrderedEvents(t *testing.T) {
	rng := xrand.New(1)
	events := Type("can you hear me", 100*sim.Millisecond, DefaultTypistConfig(), rng)
	if len(events) != len("can you hear me") {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Press != 100*sim.Millisecond {
		t.Fatalf("first press at %v", events[0].Press)
	}
	for i, ev := range events {
		if ev.Release <= ev.Press {
			t.Fatalf("event %d: release %v before press %v", i, ev.Release, ev.Press)
		}
		if i > 0 && ev.Press <= events[i-1].Press {
			t.Fatalf("event %d out of order", i)
		}
	}
}

func TestTypeSalthouseDistanceEffect(t *testing.T) {
	// Finding (i): far-apart keys in quicker succession. Compare mean
	// inter-key time for "qp" (far) vs "de" (near, not a frequent
	// digraph in our table... use "sd" adjacent, not in table).
	cfg := DefaultTypistConfig()
	cfg.JitterFrac = 0
	cfg.PracticeGain = 0
	rng := xrand.New(2)
	far := Type("qpqpqpqp", 0, cfg, rng)
	near := Type("sasasasa", 0, cfg, rng) // 'sa' adjacent keys
	farGap := far[1].Press - far[0].Press
	nearGap := near[1].Press - near[0].Press
	if farGap >= nearGap {
		t.Fatalf("far gap %v not quicker than near gap %v", farGap, nearGap)
	}
}

func TestTypeDigraphEffect(t *testing.T) {
	cfg := DefaultTypistConfig()
	cfg.JitterFrac = 0
	cfg.PracticeGain = 0
	cfg.DistanceGain = 0
	rng := xrand.New(3)
	freq := Type("ththth", 0, cfg, rng) // 'th' is frequent
	rare := Type("tztztz", 0, cfg, rng) // 'tz' is not
	if freq[1].Press-freq[0].Press >= rare[1].Press-rare[0].Press {
		t.Fatal("frequent digraph not faster")
	}
}

func TestTypePracticeEffect(t *testing.T) {
	cfg := DefaultTypistConfig()
	cfg.JitterFrac = 0
	rng := xrand.New(4)
	events := Type("ababababababab", 0, cfg, rng)
	firstGap := events[1].Press - events[0].Press
	lastGap := events[len(events)-1].Press - events[len(events)-2].Press
	if lastGap >= firstGap {
		t.Fatalf("practice did not speed up: first %v last %v", firstGap, lastGap)
	}
}

func TestTypeWordBoundaryPause(t *testing.T) {
	cfg := DefaultTypistConfig()
	cfg.JitterFrac = 0
	rng := xrand.New(5)
	events := Type("ab cd", 0, cfg, rng)
	inner := events[1].Press - events[0].Press
	intoSpace := events[2].Press - events[1].Press
	if intoSpace <= inner {
		t.Fatalf("no pause at word boundary: inner %v boundary %v", inner, intoSpace)
	}
}

func TestWordsAndLengths(t *testing.T) {
	lens := WordLengths("can you hear me")
	want := []int{3, 3, 4, 2}
	if len(lens) != 4 {
		t.Fatalf("lens = %v", lens)
	}
	for i := range want {
		if lens[i] != want[i] {
			t.Fatalf("lens = %v", lens)
		}
	}
}

func TestRandomWords(t *testing.T) {
	rng := xrand.New(6)
	text := RandomWords(50, rng)
	words := Words(text)
	if len(words) != 50 {
		t.Fatalf("got %d words", len(words))
	}
	for _, w := range words {
		if len(w) < 2 || len(w) > 9 {
			t.Fatalf("odd word %q", w)
		}
		if strings.ContainsAny(w, " \t") {
			t.Fatalf("word contains whitespace: %q", w)
		}
	}
}

func TestHandlingConfigValidate(t *testing.T) {
	if err := DefaultHandlingConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultHandlingConfig()
	bad.BurstMax = bad.BurstMin - 1
	if bad.Validate() == nil {
		t.Error("inverted burst bounds accepted")
	}
	bad = DefaultHandlingConfig()
	bad.AppNoiseRate = -1
	if bad.Validate() == nil {
		t.Error("negative noise rate accepted")
	}
}

func TestDetectorConfigValidate(t *testing.T) {
	if err := DefaultDetectorConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultDetectorConfig()
	bad.Window = 0
	if bad.Validate() == nil {
		t.Error("zero window accepted")
	}
	bad = DefaultDetectorConfig()
	bad.MaxKeystroke = bad.MinKeystroke
	if bad.Validate() == nil {
		t.Error("MaxKeystroke <= MinKeystroke accepted")
	}
}

func TestScoreKeystrokesExact(t *testing.T) {
	truth := []KeyEvent{
		{Press: 100 * sim.Millisecond},
		{Press: 300 * sim.Millisecond},
		{Press: 500 * sim.Millisecond},
	}
	detected := []Keystroke{
		{Start: 0.101, End: 0.18},
		{Start: 0.299, End: 0.36},
		{Start: 0.700, End: 0.75}, // false positive
	}
	s := ScoreKeystrokes(truth, detected, 25*sim.Millisecond)
	if s.Matched != 2 {
		t.Fatalf("matched = %d", s.Matched)
	}
	if s.TPR < 0.66 || s.TPR > 0.67 {
		t.Fatalf("TPR = %v", s.TPR)
	}
	if s.FPR < 0.33 || s.FPR > 0.34 {
		t.Fatalf("FPR = %v", s.FPR)
	}
}

func TestScoreKeystrokesNoDoubleClaim(t *testing.T) {
	truth := []KeyEvent{{Press: 100 * sim.Millisecond}}
	detected := []Keystroke{
		{Start: 0.100, End: 0.15},
		{Start: 0.105, End: 0.16},
	}
	s := ScoreKeystrokes(truth, detected, 25*sim.Millisecond)
	if s.Matched != 1 {
		t.Fatalf("matched = %d, want 1 (no double claim)", s.Matched)
	}
}

func TestScoreKeystrokesEmpty(t *testing.T) {
	s := ScoreKeystrokes(nil, nil, sim.Millisecond)
	if s.TPR != 0 || s.FPR != 0 {
		t.Fatalf("empty score = %+v", s)
	}
}

func TestGroupWordsBasic(t *testing.T) {
	// Three-letter word, space, two-letter word with clear boundaries.
	ks := []Keystroke{
		{Start: 0.0}, {Start: 0.2}, {Start: 0.4}, // word 1
		{Start: 0.75},              // space
		{Start: 1.1}, {Start: 1.3}, // word 2
	}
	groups := GroupWords(ks, 0)
	lens := PredictedWordLengths(groups)
	if len(lens) != 2 || lens[0] != 3 || lens[1] != 2 {
		t.Fatalf("lens = %v", lens)
	}
}

func TestGroupWordsEmpty(t *testing.T) {
	if g := GroupWords(nil, 0); g != nil {
		t.Fatalf("groups = %v", g)
	}
}

func TestGroupWordsSingleKeystroke(t *testing.T) {
	g := GroupWords([]Keystroke{{Start: 1}}, 0)
	if len(g) != 1 || len(g[0]) != 1 {
		t.Fatalf("groups = %v", g)
	}
}

func TestScoreWordsPerfect(t *testing.T) {
	s := ScoreWords([]int{3, 4, 2}, []int{3, 4, 2})
	if s.Precision != 1 || s.Recall != 1 {
		t.Fatalf("score = %+v", s)
	}
}

func TestScoreWordsPartial(t *testing.T) {
	// One length wrong, one word missing.
	s := ScoreWords([]int{3, 4, 2, 5}, []int{3, 9, 2})
	if s.Precision <= 0.5 || s.Precision >= 1 {
		t.Fatalf("precision = %v", s.Precision)
	}
	if s.Recall <= 0.5 || s.Recall >= 1 {
		t.Fatalf("recall = %v", s.Recall)
	}
}

func TestScoreWordsEmpty(t *testing.T) {
	s := ScoreWords(nil, nil)
	if s.Precision != 0 || s.Recall != 0 {
		t.Fatalf("score = %+v", s)
	}
}

// keylogPlan is the narrowband tuning used for keystroke detection: the
// fundamental spike alone in a 240 kHz capture.
func keylogPlan(prof laptop.Profile) laptop.EmanationPlan {
	return laptop.EmanationPlan{
		SampleRate:   240e3,
		CenterFreqHz: prof.VRM.SwitchingFreqHz - 60e3,
		Harmonics:    1,
	}
}

// runKeylog performs the full typing -> emanation -> detection cycle.
func runKeylog(t *testing.T, text string, seed int64, chanCfg emchannel.Config,
	ant sdr.Antenna) ([]KeyEvent, *Detection) {
	t.Helper()
	prof, _ := laptop.ByModel("Dell Precision 7290")
	sys := laptop.NewSystem(prof, seed)
	defer sys.Close()

	rng := xrand.New(seed + 500)
	events := Type(text, 200*sim.Millisecond, DefaultTypistConfig(), rng)
	horizon := SessionHorizon(events)
	Inject(sys.Kernel(), events, horizon, DefaultHandlingConfig(), rng.Fork())
	sys.Run(horizon)

	plan := keylogPlan(prof)
	field := sys.Emanations(horizon, plan)
	field = emchannel.Apply(field, plan.SampleRate, chanCfg, rng.Fork())

	sdrCfg := sdr.DefaultConfig()
	sdrCfg.SampleRate = plan.SampleRate
	sdrCfg.Antenna = ant
	cap := sdr.Acquire(field, plan.CenterFreqHz, sdrCfg, rng.Fork())

	detCfg := DefaultDetectorConfig()
	detCfg.ExpectedF0 = prof.VRM.SwitchingFreqHz
	return events, Detect(cap, detCfg)
}

func TestEndToEndKeystrokeDetection(t *testing.T) {
	text := RandomWords(15, xrand.New(21))
	events, det := runKeylog(t, text, 22, emchannel.DefaultConfig(), sdr.CoilProbe)
	s := ScoreKeystrokes(events, det.Keystrokes, 30*sim.Millisecond)
	if s.TPR < 0.95 {
		t.Fatalf("near-field TPR = %v (matched %d/%d), want >= 0.95",
			s.TPR, s.Matched, s.Truth)
	}
	if s.FPR > 0.10 {
		t.Fatalf("near-field FPR = %v, want <= 0.10", s.FPR)
	}
}

func TestEndToEndWordRecovery(t *testing.T) {
	text := RandomWords(18, xrand.New(23))
	events, det := runKeylog(t, text, 24, emchannel.DefaultConfig(), sdr.CoilProbe)
	_ = events
	groups := GroupWords(det.Keystrokes, 0)
	score := ScoreWords(WordLengths(text), PredictedWordLengths(groups))
	if score.Recall < 0.85 {
		t.Fatalf("word recall = %v (%d/%d retrieved)", score.Recall, score.Retrieved, score.Truth)
	}
	if score.Precision < 0.5 {
		t.Fatalf("word precision = %v", score.Precision)
	}
}

func TestEndToEndDetectionAtDistance(t *testing.T) {
	chanCfg := emchannel.DefaultConfig()
	chanCfg.DistanceM = 2.0
	text := RandomWords(12, xrand.New(25))
	events, det := runKeylog(t, text, 26, chanCfg, sdr.LoopLA390)
	s := ScoreKeystrokes(events, det.Keystrokes, 30*sim.Millisecond)
	if s.TPR < 0.9 {
		t.Fatalf("2m TPR = %v (matched %d/%d)", s.TPR, s.Matched, s.Truth)
	}
}

func TestDetectEmptyCapture(t *testing.T) {
	cap := &sdr.Capture{IQ: make([]complex128, 16), SampleRate: 240e3}
	det := Detect(cap, DefaultDetectorConfig())
	if len(det.Keystrokes) != 0 {
		t.Fatal("keystrokes from empty capture")
	}
}

func TestSessionHorizon(t *testing.T) {
	if h := SessionHorizon(nil); h != sim.Second {
		t.Fatalf("empty horizon = %v", h)
	}
	ev := []KeyEvent{{Press: sim.Second, Release: sim.Second + 80*sim.Millisecond}}
	if h := SessionHorizon(ev); h <= ev[0].Release {
		t.Fatalf("horizon %v not past last release", h)
	}
}

func TestBandTrackingFollowsDrift(t *testing.T) {
	// With strong carrier drift, a static band loses the spike over a
	// long session; the per-block tracker keeps following it.
	prof, _ := laptop.ByModel("Dell Precision 7290")
	prof.CarrierDriftHzPerS = 150 // ~6 kHz over a 40 s session

	run := func(track sim.Time) CharScore {
		sys := laptop.NewSystem(prof, 50)
		defer sys.Close()
		rng := xrand.New(51)
		text := RandomWords(25, xrand.New(52))
		events := Type(text, 200*sim.Millisecond, DefaultTypistConfig(), rng)
		horizon := SessionHorizon(events)
		Inject(sys.Kernel(), events, horizon, DefaultHandlingConfig(), rng.Fork())
		sys.Run(horizon)

		plan := keylogPlan(prof)
		field := sys.Emanations(horizon, plan)
		field = emchannel.Apply(field, plan.SampleRate, emchannel.DefaultConfig(), rng.Fork())
		sdrCfg := sdr.DefaultConfig()
		sdrCfg.SampleRate = plan.SampleRate
		cap := sdr.Acquire(field, plan.CenterFreqHz, sdrCfg, rng.Fork())

		detCfg := DefaultDetectorConfig()
		detCfg.ExpectedF0 = prof.VRM.SwitchingFreqHz
		detCfg.TrackBlock = track
		det := Detect(cap, detCfg)
		return ScoreKeystrokes(events, det.Keystrokes, 30*sim.Millisecond)
	}

	tracked := run(2 * sim.Second)
	static := run(0)
	if tracked.TPR < 0.9 {
		t.Fatalf("tracker failed under drift: TPR %v", tracked.TPR)
	}
	if static.TPR > tracked.TPR-0.2 {
		t.Fatalf("static band suspiciously resilient to drift: static %v tracked %v "+
			"(the tracker should be the difference-maker)", static.TPR, tracked.TPR)
	}
}
