package keylog

import (
	"fmt"
	"math"
	"testing"

	"pmuleak/internal/covert"
	"pmuleak/internal/emchannel"
	"pmuleak/internal/laptop"
	"pmuleak/internal/sdr"
	"pmuleak/internal/sim"
	"pmuleak/internal/xrand"
)

// buildKeylogCapture runs the typing -> emanation -> acquisition half
// of the pipeline once so the detector can be rerun under different
// settings on the identical capture.
func buildKeylogCapture(t *testing.T, text string, seed int64) (*sdr.Capture, laptop.Profile) {
	t.Helper()
	prof, _ := laptop.ByModel("Dell Precision 7290")
	sys := laptop.NewSystem(prof, seed)
	defer sys.Close()

	rng := xrand.New(seed + 500)
	events := Type(text, 200*sim.Millisecond, DefaultTypistConfig(), rng)
	horizon := SessionHorizon(events)
	Inject(sys.Kernel(), events, horizon, DefaultHandlingConfig(), rng.Fork())
	sys.Run(horizon)

	plan := keylogPlan(prof)
	field := sys.Emanations(horizon, plan)
	field = emchannel.Apply(field, plan.SampleRate, emchannel.DefaultConfig(), rng.Fork())

	sdrCfg := sdr.DefaultConfig()
	sdrCfg.SampleRate = plan.SampleRate
	cap := sdr.Acquire(field, plan.CenterFreqHz, sdrCfg, rng.Fork())
	return cap, prof
}

func detectionEqual(t *testing.T, label string, a, b *Detection) {
	t.Helper()
	if len(a.Band) != len(b.Band) {
		t.Fatalf("%s: Band length %d != %d", label, len(a.Band), len(b.Band))
	}
	for i := range a.Band {
		if math.Float64bits(a.Band[i]) != math.Float64bits(b.Band[i]) {
			t.Fatalf("%s: Band[%d] = %v != %v", label, i, a.Band[i], b.Band[i])
		}
	}
	if math.Float64bits(a.Threshold) != math.Float64bits(b.Threshold) {
		t.Fatalf("%s: Threshold %v != %v", label, a.Threshold, b.Threshold)
	}
	if math.Float64bits(a.FrameDT) != math.Float64bits(b.FrameDT) {
		t.Fatalf("%s: FrameDT %v != %v", label, a.FrameDT, b.FrameDT)
	}
	if len(a.Keystrokes) != len(b.Keystrokes) {
		t.Fatalf("%s: %d keystrokes != %d", label, len(a.Keystrokes), len(b.Keystrokes))
	}
	for i := range a.Keystrokes {
		if a.Keystrokes[i] != b.Keystrokes[i] {
			t.Fatalf("%s: keystroke %d differs: %+v != %+v",
				label, i, a.Keystrokes[i], b.Keystrokes[i])
		}
	}
}

// TestDetectParallelismIndependence: the keystroke detector's entire
// output — band trace, threshold, detected keystrokes — must be
// bit-identical for every Parallelism setting.
func TestDetectParallelismIndependence(t *testing.T) {
	cap, prof := buildKeylogCapture(t, "attack at dawn", 71)
	cfg := DefaultDetectorConfig()
	cfg.ExpectedF0 = prof.VRM.SwitchingFreqHz

	cfg.Parallelism = 1
	serial := Detect(cap, cfg)
	if len(serial.Keystrokes) == 0 {
		t.Fatal("baseline serial detection found nothing; test capture is broken")
	}
	for _, p := range []int{0, 2, 4, 8} {
		c := cfg
		c.Parallelism = p
		detectionEqual(t, "P="+string(rune('0'+p)), serial, Detect(cap, c))
	}
}

func TestDetectorConfigParallelismValidate(t *testing.T) {
	cfg := DefaultDetectorConfig()
	cfg.Parallelism = -2
	if cfg.Validate() == nil {
		t.Fatal("negative Parallelism accepted")
	}
	cfg.Parallelism = 4
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Parallelism 4 rejected: %v", err)
	}
}

// TestDetectZeroSampleWindow covers the NextPowerOfTwo call-site guard:
// a Window so short it rounds to zero samples at the capture rate must
// yield an empty detection, not a panic.
func TestDetectZeroSampleWindow(t *testing.T) {
	cap := &sdr.Capture{IQ: make([]complex128, 4096), SampleRate: 240e3}
	cfg := DefaultDetectorConfig()
	cfg.Window = 1 // 1 simulated nanosecond << one sample period
	det := Detect(cap, cfg)
	if len(det.Keystrokes) != 0 || len(det.Band) != 0 {
		t.Fatal("sub-sample window produced detections")
	}
}

// TestDemodulateDetectConcurrentStress runs the covert demodulator and
// the keystroke detector concurrently on shared captures and shared
// configs with parallel engines — the whole-pipeline concurrency test
// the engine must survive under -race: concurrent plan-cache lookups of
// different FFT sizes, overlapping worker pools, and shared read-only
// inputs.
func TestDemodulateDetectConcurrentStress(t *testing.T) {
	keyCap, prof := buildKeylogCapture(t, "race free", 73)
	detCfg := DefaultDetectorConfig()
	detCfg.ExpectedF0 = prof.VRM.SwitchingFreqHz
	detCfg.Parallelism = 2
	detBase := Detect(keyCap, detCfg)

	covCap, txCfg := buildCovertCapture(t, 75)
	rxCfg := covert.DefaultRXConfig()
	rxCfg.ExpectedF0 = laptop.Reference().VRM.SwitchingFreqHz
	rxCfg.MinBitPeriod = txCfg.BitPeriod() / 2
	rxCfg.Parallelism = 2
	covBase := covert.Demodulate(covCap, rxCfg)
	if len(covBase.Bits) == 0 {
		t.Fatal("baseline demodulation decoded nothing")
	}

	const pairs = 4
	done := make(chan error, 2*pairs)
	for g := 0; g < pairs; g++ {
		go func(g int) {
			d := Detect(keyCap, detCfg)
			if len(d.Keystrokes) != len(detBase.Keystrokes) {
				done <- fmt.Errorf("goroutine %d: keystroke count %d != %d",
					g, len(d.Keystrokes), len(detBase.Keystrokes))
				return
			}
			done <- nil
		}(g)
		go func(g int) {
			d := covert.Demodulate(covCap, rxCfg)
			if len(d.Bits) != len(covBase.Bits) {
				done <- fmt.Errorf("goroutine %d: bit count %d != %d",
					g, len(d.Bits), len(covBase.Bits))
				return
			}
			for i := range d.Bits {
				if d.Bits[i] != covBase.Bits[i] {
					done <- fmt.Errorf("goroutine %d: bit %d differs", g, i)
					return
				}
			}
			done <- nil
		}(g)
	}
	for i := 0; i < 2*pairs; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// buildCovertCapture mirrors the covert package's test helper: one
// transmit/acquire cycle whose capture is then demodulated repeatedly.
func buildCovertCapture(t *testing.T, seed int64) (*sdr.Capture, covert.TXConfig) {
	t.Helper()
	prof := laptop.Reference()
	sys := laptop.NewSystem(prof, seed)
	defer sys.Close()

	txCfg := covert.DefaultTXConfig(prof.DefaultSleepPeriod)
	payload := xrand.New(seed + 1000).Bits(48)
	frame := covert.EncodeFrame(payload, txCfg)
	covert.SpawnTransmitter(sys.Kernel(), frame, txCfg)
	horizon := covert.AirtimeEstimate(frame, txCfg, prof.Kernel)
	sys.Run(horizon)
	plan := sys.DefaultPlan()
	field := sys.Emanations(horizon, plan)
	rng := xrand.New(seed + 2000)
	field = emchannel.Apply(field, plan.SampleRate, emchannel.DefaultConfig(), rng)
	return sdr.Acquire(field, plan.CenterFreqHz, sdr.DefaultConfig(), rng.Fork()), txCfg
}
