package keylog

import (
	"math"

	"pmuleak/internal/sim"
)

// CharScore is the Table IV character-detection outcome.
type CharScore struct {
	// TPR is the fraction of true keystrokes that were detected.
	TPR float64
	// FPR is the fraction of detections that do not correspond to any
	// true keystroke.
	FPR float64
	// Matched, Truth, and Detected are the underlying counts.
	Matched, Truth, Detected int
}

// ScoreKeystrokes matches detections to ground-truth key events. A
// detection claims the (single) unclaimed truth event whose press time
// falls inside the detected interval, extended by tol on both sides;
// when several qualify, the press nearest the detection's start wins.
// Each truth event can be claimed once, so a merged detection covering
// two keystrokes still counts as one hit.
func ScoreKeystrokes(truth []KeyEvent, detected []Keystroke, tol sim.Time) CharScore {
	score := CharScore{Truth: len(truth), Detected: len(detected)}
	claimed := make([]bool, len(truth))
	tolS := tol.Seconds()
	ti := 0
	for _, det := range detected {
		lo, hi := det.Start-tolS, det.End+tolS
		// Truth events are time-ordered; advance a cursor to the
		// neighborhood of this detection.
		for ti < len(truth) && truth[ti].Press.Seconds() < lo {
			ti++
		}
		best := -1
		bestDist := hi - lo
		for j := ti; j < len(truth); j++ {
			press := truth[j].Press.Seconds()
			if press > hi {
				break
			}
			if claimed[j] {
				continue
			}
			dist := math.Abs(press - det.Start)
			if dist <= bestDist {
				best, bestDist = j, dist
			}
		}
		if best >= 0 {
			claimed[best] = true
			score.Matched++
		}
	}
	if score.Truth > 0 {
		score.TPR = float64(score.Matched) / float64(score.Truth)
	}
	if score.Detected > 0 {
		score.FPR = float64(score.Detected-score.Matched) / float64(score.Detected)
	}
	return score
}
