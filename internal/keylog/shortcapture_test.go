package keylog

import (
	"reflect"
	"testing"

	"pmuleak/internal/dsp"
	"pmuleak/internal/sdr"
	"pmuleak/internal/sim"
	"pmuleak/internal/xrand"
)

// Regression tests for the detector's NextPowerOfTwo sizing boundaries:
// the detector rounds its window up to a power of two and bails out
// when the capture cannot hold even one segment. The cutoffs below are
// pinned exactly, in both kernel modes, so a future refactor of the
// sizing arithmetic cannot move them silently.

// shortCapture builds a capture of n deterministic noise samples at
// 240 kHz, where the default 2.5 ms window rounds to 600 samples and
// an fftSize of 1024.
func shortCapture(n int) *sdr.Capture {
	rng := xrand.New(int64(n) + 1000)
	iq := make([]complex128, n)
	for i := range iq {
		iq[i] = complex(rng.Normal(0, 0.1), rng.Normal(0, 0.1))
	}
	return &sdr.Capture{IQ: iq, SampleRate: 240e3}
}

// TestDetectCaptureShorterThanSegment pins the one-segment cutoff: at
// fftSize-1 samples the detection is empty (no Band, no FrameDT), and
// one sample later the STFT runs and produces exactly one frame.
func TestDetectCaptureShorterThanSegment(t *testing.T) {
	prev := dsp.FusedKernels()
	defer dsp.SetFusedKernels(prev)
	for _, fused := range []bool{false, true} {
		dsp.SetFusedKernels(fused)
		for _, n := range []int{0, 1, 600, 1023} {
			det := Detect(shortCapture(n), DefaultDetectorConfig())
			if len(det.Keystrokes) != 0 || len(det.Band) != 0 || det.FrameDT != 0 {
				t.Fatalf("fused=%v: %d-sample capture (< fftSize 1024) produced %+v",
					fused, n, det)
			}
		}
		det := Detect(shortCapture(1024), DefaultDetectorConfig())
		if len(det.Band) != 1 {
			t.Fatalf("fused=%v: 1024-sample capture: %d band frames, want 1",
				fused, len(det.Band))
		}
		if len(det.Keystrokes) != 0 {
			t.Fatalf("fused=%v: noise-only capture detected keystrokes", fused)
		}
	}
}

// TestDetectFFTSizeTwo drives the detector at the smallest transform
// the DSP layer accepts: a window short enough to round to two samples.
// Hann(2) is identically zero, so every frame's band energy is zero and
// nothing can be detected — but the case must not panic or hang, and
// both kernel modes must agree. (fftSize 1 is unreachable: the
// windowSamples < 1 guard returns first, covered by
// TestDetectZeroSampleWindow.)
func TestDetectFFTSizeTwo(t *testing.T) {
	prev := dsp.FusedKernels()
	defer dsp.SetFusedKernels(prev)
	cfg := DefaultDetectorConfig()
	cfg.Window = sim.Microsecond // 2 samples at 2 MHz
	cap := shortCapture(4096)
	cap.SampleRate = 2e6
	var detections []*Detection
	for _, fused := range []bool{false, true} {
		dsp.SetFusedKernels(fused)
		det := Detect(cap, cfg)
		if len(det.Keystrokes) != 0 {
			t.Fatalf("fused=%v: zero-window STFT produced keystrokes: %+v",
				fused, det.Keystrokes)
		}
		detections = append(detections, det)
	}
	if !reflect.DeepEqual(detections[0], detections[1]) {
		t.Fatalf("fftSize-2 detections differ between kernel modes:\n%+v\n%+v",
			detections[0], detections[1])
	}
}

// TestDetectFusedEquivalence is the consumer-level differential for the
// detector: the full Detection — keystrokes, band trace, threshold —
// must be identical with fused kernels on and off, serial and parallel.
// The detector consumes only STFT magnitudes, which the kernel
// equivalence suite proves bit-identical, so DeepEqual is the honest
// bar here, not a tolerance.
func TestDetectFusedEquivalence(t *testing.T) {
	prev := dsp.FusedKernels()
	defer dsp.SetFusedKernels(prev)
	cap := shortCapture(1 << 15)
	var want *Detection
	for _, fused := range []bool{false, true} {
		dsp.SetFusedKernels(fused)
		for _, par := range []int{1, 4} {
			cfg := DefaultDetectorConfig()
			cfg.Parallelism = par
			det := Detect(cap, cfg)
			if want == nil {
				want = det
				continue
			}
			if !reflect.DeepEqual(det, want) {
				t.Fatalf("fused=%v par=%d: detection differs from reference", fused, par)
			}
		}
	}
}
