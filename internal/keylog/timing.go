package keylog

import (
	"math"

	"pmuleak/internal/dsp"
)

// This file implements the §V-B observation that inter-keystroke timing
// itself narrows key identification: "keys that are far apart are
// pressed in quicker succession than keys that are close together" and
// "letter pairs that occur frequently in language are typed in quicker
// succession" (Salthouse). An attacker who classifies each measured
// inter-key interval as fast or slow learns which (prev, next) key pairs
// are consistent with it, multiplying the candidate reduction across the
// whole text — the quantitative form of the paper's "reduce the search
// space for key identification".

// DigraphClass buckets one inter-key interval relative to the typist's
// running median.
type DigraphClass int

const (
	// PairAverage is an uninformative interval.
	PairAverage DigraphClass = iota
	// PairFast marks an interval clearly below the local median:
	// consistent with far-apart keys or frequent digraphs.
	PairFast
	// PairSlow marks an interval clearly above the local median:
	// consistent with close-together, infrequent pairs (or a word
	// boundary).
	PairSlow
)

// String names the class.
func (c DigraphClass) String() string {
	switch c {
	case PairFast:
		return "fast"
	case PairSlow:
		return "slow"
	}
	return "average"
}

// TimingHint is the classification of one digraph interval.
type TimingHint struct {
	// Index is the position of the SECOND keystroke of the pair.
	Index     int
	IntervalS float64
	Class     DigraphClass
}

// Classification thresholds relative to the local median interval.
const (
	fastBelow = 0.88
	slowAbove = 1.15
)

// AnalyzeTiming classifies every inter-keystroke interval of a detected
// keystroke sequence.
func AnalyzeTiming(ks []Keystroke) []TimingHint {
	if len(ks) < 2 {
		return nil
	}
	gaps := make([]float64, len(ks)-1)
	for i := 1; i < len(ks); i++ {
		gaps[i-1] = ks[i].Start - ks[i-1].Start
	}
	const window = 30
	local := func(i int) float64 {
		lo, hi := i-window/2, i+window/2
		if lo < 0 {
			lo = 0
		}
		if hi > len(gaps) {
			hi = len(gaps)
		}
		return dsp.Median(gaps[lo:hi])
	}
	hints := make([]TimingHint, len(gaps))
	for i, g := range gaps {
		h := TimingHint{Index: i + 1, IntervalS: g, Class: PairAverage}
		m := local(i)
		switch {
		case g < fastBelow*m:
			h.Class = PairFast
		case g > slowAbove*m:
			h.Class = PairSlow
		}
		hints[i] = h
	}
	return hints
}

// relativeInterval predicts a letter pair's inter-key time relative to
// the base rate, from the Salthouse effects in the typist model.
func relativeInterval(a, b rune, cfg TypistConfig) float64 {
	rel := 1 - math.Min(cfg.DistanceGain*KeyDistance(a, b), 0.25)
	if frequentDigraphs[string([]rune{a, b})] {
		rel *= 1 - cfg.DigraphGain
	}
	return rel
}

// classFractions computes, from the typist model itself, what fraction
// of all letter pairs falls into each timing class — the prior the
// attacker needs to turn a hint into information.
func classFractions(cfg TypistConfig) map[DigraphClass]float64 {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	var rels []float64
	for _, a := range letters {
		for _, b := range letters {
			rels = append(rels, relativeInterval(a, b, cfg))
		}
	}
	med := dsp.Median(rels)
	counts := map[DigraphClass]int{}
	for _, rel := range rels {
		c := PairAverage
		switch {
		case rel < fastBelow*med:
			c = PairFast
		case rel > slowAbove*med:
			c = PairSlow
		}
		counts[c]++
	}
	out := map[DigraphClass]float64{}
	for c, n := range counts {
		out[c] = float64(n) / float64(len(rels))
	}
	return out
}

// SearchSpaceReduction estimates how many bits of key-identity
// information the timing hints carry: each hint of class c rules out
// the pairs outside c, contributing -log2(fraction(c)) bits. Classes
// absent from the model prior contribute nothing (they come from word
// boundaries or noise rather than letter-pair timing).
func SearchSpaceReduction(hints []TimingHint, cfg TypistConfig) (bits float64, informative int) {
	fr := classFractions(cfg)
	for _, h := range hints {
		f, ok := fr[h.Class]
		if !ok || f <= 0 || f >= 1 {
			continue
		}
		bits += -math.Log2(f)
		informative++
	}
	return bits, informative
}
