package keylog

import (
	"testing"

	"pmuleak/internal/sim"
	"pmuleak/internal/xrand"
)

// trueKeystrokes converts typed events into perfect detections.
func trueKeystrokes(events []KeyEvent) []Keystroke {
	ks := make([]Keystroke, len(events))
	for i, ev := range events {
		ks[i] = Keystroke{Start: ev.Press.Seconds(), End: ev.Release.Seconds()}
	}
	return ks
}

func TestDigraphClassString(t *testing.T) {
	if PairFast.String() != "fast" || PairSlow.String() != "slow" ||
		PairAverage.String() != "average" {
		t.Fatal("class names wrong")
	}
}

func TestAnalyzeTimingEmpty(t *testing.T) {
	if h := AnalyzeTiming(nil); h != nil {
		t.Fatalf("hints from nothing: %v", h)
	}
	if h := AnalyzeTiming([]Keystroke{{Start: 1}}); h != nil {
		t.Fatalf("hints from one keystroke: %v", h)
	}
}

func TestAnalyzeTimingCounts(t *testing.T) {
	ks := []Keystroke{{Start: 0}, {Start: 0.2}, {Start: 0.4}, {Start: 0.9}}
	hints := AnalyzeTiming(ks)
	if len(hints) != 3 {
		t.Fatalf("hints = %d", len(hints))
	}
	for i, h := range hints {
		if h.Index != i+1 {
			t.Fatalf("hint %d has index %d", i, h.Index)
		}
	}
	// The 0.5s interval against a 0.2s median is slow.
	if hints[2].Class != PairSlow {
		t.Fatalf("long interval classified %v", hints[2].Class)
	}
}

func TestFrequentDigraphsClassifiedFast(t *testing.T) {
	// Type a text alternating a frequent digraph with a rare one; the
	// frequent pairs must be classified fast more often than the rare.
	cfg := DefaultTypistConfig()
	cfg.JitterFrac = 0.02
	cfg.PracticeGain = 0
	rng := xrand.New(1)
	// "thq z" style: 'th' frequent, 'qz' rare and close... build a
	// repeating block.
	text := ""
	for i := 0; i < 30; i++ {
		text += "thsd" // 'th' frequent+near, 'sd' infrequent+near
	}
	events := Type(text, 0, cfg, rng)
	hints := AnalyzeTiming(trueKeystrokes(events))
	fastTH, fastSD := 0, 0
	nTH, nSD := 0, 0
	for _, h := range hints {
		// Even indices within each block: h.Index is position of the
		// second key; text[h.Index-1:h.Index+1] is the digraph.
		if h.Index >= len(text) {
			continue
		}
		dg := text[h.Index-1 : h.Index+1]
		switch dg {
		case "th":
			nTH++
			if h.Class == PairFast {
				fastTH++
			}
		case "sd":
			nSD++
			if h.Class == PairFast {
				fastSD++
			}
		}
	}
	if nTH == 0 || nSD == 0 {
		t.Fatal("digraph accounting broken")
	}
	if float64(fastTH)/float64(nTH) <= float64(fastSD)/float64(nSD) {
		t.Fatalf("'th' not faster than 'sd': %d/%d vs %d/%d", fastTH, nTH, fastSD, nSD)
	}
}

func TestClassFractionsSumToOne(t *testing.T) {
	fr := classFractions(DefaultTypistConfig())
	var sum float64
	for _, f := range fr {
		if f < 0 || f > 1 {
			t.Fatalf("fraction out of range: %v", fr)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %v", sum)
	}
	// Fast pairs must be a strict minority (that is what makes them
	// informative).
	if fr[PairFast] <= 0 || fr[PairFast] >= 0.5 {
		t.Fatalf("fast fraction = %v", fr[PairFast])
	}
}

func TestSearchSpaceReductionPositive(t *testing.T) {
	cfg := DefaultTypistConfig()
	rng := xrand.New(2)
	text := RandomWords(30, xrand.New(3))
	events := Type(text, 0, cfg, rng)
	hints := AnalyzeTiming(trueKeystrokes(events))
	bits, informative := SearchSpaceReduction(hints, cfg)
	if informative == 0 {
		t.Fatal("no informative hints in 30 words")
	}
	if bits <= 0 {
		t.Fatalf("bits = %v", bits)
	}
	// Sanity: not more than a few bits per keystroke.
	if perKey := bits / float64(len(events)); perKey > 3 {
		t.Fatalf("implausible %v bits per key", perKey)
	}
}

func TestSearchSpaceReductionEmpty(t *testing.T) {
	bits, n := SearchSpaceReduction(nil, DefaultTypistConfig())
	if bits != 0 || n != 0 {
		t.Fatalf("empty reduction = %v, %d", bits, n)
	}
}

func TestRelativeIntervalEffects(t *testing.T) {
	cfg := DefaultTypistConfig()
	if relativeInterval('t', 'h', cfg) >= relativeInterval('s', 'd', cfg) {
		t.Fatal("frequent digraph not faster in the model")
	}
	if relativeInterval('q', 'p', cfg) >= relativeInterval('f', 'g', cfg) {
		t.Fatal("far pair not faster in the model")
	}
	_ = sim.Millisecond
}
