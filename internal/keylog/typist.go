// Package keylog implements the paper's §V keystroke-logging attack:
// a human typist model whose inter-key timing follows Salthouse's
// empirical findings, the injection of per-keystroke processor activity
// bursts into the target system, the STFT-based keystroke detector
// (5 ms windows, band energy thresholding, 30 ms minimum-duration
// filter), word grouping from inter-keystroke gaps, and the Table IV
// accuracy metrics.
package keylog

import (
	"fmt"
	"math"
	"strings"

	"pmuleak/internal/sim"
	"pmuleak/internal/xrand"
)

// KeyEvent is one keystroke: the paper's (t_p, t_r, k) 3-tuple.
type KeyEvent struct {
	Key     rune
	Press   sim.Time
	Release sim.Time
}

// qwertyPos maps keys to (row, column) positions on a QWERTY layout,
// used for the Salthouse key-distance effect.
var qwertyPos = map[rune][2]float64{
	'q': {0, 0}, 'w': {0, 1}, 'e': {0, 2}, 'r': {0, 3}, 't': {0, 4},
	'y': {0, 5}, 'u': {0, 6}, 'i': {0, 7}, 'o': {0, 8}, 'p': {0, 9},
	'a': {1, 0.3}, 's': {1, 1.3}, 'd': {1, 2.3}, 'f': {1, 3.3}, 'g': {1, 4.3},
	'h': {1, 5.3}, 'j': {1, 6.3}, 'k': {1, 7.3}, 'l': {1, 8.3},
	'z': {2, 0.6}, 'x': {2, 1.6}, 'c': {2, 2.6}, 'v': {2, 3.6}, 'b': {2, 4.6},
	'n': {2, 5.6}, 'm': {2, 6.6},
	' ': {3, 4.5},
}

// KeyDistance returns the Euclidean distance between two keys in key
// widths; unknown keys are treated as adjacent (distance 1).
func KeyDistance(a, b rune) float64 {
	pa, oka := qwertyPos[a]
	pb, okb := qwertyPos[b]
	if !oka || !okb {
		return 1
	}
	dr := pa[0] - pb[0]
	dc := pa[1] - pb[1]
	return math.Sqrt(dr*dr + dc*dc)
}

// frequentDigraphs are the most common English letter pairs; per
// Salthouse finding (ii) they are typed in quicker succession.
var frequentDigraphs = map[string]bool{
	"th": true, "he": true, "in": true, "er": true, "an": true,
	"re": true, "on": true, "at": true, "en": true, "nd": true,
	"ti": true, "es": true, "or": true, "te": true, "of": true,
	"ed": true, "is": true, "it": true, "al": true, "ar": true,
	"st": true, "to": true, "nt": true, "ng": true, "se": true,
	"ha": true, "as": true, "ou": true, "io": true, "le": true,
}

// TypistConfig parameterizes the typing model.
type TypistConfig struct {
	// BaseInterKey is the mean time between consecutive key presses
	// for an average transition.
	BaseInterKey sim.Time
	// DistanceGain implements Salthouse finding (i): keys far apart
	// (different hands) are pressed in QUICKER succession than close
	// keys. Each key-width of distance shortens the interval by this
	// fraction (capped).
	DistanceGain float64
	// DigraphGain implements finding (ii): frequent digraphs are typed
	// faster, by this fraction.
	DigraphGain float64
	// PracticeGain implements finding (iii): each repetition of a
	// digraph within the session shortens it, up to PracticeCap.
	PracticeGain float64
	PracticeCap  float64
	// WordBoundaryFactor lengthens the transitions into and out of a
	// space: the inter-word cognitive pause that word grouping relies
	// on.
	WordBoundaryFactor float64
	// Hold is the mean key hold (press-to-release) time.
	Hold sim.Time
	// JitterFrac is the multiplicative spread on every interval.
	JitterFrac float64
}

// DefaultTypistConfig models a practiced ~60 wpm typist.
func DefaultTypistConfig() TypistConfig {
	return TypistConfig{
		BaseInterKey:       190 * sim.Millisecond,
		DistanceGain:       0.025,
		DigraphGain:        0.20,
		PracticeGain:       0.03,
		PracticeCap:        0.25,
		WordBoundaryFactor: 2.0,
		Hold:               85 * sim.Millisecond,
		JitterFrac:         0.18,
	}
}

// Validate reports configuration errors.
func (c TypistConfig) Validate() error {
	if c.BaseInterKey <= 0 || c.Hold <= 0 {
		return fmt.Errorf("keylog: non-positive timing in typist config")
	}
	if c.JitterFrac < 0 || c.JitterFrac >= 1 {
		return fmt.Errorf("keylog: JitterFrac %v out of [0,1)", c.JitterFrac)
	}
	if c.WordBoundaryFactor < 1 {
		return fmt.Errorf("keylog: WordBoundaryFactor must be >= 1")
	}
	return nil
}

// Type produces the keystroke timeline for text, starting at start.
// Only lowercase letters and spaces advance the model realistically;
// other runes are typed at the base rate.
func Type(text string, start sim.Time, cfg TypistConfig, rng *xrand.Source) []KeyEvent {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	practice := map[string]int{}
	events := make([]KeyEvent, 0, len(text))
	t := start
	var prev rune
	for i, key := range strings.ToLower(text) {
		if i > 0 {
			gap := float64(cfg.BaseInterKey)

			// Salthouse (i): larger key distance -> quicker succession.
			gap *= 1 - min(cfg.DistanceGain*KeyDistance(prev, key), 0.25)

			// Salthouse (ii): frequent digraphs are faster.
			dg := string([]rune{prev, key})
			if frequentDigraphs[dg] {
				gap *= 1 - cfg.DigraphGain
			}

			// Salthouse (iii): practice shortens repeated sequences.
			reps := practice[dg]
			practice[dg] = reps + 1
			gap *= 1 - min(cfg.PracticeGain*float64(reps), cfg.PracticeCap)

			// Inter-word pause around the space bar.
			if key == ' ' || prev == ' ' {
				gap *= cfg.WordBoundaryFactor
			}

			gap = rng.Jitter(gap, cfg.JitterFrac)
			t += sim.Time(gap)
		}
		hold := sim.Time(rng.Jitter(float64(cfg.Hold), cfg.JitterFrac))
		events = append(events, KeyEvent{Key: key, Press: t, Release: t + hold})
		prev = key
	}
	return events
}

// Words splits text the way the scoring code counts ground-truth words.
func Words(text string) []string {
	return strings.Fields(text)
}

// WordLengths returns the character count of each word in text.
func WordLengths(text string) []int {
	words := Words(text)
	out := make([]int, len(words))
	for i, w := range words {
		out[i] = len([]rune(w))
	}
	return out
}

// RandomWords generates n pronounceable pseudo-words (for the paper's
// randomly-generated 1000-word typing test).
func RandomWords(n int, rng *xrand.Source) string {
	const consonants = "bcdfghjklmnpqrstvwz"
	const vowels = "aeiou"
	var sb strings.Builder
	for w := 0; w < n; w++ {
		if w > 0 {
			sb.WriteByte(' ')
		}
		syllables := 1 + rng.Intn(3)
		for s := 0; s < syllables; s++ {
			sb.WriteByte(consonants[rng.Intn(len(consonants))])
			sb.WriteByte(vowels[rng.Intn(len(vowels))])
			if rng.Bool(0.3) {
				sb.WriteByte(consonants[rng.Intn(len(consonants))])
			}
		}
	}
	return sb.String()
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
