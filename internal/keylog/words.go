package keylog

import (
	"pmuleak/internal/align"
	"pmuleak/internal/dsp"
)

// GroupWords segments detected keystrokes into words, following the
// paper's observation that "the number of words and their length can be
// inferred by grouping relatively close spikes together" and
// Berger-style dictionary reconstruction.
//
// The segmentation models the generative process directly: typing a
// space produces TWO consecutive elevated inter-key gaps (the pause
// going into the space bar and the pause starting the next word), so a
// keystroke whose gaps on both sides exceed sideFactor times the local
// median gap is classified as a space press and removed; the runs
// between spaces are the words. A single very large gap (twice the
// local median) also splits, catching spaces whose keystroke the
// detector merged away. The local median is computed over a rolling
// window because practiced typists speed up during a session (Salthouse
// finding iii), which would defeat a global threshold.
//
// sideFactor <= 1 selects the default of 1.10.
func GroupWords(ks []Keystroke, sideFactor float64) [][]Keystroke {
	if len(ks) == 0 {
		return nil
	}
	if sideFactor <= 1 {
		sideFactor = 1.10
	}
	const hardFactor = 2.0
	gaps := make([]float64, len(ks)-1)
	for i := 1; i < len(ks); i++ {
		gaps[i-1] = ks[i].Start - ks[i-1].Start
	}
	const window = 30
	local := func(i int) float64 {
		lo, hi := i-window/2, i+window/2
		if lo < 0 {
			lo = 0
		}
		if hi > len(gaps) {
			hi = len(gaps)
		}
		return dsp.Median(gaps[lo:hi])
	}
	isSpace := make([]bool, len(ks))
	boundaryAfter := make([]bool, len(ks))
	for i := 1; i < len(ks)-1; i++ {
		m := local(i)
		// Two forms of evidence: both side gaps clearly elevated, or a
		// large combined pause with both sides at least mildly above
		// the local median (one side's jitter must not hide a space).
		both := gaps[i-1] > sideFactor*m && gaps[i] > sideFactor*m
		combined := gaps[i-1]+gaps[i] > 2.6*m &&
			gaps[i-1] > 1.05*m && gaps[i] > 1.05*m
		if both || combined {
			isSpace[i] = true
		}
	}
	for i, g := range gaps {
		if g > hardFactor*local(i) {
			boundaryAfter[i] = true
		}
	}
	var groups [][]Keystroke
	var cur []Keystroke
	flush := func() {
		if len(cur) > 0 {
			groups = append(groups, cur)
			cur = nil
		}
	}
	for i, k := range ks {
		if isSpace[i] {
			flush()
			continue
		}
		cur = append(cur, k)
		if i < len(gaps) && boundaryAfter[i] {
			flush()
		}
	}
	flush()
	return groups
}

// PredictedWordLengths converts keystroke groups into word lengths.
func PredictedWordLengths(groups [][]Keystroke) []int {
	out := make([]int, len(groups))
	for i, g := range groups {
		out[i] = len(g)
	}
	return out
}

// WordScore is the Table IV word-detection outcome.
type WordScore struct {
	// Precision is the fraction of retrieved words whose predicted
	// length exactly matches the aligned true word's length.
	Precision float64
	// Recall is the fraction of true words that were retrieved at all.
	Recall float64
	// Retrieved and Truth are the respective word counts.
	Retrieved, Truth int
}

// ScoreWords aligns the predicted word-length sequence against the true
// one and computes the paper's precision/recall definitions.
func ScoreWords(trueLengths, predicted []int) WordScore {
	clamp := func(v int) byte {
		if v > 255 {
			return 255
		}
		return byte(v)
	}
	tx := make([]byte, len(trueLengths))
	for i, v := range trueLengths {
		tx[i] = clamp(v)
	}
	rx := make([]byte, len(predicted))
	for i, v := range predicted {
		rx[i] = clamp(v)
	}
	r := align.Sequences(tx, rx)
	score := WordScore{Retrieved: len(predicted), Truth: len(trueLengths)}
	if len(predicted) > 0 {
		score.Precision = float64(r.Matches) / float64(len(predicted))
	}
	if len(trueLengths) > 0 {
		score.Recall = float64(r.Matches+r.Substitutions) / float64(len(trueLengths))
	}
	return score
}
