// Package laptop assembles the per-device models into complete target
// systems matching Table I of the paper: six laptops from five vendors,
// three OS families, and six processor generations. A Profile carries
// everything that differs between devices — VRM switching frequency,
// emission strength, OS timing behaviour, background activity — and a
// System wires the kernel, PMU, VRM, and EM synthesizer together.
package laptop

import (
	"fmt"
	"strings"

	"pmuleak/internal/em"
	"pmuleak/internal/kernel"
	"pmuleak/internal/power"
	"pmuleak/internal/sim"
	"pmuleak/internal/vrm"
	"pmuleak/internal/xrand"
)

// Profile is a complete device description.
type Profile struct {
	Model string
	Arch  string // Intel micro-architecture generation

	Kernel kernel.Config
	Power  power.Config
	VRM    vrm.Config

	// EmitterGain scales the VRM's charge flow into received field
	// amplitude at the reference distance; it differs across board
	// layouts.
	EmitterGain float64

	// PhaseNoiseSigma is the VRM clock's phase-noise level.
	PhaseNoiseSigma float64

	// CarrierDriftHzPerS is the slow thermal drift of the switching
	// frequency; material over multi-second keylogging captures.
	CarrierDriftHzPerS float64

	// VRMDitherHz, when positive, enables spread-spectrum dithering of
	// the VRM switching clock — the §VI "randomness in the operation
	// of the PMU" countermeasure. Stock laptops ship with zero.
	VRMDitherHz float64

	// DVFSWindow, when positive, switches the PMU to the demand-based
	// governor of §II (Speed-Shift style): active periods run at the
	// P-state selected by the previous window's utilization, so the
	// emission amplitude becomes a staircase that leaks utilization.
	// Zero keeps the simple binary governor.
	DVFSWindow sim.Time

	// DefaultSleepPeriod is the SLEEP_PERIOD a covert-channel
	// transmitter would use on this machine (the paper: 100 µs on
	// UNIX-family systems, the Sleep() floor on Windows).
	DefaultSleepPeriod sim.Time
}

// OS returns the profile's OS family.
func (p Profile) OS() kernel.OSKind { return p.Kernel.OS }

// String identifies the profile.
func (p Profile) String() string {
	return fmt.Sprintf("%s (%s, %s)", p.Model, p.OS(), p.Arch)
}

// The six Table I laptops. Parameters are calibrated so the simulated
// covert channel lands in the paper's reported performance bands; the
// per-device contrasts (UNIX vs Windows bit rates, MacBook BER) follow
// from the OS timing models and emission strengths.
func dellPrecision7290() Profile {
	k := kernel.DefaultConfig(kernel.Windows)
	return Profile{
		Model:              "Dell Precision 7290",
		Arch:               "Kaby Lake",
		Kernel:             k,
		Power:              power.DefaultConfig(),
		VRM:                vrmAt(940e3),
		EmitterGain:        0.88,
		PhaseNoiseSigma:    2e-4,
		CarrierDriftHzPerS: 25,
		DefaultSleepPeriod: 500 * sim.Microsecond,
	}
}

func macBookPro2015() Profile {
	k := kernel.DefaultConfig(kernel.MacOS)
	// The MacBooks reach the highest bit rates but with more wakeup
	// noise (busier default OS), hence the paper's higher BER.
	k.WakeupJitterSigma = 14 * sim.Microsecond
	k.InterruptRate = 260
	return Profile{
		Model:              "MacBookPro-2015",
		Arch:               "Broadwell",
		Kernel:             k,
		Power:              power.DefaultConfig(),
		VRM:                vrmAt(1.02e6),
		EmitterGain:        0.64,
		PhaseNoiseSigma:    3e-4,
		CarrierDriftHzPerS: 40,
		DefaultSleepPeriod: 100 * sim.Microsecond,
	}
}

func dellInspiron15() Profile {
	k := kernel.DefaultConfig(kernel.Linux)
	return Profile{
		Model:              "Dell Inspiron 15-3537",
		Arch:               "Haswell",
		Kernel:             k,
		Power:              power.DefaultConfig(),
		VRM:                vrmAt(970e3), // the paper's Fig. 2 device
		EmitterGain:        0.80,
		PhaseNoiseSigma:    2e-4,
		CarrierDriftHzPerS: 30,
		DefaultSleepPeriod: 100 * sim.Microsecond,
	}
}

func macBookPro2018() Profile {
	k := kernel.DefaultConfig(kernel.MacOS)
	k.WakeupJitterSigma = 13 * sim.Microsecond
	k.InterruptRate = 240
	return Profile{
		Model:              "MacBookPro-2018",
		Arch:               "Coffee Lake",
		Kernel:             k,
		Power:              power.DefaultConfig(),
		VRM:                vrmAt(1.05e6),
		EmitterGain:        0.67,
		PhaseNoiseSigma:    3e-4,
		CarrierDriftHzPerS: 35,
		DefaultSleepPeriod: 100 * sim.Microsecond,
	}
}

func lenovoThinkpad() Profile {
	k := kernel.DefaultConfig(kernel.Linux)
	k.WakeupJitterSigma = 10 * sim.Microsecond
	return Profile{
		Model:              "Lenovo Thinkpad",
		Arch:               "SkyLake",
		Kernel:             k,
		Power:              power.DefaultConfig(),
		VRM:                vrmAt(890e3),
		EmitterGain:        0.77,
		PhaseNoiseSigma:    2e-4,
		CarrierDriftHzPerS: 20,
		DefaultSleepPeriod: 110 * sim.Microsecond,
	}
}

func sonyUltrabook() Profile {
	k := kernel.DefaultConfig(kernel.Windows)
	k.WakeupJitterSigma = 35 * sim.Microsecond
	return Profile{
		Model:              "Sony Ultrabook",
		Arch:               "Ivy Bridge",
		Kernel:             k,
		Power:              power.DefaultConfig(),
		VRM:                vrmAt(760e3),
		EmitterGain:        0.72,
		PhaseNoiseSigma:    2.5e-4,
		CarrierDriftHzPerS: 30,
		DefaultSleepPeriod: 500 * sim.Microsecond,
	}
}

func vrmAt(freq float64) vrm.Config {
	cfg := vrm.DefaultConfig()
	cfg.SwitchingFreqHz = freq
	cfg.MinPulseCharge = 2.0 / freq
	return cfg
}

// Profiles returns the six Table I laptops in the paper's order.
func Profiles() []Profile {
	return []Profile{
		dellPrecision7290(),
		macBookPro2015(),
		dellInspiron15(),
		macBookPro2018(),
		lenovoThinkpad(),
		sonyUltrabook(),
	}
}

// ByModel looks a profile up by its model string.
func ByModel(model string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Model == model {
			return p, true
		}
	}
	return Profile{}, false
}

// Lookup looks a profile up by its model string, returning a
// self-explanatory error on a miss: the unknown name plus the full list
// of valid models, so every command-line tool reports the same hint
// without rolling its own. Tools should treat the error as a usage
// problem (exit code 2).
func Lookup(model string) (Profile, error) {
	if p, ok := ByModel(model); ok {
		return p, nil
	}
	names := make([]string, 0, 6)
	for _, p := range Profiles() {
		names = append(names, fmt.Sprintf("%q", p.Model))
	}
	return Profile{}, fmt.Errorf("unknown laptop %s (valid models: %s)",
		fmt.Sprintf("%q", model), strings.Join(names, ", "))
}

// Reference returns the Dell Inspiron, the laptop the paper uses for its
// figures and distance experiments.
func Reference() Profile { return dellInspiron15() }

// System is a running target machine.
type System struct {
	Profile Profile
	kern    *kernel.Kernel
	rng     *xrand.Source
}

// NewSystem boots a laptop. All stochastic behaviour derives from seed.
func NewSystem(p Profile, seed int64) *System {
	root := xrand.New(seed)
	kseed := root.Int63()
	return &System{
		Profile: p,
		kern:    kernel.New(p.Kernel, kseed),
		rng:     root,
	}
}

// Kernel exposes the simulated OS for workload injection.
func (s *System) Kernel() *kernel.Kernel { return s.kern }

// Close releases kernel resources.
func (s *System) Close() { s.kern.Close() }

// Run advances the machine by d of simulated time.
func (s *System) Run(d sim.Time) { s.kern.Run(d) }

// EmanationPlan describes how the emissions should be rendered —
// essentially the virtual receiver's tuning.
type EmanationPlan struct {
	SampleRate   float64
	CenterFreqHz float64
	Harmonics    int
}

// DefaultPlan tunes midway between the fundamental and first harmonic
// at the RTL-SDR's maximum rate, so both spikes land in band.
func (s *System) DefaultPlan() EmanationPlan {
	return EmanationPlan{
		SampleRate:   2.4e6,
		CenterFreqHz: 1.5 * s.Profile.VRM.SwitchingFreqHz,
		Harmonics:    2,
	}
}

// Pulses computes the VRM switching pulse train for the activity up to
// horizon — the input both EM renderers consume.
func (s *System) Pulses(horizon sim.Time) []vrm.Pulse {
	if s.kern.Now() < horizon {
		panic(fmt.Sprintf("laptop: simulation at %v has not reached horizon %v",
			s.kern.Now(), horizon))
	}
	var loadTrace []power.Span
	switch {
	case s.Profile.DVFSWindow > 0:
		loadTrace = power.DemandTrace(s.kern.Activity(horizon), horizon,
			s.Profile.DVFSWindow, s.Profile.Power)
	case s.kern.Cores() > 1:
		perCore := make([][]kernel.Span, s.kern.Cores())
		for c := range perCore {
			perCore[c] = s.kern.ActivityOn(c, horizon)
		}
		loadTrace = power.TracePerCore(perCore, horizon, s.Profile.Power)
	default:
		loadTrace = power.Trace(s.kern.Activity(horizon), horizon, s.Profile.Power)
	}
	return vrm.Pulses(loadTrace, horizon, s.Profile.VRM, s.rng.Fork())
}

// EmanationsPulseTrain renders the machine's EM output with the
// high-fidelity pulse-train model (see em.RenderPulseTrain): every
// spectral feature emerges from the switching pulse timing instead of
// being synthesized at assumed harmonics.
func (s *System) EmanationsPulseTrain(horizon sim.Time, plan EmanationPlan) []complex128 {
	pulses := s.Pulses(horizon)
	cfg := em.DefaultPulseTrainConfig()
	cfg.CenterFreqHz = plan.CenterFreqHz
	cfg.SampleRate = plan.SampleRate
	cfg.ResonanceHz = 1.45 * s.Profile.VRM.SwitchingFreqHz
	cfg.EmitterGain = s.Profile.EmitterGain
	return em.RenderPulseTrain(pulses, horizon, cfg, s.rng.Fork())
}

// Emanations renders the machine's EM output over [0, horizon) as seen
// at the reference distance. Call after Run has advanced past horizon.
func (s *System) Emanations(horizon sim.Time, plan EmanationPlan) []complex128 {
	if s.kern.Now() < horizon {
		panic(fmt.Sprintf("laptop: simulation at %v has not reached horizon %v",
			s.kern.Now(), horizon))
	}
	pulses := s.Pulses(horizon)
	emCfg := em.Config{
		SwitchingFreqHz:       s.Profile.VRM.SwitchingFreqHz,
		CenterFreqHz:          plan.CenterFreqHz,
		SampleRate:            plan.SampleRate,
		Harmonics:             plan.Harmonics,
		EmitterGain:           s.Profile.EmitterGain,
		PhaseNoiseSigma:       s.Profile.PhaseNoiseSigma,
		CarrierDriftHzPerS:    s.Profile.CarrierDriftHzPerS,
		FreqDitherHz:          s.Profile.VRMDitherHz,
		EnvelopeSmoothPeriods: 2,
	}
	return em.Render(pulses, horizon, emCfg, s.rng.Fork())
}
