package laptop

import (
	"strings"
	"testing"

	"pmuleak/internal/dsp"
	"pmuleak/internal/em"
	"pmuleak/internal/kernel"
	"pmuleak/internal/sim"
)

func TestProfilesMatchTableOne(t *testing.T) {
	ps := Profiles()
	if len(ps) != 6 {
		t.Fatalf("got %d profiles, want 6", len(ps))
	}
	wantOS := map[string]kernel.OSKind{
		"Dell Precision 7290":   kernel.Windows,
		"MacBookPro-2015":       kernel.MacOS,
		"Dell Inspiron 15-3537": kernel.Linux,
		"MacBookPro-2018":       kernel.MacOS,
		"Lenovo Thinkpad":       kernel.Linux,
		"Sony Ultrabook":        kernel.Windows,
	}
	wantArch := map[string]string{
		"Dell Precision 7290":   "Kaby Lake",
		"MacBookPro-2015":       "Broadwell",
		"Dell Inspiron 15-3537": "Haswell",
		"MacBookPro-2018":       "Coffee Lake",
		"Lenovo Thinkpad":       "SkyLake",
		"Sony Ultrabook":        "Ivy Bridge",
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Model] {
			t.Errorf("duplicate model %q", p.Model)
		}
		seen[p.Model] = true
		if p.OS() != wantOS[p.Model] {
			t.Errorf("%s OS = %v, want %v", p.Model, p.OS(), wantOS[p.Model])
		}
		if p.Arch != wantArch[p.Model] {
			t.Errorf("%s arch = %q, want %q", p.Model, p.Arch, wantArch[p.Model])
		}
	}
}

func TestProfileParametersSane(t *testing.T) {
	for _, p := range Profiles() {
		if p.VRM.SwitchingFreqHz < 250e3 || p.VRM.SwitchingFreqHz > 1.2e6 {
			t.Errorf("%s: VRM frequency %v outside the 250kHz-1.2MHz range",
				p.Model, p.VRM.SwitchingFreqHz)
		}
		if err := p.VRM.Validate(); err != nil {
			t.Errorf("%s: VRM config: %v", p.Model, err)
		}
		if err := p.Power.Validate(); err != nil {
			t.Errorf("%s: power config: %v", p.Model, err)
		}
		if p.EmitterGain <= 0 {
			t.Errorf("%s: EmitterGain %v", p.Model, p.EmitterGain)
		}
		if p.DefaultSleepPeriod <= 0 {
			t.Errorf("%s: DefaultSleepPeriod %v", p.Model, p.DefaultSleepPeriod)
		}
		// Windows machines can't sleep shorter than the timer grain.
		if p.OS() == kernel.Windows && p.DefaultSleepPeriod < p.Kernel.TimerGranularity {
			t.Errorf("%s: sleep period below Windows timer granularity", p.Model)
		}
	}
}

func TestByModel(t *testing.T) {
	p, ok := ByModel("Lenovo Thinkpad")
	if !ok || p.Arch != "SkyLake" {
		t.Fatalf("ByModel failed: %v %v", p, ok)
	}
	if _, ok := ByModel("Amiga 500"); ok {
		t.Fatal("found a profile that should not exist")
	}
}

func TestReferenceIsInspiron(t *testing.T) {
	if Reference().Model != "Dell Inspiron 15-3537" {
		t.Fatalf("Reference = %v", Reference().Model)
	}
}

func TestProfileString(t *testing.T) {
	s := Reference().String()
	if s != "Dell Inspiron 15-3537 (Linux, Haswell)" {
		t.Fatalf("String = %q", s)
	}
}

func TestSystemEmanationsEndToEnd(t *testing.T) {
	// A transmitter-style workload must put a spike at the VRM
	// fundamental whose band energy alternates with the workload.
	sys := NewSystem(Reference(), 42)
	defer sys.Close()
	sys.Kernel().Spawn("tx", func(p *kernel.Proc) {
		for i := 0; i < 20; i++ {
			p.Busy(400 * sim.Microsecond)
			p.Sleep(400 * sim.Microsecond)
		}
	})
	horizon := 16 * sim.Millisecond
	sys.Run(horizon)
	plan := sys.DefaultPlan()
	iq := sys.Emanations(horizon, plan)
	if len(iq) != int(horizon.Seconds()*plan.SampleRate) {
		t.Fatalf("sample count = %d", len(iq))
	}

	s := dsp.STFT(iq, 1024, 256, dsp.Hann(1024), plan.SampleRate)
	f0 := sys.Profile.VRM.SwitchingFreqHz
	col := s.Column(s.Bin(f0 - plan.CenterFreqHz))
	hi := dsp.Quantile(col, 0.9)
	lo := dsp.Quantile(col, 0.1)
	if hi < 5*lo {
		t.Fatalf("band energy not modulated: hi %v lo %v", hi, lo)
	}
}

func TestSystemEmanationsBeforeHorizonPanics(t *testing.T) {
	sys := NewSystem(Reference(), 1)
	defer sys.Close()
	sys.Run(sim.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when horizon exceeds simulated time")
		}
	}()
	sys.Emanations(10*sim.Millisecond, sys.DefaultPlan())
}

func TestSystemDeterministicAcrossRuns(t *testing.T) {
	run := func() []complex128 {
		sys := NewSystem(Reference(), 77)
		defer sys.Close()
		sys.Kernel().Spawn("tx", func(p *kernel.Proc) {
			for i := 0; i < 5; i++ {
				p.Busy(100 * sim.Microsecond)
				p.Sleep(100 * sim.Microsecond)
			}
		})
		sys.Run(2 * sim.Millisecond)
		return sys.Emanations(2*sim.Millisecond, sys.DefaultPlan())
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at sample %d", i)
		}
	}
}

func TestDefaultPlanCoversFundamentalAndHarmonic(t *testing.T) {
	for _, p := range Profiles() {
		sys := NewSystem(p, 1)
		plan := sys.DefaultPlan()
		cfg := em.Config{
			SwitchingFreqHz:       p.VRM.SwitchingFreqHz,
			CenterFreqHz:          plan.CenterFreqHz,
			SampleRate:            plan.SampleRate,
			Harmonics:             plan.Harmonics,
			EmitterGain:           1,
			EnvelopeSmoothPeriods: 1,
		}
		if offs := cfg.HarmonicOffsets(); len(offs) != 2 {
			t.Errorf("%s: plan covers %d harmonics, want 2", p.Model, len(offs))
		}
		sys.Close()
	}
}

func TestEmanationsPulseTrainEndToEnd(t *testing.T) {
	sys := NewSystem(Reference(), 99)
	defer sys.Close()
	sys.Kernel().Spawn("tx", func(p *kernel.Proc) {
		for i := 0; i < 10; i++ {
			p.Busy(400 * sim.Microsecond)
			p.Sleep(400 * sim.Microsecond)
		}
	})
	horizon := 8 * sim.Millisecond
	sys.Run(horizon)
	plan := sys.DefaultPlan()
	iq := sys.EmanationsPulseTrain(horizon, plan)
	if len(iq) != int(horizon.Seconds()*plan.SampleRate) {
		t.Fatalf("sample count = %d", len(iq))
	}
	// The pulse-train render must also show the modulated fundamental.
	s := dsp.STFT(iq, 1024, 256, dsp.Hann(1024), plan.SampleRate)
	col := s.Column(s.Bin(sys.Profile.VRM.SwitchingFreqHz - plan.CenterFreqHz))
	hi := dsp.Quantile(col, 0.9)
	lo := dsp.Quantile(col, 0.1)
	if hi < 3*lo {
		t.Fatalf("pulse-train band not modulated: hi %v lo %v", hi, lo)
	}
}

func TestPulsesRequiresSimulationProgress(t *testing.T) {
	sys := NewSystem(Reference(), 1)
	defer sys.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when horizon exceeds simulated time")
		}
	}()
	sys.Pulses(sim.Second)
}

func TestDVFSWindowProfilePath(t *testing.T) {
	prof := Reference()
	prof.DVFSWindow = 5 * sim.Millisecond
	sys := NewSystem(prof, 4)
	defer sys.Close()
	sys.Kernel().Spawn("load", func(p *kernel.Proc) {
		for i := 0; i < 20; i++ {
			p.Busy(500 * sim.Microsecond)
			p.Sleep(500 * sim.Microsecond)
		}
	})
	horizon := 25 * sim.Millisecond
	sys.Run(horizon)
	iq := sys.Emanations(horizon, sys.DefaultPlan())
	if em.RMS(iq) <= 0 {
		t.Fatal("demand-governor path produced no emission")
	}
}

func TestMultiCoreProfilePath(t *testing.T) {
	prof := Reference()
	prof.Kernel.Cores = 2
	sys := NewSystem(prof, 5)
	defer sys.Close()
	sys.Kernel().SpawnOn("a", 0, func(p *kernel.Proc) { p.Busy(2 * sim.Millisecond) })
	sys.Kernel().SpawnOn("b", 1, func(p *kernel.Proc) { p.Busy(2 * sim.Millisecond) })
	horizon := 4 * sim.Millisecond
	sys.Run(horizon)
	iq := sys.Emanations(horizon, sys.DefaultPlan())
	if em.RMS(iq) <= 0 {
		t.Fatal("multi-core path produced no emission")
	}
}

func TestLookup(t *testing.T) {
	for _, p := range Profiles() {
		got, err := Lookup(p.Model)
		if err != nil {
			t.Errorf("Lookup(%q): unexpected error: %v", p.Model, err)
			continue
		}
		if got.Model != p.Model {
			t.Errorf("Lookup(%q) returned model %q", p.Model, got.Model)
		}
	}
	_, err := Lookup("Amiga 500")
	if err == nil {
		t.Fatal("Lookup of an unknown model did not error")
	}
	msg := err.Error()
	for _, p := range Profiles() {
		if !strings.Contains(msg, p.Model) {
			t.Errorf("Lookup error %q does not list valid model %q", msg, p.Model)
		}
	}
}
