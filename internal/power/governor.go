package power

import (
	"fmt"

	"pmuleak/internal/kernel"
	"pmuleak/internal/sim"
)

// This file adds the demand-based DVFS governor of §II: instead of the
// binary active-P0 / idle-deep mapping in Trace, the governor watches
// windowed utilization and picks intermediate P-states, the way Intel's
// Demand Based Switching (and, faster, Skylake's Speed Shift) does.
//
// Side-channel consequence, verified by the tests: with demand-based
// DVFS the emission amplitude during activity becomes a staircase that
// tracks utilization, so the channel leaks not just WHETHER the
// processor is busy but roughly HOW busy it is.

// UtilizationWindows returns the busy fraction of each consecutive
// window of the given width across [0, horizon). The last window may be
// partial and is scaled accordingly.
func UtilizationWindows(activity []kernel.Span, horizon, window sim.Time) []float64 {
	if window <= 0 {
		panic("power: window must be positive")
	}
	n := int((horizon + window - 1) / window)
	busy := make([]sim.Time, n)
	for _, s := range activity {
		start, end := s.Start, s.End
		if end > horizon {
			end = horizon
		}
		for t := start; t < end; {
			w := int(t / window)
			wEnd := sim.Time(w+1) * window
			if wEnd > end {
				wEnd = end
			}
			busy[w] += wEnd - t
			t = wEnd
		}
	}
	out := make([]float64, n)
	for w := range out {
		width := window
		if rem := horizon - sim.Time(w)*window; rem < width {
			width = rem
		}
		if width > 0 {
			out[w] = float64(busy[w]) / float64(width)
		}
	}
	return out
}

// PStateForUtilization maps a utilization level onto the P-state ladder:
// full load runs P0, light load the slowest state, linearly in between.
func (c Config) PStateForUtilization(util float64) PState {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	idx := int((1 - util) * float64(len(c.PStates)-1))
	if idx >= len(c.PStates) {
		idx = len(c.PStates) - 1
	}
	return c.PStates[idx]
}

// CurrentForPState returns the load current drawn while executing at the
// given P-state, scaling with f·V² relative to P0.
func (c Config) CurrentForPState(p PState) float64 {
	p0 := c.fastestP()
	return c.ActiveCurrent * (p.FreqMHz / p0.FreqMHz) *
		(p.Voltage * p.Voltage) / (p0.Voltage * p0.Voltage)
}

// DemandTrace converts an activity trace into a load trace under a
// demand-based DVFS governor with the given utilization window: active
// spans in window w run at the P-state selected by window w-1's
// utilization (the governor reacts one window late), and idle gaps
// behave exactly as in Trace.
func DemandTrace(activity []kernel.Span, horizon, window sim.Time, cfg Config) []Span {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if window <= 0 {
		panic("power: window must be positive")
	}
	if !cfg.PStatesEnabled {
		// Without P-states there is nothing demand-based to do.
		return Trace(activity, horizon, cfg)
	}
	utils := UtilizationWindows(activity, horizon, window)
	stateAt := func(t sim.Time) PState {
		w := int(t/window) - 1
		if w < 0 {
			return cfg.fastestP() // cold start: assume full speed
		}
		if w >= len(utils) {
			w = len(utils) - 1
		}
		return cfg.PStateForUtilization(utils[w])
	}

	// Reuse Trace for the idle structure, then re-level the active
	// spans according to the governor's chosen P-state, splitting them
	// at window boundaries so each piece gets its window's state.
	base := Trace(activity, horizon, cfg)
	var out []Span
	for _, s := range base {
		if s.Label != "C0-P0" {
			out = append(out, s)
			continue
		}
		for t := s.Start; t < s.End; {
			wEnd := (t/window + 1) * window
			if wEnd > s.End {
				wEnd = s.End
			}
			p := stateAt(t)
			out = append(out, Span{
				Start:   t,
				End:     wEnd,
				Current: cfg.CurrentForPState(p),
				Voltage: p.Voltage,
				Label:   fmt.Sprintf("C0-P%d", p.Index),
			})
			t = wEnd
		}
	}
	return out
}
