package power

import (
	"math"
	"testing"

	"pmuleak/internal/kernel"
	"pmuleak/internal/sim"
)

func TestUtilizationWindows(t *testing.T) {
	// 10ms horizon, 2ms windows; busy [0,3ms) and [8,9ms).
	act := activity([2]sim.Time{0, 3 * sim.Millisecond},
		[2]sim.Time{8 * sim.Millisecond, 9 * sim.Millisecond})
	u := UtilizationWindows(act, 10*sim.Millisecond, 2*sim.Millisecond)
	want := []float64{1, 0.5, 0, 0, 0.5}
	if len(u) != len(want) {
		t.Fatalf("windows = %v", u)
	}
	for i := range want {
		if math.Abs(u[i]-want[i]) > 1e-9 {
			t.Fatalf("windows = %v, want %v", u, want)
		}
	}
}

func TestUtilizationWindowsPartialTail(t *testing.T) {
	act := activity([2]sim.Time{9 * sim.Millisecond, 10 * sim.Millisecond})
	u := UtilizationWindows(act, 10*sim.Millisecond, 4*sim.Millisecond)
	// Third window spans [8,10): half busy.
	if len(u) != 3 || math.Abs(u[2]-0.5) > 1e-9 {
		t.Fatalf("windows = %v", u)
	}
}

func TestUtilizationWindowsBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	UtilizationWindows(nil, sim.Second, 0)
}

func TestPStateForUtilization(t *testing.T) {
	cfg := DefaultConfig()
	if p := cfg.PStateForUtilization(1); p.Index != 0 {
		t.Fatalf("full load -> P%d", p.Index)
	}
	if p := cfg.PStateForUtilization(0); p.Index != cfg.slowestP().Index {
		t.Fatalf("no load -> P%d", p.Index)
	}
	mid := cfg.PStateForUtilization(0.5)
	if mid.Index == 0 || mid.Index == cfg.slowestP().Index {
		t.Fatalf("half load -> P%d, want intermediate", mid.Index)
	}
	// Clamping.
	if p := cfg.PStateForUtilization(2); p.Index != 0 {
		t.Fatalf("clamped high -> P%d", p.Index)
	}
	if p := cfg.PStateForUtilization(-1); p.Index != cfg.slowestP().Index {
		t.Fatalf("clamped low -> P%d", p.Index)
	}
}

func TestCurrentForPStateMonotone(t *testing.T) {
	cfg := DefaultConfig()
	prev := math.Inf(1)
	for _, p := range cfg.PStates {
		c := cfg.CurrentForPState(p)
		if c >= prev {
			t.Fatalf("current not decreasing along the ladder at P%d", p.Index)
		}
		prev = c
	}
	if got := cfg.CurrentForPState(cfg.fastestP()); got != cfg.ActiveCurrent {
		t.Fatalf("P0 current = %v", got)
	}
}

// dutyActivity builds an activity trace with the given duty cycle at a
// 1ms period.
func dutyActivity(duty float64, horizon sim.Time) []kernel.Span {
	var out []kernel.Span
	period := sim.Millisecond
	busy := sim.Time(duty * float64(period))
	for t := sim.Time(0); t < horizon; t += period {
		if busy > 0 {
			out = append(out, kernel.Span{Start: t, End: t + busy})
		}
	}
	return out
}

func TestDemandTraceTracksUtilization(t *testing.T) {
	cfg := DefaultConfig()
	horizon := 100 * sim.Millisecond
	window := 10 * sim.Millisecond

	meanActiveCurrent := func(duty float64) float64 {
		tr := DemandTrace(dutyActivity(duty, horizon), horizon, window, cfg)
		var sum float64
		var dur sim.Time
		for _, s := range tr {
			if s.Label[:2] == "C0" && s.Current > cfg.ActiveCurrent*0.2 {
				sum += s.Current * float64(s.Duration())
				dur += s.Duration()
			}
		}
		if dur == 0 {
			return 0
		}
		return sum / float64(dur)
	}

	low := meanActiveCurrent(0.25)
	high := meanActiveCurrent(0.95)
	if low <= 0 || high <= 0 {
		t.Fatal("no active spans found")
	}
	// The staircase: heavier duty runs at faster P-states and draws
	// visibly more current per active instant — the utilization leak.
	if high < 1.3*low {
		t.Fatalf("utilization not visible in active current: low-duty %v, high-duty %v",
			low, high)
	}
}

func TestDemandTraceColdStartAndLag(t *testing.T) {
	cfg := DefaultConfig()
	window := 10 * sim.Millisecond
	// Idle first window, fully busy second: the busy window still runs
	// at a slow P-state because the governor saw zero utilization in
	// the window before (one-window lag), except the cold-start first
	// window which assumes full speed.
	act := activity([2]sim.Time{window, 2 * window})
	tr := DemandTrace(act, 2*window, window, cfg)
	var busySpan *Span
	for i := range tr {
		if tr[i].Start == window && tr[i].Current > 0 {
			busySpan = &tr[i]
		}
	}
	if busySpan == nil {
		t.Fatal("busy span missing")
	}
	if busySpan.Current >= cfg.ActiveCurrent {
		t.Fatalf("governor did not lag: busy-after-idle current %v", busySpan.Current)
	}
}

func TestDemandTraceWithoutPStatesFallsBack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PStatesEnabled = false
	act := activity([2]sim.Time{0, sim.Millisecond})
	a := DemandTrace(act, 2*sim.Millisecond, sim.Millisecond, cfg)
	b := Trace(act, 2*sim.Millisecond, cfg)
	if len(a) != len(b) {
		t.Fatalf("fallback differs: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fallback span %d differs", i)
		}
	}
}

func TestDemandTraceContiguous(t *testing.T) {
	cfg := DefaultConfig()
	horizon := 50 * sim.Millisecond
	tr := DemandTrace(dutyActivity(0.5, horizon), horizon, 10*sim.Millisecond, cfg)
	for i := 1; i < len(tr); i++ {
		if tr[i].Start != tr[i-1].End {
			t.Fatalf("trace not contiguous at span %d", i)
		}
	}
	if tr[len(tr)-1].End != horizon {
		t.Fatalf("trace ends at %v", tr[len(tr)-1].End)
	}
}
