// Package power models the processor's power management unit: the
// P-state (DVFS) and C-state (idle) machinery that §II of the paper
// describes, including the BIOS knobs used in the §III ablation.
//
// Its job is to translate the kernel's CPU-activity trace into a
// load-current/voltage trace for the voltage regulator. The essential
// property, which is the root of the side channel, is that with power
// management enabled an idle processor draws almost no current from the
// VRM, while an active one draws a lot — and that the contrast collapses
// only when both P-states and C-states are disabled.
package power

import (
	"fmt"
	"sort"

	"pmuleak/internal/kernel"
	"pmuleak/internal/sim"
)

// PState is one DVFS operating point. P0 is the highest-performance
// state; higher indices trade frequency and voltage for efficiency.
type PState struct {
	Index   int
	FreqMHz float64
	Voltage float64
}

// CState is one idle state. C0 is "executing"; deeper states gate clocks
// and, from C4 up, reduce voltage, at the price of longer exit latency.
type CState struct {
	Index       int
	Name        string
	ExitLatency sim.Time
	// CurrentFrac is the load current in this state relative to full
	// active current. Clock gating alone (C1-C3) still leaks; power
	// gating (C6) draws almost nothing.
	CurrentFrac float64
}

// DefaultPStates returns a representative Intel-style P-state table.
func DefaultPStates() []PState {
	return []PState{
		{Index: 0, FreqMHz: 3400, Voltage: 1.20},
		{Index: 1, FreqMHz: 3000, Voltage: 1.12},
		{Index: 2, FreqMHz: 2600, Voltage: 1.05},
		{Index: 3, FreqMHz: 2200, Voltage: 0.98},
		{Index: 4, FreqMHz: 1800, Voltage: 0.92},
		{Index: 5, FreqMHz: 1400, Voltage: 0.86},
		{Index: 6, FreqMHz: 1000, Voltage: 0.80},
		{Index: 7, FreqMHz: 800, Voltage: 0.75},
	}
}

// DefaultCStates returns a representative C-state table.
func DefaultCStates() []CState {
	return []CState{
		{Index: 0, Name: "C0", ExitLatency: 0, CurrentFrac: 1.0},
		{Index: 1, Name: "C1", ExitLatency: 2 * sim.Microsecond, CurrentFrac: 0.30},
		{Index: 3, Name: "C3", ExitLatency: 10 * sim.Microsecond, CurrentFrac: 0.12},
		{Index: 6, Name: "C6", ExitLatency: 50 * sim.Microsecond, CurrentFrac: 0.03},
	}
}

// Config describes one PMU instance, including the BIOS enable switches
// the §III ablation flips.
type Config struct {
	PStates []PState
	CStates []CState

	PStatesEnabled bool
	CStatesEnabled bool

	// ActiveCurrent is the current (A) drawn from the VRM at full
	// activity in P0/C0.
	ActiveCurrent float64

	// IdleGovernorDelay is how long the idle governor waits after the
	// CPU goes idle before committing to a deep C-state (the "menu"
	// governor's hesitation). During this window the CPU sits in a
	// shallow idle state.
	IdleGovernorDelay sim.Time

	// DVFSReaction is how long the DVFS governor takes to ramp the
	// P-state after a load change when C-states are unavailable.
	DVFSReaction sim.Time
}

// DefaultConfig returns a PMU with both mechanisms enabled and a 20 A
// full-load current, typical for a mobile quad-core package.
func DefaultConfig() Config {
	return Config{
		PStates:           DefaultPStates(),
		CStates:           DefaultCStates(),
		PStatesEnabled:    true,
		CStatesEnabled:    true,
		ActiveCurrent:     20,
		IdleGovernorDelay: 30 * sim.Microsecond,
		DVFSReaction:      80 * sim.Microsecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ActiveCurrent <= 0 {
		return fmt.Errorf("power: ActiveCurrent must be positive, got %v", c.ActiveCurrent)
	}
	if len(c.PStates) == 0 {
		return fmt.Errorf("power: empty P-state table")
	}
	if len(c.CStates) == 0 {
		return fmt.Errorf("power: empty C-state table")
	}
	if c.IdleGovernorDelay < 0 || c.DVFSReaction < 0 {
		return fmt.Errorf("power: negative governor delay")
	}
	return nil
}

func (c Config) deepest() CState { return c.CStates[len(c.CStates)-1] }
func (c Config) shallowIdle() CState {
	if len(c.CStates) > 1 {
		return c.CStates[1]
	}
	return c.CStates[0]
}
func (c Config) slowestP() PState { return c.PStates[len(c.PStates)-1] }
func (c Config) fastestP() PState { return c.PStates[0] }

// Span is an interval of constant VRM load.
type Span struct {
	Start, End sim.Time
	Current    float64 // amps drawn from the VRM
	Voltage    float64 // VID requested from the VRM
	Label      string  // state name, for inspection and plots
}

// Duration returns the span length.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Trace converts a merged, sorted CPU-activity trace (from
// kernel.Activity) into a load trace over [0, horizon).
//
// The mapping implements the paper's observations:
//
//   - both mechanisms enabled: active -> P0/C0 at full current; idle ->
//     shallow idle during the governor delay, then the deepest C-state
//     at a few percent of full current;
//   - only C-states enabled (P disabled): identical idle behaviour —
//     the modulation survives;
//   - only P-states enabled (C disabled): the OS idle loop keeps the
//     core in C0, but the DVFS governor drops to the slowest P-state, so
//     idle current falls to a moderate level — the modulation survives;
//   - both disabled: the idle loop runs at nominal voltage/frequency and
//     the load never drops — the modulation (and the side channel)
//     disappears.
func Trace(activity []kernel.Span, horizon sim.Time, cfg Config) []Span {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	var out []Span
	emit := func(start, end sim.Time, current, voltage float64, label string) {
		if end <= start {
			return
		}
		out = append(out, Span{start, end, current, voltage, label})
	}
	activeV := cfg.fastestP().Voltage

	emitIdle := func(start, end sim.Time) {
		switch {
		case cfg.CStatesEnabled:
			// Shallow idle while the governor decides, then deep idle.
			shallow := cfg.shallowIdle()
			deep := cfg.deepest()
			idleV := activeV
			if cfg.PStatesEnabled {
				idleV = cfg.slowestP().Voltage
			}
			split := start + cfg.IdleGovernorDelay
			if split > end {
				split = end
			}
			emit(start, split, cfg.ActiveCurrent*shallow.CurrentFrac, activeV, shallow.Name)
			emit(split, end, cfg.ActiveCurrent*deep.CurrentFrac, idleV, deep.Name)
		case cfg.PStatesEnabled:
			// Idle loop spins, but DVFS ramps down to the slowest
			// P-state after its reaction time. Current scales with
			// f·V² relative to nominal.
			slow := cfg.slowestP()
			fast := cfg.fastestP()
			frac := (slow.FreqMHz / fast.FreqMHz) *
				(slow.Voltage * slow.Voltage) / (fast.Voltage * fast.Voltage)
			split := start + cfg.DVFSReaction
			if split > end {
				split = end
			}
			emit(start, split, cfg.ActiveCurrent, fast.Voltage, "C0-idleloop")
			emit(split, end, cfg.ActiveCurrent*frac, slow.Voltage,
				fmt.Sprintf("C0-P%d", slow.Index))
		default:
			// Everything disabled: the OS idle loop spins at nominal
			// voltage and frequency, exercising the same integer
			// pipeline as ordinary work, so the load contrast against
			// real activity is only a few percent.
			emit(start, end, cfg.ActiveCurrent*0.97, activeV, "C0-nominal")
		}
	}

	cursor := sim.Time(0)
	for _, a := range activity {
		if a.Start >= horizon {
			break
		}
		end := a.End
		if end > horizon {
			end = horizon
		}
		if a.Start > cursor {
			emitIdle(cursor, a.Start)
		}
		emit(a.Start, end, cfg.ActiveCurrent, activeV, "C0-P0")
		cursor = end
	}
	if cursor < horizon {
		emitIdle(cursor, horizon)
	}
	return out
}

// CurrentAt returns the load current at time t in a trace produced by
// Trace. Linear scan; intended for tests and spot checks, not hot loops.
func CurrentAt(trace []Span, t sim.Time) float64 {
	for _, s := range trace {
		if t >= s.Start && t < s.End {
			return s.Current
		}
	}
	return 0
}

// MeanCurrent returns the time-weighted average current of the trace.
func MeanCurrent(trace []Span) float64 {
	var total sim.Time
	var sum float64
	for _, s := range trace {
		d := s.Duration()
		total += d
		sum += s.Current * float64(d)
	}
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}

// ModulationDepth measures how strongly the trace distinguishes active
// from idle: (maxCurrent - minCurrent) / maxCurrent. Zero means the side
// channel carries no information; near one means on-off keying.
func ModulationDepth(trace []Span) float64 {
	if len(trace) == 0 {
		return 0
	}
	lo, hi := trace[0].Current, trace[0].Current
	for _, s := range trace[1:] {
		if s.Current < lo {
			lo = s.Current
		}
		if s.Current > hi {
			hi = s.Current
		}
	}
	if hi == 0 {
		return 0
	}
	return (hi - lo) / hi
}

// TracePerCore builds the package-level load trace for a multi-core
// processor. Each core's activity runs through the single-core state
// logic at its 1/N share of the active current (per-core C-states), and
// the shares sum at the package rail. The VID is the maximum across
// cores — the shared rail must satisfy the hungriest core.
//
// The security-relevant consequence, verified by the package tests: the
// VRM integrates ALL cores, so pinning a victim workload away from an
// attacker's transmitter does not isolate the side channel.
func TracePerCore(perCore [][]kernel.Span, horizon sim.Time, cfg Config) []Span {
	if len(perCore) == 0 {
		return Trace(nil, horizon, cfg)
	}
	coreCfg := cfg
	coreCfg.ActiveCurrent = cfg.ActiveCurrent / float64(len(perCore))
	traces := make([][]Span, len(perCore))
	for i, activity := range perCore {
		traces[i] = Trace(activity, horizon, coreCfg)
	}
	return SumTraces(traces...)
}

// SumTraces superposes several contiguous load traces covering the same
// horizon: currents add, voltages take the maximum, and span boundaries
// are the union of the inputs' boundaries.
func SumTraces(traces ...[]Span) []Span {
	switch len(traces) {
	case 0:
		return nil
	case 1:
		return append([]Span(nil), traces[0]...)
	}
	// Collect all boundaries.
	boundarySet := map[sim.Time]bool{}
	for _, tr := range traces {
		for _, s := range tr {
			boundarySet[s.Start] = true
			boundarySet[s.End] = true
		}
	}
	bounds := make([]sim.Time, 0, len(boundarySet))
	for b := range boundarySet {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })

	cursors := make([]int, len(traces))
	var out []Span
	for i := 0; i+1 < len(bounds); i++ {
		start, end := bounds[i], bounds[i+1]
		var current, voltage float64
		for t, tr := range traces {
			for cursors[t] < len(tr) && tr[cursors[t]].End <= start {
				cursors[t]++
			}
			if cursors[t] < len(tr) && tr[cursors[t]].Start <= start {
				current += tr[cursors[t]].Current
				if tr[cursors[t]].Voltage > voltage {
					voltage = tr[cursors[t]].Voltage
				}
			}
		}
		// Merge equal-level neighbours to keep the trace compact.
		if n := len(out); n > 0 && out[n-1].Current == current &&
			out[n-1].Voltage == voltage && out[n-1].End == start {
			out[n-1].End = end
			continue
		}
		out = append(out, Span{Start: start, End: end,
			Current: current, Voltage: voltage, Label: "pkg"})
	}
	return out
}
