package power

import (
	"testing"

	"pmuleak/internal/kernel"
	"pmuleak/internal/sim"
)

func activity(spans ...[2]sim.Time) []kernel.Span {
	out := make([]kernel.Span, len(spans))
	for i, s := range spans {
		out[i] = kernel.Span{Start: s[0], End: s[1]}
	}
	return out
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.ActiveCurrent = 0
	if bad.Validate() == nil {
		t.Error("zero current accepted")
	}
	bad = DefaultConfig()
	bad.PStates = nil
	if bad.Validate() == nil {
		t.Error("empty P-state table accepted")
	}
	bad = DefaultConfig()
	bad.CStates = nil
	if bad.Validate() == nil {
		t.Error("empty C-state table accepted")
	}
	bad = DefaultConfig()
	bad.IdleGovernorDelay = -1
	if bad.Validate() == nil {
		t.Error("negative governor delay accepted")
	}
}

func TestDefaultTablesOrdered(t *testing.T) {
	ps := DefaultPStates()
	for i := 1; i < len(ps); i++ {
		if ps[i].FreqMHz >= ps[i-1].FreqMHz || ps[i].Voltage >= ps[i-1].Voltage {
			t.Fatalf("P-state table not monotonically decreasing at %d", i)
		}
	}
	cs := DefaultCStates()
	for i := 1; i < len(cs); i++ {
		if cs[i].CurrentFrac >= cs[i-1].CurrentFrac {
			t.Fatalf("C-state current not decreasing at %d", i)
		}
		if cs[i].ExitLatency <= cs[i-1].ExitLatency {
			t.Fatalf("C-state exit latency not increasing at %d", i)
		}
	}
}

func TestActiveSpansFullCurrent(t *testing.T) {
	cfg := DefaultConfig()
	tr := Trace(activity([2]sim.Time{0, sim.Millisecond}), sim.Millisecond, cfg)
	if len(tr) != 1 {
		t.Fatalf("trace = %v", tr)
	}
	if tr[0].Current != cfg.ActiveCurrent || tr[0].Label != "C0-P0" {
		t.Fatalf("active span = %+v", tr[0])
	}
}

func TestIdleDropsToDeepCState(t *testing.T) {
	cfg := DefaultConfig()
	// Busy 1ms, idle 9ms.
	tr := Trace(activity([2]sim.Time{0, sim.Millisecond}), 10*sim.Millisecond, cfg)
	deepCurrent := cfg.ActiveCurrent * cfg.deepest().CurrentFrac
	got := CurrentAt(tr, 5*sim.Millisecond)
	if got != deepCurrent {
		t.Fatalf("deep idle current = %v, want %v", got, deepCurrent)
	}
	// Shallow idle during the governor delay.
	shallow := CurrentAt(tr, sim.Millisecond+cfg.IdleGovernorDelay/2)
	if shallow <= deepCurrent || shallow >= cfg.ActiveCurrent {
		t.Fatalf("shallow idle current = %v", shallow)
	}
}

func TestIdleVoltageDropsWithPStates(t *testing.T) {
	cfg := DefaultConfig()
	tr := Trace(nil, 10*sim.Millisecond, cfg)
	last := tr[len(tr)-1]
	if last.Voltage >= cfg.fastestP().Voltage {
		t.Fatalf("deep idle voltage = %v, want below active %v", last.Voltage, cfg.fastestP().Voltage)
	}
}

func TestModulationBothEnabled(t *testing.T) {
	cfg := DefaultConfig()
	tr := Trace(activity([2]sim.Time{0, sim.Millisecond}), 2*sim.Millisecond, cfg)
	if d := ModulationDepth(tr); d < 0.9 {
		t.Fatalf("modulation depth = %v, want near 1 (on-off keying)", d)
	}
}

func TestModulationCStatesOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PStatesEnabled = false
	tr := Trace(activity([2]sim.Time{0, sim.Millisecond}), 2*sim.Millisecond, cfg)
	if d := ModulationDepth(tr); d < 0.9 {
		t.Fatalf("C-only modulation depth = %v, want high", d)
	}
}

func TestModulationPStatesOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CStatesEnabled = false
	tr := Trace(activity([2]sim.Time{0, sim.Millisecond}), 2*sim.Millisecond, cfg)
	d := ModulationDepth(tr)
	// DVFS alone still gives clear (if weaker) modulation.
	if d < 0.5 {
		t.Fatalf("P-only modulation depth = %v, want > 0.5", d)
	}
}

func TestModulationBothDisabledCollapses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PStatesEnabled = false
	cfg.CStatesEnabled = false
	tr := Trace(activity([2]sim.Time{0, sim.Millisecond}), 2*sim.Millisecond, cfg)
	if d := ModulationDepth(tr); d > 0.15 {
		t.Fatalf("modulation depth with PM disabled = %v, want near 0", d)
	}
	// And the current stays high throughout — the "continuously
	// present strong spikes" observation.
	if c := CurrentAt(tr, 1500*sim.Microsecond); c < 0.8*cfg.ActiveCurrent {
		t.Fatalf("idle current with PM disabled = %v, want near full", c)
	}
}

func TestShortIdleStaysShallow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleGovernorDelay = 50 * sim.Microsecond
	// Idle gap shorter than the governor delay never reaches deep idle.
	tr := Trace(activity(
		[2]sim.Time{0, sim.Millisecond},
		[2]sim.Time{sim.Millisecond + 20*sim.Microsecond, 2 * sim.Millisecond},
	), 2*sim.Millisecond, cfg)
	deep := cfg.ActiveCurrent * cfg.deepest().CurrentFrac
	for _, s := range tr {
		if s.Current == deep {
			t.Fatalf("short gap reached deep idle: %+v", s)
		}
	}
}

func TestTraceCoversHorizonExactly(t *testing.T) {
	cfg := DefaultConfig()
	tr := Trace(activity(
		[2]sim.Time{sim.Millisecond, 2 * sim.Millisecond},
		[2]sim.Time{5 * sim.Millisecond, 6 * sim.Millisecond},
	), 10*sim.Millisecond, cfg)
	if tr[0].Start != 0 {
		t.Fatalf("trace starts at %v", tr[0].Start)
	}
	if tr[len(tr)-1].End != 10*sim.Millisecond {
		t.Fatalf("trace ends at %v", tr[len(tr)-1].End)
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].Start != tr[i-1].End {
			t.Fatalf("gap/overlap between spans %d and %d: %v vs %v",
				i-1, i, tr[i-1].End, tr[i].Start)
		}
	}
}

func TestTraceClampsActivityPastHorizon(t *testing.T) {
	cfg := DefaultConfig()
	tr := Trace(activity([2]sim.Time{0, 20 * sim.Millisecond}), 5*sim.Millisecond, cfg)
	if tr[len(tr)-1].End != 5*sim.Millisecond {
		t.Fatalf("trace end = %v", tr[len(tr)-1].End)
	}
}

func TestMeanCurrent(t *testing.T) {
	tr := []Span{
		{Start: 0, End: sim.Millisecond, Current: 10},
		{Start: sim.Millisecond, End: 3 * sim.Millisecond, Current: 1},
	}
	want := (10.0*1 + 1.0*2) / 3
	if got := MeanCurrent(tr); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("MeanCurrent = %v, want %v", got, want)
	}
	if MeanCurrent(nil) != 0 {
		t.Error("MeanCurrent(nil) != 0")
	}
}

func TestModulationDepthEmpty(t *testing.T) {
	if ModulationDepth(nil) != 0 {
		t.Error("ModulationDepth(nil) != 0")
	}
}

func TestCurrentAtOutsideTrace(t *testing.T) {
	tr := Trace(nil, sim.Millisecond, DefaultConfig())
	if CurrentAt(tr, 2*sim.Millisecond) != 0 {
		t.Error("CurrentAt past trace end should be 0")
	}
}

func TestKernelToPowerIntegration(t *testing.T) {
	// End-to-end: a transmitter-like workload produces alternating
	// high/low current with strong modulation.
	kcfg := kernel.DefaultConfig(kernel.Linux)
	kcfg.InterruptRate = 0
	kcfg.TickInterval = 0
	k := kernel.New(kcfg, 5)
	defer k.Close()
	k.Spawn("tx", func(p *kernel.Proc) {
		for i := 0; i < 20; i++ {
			p.Busy(100 * sim.Microsecond)
			p.Sleep(100 * sim.Microsecond)
		}
	})
	horizon := 5 * sim.Millisecond
	k.Run(horizon)
	tr := Trace(k.Activity(horizon), horizon, DefaultConfig())
	if d := ModulationDepth(tr); d < 0.9 {
		t.Fatalf("end-to-end modulation depth = %v", d)
	}
	// Roughly half the time should be at high current.
	mean := MeanCurrent(tr)
	cfg := DefaultConfig()
	if mean < 0.3*cfg.ActiveCurrent || mean > 0.8*cfg.ActiveCurrent {
		t.Fatalf("mean current = %v of %v", mean, cfg.ActiveCurrent)
	}
}

func spanOn(core int, start, end sim.Time) kernel.Span {
	return kernel.Span{Start: start, End: end, Core: core}
}

func TestSumTracesAddsCurrents(t *testing.T) {
	a := []Span{{Start: 0, End: 10, Current: 2, Voltage: 1.0}}
	b := []Span{{Start: 0, End: 5, Current: 3, Voltage: 1.2},
		{Start: 5, End: 10, Current: 1, Voltage: 0.8}}
	sum := SumTraces(a, b)
	if len(sum) != 2 {
		t.Fatalf("sum = %v", sum)
	}
	if sum[0].Current != 5 || sum[0].Voltage != 1.2 {
		t.Fatalf("first span = %+v", sum[0])
	}
	if sum[1].Current != 3 || sum[1].Voltage != 1.0 {
		t.Fatalf("second span = %+v", sum[1])
	}
}

func TestSumTracesDegenerate(t *testing.T) {
	if SumTraces() != nil {
		t.Fatal("empty sum not nil")
	}
	a := []Span{{Start: 0, End: 1, Current: 2}}
	got := SumTraces(a)
	if len(got) != 1 || got[0].Current != 2 {
		t.Fatalf("single-trace sum = %v", got)
	}
}

func TestSumTracesMergesEqualLevels(t *testing.T) {
	a := []Span{{Start: 0, End: 5, Current: 1, Voltage: 1},
		{Start: 5, End: 10, Current: 1, Voltage: 1}}
	b := []Span{{Start: 0, End: 10, Current: 2, Voltage: 1}}
	sum := SumTraces(a, b)
	if len(sum) != 1 || sum[0].Current != 3 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestTracePerCoreSharesCurrent(t *testing.T) {
	cfg := DefaultConfig()
	horizon := sim.Millisecond
	// Both cores fully active: package current equals single-core full.
	perCore := [][]kernel.Span{
		{spanOn(0, 0, horizon)},
		{spanOn(1, 0, horizon)},
	}
	tr := TracePerCore(perCore, horizon, cfg)
	if got := CurrentAt(tr, horizon/2); got != cfg.ActiveCurrent {
		t.Fatalf("both-active package current = %v, want %v", got, cfg.ActiveCurrent)
	}
	// One core active: half the package current.
	perCore[1] = nil
	tr = TracePerCore(perCore, horizon, cfg)
	if got := CurrentAt(tr, horizon/2); got < 0.45*cfg.ActiveCurrent || got > 0.55*cfg.ActiveCurrent {
		t.Fatalf("one-active package current = %v, want ~half", got)
	}
}

func TestTracePerCoreVRMSeesAllCores(t *testing.T) {
	// The security consequence: an "isolated" busy burst on core 1
	// during core 0's idle period is fully visible at the package rail.
	cfg := DefaultConfig()
	horizon := 10 * sim.Millisecond
	perCore := [][]kernel.Span{
		{spanOn(0, 0, sim.Millisecond)},                   // transmitter-style burst, then idle
		{spanOn(1, 5*sim.Millisecond, 6*sim.Millisecond)}, // "isolated" victim
	}
	tr := TracePerCore(perCore, horizon, cfg)
	during := CurrentAt(tr, 5500*sim.Microsecond)
	before := CurrentAt(tr, 4*sim.Millisecond)
	if during < 5*before {
		t.Fatalf("cross-core burst invisible at package: %v vs %v", during, before)
	}
}

func TestTracePerCoreEmptyFallsBack(t *testing.T) {
	tr := TracePerCore(nil, sim.Millisecond, DefaultConfig())
	if len(tr) == 0 {
		t.Fatal("no trace")
	}
}
