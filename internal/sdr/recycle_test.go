package sdr

import (
	"sync"
	"testing"

	"pmuleak/internal/telemetry"
	"pmuleak/internal/xrand"
)

func TestRecycleIdempotent(t *testing.T) {
	recycles := telemetry.NewCounter("sdr.captures_recycled")
	iq := make([]complex128, 1024)
	cap := Acquire(iq, 970e3, DefaultConfig(), xrand.New(1))

	before := recycles.Load()
	cap.Recycle()
	if cap.IQ != nil {
		t.Fatal("Recycle did not clear IQ")
	}
	if got := recycles.Load() - before; got != 1 {
		t.Fatalf("first Recycle counted %d times", got)
	}
	// Second call: strict no-op — no second PutIQ, no counter bump.
	cap.Recycle()
	if got := recycles.Load() - before; got != 1 {
		t.Fatalf("double Recycle counted %d times, want 1", got)
	}
}

// TestRecycleConcurrentMisuse models the demod-then-recycle misuse where
// two owners both believe they should release the capture: the buffer
// must be recycled exactly once regardless of interleaving. Run with
// -race this also proves the latch is the only synchronization needed.
func TestRecycleConcurrentMisuse(t *testing.T) {
	recycles := telemetry.NewCounter("sdr.captures_recycled")
	for round := 0; round < 50; round++ {
		iq := make([]complex128, 256)
		cap := Acquire(iq, 970e3, DefaultConfig(), xrand.New(int64(round)))
		before := recycles.Load()
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cap.Recycle()
			}()
		}
		wg.Wait()
		if got := recycles.Load() - before; got != 1 {
			t.Fatalf("round %d: %d recycles for 4 concurrent calls, want 1", round, got)
		}
	}
}

func TestAcquireEReturnsError(t *testing.T) {
	bad := DefaultConfig()
	bad.Bits = 0
	if _, err := AcquireE(make([]complex128, 16), 970e3, bad, xrand.New(1)); err == nil {
		t.Fatal("AcquireE accepted invalid config")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Acquire did not panic on invalid config")
		}
	}()
	Acquire(make([]complex128, 16), 970e3, bad, xrand.New(1))
}
