// Package sdr models the attacker's receiver: an RTL-SDR-v3-class
// software-defined radio fed by either a tiny hand-wound coil probe
// (near-field placement) or a 30 cm loop antenna with a built-in 20 dB
// amplifier (distance / through-wall placement). The model captures the
// artifacts that matter to the decoder: antenna gain, front-end thermal
// noise, automatic gain control, and 8-bit quantization.
package sdr

import (
	"fmt"
	"math"
	"sync/atomic"

	"pmuleak/internal/dsp"
	"pmuleak/internal/telemetry"
	"pmuleak/internal/xrand"
)

// Receiver telemetry. Captures, samples, and clipped counts follow
// deterministically from the experiment configuration; recycles count
// Capture.Recycle calls (the capture's buffer returning to the IQ
// pool).
var (
	sdrCaptures = telemetry.NewCounter("sdr.captures")
	sdrSamples  = telemetry.NewCounter("sdr.samples")
	sdrClipped  = telemetry.NewCounter("sdr.samples_clipped")
	sdrRecycles = telemetry.NewCounter("sdr.captures_recycled")
)

// Antenna describes the pickup device.
type Antenna struct {
	Name   string
	GainDB float64 // amplitude gain of antenna + integrated amplifier
}

// CoilProbe is the paper's coin-sized 33-turn, 5 mm magnetic probe
// (< $5, no amplifier).
var CoilProbe = Antenna{Name: "coil-probe-5mm", GainDB: 0}

// LoopLA390 is the AOR LA390 30 cm loop antenna with its built-in 20 dB
// amplifier, used for the distance and through-wall experiments.
var LoopLA390 = Antenna{Name: "AOR-LA390", GainDB: 20}

// Config describes the receiver chain.
type Config struct {
	Antenna    Antenna
	SampleRate float64 // complex samples per second
	// Bits is the ADC resolution per I/Q component (RTL-SDR: 8).
	Bits int
	// ThermalNoiseSigma is the front-end noise added after the antenna,
	// per I/Q component, relative to a full-scale input of 1.0.
	ThermalNoiseSigma float64
	// AGCTargetRMS is the RMS level (fraction of full scale) the
	// automatic gain control drives the signal to before quantization.
	// Zero disables AGC (unity digital gain).
	AGCTargetRMS float64
	// DCOffset adds the direct-conversion receiver's characteristic DC
	// spike at the tuning frequency (fraction of full scale, either
	// sign — real tuners settle on both sides of zero). RTL-SDR
	// captures show it prominently at baseband zero.
	DCOffset float64
	// IQImbalanceFrac is the gain mismatch between the I and Q paths;
	// it mirrors every signal faintly across zero frequency. Negative
	// values model a Q path stronger than the I path and are just as
	// physical as positive ones.
	IQImbalanceFrac float64
	// Parallelism is the worker count for the deterministic receiver
	// stages (AGC scaling, DC offset, quantization): 0 picks the
	// process default, 1 forces the serial path. The noise stage stays
	// serial regardless — it consumes the random stream in sample
	// order — and the parallel stages are element-wise, so the knob
	// never changes the capture.
	Parallelism int
}

// DefaultConfig returns an RTL-SDR v3 at its maximum stable rate.
func DefaultConfig() Config {
	return Config{
		Antenna:           CoilProbe,
		SampleRate:        2.4e6,
		Bits:              8,
		ThermalNoiseSigma: 0.002,
		AGCTargetRMS:      0.25,
		DCOffset:          0.01,
		IQImbalanceFrac:   0.01,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SampleRate <= 0 {
		return fmt.Errorf("sdr: SampleRate must be positive")
	}
	if c.Bits < 1 || c.Bits > 16 {
		return fmt.Errorf("sdr: Bits %d out of range [1,16]", c.Bits)
	}
	if c.ThermalNoiseSigma < 0 {
		return fmt.Errorf("sdr: negative ThermalNoiseSigma")
	}
	if c.AGCTargetRMS < 0 || c.AGCTargetRMS > 0.5 {
		return fmt.Errorf("sdr: AGCTargetRMS %v out of range [0,0.5]", c.AGCTargetRMS)
	}
	// Both impairments are signed: a DC spike can sit on either side of
	// zero and the Q path can be the stronger one. Validation bounds the
	// magnitude only; AcquireE applies them on != 0 (a > 0 guard here
	// used to silently drop negative values).
	if math.Abs(c.DCOffset) > 0.2 {
		return fmt.Errorf("sdr: DCOffset %v out of range [-0.2,0.2]", c.DCOffset)
	}
	if math.Abs(c.IQImbalanceFrac) > 0.2 {
		return fmt.Errorf("sdr: IQImbalanceFrac %v out of range [-0.2,0.2]", c.IQImbalanceFrac)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("sdr: negative Parallelism")
	}
	return nil
}

// Capture is a finished acquisition.
type Capture struct {
	IQ           []complex128 // dequantized samples in [-1, 1]
	SampleRate   float64
	CenterFreqHz float64
	// Clipped is the number of samples that hit the ADC rails.
	Clipped int

	// recycled latches once Recycle has returned the buffer to the
	// pool, making further calls no-ops.
	recycled atomic.Bool
}

// Duration returns the capture length in seconds. A hand-built capture
// with a zero (or negative) SampleRate has no meaningful duration and
// reports 0 — the naive division used to return +Inf, or NaN when the
// capture was also empty.
func (c *Capture) Duration() float64 {
	if c.SampleRate <= 0 {
		return 0
	}
	return float64(len(c.IQ)) / c.SampleRate
}

// Recycle returns the capture's sample buffer to the process pool and
// clears the reference. Call it only once the capture has been fully
// consumed (demodulated / detected / rendered) — any slice still
// aliasing c.IQ becomes invalid. Recycle is idempotent: the second and
// later calls are no-ops (a double Recycle used to double-count the
// telemetry and hand the pool a nil buffer), and concurrent calls
// recycle the buffer exactly once.
func (c *Capture) Recycle() {
	if !c.recycled.CompareAndSwap(false, true) {
		return
	}
	sdrRecycles.Inc()
	if recyclePoison.Load() {
		// Poison before the buffer re-enters the pool: any slice still
		// aliasing c.IQ now reads NaN instead of silently-plausible
		// stale samples. Safe for pool reuse because GetIQ's contract
		// already requires consumers to overwrite every element before
		// reading any.
		nan := complex(math.NaN(), math.NaN())
		for i := range c.IQ {
			c.IQ[i] = nan
		}
	}
	dsp.PutIQ(c.IQ)
	c.IQ = nil
}

// Recycled reports whether Recycle has already run. Long-lived consumers
// that are handed a *Capture asynchronously (the streaming daemon's
// per-stream workers) check it before touching IQ, turning a silent
// use-after-recycle into an explicit failure.
func (c *Capture) Recycled() bool { return c.recycled.Load() }

// recyclePoison enables the debug-mode poison fill in Recycle.
var recyclePoison atomic.Bool

// SetRecyclePoison toggles debug-mode recycle poisoning: when enabled,
// Recycle overwrites the sample buffer with NaN before returning it to
// the pool, so any reader still aliasing a recycled capture's IQ slice
// computes garbage loudly (NaN propagates through every DSP stage)
// instead of reading stale-but-plausible samples. Intended for tests and
// debug builds of the capture daemon; the fill costs one pass over the
// buffer per recycle.
func SetRecyclePoison(on bool) { recyclePoison.Store(on) }

// Acquire runs the input field samples through the receiver chain and
// returns the capture a host application would see.
//
// Acquire panics on an invalid configuration; it is for callers whose
// configs are validated by construction (the experiment runners).
// Callers handling user input should use AcquireE and report the error.
func Acquire(iq []complex128, centerFreqHz float64, cfg Config, rng *xrand.Source) *Capture {
	cap, err := AcquireE(iq, centerFreqHz, cfg, rng)
	if err != nil {
		panic(err)
	}
	return cap
}

// AcquireE is Acquire with the configuration errors returned instead of
// panicking.
func AcquireE(iq []complex128, centerFreqHz float64, cfg Config, rng *xrand.Source) (*Capture, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gain := math.Pow(10, cfg.Antenna.GainDB/20)
	// Pooled buffer: the loop below writes every element before any
	// read-modify op, so stale contents never leak into the capture.
	out := dsp.GetIQ(len(iq))
	for i, v := range iq {
		out[i] = v * complex(gain, 0)
		if cfg.IQImbalanceFrac != 0 {
			// Gain mismatch on the I path: scales the real part only,
			// equivalent to leaking a conjugate image.
			out[i] = complex(real(out[i])*(1+cfg.IQImbalanceFrac), imag(out[i]))
		}
		if cfg.ThermalNoiseSigma > 0 {
			out[i] += complex(rng.Normal(0, cfg.ThermalNoiseSigma),
				rng.Normal(0, cfg.ThermalNoiseSigma))
		}
	}
	// AGC: single measurement over the capture (the RTL's gain is set
	// once per tuning in practice). The RMS sum stays serial — it is an
	// order-sensitive float reduction — while the gain application and
	// the quantizer below are element-wise and run on the worker pool.
	eng := dsp.NewEngine(cfg.Parallelism)
	if cfg.AGCTargetRMS > 0 {
		var sum float64
		for _, v := range out {
			sum += real(v)*real(v) + imag(v)*imag(v)
		}
		rms := math.Sqrt(sum / math.Max(1, float64(len(out))))
		if rms > 0 {
			agc := cfg.AGCTargetRMS / rms
			eng.Chunks(len(out), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[i] *= complex(agc, 0)
				}
			})
		}
	}
	cap := &Capture{SampleRate: cfg.SampleRate, CenterFreqHz: centerFreqHz}
	levels := float64(int(1) << (cfg.Bits - 1)) // e.g. 128 for 8-bit
	var clipped atomic.Int64
	eng.Chunks(len(out), func(lo, hi int) {
		var clips int64
		for i := lo; i < hi; i++ {
			if cfg.DCOffset != 0 {
				out[i] += complex(cfg.DCOffset, 0)
			}
			re, cr := quantize(real(out[i]), levels)
			im, ci := quantize(imag(out[i]), levels)
			if cr || ci {
				clips++
			}
			out[i] = complex(re, im)
		}
		clipped.Add(clips)
	})
	cap.Clipped = int(clipped.Load())
	cap.IQ = out
	sdrCaptures.Inc()
	sdrSamples.Add(uint64(len(out)))
	sdrClipped.Add(uint64(cap.Clipped))
	return cap, nil
}

// quantize maps v in [-1,1) onto the ADC grid, clipping outside.
func quantize(v, levels float64) (q float64, clipped bool) {
	x := math.Round(v * levels)
	if x >= levels {
		x = levels - 1
		clipped = true
	}
	if x < -levels {
		x = -levels
		clipped = true
	}
	return x / levels, clipped
}
