package sdr

import (
	"math"
	"testing"

	"pmuleak/internal/xrand"
)

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.SampleRate = 0 },
		func(c *Config) { c.Bits = 0 },
		func(c *Config) { c.Bits = 24 },
		func(c *Config) { c.ThermalNoiseSigma = -1 },
		func(c *Config) { c.AGCTargetRMS = 0.9 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestAntennaGains(t *testing.T) {
	if CoilProbe.GainDB != 0 {
		t.Errorf("CoilProbe gain = %v", CoilProbe.GainDB)
	}
	if LoopLA390.GainDB != 20 {
		t.Errorf("LoopLA390 gain = %v", LoopLA390.GainDB)
	}
}

func TestAcquirePreservesLengthAndMeta(t *testing.T) {
	cfg := DefaultConfig()
	in := make([]complex128, 1000)
	cap := Acquire(in, 1.455e6, cfg, xrand.New(1))
	if len(cap.IQ) != 1000 {
		t.Fatalf("len = %d", len(cap.IQ))
	}
	if cap.CenterFreqHz != 1.455e6 || cap.SampleRate != cfg.SampleRate {
		t.Fatalf("metadata wrong: %+v", cap)
	}
	if d := cap.Duration(); math.Abs(d-1000/2.4e6) > 1e-12 {
		t.Fatalf("Duration = %v", d)
	}
}

func TestQuantizationGrid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThermalNoiseSigma = 0
	cfg.AGCTargetRMS = 0 // unity gain
	cfg.DCOffset = 0
	cfg.IQImbalanceFrac = 0
	in := []complex128{complex(0.5, -0.25), complex(0.123456, 0)}
	cap := Acquire(in, 0, cfg, xrand.New(2))
	for _, v := range cap.IQ {
		for _, comp := range []float64{real(v), imag(v)} {
			scaled := comp * 128
			if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
				t.Fatalf("sample %v not on the 8-bit grid", v)
			}
		}
	}
}

func TestQuantizationClips(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThermalNoiseSigma = 0
	cfg.AGCTargetRMS = 0
	in := []complex128{complex(5, 0), complex(-5, -5), complex(0.1, 0)}
	cap := Acquire(in, 0, cfg, xrand.New(3))
	if cap.Clipped != 2 {
		t.Fatalf("Clipped = %d, want 2", cap.Clipped)
	}
	if re := real(cap.IQ[0]); re > 1 {
		t.Fatalf("clipped sample out of range: %v", re)
	}
}

func TestAGCBringsWeakSignalUp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThermalNoiseSigma = 0
	in := make([]complex128, 4096)
	for i := range in {
		in[i] = complex(1e-4*math.Cos(0.1*float64(i)), 1e-4*math.Sin(0.1*float64(i)))
	}
	cap := Acquire(in, 0, cfg, xrand.New(4))
	var sum float64
	for _, v := range cap.IQ {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	rms := math.Sqrt(sum / float64(len(cap.IQ)))
	if math.Abs(rms-cfg.AGCTargetRMS) > 0.05 {
		t.Fatalf("post-AGC RMS = %v, want ~%v", rms, cfg.AGCTargetRMS)
	}
}

func TestAGCDisabledKeepsLevel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThermalNoiseSigma = 0
	cfg.AGCTargetRMS = 0
	cfg.DCOffset = 0
	cfg.IQImbalanceFrac = 0
	in := []complex128{complex(0.5, 0)}
	cap := Acquire(in, 0, cfg, xrand.New(5))
	if math.Abs(real(cap.IQ[0])-0.5) > 1.0/128 {
		t.Fatalf("sample moved without AGC: %v", cap.IQ[0])
	}
}

func TestLoopAntennaAmplifies(t *testing.T) {
	// With AGC off, the 20 dB loop output is 10x the probe output.
	base := DefaultConfig()
	base.ThermalNoiseSigma = 0
	base.AGCTargetRMS = 0
	base.DCOffset = 0
	base.IQImbalanceFrac = 0
	base.Bits = 16 // fine grid so the ratio is measurable
	in := []complex128{complex(0.001, 0)}

	probeCap := Acquire(in, 0, base, xrand.New(6))
	loopCfg := base
	loopCfg.Antenna = LoopLA390
	loopCap := Acquire(in, 0, loopCfg, xrand.New(6))

	ratio := real(loopCap.IQ[0]) / real(probeCap.IQ[0])
	if math.Abs(ratio-10) > 0.7 {
		t.Fatalf("loop/probe amplitude ratio = %v, want ~10", ratio)
	}
}

func TestThermalNoiseFloor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AGCTargetRMS = 0
	cfg.ThermalNoiseSigma = 0.01
	cfg.DCOffset = 0
	cfg.IQImbalanceFrac = 0
	cfg.Bits = 16
	in := make([]complex128, 50000)
	cap := Acquire(in, 0, cfg, xrand.New(7))
	var sum float64
	for _, v := range cap.IQ {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	rms := math.Sqrt(sum / float64(len(cap.IQ)))
	want := 0.01 * math.Sqrt2
	if math.Abs(rms-want) > 0.002 {
		t.Fatalf("noise RMS = %v, want ~%v", rms, want)
	}
}

func TestAcquireDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	in := make([]complex128, 2048)
	for i := range in {
		in[i] = complex(math.Sin(0.01*float64(i)), 0)
	}
	a := Acquire(in, 0, cfg, xrand.New(8))
	b := Acquire(in, 0, cfg, xrand.New(8))
	for i := range a.IQ {
		if a.IQ[i] != b.IQ[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestAcquireEmpty(t *testing.T) {
	cap := Acquire(nil, 0, DefaultConfig(), xrand.New(9))
	if len(cap.IQ) != 0 || cap.Clipped != 0 {
		t.Fatalf("empty acquire = %+v", cap)
	}
}

func TestQuantizeBounds(t *testing.T) {
	for _, v := range []float64{-2, -1, -0.5, 0, 0.5, 0.9999, 1, 2} {
		q, _ := quantize(v, 128)
		if q < -1 || q >= 1 {
			t.Fatalf("quantize(%v) = %v out of [-1,1)", v, q)
		}
	}
}

func TestDCOffsetSpike(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThermalNoiseSigma = 0
	cfg.AGCTargetRMS = 0
	cfg.DCOffset = 0.05
	cfg.Bits = 16
	in := make([]complex128, 256)
	cap := Acquire(in, 0, cfg, xrand.New(20))
	var mean complex128
	for _, v := range cap.IQ {
		mean += v
	}
	mean /= complex(float64(len(cap.IQ)), 0)
	if math.Abs(real(mean)-0.05) > 0.001 {
		t.Fatalf("DC offset = %v, want 0.05", mean)
	}
}

func TestIQImbalanceCreatesImage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThermalNoiseSigma = 0
	cfg.AGCTargetRMS = 0
	cfg.DCOffset = 0
	cfg.IQImbalanceFrac = 0.1
	cfg.Bits = 16
	const f = 0.1
	in := make([]complex128, 4096)
	for i := range in {
		angle := 2 * math.Pi * f * float64(i)
		in[i] = complex(0.3*math.Cos(angle), 0.3*math.Sin(angle))
	}
	cap := Acquire(in, 0, cfg, xrand.New(21))
	// DFT magnitudes at +f and -f via direct correlation.
	mag := func(freq float64) float64 {
		var re, im float64
		for i, v := range cap.IQ {
			angle := -2 * math.Pi * freq * float64(i)
			c, s := math.Cos(angle), math.Sin(angle)
			re += real(v)*c - imag(v)*s
			im += real(v)*s + imag(v)*c
		}
		return math.Hypot(re, im)
	}
	signal := mag(f)
	image := mag(-f)
	if image <= 0 || image > signal/5 {
		t.Fatalf("image = %v vs signal %v, want a faint mirror", image, signal)
	}
	// Without imbalance the image vanishes.
	cfg.IQImbalanceFrac = 0
	cap = Acquire(in, 0, cfg, xrand.New(21))
	if clean := mag(-f); clean > image/5 {
		t.Fatalf("image persists without imbalance: %v", clean)
	}
}

func TestArtifactValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DCOffset = 0.5
	if cfg.Validate() == nil {
		t.Error("huge DC offset accepted")
	}
	cfg = DefaultConfig()
	cfg.IQImbalanceFrac = 0.5
	if cfg.Validate() == nil {
		t.Error("huge IQ imbalance accepted")
	}
}
