package sdr

import (
	"math"
	"math/cmplx"
	"testing"

	"pmuleak/internal/xrand"
)

// quietConfig returns a receiver with every stochastic or confounding
// stage disabled, so the tests below see exactly the impairment under
// test.
func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.ThermalNoiseSigma = 0
	cfg.AGCTargetRMS = 0
	cfg.DCOffset = 0
	cfg.IQImbalanceFrac = 0
	return cfg
}

// TestNegativeDCOffsetApplied pins the signed-impairment contract: a
// negative DCOffset validates and shifts the capture the other way. The
// historical `> 0` guard silently dropped it, making -0.05 behave as 0.
func TestNegativeDCOffsetApplied(t *testing.T) {
	iq := make([]complex128, 4096)
	for sign := -1.0; sign <= 1.0; sign += 2 {
		cfg := quietConfig()
		cfg.DCOffset = sign * 0.05
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Validate(DCOffset=%v): %v", cfg.DCOffset, err)
		}
		cap, err := AcquireE(iq, 0, cfg, xrand.New(1))
		if err != nil {
			t.Fatalf("AcquireE: %v", err)
		}
		var mean complex128
		for _, v := range cap.IQ {
			mean += v
		}
		mean /= complex(float64(len(cap.IQ)), 0)
		// Quantization rounds 0.05*128 = 6.4 to 6/128.
		want := sign * math.Round(0.05*128) / 128
		if math.Abs(real(mean)-want) > 1e-12 || imag(mean) != 0 {
			t.Fatalf("DCOffset=%v: capture mean = %v, want %v", cfg.DCOffset, mean, want)
		}
	}
}

// TestNegativeIQImbalanceApplied pins the same contract for the I/Q gain
// mismatch: negative values scale the I path down instead of being
// silently ignored.
func TestNegativeIQImbalanceApplied(t *testing.T) {
	iq := make([]complex128, 4096)
	for i := range iq {
		iq[i] = complex(0.5, 0.5)
	}
	cfg := quietConfig()
	cfg.IQImbalanceFrac = -0.1
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate(IQImbalanceFrac=-0.1): %v", err)
	}
	cap, err := AcquireE(iq, 0, cfg, xrand.New(1))
	if err != nil {
		t.Fatalf("AcquireE: %v", err)
	}
	// I path scaled by 1-0.1 = 0.9: 0.45*128 = 57.6 rounds to 58.
	wantRe, wantIm := math.Round(0.5*0.9*128)/128, math.Round(0.5*128)/128
	got := cap.IQ[17]
	if real(got) != wantRe || imag(got) != wantIm {
		t.Fatalf("IQImbalanceFrac=-0.1: sample = %v, want (%v,%v)", got, wantRe, wantIm)
	}
	if real(got) >= imag(got) {
		t.Fatalf("negative imbalance must leave I below Q, got %v", got)
	}
}

// TestSignedImpairmentBounds pins the validation range: magnitude is
// bounded at 0.2 on both sides.
func TestSignedImpairmentBounds(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"dc -0.2", func(c *Config) { c.DCOffset = -0.2 }, true},
		{"dc -0.21", func(c *Config) { c.DCOffset = -0.21 }, false},
		{"iq -0.2", func(c *Config) { c.IQImbalanceFrac = -0.2 }, true},
		{"iq -0.21", func(c *Config) { c.IQImbalanceFrac = -0.21 }, false},
	} {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		err := cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestDurationZeroSampleRate pins the hand-built-capture contract: a
// capture with no sample rate reports zero duration, not +Inf (nor NaN
// when it is also empty).
func TestDurationZeroSampleRate(t *testing.T) {
	c := &Capture{IQ: make([]complex128, 100)}
	if d := c.Duration(); d != 0 {
		t.Fatalf("Duration with zero SampleRate = %v, want 0", d)
	}
	empty := &Capture{}
	if d := empty.Duration(); d != 0 || math.IsNaN(d) {
		t.Fatalf("Duration of empty zero-rate capture = %v, want 0", d)
	}
	neg := &Capture{IQ: make([]complex128, 10), SampleRate: -1}
	if d := neg.Duration(); d != 0 {
		t.Fatalf("Duration with negative SampleRate = %v, want 0", d)
	}
}

// TestRecyclePoison pins the debug-mode use-after-recycle detector: an
// aliased slice reads NaN after Recycle instead of stale samples.
func TestRecyclePoison(t *testing.T) {
	SetRecyclePoison(true)
	defer SetRecyclePoison(false)
	cap, err := AcquireE(make([]complex128, 2048), 0, quietConfig(), xrand.New(1))
	if err != nil {
		t.Fatalf("AcquireE: %v", err)
	}
	alias := cap.IQ
	if cap.Recycled() {
		t.Fatal("fresh capture reports Recycled")
	}
	cap.Recycle()
	if !cap.Recycled() {
		t.Fatal("capture does not report Recycled after Recycle")
	}
	for i, v := range alias {
		if !cmplx.IsNaN(v) {
			t.Fatalf("aliased sample %d = %v after recycle, want NaN poison", i, v)
		}
	}
}
