// Package sim provides the discrete-event simulation core that every
// hardware and operating-system model in this repository runs on.
//
// The simulation advances in whole nanoseconds. Events scheduled at the
// same instant fire in scheduling order, which makes every run fully
// deterministic for a given seed and workload. That determinism is load
// bearing: the experiment harness asserts bit-exact results across runs.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated instant or duration, in nanoseconds since the start
// of the simulation. It deliberately mirrors time.Duration semantics so
// that model code reads naturally, but it is a separate type: simulated
// time never has any relationship to the wall clock.
type Time int64

// Convenient duration units for model code.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit, e.g. "1.5ms" or "250ns".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gµs", t.Micros())
	}
	return fmt.Sprintf("%dns", int64(t))
}

// FromSeconds converts a floating-point number of seconds to a Time,
// rounding to the nearest nanosecond.
func FromSeconds(s float64) Time {
	if s >= 0 {
		return Time(s*float64(Second) + 0.5)
	}
	return -Time(-s*float64(Second) + 0.5)
}

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 once popped
	canceled bool
}

// At reports the instant the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an event that already
// fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler owns the simulated clock and the pending event queue.
// The zero value is not usable; call NewScheduler.
type Scheduler struct {
	now    Time
	events eventHeap
	seq    uint64
	fired  uint64
}

// NewScheduler returns a scheduler with the clock at zero and no events.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired reports how many events have executed so far. Useful for
// detecting runaway models in tests.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending reports how many events are queued (including cancelled ones
// that have not been reaped yet).
func (s *Scheduler) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: a model doing that is broken and silently clamping would
// corrupt experiment timelines.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (s *Scheduler) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Step runs the single earliest pending event, advancing the clock to its
// scheduled time. It returns false when the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.canceled {
			continue
		}
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

// RunUntil executes events until the clock reaches t. Events scheduled
// exactly at t do run. The clock always ends at t, even if the queue
// drains early.
func (s *Scheduler) RunUntil(t Time) {
	for len(s.events) > 0 {
		e := s.events[0]
		if e.canceled {
			heap.Pop(&s.events)
			continue
		}
		if e.at > t {
			break
		}
		heap.Pop(&s.events)
		s.now = e.at
		s.fired++
		e.fn()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor executes events for the next d nanoseconds of simulated time.
func (s *Scheduler) RunFor(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative run duration %v", d))
	}
	s.RunUntil(s.now + d)
}

// Drain runs every pending event regardless of time. It exists for
// tests and for flushing shutdown work; production experiment loops use
// RunUntil with an explicit horizon.
func (s *Scheduler) Drain() {
	for s.Step() {
	}
}
