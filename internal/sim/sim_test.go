package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e9 {
		t.Fatalf("Second = %d, want 1e9", int64(Second))
	}
	if Millisecond != 1e6 || Microsecond != 1e3 || Nanosecond != 1 {
		t.Fatalf("unit constants wrong: %d %d %d", Millisecond, Microsecond, Nanosecond)
	}
}

func TestTimeSeconds(t *testing.T) {
	cases := []struct {
		in   Time
		want float64
	}{
		{0, 0},
		{Second, 1},
		{500 * Millisecond, 0.5},
		{-2 * Second, -2},
	}
	for _, c := range cases {
		if got := c.in.Seconds(); got != c.want {
			t.Errorf("(%d).Seconds() = %v, want %v", int64(c.in), got, c.want)
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{250, "250ns"},
		{Microsecond, "1µs"},
		{1500 * Microsecond, "1.5ms"},
		{2 * Second, "2s"},
		{-Microsecond, "-1µs"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
	if got := FromSeconds(-0.25); got != -250*Millisecond {
		t.Errorf("FromSeconds(-0.25) = %v", got)
	}
	if got := FromSeconds(0); got != 0 {
		t.Errorf("FromSeconds(0) = %v", got)
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(ns int64) bool {
		// Restrict to a range where float64 is exact enough.
		ns %= int64(1000 * Second)
		tm := Time(ns)
		return FromSeconds(tm.Seconds()) == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Drain()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %v, want 30", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("events at same instant not FIFO: %v", order)
		}
	}
}

func TestSchedulerAfter(t *testing.T) {
	s := NewScheduler()
	var at Time
	s.After(5*Microsecond, func() { at = s.Now() })
	s.Drain()
	if at != 5*Microsecond {
		t.Fatalf("fired at %v, want 5µs", at)
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	var tick func()
	tick = func() {
		ticks = append(ticks, s.Now())
		if len(ticks) < 5 {
			s.After(Millisecond, tick)
		}
	}
	s.After(0, tick)
	s.RunUntil(Second)
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, at := range ticks {
		if at != Time(i)*Millisecond {
			t.Fatalf("tick %d at %v", i, at)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(10, func() { fired = true })
	e.Cancel()
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	s.Drain()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancelling twice is fine.
	e.Cancel()
}

func TestSchedulerRunUntilAdvancesClock(t *testing.T) {
	s := NewScheduler()
	s.RunUntil(42 * Millisecond)
	if s.Now() != 42*Millisecond {
		t.Fatalf("Now = %v after empty RunUntil", s.Now())
	}
	// Event exactly at the horizon runs.
	fired := false
	s.At(50*Millisecond, func() { fired = true })
	s.RunUntil(50 * Millisecond)
	if !fired {
		t.Fatal("event at horizon did not fire")
	}
}

func TestSchedulerRunFor(t *testing.T) {
	s := NewScheduler()
	s.RunFor(10)
	s.RunFor(15)
	if s.Now() != 25 {
		t.Fatalf("Now = %v, want 25", s.Now())
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.RunUntil(100)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(50, func() {})
}

func TestSchedulerNegativeAfterPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestSchedulerNegativeRunForPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("negative RunFor did not panic")
		}
	}()
	s.RunFor(-5)
}

func TestSchedulerStepAndCounters(t *testing.T) {
	s := NewScheduler()
	n := 0
	s.At(1, func() { n++ })
	s.At(2, func() { n++ })
	if !s.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	if !s.Step() {
		t.Fatal("second Step failed")
	}
	if s.Step() {
		t.Fatal("Step returned true on empty queue")
	}
	if n != 2 || s.Fired() != 2 {
		t.Fatalf("n=%d fired=%d", n, s.Fired())
	}
}

func TestSchedulerCancelInterleavedWithStep(t *testing.T) {
	s := NewScheduler()
	var order []string
	e2 := s.At(20, func() { order = append(order, "b") })
	s.At(10, func() {
		order = append(order, "a")
		e2.Cancel()
	})
	s.At(30, func() { order = append(order, "c") })
	s.Drain()
	if len(order) != 2 || order[0] != "a" || order[1] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func() []Time {
		s := NewScheduler()
		var fires []Time
		var rec func(d Time)
		rec = func(d Time) {
			fires = append(fires, s.Now())
			if d > 1 {
				s.After(d/2, func() { rec(d / 2) })
				s.After(d/3, func() { rec(d / 3) })
			}
		}
		s.After(0, func() { rec(1000) })
		s.RunUntil(Second)
		return fires
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}
