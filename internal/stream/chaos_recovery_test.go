package stream_test

import (
	"os"
	"reflect"
	"testing"
	"time"

	"pmuleak/internal/covert"
	"pmuleak/internal/faults"
	"pmuleak/internal/stream"
)

// TestChaosKillRecoveryConvergesToBatch is the whole robustness story
// in one test: a chaos-scheduled processor panic quarantines the
// stream mid-capture, the supervisor's recovery loop restores the
// latest checkpoint into a fresh receiver, replays the remaining
// samples, and the final demodulation is byte-identical to the
// uninterrupted batch run — under a faulty capture (drops, gain
// steps), with deterministic chaos seeds.
func TestChaosKillRecoveryConvergesToBatch(t *testing.T) {
	p := prepCovert(t, true, 1)
	defer p.Cap.Recycle()
	batch := covert.Demodulate(p.Cap, p.RXCfg)

	chaos, err := faults.NewChaos(faults.ChaosConfig{Kill: true, KillFrac: 0.6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	const chunkSize = 8192
	total := (len(p.Cap.IQ) + chunkSize - 1) / chunkSize
	dir := t.TempDir()
	d := stream.NewDaemon(2, stream.WithCheckpoints(dir, 1))
	scfg := stream.SuperviseConfig{StallDeadline: 2 * time.Second, Seed: 3}
	const name = "chaos_conv"

	rx := freshCovert(t, p.RXCfg, p.Cap)
	recoveries := 0
	for attempt := 0; ; attempt++ {
		if attempt > 3 {
			t.Fatal("stream did not converge within the recovery budget")
		}
		consumed := rx.Consumed()
		var proc stream.Processor = rx
		if attempt == 0 {
			proc = chaos.Processor(1, total, rx) // schedules exactly one panic
		}
		sv, err := d.Supervise(name, proc, 4, stream.NewSliceSource(p.Cap.IQ[consumed:], chunkSize), scfg)
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		sv.Wait()
		if !sv.Quarantined() {
			break
		}
		recoveries++
		fresh := freshCovert(t, p.RXCfg, p.Cap)
		switch rerr := stream.RestoreCheckpoint(dir, name, fresh); {
		case rerr == nil:
			if fresh.Consumed() == 0 || fresh.Consumed() >= len(p.Cap.IQ) {
				t.Fatalf("restored Consumed = %d, want mid-stream (capture is %d samples)",
					fresh.Consumed(), len(p.Cap.IQ))
			}
		case os.IsNotExist(rerr):
			// Killed before the first checkpoint: start over from zero.
		default:
			t.Fatalf("restore after quarantine: %v", rerr)
		}
		rx = fresh
	}
	if recoveries == 0 {
		t.Fatal("chaos kill never fired — the test exercised nothing")
	}
	d.Drain()
	if got := rx.Finalize(); !reflect.DeepEqual(got, batch) {
		t.Fatal("recovered stream diverged from the uninterrupted batch run")
	}
}
