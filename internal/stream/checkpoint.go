package stream

// Checkpoint/restore for the stream processors — the piece that extends
// the repo's determinism contract across process death. A processor's
// carried state is already compact by construction (the whole point of
// streaming: O(FFTSize + n/DecimateFactor) floats, never raw IQ), so a
// checkpoint is a versioned binary serialization of exactly that state
// plus the consumed-sample count. Restoring it into a freshly
// constructed processor and replaying the capture from Consumed()
// onward finishes byte-identical to an uninterrupted run: float bits
// round-trip exactly through math.Float64bits, and both processors are
// chunk-size-invariant (the differential tests), so the resumed chunk
// boundaries need not match the original ones.
//
// Wire format (little endian):
//
//	magic   [4]byte  "EMCK"
//	version uint16   (currently 1)
//	kind    uint8    (1 = covert receiver, 2 = keylog detector)
//	flags   uint8    (reserved, must be 0)
//	paylen  uint64   payload byte count
//	digest  uint64   FNV-64a over the payload bytes
//	payload [paylen]byte
//
// Decode is defensive end to end: a truncated, corrupted, or
// wrong-kind checkpoint returns an error — never a panic and never a
// silently wrong restore (the digest catches bit flips the structural
// checks cannot). FuzzCheckpointDecode pins that contract.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"

	"pmuleak/internal/telemetry"
)

var (
	ckptWrites = telemetry.NewCounter("stream.checkpoint.writes")
	ckptBytes  = telemetry.NewCounter("stream.checkpoint.bytes")
	ckptErrors = telemetry.NewCounter("stream.checkpoint.errors")
)

// Checkpointer is a Processor whose carried state can be serialized and
// restored. Both stream processors implement it. RestoreState must be
// called on a freshly constructed processor built from the same config
// and tuning as the one that produced the checkpoint; the byte-identity
// guarantee only holds under that pairing (the checkpoint carries the
// mutable state, the constructor re-derives everything else).
type Checkpointer interface {
	Processor
	// EncodeState serializes the processor's carried state, including
	// the consumed-sample count.
	EncodeState() []byte
	// RestoreState replaces a fresh processor's state with a previously
	// encoded one. It returns an error — never panics — on corrupted,
	// truncated, or mismatched input, leaving the processor unusable
	// only if it reports success was impossible (the processor is
	// untouched on any header or digest failure).
	RestoreState(data []byte) error
	// Consumed returns how many samples the processor has absorbed —
	// the offset a resuming producer must continue from.
	Consumed() int
}

const (
	ckptVersion = 1

	ckptKindCovert uint8 = 1
	ckptKindKeylog uint8 = 2

	ckptHeaderLen = 4 + 2 + 1 + 1 + 8 + 8
)

var ckptMagic = [4]byte{'E', 'M', 'C', 'K'}

// sealCheckpoint wraps a payload in the versioned header.
func sealCheckpoint(kind uint8, payload []byte) []byte {
	out := make([]byte, ckptHeaderLen+len(payload))
	copy(out, ckptMagic[:])
	binary.LittleEndian.PutUint16(out[4:], ckptVersion)
	out[6] = kind
	out[7] = 0
	binary.LittleEndian.PutUint64(out[8:], uint64(len(payload)))
	h := fnv.New64a()
	h.Write(payload)
	binary.LittleEndian.PutUint64(out[16:], h.Sum64())
	copy(out[ckptHeaderLen:], payload)
	return out
}

// openCheckpoint validates the header and digest and returns the
// payload.
func openCheckpoint(kind uint8, data []byte) ([]byte, error) {
	if len(data) < ckptHeaderLen {
		return nil, fmt.Errorf("stream: checkpoint truncated: %d bytes, header needs %d", len(data), ckptHeaderLen)
	}
	if [4]byte(data[:4]) != ckptMagic {
		return nil, fmt.Errorf("stream: checkpoint magic %q is not %q", data[:4], ckptMagic[:])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != ckptVersion {
		return nil, fmt.Errorf("stream: checkpoint version %d unsupported (want %d)", v, ckptVersion)
	}
	if data[6] != kind {
		return nil, fmt.Errorf("stream: checkpoint kind %d does not match processor kind %d", data[6], kind)
	}
	if data[7] != 0 {
		return nil, fmt.Errorf("stream: checkpoint flags %#x unsupported", data[7])
	}
	paylen := binary.LittleEndian.Uint64(data[8:])
	if paylen != uint64(len(data)-ckptHeaderLen) {
		return nil, fmt.Errorf("stream: checkpoint payload length %d does not match %d trailing bytes", paylen, len(data)-ckptHeaderLen)
	}
	payload := data[ckptHeaderLen:]
	h := fnv.New64a()
	h.Write(payload)
	if got, want := h.Sum64(), binary.LittleEndian.Uint64(data[16:]); got != want {
		return nil, fmt.Errorf("stream: checkpoint digest mismatch: payload hashes to %#x, header says %#x", got, want)
	}
	return payload, nil
}

// ckptEnc appends fixed-width little-endian fields to a payload.
type ckptEnc struct{ b []byte }

func (e *ckptEnc) u64(v uint64)      { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *ckptEnc) i64(v int)         { e.u64(uint64(int64(v))) }
func (e *ckptEnc) f64(v float64)     { e.u64(math.Float64bits(v)) }
func (e *ckptEnc) c128(v complex128) { e.f64(real(v)); e.f64(imag(v)) }

func (e *ckptEnc) f64s(v []float64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

func (e *ckptEnc) c128s(v []complex128) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.c128(x)
	}
}

// ckptDec is the error-latching cursor over a payload. Every accessor
// becomes a no-op returning zero after the first failure, so decoders
// read straight through and check err once.
type ckptDec struct {
	b   []byte
	off int
	err error
}

func (d *ckptDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("stream: checkpoint payload: "+format, args...)
	}
}

func (d *ckptDec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("truncated at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *ckptDec) i64() int {
	v := int64(d.u64())
	if d.err == nil && (v > math.MaxInt32 || v < math.MinInt32) {
		// Every integer in a processor's state is a sample, frame, or
		// bin count; anything outside int32 range is corruption, and
		// catching it here keeps later make() calls sane on 32-bit.
		d.fail("integer field %d out of plausible range", v)
		return 0
	}
	return int(v)
}

func (d *ckptDec) f64() float64     { return math.Float64frombits(d.u64()) }
func (d *ckptDec) c128() complex128 { return complex(d.f64(), d.f64()) }

// sliceLen reads a length prefix and bounds it by the bytes that remain
// (elemSize bytes per element), so corrupted prefixes cannot drive huge
// allocations.
func (d *ckptDec) sliceLen(elemSize int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if max := uint64(len(d.b)-d.off) / uint64(elemSize); n > max {
		d.fail("slice length %d exceeds the %d elements the remaining bytes can hold", n, max)
		return 0
	}
	return int(n)
}

func (d *ckptDec) f64s() []float64 {
	n := d.sliceLen(8)
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *ckptDec) c128s() []complex128 {
	n := d.sliceLen(16)
	if d.err != nil {
		return nil
	}
	out := make([]complex128, n)
	for i := range out {
		out[i] = d.c128()
	}
	return out
}

// finish asserts the payload was consumed exactly.
func (d *ckptDec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("stream: checkpoint payload: %d trailing bytes after decode", len(d.b)-d.off)
	}
	return nil
}

// ---------------------------------------------------------------------
// CovertReceiver.

// Consumed returns the number of IQ samples pushed so far.
func (c *CovertReceiver) Consumed() int { return c.total }

// EncodeState serializes the receiver's carried state: the pending
// Welch segment, the PSD accumulator, the resonator bank's complex
// state, every widen level's decimation carry and trace, and the
// running tracker. Everything else (plans, windows, rotation tables) is
// re-derived by NewCovertReceiver from the config.
func (c *CovertReceiver) EncodeState() []byte {
	var e ckptEnc
	e.i64(c.total)
	e.i64(c.segments)
	e.c128s(c.seg)
	e.f64s(c.psdSum)
	e.c128s(c.z)
	e.u64(uint64(len(c.levels)))
	for i := range c.levels {
		lv := &c.levels[i]
		e.f64(lv.sum)
		e.i64(lv.count)
		e.f64s(lv.y)
	}
	e.i64(c.nextTrack)
	e.f64(c.periodS)
	e.f64(c.confidence)
	e.i64(c.edges)
	return sealCheckpoint(ckptKindCovert, e.b)
}

// RestoreState loads a checkpoint produced by EncodeState into a fresh
// receiver constructed with the same config and tuning. Structural
// invariants are checked against the constructed geometry, so a
// checkpoint from a different config errors instead of corrupting the
// stream.
func (c *CovertReceiver) RestoreState(data []byte) error {
	if c.finalized {
		return fmt.Errorf("stream: RestoreState after Finalize")
	}
	if c.total != 0 || c.segments != 0 {
		return fmt.Errorf("stream: RestoreState requires a freshly constructed receiver (this one has consumed %d samples)", c.total)
	}
	payload, err := openCheckpoint(ckptKindCovert, data)
	if err != nil {
		return err
	}
	d := &ckptDec{b: payload}
	total := d.i64()
	segments := d.i64()
	seg := d.c128s()
	psdSum := d.f64s()
	z := d.c128s()
	nLevels := d.sliceLen(8 + 8 + 8) // lower bound: sum+count+len per level
	type levelState struct {
		sum   float64
		count int
		y     []float64
	}
	levels := make([]levelState, 0, nLevels)
	for i := 0; i < nLevels && d.err == nil; i++ {
		var lv levelState
		lv.sum = d.f64()
		lv.count = d.i64()
		lv.y = d.f64s()
		levels = append(levels, lv)
	}
	nextTrack := d.i64()
	periodS := d.f64()
	confidence := d.f64()
	edges := d.i64()
	if err := d.finish(); err != nil {
		return err
	}

	switch {
	case total < 0 || segments < 0 || edges < 0:
		return fmt.Errorf("stream: checkpoint has negative counters (total %d, segments %d, edges %d)", total, segments, edges)
	case len(seg) >= c.fftSize:
		return fmt.Errorf("stream: checkpoint pending segment holds %d samples, receiver FFT size is %d", len(seg), c.fftSize)
	case len(psdSum) != c.fftSize:
		return fmt.Errorf("stream: checkpoint PSD has %d bins, receiver FFT size is %d", len(psdSum), c.fftSize)
	case len(z) != len(c.rot):
		return fmt.Errorf("stream: checkpoint resonator bank has %d states, receiver has %d offsets", len(z), len(c.rot))
	case len(levels) != len(c.levels):
		return fmt.Errorf("stream: checkpoint has %d widen levels, receiver has %d", len(levels), len(c.levels))
	case nextTrack < c.trackStride || nextTrack%c.trackStride != 0:
		return fmt.Errorf("stream: checkpoint tracker cursor %d is not a positive multiple of the stride %d", nextTrack, c.trackStride)
	}
	for i, lv := range levels {
		if lv.count < 0 || lv.count >= c.cfg.DecimateFactor {
			return fmt.Errorf("stream: checkpoint level %d decimation carry %d outside [0,%d)", i, lv.count, c.cfg.DecimateFactor)
		}
	}

	c.total = total
	c.segments = segments
	c.seg = append(c.seg[:0], seg...)
	copy(c.psdSum, psdSum)
	copy(c.z, z)
	for i := range c.levels {
		c.levels[i].sum = levels[i].sum
		c.levels[i].count = levels[i].count
		c.levels[i].y = levels[i].y
	}
	c.nextTrack = nextTrack
	c.periodS = periodS
	c.confidence = confidence
	c.edges = edges
	return nil
}

// ---------------------------------------------------------------------
// KeylogDetector.

// Consumed returns the number of IQ samples pushed so far.
func (d *KeylogDetector) Consumed() int { return d.total }

// EncodeState serializes the detector's carried state: the partial STFT
// frame, the current block's magnitude rows, the accumulated band
// trace, and the spike tracker's center bin.
func (d *KeylogDetector) EncodeState() []byte {
	var e ckptEnc
	if d.degenerate {
		e.u64(1)
		e.i64(d.total)
		return sealCheckpoint(ckptKindKeylog, e.b)
	}
	e.u64(0)
	e.i64(d.total)
	e.i64(d.frames)
	e.i64(d.blocks)
	e.i64(d.center)
	e.c128s(d.frame)
	e.u64(uint64(len(d.rows)))
	for _, row := range d.rows {
		for _, v := range row {
			e.f64(v)
		}
	}
	e.f64s(d.band)
	return sealCheckpoint(ckptKindKeylog, e.b)
}

// RestoreState loads a checkpoint produced by EncodeState into a fresh
// detector constructed with the same config and tuning.
func (d *KeylogDetector) RestoreState(data []byte) error {
	if d.finalized {
		return fmt.Errorf("stream: RestoreState after Finalize")
	}
	if d.total != 0 {
		return fmt.Errorf("stream: RestoreState requires a freshly constructed detector (this one has consumed %d samples)", d.total)
	}
	payload, err := openCheckpoint(ckptKindKeylog, data)
	if err != nil {
		return err
	}
	dec := &ckptDec{b: payload}
	degenerate := dec.u64()
	if dec.err == nil && degenerate > 1 {
		return fmt.Errorf("stream: checkpoint degenerate flag %d is not 0 or 1", degenerate)
	}
	if degenerate == 1 {
		total := dec.i64()
		if err := dec.finish(); err != nil {
			return err
		}
		if !d.degenerate {
			return fmt.Errorf("stream: degenerate checkpoint for a detector with resolvable geometry")
		}
		if total < 0 {
			return fmt.Errorf("stream: checkpoint has negative sample count %d", total)
		}
		d.total = total
		return nil
	}
	if d.degenerate {
		return fmt.Errorf("stream: non-degenerate checkpoint for a detector whose geometry does not resolve")
	}
	total := dec.i64()
	frames := dec.i64()
	blocks := dec.i64()
	center := dec.i64()
	frame := dec.c128s()
	nRows := dec.sliceLen(8 * d.g.FFTSize)
	if dec.err == nil && nRows >= d.g.BlockFrames {
		return fmt.Errorf("stream: checkpoint holds %d block rows, a full block is %d (it would have been flushed)", nRows, d.g.BlockFrames)
	}
	rows := make([][]float64, 0, nRows)
	for r := 0; r < nRows && dec.err == nil; r++ {
		row := make([]float64, d.g.FFTSize)
		for i := range row {
			row[i] = dec.f64()
		}
		rows = append(rows, row)
	}
	band := dec.f64s()
	if err := dec.finish(); err != nil {
		return err
	}

	switch {
	case total < 0 || frames < 0 || blocks < 0:
		return fmt.Errorf("stream: checkpoint has negative counters (total %d, frames %d, blocks %d)", total, frames, blocks)
	case len(frame) >= d.g.FFTSize:
		return fmt.Errorf("stream: checkpoint partial frame holds %d samples, frame size is %d", len(frame), d.g.FFTSize)
	case center < 0 || center >= d.g.FFTSize:
		return fmt.Errorf("stream: checkpoint center bin %d outside [0,%d)", center, d.g.FFTSize)
	}

	d.total = total
	d.frames = frames
	d.blocks = blocks
	d.center = center
	d.frame = append(d.frame[:0], frame...)
	d.rows = d.rows[:0]
	for r, row := range rows {
		dst := d.rowsBak[r*d.g.FFTSize : (r+1)*d.g.FFTSize]
		copy(dst, row)
		d.rows = append(d.rows, dst)
	}
	d.band = band
	return nil
}

// ---------------------------------------------------------------------
// Checkpoint files.

// CheckpointPath returns the file a stream's checkpoints live at inside
// a checkpoint directory. Stream names are used verbatim as file stems,
// so daemon stream names must not contain path separators.
func CheckpointPath(dir, name string) string {
	return filepath.Join(dir, name+".ckpt")
}

// WriteCheckpoint atomically persists a processor's state to
// CheckpointPath(dir, name): the bytes land in a temp file first and
// are renamed into place, so a crash mid-write leaves the previous
// checkpoint intact rather than a torn one.
func WriteCheckpoint(dir, name string, ck Checkpointer) error {
	data := ck.EncodeState()
	path := CheckpointPath(dir, name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		ckptErrors.Inc()
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		ckptErrors.Inc()
		os.Remove(tmp)
		return err
	}
	ckptWrites.Inc()
	ckptBytes.Add(uint64(len(data)))
	return nil
}

// RestoreCheckpoint loads CheckpointPath(dir, name) into a freshly
// constructed processor. The error distinguishes a missing file
// (os.IsNotExist) from a corrupt or mismatched one.
func RestoreCheckpoint(dir, name string, ck Checkpointer) error {
	data, err := os.ReadFile(CheckpointPath(dir, name))
	if err != nil {
		return err
	}
	return ck.RestoreState(data)
}
