package stream_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pmuleak/internal/covert"
	"pmuleak/internal/keylog"
	"pmuleak/internal/sdr"
	"pmuleak/internal/stream"
	"pmuleak/internal/telemetry"
)

// freshCovert builds a receiver for the prepared capture, failing the
// test on construction errors.
func freshCovert(t *testing.T, cfg covert.RXConfig, cap *sdr.Capture) *stream.CovertReceiver {
	t.Helper()
	rx, err := stream.NewCovertReceiver(cfg, cap.SampleRate, cap.CenterFreqHz)
	if err != nil {
		t.Fatalf("NewCovertReceiver: %v", err)
	}
	return rx
}

func freshKeylog(t *testing.T, cfg keylog.DetectorConfig, cap *sdr.Capture) *stream.KeylogDetector {
	t.Helper()
	kd, err := stream.NewKeylogDetector(cfg, cap.SampleRate, cap.CenterFreqHz)
	if err != nil {
		t.Fatalf("NewKeylogDetector: %v", err)
	}
	return kd
}

// TestKillAndRestoreMatchesBatch is the acceptance criterion for
// checkpoint/restore: a daemon checkpoints a stream, "dies" with the
// stream mid-capture at an arbitrary chunk boundary (the processor is
// simply abandoned, exactly what SIGKILL leaves behind), a fresh
// processor restores from the checkpoint directory and replays the
// remaining samples at a DIFFERENT chunking — and the final output is
// reflect.DeepEqual to the uninterrupted batch pipeline, with faults
// injected, at receiver parallelism 1 and 4.
func TestKillAndRestoreMatchesBatch(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		jobs := jobs
		t.Run(fmt.Sprintf("covert_jobs%d", jobs), func(t *testing.T) {
			p := prepCovert(t, true, jobs)
			defer p.Cap.Recycle()
			batch := covert.Demodulate(p.Cap, p.RXCfg)
			if !batch.CarrierFound {
				t.Fatal("batch demod found no carrier; the differential would be vacuous")
			}
			chunks := stream.Chunks(p.Cap.IQ, 12345)
			for _, cut := range []int{1, 2, len(chunks) / 2} {
				name := fmt.Sprintf("krcov%d_%d", jobs, cut)
				dir := t.TempDir()
				d := stream.NewDaemon(2, stream.WithCheckpoints(dir, 1))
				s := d.Attach(name, freshCovert(t, p.RXCfg, p.Cap), 4)
				for i := 0; i < cut; i++ {
					s.Push(chunks[i])
				}
				s.Close()
				d.Drain()
				// The daemon is dead; its receiver is gone. Restore into a
				// fresh one and replay the tail at a different chunk size.
				rx := freshCovert(t, p.RXCfg, p.Cap)
				if err := stream.RestoreCheckpoint(dir, name, rx); err != nil {
					t.Fatalf("cut %d: restore: %v", cut, err)
				}
				consumed := rx.Consumed()
				if consumed == 0 {
					t.Fatalf("cut %d: checkpoint recorded no progress", cut)
				}
				for _, c := range stream.Chunks(p.Cap.IQ[consumed:], 4096) {
					rx.Push(c)
				}
				if got := rx.Finalize(); !reflect.DeepEqual(got, batch) {
					t.Errorf("cut %d: restored demod diverged from batch\nrestored bits: %v\nbatch bits:    %v",
						cut, got.Bits, batch.Bits)
				}
			}
		})
		t.Run(fmt.Sprintf("keylog_jobs%d", jobs), func(t *testing.T) {
			p := prepKeylog(t, true, jobs)
			defer p.Cap.Recycle()
			batch := keylog.Detect(p.Cap, p.DetCfg)
			chunks := stream.Chunks(p.Cap.IQ, 30000)
			for _, cut := range []int{1, len(chunks) / 3, len(chunks) - 1} {
				name := fmt.Sprintf("krkey%d_%d", jobs, cut)
				dir := t.TempDir()
				d := stream.NewDaemon(2, stream.WithCheckpoints(dir, 1))
				s := d.Attach(name, freshKeylog(t, p.DetCfg, p.Cap), 4)
				for i := 0; i < cut; i++ {
					s.Push(chunks[i])
				}
				s.Close()
				d.Drain()
				kd := freshKeylog(t, p.DetCfg, p.Cap)
				if err := stream.RestoreCheckpoint(dir, name, kd); err != nil {
					t.Fatalf("cut %d: restore: %v", cut, err)
				}
				consumed := kd.Consumed()
				if consumed == 0 {
					t.Fatalf("cut %d: checkpoint recorded no progress", cut)
				}
				for _, c := range stream.Chunks(p.Cap.IQ[consumed:], 7777) {
					kd.Push(c)
				}
				if got := kd.Finalize(); !reflect.DeepEqual(got, batch) {
					t.Errorf("cut %d: restored detection diverged from batch (%d vs %d keystrokes)",
						cut, len(got.Keystrokes), len(batch.Keystrokes))
				}
			}
		})
	}
}

// TestCheckpointRoundTripMidStream pins the codec itself, independent
// of the daemon: encode after k chunks, restore into a fresh processor,
// and the (original, restored) pair must finish identically when fed
// the same tail.
func TestCheckpointRoundTripMidStream(t *testing.T) {
	p := prepCovert(t, false, 1)
	defer p.Cap.Recycle()
	chunks := stream.Chunks(p.Cap.IQ, 9999)
	orig := freshCovert(t, p.RXCfg, p.Cap)
	for i := 0; i < 2; i++ {
		orig.Push(chunks[i])
	}
	state := orig.EncodeState()
	restored := freshCovert(t, p.RXCfg, p.Cap)
	if err := restored.RestoreState(state); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if got, want := restored.Consumed(), orig.Consumed(); got != want {
		t.Fatalf("restored Consumed() = %d, want %d", got, want)
	}
	for _, c := range chunks[2:] {
		orig.Push(c)
		restored.Push(c)
	}
	if a, b := orig.Finalize(), restored.Finalize(); !reflect.DeepEqual(a, b) {
		t.Fatal("original and restored receivers finalized differently")
	}
}

// TestRestoreRejectsCorruptCheckpoint: a flipped byte anywhere in the
// file must fail the digest (or a structural check) with an error —
// and leave the fresh target untouched, so it can still run from zero.
func TestRestoreRejectsCorruptCheckpoint(t *testing.T) {
	p := prepCovert(t, false, 1)
	defer p.Cap.Recycle()
	batch := covert.Demodulate(p.Cap, p.RXCfg)
	dir := t.TempDir()
	orig := freshCovert(t, p.RXCfg, p.Cap)
	orig.Push(stream.Chunks(p.Cap.IQ, 20000)[0])
	if err := stream.WriteCheckpoint(dir, "corrupt", orig); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	path := stream.CheckpointPath(dir, "corrupt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 7, len(data) / 2, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		rx := freshCovert(t, p.RXCfg, p.Cap)
		if err := stream.RestoreCheckpoint(dir, "corrupt", rx); err == nil {
			t.Fatalf("restore accepted a checkpoint with byte %d flipped", off)
		}
		// The failed restore must not have poisoned the receiver.
		for _, c := range stream.Chunks(p.Cap.IQ, 16384) {
			rx.Push(c)
		}
		if got := rx.Finalize(); !reflect.DeepEqual(got, batch) {
			t.Fatalf("receiver diverged from batch after a rejected restore (byte %d)", off)
		}
	}
}

// TestRestoreRejectsKindMismatch: a covert checkpoint must not load
// into a keylog detector (and vice versa) — the kind byte errors out.
func TestRestoreRejectsKindMismatch(t *testing.T) {
	pc := prepCovert(t, false, 1)
	defer pc.Cap.Recycle()
	pk := prepKeylog(t, false, 1)
	defer pk.Cap.Recycle()
	rx := freshCovert(t, pc.RXCfg, pc.Cap)
	rx.Push(stream.Chunks(pc.Cap.IQ, 20000)[0])
	kd := freshKeylog(t, pk.DetCfg, pk.Cap)
	if err := kd.RestoreState(rx.EncodeState()); err == nil {
		t.Fatal("keylog detector accepted a covert checkpoint")
	}
	kd2 := freshKeylog(t, pk.DetCfg, pk.Cap)
	kd2.Push(stream.Chunks(pk.Cap.IQ, 30000)[0])
	rx2 := freshCovert(t, pc.RXCfg, pc.Cap)
	if err := rx2.RestoreState(kd2.EncodeState()); err == nil {
		t.Fatal("covert receiver accepted a keylog checkpoint")
	}
}

// TestRestoreRequiresFreshProcessor: restoring over a processor that
// has already consumed samples must error, not splice states.
func TestRestoreRequiresFreshProcessor(t *testing.T) {
	p := prepCovert(t, false, 1)
	defer p.Cap.Recycle()
	rx := freshCovert(t, p.RXCfg, p.Cap)
	chunks := stream.Chunks(p.Cap.IQ, 20000)
	rx.Push(chunks[0])
	state := rx.EncodeState()
	rx.Push(chunks[1])
	if err := rx.RestoreState(state); err == nil {
		t.Fatal("RestoreState accepted a non-fresh receiver")
	}
}

// TestCheckpointWriteErrorSurfacedNotFatal: an unwritable checkpoint
// location (here a path under a regular file — robust even when the
// test runs as root, unlike permission bits) must yield an error from
// WriteCheckpoint, count on stream.checkpoint.errors, and — through the
// daemon — surface on CheckpointErr while the stream itself still
// completes and stays byte-identical.
func TestCheckpointWriteErrorSurfacedNotFatal(t *testing.T) {
	p := prepCovert(t, false, 1)
	defer p.Cap.Recycle()
	batch := covert.Demodulate(p.Cap, p.RXCfg)

	// A regular file where the directory should be: every write under it
	// fails with ENOTDIR, for root and mortals alike.
	tmp := t.TempDir()
	notDir := filepath.Join(tmp, "occupied")
	if err := os.WriteFile(notDir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	badDir := filepath.Join(notDir, "ckpt")

	rx := freshCovert(t, p.RXCfg, p.Cap)
	rx.Push(stream.Chunks(p.Cap.IQ, 20000)[0])
	errsBefore := telemetry.Capture().Counters["stream.checkpoint.errors"]
	if err := stream.WriteCheckpoint(badDir, "x", rx); err == nil {
		t.Fatal("WriteCheckpoint into a file-as-directory path succeeded")
	}
	if got := telemetry.Capture().Counters["stream.checkpoint.errors"]; got != errsBefore+1 {
		t.Fatalf("stream.checkpoint.errors = %d, want %d", got, errsBefore+1)
	}

	// RestoreCheckpoint from the same impossible path errors too (and a
	// missing file in a real directory is distinguishable as not-exist).
	if err := stream.RestoreCheckpoint(badDir, "x", freshCovert(t, p.RXCfg, p.Cap)); err == nil {
		t.Fatal("RestoreCheckpoint from a file-as-directory path succeeded")
	}
	if err := stream.RestoreCheckpoint(tmp, "nope", freshCovert(t, p.RXCfg, p.Cap)); !os.IsNotExist(err) {
		t.Fatalf("missing checkpoint error = %v, want os.IsNotExist", err)
	}

	// Through the daemon: checkpoint writes fail every burst, the stream
	// finishes anyway, and the failure is visible on CheckpointErr.
	d := stream.NewDaemon(1, stream.WithCheckpoints(badDir, 1))
	rx2 := freshCovert(t, p.RXCfg, p.Cap)
	s := d.Attach("ckptfail", rx2, 4)
	for _, c := range stream.Chunks(p.Cap.IQ, 16384) {
		if !s.Push(c) {
			t.Fatal("push refused on a healthy stream")
		}
	}
	s.Close()
	d.Drain()
	if s.CheckpointErr() == nil {
		t.Fatal("CheckpointErr is nil although every checkpoint write failed")
	}
	if s.Quarantined() {
		t.Fatal("checkpoint write failures quarantined the stream")
	}
	if got := rx2.Finalize(); !reflect.DeepEqual(got, batch) {
		t.Fatal("stream with failing checkpoints diverged from batch")
	}
}

// FuzzCheckpointDecode: arbitrary bytes fed to RestoreState on both
// processor kinds must produce errors, never panics or junk states the
// caller can't detect. The corpus seeds valid checkpoints of both kinds
// plus classic corruptions (truncation, flipped bytes, wrong magic).
func FuzzCheckpointDecode(f *testing.F) {
	covCfg := covert.DefaultRXConfig()
	covCfg.ExpectedF0 = 360e3
	covCap := &sdr.Capture{
		IQ:           make([]complex128, 6*covCfg.FFTSize),
		SampleRate:   2.4e6,
		CenterFreqHz: 540e3,
	}
	keyCfg := keylog.DefaultDetectorConfig()
	keyCfg.ExpectedF0 = 360e3

	rxSeed, err := stream.NewCovertReceiver(covCfg, covCap.SampleRate, covCap.CenterFreqHz)
	if err != nil {
		f.Fatal(err)
	}
	rxSeed.Push(covCap.IQ[:5000])
	valid := rxSeed.EncodeState()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:23])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-3] ^= 0x10
	f.Add(flipped)

	kdSeed, err := stream.NewKeylogDetector(keyCfg, 240e3, 300e3)
	if err != nil {
		f.Fatal(err)
	}
	kdSeed.Push(make([]complex128, 4000))
	f.Add(kdSeed.EncodeState())
	f.Add([]byte{})
	f.Add([]byte("EMCK"))
	f.Add([]byte("not a checkpoint at all, just bytes"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rx, err := stream.NewCovertReceiver(covCfg, covCap.SampleRate, covCap.CenterFreqHz)
		if err != nil {
			t.Fatal(err)
		}
		if err := rx.RestoreState(data); err == nil {
			// A successful decode must leave a coherent receiver: pushing
			// more samples and finalizing must not blow up.
			rx.Push(covCap.IQ[:1000])
			rx.Finalize()
		}
		kd, err := stream.NewKeylogDetector(keyCfg, 240e3, 300e3)
		if err != nil {
			t.Fatal(err)
		}
		if err := kd.RestoreState(data); err == nil {
			kd.Push(make([]complex128, 1000))
			kd.Finalize()
		}
	})
}
