package stream

import (
	"fmt"
	"math"
	"math/cmplx"

	"pmuleak/internal/covert"
	"pmuleak/internal/dsp"
	"pmuleak/internal/telemetry"
)

var (
	strCovertSamples  = telemetry.NewCounter("stream.covert.samples")
	strCovertSegments = telemetry.NewCounter("stream.covert.welch_segments")
	strCovertTracks   = telemetry.NewCounter("stream.covert.tracker_updates")
)

// CovertStatus is the running tracker's live view of an in-flight
// stream — what an operator sees before Finalize.
type CovertStatus struct {
	// Samples and Segments count consumed IQ samples and completed
	// Welch segments.
	Samples, Segments int
	// CarrierZ/CarrierFound/Retries are the provisional carrier search
	// over the PSD accumulated so far (the decision Finalize would make
	// if the stream ended now).
	CarrierZ     float64
	CarrierFound bool
	Retries      int
	// PeriodS, Confidence, and Edges are the latest §IV-B2 batch
	// statistics from the running period tracker: the signaling-period
	// estimate (seconds), the fraction of inter-start distances on the
	// period grid, and the edge count in the last tracked window. Zero
	// until a full tracking window has accumulated.
	PeriodS    float64
	Confidence float64
	Edges      int
}

// levelTrace is one carrier-retry widen level's decimated acquisition
// trace: the first nOff resonators' summed magnitudes, decimated by the
// shared factor. sum/count carry the current partial decimation block
// across chunk boundaries.
type levelTrace struct {
	nOff  int
	sum   float64
	count int
	y     []float64
}

// CovertReceiver is the streaming form of covert.Demodulate: push IQ
// chunks of any size as they arrive, then Finalize to obtain a Demod
// byte-identical to the batch pipeline over the concatenated samples.
//
// The front half of the batch pipeline runs incrementally — Welch PSD
// segments accumulate as each fftSize window fills (the half-overlap
// tail carried across chunk boundaries), and the Eq. (1) resonator bank
// carries its complex state sample-to-sample, emitting one decimated
// trace per carrier-retry widen level (each level's offset set is a
// prefix of the widest, so one bank serves all of them via prefix
// sums). The back half — carrier gate, edge detection, period
// estimation, gap filling, thresholding — needs global views, but only
// of compact intermediates: the fftSize-bin PSD and the decimated
// traces (Samples/DecimateFactor floats per level). Raw IQ is never
// retained, which is the entire memory story: a receiver's state is
// O(FFTSize + Samples/DecimateFactor), not 16·Samples bytes.
//
// Carrier selection must be decidable without the full-capture PSD, so
// the config needs an ExpectedF0 hint whose harmonics land in band
// (core.RunCovert always provides one). Blind peak selection — which is
// a function of the finished PSD — is the batch path's exclusive
// fallback and NewCovertReceiver rejects configs that would need it.
type CovertReceiver struct {
	cfg          covert.RXConfig
	sampleRate   float64
	centerFreqHz float64

	// Welch accumulation.
	fftSize int
	hop     int
	window  []float64
	plan    *dsp.FFTPlan
	seg     []complex128 // pending samples, len < fftSize between pushes
	buf     []complex128 // scratch for window+transform
	psdSum  []float64
	segments int

	// Resonator bank over the widest level's offsets.
	rot    []complex128
	z      []complex128
	gain   float64
	levels []levelTrace

	// Running period tracker over the level-0 trace.
	dt          float64
	minPeriod   int // in decimated samples
	trackStride int // decimated samples between tracker updates
	nextTrack   int
	periodS     float64
	confidence  float64
	edges       int

	total     int
	finalized bool
}

// NewCovertReceiver validates the config against the streaming
// contract and returns a receiver with empty state.
func NewCovertReceiver(cfg covert.RXConfig, sampleRate, centerFreqHz float64) (*CovertReceiver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("stream: SampleRate must be positive")
	}
	if _, ok := covert.HintedOffsets(cfg, sampleRate, centerFreqHz, 0); !ok {
		return nil, fmt.Errorf("stream: covert receiver requires an ExpectedF0 hint with in-band harmonics (blind carrier selection needs the full-capture PSD)")
	}
	decay := covert.AcquisitionDecay(cfg, sampleRate)
	if decay <= 0 || decay >= 1 {
		return nil, fmt.Errorf("stream: tracker time constant yields resonator decay %v outside (0,1)", decay)
	}
	c := &CovertReceiver{
		cfg:          cfg,
		sampleRate:   sampleRate,
		centerFreqHz: centerFreqHz,
		fftSize:      cfg.FFTSize,
		hop:          cfg.FFTSize / 2,
		window:       dsp.Hann(cfg.FFTSize),
		plan:         dsp.PlanFFT(cfg.FFTSize),
		seg:          make([]complex128, 0, cfg.FFTSize),
		buf:          make([]complex128, cfg.FFTSize),
		psdSum:       make([]float64, cfg.FFTSize),
		gain:         1 - decay,
	}
	// One resonator per offset of the widest retry level; every
	// narrower level is a prefix of it (hintedOffsets appends in-band
	// harmonics in ascending k order at every widen level), so the
	// bank's prefix sums reproduce each level's batch ResonatorBank
	// output exactly.
	widest, _ := covert.HintedOffsets(cfg, sampleRate, centerFreqHz, cfg.CarrierRetries)
	c.rot = make([]complex128, len(widest))
	c.z = make([]complex128, len(widest))
	for i, f := range widest {
		// Normalize first, then scale by 2π — the exact expression (and
		// rounding) of the batch path's norm[i] = f/fs feeding
		// dsp.ResonatorBank's rot table.
		norm := f / sampleRate
		c.rot[i] = cmplx.Exp(complex(0, 2*math.Pi*norm)) * complex(decay, 0)
	}
	c.levels = make([]levelTrace, cfg.CarrierRetries+1)
	for r := range c.levels {
		offs, _ := covert.HintedOffsets(cfg, sampleRate, centerFreqHz, r)
		c.levels[r].nOff = len(offs)
	}
	c.dt = float64(cfg.DecimateFactor) / sampleRate
	c.minPeriod = int(cfg.MinBitPeriod.Seconds() / c.dt)
	if c.minPeriod < 2 {
		c.minPeriod = 2
	}
	// One §IV-B2 batch of bits per tracker update.
	c.trackStride = cfg.BatchBits * c.minPeriod
	c.nextTrack = c.trackStride
	return c, nil
}

// Push consumes one chunk of IQ samples. Chunks may have any size; the
// concatenation of all pushed chunks defines the capture. Not safe for
// concurrent use (the daemon serializes per-stream pushes).
func (c *CovertReceiver) Push(chunk []complex128) {
	if c.finalized {
		panic("stream: Push after Finalize")
	}
	c.total += len(chunk)
	strCovertSamples.Add(uint64(len(chunk)))

	// Welch: fill the pending segment window; every time it reaches
	// fftSize, transform and accumulate, then slide by the half-overlap
	// hop — the same segment starts, in the same order, as the batch
	// WelchPSD.
	in := chunk
	for len(in) > 0 {
		take := c.fftSize - len(c.seg)
		if take > len(in) {
			take = len(in)
		}
		c.seg = append(c.seg, in[:take]...)
		in = in[take:]
		if len(c.seg) == c.fftSize {
			copy(c.buf, c.seg)
			dsp.ApplyWindow(c.buf, c.window)
			c.plan.Transform(c.buf)
			for i, v := range c.buf {
				re, im := real(v), imag(v)
				c.psdSum[i] += re*re + im*im
			}
			c.segments++
			strCovertSegments.Inc()
			copy(c.seg, c.seg[c.hop:])
			c.seg = c.seg[:c.fftSize-c.hop]
		}
	}

	// Resonator bank: the strictly sequential Eq. (1) recurrence, state
	// carried across chunks. Each widen level's per-sample output is the
	// prefix sum of resonator magnitudes up to its offset count — the
	// identical floating-point order as its batch ResonatorBank — fed
	// straight into that level's running decimation block.
	for _, v := range chunk {
		var sum float64
		li := 0
		for i, rot := range c.rot {
			zi := c.z[i]*rot + v
			c.z[i] = zi
			sum += cmplx.Abs(zi)
			for li < len(c.levels) && c.levels[li].nOff == i+1 {
				lv := &c.levels[li]
				lv.sum += sum * c.gain
				lv.count++
				if lv.count == c.cfg.DecimateFactor {
					lv.y = append(lv.y, lv.sum/float64(c.cfg.DecimateFactor))
					lv.sum, lv.count = 0, 0
				}
				li++
			}
		}
	}
	c.track()
}

// track runs the §IV-B2 batch statistic over the most recent tracking
// window of the level-0 trace whenever a full stride of new decimated
// samples has accumulated — the running form of the Resync path's
// per-window period re-estimation, available live instead of only at
// Finalize.
func (c *CovertReceiver) track() {
	y := c.levels[0].y
	for len(y) >= c.nextTrack {
		lo := c.nextTrack - c.trackStride
		p, conf, edges := covert.TrackWindow(y[lo:c.nextTrack], c.dt, c.cfg)
		if edges >= 3 {
			c.periodS, c.confidence = p, conf
		}
		c.edges = edges
		c.nextTrack += c.trackStride
		strCovertTracks.Inc()
	}
}

// Status reports the stream's live state: the provisional carrier
// decision over the PSD accumulated so far and the running tracker's
// latest period estimate. Cost is one carrier search (O(FFTSize log
// FFTSize)); it does not perturb the stream.
func (c *CovertReceiver) Status() CovertStatus {
	st := CovertStatus{
		Samples:    c.total,
		Segments:   c.segments,
		PeriodS:    c.periodS,
		Confidence: c.confidence,
		Edges:      c.edges,
	}
	if c.segments > 0 {
		car := covert.SearchCarrier(c.psd(), c.sampleRate, c.centerFreqHz, c.cfg)
		st.CarrierZ, st.CarrierFound, st.Retries = car.Z, car.Found, car.Retries
	}
	return st
}

// psd finalizes the Welch average over the segments seen so far.
func (c *CovertReceiver) psd() []float64 {
	psd := make([]float64, c.fftSize)
	if c.segments == 0 {
		return psd
	}
	for i, v := range c.psdSum {
		psd[i] = v / float64(c.segments)
	}
	return psd
}

// StateBytes estimates the receiver's retained memory — the quantity
// the flat-memory daemon test pins. It grows with
// Samples/DecimateFactor (the decimated traces), never with raw sample
// count.
func (c *CovertReceiver) StateBytes() int {
	n := cap(c.seg)*16 + cap(c.buf)*16 + cap(c.psdSum)*8 +
		cap(c.window)*8 + len(c.rot)*32
	for _, lv := range c.levels {
		n += cap(lv.y) * 8
	}
	return n
}

// Finalize closes the stream and runs the batch back half over the
// accumulated intermediates. The returned Demod is byte-identical to
// covert.Demodulate over a capture holding the concatenation of every
// pushed chunk. Further pushes panic.
func (c *CovertReceiver) Finalize() *covert.Demod {
	c.finalized = true
	d := &covert.Demod{}
	if c.total < 4*c.cfg.FFTSize {
		return d
	}
	car := covert.SearchCarrier(c.psd(), c.sampleRate, c.centerFreqHz, c.cfg)
	d.Offsets = car.Offsets
	d.Quality.CarrierZ = car.Z
	d.Quality.Retries = car.Retries
	if !car.Found {
		return d
	}
	d.CarrierFound = true
	lv := &c.levels[car.Retries]
	if lv.count > 0 {
		// Final partial decimation block: DecimateMean averages the
		// tail over its actual element count.
		lv.y = append(lv.y, lv.sum/float64(lv.count))
		lv.sum, lv.count = 0, 0
	}
	d.Y = lv.y
	d.DT = c.dt
	return covert.DemodulateTrace(d, c.cfg)
}
