package stream

import (
	"fmt"
	"sync"

	"pmuleak/internal/telemetry"
)

// Daemon-level telemetry. Per-stream series are registered dynamically
// under stream.daemon.<name>.* when a stream attaches.
var (
	daemonDispatches = telemetry.NewCounter("stream.daemon.dispatches")
	daemonActive     = telemetry.NewGauge("stream.daemon.active_streams")
)

// drainBurst bounds how many chunks one dispatch feeds a stream before
// the worker re-queues it — the fairness knob that keeps one firehose
// stream from starving the rest of the pool.
const drainBurst = 4

// Processor consumes one stream's chunks in order. CovertReceiver and
// KeylogDetector implement it; the daemon guarantees Push is never
// called concurrently for the same stream, so processors need no
// locking of their own.
type Processor interface {
	Push(chunk []complex128)
}

// Daemon multiplexes many capture streams over a fixed worker pool —
// the dispatch core of `emscope serve`. Each attached stream owns a
// bounded Ring (backpressure: a producer outrunning the pool blocks on
// its own ring, never grows it) and is processed by at most one worker
// at a time: a stream is either idle, queued on the runnable list, or
// running, and only the transition through the daemon's lock moves it
// between states. Workers pull runnable streams FIFO, feed at most
// drainBurst chunks to the stream's processor, and re-queue it while
// its ring has more — so N streams share W workers fairly with
// per-stream FIFO order preserved.
//
// Shutdown is a graceful drain: CloseAll (or per-stream Close) refuses
// new input, workers finish everything still buffered, each stream's
// Done channel closes when its ring is empty, and Drain returns once
// every worker goroutine has exited — the goroutine-leak test pins
// that nothing survives it.
type Daemon struct {
	mu       sync.Mutex
	cond     *sync.Cond
	runnable []*DaemonStream
	streams  []*DaemonStream
	stopping bool
	wg       sync.WaitGroup
}

// DaemonStream is one attached capture stream: its ring, its processor,
// and its scheduling state (guarded by the daemon's lock).
type DaemonStream struct {
	name string
	d    *Daemon
	ring *Ring
	proc Processor

	queued  bool
	running bool
	done    chan struct{}

	chunks  *telemetry.Counter
	samples *telemetry.Counter
	stalls  *telemetry.Counter
	// depth mirrors the ring's buffered-chunk count at every
	// enqueue/dequeue, so backpressure is visible on the admin plane
	// before pushes start stalling; latency times each processor Push in
	// the dispatch loop.
	depth   *telemetry.Gauge
	latency *telemetry.Histogram
}

// NewDaemon starts a pool of the given worker count (minimum 1).
func NewDaemon(workers int) *Daemon {
	if workers < 1 {
		workers = 1
	}
	d := &Daemon{}
	d.cond = sync.NewCond(&d.mu)
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.worker()
	}
	return d
}

// Attach registers a stream: chunks pushed to the returned
// DaemonStream flow through a ring of queueCap chunks into proc on the
// worker pool. The name keys the stream's telemetry series
// (stream.daemon.<name>.{chunks,samples,stalls}).
func (d *Daemon) Attach(name string, proc Processor, queueCap int) *DaemonStream {
	s := &DaemonStream{
		name:    name,
		d:       d,
		ring:    NewRing(queueCap),
		proc:    proc,
		done:    make(chan struct{}),
		chunks:  telemetry.NewCounter(fmt.Sprintf("stream.daemon.%s.chunks", name)),
		samples: telemetry.NewCounter(fmt.Sprintf("stream.daemon.%s.samples", name)),
		stalls:  telemetry.NewCounter(fmt.Sprintf("stream.daemon.%s.stalls", name)),
		depth:   telemetry.NewGauge(fmt.Sprintf("stream.daemon.%s.queue_depth", name)),
		latency: telemetry.NewHistogram(fmt.Sprintf("stream.daemon.%s.chunk", name)),
	}
	// A re-attached name reuses its telemetry series; the gauge must
	// restart at the new ring's (empty) depth rather than a stale level.
	s.depth.Set(0)
	d.mu.Lock()
	d.streams = append(d.streams, s)
	d.mu.Unlock()
	daemonActive.Add(1)
	return s
}

// Push hands a chunk to the stream, blocking while its ring is full —
// the backpressure contract. It reports false once the stream is
// closed. Multiple producers may push to one stream; chunk order is
// then their arrival order at the ring.
func (s *DaemonStream) Push(chunk []complex128) bool {
	before := s.ring.Stalls()
	if !s.ring.Push(chunk) {
		return false
	}
	if waited := s.ring.Stalls() - before; waited > 0 {
		s.stalls.Add(waited)
	}
	s.depth.Set(int64(s.ring.Len()))
	s.d.enqueue(s)
	return true
}

// Close marks the stream's end of input. Buffered chunks still drain;
// Done closes once they have.
func (s *DaemonStream) Close() {
	s.ring.Close()
	d := s.d
	d.mu.Lock()
	s.maybeFinishLocked()
	d.mu.Unlock()
}

// Done returns a channel closed when the stream is closed and every
// buffered chunk has been processed.
func (s *DaemonStream) Done() <-chan struct{} { return s.done }

// Name returns the stream's telemetry name.
func (s *DaemonStream) Name() string { return s.name }

// Pending returns the number of chunks buffered and not yet processed.
func (s *DaemonStream) Pending() int { return s.ring.Len() }

// Stalls returns how many pushes hit a full ring (backpressure events).
func (s *DaemonStream) Stalls() uint64 { return s.ring.Stalls() }

// enqueue moves an idle stream with pending chunks onto the runnable
// list. Called after every push; a stream already queued or running is
// left alone (the running worker re-checks the ring before parking it).
func (d *Daemon) enqueue(s *DaemonStream) {
	d.mu.Lock()
	if !s.queued && !s.running && s.ring.Len() > 0 {
		s.queued = true
		d.runnable = append(d.runnable, s)
		d.cond.Signal()
	}
	d.mu.Unlock()
}

// maybeFinishLocked closes the stream's Done channel when its input is
// finished and nothing is queued or in flight. Caller holds d.mu.
func (s *DaemonStream) maybeFinishLocked() {
	if !s.running && !s.queued && s.ring.Drained() {
		select {
		case <-s.done:
		default:
			close(s.done)
			daemonActive.Add(-1)
		}
	}
}

// worker is the dispatch loop: claim a runnable stream, feed it a
// bounded burst, hand it back.
func (d *Daemon) worker() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		for len(d.runnable) == 0 && !d.stopping {
			d.cond.Wait()
		}
		if len(d.runnable) == 0 {
			d.mu.Unlock()
			return
		}
		s := d.runnable[0]
		d.runnable = d.runnable[1:]
		s.queued = false
		s.running = true
		d.mu.Unlock()

		for i := 0; i < drainBurst; i++ {
			chunk, ok := s.ring.TryPop()
			if !ok {
				break
			}
			s.depth.Set(int64(s.ring.Len()))
			span := s.latency.Start()
			s.proc.Push(chunk)
			span.End()
			s.chunks.Inc()
			s.samples.Add(uint64(len(chunk)))
			daemonDispatches.Inc()
		}

		d.mu.Lock()
		s.running = false
		if s.ring.Len() > 0 {
			s.queued = true
			d.runnable = append(d.runnable, s)
			d.cond.Signal()
		} else {
			s.maybeFinishLocked()
		}
		d.mu.Unlock()
	}
}

// CloseAll closes every attached stream (idempotent per stream).
func (d *Daemon) CloseAll() {
	d.mu.Lock()
	streams := append([]*DaemonStream(nil), d.streams...)
	d.mu.Unlock()
	for _, s := range streams {
		s.Close()
	}
}

// Drain gracefully shuts the daemon down: closes every stream, waits
// for all buffered chunks to be processed, then stops the worker pool
// and waits for every worker goroutine to exit. After Drain the
// processors hold their final state and can be finalized.
func (d *Daemon) Drain() {
	d.CloseAll()
	d.mu.Lock()
	streams := append([]*DaemonStream(nil), d.streams...)
	d.mu.Unlock()
	for _, s := range streams {
		<-s.done
	}
	d.mu.Lock()
	d.stopping = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
}
